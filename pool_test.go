package hique

// Tests for the zero-allocation warm path: the fused single-table
// pipeline, the page/table arena, and the pooled execution copies. The
// fast path is an optimisation the generator selects, never a semantic
// fork, so every query here is asserted byte-identical across all five
// engines and across the fused/cached/general execution routes; the
// concurrency tests run under -race in CI.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// poolTestDB builds the shared fixture: integers, floats, fixed-width
// strings, and a date column, enough rows for multi-page staging.
func poolTestDB(t *testing.T, options ...Option) *DB {
	t.Helper()
	db := Open(options...)
	if err := db.CreateTable("pts", Int("id"), Float("v"), Char("name", 12), Date("d")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		if err := db.Insert("pts", int64(i), float64(i)*0.5, fmt.Sprintf("row-%04d", i%97), int64(18000+i%30)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// fastPathQueries covers the shapes the fused pipeline accepts (point
// and range predicates, residual filters, computed projections, LIMIT,
// identity projection) and the shapes it must decline (string
// parameters, ORDER BY, aggregation) — all must agree everywhere.
var fastPathQueries = []struct {
	sql  string
	args []any
}{
	{sql: "SELECT v FROM pts WHERE id = 57"},
	{sql: "SELECT v FROM pts WHERE id = ?", args: []any{57}},
	{sql: "SELECT id, v FROM pts WHERE id >= 100 AND v < 75.0"},
	{sql: "SELECT id, v FROM pts WHERE id >= ? AND v < ?", args: []any{100, 75.0}},
	{sql: "SELECT v FROM pts WHERE name = 'row-0042'"},
	{sql: "SELECT v FROM pts WHERE name = ?", args: []any{"row-0042"}},
	{sql: "SELECT id FROM pts WHERE d = DATE '2019-04-18'"},
	{sql: "SELECT id FROM pts WHERE id < 10 LIMIT 3"},
	{sql: "SELECT id FROM pts WHERE id < 10 LIMIT 0"},
	{sql: "SELECT id, v, name, d FROM pts"},
	{sql: "SELECT v * 2.0 AS dv FROM pts WHERE id = 3"},
	{sql: "SELECT id FROM pts WHERE v > 590.0 ORDER BY id DESC"},
	{sql: "SELECT COUNT(*) AS n, SUM(v) AS sv FROM pts WHERE id < 500"},
	{sql: "SELECT COUNT(*) AS n FROM pts WHERE id = -1"},
}

// TestFastPathMatchesAllEngines asserts byte-identical results for every
// query shape across (a) all five engines uncached, (b) the cached
// holistic path with auto-parameterization (the fused pipeline), (c) the
// cached path with literal keys, and (d) an index-accelerated variant.
func TestFastPathMatchesAllEngines(t *testing.T) {
	engines := []Engine{Holistic, GenericIterators, OptimizedIterators, ColumnStore, HolisticUnoptimized}

	type route struct {
		name string
		db   *DB
	}
	routes := []route{
		{"cached-auto-param", poolTestDB(t, WithPlanCache(64))},
		{"cached-literal-keyed", poolTestDB(t, WithPlanCache(64), WithAutoParam(false))},
		{"cached-indexed", poolTestDB(t, WithPlanCache(64))},
	}
	if err := routes[2].db.BuildIndex("pts", "id"); err != nil {
		t.Fatal(err)
	}
	uncached := poolTestDB(t)

	for _, q := range fastPathQueries {
		var want *Result
		for _, e := range engines {
			uncached.SetEngine(e)
			got, err := uncached.Query(q.sql, q.args...)
			if err != nil {
				t.Fatalf("%s on %v: %v", q.sql, e, err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Fatalf("%s: engine %v diverges:\n got %v\nwant %v", q.sql, e, got.Rows, want.Rows)
			}
		}
		for _, r := range routes {
			// Twice: the first call compiles, the second exercises the
			// warm (fused or pooled) path against recycled frames.
			for pass := 0; pass < 2; pass++ {
				got, err := r.db.Query(q.sql, q.args...)
				if err != nil {
					t.Fatalf("%s via %s: %v", q.sql, r.name, err)
				}
				if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) {
					t.Fatalf("%s via %s (pass %d) diverges:\n got %v\nwant %v", q.sql, r.name, pass, got.Rows, want.Rows)
				}
			}
		}
	}
}

// TestQueryIntoReuse drives one Result through repeated QueryInto calls
// and checks each materialisation is complete and correct.
func TestQueryIntoReuse(t *testing.T) {
	db := poolTestDB(t, WithPlanCache(64))
	var res Result
	for i := 0; i < 50; i++ {
		id := int64(i * 7 % 1200)
		if err := db.QueryInto(&res, "SELECT id, v FROM pts WHERE id = ?", id); err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != id || res.Rows[0][1] != float64(id)*0.5 {
			t.Fatalf("iteration %d: got %v", i, res.Rows)
		}
	}
	// A wider result after narrow ones must regrow cleanly.
	if err := db.QueryInto(&res, "SELECT id, v, name, d FROM pts WHERE id < 100"); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 100 || len(res.Rows[41]) != 4 || res.Rows[41][2] != "row-0041" {
		t.Fatalf("wide reuse: %d rows, row41=%v", len(res.Rows), res.Rows[41])
	}
}

// TestConcurrentPreparedRunPooled floods the pooled execution path from
// many goroutines: every Prepared.Run draws bind scratch, result frames,
// and query scratch from the shared pools, so any page visible to two
// in-flight queries shows up as a wrong value (and as a race under
// -race). A concurrent writer on an unrelated table keeps the
// invalidation machinery busy at the same time.
func TestConcurrentPreparedRunPooled(t *testing.T) {
	db := poolTestDB(t, WithPlanCache(64))
	if err := db.CreateTable("noise", Int("n")); err != nil {
		t.Fatal(err)
	}

	pr, err := db.Prepare("SELECT id, v FROM pts WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 150
	errc := make(chan error, goroutines+1)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var res Result
			for i := 0; i < iters; i++ {
				id := int64((g*31 + i*17) % 1200)
				// Alternate the prepared handle and the cached Query
				// path so both pooled routes run concurrently.
				if i%2 == 0 {
					if err := pr.RunInto(&res, id); err != nil {
						errc <- err
						return
					}
				} else {
					if err := db.QueryInto(&res, "SELECT id, v FROM pts WHERE id = ?", id); err != nil {
						errc <- err
						return
					}
				}
				if len(res.Rows) != 1 || res.Rows[0][0] != id || res.Rows[0][1] != float64(id)*0.5 {
					errc <- fmt.Errorf("goroutine %d iter %d: id %d got %v", g, i, id, res.Rows)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if err := db.Insert("noise", int64(i)); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestLiftedDatumMatchesLiteralDatum pins the warm path's AST-free
// literal coercion (liftedDatum) to plan.LiteralDatum, the single
// source of truth the literal-specialized fallback uses: every
// (literal, column-kind) pair must coerce to the same datum, or fail on
// both sides. A divergence would make the same SQL behave differently
// depending on cache state.
func TestLiftedDatumMatchesLiteralDatum(t *testing.T) {
	lits := []sql.LiftedLit{
		{Kind: sql.LitInt, I: 42},
		{Kind: sql.LitInt, I: -1},
		{Kind: sql.LitFloat, F: 2.5},
		{Kind: sql.LitDate, I: 18300, S: "2020-02-08"},
		{Kind: sql.LitString, S: "abc"},
	}
	kinds := []types.Kind{types.Int, types.Float, types.Date, types.String}
	for _, l := range lits {
		for _, k := range kinds {
			got, gotOK := liftedDatum(l, k)
			want, wantErr := plan.LiteralDatum(l.Expr(), k)
			if gotOK != (wantErr == nil) {
				t.Fatalf("%+v vs %v: liftedDatum ok=%v, LiteralDatum err=%v", l, k, gotOK, wantErr)
			}
			if gotOK && got != want {
				t.Fatalf("%+v vs %v: liftedDatum %+v, LiteralDatum %+v", l, k, got, want)
			}
		}
	}
}

// TestArenaBalanceReturnsToZero is the pool-leak check: every frame the
// serving paths draw from the page arena must be returned once the
// queries complete, across the fused pipeline, the general staged
// engine (joins, sorts, limits, aggregates), prepared statements, and
// the index probe path.
func TestArenaBalanceReturnsToZero(t *testing.T) {
	db := poolTestDB(t, WithPlanCache(64))
	if err := db.CreateTable("dims", Int("id"), Char("label", 8)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := db.Insert("dims", int64(i), fmt.Sprintf("d%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndex("pts", "id"); err != nil {
		t.Fatal(err)
	}
	// Warm everything once so pool growth from first-time compilation
	// does not blur the balance below.
	warm := func() {
		queries := []struct {
			sql  string
			args []any
		}{
			{sql: "SELECT v FROM pts WHERE id = ?", args: []any{7}},
			{sql: "SELECT id, v FROM pts WHERE v > 500.0 ORDER BY v DESC LIMIT 5"},
			{sql: "SELECT d.label, COUNT(*) AS n FROM pts p, dims d WHERE p.id = d.id GROUP BY d.label ORDER BY d.label"},
			{sql: "SELECT id, v, name, d FROM pts"},
		}
		for _, q := range queries {
			if _, err := db.Query(q.sql, q.args...); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm()

	before, _ := storage.ArenaStats()
	warm()
	pr, err := db.Prepare("SELECT v FROM pts WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := pr.Run(i); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := storage.ArenaStats()
	if after != before {
		t.Fatalf("arena frames leaked: in-use went %d -> %d over a release-balanced workload", before, after)
	}
}
