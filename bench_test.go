package hique

// One testing.B benchmark per table and figure of the paper's evaluation
// (§VI). Each benchmark drives the corresponding experiment runner from
// internal/bench at a reduced scale suitable for `go test -bench`; the
// full paper-sized sweeps are produced by `cmd/hique-bench` (see
// EXPERIMENTS.md for recorded paper-vs-measured results).

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hique/internal/bench"
	"hique/internal/codegen"
	"hique/internal/core"
	"hique/internal/hardcoded"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/tpch"
	"hique/internal/volcano"
)

const (
	benchScale = 0.02 // microbenchmark scale relative to the paper
	benchSF    = 0.01 // TPC-H scale factor for -bench runs
)

// BenchmarkFig5JoinProfiling regenerates Figures 5a-5d (join query
// profiling across the five code shapes).
func BenchmarkFig5JoinProfiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig5(benchScale)
	}
}

// BenchmarkFig6AggProfiling regenerates Figures 6a-6d (aggregation
// profiling across the five code shapes).
func BenchmarkFig6AggProfiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig6(benchScale)
	}
}

// BenchmarkTab2OptimisationLevels regenerates Table II (the -O0 / -O2
// response-time grid).
func BenchmarkTab2OptimisationLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Tab2(benchScale)
	}
}

// BenchmarkFig7aJoinScalability regenerates Figure 7a.
func BenchmarkFig7aJoinScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig7a(benchScale)
	}
}

// BenchmarkFig7bMultiwayJoins regenerates Figure 7b.
func BenchmarkFig7bMultiwayJoins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig7b(benchScale)
	}
}

// BenchmarkFig7cJoinSelectivity regenerates Figure 7c.
func BenchmarkFig7cJoinSelectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig7c(benchScale / 10)
	}
}

// BenchmarkFig7dGroupCardinality regenerates Figure 7d.
func BenchmarkFig7dGroupCardinality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig7d(benchScale)
	}
}

// BenchmarkFig8TPCH regenerates Figure 8 (TPC-H Q1/Q3/Q10 across the four
// engine design points).
func BenchmarkFig8TPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig8(benchSF)
	}
}

// BenchmarkTab3PreparationCost regenerates Table III (query preparation
// cost).
func BenchmarkTab3PreparationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Tab3(benchSF)
	}
}

// --- Focused micro-benchmarks -------------------------------------------------
//
// The following benchmarks time single building blocks so `-benchmem` can
// attribute allocation behaviour per engine; they complement the
// figure-level runners above.

func benchCatalogAndPlan(b *testing.B, query string) *plan.Plan {
	b.Helper()
	cat := tpch.Generate(tpch.Config{ScaleFactor: benchSF, Seed: 42})
	stmt, err := sql.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkQ1Holistic times TPC-H Q1 on the holistic engine.
func BenchmarkQ1Holistic(b *testing.B) {
	p := benchCatalogAndPlan(b, tpch.Q1)
	eng := core.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ1GenericIterators times TPC-H Q1 on the generic iterator
// engine (the PostgreSQL-class baseline).
func BenchmarkQ1GenericIterators(b *testing.B) {
	p := benchCatalogAndPlan(b, tpch.Q1)
	eng := volcano.NewGeneric()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ3Holistic times TPC-H Q3 on the holistic engine.
func BenchmarkQ3Holistic(b *testing.B) {
	p := benchCatalogAndPlan(b, tpch.Q3)
	eng := core.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodeGeneration times template instantiation + compilation for
// TPC-H Q3 (the per-query preparation cost the paper argues is small).
func BenchmarkCodeGeneration(b *testing.B) {
	p := benchCatalogAndPlan(b, tpch.Q3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Generate(p, codegen.OptO2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeJoinShapes times the §VI-A merge join across the five code
// shapes (the real-time axis of Figure 5a).
func BenchmarkMergeJoinShapes(b *testing.B) {
	outer := hardcoded.BuildJoinInput("outer", 2000, 20)
	inner := hardcoded.BuildJoinInput("inner", 2000, 20)
	for _, shape := range hardcoded.Shapes() {
		b.Run(shape.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hardcoded.RunMergeJoin(shape, outer, inner, nil)
			}
		})
	}
}

// BenchmarkMapAggShapes times §VI-A map aggregation across the five code
// shapes (the real-time axis of Figure 6b).
func BenchmarkMapAggShapes(b *testing.B) {
	input := hardcoded.BuildAggInput(50000, 10)
	for _, shape := range hardcoded.Shapes() {
		b.Run(shape.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hardcoded.RunMapAgg(shape, input, 10, nil)
			}
		})
	}
}

// BenchmarkParallelAblation compares the sequential holistic engine with
// the multithreaded extension of §VII on a partitioned join + aggregation
// workload (the ablation DESIGN.md calls out for the parallel feature).
func BenchmarkParallelAblation(b *testing.B) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: benchSF, Seed: 42})
	stmt, err := sql.Parse(tpch.Q10)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		eng := core.NewEngine()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Execute(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4} {
		eng := core.NewParallelEngine(workers)
		b.Run(eng.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Execute(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelFusedExecution times the morsel-driven parallel
// fused pipelines at 1/2/4 workers on the serving join+agg shape. The
// fixture is test-sized, so the serial threshold is dropped to force
// parallel generation — this keeps the parallel paths in the CI
// `-benchtime 1x` smoke; the authoritative scaling numbers live in
// BENCH_parallel.json (via cmd/hique-bench -json -suite parallel),
// whose fixture is big enough to parallelise naturally.
func BenchmarkParallelFusedExecution(b *testing.B) {
	prev := codegen.SetParallelThreshold(1)
	defer codegen.SetParallelThreshold(prev)
	const rows = 4096
	const q = "SELECT d.label, COUNT(*) AS n, SUM(f.price) AS total " +
		"FROM bench_items f, bench_dims d WHERE f.grp = d.id AND f.price > 10.0 GROUP BY d.label"
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			db := Open(WithPlanCache(64), WithParallelism(w))
			if err := db.CreateTable("bench_items", Int("id"), Int("grp"), Float("price")); err != nil {
				b.Fatal(err)
			}
			if err := db.CreateTable("bench_dims", Int("id"), Char("label", 16)); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < rows; i++ {
				if err := db.Insert("bench_items", int64(i), int64(i%16), float64(i%1000)); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < 16; i++ {
				if err := db.Insert("bench_dims", int64(i), fmt.Sprintf("dim-%02d", i)); err != nil {
					b.Fatal(err)
				}
			}
			var res Result
			if err := db.QueryInto(&res, q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.QueryInto(&res, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Serving-subsystem benchmarks --------------------------------------------
//
// These time the query-serving layer: the compiled-plan cache (cold
// preparation vs warm hit; the amortisation of Table III's preparation
// cost) and concurrent end-to-end throughput under per-table reader
// locks.

// servingQuery joins fact and dimension and aggregates: enough operator
// descriptors that preparation (parse -> optimise -> generate -> compile)
// is a visible fraction of a small-table execution, as in the paper's
// Table III workloads.
const servingQuery = "SELECT d.label, COUNT(*) AS n, SUM(f.price) AS total " +
	"FROM bench_items f, bench_dims d WHERE f.grp = d.id AND f.price > 10.0 " +
	"GROUP BY d.label ORDER BY d.label"

func servingDB(b *testing.B, options ...Option) *DB {
	b.Helper()
	db := Open(options...)
	if err := db.CreateTable("bench_items", Int("id"), Int("grp"), Float("price")); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateTable("bench_dims", Int("id"), Char("label", 16)); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Insert("bench_items", int64(i), int64(i%16), float64(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		if err := db.Insert("bench_dims", int64(i), fmt.Sprintf("dim-%02d", i)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkServingColdVsWarm compares a repeated query against a cold
// and a warm plan cache: cold misses every time (the catalogue version
// is bumped between calls, as DDL or stats refresh would) and pays
// parse -> optimise -> generate -> compile before executing; warm pays
// one lexer pass and runs the cached executable.
func BenchmarkServingColdVsWarm(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		db := servingDB(b, WithPlanCache(64))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.Catalog().BumpVersion() // invalidate: every lookup misses
			if _, err := db.Query(servingQuery); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s := db.Stats(); s.Cache.Hits != 0 {
			b.Fatalf("cold run should never hit the cache: %+v", s.Cache)
		}
	})
	b.Run("warm", func(b *testing.B) {
		db := servingDB(b, WithPlanCache(64))
		if _, err := db.Query(servingQuery); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(servingQuery); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s := db.Stats(); s.Cache.Hits < uint64(b.N) {
			b.Fatalf("warm run should hit the cache: %+v", s.Cache)
		}
	})
}

// BenchmarkJoinAggServing measures the fused join+aggregation pipeline
// (DESIGN.md §4.5) against the general operator walk on the exact same
// plan: the warm analytics shape — two-table equi-join with GROUP BY —
// runs fused by default; SetFusion(false) forces the staged engine. The
// authoritative recorded numbers live in BENCH_serving.json (JoinAgg/*,
// via cmd/hique-bench -json); this wrapper keeps the shape in the
// `go test -bench` smoke.
func BenchmarkJoinAggServing(b *testing.B) {
	const rows = 4096
	joinDB := func(b *testing.B) *DB {
		b.Helper()
		db := Open(WithPlanCache(64))
		if err := db.CreateTable("bench_items", Int("id"), Int("grp"), Float("price")); err != nil {
			b.Fatal(err)
		}
		if err := db.CreateTable("bench_dims", Int("id"), Char("label", 16)); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := db.Insert("bench_items", int64(i), int64(i%16), float64(i%1000)); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 16; i++ {
			if err := db.Insert("bench_dims", int64(i), fmt.Sprintf("dim-%02d", i)); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	const q = "SELECT d.label, COUNT(*) AS n, SUM(f.price) AS total " +
		"FROM bench_items f, bench_dims d WHERE f.grp = d.id AND f.price > 10.0 GROUP BY d.label"
	warm := func(b *testing.B, db *DB) {
		b.Helper()
		var res Result
		if err := db.QueryInto(&res, q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.QueryInto(&res, q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("warm-fused", func(b *testing.B) {
		warm(b, joinDB(b))
	})
	b.Run("warm-general", func(b *testing.B) {
		codegen.SetFusion(false)
		defer codegen.SetFusion(true)
		warm(b, joinDB(b))
	})
}

// BenchmarkPointQueryShapeCache measures the production shape the plan
// cache existed for: N same-shape point queries with N distinct literals
// (`SELECT ... WHERE id = <value>`, a different value every call).
//
//   - auto-param: the statement collapses to its parameterized shape, so
//     the workload compiles once and then always hits (hit% ≈ 100).
//   - literal-keyed: the pre-parameterization behaviour — every distinct
//     literal is a distinct cache key, so the workload recompiles on
//     every call (hit% ≈ 0) and pays the whole preparation pipeline.
//   - explicit-params: the client binds '?' itself; same single compiled
//     artefact, minus the literal-lifting lexer pass.
//
// The hit% metric comes from the plan-cache counters; see EXPERIMENTS.md
// for recorded numbers.
func BenchmarkPointQueryShapeCache(b *testing.B) {
	const rows = 4096
	pointDB := func(b *testing.B, options ...Option) *DB {
		b.Helper()
		db := Open(options...)
		if err := db.CreateTable("bench_points", Int("id"), Float("v")); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := db.Insert("bench_points", int64(i), float64(i)*0.5); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	reportHitRate := func(b *testing.B, db *DB) {
		s := db.Stats()
		if total := s.Cache.Hits + s.Cache.Misses; total > 0 {
			b.ReportMetric(float64(s.Cache.Hits)/float64(total)*100, "hit%")
		}
	}
	b.Run("auto-param", func(b *testing.B) {
		db := pointDB(b, WithPlanCache(256))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(fmt.Sprintf("SELECT v FROM bench_points WHERE id = %d", i%rows)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportHitRate(b, db)
	})
	b.Run("literal-keyed", func(b *testing.B) {
		db := pointDB(b, WithPlanCache(256), WithAutoParam(false))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(fmt.Sprintf("SELECT v FROM bench_points WHERE id = %d", i%rows)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportHitRate(b, db)
	})
	b.Run("explicit-params", func(b *testing.B) {
		db := pointDB(b, WithPlanCache(256))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("SELECT v FROM bench_points WHERE id = ?", i%rows); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportHitRate(b, db)
	})
}

// BenchmarkServingConcurrency drives the warm-cache serving path from 1
// to 16 goroutines sharing one DB (the per-table RWMutex read path).
func BenchmarkServingConcurrency(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			db := servingDB(b, WithPlanCache(64))
			if _, err := db.Query(servingQuery); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			errc := make(chan error, g)
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := db.Query(servingQuery); err != nil {
							errc <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errc)
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
		})
	}
}
