package hique

// Tests for the query-serving subsystem: plan-cache behaviour (hits skip
// preparation, stale plans self-invalidate on inserts / index builds /
// DDL) and concurrency of the public DB surface (run with -race).

import (
	"fmt"
	"sync"
	"testing"
)

func cachedDB(t *testing.T) *DB {
	t.Helper()
	db := Open(WithPlanCache(16))
	if err := db.CreateTable("orders", Int("id"), Int("grp"), Float("amount")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Insert("orders", int64(i), int64(i%4), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestWarmCacheSkipsPreparation pins the acceptance criterion: the
// second execution of an identical statement is served from the plan
// cache (a hit, no recompile), and equal results come back.
func TestWarmCacheSkipsPreparation(t *testing.T) {
	db := cachedDB(t)
	const q = "SELECT grp, COUNT(*) AS n FROM orders GROUP BY grp ORDER BY grp"

	cold, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Cache.Misses != 1 || s.Cache.Hits != 0 || s.Cache.Entries != 1 {
		t.Fatalf("after cold query: %+v", s.Cache)
	}

	warm, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	s = db.Stats()
	if s.Cache.Hits != 1 || s.Cache.Misses != 1 {
		t.Fatalf("after warm query: %+v", s.Cache)
	}
	if fmt.Sprint(cold.Rows) != fmt.Sprint(warm.Rows) {
		t.Fatalf("warm rows %v != cold rows %v", warm.Rows, cold.Rows)
	}

	// Normalisation: case and spacing differences share one entry.
	if _, err := db.Query("select   GRP, count(*) AS n from ORDERS group by grp order by grp"); err != nil {
		t.Fatal(err)
	}
	s = db.Stats()
	if s.Cache.Hits != 2 || s.Cache.Entries != 1 {
		t.Fatalf("normalised variant should hit the same entry: %+v", s.Cache)
	}
}

// TestCacheInvalidationOnInsert pins correctness over speed: an insert
// changes statistics (and possibly value directories baked into the
// compiled plan), so the cached query must recompile and the fresh data
// must appear in the result.
func TestCacheInvalidationOnInsert(t *testing.T) {
	db := cachedDB(t)
	const q = "SELECT grp, COUNT(*) AS n FROM orders GROUP BY grp ORDER BY grp"

	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Rows))
	}

	// A row in a brand-new group: a stale plan's group directory would
	// not know value 99.
	if err := db.Insert("orders", int64(1000), int64(99), 1.0); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("groups after insert = %d, want 5", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last[0].(int64) != 99 || last[1].(int64) != 1 {
		t.Fatalf("new group row = %v, want [99 1]", last)
	}
	s := db.Stats()
	if s.Cache.Invalidations == 0 {
		t.Fatalf("insert should have invalidated the cached plan: %+v", s.Cache)
	}
}

// TestCacheInvalidationOnBuildIndex: an index build changes the
// catalogue version (the optimizer may now pick an index scan), so
// cached plans recompile.
func TestCacheInvalidationOnBuildIndex(t *testing.T) {
	db := cachedDB(t)
	const q = "SELECT id FROM orders WHERE id = 42"

	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("orders", "id"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 42 {
		t.Fatalf("rows = %v", res.Rows)
	}
	s := db.Stats()
	if s.Cache.Invalidations == 0 {
		t.Fatalf("index build should have invalidated cached plans: %+v", s.Cache)
	}
	// The recompiled entry serves hits again at the new version.
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if s = db.Stats(); s.Cache.Hits == 0 {
		t.Fatalf("expected a hit after recompilation: %+v", s.Cache)
	}
}

// TestCacheInvalidationOnCreateTable: DDL bumps the catalogue version,
// so every cached plan (conservatively) recompiles rather than risking
// a stale name binding.
func TestCacheInvalidationOnCreateTable(t *testing.T) {
	db := cachedDB(t)
	const q = "SELECT COUNT(*) AS n FROM orders"

	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("orders_new", Int("id")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Cache.Invalidations == 0 {
		t.Fatalf("CreateTable should have invalidated cached plans: %+v", s.Cache)
	}
}

// TestConcurrentInsertQuery is the -race regression for the serving
// subsystem's locking: concurrent writers (Insert, stale-stats marking)
// and readers (Query through the plan cache) on the same table must not
// race, and every query must observe an internally consistent snapshot.
func TestConcurrentInsertQuery(t *testing.T) {
	db := Open(WithPlanCache(16))
	if err := db.CreateTable("t", Int("id"), Int("grp")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Insert("t", int64(i), int64(i%3)); err != nil {
			t.Fatal(err)
		}
	}

	const writers, readers, perWorker = 4, 4, 50
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := db.Insert("t", int64(1000+w*perWorker+i), int64(i%3)); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := db.Query("SELECT grp, COUNT(*) AS n FROM t GROUP BY grp")
				if err != nil {
					errc <- err
					return
				}
				// The snapshot must be internally consistent: group
				// counts sum to a row count the table passed through.
				var sum int64
				for _, row := range res.Rows {
					sum += row[1].(int64)
				}
				if sum < 50 || sum > 50+writers*perWorker {
					errc <- fmt.Errorf("inconsistent snapshot: %d rows", sum)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	res, err := db.Query("SELECT COUNT(*) AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 50+writers*perWorker {
		t.Fatalf("final rows = %d, want %d", got, 50+writers*perWorker)
	}
}

// TestGrouplessAggregateAllEngines pins the zero-width-tuple staging
// path (COUNT(*)/SUM with no GROUP BY) on every engine; it used to
// panic on all of them.
func TestGrouplessAggregateAllEngines(t *testing.T) {
	db := cachedDB(t)
	for _, e := range []Engine{Holistic, HolisticUnoptimized, GenericIterators, OptimizedIterators, ColumnStore} {
		db.SetEngine(e)
		res, err := db.Query("SELECT COUNT(*) AS n, SUM(amount) AS total FROM orders")
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("%v: rows = %d, want 1", e, len(res.Rows))
		}
		if n := res.Rows[0][0].(int64); n != 100 {
			t.Fatalf("%v: count = %d, want 100", e, n)
		}
		if total := res.Rows[0][1].(float64); total != 4950 {
			t.Fatalf("%v: sum = %v, want 4950", e, total)
		}

		// Empty input: SQL still requires one identity row (COUNT = 0).
		res, err = db.Query("SELECT COUNT(*) AS n, SUM(amount) AS total FROM orders WHERE amount < 0.0")
		if err != nil {
			t.Fatalf("%v (empty): %v", e, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("%v (empty): rows = %d, want 1", e, len(res.Rows))
		}
		if n := res.Rows[0][0].(int64); n != 0 {
			t.Fatalf("%v (empty): count = %d, want 0", e, n)
		}
	}
}

// TestCacheSurvivesUnrelatedWrites pins the per-table invalidation
// scope: a hot writer on one table must not evict cached plans over
// other tables (a global version counter would collapse the hit rate).
func TestCacheSurvivesUnrelatedWrites(t *testing.T) {
	db := cachedDB(t)
	if err := db.CreateTable("hot", Int("x")); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT grp, COUNT(*) AS n FROM orders GROUP BY grp ORDER BY grp"
	if _, err := db.Query(q); err != nil { // compile + cache
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Insert("hot", int64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Query("SELECT COUNT(*) AS n FROM hot"); err != nil { // forces stats refresh of hot
			t.Fatal(err)
		}
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	s := db.Stats()
	// Only the hot-table plan recompiles: its first round is a compile
	// miss, the remaining 9 rounds are invalidations. The orders plan
	// must keep hitting all 10 rounds.
	if s.Cache.Invalidations != 9 {
		t.Fatalf("invalidations = %d, want 9 (hot only): %+v", s.Cache.Invalidations, s.Cache)
	}
	if s.Cache.Hits != 10 {
		t.Fatalf("orders plan should hit every round: %+v", s.Cache)
	}
}

// TestConcurrentDDLAndQuery mixes CreateTable / BuildIndex with cached
// queries; every path must stay race-free and correct.
func TestConcurrentDDLAndQuery(t *testing.T) {
	db := cachedDB(t)
	var wg sync.WaitGroup
	errc := make(chan error, 3)
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := db.CreateTable(fmt.Sprintf("aux_%d", i), Int("x")); err != nil {
				errc <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		if err := db.BuildIndex("orders", "id"); err != nil {
			errc <- err
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := db.Query("SELECT id FROM orders WHERE id < 10"); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestQueryRacesTableCreation queries a table while another goroutine
// creates it and immediately floods it with inserts: the query must
// either fail cleanly with "unknown table" or run fully locked against
// the new table — never scan it unlocked (caught by -race).
func TestQueryRacesTableCreation(t *testing.T) {
	for round := 0; round < 20; round++ {
		db := Open(WithPlanCache(8))
		name := fmt.Sprintf("born_%d", round)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := db.CreateTable(name, Int("x")); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 200; i++ {
				if err := db.Insert(name, int64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := db.Query("SELECT COUNT(*) AS n FROM " + name)
				if err != nil {
					continue // not yet created: a clean failure is fine
				}
				if n := res.Rows[0][0].(int64); n < 0 || n > 200 {
					t.Errorf("impossible count %d", n)
					return
				}
			}
		}()
		wg.Wait()
	}
}
