package hique

// Tests for the fused join+aggregation pipeline: two-table equi-joins
// with optional GROUP BY, ORDER BY, and LIMIT must produce byte-identical
// results across all five engines and across the fused/cached/general
// execution routes — literal, parameterized, and index-backed alike. The
// concurrency test runs under -race in CI and doubles as the deadlock
// check for the multi-table (ID-ordered) reader locks against the DML
// path's single-table writer locks.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// joinTestDB builds the analytics fixture: a multi-page fact table and a
// small dimension, the star shape the fused pipeline targets.
func joinTestDB(t *testing.T, options ...Option) *DB {
	t.Helper()
	db := Open(options...)
	if err := db.CreateTable("fact", Int("id"), Int("grp"), Float("price"), Date("day")); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("dim", Int("id"), Char("label", 12), Int("bucket")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		if err := db.Insert("fact", int64(i), int64(i%24), float64(i%700)+0.25, int64(18000+i%45)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 24; i++ {
		if err := db.Insert("dim", int64(i), fmt.Sprintf("dim-%02d", i), int64(i%5)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// joinQueries covers the fused join pipeline's shapes: plain joins,
// residual and parameterized filters (including on the join-key column),
// computed projections, LIMIT, GROUP BY aggregation with every aggregate
// function, group-less aggregates, and ORDER BY tails. Queries without
// ORDER BY join on unique keys so row order is fully determined.
var joinQueries = []struct {
	sql  string
	args []any
}{
	{sql: "SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id ORDER BY f.id"},
	{sql: "SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id AND f.price > 500.0 ORDER BY f.id"},
	{sql: "SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id AND f.price > ? ORDER BY f.id", args: []any{500.0}},
	{sql: "SELECT f.id, d.label, f.price * 2.0 AS p2 FROM fact f, dim d WHERE f.grp = d.id AND d.bucket = 3 ORDER BY f.id"},
	{sql: "SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id AND d.id >= ? ORDER BY f.id", args: []any{12}},
	{sql: "SELECT f.id, d.label FROM fact f, dim d WHERE f.id = d.id"}, // unique-unique: merge order is total
	{sql: "SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id ORDER BY f.id LIMIT 7"},
	{sql: "SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id ORDER BY f.id LIMIT 0"},
	{sql: "SELECT d.label, COUNT(*) AS n, SUM(f.price) AS total FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label ORDER BY d.label"},
	{sql: "SELECT d.label, MIN(f.id) AS lo, MAX(f.id) AS hi, AVG(f.price) AS mean FROM fact f, dim d WHERE f.grp = d.id AND f.day >= ? GROUP BY d.label ORDER BY d.label", args: []any{"2019-04-20"}},
	{sql: "SELECT d.bucket, SUM(f.price * 0.5) AS half FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.bucket ORDER BY d.bucket"},
	{sql: "SELECT COUNT(*) AS n, SUM(f.price) AS s FROM fact f, dim d WHERE f.grp = d.id AND d.bucket = 1"},
	{sql: "SELECT COUNT(*) AS n FROM fact f, dim d WHERE f.grp = d.id AND d.bucket = ?", args: []any{1}},
	{sql: "SELECT d.label, COUNT(*) AS n FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label ORDER BY d.label LIMIT 3"},
}

// TestFusedJoinMatchesAllEngines asserts byte-identical results for
// every join shape across (a) all five engines uncached, (b) the cached
// holistic path with auto-parameterization (the fused pipeline), (c) the
// cached path with literal keys, and (d) index-backed variants (indexes
// on both join keys switch the planner to the merge join, with the
// dimension side streamed off the B+-tree in key order).
func TestFusedJoinMatchesAllEngines(t *testing.T) {
	engines := []Engine{Holistic, GenericIterators, OptimizedIterators, ColumnStore, HolisticUnoptimized}

	type route struct {
		name string
		db   *DB
	}
	routes := []route{
		{"cached-auto-param", joinTestDB(t, WithPlanCache(64))},
		{"cached-literal-keyed", joinTestDB(t, WithPlanCache(64), WithAutoParam(false))},
		{"cached-indexed", joinTestDB(t, WithPlanCache(64))},
	}
	for _, idx := range [][2]string{{"fact", "grp"}, {"fact", "id"}, {"dim", "id"}} {
		if err := routes[2].db.BuildIndex(idx[0], idx[1]); err != nil {
			t.Fatal(err)
		}
	}
	uncached := joinTestDB(t)
	indexed := joinTestDB(t) // index-backed, uncached: every engine sees the merge-selected plan
	for _, idx := range [][2]string{{"fact", "grp"}, {"fact", "id"}, {"dim", "id"}} {
		if err := indexed.BuildIndex(idx[0], idx[1]); err != nil {
			t.Fatal(err)
		}
	}

	for _, q := range joinQueries {
		var want *Result
		for _, e := range engines {
			uncached.SetEngine(e)
			got, err := uncached.Query(q.sql, q.args...)
			if err != nil {
				t.Fatalf("%s on %v: %v", q.sql, e, err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Fatalf("%s: engine %v diverges:\n got %v\nwant %v", q.sql, e, got.Rows, want.Rows)
			}
		}
		// The index-backed plan (merge join) must produce the same rows
		// on every engine as the un-indexed plan.
		for _, e := range engines {
			indexed.SetEngine(e)
			got, err := indexed.Query(q.sql, q.args...)
			if err != nil {
				t.Fatalf("%s indexed on %v: %v", q.sql, e, err)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Fatalf("%s: indexed %v diverges:\n got %v\nwant %v", q.sql, e, got.Rows, want.Rows)
			}
		}
		for _, r := range routes {
			// Twice: the first call compiles, the second exercises the
			// warm fused path against recycled scratch and frames.
			for pass := 0; pass < 2; pass++ {
				got, err := r.db.Query(q.sql, q.args...)
				if err != nil {
					t.Fatalf("%s via %s: %v", q.sql, r.name, err)
				}
				if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) {
					t.Fatalf("%s via %s (pass %d) diverges:\n got %v\nwant %v", q.sql, r.name, pass, got.Rows, want.Rows)
				}
			}
		}
	}
}

// TestGroupByLimitAcrossEngines is the regression test for LIMIT over
// aggregation: LIMIT must bound the *groups emitted*, not the input rows
// — volcano's semantics, which every engine and the fused path must
// share. The ordered variants pin exact rows; the unordered variants pin
// the count and that every emitted row is a real group of the unlimited
// result.
func TestGroupByLimitAcrossEngines(t *testing.T) {
	engines := []Engine{Holistic, GenericIterators, OptimizedIterators, ColumnStore, HolisticUnoptimized}
	db := joinTestDB(t)
	cached := joinTestDB(t, WithPlanCache(64))

	cases := []struct {
		limited, full string
		n             int
	}{
		// Single-table aggregation through the general path.
		{"SELECT grp, COUNT(*) AS n FROM fact GROUP BY grp ORDER BY grp LIMIT 4",
			"SELECT grp, COUNT(*) AS n FROM fact GROUP BY grp ORDER BY grp", 4},
		// Join + aggregation through the fused path.
		{"SELECT d.label, COUNT(*) AS n FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label ORDER BY d.label LIMIT 5",
			"SELECT d.label, COUNT(*) AS n FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label ORDER BY d.label", 5},
		// LIMIT larger than the group count: everything comes back.
		{"SELECT d.bucket, SUM(f.price) AS s FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.bucket ORDER BY d.bucket LIMIT 500",
			"SELECT d.bucket, SUM(f.price) AS s FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.bucket ORDER BY d.bucket", 5},
	}
	for _, c := range cases {
		var wantFull *Result
		for _, e := range engines {
			db.SetEngine(e)
			full, err := db.Query(c.full)
			if err != nil {
				t.Fatalf("%s on %v: %v", c.full, e, err)
			}
			if wantFull == nil {
				wantFull = full
			}
			limited, err := db.Query(c.limited)
			if err != nil {
				t.Fatalf("%s on %v: %v", c.limited, e, err)
			}
			n := c.n
			if n > len(full.Rows) {
				n = len(full.Rows)
			}
			if len(limited.Rows) != n {
				t.Fatalf("%s on %v: %d rows, want %d (groups, not input rows)", c.limited, e, len(limited.Rows), n)
			}
			if !reflect.DeepEqual(limited.Rows, full.Rows[:n]) {
				t.Fatalf("%s on %v: limited rows are not the first %d groups:\n got %v\nwant %v",
					c.limited, e, n, limited.Rows, full.Rows[:n])
			}
		}
		// Warm cached (fused) route agrees with the engines.
		for pass := 0; pass < 2; pass++ {
			limited, err := cached.Query(c.limited)
			if err != nil {
				t.Fatal(err)
			}
			n := c.n
			if n > len(wantFull.Rows) {
				n = len(wantFull.Rows)
			}
			if !reflect.DeepEqual(limited.Rows, wantFull.Rows[:n]) {
				t.Fatalf("%s cached (pass %d): got %v want %v", c.limited, pass, limited.Rows, wantFull.Rows[:n])
			}
		}
	}

	// Unordered GROUP BY ... LIMIT: the emitted rows must be a subset of
	// the unlimited groups, n of them, on every engine and the fused path.
	full, err := db.Query("SELECT d.label, COUNT(*) AS n FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label")
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]int64{}
	for _, r := range full.Rows {
		groups[r[0].(string)] = r[1].(int64)
	}
	unordered := "SELECT d.label, COUNT(*) AS n FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label LIMIT 6"
	check := func(res *Result, via string) {
		t.Helper()
		if len(res.Rows) != 6 {
			t.Fatalf("%s: %d rows, want 6 groups", via, len(res.Rows))
		}
		for _, r := range res.Rows {
			if n, ok := groups[r[0].(string)]; !ok || n != r[1].(int64) {
				t.Fatalf("%s: row %v is not a group of the unlimited result", via, r)
			}
		}
	}
	for _, e := range engines {
		db.SetEngine(e)
		res, err := db.Query(unordered)
		if err != nil {
			t.Fatal(err)
		}
		check(res, fmt.Sprintf("engine %v", e))
	}
	for pass := 0; pass < 2; pass++ {
		res, err := cached.Query(unordered)
		if err != nil {
			t.Fatal(err)
		}
		check(res, fmt.Sprintf("cached pass %d", pass))
	}
}

// TestConcurrentJoinQueriesWithWriters floods the warm fused join path
// from many goroutines while writers mutate other tables through the DML
// path: the two-table reader locks (acquired in table-ID order) must
// never deadlock against the single-table writer locks, results on the
// untouched pair must stay exact, and -race must stay silent. A second
// query stream hits the pair being written to and asserts only
// well-formedness (its contents change under it by design).
func TestConcurrentJoinQueriesWithWriters(t *testing.T) {
	db := joinTestDB(t, WithPlanCache(128))
	if err := db.CreateTable("hotfact", Int("id"), Int("grp"), Float("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("hotdim", Int("id"), Char("name", 8)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := db.Insert("hotdim", int64(i), fmt.Sprintf("h%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	stable := "SELECT d.label, COUNT(*) AS n, SUM(f.price) AS s FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label ORDER BY d.label"
	want, err := db.Query(stable)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 60
	errc := make(chan error, goroutines+2)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var res Result
			for i := 0; i < iters; i++ {
				if err := db.QueryInto(&res, stable); err != nil {
					errc <- err
					return
				}
				if len(res.Rows) != len(want.Rows) {
					errc <- fmt.Errorf("goroutine %d iter %d: %d groups, want %d", g, i, len(res.Rows), len(want.Rows))
					return
				}
				// The hot pair changes underneath: only well-formedness.
				if err := db.QueryInto(&res, "SELECT d.name, COUNT(*) AS n FROM hotfact f, hotdim d WHERE f.grp = d.id GROUP BY d.name"); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				if _, err := db.Exec("INSERT INTO hotfact VALUES (?, ?, ?)", w*1000+i, i%8, float64(i)); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// Quiesced: the stable pair still answers exactly.
	got, err := db.Query(stable)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("stable join drifted under concurrent writers:\n got %v\nwant %v", got.Rows, want.Rows)
	}
}
