// Command hique-vet is the engine's invariant checker: a multichecker
// for the internal/lint analyzer suite (lockorder, arenaowner,
// containment, genwf) plus the warmescape build-mode gate.
//
// It runs in three modes:
//
//	hique-vet [-analyzers a,b] [packages...]
//	    standalone: loads packages via `go list -export`, type-checks
//	    them against gc export data, and runs the analyzers. Default
//	    pattern is ./... from the current module.
//
//	go vet -vettool=$(pwd)/hique-vet ./...
//	    vettool: speaks go vet's unitchecker protocol (-flags, -V=full,
//	    then one vet.cfg per package). This is the required CI step; it
//	    also covers in-package _test.go files.
//
//	hique-vet -escape [-escape-config ESCAPES_warm.json]
//	    escape gate: builds the warm packages with -gcflags=-m in a
//	    private GOCACHE and fails on heap escapes in warm-path functions
//	    not admitted by the committed allowlist.
//
// Exit status: 0 clean, 1 operational error, 2 findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hique/internal/lint/driver"
	"hique/internal/lint/warmescape"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet protocol handshakes come before flag parsing: the tool is
	// invoked as `hique-vet -flags` and `hique-vet -V=full`, then once
	// per package as `hique-vet <dir>/vet.cfg`.
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasPrefix(args[0], "-V"):
			fmt.Println("hique-vet version 1")
			return 0
		case strings.HasSuffix(args[0], "vet.cfg"):
			return vetCfgMode(args[0])
		}
	}

	fs := flag.NewFlagSet("hique-vet", flag.ExitOnError)
	analyzersFlag := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	escape := fs.Bool("escape", false, "run the warm-path escape gate instead of the analyzers")
	escapeConfig := fs.String("escape-config", "ESCAPES_warm.json", "warmescape allowlist path")
	fs.Parse(args)

	if *escape {
		return escapeMode(*escapeConfig)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers, err := driver.ByName(*analyzersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hique-vet:", err)
		return 1
	}
	pkgs, err := driver.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hique-vet:", err)
		return 1
	}
	findings := 0
	for _, p := range pkgs {
		if strings.Contains(p.ImportPath, "internal/lint/") && strings.Contains(p.ImportPath, "testdata") {
			continue
		}
		for _, d := range driver.RunAnalyzers(p.Fset, p.Files, p.Pkg, p.Info, analyzers) {
			fmt.Fprintln(os.Stderr, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "hique-vet: %d finding(s)\n", findings)
		return 2
	}
	return 0
}

// vetConfig is the subset of go vet's per-package vet.cfg the tool
// consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetCfgMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hique-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hique-vet: %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts output keeps go vet's bookkeeping happy; the suite exports
	// none.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f := cfg.PackageFile[path]
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, ".go") {
			continue
		}
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		goFiles = append(goFiles, f)
	}
	fset := token.NewFileSet()
	files, pkg, info, errs := driver.TypeCheck(fset, cfg.ImportPath, goFiles, lookup)
	if pkg == nil && len(errs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, e)
		}
		return 1
	}
	analyzers, _ := driver.ByName("")
	ds := driver.RunAnalyzers(fset, files, pkg, info, analyzers)
	writeVetx()
	if len(ds) > 0 {
		for _, d := range ds {
			fmt.Fprintln(os.Stderr, d)
		}
		return 2
	}
	return 0
}

func escapeMode(configPath string) int {
	cfg, err := warmescape.LoadConfig(configPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hique-vet:", err)
		return 1
	}
	findings, err := warmescape.Check(".", cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hique-vet:", err)
		return 1
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "hique-vet: %d warm-path escape(s) not in allowlist\n", len(findings))
		return 2
	}
	return 0
}
