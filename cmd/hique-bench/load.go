// Load suite: an open-loop HTTP load generator against a live
// hique-server, the benchmark half of the critest/benchmark split. Open
// loop means requests fire on a fixed schedule derived from the target
// rate regardless of how fast responses come back — the arrival process
// does not slow down when the server does, so queueing delay shows up
// in the measured latencies instead of being hidden by a closed loop's
// self-throttling (the coordinated-omission trap).
//
// Scenarios are JSON files mixing weighted query classes; without
// -scenario a built-in TPC-H serving mix runs (point lookups dominating,
// periodic analytical queries — the shape a query-serving deployment
// actually sees). Results go to -json as QPS + latency percentiles, the
// format committed as BENCH_load.json.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// LoadQuery is one weighted query class in a scenario.
type LoadQuery struct {
	Name   string `json:"name"`
	SQL    string `json:"sql"`
	Params []any  `json:"params,omitempty"`
	Weight int    `json:"weight"`
}

// Scenario is the on-disk load description. Rate and duration can be
// overridden by the -rate and -duration flags.
type Scenario struct {
	Name     string        `json:"name"`
	RateQPS  float64       `json:"rate_qps"`
	Duration time.Duration `json:"-"`
	// DurationMS is the JSON spelling of Duration.
	DurationMS int64       `json:"duration_ms"`
	Queries    []LoadQuery `json:"queries"`
}

// defaultScenario is the built-in TPC-H serving mix: mostly point
// lookups with periodic analytical queries, over the catalogue
// hique-server -tpch seeds.
func defaultScenario() Scenario {
	return Scenario{
		Name:    "tpch-serving-mix",
		RateQPS: 200,
		Queries: []LoadQuery{
			{Name: "point-lookup", Weight: 6,
				SQL: "SELECT l_orderkey, l_quantity, l_extendedprice FROM lineitem WHERE l_orderkey = ? AND l_linenumber = 1", Params: []any{17}},
			{Name: "range-scan", Weight: 2,
				SQL: "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_extendedprice BETWEEN 20000.0 AND 21000.0 ORDER BY l_orderkey LIMIT 50"},
			{Name: "tpch-q6", Weight: 1,
				SQL: "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"},
			{Name: "group-agg", Weight: 1,
				SQL: "SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag"},
		},
	}
}

// LatencySummary is the percentile block of a load report, in
// microseconds.
type LatencySummary struct {
	P50Us  int64 `json:"p50_us"`
	P90Us  int64 `json:"p90_us"`
	P99Us  int64 `json:"p99_us"`
	MaxUs  int64 `json:"max_us"`
	MeanUs int64 `json:"mean_us"`
}

// QueryReport is the per-class slice of a load report.
type QueryReport struct {
	Name    string         `json:"name"`
	Sent    int            `json:"sent"`
	OK      int            `json:"ok"`
	Errors  int            `json:"errors"`
	Latency LatencySummary `json:"latency"`
}

// LoadReport is the -json output of the load suite (BENCH_load.json).
type LoadReport struct {
	Scenario    string         `json:"scenario"`
	Addr        string         `json:"addr"`
	TargetQPS   float64        `json:"target_qps"`
	DurationS   float64        `json:"duration_s"`
	Sent        int            `json:"sent"`
	OK          int            `json:"ok"`
	Errors      int            `json:"errors"`
	AchievedQPS float64        `json:"achieved_qps"`
	Latency     LatencySummary `json:"latency"`
	PerQuery    []QueryReport  `json:"per_query"`
}

// loadSample is one completed request.
type loadSample struct {
	query   int
	latency time.Duration
	err     bool
}

// runLoad drives the scenario against addr and writes the report to
// jsonOut ("-" or empty for stdout). Request errors do not fail the
// run — they are load-test data — but an unreachable server does.
func runLoad(addr, scenarioPath string, rate float64, duration time.Duration, jsonOut string) error {
	sc := defaultScenario()
	if scenarioPath != "" {
		data, err := os.ReadFile(scenarioPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &sc); err != nil {
			return fmt.Errorf("load: parsing scenario %s: %w", scenarioPath, err)
		}
		sc.Duration = time.Duration(sc.DurationMS) * time.Millisecond
	}
	if rate > 0 {
		sc.RateQPS = rate
	}
	if duration > 0 {
		sc.Duration = duration
	}
	if sc.Duration <= 0 {
		sc.Duration = 10 * time.Second
	}
	if sc.RateQPS <= 0 || len(sc.Queries) == 0 {
		return fmt.Errorf("load: scenario %q needs a positive rate and at least one query", sc.Name)
	}
	for i, q := range sc.Queries {
		if q.Weight <= 0 {
			sc.Queries[i].Weight = 1
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	if err := waitHealthy(client, addr, 30*time.Second); err != nil {
		return err
	}

	// Deterministic weighted schedule: expand the classes into one cycle
	// (a class with weight w appears w times) and walk it round-robin.
	var cycle []int
	for i, q := range sc.Queries {
		for w := 0; w < q.Weight; w++ {
			cycle = append(cycle, i)
		}
	}

	fmt.Fprintf(os.Stderr, "load: scenario %q at %g qps for %s against %s\n",
		sc.Name, sc.RateQPS, sc.Duration, addr)

	interval := time.Duration(float64(time.Second) / sc.RateQPS)
	samples := make(chan loadSample, 4096)
	var collected []loadSample
	done := make(chan struct{})
	go func() {
		for s := range samples {
			collected = append(collected, s)
		}
		close(done)
	}()

	var wg sync.WaitGroup
	sent := 0
	start := time.Now()
	ticker := time.NewTicker(interval)
	for time.Since(start) < sc.Duration {
		<-ticker.C
		qi := cycle[sent%len(cycle)]
		sent++
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			q := sc.Queries[qi]
			t0 := time.Now()
			_, _, err := serverQuery(client, addr, q.SQL, q.Params)
			samples <- loadSample{query: qi, latency: time.Since(t0), err: err != nil}
		}(qi)
	}
	ticker.Stop()
	wg.Wait()
	elapsed := time.Since(start)
	close(samples)
	<-done

	report := buildReport(sc, addr, sent, elapsed, collected)
	fmt.Fprintf(os.Stderr, "load: %d sent, %d ok, %d errors, %.1f qps achieved, p50 %s p99 %s\n",
		report.Sent, report.OK, report.Errors, report.AchievedQPS,
		time.Duration(report.Latency.P50Us)*time.Microsecond,
		time.Duration(report.Latency.P99Us)*time.Microsecond)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if jsonOut == "" || jsonOut == "-" {
		os.Stdout.Write(data)
		return nil
	}
	return os.WriteFile(jsonOut, data, 0o644)
}

// buildReport aggregates the samples into the committed JSON shape.
func buildReport(sc Scenario, addr string, sent int, elapsed time.Duration, samples []loadSample) LoadReport {
	report := LoadReport{
		Scenario:  sc.Name,
		Addr:      addr,
		TargetQPS: sc.RateQPS,
		DurationS: elapsed.Seconds(),
		Sent:      sent,
	}
	var all []time.Duration
	perQuery := make([][]time.Duration, len(sc.Queries))
	perSent := make([]int, len(sc.Queries))
	perErr := make([]int, len(sc.Queries))
	for _, s := range samples {
		perSent[s.query]++
		if s.err {
			report.Errors++
			perErr[s.query]++
			continue
		}
		report.OK++
		all = append(all, s.latency)
		perQuery[s.query] = append(perQuery[s.query], s.latency)
	}
	if elapsed > 0 {
		report.AchievedQPS = float64(report.OK) / elapsed.Seconds()
	}
	report.Latency = summarise(all)
	for i, q := range sc.Queries {
		report.PerQuery = append(report.PerQuery, QueryReport{
			Name:    q.Name,
			Sent:    perSent[i],
			OK:      perSent[i] - perErr[i],
			Errors:  perErr[i],
			Latency: summarise(perQuery[i]),
		})
	}
	return report
}

// summarise sorts and extracts the percentile block.
func summarise(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) int64 {
		i := int(p * float64(len(lat)-1))
		return lat[i].Microseconds()
	}
	var sum time.Duration
	for _, l := range lat {
		sum += l
	}
	return LatencySummary{
		P50Us:  pct(0.50),
		P90Us:  pct(0.90),
		P99Us:  pct(0.99),
		MaxUs:  lat[len(lat)-1].Microseconds(),
		MeanUs: (sum / time.Duration(len(lat))).Microseconds(),
	}
}
