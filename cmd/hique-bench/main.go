// Command hique-bench regenerates the paper's evaluation: every table and
// figure of §VI, printed as text tables.
//
// Usage:
//
//	hique-bench -experiment all                  # everything, default scales
//	hique-bench -experiment fig8 -sf 1.0         # paper-sized TPC-H
//	hique-bench -experiment fig5 -scale 1.0      # paper-sized microbenchmarks
//	hique-bench -json BENCH_serving.json         # machine-readable serving suite
//	hique-bench -json BENCH_parallel.json -suite parallel
//	                                             # morsel-driven parallel suite
//
// Experiments: tab1 fig5 fig6 tab2 fig7a fig7b fig7c fig7d fig8 tab3 all.
//
// -json runs a micro-benchmark suite and writes name / ns_per_op /
// allocs_per_op / bytes_per_op rows to the given file ("-" for stdout),
// so the serving-path perf trajectory can be tracked across revisions as
// committed BENCH_*.json snapshots. -suite selects serving (the
// point-query shape-cache and cold-vs-warm workloads; the default) or
// parallel (fused join+aggregation and range scans at 1/2/4/8 morsel
// workers).
//
// -gate compares the freshly measured warm-path rows against a committed
// snapshot and exits non-zero on regression: allocs/op must not exceed
// the recorded value at all (allocation counts are deterministic), and
// ns/op must stay within -gate-slack of it (latency is noisy on shared
// runners, so the default slack is generous; tighten it on quiet
// hardware). This is the CI perf gate: telemetry is always on, so a pass
// means the serving path carries its metrics within the envelope.
//
// Two further suites target a LIVE server over HTTP (start one with
// hique-server -tpch 0.01), modeled on cri-tools' critest/benchmark
// split:
//
//	hique-bench -suite conformance -addr http://localhost:8080 -sf 0.01
//	    differential end-to-end conformance: TPC-H (golden row counts at
//	    SF 0.01) plus a feature-matrix corpus, every query answered by
//	    both the server and an in-process reference build of the same
//	    catalogue; one PASS/FAIL line per case, non-zero exit on failure.
//	hique-bench -suite load -addr http://localhost:8080 -json BENCH_load.json
//	    open-loop load generator: weighted query mix (built-in TPC-H
//	    serving mix, or a -scenario JSON file) fired at -rate qps for
//	    -duration, reporting achieved QPS and latency percentiles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hique/internal/bench"
	"hique/internal/bench/serving"
)

// gatedWorkloads are the warm serving-path rows the -gate flag enforces:
// the shapes a query-serving deployment actually sits in steady-state.
var gatedWorkloads = []string{
	"PointQueryShapeCache/auto-param",
	"PointQueryShapeCache/explicit-params",
	"ServingColdVsWarm/warm",
	"JoinAgg/warm-fused",
	"JoinAgg/warm-hit-into",
}

func main() {
	experiment := flag.String("experiment", "all", "experiment id ("+strings.Join(bench.Experiments(), ", ")+", or all)")
	scale := flag.Float64("scale", 0.1, "microbenchmark scale relative to the paper's workloads (1.0 = paper size)")
	sf := flag.Float64("sf", 0.1, "TPC-H scale factor (1.0 = paper size, ~6M lineitems)")
	jsonOut := flag.String("json", "", "run the serving micro-benchmarks and write JSON results to this file (\"-\" for stdout)")
	suite := flag.String("suite", "serving", "suite to run: serving / parallel (micro-benchmarks for -json), conformance (differential end-to-end vs a live server at -addr), load (open-loop HTTP load generator)")
	gate := flag.String("gate", "", "compare warm-path results against this BENCH_*.json snapshot and fail on regression")
	gateSlack := flag.Float64("gate-slack", 2.0, "latency regression factor tolerated by -gate (allocs are gated exactly)")
	addr := flag.String("addr", "http://localhost:8080", "live hique-server base URL for -suite conformance / load")
	scenario := flag.String("scenario", "", "scenario JSON file for -suite load (empty = built-in TPC-H serving mix)")
	rate := flag.Float64("rate", 0, "target request rate in qps for -suite load (0 = scenario default)")
	duration := flag.Duration("duration", 0, "wall-clock run length for -suite load (0 = scenario default)")
	flag.Parse()

	switch *suite {
	case "conformance":
		if err := runConformance(*addr, *sf); err != nil {
			fatal(err)
		}
		return
	case "load":
		if err := runLoad(*addr, *scenario, *rate, *duration, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	if *jsonOut != "" || *gate != "" {
		var results []serving.MicroResult
		switch *suite {
		case "serving":
			results = serving.Micro()
		case "parallel":
			if *gate != "" {
				// The gate's envelope rows are the warm serial serving
				// shapes; the parallel suite does not measure them.
				fatal(fmt.Errorf("-gate requires -suite serving"))
			}
			results = serving.Parallel()
		default:
			fatal(fmt.Errorf("unknown suite %q (serving, parallel, conformance, load)", *suite))
		}
		if *jsonOut != "" {
			data, err := json.MarshalIndent(results, "", "  ")
			if err != nil {
				fatal(err)
			}
			data = append(data, '\n')
			if *jsonOut == "-" {
				os.Stdout.Write(data)
			} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				fatal(err)
			}
		}
		if *gate != "" {
			if err := runGate(*gate, *gateSlack, results); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "gate: warm serving path within envelope of %s (slack %.2gx)\n", *gate, *gateSlack)
		}
		return
	}

	start := time.Now()
	var results []bench.Result
	if *experiment == "all" {
		results = bench.All(*scale, *sf)
	} else {
		results = bench.Run(*experiment, *scale, *sf)
	}
	if results == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; options: %s, all\n",
			*experiment, strings.Join(bench.Experiments(), ", "))
		os.Exit(2)
	}
	fmt.Printf("HIQUE evaluation harness (scale=%.3f, sf=%.3f)\n\n", *scale, *sf)
	for _, r := range results {
		fmt.Println(r.Format())
	}
	fmt.Printf("total harness time: %s\n", time.Since(start).Round(time.Millisecond))
}

// runGate checks the measured warm-path rows against the committed
// snapshot at path.
func runGate(path string, slack float64, results []serving.MicroResult) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var envelope []serving.MicroResult
	if err := json.Unmarshal(data, &envelope); err != nil {
		return fmt.Errorf("gate: parsing %s: %w", path, err)
	}
	byName := make(map[string]serving.MicroResult, len(envelope))
	for _, e := range envelope {
		byName[e.Name] = e
	}
	measured := make(map[string]serving.MicroResult, len(results))
	for _, r := range results {
		measured[r.Name] = r
	}
	var failures []string
	for _, name := range gatedWorkloads {
		want, ok := byName[name]
		if !ok {
			return fmt.Errorf("gate: %s has no row %q — regenerate the snapshot", path, name)
		}
		got, ok := measured[name]
		if !ok {
			return fmt.Errorf("gate: benchmark %q did not run", name)
		}
		if got.AllocsPerOp > want.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, envelope %d",
				name, got.AllocsPerOp, want.AllocsPerOp))
		}
		if limit := want.NsPerOp * slack; got.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op, envelope %.0f x %.2g = %.0f",
				name, got.NsPerOp, want.NsPerOp, slack, limit))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("gate: serving path regressed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
