// Command hique-bench regenerates the paper's evaluation: every table and
// figure of §VI, printed as text tables.
//
// Usage:
//
//	hique-bench -experiment all                  # everything, default scales
//	hique-bench -experiment fig8 -sf 1.0         # paper-sized TPC-H
//	hique-bench -experiment fig5 -scale 1.0      # paper-sized microbenchmarks
//
// Experiments: tab1 fig5 fig6 tab2 fig7a fig7b fig7c fig7d fig8 tab3 all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hique/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id ("+strings.Join(bench.Experiments(), ", ")+", or all)")
	scale := flag.Float64("scale", 0.1, "microbenchmark scale relative to the paper's workloads (1.0 = paper size)")
	sf := flag.Float64("sf", 0.1, "TPC-H scale factor (1.0 = paper size, ~6M lineitems)")
	flag.Parse()

	start := time.Now()
	var results []bench.Result
	if *experiment == "all" {
		results = bench.All(*scale, *sf)
	} else {
		results = bench.Run(*experiment, *scale, *sf)
	}
	if results == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; options: %s, all\n",
			*experiment, strings.Join(bench.Experiments(), ", "))
		os.Exit(2)
	}
	fmt.Printf("HIQUE evaluation harness (scale=%.3f, sf=%.3f)\n\n", *scale, *sf)
	for _, r := range results {
		fmt.Println(r.Format())
	}
	fmt.Printf("total harness time: %s\n", time.Since(start).Round(time.Millisecond))
}
