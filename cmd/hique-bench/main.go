// Command hique-bench regenerates the paper's evaluation: every table and
// figure of §VI, printed as text tables.
//
// Usage:
//
//	hique-bench -experiment all                  # everything, default scales
//	hique-bench -experiment fig8 -sf 1.0         # paper-sized TPC-H
//	hique-bench -experiment fig5 -scale 1.0      # paper-sized microbenchmarks
//	hique-bench -json BENCH_serving.json         # machine-readable serving suite
//
// Experiments: tab1 fig5 fig6 tab2 fig7a fig7b fig7c fig7d fig8 tab3 all.
//
// -json runs the serving micro-benchmarks (the point-query shape-cache
// and cold-vs-warm workloads) and writes name / ns_per_op /
// allocs_per_op / bytes_per_op rows to the given file ("-" for stdout),
// so the serving-path perf trajectory can be tracked across revisions as
// committed BENCH_*.json snapshots.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hique/internal/bench"
	"hique/internal/bench/serving"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id ("+strings.Join(bench.Experiments(), ", ")+", or all)")
	scale := flag.Float64("scale", 0.1, "microbenchmark scale relative to the paper's workloads (1.0 = paper size)")
	sf := flag.Float64("sf", 0.1, "TPC-H scale factor (1.0 = paper size, ~6M lineitems)")
	jsonOut := flag.String("json", "", "run the serving micro-benchmarks and write JSON results to this file (\"-\" for stdout)")
	flag.Parse()

	if *jsonOut != "" {
		results := serving.Micro()
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
		return
	}

	start := time.Now()
	var results []bench.Result
	if *experiment == "all" {
		results = bench.All(*scale, *sf)
	} else {
		results = bench.Run(*experiment, *scale, *sf)
	}
	if results == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; options: %s, all\n",
			*experiment, strings.Join(bench.Experiments(), ", "))
		os.Exit(2)
	}
	fmt.Printf("HIQUE evaluation harness (scale=%.3f, sf=%.3f)\n\n", *scale, *sf)
	for _, r := range results {
		fmt.Println(r.Format())
	}
	fmt.Printf("total harness time: %s\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
