// Conformance suite: differential end-to-end checking of a live
// hique-server against a locally built reference database, in the
// spirit of cri-tools' critest (a conformance binary pointed at a live
// endpoint, per-case pass/fail, non-zero exit on any failure).
//
// The reference is the in-process engine over the same TPC-H catalogue
// the server seeds (-tpch <sf> hard-codes Seed 42, and so does this
// suite), so every query has an independently computed expected answer:
// the server must return the same columns, the same row count, and the
// same cells in the same order. Integers, strings, and dates compare
// exactly; floats tolerate 1e-9 relative drift so a server running
// morsel-parallel aggregation (different summation order, last-ulp
// differences) still conforms.
//
// The corpus is the TPC-H queries the repo supports (Q1, Q3, Q6, Q10 —
// with their SF 0.01 golden row counts pinned) plus a feature matrix of
// hand-written queries over the TPC-H schema: N-way joins, JOIN ... ON,
// HAVING by alias and by aggregate text, BETWEEN, expression
// projections, ORDER BY on aggregates, date arithmetic, parameters, and
// EXPLAIN ANALYZE reachability.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"hique"
	"hique/internal/tpch"
)

// confCase is one conformance check: a query, optional parameters, and
// an optional pinned row count (in addition to the differential check).
type confCase struct {
	name    string
	sql     string
	params  []any
	pinRows int // -1 = no pin
}

// tpchGoldenRows pins the TPC-H result cardinalities at SF 0.01
// (Seed 42): a differential pass with the wrong row count would mean
// reference and server share a bug, so the counts are asserted
// independently. Keep in sync with internal/tpch/tpch_test.go.
var tpchGoldenRows = map[int]int{1: 4, 3: 10, 6: 1, 10: 20}

// conformanceCorpus builds the suite: TPC-H first, then the feature
// matrix.
func conformanceCorpus(sf float64) []confCase {
	var cases []confCase
	for _, n := range tpch.QueryNumbers() {
		q, err := tpch.Query(n)
		if err != nil {
			panic(err) // QueryNumbers and Query disagree: a programming error
		}
		pin := -1
		if sf == 0.01 {
			if rows, ok := tpchGoldenRows[n]; ok {
				pin = rows
			}
		}
		cases = append(cases, confCase{name: fmt.Sprintf("tpch-q%02d", n), sql: q, pinRows: pin})
	}
	matrix := []confCase{
		{name: "point-filter", sql: "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem WHERE l_orderkey = 42 ORDER BY l_linenumber", pinRows: -1},
		{name: "between-range", sql: "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_extendedprice BETWEEN 20000.0 AND 21000.0 ORDER BY l_orderkey, l_extendedprice LIMIT 50", pinRows: -1},
		{name: "group-agg", sql: "SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag", pinRows: -1},
		{name: "having-alias", sql: "SELECT l_linenumber, COUNT(*) AS n FROM lineitem GROUP BY l_linenumber HAVING n > 100 ORDER BY l_linenumber", pinRows: -1},
		{name: "having-aggregate", sql: "SELECT o_shippriority, SUM(o_totalprice) AS s FROM orders GROUP BY o_shippriority HAVING SUM(o_totalprice) > 0.0 ORDER BY s DESC", pinRows: -1},
		{name: "having-between", sql: "SELECT l_linenumber, COUNT(*) AS n FROM lineitem GROUP BY l_linenumber HAVING n BETWEEN 1 AND 100000 ORDER BY l_linenumber", pinRows: -1},
		{name: "expr-projection", sql: "SELECT l_orderkey, l_extendedprice * (1 - l_discount) AS net FROM lineitem WHERE l_orderkey < 50 ORDER BY l_orderkey, net", pinRows: -1},
		{name: "join-two-way", sql: "SELECT o_orderkey, c_name FROM customer, orders WHERE c_custkey = o_custkey AND o_totalprice > 200000.0 ORDER BY o_orderkey LIMIT 100", pinRows: -1},
		{name: "join-on-syntax", sql: "SELECT o_orderkey, c_acctbal FROM customer JOIN orders ON c_custkey = o_custkey WHERE c_acctbal < 0.0 ORDER BY o_orderkey LIMIT 100", pinRows: -1},
		{name: "join-three-way-agg", sql: "SELECT n_name, COUNT(*) AS cnt FROM customer, orders, nation WHERE c_custkey = o_custkey AND c_nationkey = n_nationkey GROUP BY n_name ORDER BY cnt DESC, n_name", pinRows: -1},
		{name: "order-by-aggregate", sql: "SELECT l_returnflag, SUM(l_extendedprice) AS s FROM lineitem GROUP BY l_returnflag ORDER BY SUM(l_extendedprice) DESC", pinRows: -1},
		{name: "date-arithmetic", sql: "SELECT COUNT(*) AS n FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' - 90", pinRows: -1},
		{name: "parameterized", sql: "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_orderkey = ? AND l_linenumber = ?", params: []any{17, 1}, pinRows: -1},
	}
	return append(cases, matrix...)
}

// runConformance executes the suite against the server at addr and a
// fresh local reference at the given scale factor, printing one line
// per case and returning an error if any case fails.
func runConformance(addr string, sf float64) error {
	fmt.Fprintf(os.Stderr, "conformance: building SF %g reference catalogue (seed 42)\n", sf)
	ref := hique.Open(hique.WithCatalog(tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: 42})))
	client := &http.Client{Timeout: 60 * time.Second}
	if err := waitHealthy(client, addr, 30*time.Second); err != nil {
		return err
	}

	failed := 0
	cases := conformanceCorpus(sf)
	for _, c := range cases {
		start := time.Now()
		err := checkCase(ref, client, addr, c)
		elapsed := time.Since(start).Round(time.Millisecond)
		if err != nil {
			failed++
			fmt.Printf("FAIL %-20s %v\n", c.name, err)
			continue
		}
		fmt.Printf("PASS %-20s (%s)\n", c.name, elapsed)
	}

	// EXPLAIN ANALYZE must be reachable over the wire (stage table, not
	// rows) — the observability half of the serving contract.
	if err := checkAnalyze(client, addr); err != nil {
		failed++
		fmt.Printf("FAIL %-20s %v\n", "explain-analyze", err)
	} else {
		fmt.Printf("PASS %-20s\n", "explain-analyze")
	}

	total := len(cases) + 1
	if failed > 0 {
		return fmt.Errorf("conformance: %d/%d cases failed", failed, total)
	}
	fmt.Fprintf(os.Stderr, "conformance: %d/%d cases passed against %s\n", total, total, addr)
	return nil
}

// waitHealthy polls GET /healthz until the server reports ready, so the
// suite can start in CI the moment the server finishes recovery.
func waitHealthy(client *http.Client, addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("conformance: server at %s not healthy after %s: %v", addr, budget, err)
			}
			return fmt.Errorf("conformance: server at %s not healthy after %s", addr, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// serverQuery posts one query and decodes the response with
// json.Number cells, preserving the integer/float distinction the
// differential comparison needs.
func serverQuery(client *http.Client, addr, sqlText string, params []any) (columns []string, rows [][]any, err error) {
	body, err := json.Marshal(map[string]any{"sql": sqlText, "params": params})
	if err != nil {
		return nil, nil, err
	}
	resp, err := client.Post(addr+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = dec.Decode(&e)
		return nil, nil, fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, e.Error)
	}
	var out struct {
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}
	if err := dec.Decode(&out); err != nil {
		return nil, nil, fmt.Errorf("decoding response: %w", err)
	}
	return out.Columns, out.Rows, nil
}

// checkCase runs one query on both sides and compares.
func checkCase(ref *hique.DB, client *http.Client, addr string, c confCase) error {
	want, err := ref.Query(c.sql, c.params...)
	if err != nil {
		return fmt.Errorf("reference: %v", err)
	}
	if c.pinRows >= 0 && len(want.Rows) != c.pinRows {
		return fmt.Errorf("reference returned %d rows, golden pin is %d", len(want.Rows), c.pinRows)
	}
	cols, rows, err := serverQuery(client, addr, c.sql, c.params)
	if err != nil {
		return err
	}
	if len(cols) != len(want.Columns) {
		return fmt.Errorf("server columns %v, reference %v", cols, want.Columns)
	}
	for i := range cols {
		if cols[i] != want.Columns[i] {
			return fmt.Errorf("column %d: server %q, reference %q", i, cols[i], want.Columns[i])
		}
	}
	if len(rows) != len(want.Rows) {
		return fmt.Errorf("server returned %d rows, reference %d", len(rows), len(want.Rows))
	}
	for r := range rows {
		if len(rows[r]) != len(want.Rows[r]) {
			return fmt.Errorf("row %d: server has %d cells, reference %d", r, len(rows[r]), len(want.Rows[r]))
		}
		for col := range rows[r] {
			if err := cellsEqual(want.Rows[r][col], rows[r][col]); err != nil {
				return fmt.Errorf("row %d col %s: %v", r, cols[col], err)
			}
		}
	}
	return nil
}

// cellsEqual compares one reference cell (int64 / float64 / string from
// hique.Result) against one server cell (json.Number / string). Floats
// allow 1e-9 relative drift; everything else is exact.
func cellsEqual(want, got any) error {
	switch w := want.(type) {
	case string:
		g, ok := got.(string)
		if !ok || g != w {
			return fmt.Errorf("server %v (%T), reference %q", got, got, w)
		}
	case int64:
		n, ok := got.(json.Number)
		if !ok {
			return fmt.Errorf("server %v (%T), reference %d", got, got, w)
		}
		g, err := n.Int64()
		if err != nil || g != w {
			return fmt.Errorf("server %s, reference %d", n, w)
		}
	case float64:
		n, ok := got.(json.Number)
		if !ok {
			return fmt.Errorf("server %v (%T), reference %g", got, got, w)
		}
		g, err := n.Float64()
		if err != nil {
			return fmt.Errorf("server %s is not a float: %v", n, err)
		}
		diff := g - w
		if diff < 0 {
			diff = -diff
		}
		scale := w
		if scale < 0 {
			scale = -scale
		}
		if diff > 1e-9*scale+1e-9 {
			return fmt.Errorf("server %g, reference %g (diff %g)", g, w, diff)
		}
	default:
		return fmt.Errorf("reference cell has unexpected type %T", want)
	}
	return nil
}

// checkAnalyze asserts EXPLAIN ANALYZE answers with a stage table.
func checkAnalyze(client *http.Client, addr string) error {
	body, _ := json.Marshal(map[string]any{
		"sql": "EXPLAIN ANALYZE SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
	})
	resp, err := client.Post(addr+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var out struct {
		Engine string `json:"engine"`
		Plan   string `json:"plan"`
		Stages []any  `json:"stages"`
		Rows   int    `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	if out.Engine == "" || len(out.Stages) == 0 || !strings.Contains(out.Plan, "Aggregate:") {
		return fmt.Errorf("response missing engine/stages/plan (engine=%q, %d stages)", out.Engine, len(out.Stages))
	}
	return nil
}
