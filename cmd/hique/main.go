// Command hique is an interactive SQL shell over the holistic engine.
//
// Usage:
//
//	hique                       # empty database
//	hique -dir ./data           # open tables written by hique-gen
//	hique -tpch 0.01            # in-memory TPC-H at the given scale
//
// Shell commands:
//
//	\tables              list tables
//	\engine NAME         switch engine (holistic, generic-iterators,
//	                     optimized-iterators, column-store, holistic-O0)
//	\explain SELECT ...  show the optimizer plan
//	\source  SELECT ...  show the generated source
//	\q                   quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"hique/internal/catalog"
	"hique/internal/codegen"
	"hique/internal/core"
	"hique/internal/dsm"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/tpch"
	"hique/internal/types"
	"hique/internal/volcano"
)

type executor interface {
	Name() string
	Execute(p *plan.Plan) (*storage.Table, error)
}

type codegenExec struct{ level codegen.OptLevel }

func (c codegenExec) Name() string { return "holistic" + c.level.String() }
func (c codegenExec) Execute(p *plan.Plan) (*storage.Table, error) {
	q, err := codegen.Generate(p, c.level)
	if err != nil {
		return nil, err
	}
	return q.Run()
}

func main() {
	dir := flag.String("dir", "", "open tables from this directory")
	tpchSF := flag.Float64("tpch", 0, "load an in-memory TPC-H catalogue at this scale factor")
	flag.Parse()

	cat := catalog.New()
	switch {
	case *dir != "":
		mgr, err := storage.NewManager(*dir)
		if err != nil {
			fatal(err)
		}
		names, err := mgr.List()
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			t, err := mgr.Load(n)
			if err != nil {
				fatal(err)
			}
			cat.Register(t)
			fmt.Printf("loaded %s (%d rows)\n", n, t.NumRows())
		}
	case *tpchSF > 0:
		cat = tpch.Generate(tpch.Config{ScaleFactor: *tpchSF, Seed: 42})
		fmt.Printf("generated TPC-H at SF %.3f\n", *tpchSF)
	}

	var exec executor = core.NewEngine()
	fmt.Println("HIQUE shell — engine:", exec.Name(), "(\\q to quit)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("hique> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\tables`:
			for _, n := range cat.Names() {
				e, _ := cat.Lookup(n)
				fmt.Printf("  %-12s %9d rows  %s\n", n, e.Table.NumRows(), e.Table.Schema())
			}
		case strings.HasPrefix(line, `\engine `):
			name := strings.TrimSpace(strings.TrimPrefix(line, `\engine `))
			switch name {
			case "holistic":
				exec = core.NewEngine()
			case "generic-iterators":
				exec = volcano.NewGeneric()
			case "optimized-iterators":
				exec = volcano.NewOptimized()
			case "column-store":
				exec = dsm.NewEngine()
			case "holistic-O0":
				exec = codegenExec{level: codegen.OptO0}
			default:
				fmt.Println("unknown engine:", name)
			}
			fmt.Println("engine:", exec.Name())
		case strings.HasPrefix(line, `\explain `):
			if p, err := buildPlan(cat, strings.TrimPrefix(line, `\explain `)); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(p.Explain())
			}
		case strings.HasPrefix(line, `\source `):
			if p, err := buildPlan(cat, strings.TrimPrefix(line, `\source `)); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(codegen.EmitSource(p))
			}
		default:
			runQuery(cat, exec, line)
		}
		fmt.Print("hique> ")
	}
}

func buildPlan(cat *catalog.Catalog, query string) (*plan.Plan, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return plan.Build(stmt, cat)
}

func runQuery(cat *catalog.Catalog, exec executor, query string) {
	p, err := buildPlan(cat, query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	out, err := exec.Execute(p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s := out.Schema()
	fmt.Println(strings.Join(p.OutputNames, " | "))
	shown := 0
	out.Scan(func(tuple []byte) bool {
		cells := make([]string, s.NumColumns())
		for i := range cells {
			cells[i] = s.GetDatum(tuple, i).String()
		}
		fmt.Println(strings.Join(cells, " | "))
		shown++
		return shown < 50
	})
	if out.NumRows() > shown {
		fmt.Printf("... (%d rows total)\n", out.NumRows())
	} else {
		fmt.Printf("(%d rows)\n", out.NumRows())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// silence unused-import lint for types (Datum String used via schema).
var _ = types.IntDatum
