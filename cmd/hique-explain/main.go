// Command hique-explain shows what the optimizer and the code generator do
// with a query: the operator descriptor list (Fig. 3 input) and the
// generated query-specific source file (Fig. 3 output).
//
// Usage:
//
//	hique-explain -sf 0.01 "SELECT ... FROM lineitem ..."
//	hique-explain -sf 0.01 -q 1          # TPC-H Query 1
//	hique-explain -dir ./data "SELECT ..."   # against hique-gen output
//	hique-explain -analyze -q 1          # EXPLAIN ANALYZE: run + stage stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hique"
	"hique/internal/catalog"
	"hique/internal/codegen"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "generate an in-memory TPC-H catalogue at this scale factor")
	dir := flag.String("dir", "", "load tables from this directory instead of generating TPC-H")
	qnum := flag.Int("q", 0, "use TPC-H query 1, 3 or 10 instead of a SQL argument")
	analyze := flag.Bool("analyze", false, "execute the query and report per-stage rows and timings (EXPLAIN ANALYZE)")
	engine := flag.String("engine", "holistic", "engine for -analyze: holistic, generic-iterators, optimized-iterators, column-store, holistic-O0")
	flag.Parse()

	query := strings.Join(flag.Args(), " ")
	if *qnum != 0 {
		var err error
		query, err = tpch.Query(*qnum)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if query == "" {
		fmt.Fprintln(os.Stderr, "usage: hique-explain [-sf F | -dir D] [-q N] \"SELECT ...\"")
		os.Exit(2)
	}

	var cat *catalog.Catalog
	if *dir != "" {
		mgr, err := storage.NewManager(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		names, err := mgr.List()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cat = catalog.New()
		for _, n := range names {
			t, err := mgr.Load(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			cat.Register(t)
		}
	} else {
		cat = tpch.Generate(tpch.Config{ScaleFactor: *sf, Seed: 42})
	}

	if *analyze {
		eng, ok := hique.EngineByName(*engine)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
			os.Exit(2)
		}
		// An "EXPLAIN ANALYZE SELECT ..." argument is accepted too — the
		// keywords are implied by -analyze.
		if rest, ok := hique.StripExplainAnalyze(query); ok {
			query = rest
		}
		db := hique.Open(hique.WithCatalog(cat), hique.WithEngine(eng))
		a, err := db.ExplainAnalyze(query)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("--- EXPLAIN ANALYZE ---")
		fmt.Print(a.String())
		return
	}

	stmt, err := sql.Parse(query)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("--- Optimizer plan (operator descriptor list) ---")
	fmt.Println(p.Explain())
	fmt.Println("--- Generated query-specific source ---")
	fmt.Println(codegen.EmitSource(p))

	cq, err := codegen.Generate(p, codegen.OptO2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("--- Preparation cost ---\ngenerate: %s  compile: %s  source: %d bytes\n",
		cq.Prep.Generate, cq.Prep.Compile, cq.Prep.SourceBytes)
}
