// Command hique-gen generates the TPC-H dataset and writes each table to a
// HIQUE storage file (one file per table, as in the paper's storage
// manager).
//
// Usage:
//
//	hique-gen -sf 0.1 -dir ./data -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hique/internal/storage"
	"hique/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.1, "TPC-H scale factor (1.0 = ~6M lineitems)")
	dir := flag.String("dir", "data", "output directory")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	mgr, err := storage.NewManager(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	tables := tpch.GenerateTables(tpch.Config{ScaleFactor: *sf, Seed: *seed})
	fmt.Printf("generated %d tables in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
	for _, t := range tables {
		if err := mgr.Save(t); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %-10s %9d rows  -> %s\n", t.Name(), t.NumRows(), mgr.PathFor(t.Name()))
	}
}
