// Command hique-server serves a HIQUE database over HTTP/JSON: the
// network front end of the query-serving subsystem (plan cache +
// concurrent sessions + admission control), optionally durable (WAL +
// checkpoints + replay-on-open).
//
// Usage:
//
//	hique-server                          # empty in-memory database on :8080
//	hique-server -tpch 0.01               # in-memory TPC-H at the given scale
//	hique-server -data ./data             # durable: WAL + checkpoints + recovery
//	hique-server -data ./data -tpch 0.01  # seed TPC-H on first start only
//	hique-server -data ./data -fsync interval -fsync-interval 20ms
//	hique-server -dir ./data              # open tables written by hique-gen
//	hique-server -workers 16 -cache 512   # tune admission + plan cache
//	hique-server -pprof                   # expose /debug/pprof/ endpoints
//	hique-server -pprof -mutexprofile 100 -blockprofile 10000
//	                                      # + lock-contention / blocking profiles
//	hique-server -slow-query 50ms -slow-query-log slow.jsonl
//
// Endpoints:
//
//	POST /query     {"sql": "SELECT ... WHERE id = ?", "params": [42]}
//	                -> {"columns","rows","elapsed_us","session"};
//	                parameter coercion failures return 400.
//	                DML goes through the same endpoint: INSERT INTO t
//	                VALUES (...), (...) / DELETE FROM / UPDATE ... SET,
//	                parameterizable, answering with
//	                {"rows_affected","elapsed_us","session"}; a whole
//	                statement applies under one writer-lock acquisition
//	                and, with -data, is on stable storage before it is
//	                acknowledged (per the -fsync policy).
//	                Engine panics are contained per statement (422).
//	                "EXPLAIN ANALYZE SELECT ..." runs the statement with
//	                per-stage tracing and answers with the stage table.
//	GET  /healthz   load-balancer probe (no pool slot): 503 "recovering"
//	                until WAL replay finishes, 503 "draining" after a
//	                shutdown signal, 200 otherwise
//	GET  /metrics   Prometheus text exposition (no pool slot)
//	GET  /stats     serving + plan-cache + arena + durability counters
//	GET  /tables    catalogued tables with schemata
//	GET  /sessions  live client sessions
//
// On SIGTERM/SIGINT the server stops admitting statements (503), drains
// in-flight ones, writes a final checkpoint, and exits 0.
//
// Clients may pass the X-Hique-Session header to accumulate per-session
// statistics; the server mints an ID for requests without one.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"hique"
	"hique/internal/server"
	"hique/internal/storage"
	"hique/internal/tpch"
)

// swapHandler lets the listener come up before recovery completes: it
// serves a "recovering" stub until the real routing table is stored.
// The box keeps atomic.Value's concrete type constant across swaps.
type handlerBox struct{ h http.Handler }

type swapHandler struct{ v atomic.Value }

func (s *swapHandler) Store(h http.Handler) { s.v.Store(handlerBox{h}) }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.v.Load().(handlerBox).h.ServeHTTP(w, r)
}

// recoveringHandler answers every request 503 while WAL replay runs, so
// probes see the process as alive-but-not-ready instead of refused.
func recoveringHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"recovering"}`)
	})
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "open tables from this directory (read-only snapshot, no durability)")
	dataDir := flag.String("data", "", "durable data directory (WAL + checkpoints + replay-on-open)")
	fsyncMode := flag.String("fsync", "always", "WAL fsync policy with -data: always, interval, off")
	fsyncIvl := flag.Duration("fsync-interval", 50*time.Millisecond, "fsync cadence for -fsync interval")
	ckptIvl := flag.Duration("checkpoint-interval", time.Minute, "background checkpoint cadence with -data (0 = shutdown only)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for draining in-flight statements")
	tpchSF := flag.Float64("tpch", 0, "load a TPC-H catalogue at this scale factor (with -data: first start only)")
	workers := flag.Int("workers", 8, "maximum concurrently executing queries")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "admission wait before 503")
	cacheSize := flag.Int("cache", 256, "plan cache capacity in entries (0 disables)")
	engine := flag.String("engine", "holistic", "execution engine (holistic, generic-iterators, optimized-iterators, column-store, holistic-O0)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
	mutexFrac := flag.Int("mutexprofile", 0, "mutex profile sampling fraction (runtime.SetMutexProfileFraction; 0 disables)")
	blockRate := flag.Int("blockprofile", 0, "block profile sampling rate in ns (runtime.SetBlockProfileRate; 0 disables)")
	parallelism := flag.Int("parallelism", 0, "worker target for morsel-driven parallel fused execution (0 = GOMAXPROCS, 1 = serial)")
	slowQuery := flag.Duration("slow-query", 0, "log statements slower than this threshold (0 disables)")
	slowLog := flag.String("slow-query-log", "", "slow-query log file (JSON lines; default stderr)")
	flag.Parse()

	if *dir != "" && *dataDir != "" {
		fatal(fmt.Errorf("-dir and -data are mutually exclusive: -dir loads a table snapshot, -data opens a durable database"))
	}
	e, ok := hique.EngineByName(*engine)
	if !ok {
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	opts := []hique.Option{hique.WithEngine(e)}
	if *cacheSize > 0 {
		opts = append(opts, hique.WithPlanCache(*cacheSize))
	}
	if *parallelism != 0 {
		opts = append(opts, hique.WithParallelism(*parallelism))
	}
	seedTPCH := *tpchSF > 0
	if seedTPCH && *dataDir != "" && hique.DirInitialized(*dataDir) {
		fmt.Printf("hique-server: %s already initialized; ignoring -tpch seed\n", *dataDir)
		seedTPCH = false
	}
	if seedTPCH {
		opts = append(opts, hique.WithCatalog(tpch.Generate(tpch.Config{ScaleFactor: *tpchSF, Seed: 42})))
	}

	// Bring the listener up before recovery so orchestrators see the
	// process alive (503 "recovering") while the WAL replays.
	root := &swapHandler{}
	root.Store(recoveringHandler())
	httpSrv := &http.Server{Addr: *addr, Handler: root, ReadHeaderTimeout: 10 * time.Second}
	listenErr := make(chan error, 1)
	go func() { listenErr <- httpSrv.ListenAndServe() }()

	var db *hique.DB
	if *dataDir != "" {
		mode, ok := hique.ParseFsyncMode(*fsyncMode)
		if !ok {
			fatal(fmt.Errorf("unknown -fsync policy %q (want always, interval, or off)", *fsyncMode))
		}
		dOpts := append(opts,
			hique.WithFsync(mode),
			hique.WithFsyncInterval(*fsyncIvl),
			hique.WithCheckpointInterval(*ckptIvl))
		start := time.Now()
		var err error
		if db, err = hique.OpenDurable(*dataDir, dOpts...); err != nil {
			fatal(err)
		}
		rs := db.RecoveryStats()
		fmt.Printf("hique-server: recovered %s in %s (snapshot lsn %d, %d wal records replayed, %d skipped) fsync=%s\n",
			*dataDir, time.Since(start).Round(time.Millisecond), rs.SnapshotLSN, rs.ReplayedRecords, rs.ReplayErrors, mode)
	} else {
		db = hique.Open(opts...)
	}

	if *dir != "" {
		mgr, err := storage.NewManager(*dir)
		if err != nil {
			fatal(err)
		}
		names, err := mgr.List()
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			t, err := mgr.Load(n)
			if err != nil {
				fatal(err)
			}
			db.Catalog().Register(t)
		}
	}

	for _, n := range db.Tables() {
		rows, _ := db.RowCount(n)
		fmt.Printf("table %-12s %9d rows\n", n, rows)
	}
	fmt.Printf("hique-server: engine=%s workers=%d cache=%d listening on %s\n",
		db.EngineName(), *workers, *cacheSize, *addr)
	cfg := server.Config{Workers: *workers, QueueWait: *queueWait, SlowQueryThreshold: *slowQuery}
	if *slowLog != "" {
		f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		cfg.SlowQueryLog = f
	}
	if *slowQuery > 0 {
		fmt.Printf("hique-server: slow-query log enabled, threshold %s\n", *slowQuery)
	}
	if *mutexFrac > 0 {
		// Lock-contention profiling for /debug/pprof/mutex: sampled, so a
		// small fraction is safe to leave on in production.
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	srv := server.New(db, cfg)
	handler := srv.Handler()
	if *pprofOn {
		// Production-shaped profiling without a rebuild: CPU/heap/alloc
		// profiles of the serving path behind an explicit opt-in flag.
		// The profile endpoints bypass the admission pool deliberately —
		// an overloaded server is exactly when a profile is wanted.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Println("hique-server: pprof enabled at /debug/pprof/")
	}
	root.Store(handler)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-listenErr:
		fatal(err)
	case s := <-sig:
		fmt.Printf("hique-server: %s; draining (budget %s)\n", s, *drainTimeout)
	}

	// Graceful shutdown: stop admissions (new statements 503, health
	// reports draining), let in-flight statements finish, write the
	// final checkpoint, exit 0.
	srv.BeginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hique-server: http shutdown: %v\n", err)
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hique-server: drain: %v\n", err)
	}
	if err := db.Close(); err != nil {
		fatal(fmt.Errorf("final checkpoint: %w", err))
	}
	fmt.Println("hique-server: drained and checkpointed, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
