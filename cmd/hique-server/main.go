// Command hique-server serves a HIQUE database over HTTP/JSON: the
// network front end of the query-serving subsystem (plan cache +
// concurrent sessions + admission control).
//
// Usage:
//
//	hique-server                          # empty database on :8080
//	hique-server -tpch 0.01               # in-memory TPC-H at the given scale
//	hique-server -dir ./data              # open tables written by hique-gen
//	hique-server -workers 16 -cache 512   # tune admission + plan cache
//	hique-server -pprof                   # expose /debug/pprof/ endpoints
//	hique-server -pprof -mutexprofile 100 -blockprofile 10000
//	                                      # + lock-contention / blocking profiles
//	hique-server -slow-query 50ms -slow-query-log slow.jsonl
//
// Endpoints:
//
//	POST /query     {"sql": "SELECT ... WHERE id = ?", "params": [42]}
//	                -> {"columns","rows","elapsed_us","session"};
//	                parameter coercion failures return 400.
//	                DML goes through the same endpoint: INSERT INTO t
//	                VALUES (...), (...) / DELETE FROM / UPDATE ... SET,
//	                parameterizable, answering with
//	                {"rows_affected","elapsed_us","session"}; a whole
//	                statement applies under one writer-lock acquisition.
//	                Engine panics are contained per statement (422).
//	                "EXPLAIN ANALYZE SELECT ..." runs the statement with
//	                per-stage tracing and answers with the stage table.
//	GET  /healthz   load-balancer liveness probe (no pool slot)
//	GET  /metrics   Prometheus text exposition (no pool slot)
//	GET  /stats     serving + plan-cache + arena counters
//	GET  /tables    catalogued tables with schemata
//	GET  /sessions  live client sessions
//
// Clients may pass the X-Hique-Session header to accumulate per-session
// statistics; the server mints an ID for requests without one.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"

	"hique"
	"hique/internal/server"
	"hique/internal/storage"
	"hique/internal/tpch"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "open tables from this directory")
	tpchSF := flag.Float64("tpch", 0, "load an in-memory TPC-H catalogue at this scale factor")
	workers := flag.Int("workers", 8, "maximum concurrently executing queries")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "admission wait before 503")
	cacheSize := flag.Int("cache", 256, "plan cache capacity in entries (0 disables)")
	engine := flag.String("engine", "holistic", "execution engine (holistic, generic-iterators, optimized-iterators, column-store, holistic-O0)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
	mutexFrac := flag.Int("mutexprofile", 0, "mutex profile sampling fraction (runtime.SetMutexProfileFraction; 0 disables)")
	blockRate := flag.Int("blockprofile", 0, "block profile sampling rate in ns (runtime.SetBlockProfileRate; 0 disables)")
	parallelism := flag.Int("parallelism", 0, "worker target for morsel-driven parallel fused execution (0 = GOMAXPROCS, 1 = serial)")
	slowQuery := flag.Duration("slow-query", 0, "log statements slower than this threshold (0 disables)")
	slowLog := flag.String("slow-query-log", "", "slow-query log file (JSON lines; default stderr)")
	flag.Parse()

	e, ok := hique.EngineByName(*engine)
	if !ok {
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	opts := []hique.Option{hique.WithEngine(e)}
	if *cacheSize > 0 {
		opts = append(opts, hique.WithPlanCache(*cacheSize))
	}
	if *parallelism != 0 {
		opts = append(opts, hique.WithParallelism(*parallelism))
	}
	if *tpchSF > 0 {
		opts = append(opts, hique.WithCatalog(tpch.Generate(tpch.Config{ScaleFactor: *tpchSF, Seed: 42})))
	}
	db := hique.Open(opts...)

	if *dir != "" {
		mgr, err := storage.NewManager(*dir)
		if err != nil {
			fatal(err)
		}
		names, err := mgr.List()
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			t, err := mgr.Load(n)
			if err != nil {
				fatal(err)
			}
			db.Catalog().Register(t)
		}
	}

	for _, n := range db.Tables() {
		rows, _ := db.RowCount(n)
		fmt.Printf("table %-12s %9d rows\n", n, rows)
	}
	fmt.Printf("hique-server: engine=%s workers=%d cache=%d listening on %s\n",
		db.EngineName(), *workers, *cacheSize, *addr)
	cfg := server.Config{Workers: *workers, QueueWait: *queueWait, SlowQueryThreshold: *slowQuery}
	if *slowLog != "" {
		f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		cfg.SlowQueryLog = f
	}
	if *slowQuery > 0 {
		fmt.Printf("hique-server: slow-query log enabled, threshold %s\n", *slowQuery)
	}
	if *mutexFrac > 0 {
		// Lock-contention profiling for /debug/pprof/mutex: sampled, so a
		// small fraction is safe to leave on in production.
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	srv := server.New(db, cfg)
	handler := srv.Handler()
	if *pprofOn {
		// Production-shaped profiling without a rebuild: CPU/heap/alloc
		// profiles of the serving path behind an explicit opt-in flag.
		// The profile endpoints bypass the admission pool deliberately —
		// an overloaded server is exactly when a profile is wanted.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Println("hique-server: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	fatal(httpSrv.ListenAndServe())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
