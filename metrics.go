package hique

import (
	"errors"

	"hique/internal/codegen"
	"hique/internal/morsel"
	"hique/internal/obs"
	"hique/internal/plan"
	"hique/internal/plancache"
	"hique/internal/storage"
	"hique/internal/wal"
)

// Statement classes, execution paths, and cache temperatures index into
// dbMetrics.lat. A query's class and path are properties of its compiled
// plan, resolved once at compile time; only the temperature (did this
// execution hit the plan cache?) is decided per query.
const (
	classPoint   = iota // single-table with an index probe
	classRange          // single-table scan/range
	classJoinAgg        // any join or aggregation
	classDML            // INSERT / DELETE / UPDATE
	nClass
)

const (
	pathFused   = iota // fused codegen pipeline (newFused / newFusedJoin)
	pathGeneral        // staged operator walk or interpreted engine
	nPath
)

const (
	tempCold = iota // compiled (or planned) on this execution
	tempWarm        // served from the plan cache or a prepared handle
	nTemp
)

var (
	classNames = [nClass]string{"point", "range", "join_agg", "dml"}
	pathNames  = [nPath]string{"fused", "general"}
	tempNames  = [nTemp]string{"cold", "warm"}
)

// dbMetrics is a DB's always-on telemetry: latency histograms split by
// class × path × temperature, lock-wait time, and statement/error
// counters, plus scrape-time re-exports of the plan caches, the page
// arena, and the catalogue. Every hot-path handle is resolved at
// registration or plan-compile time — recording is atomic adds only, so
// the warm fused path keeps its allocation and latency budget with
// telemetry enabled.
type dbMetrics struct {
	reg *obs.Registry

	// lat[class][path][temp] is the per-query latency histogram family
	// hique_query_duration_seconds.
	lat [nClass][nPath][nTemp]*obs.Histogram

	// lockWait tracks time spent acquiring table locks on the serving
	// paths (read fast path, DML writer lock).
	lockWait *obs.Histogram

	queries    *obs.Counter // statements started (Query/Exec), incl. failures
	errors     *obs.Counter // statements that returned any error
	bindErrors *obs.Counter // ... of which parameter binding rejected
	panics     *obs.Counter // ... of which were contained engine panics

	// walFsync observes every physical WAL fsync (group commit batches
	// many statement commits into one observation). Registered
	// unconditionally — an in-memory DB just never observes into it —
	// so the durability families are always present in /metrics.
	walFsync *obs.Histogram
}

// newDBMetrics registers every DB-level series. The cache and arena
// re-exports read their owners' counters at scrape time through
// closures, so registration order relative to Open's options does not
// matter (a nil cache reports zeros).
func newDBMetrics(db *DB) *dbMetrics {
	m := &dbMetrics{reg: obs.NewRegistry()}

	const latName = "hique_query_duration_seconds"
	const latHelp = "Query latency by statement class, execution path, and plan-cache temperature."
	for c := 0; c < nClass; c++ {
		for p := 0; p < nPath; p++ {
			for t := 0; t < nTemp; t++ {
				m.lat[c][p][t] = m.reg.Histogram(latName, latHelp,
					obs.Labels("class", classNames[c], "path", pathNames[p], "temp", tempNames[t]))
			}
		}
	}
	m.lockWait = m.reg.Histogram("hique_lock_wait_seconds",
		"Time spent acquiring table locks on the serving paths.", "")
	m.queries = m.reg.Counter("hique_queries_total",
		"SQL statements started (Query and Exec), including failures.", "")
	m.errors = m.reg.Counter("hique_query_errors_total",
		"SQL statements that returned an error.", "")
	m.bindErrors = m.reg.Counter("hique_bind_errors_total",
		"Statements rejected while binding parameter values.", "")
	m.panics = m.reg.Counter("hique_panics_contained_total",
		"Engine panics converted to per-statement errors.", "")

	registerCache := func(which string, get func() *plancache.Cache) {
		stats := func() plancache.Stats {
			if c := get(); c != nil {
				return c.Stats()
			}
			return plancache.Stats{}
		}
		lbl := obs.Labels("cache", which)
		m.reg.CounterFunc("hique_plan_cache_hits_total", "Plan-cache hits.", lbl,
			func() int64 { return int64(stats().Hits) })
		m.reg.CounterFunc("hique_plan_cache_misses_total", "Plan-cache misses.", lbl,
			func() int64 { return int64(stats().Misses) })
		m.reg.CounterFunc("hique_plan_cache_invalidations_total", "Plan-cache entries dropped on catalogue version mismatch.", lbl,
			func() int64 { return int64(stats().Invalidations) })
		m.reg.CounterFunc("hique_plan_cache_evictions_total", "Plan-cache entries dropped by LRU pressure.", lbl,
			func() int64 { return int64(stats().Evictions) })
		m.reg.GaugeFunc("hique_plan_cache_entries", "Plan-cache resident entries.", lbl,
			func() float64 { return float64(stats().Entries) })
	}
	registerCache("read", func() *plancache.Cache { return db.cache })
	registerCache("write", func() *plancache.Cache { return db.writeCache })

	m.reg.GaugeFunc("hique_arena_pages_in_use", "Page-arena frames currently held by live pooled tables.", "",
		func() float64 { inUse, _ := storage.ArenaStats(); return float64(inUse) })
	m.reg.CounterFunc("hique_arena_pages_recycled_total", "Page-arena frames returned for reuse.", "",
		func() int64 { _, recycled := storage.ArenaStats(); return recycled })
	// Morsel-driven parallel execution counters. The underlying counters
	// are process-global (the worker pool machinery is per-DB but the
	// pipelines are compiled per plan), matching the arena re-exports.
	m.reg.CounterFunc("hique_parallel_queries_total", "Query executions that ran at least one morsel-driven parallel phase.", "",
		func() int64 { q, _ := morsel.Stats(); return q })
	m.reg.CounterFunc("hique_morsels_total", "Morsels processed by parallel execution phases.", "",
		func() int64 { _, ms := morsel.Stats(); return ms })

	m.reg.GaugeFunc("hique_catalog_version", "Catalogue version (DDL, index builds, statistics refreshes).", "",
		func() float64 { return float64(db.cat.Version()) })
	m.reg.GaugeFunc("hique_tables", "Catalogued tables.", "",
		func() float64 { return float64(len(db.cat.Names())) })

	// Durability re-exports, closure-based like the caches: db.dur is
	// nil on an in-memory DB (all series report zero) and is set after
	// newDBMetrics returns on a durable one, which the scrape-time
	// closures tolerate by re-reading it.
	m.walFsync = m.reg.Histogram("hique_wal_fsync_seconds",
		"WAL fsync latency; one observation per physical fsync (group commit batches statement commits).", "")
	walStats := func() wal.Stats {
		if d := db.dur; d != nil {
			return d.log.StatsSnapshot()
		}
		return wal.Stats{}
	}
	m.reg.CounterFunc("hique_wal_appended_total", "WAL records appended (one per durable mutating statement).", "",
		func() int64 { return walStats().Appended })
	m.reg.CounterFunc("hique_wal_fsyncs_total", "Physical WAL fsyncs.", "",
		func() int64 { return walStats().Fsyncs })
	m.reg.CounterFunc("hique_wal_bytes_total", "WAL bytes appended, including frame headers.", "",
		func() int64 { return walStats().Bytes })
	m.reg.GaugeFunc("hique_wal_last_lsn", "Highest LSN assigned.", "",
		func() float64 { return float64(walStats().LastLSN) })
	m.reg.GaugeFunc("hique_wal_durable_lsn", "Highest LSN known fsynced.", "",
		func() float64 { return float64(walStats().DurableLSN) })
	m.reg.CounterFunc("hique_checkpoints_total", "Checkpoints written (snapshot + WAL truncation).", "",
		func() int64 {
			if d := db.dur; d != nil {
				return d.checkpoints.Load()
			}
			return 0
		})
	m.reg.GaugeFunc("hique_checkpoint_last_lsn", "LSN the newest on-disk snapshot covers.", "",
		func() float64 {
			if d := db.dur; d != nil {
				return float64(d.snapLSN.Load())
			}
			return 0
		})
	m.reg.CounterFunc("hique_recovery_replayed_records", "WAL records replayed by the most recent open.", "",
		func() int64 {
			if d := db.dur; d != nil {
				return d.replayed.Load()
			}
			return 0
		})
	m.reg.CounterFunc("hique_recovery_replay_errors_total", "Replayed records that failed to apply (warned and skipped).", "",
		func() int64 {
			if d := db.dur; d != nil {
				return d.replayErrors.Load()
			}
			return 0
		})
	return m
}

// classifyPlan maps a read plan to its statement class.
func classifyPlan(p *plan.Plan) int {
	if p.Agg != nil || len(p.Joins) > 0 {
		return classJoinAgg
	}
	if p.Final != nil && p.Final.IndexScan != nil {
		return classPoint
	}
	return classRange
}

// latFor resolves the cold/warm histogram pair for a compiled read plan —
// called once at plan-compile time, so per-query recording is a single
// indexed Observe.
func (m *dbMetrics) latFor(p *plan.Plan, fused bool) *[nTemp]*obs.Histogram {
	pi := pathGeneral
	if fused {
		pi = pathFused
	}
	return &m.lat[classifyPlan(p)][pi]
}

// noteQuery is deferred at every statement entry point (registered before
// containPanic so it observes the converted error): it counts the
// statement and classifies its failure, if any.
func (m *dbMetrics) noteQuery(err *error) {
	m.queries.Inc()
	e := *err
	if e == nil {
		return
	}
	m.errors.Inc()
	var be *BindError
	if errors.As(e, &be) {
		m.bindErrors.Inc()
		return
	}
	var pe *PanicError
	if errors.As(e, &pe) {
		m.panics.Inc()
	}
}

// cachedQuery is the value the read plan-cache stores: the compiled
// artefact plus its latency handles, resolved once at compile time so a
// warm hit records its duration without a map lookup or classification
// branch.
type cachedQuery struct {
	cq  *codegen.CompiledQuery
	lat *[nTemp]*obs.Histogram
}
