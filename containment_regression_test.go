package hique

import (
	"errors"
	"testing"
	"time"

	"hique/internal/catalog"
	"hique/internal/types"
)

// Regression tests for the panic-containment violations hique-vet's
// containment analyzer surfaced (PR 9): Insert, refreshStats, and
// BuildIndex used to run their mutations between a manual Lock/Unlock
// pair, so a panic inside the mutation unwound to the caller's
// containPanic with the table writer lock still held — wedging the
// table forever. The *Locked helpers now register the unlock defer
// before containPanic, converting the panic to a statement error and
// then releasing.

// lockFreeWithin asserts the entry's writer lock can be acquired, i.e.
// the contained panic did not leak it.
func lockFreeWithin(t *testing.T, e *catalog.TableEntry, d time.Duration) {
	t.Helper()
	got := make(chan struct{})
	go func() {
		e.Lock()
		e.Unlock()
		close(got)
	}()
	select {
	case <-got:
	case <-time.After(d):
		t.Fatal("table writer lock still held after contained panic")
	}
}

func TestInsertLockedContainsPanic(t *testing.T) {
	db := Open()
	if err := db.CreateTable("t", Int("id"), Int("v")); err != nil {
		t.Fatal(err)
	}
	e, err := db.cat.Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	// A row wider than the schema makes appendRowLocked index past the
	// column table and panic; the helper must convert it to *PanicError
	// and release the lock.
	wide := []types.Datum{types.IntDatum(1), types.IntDatum(2), types.IntDatum(3)}
	_, err = db.insertLocked(e, "t", wide, nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("insertLocked error = %v, want *PanicError", err)
	}
	lockFreeWithin(t, e, 2*time.Second)
	// The table still serves writes and reads afterwards.
	if err := db.Insert("t", 1, 2); err != nil {
		t.Fatalf("Insert after contained panic: %v", err)
	}
	// Both schema columns were written before the panic at the excess
	// index, so the aborted insert's reserved slot survives as a full
	// row alongside the successful one.
	if n, err := db.RowCount("t"); err != nil || n != 2 {
		t.Fatalf("RowCount = %d, %v; want 2", n, err)
	}
}

func TestRefreshEntryContainsPanic(t *testing.T) {
	db := Open()
	// An entry with no heap table makes ComputeStats panic.
	e := &catalog.TableEntry{}
	err := db.refreshEntry(e)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("refreshEntry error = %v, want *PanicError", err)
	}
	lockFreeWithin(t, e, 2*time.Second)
}

func TestBuildIndexLockedReleasesOnError(t *testing.T) {
	db := Open()
	if err := db.CreateTable("t", Int("id"), Char("name", 8)); err != nil {
		t.Fatal(err)
	}
	e, err := db.cat.Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	// Indexing a CHAR column is rejected; the error path must release.
	if _, err := db.buildIndexLocked(e, "t", "name"); err == nil {
		t.Fatal("expected BuildIndex on a char column to fail")
	}
	lockFreeWithin(t, e, 2*time.Second)
	if err := db.BuildIndex("t", "id"); err != nil {
		t.Fatalf("BuildIndex after failed attempt: %v", err)
	}
}

// TestPlanAttemptReleasesOnBuildError pins the planLocked restructure:
// a failed plan build inside an attempt must release every table lock it
// took (previously the manual unlock could be skipped by a contained
// panic anywhere between lock and build).
func TestPlanAttemptReleasesOnBuildError(t *testing.T) {
	db := Open()
	if err := db.CreateTable("t", Int("id"), Int("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT nosuch FROM t"); err == nil {
		t.Fatal("expected unknown-column query to fail")
	}
	e, err := db.cat.Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	lockFreeWithin(t, e, 2*time.Second)
	if err := db.Insert("t", 1, 2); err != nil {
		t.Fatalf("Insert after failed plan: %v", err)
	}
}

func TestTableInfo(t *testing.T) {
	db := Open()
	if err := db.CreateTable("t", Int("id"), Float("price")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", 1, 2.5); err != nil {
		t.Fatal(err)
	}
	rows, cols, err := db.TableInfo("t")
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 || len(cols) != 2 {
		t.Fatalf("TableInfo = %d rows, %v", rows, cols)
	}
	if _, _, err := db.TableInfo("nosuch"); err == nil {
		t.Fatal("expected unknown-table error")
	}
}
