package hique

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"hique/internal/btree"
	"hique/internal/catalog"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/types"
)

// ExecResult reports the outcome of a DML statement.
type ExecResult struct {
	// RowsAffected counts rows inserted, deleted, or updated.
	RowsAffected int
	// Elapsed is the execution wall time (preparation excluded).
	Elapsed time.Duration
}

// WidthError reports a string value wider than its CHAR(n) column. The
// engine stores values untruncated — a silently truncated insert would
// make a later point query for the full value miss while the truncated
// value matches — so oversized strings are rejected on every write path:
// the Go-API Insert, SQL INSERT, and SQL UPDATE.
type WidthError struct {
	Table, Column string
	Width, Len    int
}

func (e *WidthError) Error() string {
	return fmt.Sprintf("hique: value for column %s.%s is %d bytes, exceeding CHAR(%d) (strings are stored untruncated)",
		e.Table, e.Column, e.Len, e.Width)
}

// PanicError is a statement-level failure recovered from an engine panic.
// Execution engines reject malformed descriptor combinations by panicking
// deep inside generated or specialised code; the serving layer converts
// those into per-statement errors so one crafted query cannot take down
// the process (the HTTP front end maps it to 422).
type PanicError struct{ V any }

func (e *PanicError) Error() string {
	return fmt.Sprintf("hique: statement aborted by internal panic: %v", e.V)
}

// containPanic converts a panic unwinding through a statement entry point
// into a *PanicError. Use with defer on named error results.
func containPanic(err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{V: r}
	}
}

// appendWriteCacheKey renders the write-plan cache key for a DML
// statement into dst: a "dml" prefix, the placeholder arity, and the
// normalised statement text. (Write plans live in their own cache; the
// prefix additionally keeps the key space disjoint from read keys, which
// start with a decimal length.)
func appendWriteCacheKey(dst []byte, norm []byte, arity int) []byte {
	dst = append(dst, "dml\x00"...)
	dst = strconv.AppendInt(dst, int64(arity), 10)
	dst = append(dst, 0)
	return append(dst, norm...)
}

// execScratch holds the buffers a warm cached DML statement needs — the
// normaliser's token/output buffers, the rendered cache key, and the bind
// vector — pooled so the hot ingest shape (a repeated parameterized
// INSERT) reaches the writer lock without allocating.
type execScratch struct {
	norm   sql.NormBuf
	key    []byte
	params []types.Datum
	// wal stages the statement's WAL record, encoded from the bound
	// plan before the writer lock is taken (durable DBs only).
	wal []byte
}

var execScratchPool = sync.Pool{New: func() any { return new(execScratch) }}

// Exec parses, plans, and executes a DML statement — INSERT INTO ...
// VALUES (multi-row), DELETE FROM ... WHERE, UPDATE ... SET ... WHERE —
// with '?' placeholders bound from args exactly as in Query. The whole
// statement applies under one writer-lock acquisition with a single
// statistics-invalidation, so a 1000-row multi-VALUES insert pays the
// per-statement costs once, not per row.
//
// With the plan cache enabled, the planned write descriptor is cached —
// in a dedicated same-capacity LRU, so write traffic never evicts
// compiled queries — under the normalised statement text: a repeated
// parameterized INSERT, the hot ingest shape, skips re-parsing and
// re-planning entirely.
func (db *DB) Exec(query string, args ...any) (res ExecResult, err error) {
	// Statement accounting, registered before containPanic so a contained
	// panic is classified as such (LIFO defer order).
	defer db.met.noteQuery(&err)
	defer containPanic(&err)

	sc := execScratchPool.Get().(*execScratch)
	defer execScratchPool.Put(sc)

	var wp *plan.WritePlan
	if db.writeCache != nil {
		arity, err := sc.norm.Normalize(query)
		if err != nil {
			return ExecResult{}, err
		}
		sc.key = appendWriteCacheKey(sc.key[:0], sc.norm.Out, arity)
		if v, _, ok := db.writeCache.GetStamped(sc.key); ok {
			wp, _ = v.(*plan.WritePlan)
		}
	}
	replan := func() (*plan.WritePlan, error) {
		w, err := db.planWrite(query)
		if err != nil {
			return nil, err
		}
		if db.writeCache != nil {
			db.writeCache.Put(string(sc.key), db.cat.Version(), w)
		}
		return w, nil
	}
	// A write-cache hit is the warm DML shape (the repeated parameterized
	// INSERT); a miss pays parse + plan, the cold shape.
	temp := tempCold
	if wp != nil {
		temp = tempWarm
	}
	if wp == nil {
		if wp, err = replan(); err != nil {
			return ExecResult{}, err
		}
	}
	invalidate := func() {
		if db.writeCache != nil {
			db.writeCache.Invalidate(string(sc.key))
		}
	}
	res, err = db.execWrite(wp, args, sc, invalidate, replan)
	if err == nil {
		db.met.lat[classDML][pathGeneral][temp].Observe(res.Elapsed)
	}
	return res, err
}

// planWrite parses and plans a DML statement, validating literal widths
// once — a cached plan never re-checks them (parameter widths are
// enforced at bind time through ParamSlot.Size).
func (db *DB) planWrite(query string) (*plan.WritePlan, error) {
	stmt, err := sql.ParseStmt(query)
	if err != nil {
		return nil, err
	}
	if _, isSelect := stmt.(*sql.SelectStmt); isSelect {
		return nil, fmt.Errorf("hique: Exec requires a DML statement (INSERT, DELETE, UPDATE); use Query for SELECT")
	}
	wp, err := plan.BuildWrite(stmt, db.cat)
	if err != nil {
		return nil, err
	}
	if err := checkLiteralWidths(wp); err != nil {
		return nil, err
	}
	return wp, nil
}

// execWrite binds and applies a write plan: coerce the caller arguments,
// resolve the parameter slots, take the table writer lock, revalidate the
// plan against the catalogue (the table may have been dropped or
// recreated since planning — invalidate and replan when it was), mutate,
// and mark statistics stale exactly once.
func (db *DB) execWrite(wp *plan.WritePlan, args []any, sc *execScratch, invalidate func(), replan func() (*plan.WritePlan, error)) (ExecResult, error) {
	for attempt := 0; ; attempt++ {
		params, err := bindValuesInto(sc.params[:0], wp.Params, nil, false, args)
		sc.params = params
		if err != nil {
			return ExecResult{}, err
		}
		bound, err := wp.Bind(params)
		if err != nil {
			return ExecResult{}, err
		}
		// Encode the WAL record from the bound plan outside the lock —
		// the bound copy is immutable, so only the append itself has to
		// happen inside.
		var walType byte
		if db.dur != nil {
			sc.wal, walType = encodeWritePlan(sc.wal[:0], bound)
		}
		e := wp.Entry
		start := time.Now()
		e.Lock()
		db.met.lockWait.Observe(time.Since(start))
		if cur, lerr := db.cat.Lookup(wp.Table); lerr != nil || cur != e {
			e.Unlock()
			invalidate()
			if attempt >= 3 {
				if lerr == nil {
					lerr = fmt.Errorf("hique: table %q changed during execution", wp.Table)
				}
				return ExecResult{}, lerr
			}
			if wp, err = replan(); err != nil {
				return ExecResult{}, err
			}
			continue
		}
		n, lsn, err := db.applyLocked(e, wp.Table, bound, walType, sc.wal)
		if err == nil && db.dur != nil {
			// The lock is released: waiting out the fsync (group commit
			// under -fsync=always) stalls only this statement's ack,
			// never readers or other writers.
			err = db.dur.logCommit(lsn)
		}
		return ExecResult{RowsAffected: n, Elapsed: time.Since(start)}, err
	}
}

// applyLocked runs the mutation with the entry's writer lock held and
// guarantees its release: a panic inside the apply is converted to a
// statement error *before* the deferred unlock runs, so a contained
// write-path panic can never wedge the table (the read path's
// runCompiled/finishLocked give the same guarantee under reader locks).
// On a panic
// the heap may hold a partial batch; statistics are conservatively
// marked stale so the next query replans against what is actually there.
//
// On a durable DB the statement's record is appended to the WAL first,
// still under the lock: an append failure fails the statement with the
// heap untouched, and the lock ordering makes per-table LSN order equal
// apply order. The returned lsn is what the caller must logCommit
// before acknowledging.
func (db *DB) applyLocked(e *catalog.TableEntry, name string, w *plan.WritePlan, walType byte, walRec []byte) (n int, lsn uint64, err error) {
	defer e.Unlock()
	defer func() {
		if n > 0 || err != nil {
			db.markStale(name)
		}
	}()
	defer containPanic(&err)
	if db.dur != nil {
		if lsn, err = db.dur.logAppend(walType, walRec); err != nil {
			return 0, 0, err
		}
	}
	return applyWrite(e, w), lsn, nil
}

// markStale flags a table's statistics for recomputation before the next
// query. Called once per write statement, under the table's writer lock.
func (db *DB) markStale(name string) {
	db.staleMu.Lock()
	db.stale[name] = true
	db.staleMu.Unlock()
}

// checkLiteralWidths rejects oversized string literals in a write plan's
// value rows and SET assignments. It runs once at plan time — literal
// widths are immutable plan properties, so cached executions skip the
// scan; parameter slots (zero-value datums here) are checked at bind
// time instead via their ParamSlot.Size.
func checkLiteralWidths(w *plan.WritePlan) error {
	s := w.Schema
	for _, row := range w.Rows {
		for ci := range row {
			if err := checkWidth(w.Table, s.Column(ci), row[ci].Val); err != nil {
				return err
			}
		}
	}
	for i := range w.Sets {
		if err := checkWidth(w.Table, s.Column(w.Sets[i].Col), w.Sets[i].Val.Val); err != nil {
			return err
		}
	}
	return nil
}

// checkWidth rejects a string datum wider than its CHAR(n) column.
func checkWidth(table string, col types.Column, d types.Datum) error {
	if d.Kind == types.String && len(d.S) > col.Size {
		return &WidthError{Table: table, Column: col.Name, Width: col.Size, Len: len(d.S)}
	}
	return nil
}

// applyWrite mutates the table under its already-held writer lock and
// returns the affected row count. The bound plan carries no parameter
// slots and has passed width checks, so no error path remains past this
// point — the statement applies atomically.
func applyWrite(e *catalog.TableEntry, w *plan.WritePlan) int {
	switch w.Kind {
	case plan.WriteInsert:
		return applyInsert(e, w.Rows)
	case plan.WriteDelete:
		return applyDelete(e, w.Filters)
	case plan.WriteUpdate:
		return applyUpdate(e, w.Filters, w.Sets)
	}
	panic(fmt.Sprintf("hique: unknown write kind %v", w.Kind))
}

// rowScratchPool recycles the datum row the insert loop decodes into.
var rowScratchPool = sync.Pool{New: func() any { return new([]types.Datum) }}

// applyInsert appends every value row and registers each with the table's
// indexes — the batched body shared by SQL INSERT and the Go-API Insert.
func applyInsert(e *catalog.TableEntry, rows [][]plan.WriteValue) int {
	scratchp := rowScratchPool.Get().(*[]types.Datum)
	row := *scratchp
	for _, vals := range rows {
		row = row[:0]
		for i := range vals {
			row = append(row, vals[i].Val)
		}
		appendRowLocked(e, row)
	}
	*scratchp = row
	rowScratchPool.Put(scratchp)
	return len(rows)
}

// appendRowLocked appends one row and inserts its key into every index on
// the table, keeping index scans consistent with the heap (previously an
// insert after BuildIndex was invisible to index-probing plans). Caller
// holds the entry's writer lock.
func appendRowLocked(e *catalog.TableEntry, row []types.Datum) {
	t := e.Table
	// Fill the reserved slot in place instead of AppendRow: encoding
	// straight into the page skips the per-row tuple buffer, and the
	// columns jointly cover every byte of the slot.
	s := t.Schema()
	slotBytes := t.AppendSlot()
	for i := range row {
		s.PutDatum(slotBytes, i, row[i])
	}
	if len(e.Indexes) == 0 {
		return
	}
	pg := t.NumPages() - 1
	slot := t.Page(pg).NumTuples() - 1
	rid := btree.RID{Page: int32(pg), Slot: int32(slot)}
	for column, tree := range e.Indexes {
		if ci := s.ColumnIndex(column); ci >= 0 {
			tree.Insert(row[ci].I, rid)
		}
	}
}

// applyDelete removes matching rows by compacting survivors into fresh
// pages, then rebuilds every index (row identifiers shift).
func applyDelete(e *catalog.TableEntry, filters []plan.Filter) int {
	t := e.Table
	if len(filters) == 0 {
		n := t.NumRows()
		if n > 0 {
			t.Truncate()
			e.RebuildIndexes(nil)
		}
		return n
	}
	s := t.Schema()
	match := writeMatcher(s, filters)
	removed := 0
	var survivors [][]byte // alias the old pages, copied on re-append
	t.Scan(func(tuple []byte) bool {
		if match(tuple) {
			removed++
		} else {
			survivors = append(survivors, tuple)
		}
		return true
	})
	if removed == 0 {
		return 0
	}
	t.Truncate()
	for _, tuple := range survivors {
		t.Append(tuple)
	}
	e.RebuildIndexes(nil)
	return removed
}

// applyUpdate assigns the set columns on matching rows in place (NSM
// tuples are fixed-width, so no row moves), then rebuilds exactly the
// indexes whose key column was assigned.
func applyUpdate(e *catalog.TableEntry, filters []plan.Filter, sets []plan.SetColumn) int {
	t := e.Table
	s := t.Schema()
	match := writeMatcher(s, filters)
	n := 0
	for pi := 0; pi < t.NumPages(); pi++ {
		pg := t.Page(pi)
		cnt := pg.NumTuples()
		ts := pg.TupleSize()
		data := pg.Data()
		for i := 0; i < cnt; i++ {
			tuple := data[i*ts : i*ts+ts]
			if !match(tuple) {
				continue
			}
			for k := range sets {
				s.PutDatum(tuple, sets[k].Col, sets[k].Val.Val)
			}
			n++
		}
	}
	if n > 0 {
		// Page bytes changed without going through Append: record the
		// mutation so engines revalidate cached derived forms.
		t.BumpVersion()
		if len(e.Indexes) > 0 {
			touched := make([]string, 0, len(sets))
			for k := range sets {
				touched = append(touched, s.Column(sets[k].Col).Name)
			}
			e.RebuildIndexes(touched)
		}
	}
	return n
}

// writeMatcher compiles the filter conjunction into a tuple predicate.
// The write path is engine-independent, so it evaluates through boxed
// datum comparison rather than any engine's specialised closures.
func writeMatcher(s *types.Schema, filters []plan.Filter) func(tuple []byte) bool {
	if len(filters) == 0 {
		return func([]byte) bool { return true }
	}
	return func(tuple []byte) bool {
		for i := range filters {
			f := &filters[i]
			if !f.Op.Holds(types.Compare(s.GetDatum(tuple, f.Col), f.Val)) {
				return false
			}
		}
		return true
	}
}

// PrepareExec plans a DML statement without running it; Run binds one
// value per '?' placeholder and applies it. A long-lived handle is the
// cheapest ingest path: repeated Runs skip parsing and planning without
// even the plan-cache lookup.
func (db *DB) PrepareExec(query string) (*PreparedExec, error) {
	wp, err := db.planWrite(query)
	if err != nil {
		return nil, err
	}
	return &PreparedExec{db: db, query: query, plan: wp}, nil
}

// PreparedExec is a planned DML statement ready for repeated execution.
// Like Prepared, it is not pinned to the catalogue state it was planned
// against: Run revalidates the target table's identity and transparently
// re-plans after DDL, so a long-lived handle never writes through a stale
// descriptor.
type PreparedExec struct {
	db    *DB
	query string

	// mu guards plan across Run's transparent re-prepares.
	mu   sync.Mutex
	plan *plan.WritePlan
}

// Run executes the prepared statement with the given parameter values
// (one per '?' placeholder).
func (p *PreparedExec) Run(args ...any) (res ExecResult, err error) {
	defer p.db.met.noteQuery(&err)
	defer containPanic(&err)
	sc := execScratchPool.Get().(*execScratch)
	defer execScratchPool.Put(sc)
	p.mu.Lock()
	wp := p.plan
	p.mu.Unlock()
	res, err = p.db.execWrite(wp, args, sc, func() {}, func() (*plan.WritePlan, error) {
		w, err := p.db.planWrite(p.query)
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.plan = w
		p.mu.Unlock()
		return w, nil
	})
	if err == nil {
		// A prepared handle skips parse and plan every Run: warm.
		p.db.met.lat[classDML][pathGeneral][tempWarm].Observe(res.Elapsed)
	}
	return res, err
}
