package hique

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// allEngines is the differential set every durability test diffs
// recovered state across.
var allEngines = []Engine{Holistic, GenericIterators, OptimizedIterators, ColumnStore, HolisticUnoptimized}

// engineDumps runs a canonical query set under every engine and renders
// the results; recovered state must reproduce these byte-identically.
func engineDumps(t *testing.T, db *DB) map[Engine]string {
	t.Helper()
	queries := []string{
		"SELECT k, v, s FROM kv",
		"SELECT k, v FROM kv WHERE k >= 10",
		"SELECT COUNT(*), SUM(v) FROM kv",
	}
	dumps := make(map[Engine]string, len(allEngines))
	for _, e := range allEngines {
		db.SetEngine(e)
		var b strings.Builder
		for _, q := range queries {
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("engine %v: %s: %v", e, q, err)
			}
			fmt.Fprintf(&b, "%s: %v\n", q, res.Rows)
		}
		dumps[e] = b.String()
	}
	db.SetEngine(Holistic)
	for _, e := range allEngines[1:] {
		if dumps[e] != dumps[allEngines[0]] {
			t.Fatalf("engines disagree before any recovery:\n%v: %s\n%v: %s",
				allEngines[0], dumps[allEngines[0]], e, dumps[e])
		}
	}
	return dumps
}

// requireSameDumps diffs two engine dump sets.
func requireSameDumps(t *testing.T, want, got map[Engine]string) {
	t.Helper()
	for _, e := range allEngines {
		if got[e] != want[e] {
			t.Fatalf("engine %v diverged after recovery:\nbefore: %s\nafter:  %s", e, want[e], got[e])
		}
	}
}

// seedKV creates the kv table with an index and a first batch of rows.
func seedKV(t *testing.T, db *DB) {
	t.Helper()
	if err := db.CreateTable("kv", Int("k"), Float("v"), Char("s", 8)); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("kv", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO kv VALUES (1, 1.5, 'aa'), (2, 2.5, 'bb'), (3, 3.5, 'cc')"); err != nil {
		t.Fatal(err)
	}
}

func TestDurabilityReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, WithPlanCache(32))
	if err != nil {
		t.Fatal(err)
	}
	seedKV(t, db)
	// Exercise every record type: parameterized batched insert, Go-API
	// insert, delete, update.
	for i := 10; i < 30; i += 2 {
		if _, err := db.Exec("INSERT INTO kv VALUES (?, ?, ?), (?, ?, ?)",
			i, float64(i)/2, fmt.Sprintf("r%d", i), i+1, float64(i+1)/2, fmt.Sprintf("r%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("kv", 99, 9.75, "direct"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM kv WHERE k = ?", 14); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE kv SET v = ?, s = ? WHERE k >= ?", 0.25, "upd", 20); err != nil {
		t.Fatal(err)
	}
	want := engineDumps(t, db)

	// Crash: reopen the directory without closing (the first DB is
	// abandoned; every acknowledged record is in the OS page cache).
	db2, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rs := db2.RecoveryStats()
	if rs.ReplayedRecords == 0 {
		t.Fatal("expected WAL replay, got none")
	}
	if rs.ReplayErrors != 0 {
		t.Fatalf("replay errors: %d", rs.ReplayErrors)
	}
	requireSameDumps(t, want, engineDumps(t, db2))
	// The replayed index serves probes (key 99 was caught by the
	// UPDATE ... WHERE k >= 20 above).
	res, err := db2.Query("SELECT v FROM kv WHERE k = ?", 99)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != 0.25 {
		t.Fatalf("index probe after replay: rows=%v err=%v", res, err)
	}
}

func TestDurabilityCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedKV(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Tail past the checkpoint.
	if _, err := db.Exec("INSERT INTO kv VALUES (50, 5.0, 'tail')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE kv SET v = ? WHERE k = ?", 8.0, 1); err != nil {
		t.Fatal(err)
	}
	want := engineDumps(t, db)

	db2, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rs := db2.RecoveryStats()
	if rs.SnapshotLSN == 0 {
		t.Fatal("recovery ignored the checkpoint snapshot")
	}
	if rs.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records past the snapshot, want 2", rs.ReplayedRecords)
	}
	requireSameDumps(t, want, engineDumps(t, db2))
}

func TestDurabilityCleanClose(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, WithFsync(FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	seedKV(t, db)
	want := engineDumps(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}

	db2, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Close checkpointed, so recovery is snapshot-only.
	if rs := db2.RecoveryStats(); rs.ReplayedRecords != 0 {
		t.Fatalf("clean close still replayed %d records", rs.ReplayedRecords)
	}
	requireSameDumps(t, want, engineDumps(t, db2))
}

func TestDurabilityTornTailAtOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedKV(t, db)
	want := engineDumps(t, db)

	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var warnings []string
	db2, err := OpenDurable(dir, WithDurabilityLogf(func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}))
	if err != nil {
		t.Fatalf("open over a torn tail must succeed, got %v", err)
	}
	defer db2.Close()
	if len(warnings) == 0 {
		t.Fatal("expected a torn-tail warning")
	}
	requireSameDumps(t, want, engineDumps(t, db2))
}

// TestDurabilityConcurrentWithCheckpoints is the -race recovery
// concurrency test: batched INSERT/DELETE/UPDATE writers race
// background checkpoints, then the store reopens and every engine must
// agree byte-for-byte with the pre-close state.
func TestDurabilityConcurrentWithCheckpoints(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir,
		WithPlanCache(64),
		WithFsync(FsyncInterval),
		WithFsyncInterval(2*time.Millisecond),
		WithCheckpointInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	seedKV(t, db)

	const writers = 4
	const perWriter = 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 1000 * (w + 1)
			for i := 0; i < perWriter; i++ {
				k := base + i
				switch i % 4 {
				case 0, 1:
					if _, err := db.Exec("INSERT INTO kv VALUES (?, ?, ?), (?, ?, ?)",
						k, float64(k)/4, "w", k+500, float64(k)/8, "x"); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				case 2:
					if _, err := db.Exec("UPDATE kv SET v = ? WHERE k = ?", float64(i), base+i-1); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				case 3:
					if _, err := db.Exec("DELETE FROM kv WHERE k = ?", base+i-2); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// Explicit checkpoints race the background cadence too.
	stop := make(chan struct{})
	var ckWg sync.WaitGroup
	ckWg.Add(1)
	go func() {
		defer ckWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := db.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
				time.Sleep(3 * time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	ckWg.Wait()
	if t.Failed() {
		return
	}

	nBefore, err := db.RowCount("kv")
	if err != nil {
		t.Fatal(err)
	}
	want := engineDumps(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	nAfter, err := db2.RowCount("kv")
	if err != nil {
		t.Fatal(err)
	}
	if nAfter != nBefore {
		t.Fatalf("row count changed across recovery: %d -> %d", nBefore, nAfter)
	}
	requireSameDumps(t, want, engineDumps(t, db2))
}

func TestDurabilitySeedRules(t *testing.T) {
	dir := t.TempDir()
	if DirInitialized(dir) {
		t.Fatal("fresh dir reported initialized")
	}
	// A fresh directory accepts a seed catalogue and checkpoints it
	// immediately (the bootstrap snapshot).
	seed := Open()
	if err := seed.CreateTable("kv", Int("k"), Float("v"), Char("s", 8)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Insert("kv", 7, 0.5, "seed"); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDurable(dir, WithCatalog(seed.Catalog()))
	if err != nil {
		t.Fatal(err)
	}
	if !DirInitialized(dir) {
		t.Fatal("seeded open left no bootstrap snapshot")
	}
	want := engineDumps(t, db)
	// An initialized directory refuses a second seed...
	if _, err := OpenDurable(dir, WithCatalog(seed.Catalog())); err == nil {
		t.Fatal("re-seeding an initialized directory must fail")
	}
	// ...but opens fine without one, recovering the seed itself even
	// though the seeding process never wrote a WAL record for it.
	db2, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	requireSameDumps(t, want, engineDumps(t, db2))
	_ = db
}

func TestDurabilityFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, err := OpenDurable(dir, WithFsync(mode), WithFsyncInterval(time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			seedKV(t, db)
			want := engineDumps(t, db)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2, err := OpenDurable(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			requireSameDumps(t, want, engineDumps(t, db2))
		})
	}
	if _, ok := ParseFsyncMode("sometimes"); ok {
		t.Fatal("ParseFsyncMode accepted garbage")
	}
	if m, ok := ParseFsyncMode("interval"); !ok || m != FsyncInterval {
		t.Fatalf("ParseFsyncMode(interval) = %v, %v", m, ok)
	}
}
