package hique

// Durability and crash recovery (DESIGN.md §9). A durable DB logs every
// mutating statement — DML and DDL — to a write-ahead log before the
// mutation becomes visible, checkpoints the page arena plus catalogue to
// a snapshot sidecar on a background cadence, and on open loads the
// newest valid snapshot and replays the WAL tail. The WAL record is the
// *statement* (PR 4's one-writer-lock-per-statement batching makes a
// bound write plan a natural logical record), so replay runs the exact
// apply functions the live path runs.
//
// Ordering per statement: encode the bound plan (outside any lock) →
// acquire the table writer lock → Append to the WAL → apply the
// mutation → release the lock → Commit (fsync wait under -fsync=always)
// → acknowledge. An append failure fails the statement before any
// mutation; a crash between append and ack replays at most one
// acknowledged-to-nobody statement, keeping recovered state a
// consistent prefix of acknowledged statements.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
	"hique/internal/wal"
)

// FsyncMode is the durability/latency trade-off for acknowledged writes
// (the -fsync server flag).
type FsyncMode int

const (
	// FsyncAlways fsyncs before every statement acknowledgement (group
	// commit batches concurrent writers into shared fsyncs).
	FsyncAlways FsyncMode = iota
	// FsyncInterval acknowledges immediately and fsyncs on a background
	// cadence: a crash loses at most the last interval.
	FsyncInterval
	// FsyncOff never fsyncs the log explicitly: a crash loses everything
	// since the last checkpoint (or clean close). The log is still
	// written, so a clean process exit loses nothing.
	FsyncOff
)

// String names the mode using the -fsync flag vocabulary.
func (m FsyncMode) String() string {
	return [...]string{"always", "interval", "off"}[m]
}

// ParseFsyncMode resolves a -fsync flag value; ok is false for unknown
// names.
func ParseFsyncMode(s string) (FsyncMode, bool) {
	for _, m := range []FsyncMode{FsyncAlways, FsyncInterval, FsyncOff} {
		if m.String() == s {
			return m, true
		}
	}
	return FsyncAlways, false
}

func (m FsyncMode) walPolicy() wal.SyncPolicy {
	switch m {
	case FsyncInterval:
		return wal.SyncInterval
	case FsyncOff:
		return wal.SyncOff
	}
	return wal.SyncAlways
}

// durabilityConfig collects the durability options before Open wires
// them up; a nil config (or empty dir) means an in-memory DB.
type durabilityConfig struct {
	dir         string
	mode        FsyncMode
	fsyncIvl    time.Duration
	ckptIvl     time.Duration
	fs          wal.FS
	logf        func(format string, args ...any)
	segmentSize int64
}

// durCfg lazily materialises the config so the durability options
// compose in any order.
func (db *DB) durabilityCfg() *durabilityConfig {
	if db.durCfg == nil {
		db.durCfg = &durabilityConfig{mode: FsyncAlways}
	}
	return db.durCfg
}

// WithDurability makes the database durable in dir: every mutating
// statement is written ahead to a CRC32C-framed WAL, checkpoints
// snapshot the page arena + catalogue, and Open recovers by loading the
// newest valid snapshot and replaying the WAL tail (truncating a torn
// or corrupt tail with a warning rather than refusing to start).
// Combine with WithFsync / WithFsyncInterval / WithCheckpointInterval.
// Open panics if recovery fails outright (unreadable directory); use
// OpenDurable for an error instead.
func WithDurability(dir string) Option {
	return func(db *DB) { db.durabilityCfg().dir = dir }
}

// WithFsync selects when acknowledged statements reach stable storage
// (default FsyncAlways). See FsyncMode.
func WithFsync(m FsyncMode) Option {
	return func(db *DB) { db.durabilityCfg().mode = m }
}

// WithFsyncInterval sets the FsyncInterval cadence (default 50ms).
func WithFsyncInterval(d time.Duration) Option {
	return func(db *DB) { db.durabilityCfg().fsyncIvl = d }
}

// WithCheckpointInterval enables background checkpointing every d
// (<= 0, the default, checkpoints only on Close and explicit
// Checkpoint calls).
func WithCheckpointInterval(d time.Duration) Option {
	return func(db *DB) { db.durabilityCfg().ckptIvl = d }
}

// WithWALFS injects the filesystem the WAL appends through — the crash
// harness's fault-injection hook (see wal.FaultFS). The zero default is
// the real filesystem.
func WithWALFS(fs wal.FS) Option {
	return func(db *DB) { db.durabilityCfg().fs = fs }
}

// WithDurabilityLogf routes recovery and checkpoint warnings (torn
// tails, corrupt snapshots, replay errors) to f instead of stderr.
func WithDurabilityLogf(f func(format string, args ...any)) Option {
	return func(db *DB) { db.durabilityCfg().logf = f }
}

// OpenDurable is Open(WithDurability(dir), options...) returning
// recovery errors instead of panicking — the form servers should use.
func OpenDurable(dir string, options ...Option) (*DB, error) {
	return newDB(append([]Option{WithDurability(dir)}, options...))
}

// DirInitialized reports whether dir already holds a durable database
// (a snapshot or WAL segments). cmd/hique-server uses it to seed TPC-H
// only into a fresh data directory.
func DirInitialized(dir string) bool {
	if m, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.ckpt")); len(m) > 0 {
		return true
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log")); len(m) > 0 {
		return true
	}
	return false
}

// WAL record types. Records are logical: the bound statement, not page
// deltas — replay re-runs the exact apply functions the live write path
// runs, so recovered state is byte-identical across engines.
const (
	recInsert      byte = 1 // table, tuple size, encoded rows
	recDelete      byte = 2 // table, filters
	recUpdate      byte = 3 // table, filters, set assignments
	recCreateTable byte = 4 // table, schema
	recBuildIndex  byte = 5 // table, column
)

// durability is the per-DB durability engine: the WAL, the checkpoint
// state, and the recovery counters.
type durability struct {
	db   *DB
	dir  string
	mode FsyncMode
	log  *wal.Log
	logf func(format string, args ...any)

	// ckptMu serialises checkpoints (background loop, Close, explicit
	// Checkpoint calls).
	ckptMu  sync.Mutex
	ckptIvl time.Duration

	snapLSN      atomic.Uint64 // LSN the newest on-disk snapshot covers
	checkpoints  atomic.Int64
	recoveredLSN uint64 // snapshot LSN recovery started from
	replayed     atomic.Int64
	replayErrors atomic.Int64

	stop     chan struct{}
	loopDone sync.WaitGroup
}

// openDurability recovers the data directory and attaches the WAL:
// load the newest valid snapshot, open the log (repairing a torn
// tail), replay records past the snapshot, and — for a fresh directory
// opened over a seed catalogue — write a bootstrap checkpoint so the
// seed itself is durable.
func (db *DB) openDurability() error {
	cfg := db.durCfg
	logf := cfg.logf
	if logf == nil {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	if err := os.MkdirAll(cfg.dir, 0o755); err != nil {
		return fmt.Errorf("hique: durability: %w", err)
	}
	initialized := DirInitialized(cfg.dir)
	seeded := len(db.cat.Names()) > 0
	if initialized && seeded {
		return fmt.Errorf("hique: data directory %q is already initialized; open it without a seed catalogue", cfg.dir)
	}
	d := &durability{
		db: db, dir: cfg.dir, mode: cfg.mode, logf: logf,
		ckptIvl: cfg.ckptIvl, stop: make(chan struct{}),
	}
	var snapLSN uint64
	if initialized {
		var err error
		if snapLSN, err = d.loadSnapshot(); err != nil {
			return err
		}
	}
	d.snapLSN.Store(snapLSN)
	d.recoveredLSN = snapLSN
	log, err := wal.Open(filepath.Join(cfg.dir, "wal"), wal.Options{
		Policy:       cfg.mode.walPolicy(),
		Interval:     cfg.fsyncIvl,
		SegmentSize:  cfg.segmentSize,
		StartLSN:     snapLSN + 1,
		FS:           cfg.fs,
		FsyncObserve: db.met.walFsync.Observe,
		Logf:         logf,
	})
	if err != nil {
		return fmt.Errorf("hique: durability: %w", err)
	}
	d.log = log
	n, err := log.Replay(snapLSN, d.replayRecord)
	d.replayed.Store(n)
	if err != nil {
		_ = log.Close()
		return fmt.Errorf("hique: durability: %w", err)
	}
	for _, name := range db.cat.Names() {
		db.markStale(name)
	}
	db.dur = d
	if seeded {
		// Fresh directory over a seed catalogue (e.g. -tpch): checkpoint
		// now so the seed survives a crash before the first natural
		// checkpoint.
		if err := d.checkpoint(); err != nil {
			db.dur = nil
			_ = log.Close()
			return fmt.Errorf("hique: durability: bootstrap checkpoint: %w", err)
		}
	}
	if d.ckptIvl > 0 {
		d.loopDone.Add(1)
		go d.checkpointLoop()
	}
	return nil
}

// checkpointLoop is the background checkpoint cadence.
func (d *durability) checkpointLoop() {
	defer d.loopDone.Done()
	t := time.NewTicker(d.ckptIvl)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := d.checkpoint(); err != nil {
				d.logf("hique: background checkpoint: %v", err)
			}
		}
	}
}

// Checkpoint snapshots the database and truncates the WAL at the
// snapshot LSN. No-op (nil) on an in-memory DB.
func (db *DB) Checkpoint() error {
	if db.dur == nil {
		return nil
	}
	return db.dur.checkpoint()
}

// Close stops background durability work, runs a final checkpoint, and
// closes the WAL. Safe to call multiple times; no-op (nil) on an
// in-memory DB. Statements issued after Close fail with a closed-log
// error rather than being silently non-durable.
func (db *DB) Close() error {
	var err error
	db.closeOnce.Do(func() {
		if db.dur == nil {
			return
		}
		close(db.dur.stop)
		db.dur.loopDone.Wait()
		if e := db.dur.checkpoint(); e != nil {
			err = e
		}
		if e := db.dur.log.Close(); e != nil && err == nil {
			err = e
		}
	})
	return err
}

// RecoveryStats reports what the most recent open recovered.
type RecoveryStats struct {
	// SnapshotLSN is the LSN of the snapshot recovery loaded (0 when
	// the directory was fresh).
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// ReplayedRecords counts WAL records applied past the snapshot.
	ReplayedRecords int64 `json:"replayed_records"`
	// ReplayErrors counts records that decoded but failed to apply
	// (warned and skipped).
	ReplayErrors int64 `json:"replay_errors"`
}

// RecoveryStats reports the most recent open's recovery work; the zero
// value on an in-memory DB.
func (db *DB) RecoveryStats() RecoveryStats {
	if db.dur == nil {
		return RecoveryStats{}
	}
	return RecoveryStats{
		SnapshotLSN:     db.dur.recoveredLSN,
		ReplayedRecords: db.dur.replayed.Load(),
		ReplayErrors:    db.dur.replayErrors.Load(),
	}
}

// DurabilityStats snapshots the durability engine's counters for
// /stats.
type DurabilityStats struct {
	FsyncMode       string `json:"fsync_mode"`
	LastLSN         uint64 `json:"last_lsn"`
	DurableLSN      uint64 `json:"durable_lsn"`
	CheckpointLSN   uint64 `json:"checkpoint_lsn"`
	WALRecords      int64  `json:"wal_records"`
	WALBytes        int64  `json:"wal_bytes"`
	Fsyncs          int64  `json:"fsyncs"`
	Checkpoints     int64  `json:"checkpoints"`
	ReplayedRecords int64  `json:"replayed_records"`
}

// durabilityStats returns nil on an in-memory DB.
func (db *DB) durabilityStats() *DurabilityStats {
	d := db.dur
	if d == nil {
		return nil
	}
	st := d.log.StatsSnapshot()
	return &DurabilityStats{
		FsyncMode:       d.mode.String(),
		LastLSN:         st.LastLSN,
		DurableLSN:      st.DurableLSN,
		CheckpointLSN:   d.snapLSN.Load(),
		WALRecords:      st.Appended,
		WALBytes:        st.Bytes,
		Fsyncs:          st.Fsyncs,
		Checkpoints:     d.checkpoints.Load(),
		ReplayedRecords: d.replayed.Load(),
	}
}

// ---------------------------------------------------------------------
// Write-path hooks
// ---------------------------------------------------------------------

// logAppend writes one record under the mutation's lock; a failure
// fails the statement before the mutation applies.
func (d *durability) logAppend(typ byte, payload []byte) (uint64, error) {
	lsn, err := d.log.Append(typ, payload)
	if err != nil {
		return 0, fmt.Errorf("hique: wal append: %w", err)
	}
	return lsn, nil
}

// logCommit waits (under FsyncAlways) for the record to be durable —
// called after the lock is released, before the statement
// acknowledges, so readers never block on an fsync.
func (d *durability) logCommit(lsn uint64) error {
	if err := d.log.Commit(lsn); err != nil {
		return fmt.Errorf("hique: wal commit: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------
// Payload encodings (all little-endian):
//
//	insert:       str16 table | u32 tupleSize | u32 nRows | rows (raw tuples)
//	delete:       str16 table | filters
//	update:       str16 table | filters | u16 nSets | nSets × (u32 col | datum)
//	create table: str16 table | schema (storage.WriteSchema framing)
//	build index:  str16 table | str16 column
//	filters:      u16 n | n × (u32 col | u8 op | datum)
//	datum:        u8 kind | (String: u32 len | bytes) or (u64 value bits)

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	return append(b, w[:]...)
}

func appendStr16(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

func appendDatum(b []byte, d types.Datum) []byte {
	b = append(b, byte(d.Kind))
	switch d.Kind {
	case types.String:
		b = appendU32(b, uint32(len(d.S)))
		return append(b, d.S...)
	case types.Float:
		return appendU64(b, math.Float64bits(d.F))
	default:
		return appendU64(b, uint64(d.I))
	}
}

func appendFilters(b []byte, filters []plan.Filter) []byte {
	b = appendU16(b, uint16(len(filters)))
	for i := range filters {
		b = appendU32(b, uint32(filters[i].Col))
		b = append(b, byte(filters[i].Op))
		b = appendDatum(b, filters[i].Val)
	}
	return b
}

// encodeWritePlan renders a *bound* write plan (every parameter slot
// resolved to a concrete datum) into dst, returning the record type.
// Called before the table lock is taken: the bound plan is immutable.
func encodeWritePlan(dst []byte, w *plan.WritePlan) ([]byte, byte) {
	dst = appendStr16(dst, w.Table)
	switch w.Kind {
	case plan.WriteInsert:
		s := w.Schema
		ts := s.TupleSize()
		dst = appendU32(dst, uint32(ts))
		dst = appendU32(dst, uint32(len(w.Rows)))
		for _, row := range w.Rows {
			off := len(dst)
			dst = append(dst, make([]byte, ts)...)
			slot := dst[off : off+ts]
			for ci := range row {
				s.PutDatum(slot, ci, row[ci].Val)
			}
		}
		return dst, recInsert
	case plan.WriteDelete:
		return appendFilters(dst, w.Filters), recDelete
	default: // plan.WriteUpdate
		dst = appendFilters(dst, w.Filters)
		dst = appendU16(dst, uint16(len(w.Sets)))
		for i := range w.Sets {
			dst = appendU32(dst, uint32(w.Sets[i].Col))
			dst = appendDatum(dst, w.Sets[i].Val.Val)
		}
		return dst, recUpdate
	}
}

// encodeInsertRow renders the Go-API Insert as a one-row insert record.
func encodeInsertRow(dst []byte, table string, s *types.Schema, row []types.Datum) []byte {
	dst = appendStr16(dst, table)
	ts := s.TupleSize()
	dst = appendU32(dst, uint32(ts))
	dst = appendU32(dst, 1)
	off := len(dst)
	dst = append(dst, make([]byte, ts)...)
	slot := dst[off : off+ts]
	for ci := range row {
		s.PutDatum(slot, ci, row[ci])
	}
	return dst
}

// encodeCreateTable renders a CREATE TABLE record.
func encodeCreateTable(table string, s *types.Schema) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(appendStr16(nil, table))
	if err := storage.WriteSchema(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// encodeBuildIndex renders a BuildIndex record.
func encodeBuildIndex(table, column string) []byte {
	return appendStr16(appendStr16(nil, table), column)
}

// recReader decodes record payloads with sticky bounds checking: any
// short read poisons the reader and the caller reports one decode
// error. (CRC passing makes decode errors unreachable in practice;
// this is defence against a record type mismatch.)
type recReader struct {
	buf []byte
	off int
	bad bool
}

func (r *recReader) take(n int) []byte {
	if r.bad || r.off+n > len(r.buf) {
		r.bad = true
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *recReader) u16() int {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return int(binary.LittleEndian.Uint16(b))
}

func (r *recReader) u32() int {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return int(binary.LittleEndian.Uint32(b))
}

func (r *recReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *recReader) str16() string {
	return string(r.take(r.u16()))
}

func (r *recReader) datum() types.Datum {
	kb := r.take(1)
	if kb == nil {
		return types.Datum{}
	}
	switch k := types.Kind(kb[0]); k {
	case types.String:
		return types.StringDatum(string(r.take(r.u32())))
	case types.Float:
		return types.FloatDatum(math.Float64frombits(r.u64()))
	default:
		return types.Datum{Kind: k, I: int64(r.u64())}
	}
}

func (r *recReader) filters() []plan.Filter {
	n := r.u16()
	if r.bad || n > len(r.buf) {
		r.bad = true
		return nil
	}
	fs := make([]plan.Filter, 0, n)
	for i := 0; i < n; i++ {
		col := r.u32()
		ob := r.take(1)
		if ob == nil {
			return nil
		}
		fs = append(fs, plan.Filter{Col: col, Op: sql.CmpOp(ob[0]), Val: r.datum()})
	}
	return fs
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

// replayRecord applies one WAL record during recovery. Apply errors are
// warned and skipped (counted in RecoveryStats) rather than aborting
// the open: a database that starts with a gap beats one that refuses
// to start.
func (d *durability) replayRecord(lsn uint64, typ byte, payload []byte) error {
	if err := d.applyRecord(typ, payload); err != nil {
		d.replayErrors.Add(1)
		d.logf("hique: wal replay: skipping record lsn=%d type=%d: %v", lsn, typ, err)
	}
	return nil
}

// applyRecord decodes and applies one record through the same apply
// functions the live write path uses. Recovery is single-threaded (the
// DB is not shared yet), so no locks are taken.
func (d *durability) applyRecord(typ byte, payload []byte) error {
	db := d.db
	r := &recReader{buf: payload}
	switch typ {
	case recCreateTable:
		name := r.str16()
		if r.bad {
			return fmt.Errorf("truncated create-table record")
		}
		schema, err := storage.ReadSchema(bytes.NewReader(r.buf[r.off:]))
		if err != nil {
			return fmt.Errorf("create table %q: %w", name, err)
		}
		if _, err := db.cat.Lookup(name); err == nil {
			return fmt.Errorf("create table %q: already exists", name)
		}
		db.cat.Register(storage.NewTable(name, schema))
		return nil
	case recBuildIndex:
		name, col := r.str16(), r.str16()
		if r.bad {
			return fmt.Errorf("truncated build-index record")
		}
		_, err := db.cat.BuildIndex(name, col)
		return err
	case recInsert:
		name := r.str16()
		ts, n := r.u32(), r.u32()
		e, err := db.cat.Lookup(name)
		if err != nil {
			return err
		}
		s := e.Table.Schema()
		if ts != s.TupleSize() {
			return fmt.Errorf("insert into %q: tuple size %d, schema wants %d", name, ts, s.TupleSize())
		}
		for i := 0; i < n; i++ {
			tuple := r.take(ts)
			if tuple == nil {
				return fmt.Errorf("insert into %q: truncated row %d of %d", name, i, n)
			}
			appendRowLocked(e, s.DecodeRow(tuple))
		}
		return nil
	case recDelete:
		name := r.str16()
		filters := r.filters()
		e, err := db.cat.Lookup(name)
		if err != nil {
			return err
		}
		if r.bad {
			return fmt.Errorf("truncated delete record for %q", name)
		}
		applyDelete(e, filters)
		return nil
	case recUpdate:
		name := r.str16()
		filters := r.filters()
		nSets := r.u16()
		sets := make([]plan.SetColumn, 0, nSets)
		for i := 0; i < nSets && !r.bad; i++ {
			col := r.u32()
			sets = append(sets, plan.SetColumn{Col: col, Val: plan.WriteValue{Val: r.datum()}})
		}
		e, err := db.cat.Lookup(name)
		if err != nil {
			return err
		}
		if r.bad {
			return fmt.Errorf("truncated update record for %q", name)
		}
		applyUpdate(e, filters, sets)
		return nil
	}
	return fmt.Errorf("unknown record type %d", typ)
}

// ---------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------

const snapMagic = "HIQS0001"

// snapCRCTable is the CRC32C table snapshot files are checksummed with.
var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

func snapshotPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%016x.ckpt", lsn))
}

// checkpoint writes a consistent snapshot of every table and truncates
// the WAL at the snapshot LSN.
//
// Consistency: it holds ddlMu plus read locks on every table (in the
// global table-ID order), which quiesces the WAL — DML appends happen
// under table writer locks, DDL appends under ddlMu — so LastLSN at
// that moment covers exactly the applied mutations. The serialization
// into memory happens under the locks (a copy), the file write
// happens after they release, so writers stall only for the copy, not
// the disk. The log is rotated at the snapshot LSN inside the quiesced
// window, making every earlier segment wholly obsolete once the
// snapshot file is safely renamed into place.
func (d *durability) checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	db := d.db

	db.ddlMu.Lock()
	names := db.cat.Names()
	unlock, _ := db.lockTables(names, false)
	snapLSN := d.log.LastLSN()
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	var u64b [8]byte
	binary.LittleEndian.PutUint64(u64b[:], snapLSN)
	buf.Write(u64b[:])
	var u32b [4]byte
	binary.LittleEndian.PutUint32(u32b[:], uint32(len(names)))
	buf.Write(u32b[:])
	var serr error
	for _, name := range names {
		e, err := db.cat.Lookup(name)
		if err != nil {
			continue
		}
		buf.Write(appendStr16(nil, name))
		idx := e.IndexColumns()
		buf.Write(appendU16(nil, uint16(len(idx))))
		for _, c := range idx {
			buf.Write(appendStr16(nil, c))
		}
		if serr = storage.WriteTable(&buf, e.Table); serr != nil {
			break
		}
	}
	var rotErr error
	if serr == nil {
		rotErr = d.log.Rotate()
	}
	unlock()
	db.ddlMu.Unlock()
	if serr != nil {
		return fmt.Errorf("hique: checkpoint serialize: %w", serr)
	}
	if rotErr != nil {
		return fmt.Errorf("hique: checkpoint rotate: %w", rotErr)
	}

	if err := writeSnapshotFile(d.dir, snapLSN, buf.Bytes()); err != nil {
		return fmt.Errorf("hique: checkpoint write: %w", err)
	}
	d.snapLSN.Store(snapLSN)
	d.checkpoints.Add(1)
	d.pruneSnapshots(snapLSN)
	if err := d.log.RemoveSegmentsBefore(snapLSN); err != nil {
		d.logf("hique: checkpoint: pruning wal segments: %v", err)
	}
	return nil
}

// writeSnapshotFile persists body (magic..tables) plus a trailing CRC32C
// via the atomic temp-write/fsync/rename protocol; a crash mid-write
// leaves at worst a .tmp file recovery ignores.
func writeSnapshotFile(dir string, lsn uint64, body []byte) error {
	final := snapshotPath(dir, lsn)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.Checksum(body, snapCRCTable))
	if _, err = f.Write(body); err == nil {
		_, err = f.Write(crcb[:])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	// Make the rename itself durable.
	if df, derr := os.Open(dir); derr == nil {
		_ = df.Sync()
		_ = df.Close()
	}
	return nil
}

// pruneSnapshots removes snapshots older than keep, plus stray temp
// files from interrupted checkpoints.
func (d *durability) pruneSnapshots(keep uint64) {
	for _, ref := range listSnapshots(d.dir) {
		if ref.lsn < keep {
			_ = os.Remove(ref.path)
		}
	}
	if tmps, err := filepath.Glob(filepath.Join(d.dir, "snapshot-*.ckpt.tmp")); err == nil {
		for _, t := range tmps {
			_ = os.Remove(t)
		}
	}
}

type snapRef struct {
	path string
	lsn  uint64
}

// listSnapshots returns snapshot files sorted newest-first.
func listSnapshots(dir string) []snapRef {
	matches, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.ckpt"))
	var refs []snapRef
	for _, p := range matches {
		base := filepath.Base(p)
		hexPart := strings.TrimSuffix(strings.TrimPrefix(base, "snapshot-"), ".ckpt")
		lsn, err := strconv.ParseUint(hexPart, 16, 64)
		if err != nil {
			continue
		}
		refs = append(refs, snapRef{path: p, lsn: lsn})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].lsn > refs[j].lsn })
	return refs
}

// loadSnapshot loads the newest snapshot whose CRC validates, falling
// back to older ones on corruption (warning each time). Returns the
// loaded snapshot's LSN, or 0 with an empty catalogue when none is
// usable — the WAL replays from the beginning then.
func (d *durability) loadSnapshot() (uint64, error) {
	for _, ref := range listSnapshots(d.dir) {
		lsn, err := d.loadSnapshotFile(ref.path)
		if err != nil {
			d.logf("hique: recovery: snapshot %s unusable (%v); trying an older one", filepath.Base(ref.path), err)
			continue
		}
		if lsn != ref.lsn {
			d.logf("hique: recovery: snapshot %s internally claims lsn %d; using the file's", filepath.Base(ref.path), lsn)
		}
		return ref.lsn, nil
	}
	return 0, nil
}

// loadSnapshotFile parses one snapshot file into the catalogue.
func (d *durability) loadSnapshotFile(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < len(snapMagic)+8+4+4 {
		return 0, fmt.Errorf("too short (%d bytes)", len(data))
	}
	body, crcb := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, snapCRCTable) != binary.LittleEndian.Uint32(crcb) {
		return 0, fmt.Errorf("checksum mismatch")
	}
	if string(body[:8]) != snapMagic {
		return 0, fmt.Errorf("bad magic %q", body[:8])
	}
	lsn := binary.LittleEndian.Uint64(body[8:16])
	numTables := int(binary.LittleEndian.Uint32(body[16:20]))
	r := bytes.NewReader(body[20:])
	type loaded struct {
		t   *storage.Table
		idx []string
	}
	tables := make([]loaded, 0, numTables)
	for i := 0; i < numTables; i++ {
		var nb [2]byte
		if _, err := io.ReadFull(r, nb[:]); err != nil {
			return 0, fmt.Errorf("table %d: %w", i, err)
		}
		nameBytes := make([]byte, binary.LittleEndian.Uint16(nb[:]))
		if _, err := io.ReadFull(r, nameBytes); err != nil {
			return 0, fmt.Errorf("table %d name: %w", i, err)
		}
		if _, err := io.ReadFull(r, nb[:]); err != nil {
			return 0, fmt.Errorf("table %d: %w", i, err)
		}
		nIdx := int(binary.LittleEndian.Uint16(nb[:]))
		idx := make([]string, nIdx)
		for j := 0; j < nIdx; j++ {
			if _, err := io.ReadFull(r, nb[:]); err != nil {
				return 0, err
			}
			colBytes := make([]byte, binary.LittleEndian.Uint16(nb[:]))
			if _, err := io.ReadFull(r, colBytes); err != nil {
				return 0, err
			}
			idx[j] = string(colBytes)
		}
		t, err := storage.ReadTable(r, string(nameBytes))
		if err != nil {
			return 0, fmt.Errorf("table %q: %w", nameBytes, err)
		}
		tables = append(tables, loaded{t: t, idx: idx})
	}
	// Parse fully validated before mutating the catalogue: a corrupt
	// snapshot never leaves half its tables registered.
	for _, ld := range tables {
		d.db.cat.Register(ld.t)
		for _, col := range ld.idx {
			if _, err := d.db.cat.BuildIndex(ld.t.Name(), col); err != nil {
				d.logf("hique: recovery: rebuilding index %s.%s: %v", ld.t.Name(), col, err)
			}
		}
	}
	return lsn, nil
}
