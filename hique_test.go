package hique

import (
	"strings"
	"testing"
)

func seedDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if err := db.CreateTable("emp", Int("id"), Char("dept", 8), Float("salary"), Date("hired")); err != nil {
		t.Fatal(err)
	}
	depts := []string{"eng", "sales", "ops"}
	for i := 0; i < 300; i++ {
		if err := db.Insert("emp", i, depts[i%3], float64(1000+i*10), int64(18000+i)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCreateInsertQuery(t *testing.T) {
	db := seedDB(t)
	res, err := db.Query("SELECT id, salary FROM emp WHERE dept = 'eng' ORDER BY id LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Columns[0] != "id" || res.Columns[1] != "salary" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Rows[0][0].(int64) != 0 || res.Rows[1][0].(int64) != 3 {
		t.Errorf("eng ids = %v, %v", res.Rows[0][0], res.Rows[1][0])
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestAggregationThroughFacade(t *testing.T) {
	db := seedDB(t)
	res, err := db.Query("SELECT dept, COUNT(*) AS n, AVG(salary) AS mean FROM emp GROUP BY dept ORDER BY dept")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].(int64) != 100 {
			t.Errorf("dept %v count = %v", row[0], row[1])
		}
	}
}

func TestAllEnginesThroughFacade(t *testing.T) {
	for _, e := range []Engine{Holistic, GenericIterators, OptimizedIterators, ColumnStore, HolisticUnoptimized} {
		db := seedDB(t)
		db.SetEngine(e)
		res, err := db.Query("SELECT dept, SUM(salary) AS total FROM emp GROUP BY dept ORDER BY total DESC")
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if len(res.Rows) != 3 {
			t.Errorf("%v: groups = %d", e, len(res.Rows))
		}
	}
}

func TestExplainAndGeneratedSource(t *testing.T) {
	db := seedDB(t)
	explain, err := db.Explain("SELECT dept, COUNT(*) FROM emp GROUP BY dept")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "Aggregate") {
		t.Errorf("Explain missing aggregate:\n%s", explain)
	}
	src, err := db.GeneratedSource("SELECT dept, COUNT(*) FROM emp GROUP BY dept")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "EvaluateQuery") {
		t.Errorf("generated source missing composer:\n%.200s", src)
	}
}

func TestPrepared(t *testing.T) {
	db := seedDB(t)
	p, err := db.Prepare("SELECT dept, MAX(salary) AS top FROM emp GROUP BY dept ORDER BY dept")
	if err != nil {
		t.Fatal(err)
	}
	if p.GenerateTime() <= 0 || p.CompileTime() <= 0 {
		t.Error("preparation timings missing")
	}
	if !strings.Contains(p.Source(), "package query") {
		t.Error("prepared source missing")
	}
	for i := 0; i < 3; i++ {
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("run %d: groups = %d", i, len(res.Rows))
		}
	}
}

func TestInsertErrors(t *testing.T) {
	db := Open()
	if err := db.CreateTable("t", Int("a"), Char("s", 4)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t", Int("a")); err == nil {
		t.Error("duplicate CreateTable should fail")
	}
	if err := db.Insert("t", 1); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := db.Insert("t", "wrong", "s"); err == nil {
		t.Error("type mismatch should fail")
	}
	if err := db.Insert("missing", 1); err == nil {
		t.Error("insert into unknown table should fail")
	}
}

func TestStatsRefreshAfterInsert(t *testing.T) {
	db := Open()
	if err := db.CreateTable("g", Int("k"), Int("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		db.Insert("g", i%5, i)
	}
	res, err := db.Query("SELECT k, COUNT(*) AS n FROM g GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// More inserts with new keys: stats must refresh so directories stay
	// correct.
	for i := 0; i < 50; i++ {
		db.Insert("g", 5+i%5, i)
	}
	res, err = db.Query("SELECT k, COUNT(*) AS n FROM g GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("groups after growth = %d, want 10", len(res.Rows))
	}
}

func TestMiscAccessors(t *testing.T) {
	db := seedDB(t)
	if got := db.Tables(); len(got) != 1 || got[0] != "emp" {
		t.Errorf("Tables = %v", got)
	}
	n, err := db.RowCount("emp")
	if err != nil || n != 300 {
		t.Errorf("RowCount = %d, %v", n, err)
	}
	if err := db.BuildIndex("emp", "id"); err != nil {
		t.Errorf("BuildIndex: %v", err)
	}
	if db.EngineName() == "" {
		t.Error("EngineName empty")
	}
}
