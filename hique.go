// Package hique is the public API of HIQUE, the Holistic Integrated Query
// Engine — a Go reproduction of "Generating code for holistic query
// evaluation" (Krikellas, Viglas, Cintra; ICDE 2010).
//
// HIQUE evaluates SQL by generating query-specific code: the optimizer
// emits a topologically sorted list of operator descriptors, and the code
// generator instantiates staging / join / aggregation templates into
// type- and offset-specialised executables (plus an inspectable source
// rendering of exactly what was instantiated). See DESIGN.md for the
// architecture and EXPERIMENTS.md for the reproduced evaluation.
//
// Quick start:
//
//	db := hique.Open()
//	db.CreateTable("t", hique.Int("id"), hique.Float("price"))
//	db.Insert("t", int64(1), 9.5)
//	res, err := db.Query("SELECT id, price FROM t WHERE price > 5.0")
package hique

import (
	"fmt"
	"strings"
	"time"

	"hique/internal/catalog"
	"hique/internal/codegen"
	"hique/internal/core"
	"hique/internal/dsm"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
	"hique/internal/volcano"
)

// Column declares one attribute of a table.
type Column struct {
	Name string
	kind types.Kind
	size int
}

// Int declares a 64-bit integer column.
func Int(name string) Column { return Column{Name: name, kind: types.Int, size: 8} }

// Float declares a 64-bit float column.
func Float(name string) Column { return Column{Name: name, kind: types.Float, size: 8} }

// Date declares a date column (days since 1970-01-01).
func Date(name string) Column { return Column{Name: name, kind: types.Date, size: 8} }

// Char declares a fixed-width string column.
func Char(name string, width int) Column { return Column{Name: name, kind: types.String, size: width} }

// Engine selects the execution engine for a DB.
type Engine int

const (
	// Holistic is the paper's engine: per-query generated code (default).
	Holistic Engine = iota
	// GenericIterators is the interpreted Volcano baseline.
	GenericIterators
	// OptimizedIterators is the type-specialised Volcano baseline.
	OptimizedIterators
	// ColumnStore is the DSM (MonetDB-style) comparator engine.
	ColumnStore
	// HolisticUnoptimized runs generated plans at the -O0 level (boxed
	// templates); useful for studying the optimisation gap (Table II).
	HolisticUnoptimized
)

// String names the engine.
func (e Engine) String() string {
	return [...]string{"holistic", "generic-iterators", "optimized-iterators", "column-store", "holistic-O0"}[e]
}

type executor interface {
	Name() string
	Execute(p *plan.Plan) (*storage.Table, error)
}

// DB is an embedded HIQUE database: a catalogue of in-memory tables and a
// query engine.
type DB struct {
	cat    *catalog.Catalog
	engine Engine
	exec   executor
	opts   plan.Options
	// stale marks tables whose statistics need recomputation before the
	// next query.
	stale map[string]bool
}

// Open creates an empty database using the holistic engine.
func Open() *DB {
	db := &DB{cat: catalog.New(), opts: plan.DefaultOptions(), stale: map[string]bool{}}
	db.SetEngine(Holistic)
	return db
}

// SetEngine switches the execution engine.
func (db *DB) SetEngine(e Engine) {
	db.engine = e
	switch e {
	case GenericIterators:
		db.exec = volcano.NewGeneric()
	case OptimizedIterators:
		db.exec = volcano.NewOptimized()
	case ColumnStore:
		db.exec = dsm.NewEngine()
	case HolisticUnoptimized:
		db.exec = codegenExec{level: codegen.OptO0}
	default:
		db.exec = core.NewEngine()
	}
}

// EngineName reports the active engine.
func (db *DB) EngineName() string { return db.exec.Name() }

type codegenExec struct{ level codegen.OptLevel }

func (c codegenExec) Name() string { return "holistic" + c.level.String() }

func (c codegenExec) Execute(p *plan.Plan) (*storage.Table, error) {
	q, err := codegen.Generate(p, c.level)
	if err != nil {
		return nil, err
	}
	return q.Run()
}

// CreateTable registers an empty table with the given columns.
func (db *DB) CreateTable(name string, cols ...Column) error {
	name = strings.ToLower(name)
	if len(cols) == 0 {
		return fmt.Errorf("hique: table %q needs at least one column", name)
	}
	if _, err := db.cat.Lookup(name); err == nil {
		return fmt.Errorf("hique: table %q already exists", name)
	}
	tcols := make([]types.Column, len(cols))
	for i, c := range cols {
		tcols[i] = types.Column{Name: strings.ToLower(c.Name), Kind: c.kind, Size: c.size}
	}
	db.cat.Register(storage.NewTable(name, types.NewSchema(tcols...)))
	return nil
}

// Insert appends one row; values must match the column types: int64 (or
// int) for Int/Date, float64 for Float, string for Char.
func (db *DB) Insert(table string, values ...any) error {
	e, err := db.cat.Lookup(strings.ToLower(table))
	if err != nil {
		return err
	}
	s := e.Table.Schema()
	if len(values) != s.NumColumns() {
		return fmt.Errorf("hique: table %q has %d columns, got %d values", table, s.NumColumns(), len(values))
	}
	row := make([]types.Datum, len(values))
	for i, v := range values {
		d, err := toDatum(v, s.Column(i))
		if err != nil {
			return fmt.Errorf("hique: column %q: %w", s.Column(i).Name, err)
		}
		row[i] = d
	}
	e.Table.AppendRow(row...)
	db.stale[e.Table.Name()] = true
	return nil
}

func toDatum(v any, col types.Column) (types.Datum, error) {
	switch col.Kind {
	case types.Int, types.Date:
		switch x := v.(type) {
		case int64:
			return types.Datum{Kind: col.Kind, I: x}, nil
		case int:
			return types.Datum{Kind: col.Kind, I: int64(x)}, nil
		}
	case types.Float:
		if x, ok := v.(float64); ok {
			return types.FloatDatum(x), nil
		}
	case types.String:
		if x, ok := v.(string); ok {
			return types.StringDatum(x), nil
		}
	}
	return types.Datum{}, fmt.Errorf("value %v (%T) incompatible with %v column", v, v, col.Kind)
}

// refreshStats recomputes statistics for tables modified since the last
// query (the optimizer's decisions depend on them).
func (db *DB) refreshStats() {
	for name := range db.stale {
		if e, err := db.cat.Lookup(name); err == nil {
			e.Stats = catalog.ComputeStats(e.Table)
		}
		delete(db.stale, name)
	}
}

// Result is a materialised query result.
type Result struct {
	Columns []string
	Rows    [][]any
	// Elapsed is the execution wall time (preparation excluded).
	Elapsed time.Duration
}

// Query parses, optimises, and executes a SELECT statement.
func (db *DB) Query(query string) (*Result, error) {
	p, err := db.plan(query)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	out, err := db.exec.Execute(p)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	res := &Result{Columns: append([]string(nil), p.OutputNames...), Elapsed: elapsed}
	s := out.Schema()
	out.Scan(func(tuple []byte) bool {
		row := make([]any, s.NumColumns())
		for i := 0; i < s.NumColumns(); i++ {
			d := s.GetDatum(tuple, i)
			switch d.Kind {
			case types.Float:
				row[i] = d.F
			case types.String:
				row[i] = d.S
			default:
				row[i] = d.I
			}
		}
		res.Rows = append(res.Rows, row)
		return true
	})
	return res, nil
}

func (db *DB) plan(query string) (*plan.Plan, error) {
	db.refreshStats()
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return plan.BuildWithOptions(stmt, db.cat, db.opts)
}

// Explain returns the optimizer's plan description.
func (db *DB) Explain(query string) (string, error) {
	p, err := db.plan(query)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// GeneratedSource returns the query-specific source code the holistic code
// generator instantiates for the query (paper §V).
func (db *DB) GeneratedSource(query string) (string, error) {
	p, err := db.plan(query)
	if err != nil {
		return "", err
	}
	return codegen.EmitSource(p), nil
}

// Prepare generates and compiles a query without running it, returning
// preparation timings (paper Table III).
func (db *DB) Prepare(query string) (*Prepared, error) {
	p, err := db.plan(query)
	if err != nil {
		return nil, err
	}
	cq, err := codegen.Generate(p, codegen.OptO2)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, compiled: cq}, nil
}

// Prepared is a generated, compiled query ready for repeated execution.
type Prepared struct {
	db       *DB
	compiled *codegen.CompiledQuery
}

// Source returns the generated source file.
func (p *Prepared) Source() string { return p.compiled.Source }

// GenerateTime reports how long template instantiation took.
func (p *Prepared) GenerateTime() time.Duration { return p.compiled.Prep.Generate }

// CompileTime reports how long compilation (syntax check + closure
// construction) took.
func (p *Prepared) CompileTime() time.Duration { return p.compiled.Prep.Compile }

// Run executes the prepared query.
func (p *Prepared) Run() (*Result, error) {
	start := time.Now()
	out, err := p.compiled.Run()
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	res := &Result{Columns: append([]string(nil), p.compiled.Plan.OutputNames...), Elapsed: elapsed}
	s := out.Schema()
	out.Scan(func(tuple []byte) bool {
		row := make([]any, s.NumColumns())
		for i := 0; i < s.NumColumns(); i++ {
			d := s.GetDatum(tuple, i)
			switch d.Kind {
			case types.Float:
				row[i] = d.F
			case types.String:
				row[i] = d.S
			default:
				row[i] = d.I
			}
		}
		res.Rows = append(res.Rows, row)
		return true
	})
	return res, nil
}

// Tables lists the catalogued table names.
func (db *DB) Tables() []string { return db.cat.Names() }

// RowCount returns a table's cardinality.
func (db *DB) RowCount(table string) (int, error) {
	e, err := db.cat.Lookup(strings.ToLower(table))
	if err != nil {
		return 0, err
	}
	return e.Table.NumRows(), nil
}

// BuildIndex creates a fractal B+-tree index on an integer column.
func (db *DB) BuildIndex(table, column string) error {
	_, err := db.cat.BuildIndex(strings.ToLower(table), strings.ToLower(column))
	return err
}

// Catalog exposes the underlying catalogue for advanced embedding (the
// bench harness and the CLI tools use this).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }
