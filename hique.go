// Package hique is the public API of HIQUE, the Holistic Integrated Query
// Engine — a Go reproduction of "Generating code for holistic query
// evaluation" (Krikellas, Viglas, Cintra; ICDE 2010).
//
// HIQUE evaluates SQL by generating query-specific code: the optimizer
// emits a topologically sorted list of operator descriptors, and the code
// generator instantiates staging / join / aggregation templates into
// type- and offset-specialised executables (plus an inspectable source
// rendering of exactly what was instantiated). See DESIGN.md for the
// architecture and EXPERIMENTS.md for the reproduced evaluation.
//
// Quick start:
//
//	db := hique.Open()
//	db.CreateTable("t", hique.Int("id"), hique.Float("price"))
//	db.Insert("t", int64(1), 9.5)
//	res, err := db.Query("SELECT id, price FROM t WHERE price > 5.0")
//
// A DB is safe for concurrent use: queries on the same table run in
// parallel under per-table reader locks, while writers (Insert,
// CreateTable, BuildIndex) serialise against them. Opening with
// WithPlanCache enables the compiled-plan cache, which amortises the
// per-query preparation cost (parse → optimise → generate → compile;
// paper Table III) across repeated statements. cmd/hique-server exposes
// all of this over HTTP/JSON.
package hique

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hique/internal/catalog"
	"hique/internal/codegen"
	"hique/internal/core"
	"hique/internal/dsm"
	"hique/internal/morsel"
	"hique/internal/obs"
	"hique/internal/plan"
	"hique/internal/plancache"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
	"hique/internal/volcano"
)

// Column declares one attribute of a table.
type Column struct {
	Name string
	kind types.Kind
	size int
}

// Int declares a 64-bit integer column.
func Int(name string) Column { return Column{Name: name, kind: types.Int, size: 8} }

// Float declares a 64-bit float column.
func Float(name string) Column { return Column{Name: name, kind: types.Float, size: 8} }

// Date declares a date column (days since 1970-01-01).
func Date(name string) Column { return Column{Name: name, kind: types.Date, size: 8} }

// Char declares a fixed-width string column.
func Char(name string, width int) Column { return Column{Name: name, kind: types.String, size: width} }

// Engine selects the execution engine for a DB.
type Engine int

const (
	// Holistic is the paper's engine: per-query generated code (default).
	Holistic Engine = iota
	// GenericIterators is the interpreted Volcano baseline.
	GenericIterators
	// OptimizedIterators is the type-specialised Volcano baseline.
	OptimizedIterators
	// ColumnStore is the DSM (MonetDB-style) comparator engine.
	ColumnStore
	// HolisticUnoptimized runs generated plans at the -O0 level (boxed
	// templates); useful for studying the optimisation gap (Table II).
	HolisticUnoptimized
)

// String names the engine.
func (e Engine) String() string {
	return [...]string{"holistic", "generic-iterators", "optimized-iterators", "column-store", "holistic-O0"}[e]
}

// EngineByName resolves an engine from its String form; ok reports
// whether the name is known.
func EngineByName(name string) (Engine, bool) {
	for _, e := range []Engine{Holistic, GenericIterators, OptimizedIterators, ColumnStore, HolisticUnoptimized} {
		if e.String() == name {
			return e, true
		}
	}
	return Holistic, false
}

type executor interface {
	Name() string
	Execute(p *plan.Plan) (*storage.Table, error)
}

// DB is an embedded HIQUE database: a catalogue of in-memory tables and a
// query engine. All methods are safe for concurrent use.
type DB struct {
	cat *catalog.Catalog

	// mu guards the engine selection and optimizer options.
	mu     sync.RWMutex
	engine Engine
	exec   executor
	opts   plan.Options

	// ddlMu serialises CreateTable's existence check with registration.
	ddlMu sync.Mutex

	// staleMu guards stale and refreshing. stale holds tables whose
	// statistics need recomputation before the next query, marked under
	// the table's writer lock so a query holding the reader lock never
	// observes fresh rows with a stale flag still unset. refreshing
	// holds tables whose recomputation is in flight: anyStale reports
	// them too, so no query plans against the old statistics while the
	// refresh is mid-way.
	staleMu    sync.Mutex
	stale      map[string]bool
	refreshing map[string]bool

	// cache holds compiled holistic queries keyed by normalised SQL +
	// optimizer configuration; nil when disabled.
	cache *plancache.Cache

	// writeCache holds planned DML descriptors keyed by normalised
	// statement text. It is a separate LRU so a literal-heavy ingest
	// workload (every distinct multi-VALUES text is its own entry) can
	// never evict the expensive compiled read plans; nil when disabled.
	writeCache *plancache.Cache

	// autoParam lifts literal comparison constants out of cached
	// statements so one compiled plan serves the whole query shape.
	// Guarded by mu; on by default.
	autoParam bool

	// met is the always-on serving telemetry (see metrics.go); set once
	// in Open, immutable afterwards.
	met *dbMetrics

	// pool bounds the helper goroutines this DB's parallel fused
	// pipelines may run at once (attached to every plan it builds);
	// sized once in Open from opts.Parallelism, immutable afterwards.
	pool *morsel.Pool

	// durCfg collects the durability options at Open time; dur is the
	// running durability engine (WAL + checkpoints), nil for an
	// in-memory DB. Set once in Open, immutable afterwards — write paths
	// branch on dur == nil. See durability.go.
	durCfg    *durabilityConfig
	dur       *durability
	closeOnce sync.Once
}

// Option configures a DB at Open time.
type Option func(*DB)

// WithPlanCache enables the compiled-plan cache with the given entry
// capacity (<= 0 selects plancache.DefaultCapacity). Cache hits skip
// parsing, planning, generation, and compilation entirely; entries
// self-invalidate when the catalogue version changes (DDL, index builds,
// statistics refresh). A separate same-capacity cache holds planned DML
// descriptors (see DB.Exec), so write traffic cannot evict compiled
// queries.
func WithPlanCache(capacity int) Option {
	return func(db *DB) {
		db.cache = plancache.New(capacity)
		db.writeCache = plancache.New(capacity)
	}
}

// WithCatalog opens the database over an existing catalogue (e.g. a
// generated TPC-H instance) instead of an empty one.
func WithCatalog(cat *catalog.Catalog) Option {
	return func(db *DB) { db.cat = cat }
}

// WithEngine selects the initial execution engine.
func WithEngine(e Engine) Option {
	return func(db *DB) { db.SetEngine(e) }
}

// WithAutoParam toggles auto-parameterization of cached queries (on by
// default). With it on, literal comparison constants in the WHERE clause
// are lifted out of the statement before the plan-cache lookup, so N
// same-shape queries with N distinct constants compile once and hit the
// cache N-1 times. Turn it off to cache literal-specialized plans — the
// pre-parameterization behaviour — e.g. to let range predicates plan
// against their actual constants instead of catalogue-default
// selectivities.
func WithAutoParam(enabled bool) Option {
	return func(db *DB) { db.autoParam = enabled }
}

// WithParallelism sets the worker target for morsel-driven parallel
// execution of the fused pipelines: n workers cooperate on large scans
// and join probe phases, with results stitched back in morsel order so
// they stay byte-identical to serial execution. n <= 0 restores the
// default (GOMAXPROCS); n == 1 forces every query serial. Inputs below
// the codegen serial threshold run serial regardless of n, so point
// queries never pay a scheduling cost.
func WithParallelism(n int) Option {
	return func(db *DB) {
		if n < 0 {
			n = 0
		}
		db.opts.Parallelism = n
	}
}

// Open creates a database using the holistic engine. Options enable the
// plan cache, adopt an existing catalogue, pick another engine, or make
// the database durable (WithDurability; recovery failures panic here —
// servers should use OpenDurable for an error instead).
func Open(options ...Option) *DB {
	db, err := newDB(options)
	if err != nil {
		panic(err)
	}
	return db
}

// newDB is the shared constructor behind Open and OpenDurable. Metrics
// come up before durability so recovery's fsyncs already observe into
// the hique_wal_fsync_seconds histogram.
func newDB(options []Option) (*DB, error) {
	db := &DB{cat: catalog.New(), opts: plan.DefaultOptions(), stale: map[string]bool{}, refreshing: map[string]bool{}, autoParam: true}
	db.SetEngine(Holistic)
	for _, o := range options {
		o(db)
	}
	workers := db.opts.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	db.pool = morsel.NewPool(workers)
	db.met = newDBMetrics(db)
	if db.durCfg != nil && db.durCfg.dir != "" {
		if err := db.openDurability(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Metrics exposes the DB's telemetry registry for exposition (the HTTP
// server's GET /metrics writes it in the Prometheus text format).
// Telemetry is always on; recording costs a few atomic adds per query.
func (db *DB) Metrics() *obs.Registry { return db.met.reg }

// SetEngine switches the execution engine.
func (db *DB) SetEngine(e Engine) {
	var exec executor
	switch e {
	case GenericIterators:
		exec = volcano.NewGeneric()
	case OptimizedIterators:
		exec = volcano.NewOptimized()
	case ColumnStore:
		exec = dsm.NewEngine()
	case HolisticUnoptimized:
		exec = codegenExec{level: codegen.OptO0}
	default:
		exec = core.NewEngine()
	}
	db.mu.Lock()
	db.engine = e
	db.exec = exec
	db.mu.Unlock()
}

// EngineName reports the active engine.
func (db *DB) EngineName() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.exec.Name()
}

type codegenExec struct{ level codegen.OptLevel }

func (c codegenExec) Name() string { return "holistic" + c.level.String() }

func (c codegenExec) Execute(p *plan.Plan) (*storage.Table, error) {
	q, err := codegen.Generate(p, c.level)
	if err != nil {
		return nil, err
	}
	return q.Run()
}

// CreateTable registers an empty table with the given columns.
func (db *DB) CreateTable(name string, cols ...Column) error {
	name = strings.ToLower(name)
	if len(cols) == 0 {
		return fmt.Errorf("hique: table %q needs at least one column", name)
	}
	tcols := make([]types.Column, len(cols))
	for i, c := range cols {
		tcols[i] = types.Column{Name: strings.ToLower(c.Name), Kind: c.kind, Size: c.size}
	}
	schema := types.NewSchema(tcols...)
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	if _, err := db.cat.Lookup(name); err == nil {
		return fmt.Errorf("hique: table %q already exists", name)
	}
	var lsn uint64
	if db.dur != nil {
		payload, err := encodeCreateTable(name, schema)
		if err != nil {
			return fmt.Errorf("hique: logging create table: %w", err)
		}
		if lsn, err = db.dur.logAppend(recCreateTable, payload); err != nil {
			return err
		}
	}
	db.cat.Register(storage.NewTable(name, schema))
	if db.dur != nil {
		return db.dur.logCommit(lsn)
	}
	return nil
}

// Insert appends one row; values coerce to the column types by the same
// rules as query bind parameters (coerceValue): int/int64/integral
// float64 for Int and Date, "YYYY-MM-DD" strings for Date, int widening
// for Float, strings for Char. Strings wider than the CHAR(n) column are
// rejected with a *WidthError rather than truncated. The row is also
// registered with every index on the table.
func (db *DB) Insert(table string, values ...any) error {
	e, err := db.cat.Lookup(strings.ToLower(table))
	if err != nil {
		return err
	}
	s := e.Table.Schema()
	if len(values) != s.NumColumns() {
		return fmt.Errorf("hique: table %q has %d columns, got %d values", table, s.NumColumns(), len(values))
	}
	name := e.Table.Name()
	row := make([]types.Datum, len(values))
	for i, v := range values {
		col := s.Column(i)
		d, err := coerceValue(v, col.Kind)
		if err != nil {
			return fmt.Errorf("hique: column %q: %w", col.Name, err)
		}
		if err := checkWidth(name, col, d); err != nil {
			return err
		}
		row[i] = d
	}
	var walBuf []byte
	if db.dur != nil {
		walBuf = encodeInsertRow(nil, name, s, row)
	}
	lsn, err := db.insertLocked(e, name, row, walBuf)
	if err != nil {
		return err
	}
	if db.dur != nil {
		return db.dur.logCommit(lsn)
	}
	return nil
}

// insertLocked appends one validated row under the entry's writer lock,
// logging it first on a durable DB. The unlock defer is registered
// before containPanic so LIFO order converts a panic inside the append
// into a statement error while the lock is still held, then releases —
// the write-path containment invariant (hique-vet: containment).
func (db *DB) insertLocked(e *catalog.TableEntry, name string, row []types.Datum, walBuf []byte) (lsn uint64, err error) {
	e.Lock()
	defer e.Unlock()
	defer containPanic(&err)
	if db.dur != nil {
		if lsn, err = db.dur.logAppend(recInsert, walBuf); err != nil {
			return 0, err
		}
	}
	appendRowLocked(e, row)
	db.markStale(name)
	return lsn, nil
}

// refreshStats recomputes statistics for tables modified since the last
// query (the optimizer's decisions depend on them) and bumps each
// table's catalogue version, invalidating cached plans built against the
// old statistics. It makes a single pass over a snapshot of the stale
// set: tables re-marked stale while it runs wait for the next call, so a
// sustained writer cannot trap a reader inside this loop (planLocked's
// bounded retry handles the rest).
func (db *DB) refreshStats() {
	db.staleMu.Lock()
	names := make([]string, 0, len(db.stale))
	for n := range db.stale {
		names = append(names, n)
		db.refreshing[n] = true
		delete(db.stale, n)
	}
	db.staleMu.Unlock()

	for _, name := range names {
		if e, err := db.cat.Lookup(name); err == nil {
			if db.refreshEntry(e) == nil {
				db.cat.BumpTableVersion(name)
			}
		}
		db.staleMu.Lock()
		delete(db.refreshing, name)
		db.staleMu.Unlock()
	}
}

// refreshEntry recomputes one table's statistics under its writer lock.
// The unlock defer is registered before containPanic so a panic inside
// ComputeStats is contained before the lock releases; on a contained
// panic the old statistics stay in place and the version is not bumped
// (hique-vet: containment).
func (db *DB) refreshEntry(e *catalog.TableEntry) (err error) {
	e.Lock()
	defer e.Unlock()
	defer containPanic(&err)
	e.Stats = catalog.ComputeStats(e.Table)
	return nil
}

// refreshNamesLocked recomputes statistics for the named tables whose
// writer locks the caller already holds (no new inserts can land while
// it runs).
func (db *DB) refreshNamesLocked(names []string) {
	for _, n := range names {
		db.staleMu.Lock()
		// A table mid-refresh elsewhere (refreshing) still has old
		// stats visible; recompute it here too so the plan matches the
		// data our writer locks pin. The concurrent refresher's later
		// recompute is idempotent.
		wasStale := db.stale[n] || db.refreshing[n]
		delete(db.stale, n)
		db.staleMu.Unlock()
		if !wasStale {
			continue
		}
		if e, err := db.cat.Lookup(n); err == nil {
			e.Stats = catalog.ComputeStats(e.Table)
			db.cat.BumpTableVersion(n)
		}
	}
}

// anyStale reports whether any of the named tables has pending
// statistics work.
func (db *DB) anyStale(names []string) bool {
	db.staleMu.Lock()
	defer db.staleMu.Unlock()
	for _, n := range names {
		if db.stale[n] || db.refreshing[n] {
			return true
		}
	}
	return false
}

// lockTables acquires locks on the named tables in ascending table-ID
// order — the single global acquisition order every multi-lock path
// shares (the warm-hit fast path orders its direct entry locks the same
// way), which precludes deadlock against the single-table writer locks
// of the DML path. It returns the matching unlock plus the set of names
// actually locked — a name missing from the catalogue is skipped, and
// callers that later resolve it (a table registered mid-flight) must
// notice and retry.
func (db *DB) lockTables(names []string, write bool) (unlock func(), locked map[string]bool) {
	seen := make(map[string]bool, len(names))
	locked = make(map[string]bool, len(names))
	entries := make([]*catalog.TableEntry, 0, len(names))
	entryNames := make([]string, 0, len(names))
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		if e, err := db.cat.Lookup(n); err == nil {
			entries = append(entries, e)
			entryNames = append(entryNames, n)
		}
	}
	sort.Sort(&entriesByID{entries, entryNames})
	for i, e := range entries {
		if write {
			e.Lock()
		} else {
			e.RLock()
		}
		locked[entryNames[i]] = true
	}
	return func() {
		for i := len(entries) - 1; i >= 0; i-- {
			if write {
				entries[i].Unlock()
			} else {
				entries[i].RUnlock()
			}
		}
	}, locked
}

// entriesByID sorts catalogue entries (and their parallel name slice) by
// table ID, the global lock acquisition order.
type entriesByID struct {
	entries []*catalog.TableEntry
	names   []string
}

func (s *entriesByID) Len() int           { return len(s.entries) }
func (s *entriesByID) Less(i, j int) bool { return s.entries[i].ID() < s.entries[j].ID() }
func (s *entriesByID) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.names[i], s.names[j] = s.names[j], s.names[i]
}

// rlockTables acquires reader locks on the named tables.
func (db *DB) rlockTables(names []string) (unlock func()) {
	unlock, _ = db.lockTables(names, false)
	return unlock
}

// planLocked parses and optimises a query, returning the plan together
// with an unlock function releasing the reader locks it holds on every
// referenced table. The stats-refresh / lock / recheck loop guarantees
// the plan is built against statistics consistent with the data the
// locks pin.
func (db *DB) planLocked(query string) (*plan.Plan, func(), error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(stmt.From))
	for i, t := range stmt.From {
		names[i] = t.Name
	}
	db.mu.RLock()
	opts := db.opts
	db.mu.RUnlock()
	for attempt := 0; ; attempt++ {
		db.refreshStats()
		// After three reader-lock rounds lost to writers slipping inserts
		// in between refresh and lock, escalate to writer locks so
		// nothing can land and refresh in place. Bounded latency beats
		// reader starvation.
		p, unlock, retry, err := db.planAttempt(stmt, names, opts, attempt >= 3)
		if err != nil {
			return nil, nil, err
		}
		if retry {
			continue
		}
		p.Pool = db.pool
		return p, unlock, nil
	}
}

// planAttempt runs one lock/recheck round for planLocked: acquire the
// tables (writer locks once reader rounds keep losing to inserts),
// verify statistics are current, and build the plan under the locks. On
// success the locks transfer to the caller through the returned unlock
// function; on retry or error every lock is released here. The
// conditional-release defer is registered before containPanic so a
// panic inside plan building is contained first and then releases the
// locks (hique-vet: containment, lockorder).
func (db *DB) planAttempt(stmt *sql.SelectStmt, names []string, opts plan.Options, write bool) (p *plan.Plan, unlock func(), retry bool, err error) {
	unlockAll, locked := db.lockTables(names, write)
	keep := false
	defer func() {
		if !keep {
			unlockAll()
		}
	}()
	defer containPanic(&err)
	if write {
		db.refreshNamesLocked(names)
	} else if db.anyStale(names) {
		// An Insert slipped in between the refresh and the lock; its
		// stats are pending, so release and refresh again.
		return nil, nil, true, nil
	}
	p, err = plan.BuildWithOptions(stmt, db.cat, opts)
	if err != nil {
		return nil, nil, false, err
	}
	// A table missing at lock time can be registered before Build
	// resolves it; using the plan then would scan it unlocked. Build
	// succeeding proves every referenced table exists now, so each must
	// be in the locked set — else retry.
	for _, n := range planTables(p) {
		if !locked[n] {
			return nil, nil, true, nil
		}
	}
	keep = true
	return p, unlockAll, false, nil
}

func planTables(p *plan.Plan) []string {
	names := make([]string, len(p.Tables))
	for i := range p.Tables {
		names[i] = p.Tables[i].Name
	}
	return names
}

// Result is a materialised query result. All rows share one flat cell
// arena: Rows[i] are adjacent windows of a single backing slice, so a
// result materialises with a constant number of allocations regardless
// of row count — and none at all when a Reset result is reused through
// QueryInto.
type Result struct {
	Columns []string
	Rows    [][]any
	// Elapsed is the execution wall time (preparation excluded).
	Elapsed time.Duration

	// cells is the flat backing arena the rows window into.
	cells []any
}

// Reset clears the result for reuse, retaining the backing capacity so a
// subsequent QueryInto materialises into the same memory. The previous
// Columns/Rows contents must no longer be referenced.
func (r *Result) Reset() {
	r.Columns = r.Columns[:0]
	r.Rows = r.Rows[:0]
	r.cells = r.cells[:0]
	r.Elapsed = 0
}

// materialiseInto decodes the result table into res, reusing its backing
// arena. It iterates pages directly (no closure) and boxes each datum
// exactly once into the flat cell arena.
func materialiseInto(res *Result, columns []string, out *storage.Table, elapsed time.Duration) {
	res.Columns = append(res.Columns[:0], columns...)
	res.Elapsed = elapsed
	s := out.Schema()
	nc := s.NumColumns()
	nr := out.NumRows()

	cells := res.cells[:0]
	if cap(cells) < nr*nc {
		cells = make([]any, 0, nr*nc)
	}
	for pi := 0; pi < out.NumPages(); pi++ {
		pg := out.Page(pi)
		n := pg.NumTuples()
		ts := pg.TupleSize()
		data := pg.Data()
		for j := 0; j < n; j++ {
			tuple := data[j*ts : j*ts+ts]
			for i := 0; i < nc; i++ {
				d := s.GetDatum(tuple, i)
				switch d.Kind {
				case types.Float:
					cells = append(cells, d.F)
				case types.String:
					cells = append(cells, d.S)
				default:
					cells = append(cells, d.I)
				}
			}
		}
	}
	res.cells = cells

	rows := res.Rows[:0]
	if cap(rows) < nr {
		rows = make([][]any, 0, nr)
	}
	for i := 0; i < nr; i++ {
		rows = append(rows, cells[i*nc:(i+1)*nc:(i+1)*nc])
	}
	res.Rows = rows
}

// cacheLevel maps an engine to the optimisation level its compiled
// queries run at; ok is false for the interpreted engines, which have no
// compiled artefact to cache.
func cacheLevel(e Engine) (codegen.OptLevel, bool) {
	switch e {
	case Holistic:
		return codegen.OptO2, true
	case HolisticUnoptimized:
		return codegen.OptO0, true
	default:
		return codegen.OptO2, false
	}
}

// Query parses, optimises, and executes a SELECT statement. The
// statement may contain '?' placeholders, one value per placeholder in
// args: db.Query("SELECT * FROM t WHERE id = ?", 42).
//
// With the plan cache enabled (WithPlanCache) and a holistic engine
// active, a repeated statement skips the whole preparation pipeline: the
// cache is consulted with only a lexer pass, and a hit runs the
// previously compiled query with a freshly bound parameter vector.
// Auto-parameterization (on by default; see WithAutoParam) additionally
// lifts literal comparison constants out of the statement first, so even
// un-annotated SQL collapses to its shape and N distinct-constant point
// queries compile exactly once.
func (db *DB) Query(query string, args ...any) (*Result, error) {
	res := &Result{}
	if err := db.queryInto(res, query, args); err != nil {
		return nil, err
	}
	return res, nil
}

// QueryInto is Query materialising into a caller-supplied result, whose
// backing memory (columns, rows, the flat cell arena) is reused across
// calls: a serving loop that recycles one Result per worker materialises
// repeated queries without allocating. The result is Reset first; on
// error its contents are unspecified.
func (db *DB) QueryInto(res *Result, query string, args ...any) error {
	res.Reset()
	return db.queryInto(res, query, args)
}

// queryScratch holds every buffer a warm cached query needs: the shape
// extractor's token/output/literal buffers, the rendered cache key, and
// the bind vector. One scratch serves one query execution, drawn from a
// pool, so the warm hit path allocates nothing before materialisation.
type queryScratch struct {
	shape  sql.ShapeBuf
	key    []byte
	params []types.Datum
}

var queryScratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

func (db *DB) queryInto(dst *Result, query string, args []any) (err error) {
	// Count the statement and classify its failure on the way out;
	// registered before containPanic so the LIFO defer order lets the
	// panic convert to an error first.
	defer db.met.noteQuery(&err)
	// Last-resort containment: execution and materialisation panics are
	// converted lock-safely inside runCompiled / finishLocked; this outer
	// recover catches anything unexpected above them so one statement
	// cannot kill a process serving thousands of sessions.
	defer containPanic(&err)
	db.mu.RLock()
	exec, engine := db.exec, db.engine
	opts := db.opts
	autoParam := db.autoParam
	db.mu.RUnlock()

	level, cacheable := cacheLevel(engine)
	if db.cache != nil && cacheable {
		if autoParam {
			sc := queryScratchPool.Get().(*queryScratch)
			err := sc.shape.Shape(query)
			if err != nil {
				queryScratchPool.Put(sc)
				return err
			}
			// The shape is already normalized and its arity known, so
			// the whole hit path costs the one lexer pass above.
			sc.key = codegen.AppendCacheKey(sc.key[:0], sc.shape.Out, len(sc.shape.Lits), opts, level)
			prepFailed, err := db.queryCached(dst, "", sc, sc.shape.Lits, true, args, level)
			retryLiterals := err != nil && prepFailed && liftedAny(sc.shape.Lits)
			queryScratchPool.Put(sc)
			if retryLiterals {
				// Literal-specialized fallback (DESIGN.md §3.1): if the
				// parameterized shape cannot be planned, retry with the
				// constants baked in — which also reports plan-time
				// errors in terms of the original literals. Bind errors
				// on caller-supplied values and execution failures are
				// not re-tried: re-planning cannot change them.
				dst.Reset()
				return db.queryLiteralKeyed(dst, query, args, opts, level)
			}
			return err
		}
		return db.queryLiteralKeyed(dst, query, args, opts, level)
	}

	p, unlock, err := db.planLocked(query)
	if err != nil {
		return err
	}
	params, err := bindValuesInto(nil, p.Params, nil, false, args)
	if err != nil {
		unlock()
		return err
	}
	bp, err := p.Bind(params)
	if err != nil {
		unlock()
		return err
	}
	err = db.finish(dst, bp, unlock, func() (*storage.Table, error) { return exec.Execute(bp) })
	if err == nil {
		// The uncached path re-plans every execution (cold) and runs the
		// general engine walk; classification here is amortised against
		// the full parse→plan pipeline it just paid for.
		db.met.lat[classifyPlan(p)][pathGeneral][tempCold].Observe(dst.Elapsed)
	}
	return err
}

// queryLiteralKeyed runs the cached path without auto-parameterization:
// the statement text itself (normalised) is the cache identity, binding
// only explicit '?' placeholders.
func (db *DB) queryLiteralKeyed(dst *Result, query string, args []any, opts plan.Options, level codegen.OptLevel) error {
	key, err := codegen.CacheKey(query, opts, level)
	if err != nil {
		return err
	}
	sc := queryScratchPool.Get().(*queryScratch)
	sc.key = append(sc.key[:0], key...)
	_, err = db.queryCached(dst, query, sc, nil, false, args, level)
	queryScratchPool.Put(sc)
	return err
}

// queryCached is the plan-cache execution path: look up the compiled
// query under sc.key, validate it against the catalogue stamp under the
// table reader locks, and run it with the bind vector assembled from
// lifted literals and caller args. On a miss it plans the statement once
// (stmt, or the shape rendered in sc when stmt is empty) and populates
// the cache before executing.
//
// prepFailed reports whether the error (if any) arose while preparing
// the statement — planning, binding a lifted literal, code generation —
// as opposed to a caller-value BindError or an execution failure; only
// preparation failures are candidates for the literal-specialized
// fallback, since re-planning cannot change the other two.
func (db *DB) queryCached(dst *Result, stmt string, sc *queryScratch, lits []sql.LiftedLit, auto bool, args []any, level codegen.OptLevel) (prepFailed bool, err error) {
	fail := func(err error) (bool, error) {
		var bindErr *BindError
		return !errors.As(err, &bindErr), err
	}
	// Hit path: validate the stored catalogue stamp (epoch + referenced
	// tables' versions) under the table reader locks; retry on a race
	// with a concurrent writer (its stats refresh bumps the table
	// version, so the stored stamp no longer matches).
	for attempt := 0; attempt < 4; attempt++ {
		db.refreshStats()
		cached, stored, ok := db.cache.GetStamped(sc.key)
		if !ok {
			break
		}
		ent, ok := cached.(*cachedQuery)
		if !ok {
			// Read keys and write keys occupy distinct spaces, so a
			// foreign entry type here cannot happen; bail to the miss
			// path defensively.
			break
		}
		cq := ent.cq
		p := cq.Plan
		if len(p.Tables) <= 2 {
			// One- and two-table fast path (point lookups and the fused
			// join shapes): lock the plan's entries directly in table-ID
			// order — no name slice, no lock-ordering bookkeeping — and
			// validate the stored stamp against the per-table version sum
			// under the locks. Two aliases of the same table share one
			// entry, which is locked once (a recursive RLock could
			// deadlock against a queued writer).
			e0 := p.Tables[0].Entry
			var e1 *catalog.TableEntry
			if len(p.Tables) == 2 && p.Tables[1].Entry != e0 {
				e1 = p.Tables[1].Entry
				if e1.ID() < e0.ID() {
					e0, e1 = e1, e0
				}
			}
			lockStart := time.Now()
			e0.RLock()
			if e1 != nil {
				e1.RLock()
			}
			db.met.lockWait.Observe(time.Since(lockStart))
			runlock := func() {
				if e1 != nil {
					e1.RUnlock()
				}
				e0.RUnlock()
			}
			if db.planStale(p) || db.stampForPlan(p) != stored {
				runlock()
				db.cache.Invalidate(string(sc.key))
				continue
			}
			params, err := bindValuesInto(sc.params[:0], p.Params, lits, auto, args)
			sc.params = params
			if err != nil {
				runlock()
				return fail(err)
			}
			err = db.runCompiled(dst, cq, params)
			runlock()
			if err == nil {
				ent.lat[tempWarm].Observe(dst.Elapsed)
			}
			return false, err
		}
		names := planTables(p)
		lockStart := time.Now()
		unlock := db.rlockTables(names)
		db.met.lockWait.Observe(time.Since(lockStart))
		if db.anyStale(names) || db.cat.StampFor(names) != stored {
			// A writer slipped in after the lookup: the entry is
			// stale, so reclassify the premature hit and retry.
			unlock()
			db.cache.Invalidate(string(sc.key))
			continue
		}
		params, err := bindValuesInto(sc.params[:0], p.Params, lits, auto, args)
		sc.params = params
		if err != nil {
			unlock()
			return fail(err)
		}
		err = db.runCompiled(dst, cq, params)
		unlock()
		if err == nil {
			ent.lat[tempWarm].Observe(dst.Elapsed)
		}
		return false, err
	}
	// Miss: prepare once under the reader locks and populate the cache
	// before executing.
	if stmt == "" {
		stmt = string(sc.shape.Out)
	}
	p, unlock, err := db.planLocked(stmt)
	if err != nil {
		return fail(err)
	}
	params, err := bindValuesInto(nil, p.Params, lits, auto, args)
	if err != nil {
		unlock()
		return fail(err)
	}
	stamp := db.cat.StampFor(planTables(p))
	cq, err := codegen.Generate(p, level)
	if err != nil {
		unlock()
		return fail(err)
	}
	// The latency handles resolve here, once per compilation; warm hits
	// record through the cached pair without re-classifying the plan.
	ent := &cachedQuery{cq: cq, lat: db.met.latFor(p, cq.Fused)}
	db.cache.Put(string(sc.key), stamp, ent)
	err = db.runCompiled(dst, cq, params)
	unlock()
	if err == nil {
		ent.lat[tempCold].Observe(dst.Elapsed)
	}
	return false, err
}

// runCompiled times the execution, materialises into dst, and returns
// the result table's frames to the page arena. The caller holds the
// table reader locks across the call: materialisation may read tuples
// that alias base-table pages (identity-elided projections), so it must
// complete before the locks release.
func (db *DB) runCompiled(dst *Result, cq *codegen.CompiledQuery, params []types.Datum) (err error) {
	// Whole-body containment: a panic anywhere here — the engine run or
	// the materialisation tail — converts to a statement error inside
	// this frame, so the caller's lock-release paths always execute.
	defer containPanic(&err)
	start := time.Now()
	out, err := cq.RunParams(params)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	// Deferred so a contained materialisation panic still returns the
	// pooled frames to the arena (it runs before containPanic recovers).
	defer out.Release()
	ensureGrouplessRow(cq.Plan, out)
	materialiseInto(dst, cq.Plan.OutputNames, out, elapsed)
	return nil
}

// planStale reports pending statistics work for any of a plan's tables
// (anyStale without materialising a name slice, one mutex acquisition).
func (db *DB) planStale(p *plan.Plan) bool {
	db.staleMu.Lock()
	defer db.staleMu.Unlock()
	for i := range p.Tables {
		n := p.Tables[i].Name
		if db.stale[n] || db.refreshing[n] {
			return true
		}
	}
	return false
}

// stampForPlan is cat.StampFor over the plan's table list without
// materialising a name slice.
func (db *DB) stampForPlan(p *plan.Plan) uint64 {
	s := db.cat.Version()
	for i := range p.Tables {
		s += db.cat.TableVersion(p.Tables[i].Name)
	}
	return s
}

// finish times run, materialises the result into dst under the table
// locks (the result may alias base-table pages through an identity-
// elided projection), releases any arena-backed result frames, and then
// releases the locks — the shared tail of the uncached Query path and
// Prepared.Run.
func (db *DB) finish(dst *Result, p *plan.Plan, unlock func(), run func() (*storage.Table, error)) error {
	defer unlock()
	return db.finishLocked(dst, p, run)
}

// finishLocked is finish's contained body: a panic in the engine run or
// the materialisation converts to an error in this frame, before finish's
// deferred unlock runs — a contained panic never leaks a table lock.
func (db *DB) finishLocked(dst *Result, p *plan.Plan, run func() (*storage.Table, error)) (err error) {
	defer containPanic(&err)
	start := time.Now()
	out, err := run()
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	// Deferred for the same reason as in runCompiled: frames return to
	// the arena even when a materialisation panic is contained.
	defer out.Release()
	ensureGrouplessRow(p, out)
	materialiseInto(dst, p.OutputNames, out, elapsed)
	return nil
}

// ensureGrouplessRow appends the aggregate identity row when a
// group-less aggregate produced no groups: SQL requires exactly one row
// (COUNT of an empty input is 0) but the staged engines emit none. The
// engine has no NULLs, so SUM/MIN/MAX of an empty input report zero
// values.
func ensureGrouplessRow(p *plan.Plan, out *storage.Table) {
	if p.Agg == nil || len(p.Agg.GroupCols) != 0 || out.NumRows() != 0 {
		return
	}
	s := out.Schema()
	row := make([]types.Datum, s.NumColumns())
	for i := range row {
		switch c := s.Column(i); c.Kind {
		case types.Float:
			row[i] = types.FloatDatum(0)
		case types.String:
			row[i] = types.StringDatum("")
		default:
			row[i] = types.Datum{Kind: c.Kind}
		}
	}
	out.AppendRow(row...)
}

// Explain returns the optimizer's plan description.
func (db *DB) Explain(query string) (string, error) {
	p, unlock, err := db.planLocked(query)
	if err != nil {
		return "", err
	}
	defer unlock()
	return p.Explain(), nil
}

// GeneratedSource returns the query-specific source code the holistic code
// generator instantiates for the query (paper §V).
func (db *DB) GeneratedSource(query string) (string, error) {
	p, unlock, err := db.planLocked(query)
	if err != nil {
		return "", err
	}
	defer unlock()
	return codegen.EmitSource(p), nil
}

// Prepare generates and compiles a query without running it, returning
// preparation timings (paper Table III). The statement may contain '?'
// placeholders; Run binds one value per placeholder.
func (db *DB) Prepare(query string) (*Prepared, error) {
	pr := &Prepared{db: db, query: query}
	if err := pr.reprepare(); err != nil {
		return nil, err
	}
	return pr, nil
}

// Prepared is a generated, compiled query ready for repeated execution.
// It is not pinned to the catalogue state it was compiled against: Run
// re-validates the referenced tables' catalogue versions and transparently
// re-plans and re-compiles after inserts, DDL, or statistics refreshes,
// so a long-lived statement handle never executes a stale plan.
type Prepared struct {
	db    *DB
	query string

	// mu guards compiled, stamp, and lat across Run's transparent
	// re-prepares.
	mu       sync.Mutex
	compiled *codegen.CompiledQuery
	stamp    uint64
	// lat is the cold/warm latency pair for the compiled plan, resolved
	// at prepare time (see dbMetrics.latFor); Run records warm.
	lat *[nTemp]*obs.Histogram
}

// snapshot returns the current compiled artefact and its stamp.
func (p *Prepared) snapshot() (*codegen.CompiledQuery, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.compiled, p.stamp
}

// prepareLocked plans and compiles the statement and installs the new
// artefact together with the catalogue stamp it was built against. The
// table locks planLocked acquired are still held on success — the caller
// either releases them (reprepare) or executes under them (Run's
// starvation fallback).
func (p *Prepared) prepareLocked() (*plan.Plan, *codegen.CompiledQuery, func(), error) {
	pl, unlock, err := p.db.planLocked(p.query)
	if err != nil {
		return nil, nil, nil, err
	}
	stamp := p.db.cat.StampFor(planTables(pl))
	cq, err := codegen.Generate(pl, codegen.OptO2)
	if err != nil {
		unlock()
		return nil, nil, nil, err
	}
	p.mu.Lock()
	p.compiled, p.stamp = cq, stamp
	p.lat = p.db.met.latFor(pl, cq.Fused)
	p.mu.Unlock()
	return pl, cq, unlock, nil
}

// reprepare plans and compiles the statement under fresh table locks and
// installs the new artefact.
func (p *Prepared) reprepare() error {
	_, _, unlock, err := p.prepareLocked()
	if err == nil {
		unlock()
	}
	return err
}

// Source returns the generated source file.
func (p *Prepared) Source() string {
	cq, _ := p.snapshot()
	return cq.Source
}

// GenerateTime reports how long template instantiation took (for the most
// recent compilation).
func (p *Prepared) GenerateTime() time.Duration {
	cq, _ := p.snapshot()
	return cq.Prep.Generate
}

// CompileTime reports how long compilation (syntax check + closure
// construction) took (for the most recent compilation).
func (p *Prepared) CompileTime() time.Duration {
	cq, _ := p.snapshot()
	return cq.Prep.Compile
}

// Run executes the prepared query with the given parameter values (one
// per '?' placeholder). If the catalogue moved since compilation — DDL,
// inserts, index builds, statistics refresh — the statement is re-planned
// and re-compiled first, so results always reflect a plan consistent with
// the data the table locks pin.
func (p *Prepared) Run(args ...any) (*Result, error) {
	res := &Result{}
	if err := p.RunInto(res, args...); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is Run materialising into a caller-supplied result (see
// DB.QueryInto); a serving loop reusing one Result per worker executes a
// prepared statement with no per-call materialisation allocations.
func (p *Prepared) RunInto(res *Result, args ...any) (err error) {
	defer p.db.met.noteQuery(&err)
	res.Reset()
	// noteWarm records a successful run against the handle's latency
	// pair: warm, since preparation was paid at Prepare (or in a
	// transparent re-prepare, whose cost Run excludes anyway).
	noteWarm := func(err error) {
		if err == nil {
			p.mu.Lock()
			lat := p.lat
			p.mu.Unlock()
			lat[tempWarm].Observe(res.Elapsed)
		}
	}
	for attempt := 0; attempt < 4; attempt++ {
		cq, stamp := p.snapshot()
		p.db.refreshStats()
		names := planTables(cq.Plan)
		unlock := p.db.rlockTables(names)
		if p.db.anyStale(names) || p.db.cat.StampFor(names) != stamp {
			unlock()
			if err := p.reprepare(); err != nil {
				return err
			}
			continue
		}
		params, err := bindValuesInto(nil, cq.Plan.Params, nil, false, args)
		if err != nil {
			unlock()
			return err
		}
		err = p.db.runCompiled(res, cq, params)
		unlock()
		noteWarm(err)
		return err
	}
	// Sustained writer pressure kept invalidating the artefact between
	// re-prepare and re-lock: prepare and run inside one lock scope
	// (planLocked escalates to writer locks itself when starved).
	pl, cq, unlock, err := p.prepareLocked()
	if err != nil {
		return err
	}
	params, err := bindValuesInto(nil, pl.Params, nil, false, args)
	if err != nil {
		unlock()
		return err
	}
	err = p.db.runCompiled(res, cq, params)
	unlock()
	noteWarm(err)
	return err
}

// Tables lists the catalogued table names.
func (db *DB) Tables() []string { return db.cat.Names() }

// RowCount returns a table's cardinality.
func (db *DB) RowCount(table string) (int, error) {
	e, err := db.cat.Lookup(strings.ToLower(table))
	if err != nil {
		return 0, err
	}
	e.RLock()
	defer e.RUnlock()
	return e.Table.NumRows(), nil
}

// BuildIndex creates a fractal B+-tree index on an integer column.
func (db *DB) BuildIndex(table, column string) error {
	table, column = strings.ToLower(table), strings.ToLower(column)
	e, err := db.cat.Lookup(table)
	if err != nil {
		return err
	}
	lsn, err := db.buildIndexLocked(e, table, column)
	if err == nil && db.dur != nil {
		return db.dur.logCommit(lsn)
	}
	return err
}

// buildIndexLocked logs and builds the index under the entry's writer
// lock. The unlock defer is registered before containPanic so a panic
// inside the build (a malformed column, an overflowing key) becomes a
// statement error before the lock releases (hique-vet: containment).
func (db *DB) buildIndexLocked(e *catalog.TableEntry, table, column string) (lsn uint64, err error) {
	e.Lock()
	defer e.Unlock()
	defer containPanic(&err)
	if db.dur != nil {
		// Logged before the build so a crash between the two replays the
		// build (idempotent) rather than losing the index.
		if lsn, err = db.dur.logAppend(recBuildIndex, encodeBuildIndex(table, column)); err != nil {
			return 0, err
		}
	}
	_, err = db.cat.BuildIndex(table, column)
	return lsn, err
}

// TableInfo returns one table's row count and rendered "name kind"
// column list under a properly ordered reader lock. The serving layer
// owns entry locks; callers outside it (the HTTP server's /tables
// endpoint) must read through this API instead of locking entries
// directly (hique-vet: lockorder).
func (db *DB) TableInfo(name string) (rows int, columns []string, err error) {
	name = strings.ToLower(name)
	unlock, locked := db.lockTables([]string{name}, false)
	defer unlock()
	if !locked[name] {
		return 0, nil, fmt.Errorf("hique: unknown table %q", name)
	}
	e, err := db.cat.Lookup(name)
	if err != nil {
		return 0, nil, err
	}
	rows = e.Table.NumRows()
	s := e.Table.Schema()
	for i := 0; i < s.NumColumns(); i++ {
		c := s.Column(i)
		columns = append(columns, fmt.Sprintf("%s %s", c.Name, c.Kind))
	}
	return rows, columns, nil
}

// DBStats is a point-in-time snapshot of the database's serving state.
type DBStats struct {
	Tables         int             `json:"tables"`
	CatalogVersion uint64          `json:"catalog_version"`
	Engine         string          `json:"engine"`
	CacheEnabled   bool            `json:"cache_enabled"`
	AutoParam      bool            `json:"auto_param"`
	Cache          plancache.Stats `json:"cache"`
	// WriteCache tracks the DML descriptor cache (see DB.Exec).
	WriteCache plancache.Stats `json:"write_cache"`
	// Arena snapshots the page-arena balance (see storage.ArenaStats).
	Arena ArenaStats `json:"arena"`
	// Durability is nil for an in-memory DB (see WithDurability).
	Durability *DurabilityStats `json:"durability,omitempty"`
}

// ArenaStats is the page-arena balance: frames currently held by live
// pooled tables and the cumulative count returned for reuse.
type ArenaStats struct {
	PagesInUse    int64 `json:"pages_in_use"`
	PagesRecycled int64 `json:"pages_recycled"`
}

// Stats snapshots catalogue and plan-cache counters.
func (db *DB) Stats() DBStats {
	db.mu.RLock()
	autoParam := db.autoParam
	db.mu.RUnlock()
	s := DBStats{
		Tables:         len(db.cat.Names()),
		CatalogVersion: db.cat.Version(),
		Engine:         db.EngineName(),
		AutoParam:      autoParam,
	}
	if db.cache != nil {
		s.CacheEnabled = true
		s.Cache = db.cache.Stats()
	}
	if db.writeCache != nil {
		s.WriteCache = db.writeCache.Stats()
	}
	s.Arena.PagesInUse, s.Arena.PagesRecycled = storage.ArenaStats()
	s.Durability = db.durabilityStats()
	return s
}

// Catalog exposes the underlying catalogue for advanced embedding (the
// bench harness and the CLI tools use this).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }
