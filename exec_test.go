package hique

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func execDB(t *testing.T, options ...Option) *DB {
	t.Helper()
	db := Open(options...)
	if err := db.CreateTable("items", Int("id"), Float("price"), Char("label", 8)); err != nil {
		t.Fatal(err)
	}
	return db
}

func rowCount(t *testing.T, db *DB, table string) int {
	t.Helper()
	n, err := db.RowCount(table)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestExecInsertDeleteUpdate(t *testing.T) {
	db := execDB(t)

	res, err := db.Exec("INSERT INTO items VALUES (1, 10.0, 'a'), (2, 20.0, 'b'), (3, 30.0, 'c')")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 3 || rowCount(t, db, "items") != 3 {
		t.Fatalf("insert affected %d, table has %d", res.RowsAffected, rowCount(t, db, "items"))
	}

	res, err = db.Exec("UPDATE items SET price = ?, label = 'upd' WHERE id >= ?", 99.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("update affected %d, want 2", res.RowsAffected)
	}
	q, err := db.Query("SELECT label, price FROM items WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.Rows[0][0] != "upd" || q.Rows[0][1] != 99.5 {
		t.Fatalf("updated row = %v", q.Rows[0])
	}

	res, err = db.Exec("DELETE FROM items WHERE price = 99.5")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 || rowCount(t, db, "items") != 1 {
		t.Fatalf("delete affected %d, table has %d", res.RowsAffected, rowCount(t, db, "items"))
	}

	// Unconditional forms.
	if res, err = db.Exec("UPDATE items SET price = 0.0"); err != nil || res.RowsAffected != 1 {
		t.Fatalf("bare update: %v / %+v", err, res)
	}
	if res, err = db.Exec("DELETE FROM items"); err != nil || res.RowsAffected != 1 {
		t.Fatalf("bare delete: %v / %+v", err, res)
	}
	if rowCount(t, db, "items") != 0 {
		t.Fatal("table not empty after DELETE FROM")
	}
}

func TestExecParameterizedInsertCached(t *testing.T) {
	db := execDB(t, WithPlanCache(64))
	const stmt = "INSERT INTO items VALUES (?, ?, ?)"
	for i := 0; i < 50; i++ {
		if _, err := db.Exec(stmt, i, float64(i), fmt.Sprintf("l%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats().WriteCache
	if st.Hits < 49 {
		t.Fatalf("write-plan cache hits = %d, want >= 49 (repeated INSERT must skip re-parsing)", st.Hits)
	}
	if rowCount(t, db, "items") != 50 {
		t.Fatalf("rows = %d", rowCount(t, db, "items"))
	}
	// Reads observe the writes (stats refresh + invalidation happen once
	// per statement, not per row).
	q, err := db.Query("SELECT COUNT(*) AS n FROM items WHERE id >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if q.Rows[0][0] != int64(50) {
		t.Fatalf("count = %v", q.Rows[0][0])
	}
}

func TestExecErrors(t *testing.T) {
	db := execDB(t)
	if _, err := db.Exec("SELECT id FROM items"); err == nil || !strings.Contains(err.Error(), "use Query") {
		t.Errorf("SELECT through Exec: %v", err)
	}
	if _, err := db.Exec("INSERT INTO missing VALUES (1)"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.Exec("INSERT INTO items VALUES (1, 2.0, 'x'"); err == nil {
		t.Error("syntax error accepted")
	}
	var bindErr *BindError
	if _, err := db.Exec("INSERT INTO items VALUES (?, ?, ?)", 1, 2.0); !errors.As(err, &bindErr) {
		t.Errorf("arity mismatch: %v, want BindError", err)
	}
	if _, err := db.Exec("DELETE FROM items WHERE id = ?", "nope"); !errors.As(err, &bindErr) {
		t.Errorf("uncoercible param: %v, want BindError", err)
	}
}

func TestOversizedStringsRejected(t *testing.T) {
	db := execDB(t) // label is Char(8)
	long := strings.Repeat("x", 9)

	var w *WidthError
	// Go API.
	if err := db.Insert("items", 1, 1.0, long); !errors.As(err, &w) {
		t.Fatalf("Insert: %v, want WidthError", err)
	}
	if w.Column != "label" || w.Width != 8 || w.Len != 9 {
		t.Errorf("WidthError = %+v", w)
	}
	// SQL literal.
	if _, err := db.Exec("INSERT INTO items VALUES (1, 1.0, 'xxxxxxxxx')"); !errors.As(err, &w) {
		t.Errorf("SQL literal insert: %v, want WidthError", err)
	}
	// SQL bind parameter: the supplied value is at fault, so it reports
	// as a BindError (the wire layer's 400 class) mentioning the width.
	var bindErr *BindError
	if _, err := db.Exec("INSERT INTO items VALUES (?, ?, ?)", 1, 1.0, long); !errors.As(err, &bindErr) {
		t.Errorf("SQL param insert: %v, want BindError", err)
	} else if !strings.Contains(err.Error(), "CHAR(8)") {
		t.Errorf("bind width error %q does not mention CHAR(8)", err)
	}
	// UPDATE SET, both forms.
	if err := db.Insert("items", 1, 1.0, "ok"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE items SET label = 'xxxxxxxxx'"); !errors.As(err, &w) {
		t.Errorf("SQL literal update: %v, want WidthError", err)
	}
	if _, err := db.Exec("UPDATE items SET label = ?", long); !errors.As(err, &bindErr) {
		t.Errorf("SQL param update: %v, want BindError", err)
	}
	// A multi-row statement with one bad row applies nothing.
	if _, err := db.Exec("INSERT INTO items VALUES (2, 2.0, 'fine'), (3, 3.0, 'xxxxxxxxx')"); err == nil {
		t.Fatal("oversized row accepted")
	}
	if n := rowCount(t, db, "items"); n != 1 {
		t.Fatalf("rows = %d, want 1 (failed statement must apply atomically)", n)
	}
	// An exactly-width string is stored untruncated and matches.
	if err := db.Insert("items", 4, 4.0, "eightchr"); err != nil {
		t.Fatal(err)
	}
	q, err := db.Query("SELECT id FROM items WHERE label = 'eightchr'")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 {
		t.Fatalf("exact-width match rows = %d", len(q.Rows))
	}
}

// TestOversizedStringComparisons pins that a comparison value wider than
// the CHAR(n) column is legal and evaluates identically on every engine:
// equality never matches (values are stored untruncated, so nothing can
// equal a wider string — the core and fused comparators used to truncate
// the comparand and falsely match), and range predicates order the
// stored prefix strictly below the wider value. Width checks apply to
// stored values only, so DELETE/UPDATE filters accept wide comparands
// too.
func TestOversizedStringComparisons(t *testing.T) {
	engines := []Engine{Holistic, GenericIterators, OptimizedIterators, ColumnStore, HolisticUnoptimized}
	for _, eng := range engines {
		t.Run(eng.String(), func(t *testing.T) {
			db := execDB(t, WithEngine(eng)) // label is Char(8)
			for i, label := range []string{"aaaa", "zzzzzzzz", "mmmm"} {
				if err := db.Insert("items", i, float64(i), label); err != nil {
					t.Fatal(err)
				}
			}
			count := func(q string, args ...any) int {
				t.Helper()
				r, err := db.Query(q, args...)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				return len(r.Rows)
			}
			if n := count("SELECT id FROM items WHERE label = 'zzzzzzzzz'"); n != 0 {
				t.Errorf("equality with 9-byte literal matched %d rows, want 0", n)
			}
			if n := count("SELECT id FROM items WHERE label = ?", "zzzzzzzzz"); n != 0 {
				t.Errorf("equality with 9-byte param matched %d rows, want 0", n)
			}
			if n := count("SELECT id FROM items WHERE label < 'zzzzzzzzz'"); n != 3 {
				t.Errorf("range with 9-byte literal matched %d rows, want 3 (stored prefix sorts below)", n)
			}
			if n := count("SELECT id FROM items WHERE label <> ?", "zzzzzzzzz"); n != 3 {
				t.Errorf("inequality with 9-byte param matched %d rows, want 3", n)
			}
			// DML filters accept wide comparands too (they are reads).
			res, err := db.Exec("DELETE FROM items WHERE label = ?", "zzzzzzzzz")
			if err != nil || res.RowsAffected != 0 {
				t.Errorf("delete with wide equality: %v / %+v", err, res)
			}
			res, err = db.Exec("DELETE FROM items WHERE label < ?", "aaaazzzzz")
			if err != nil || res.RowsAffected != 1 {
				t.Errorf("delete with wide range: %v / %+v (want the 'aaaa' row only)", err, res)
			}
		})
	}
}

// TestCoercionUnified pins that the Go-API Insert accepts exactly what
// query bind parameters accept: int into Float, date strings and
// integral floats into Date, int64 into Int.
func TestCoercionUnified(t *testing.T) {
	db := Open()
	if err := db.CreateTable("ev", Int("id"), Float("score"), Date("day")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("ev", 1, 5, "2024-03-01"); err != nil {
		t.Fatalf("Insert with int-for-Float and string-for-Date: %v", err)
	}
	if err := db.Insert("ev", 2.0, 6.5, 19790.0); err != nil {
		t.Fatalf("Insert with integral floats: %v", err)
	}
	// The same values bind on the query side and match what was stored.
	q, err := db.Query("SELECT id FROM ev WHERE day = ?", "2024-03-01")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 || q.Rows[0][0] != int64(1) {
		t.Fatalf("date round trip rows = %v", q.Rows)
	}
	q, err = db.Query("SELECT id FROM ev WHERE score = ?", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 {
		t.Fatalf("int-for-float round trip rows = %v", q.Rows)
	}
	// Still rejected: non-integral floats and wrong types.
	if err := db.Insert("ev", 1.5, 1.0, 1); err == nil {
		t.Error("non-integral float accepted for Int")
	}
	if err := db.Insert("ev", "x", 1.0, 1); err == nil {
		t.Error("string accepted for Int")
	}
}

// TestDMLMaintainsIndexes pins that index probes observe DML: previously
// an insert after BuildIndex was invisible to index scans (the tree was
// never updated), so a point query through the index missed fresh rows.
func TestDMLMaintainsIndexes(t *testing.T) {
	db := execDB(t)
	for i := 0; i < 100; i++ {
		if err := db.Insert("items", i, float64(i), fmt.Sprintf("l%02d", i%50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndex("items", "id"); err != nil {
		t.Fatal(err)
	}
	point := func(id int) int {
		t.Helper()
		q, err := db.Query(fmt.Sprintf("SELECT price FROM items WHERE id = %d", id))
		if err != nil {
			t.Fatal(err)
		}
		return len(q.Rows)
	}

	// Insert after index build: visible through the index probe.
	if _, err := db.Exec("INSERT INTO items VALUES (500, 500.0, 'new')"); err != nil {
		t.Fatal(err)
	}
	if n := point(500); n != 1 {
		t.Fatalf("fresh row via index probe: %d rows, want 1", n)
	}
	if err := db.Insert("items", 501, 501.0, "new2"); err != nil {
		t.Fatal(err)
	}
	if n := point(501); n != 1 {
		t.Fatalf("Go-API fresh row via index probe: %d rows, want 1", n)
	}

	// Delete compacts rows: the rebuilt index must not resurrect them nor
	// mis-address survivors.
	if _, err := db.Exec("DELETE FROM items WHERE id < 50"); err != nil {
		t.Fatal(err)
	}
	if n := point(10); n != 0 {
		t.Fatalf("deleted row still found: %d rows", n)
	}
	if n := point(99); n != 1 {
		t.Fatalf("survivor lost after delete: %d rows", n)
	}

	// Updating the indexed key re-keys the tree.
	if _, err := db.Exec("UPDATE items SET id = ? WHERE id = ?", 777, 99); err != nil {
		t.Fatal(err)
	}
	if n := point(777); n != 1 {
		t.Fatalf("re-keyed row not found: %d rows", n)
	}
	if n := point(99); n != 0 {
		t.Fatalf("old key still found: %d rows", n)
	}
}

// TestEnginePanicContained pins the crash-proofing: a statement that
// drives an engine into a panic (the column-store engine's aggregation
// path rejects Float grouping) reports a statement error, and the same DB
// keeps answering.
func TestEnginePanicContained(t *testing.T) {
	db := execDB(t, WithEngine(ColumnStore))
	for i := 0; i < 10; i++ {
		if err := db.Insert("items", i, float64(i)+0.5, "x"); err != nil {
			t.Fatal(err)
		}
	}
	_, err := db.Query("SELECT price, COUNT(*) FROM items GROUP BY price")
	if err == nil {
		t.Fatal("panic-triggering statement succeeded; pick another trigger")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want PanicError", err, err)
	}
	// The process — and this DB, including writers — keeps working.
	q, err := db.Query("SELECT id FROM items WHERE id = 3")
	if err != nil || len(q.Rows) != 1 {
		t.Fatalf("follow-up query: %v / %d rows", err, len(q.Rows))
	}
	if _, err := db.Exec("INSERT INTO items VALUES (100, 1.0, 'y')"); err != nil {
		t.Fatalf("follow-up insert: %v", err)
	}
}

func TestPreparedExec(t *testing.T) {
	db := execDB(t)
	ins, err := db.PrepareExec("INSERT INTO items VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := ins.Run(i, float64(i), "p"); err != nil {
			t.Fatal(err)
		}
	}
	if rowCount(t, db, "items") != 20 {
		t.Fatalf("rows = %d", rowCount(t, db, "items"))
	}
	del, err := db.PrepareExec("DELETE FROM items WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := del.Run(7)
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("prepared delete: %v / %+v", err, res)
	}
}

// TestBatchedInsertSemantics pins that one multi-VALUES statement equals
// N single inserts observably (row count, queryability) while paying the
// per-statement costs once — the catalogue version moves by a bounded
// number of bumps per statement, not per row.
func TestBatchedInsertSemantics(t *testing.T) {
	db := execDB(t, WithPlanCache(64))
	var sb strings.Builder
	sb.WriteString("INSERT INTO items VALUES ")
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %g, 'r%03d')", i, float64(i)*0.5, i%1000)
	}
	res, err := db.Exec(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1000 || rowCount(t, db, "items") != 1000 {
		t.Fatalf("batch insert: %+v, rows %d", res, rowCount(t, db, "items"))
	}
	before := db.cat.TableVersion("items")
	if _, err := db.Exec("INSERT INTO items VALUES (2000, 1.0, 'a'), (2001, 2.0, 'b')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT COUNT(*) FROM items"); err != nil {
		t.Fatal(err)
	}
	after := db.cat.TableVersion("items")
	if after-before > 1 {
		t.Fatalf("table version moved %d times for one 2-row statement, want <= 1 (one stats invalidation per statement)", after-before)
	}
}
