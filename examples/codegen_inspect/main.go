// Codegen inspection: shows the query-specific source HIQUE instantiates
// for progressively more complex queries — the scan-select template of
// Listing 1, the nested-loops join template of Listing 2, join teams, and
// map aggregation with the Figure 4 offset formula.
package main

import (
	"fmt"
	"log"

	"hique"
)

func main() {
	db := hique.Open()
	must(db.CreateTable("events",
		hique.Int("eid"), hique.Int("kind"), hique.Float("score"), hique.Date("day")))
	must(db.CreateTable("kinds",
		hique.Int("kid"), hique.Char("label", 12)))
	must(db.CreateTable("owners",
		hique.Int("oid"), hique.Int("ev"), hique.Char("who", 8)))

	for i := 0; i < 500; i++ {
		must(db.Insert("events", i, i%8, float64(i)/3, int64(19500+i%30)))
	}
	for i := 0; i < 8; i++ {
		must(db.Insert("kinds", i, fmt.Sprintf("kind-%d", i)))
	}
	for i := 0; i < 200; i++ {
		must(db.Insert("owners", i, i%8, fmt.Sprintf("u%d", i%5)))
	}

	queries := []struct {
		title string
		sql   string
	}{
		{"1. Scan-select-project (Listing 1 shape)",
			"SELECT eid, score FROM events WHERE kind = 3 AND score > 10.0"},
		{"2. Binary join (Listing 2 nested-loops template)",
			"SELECT eid, label FROM events, kinds WHERE events.kind = kinds.kid"},
		{"3. Join team: three tables on one key class (deeper loop nesting)",
			"SELECT eid, label, who FROM events, kinds, owners WHERE events.kind = kinds.kid AND kinds.kid = owners.ev"},
		{"4. Map aggregation (value directories + Fig. 4 offset formula)",
			"SELECT kind, COUNT(*) AS n, SUM(score) AS total FROM events GROUP BY kind ORDER BY kind"},
	}

	for _, q := range queries {
		fmt.Println("================================================================")
		fmt.Println(q.title)
		fmt.Println("  ", q.sql)
		fmt.Println("================================================================")
		plan, err := db.Explain(q.sql)
		must(err)
		fmt.Println(plan)
		src, err := db.GeneratedSource(q.sql)
		must(err)
		fmt.Println(src)

		// Every query also actually runs:
		res, err := db.Query(q.sql)
		must(err)
		fmt.Printf(">>> returns %d rows in %s\n\n", len(res.Rows), res.Elapsed)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
