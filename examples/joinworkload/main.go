// Join-team example: the Figure 7(b) scenario. A fact table is joined with
// a growing number of dimension tables on one shared key; HIQUE's join
// teams evaluate all of them in a single nested-loops segment with no
// intermediate materialisation, while binary plans materialise after every
// join.
package main

import (
	"flag"
	"fmt"
	"time"

	"hique/internal/catalog"
	"hique/internal/core"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

func buildTable(name, prefix string, rows, distinct int) *storage.Table {
	t := storage.NewTable(name, types.NewSchema(
		types.Col(prefix+"key", types.Int),
		types.Col(prefix+"val", types.Int)))
	for i := 0; i < rows; i++ {
		t.AppendRow(types.IntDatum(int64(i%distinct)), types.IntDatum(int64(i)))
	}
	return t
}

func main() {
	factRows := flag.Int("fact", 200000, "fact table rows")
	dimRows := flag.Int("dim", 20000, "rows per dimension table")
	maxDims := flag.Int("dims", 6, "maximum number of dimension tables")
	flag.Parse()

	fmt.Printf("%-6s %14s %14s %9s\n", "tables", "binary merge", "team merge", "speedup")
	for k := 2; k <= *maxDims+1; k++ {
		cat := catalog.New()
		cat.Register(buildTable("fact", "f", *factRows, *dimRows))
		query := "SELECT fval FROM fact"
		where := ""
		for j := 1; j < k; j++ {
			prefix := fmt.Sprintf("d%d", j)
			cat.Register(buildTable(fmt.Sprintf("dim%d", j), prefix, *dimRows, *dimRows))
			query += fmt.Sprintf(", dim%d", j)
			if j == 1 {
				where = " WHERE fact.fkey = dim1.d1key"
			} else {
				where += fmt.Sprintf(" AND dim%d.d%dkey = dim%d.d%dkey", j-1, j-1, j, j)
			}
		}
		query += where

		run := func(teams bool) time.Duration {
			opts := plan.DefaultOptions()
			alg := plan.MergeJoin
			opts.ForceJoinAlg = &alg
			opts.EnableJoinTeams = teams
			stmt, err := sql.Parse(query)
			if err != nil {
				panic(err)
			}
			p, err := plan.BuildWithOptions(stmt, cat, opts)
			if err != nil {
				panic(err)
			}
			start := time.Now()
			if _, err := core.NewEngine().Execute(p); err != nil {
				panic(err)
			}
			return time.Since(start)
		}

		binary := run(false)
		team := run(true)
		fmt.Printf("%-6d %13.3fs %13.3fs %8.2fx\n",
			k, binary.Seconds(), team.Seconds(), binary.Seconds()/team.Seconds())
	}
	fmt.Println("\nThe team plan is one deeply nested loop over all inputs (paper §V-B);")
	fmt.Println("the binary plan materialises an intermediate table after every join.")
}
