// TPC-H example: generate the benchmark dataset, run the paper's three
// queries (1, 3, 10) on all four engine design points, and print the
// comparison the paper reports in Figure 8.
package main

import (
	"flag"
	"fmt"

	"hique/internal/core"
	"hique/internal/dsm"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/tpch"
	"hique/internal/volcano"
	"time"
)

type engine interface {
	Name() string
	Execute(p *plan.Plan) (*storage.Table, error)
}

func main() {
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor")
	flag.Parse()

	fmt.Printf("generating TPC-H at SF %.2f...\n", *sf)
	start := time.Now()
	cat := tpch.Generate(tpch.Config{ScaleFactor: *sf, Seed: 42})
	li, _ := cat.Lookup("lineitem")
	fmt.Printf("done in %s (%d lineitems)\n\n", time.Since(start).Round(time.Millisecond), li.Table.NumRows())

	engines := []engine{
		volcano.NewGeneric(),
		volcano.NewOptimized(),
		dsm.NewEngine(),
		core.NewEngine(),
	}

	fmt.Printf("%-22s %10s %10s %10s\n", "engine", "Q1", "Q3", "Q10")
	for _, e := range engines {
		fmt.Printf("%-22s", e.Name())
		for _, n := range tpch.QueryNumbers() {
			q, _ := tpch.Query(n)
			stmt, err := sql.Parse(q)
			if err != nil {
				panic(err)
			}
			p, err := plan.Build(stmt, cat)
			if err != nil {
				panic(err)
			}
			st := time.Now()
			if _, err := e.Execute(p); err != nil {
				panic(err)
			}
			fmt.Printf(" %9.3fs", time.Since(st).Seconds())
		}
		fmt.Println()
	}

	// Show Q1's answer from the holistic engine.
	q, _ := tpch.Query(1)
	stmt, _ := sql.Parse(q)
	p, _ := plan.Build(stmt, cat)
	out, err := core.NewEngine().Execute(p)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nTPC-H Q1 result (holistic engine):")
	s := out.Schema()
	fmt.Println("flag status      sum_qty   count")
	out.Scan(func(t []byte) bool {
		fmt.Printf("%4s %6s %12.0f %7d\n",
			s.GetDatum(t, 0).S, s.GetDatum(t, 1).S, s.GetDatum(t, 2).F,
			s.GetDatum(t, 9).I)
		return true
	})
}
