// Quickstart: create tables through the public API, load rows, and run
// filtered, joined, and aggregated queries on the holistic engine.
package main

import (
	"fmt"
	"log"

	"hique"
)

func main() {
	db := hique.Open()

	// A small order-processing schema.
	must(db.CreateTable("customers",
		hique.Int("cust_id"), hique.Char("cust_name", 16), hique.Char("segment", 10)))
	must(db.CreateTable("purchases",
		hique.Int("purchase_id"), hique.Int("customer"), hique.Float("amount"), hique.Date("day")))

	segments := []string{"RETAIL", "WHOLESALE", "ONLINE"}
	for i := 0; i < 100; i++ {
		must(db.Insert("customers", i, fmt.Sprintf("Customer#%03d", i), segments[i%3]))
	}
	for i := 0; i < 5000; i++ {
		must(db.Insert("purchases", i, i%100, float64(10+i%490), int64(19000+i%365)))
	}

	// 1. Selection + projection.
	res, err := db.Query("SELECT purchase_id, amount FROM purchases WHERE amount > 450.0 ORDER BY amount DESC LIMIT 5")
	must(err)
	fmt.Println("Top purchases over 450:")
	for _, row := range res.Rows {
		fmt.Printf("  #%v  %.2f\n", row[0], row[1])
	}

	// 2. Join + aggregation: revenue per segment.
	res, err = db.Query(`SELECT segment, SUM(amount) AS revenue, COUNT(*) AS n
	                     FROM purchases, customers
	                     WHERE purchases.customer = customers.cust_id
	                     GROUP BY segment ORDER BY revenue DESC`)
	must(err)
	fmt.Println("\nRevenue by segment:")
	for _, row := range res.Rows {
		fmt.Printf("  %-10v %10.2f over %v purchases\n", row[0], row[1], row[2])
	}
	fmt.Printf("\nexecuted on %s in %s\n", db.EngineName(), res.Elapsed.Round(1000))

	// 3. Peek at what the code generator produced for the join query.
	src, err := db.GeneratedSource("SELECT segment, SUM(amount) AS revenue FROM purchases, customers WHERE purchases.customer = customers.cust_id GROUP BY segment")
	must(err)
	fmt.Printf("\ngenerated source: %d bytes (run examples/codegen_inspect to see it)\n", len(src))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
