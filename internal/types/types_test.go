package types

import (
	"testing"
	"testing/quick"
)

func TestSchemaLayout(t *testing.T) {
	s := NewSchema(Col("a", Int), Col("b", Float), CharCol("c", 10), Col("d", Date))
	if got, want := s.TupleSize(), 8+8+10+8; got != want {
		t.Fatalf("TupleSize = %d, want %d", got, want)
	}
	wantOffsets := []int{0, 8, 16, 26}
	for i, w := range wantOffsets {
		if got := s.Offset(i); got != w {
			t.Errorf("Offset(%d) = %d, want %d", i, got, w)
		}
	}
	if s.ColumnIndex("c") != 2 {
		t.Errorf("ColumnIndex(c) = %d, want 2", s.ColumnIndex("c"))
	}
	if s.ColumnIndex("missing") != -1 {
		t.Errorf("ColumnIndex(missing) should be -1")
	}
}

func TestSchemaProject(t *testing.T) {
	s := NewSchema(Col("a", Int), Col("b", Float), CharCol("c", 4))
	p := s.Project(2, 0)
	if p.NumColumns() != 2 {
		t.Fatalf("projected NumColumns = %d, want 2", p.NumColumns())
	}
	if p.Column(0).Name != "c" || p.Column(1).Name != "a" {
		t.Errorf("projection order wrong: %v", p.Columns())
	}
	if p.TupleSize() != 12 {
		t.Errorf("projected TupleSize = %d, want 12", p.TupleSize())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := NewSchema(Col("i", Int), Col("f", Float), CharCol("s", 8), Col("d", Date))
	row := []Datum{IntDatum(-42), FloatDatum(3.5), StringDatum("hello"), DateDatum(19000)}
	tuple := s.EncodeRow(row...)
	got := s.DecodeRow(tuple)
	for i := range row {
		if !Equal(row[i], got[i]) {
			t.Errorf("col %d: got %v, want %v", i, got[i], row[i])
		}
	}
}

func TestStringTruncationAndPadding(t *testing.T) {
	s := NewSchema(CharCol("s", 4))
	tuple := s.EncodeRow(StringDatum("abcdefgh"))
	if got := s.GetDatum(tuple, 0).S; got != "abcd" {
		t.Errorf("truncated string = %q, want %q", got, "abcd")
	}
	tuple = s.EncodeRow(StringDatum("x"))
	if got := s.GetDatum(tuple, 0).S; got != "x" {
		t.Errorf("padded string = %q, want %q", got, "x")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{IntDatum(1), IntDatum(2), -1},
		{IntDatum(2), IntDatum(2), 0},
		{IntDatum(3), IntDatum(2), 1},
		{FloatDatum(1.5), FloatDatum(2.5), -1},
		{FloatDatum(2.5), FloatDatum(2.5), 0},
		{StringDatum("a"), StringDatum("b"), -1},
		{StringDatum("b"), StringDatum("b"), 0},
		{DateDatum(10), DateDatum(5), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareTuples(t *testing.T) {
	s := NewSchema(Col("a", Int), Col("b", Int))
	t1 := s.EncodeRow(IntDatum(1), IntDatum(5))
	t2 := s.EncodeRow(IntDatum(1), IntDatum(7))
	if got := CompareTuples(t1, s, []int{0}, t2, s, []int{0}); got != 0 {
		t.Errorf("compare on a = %d, want 0", got)
	}
	if got := CompareTuples(t1, s, []int{0, 1}, t2, s, []int{0, 1}); got != -1 {
		t.Errorf("compare on (a,b) = %d, want -1", got)
	}
}

func TestIntRoundTripQuick(t *testing.T) {
	f := func(v int64, off uint8) bool {
		buf := make([]byte, 8+int(off))
		PutInt(buf, int(off%8), v)
		return GetInt(buf, int(off%8)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatRoundTripQuick(t *testing.T) {
	f := func(v float64) bool {
		buf := make([]byte, 8)
		PutFloat(buf, 0, v)
		got := GetFloat(buf, 0)
		return got == v || (got != got && v != v) // NaN-safe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDatumCompareAntisymmetryQuick(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(IntDatum(a), IntDatum(b)) == -Compare(IntDatum(b), IntDatum(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Int: "INT", Float: "FLOAT", Date: "DATE", String: "CHAR"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
