// Package types defines the value model of HIQUE: column kinds, schemas,
// fixed-length tuple layouts, and datum values used at the engine boundary.
//
// The storage layer follows the paper's N-ary Storage Model (NSM): every
// tuple of a table has the same fixed width, so a field access compiles down
// to base + offset arithmetic. The generic (iterator) engines box field
// values into Datum; the holistic engine reads primitives straight out of
// page bytes using the offsets recorded in Schema.
package types

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Kind enumerates the primitive column types supported by the engine.
type Kind uint8

const (
	// Int is a 64-bit signed integer.
	Int Kind = iota
	// Float is a 64-bit IEEE-754 float.
	Float
	// Date is a date stored as days since 1970-01-01 in an int64.
	Date
	// String is a fixed-width character column (CHAR(n)); values are
	// zero-padded to the declared width.
	String
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Date:
		return "DATE"
	case String:
		return "CHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// FixedSize reports the storage width of non-string kinds.
func (k Kind) FixedSize() int {
	switch k {
	case Int, Float, Date:
		return 8
	default:
		return 0
	}
}

// Column describes a single attribute of a schema.
type Column struct {
	Name string
	Kind Kind
	// Size is the byte width of the column inside a tuple. For Int,
	// Float and Date it is always 8; for String it is the declared
	// CHAR(n) width.
	Size int
}

// Col constructs a column of a fixed-size kind.
func Col(name string, kind Kind) Column {
	if kind == String {
		panic("types.Col: String columns need an explicit size; use CharCol")
	}
	return Column{Name: name, Kind: kind, Size: kind.FixedSize()}
}

// CharCol constructs a fixed-width string column.
func CharCol(name string, size int) Column {
	if size <= 0 {
		panic("types.CharCol: size must be positive")
	}
	return Column{Name: name, Kind: String, Size: size}
}

// Schema is an ordered list of columns plus the derived tuple layout.
// A Schema is immutable after construction.
type Schema struct {
	cols    []Column
	offsets []int
	width   int
	index   map[string]int
}

// NewSchema computes the tuple layout for the given columns.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{
		cols:    append([]Column(nil), cols...),
		offsets: make([]int, len(cols)),
		index:   make(map[string]int, len(cols)),
	}
	off := 0
	for i, c := range cols {
		if c.Size <= 0 {
			panic(fmt.Sprintf("types.NewSchema: column %q has non-positive size", c.Name))
		}
		s.offsets[i] = off
		off += c.Size
		if _, dup := s.index[c.Name]; dup {
			panic(fmt.Sprintf("types.NewSchema: duplicate column name %q", c.Name))
		}
		s.index[c.Name] = i
	}
	s.width = off
	return s
}

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column descriptor.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Offset returns the byte offset of column i inside a tuple.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// TupleSize returns the fixed tuple width in bytes.
func (s *Schema) TupleSize() int { return s.width }

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Project returns a new schema consisting of the given columns (by index),
// in order. Column names are preserved.
func (s *Schema) Project(idxs ...int) *Schema {
	cols := make([]Column, len(idxs))
	for i, idx := range idxs {
		cols[i] = s.cols[idx]
	}
	return NewSchema(cols...)
}

// String renders the schema as "(name KIND, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
		if c.Kind == String {
			fmt.Fprintf(&b, "(%d)", c.Size)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Datum is a boxed value used by the generic engines and at API boundaries.
// Exactly one of the value fields is meaningful, selected by Kind.
type Datum struct {
	Kind Kind
	I    int64   // Int and Date payload
	F    float64 // Float payload
	S    string  // String payload
}

// IntDatum boxes an integer.
func IntDatum(v int64) Datum { return Datum{Kind: Int, I: v} }

// FloatDatum boxes a float.
func FloatDatum(v float64) Datum { return Datum{Kind: Float, F: v} }

// DateDatum boxes a date (days since epoch).
func DateDatum(days int64) Datum { return Datum{Kind: Date, I: days} }

// StringDatum boxes a string.
func StringDatum(v string) Datum { return Datum{Kind: String, S: v} }

// Compare orders two datums of the same kind: -1, 0, or +1.
func Compare(a, b Datum) int {
	switch a.Kind {
	case Int, Date:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case Float:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case String:
		return strings.Compare(a.S, b.S)
	default:
		panic(fmt.Sprintf("types.Compare: bad kind %v", a.Kind))
	}
}

// Equal reports whether two datums of the same kind are equal.
func Equal(a, b Datum) bool { return Compare(a, b) == 0 }

// String renders the datum value.
func (d Datum) String() string {
	switch d.Kind {
	case Int:
		return fmt.Sprintf("%d", d.I)
	case Date:
		return fmt.Sprintf("date(%d)", d.I)
	case Float:
		return fmt.Sprintf("%g", d.F)
	case String:
		return d.S
	default:
		return "?"
	}
}

// --- Tuple encoding -------------------------------------------------------
//
// Tuples are raw byte slices of Schema.TupleSize() bytes. Numeric fields are
// little-endian; CHAR(n) fields are zero-padded.

// PutInt writes an int64 field at the given offset.
func PutInt(tuple []byte, offset int, v int64) {
	binary.LittleEndian.PutUint64(tuple[offset:offset+8], uint64(v))
}

// GetInt reads an int64 field at the given offset.
func GetInt(tuple []byte, offset int) int64 {
	return int64(binary.LittleEndian.Uint64(tuple[offset : offset+8]))
}

// PutFloat writes a float64 field at the given offset.
func PutFloat(tuple []byte, offset int, v float64) {
	binary.LittleEndian.PutUint64(tuple[offset:offset+8], math.Float64bits(v))
}

// GetFloat reads a float64 field at the given offset.
func GetFloat(tuple []byte, offset int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(tuple[offset : offset+8]))
}

// PutString writes a fixed-width string field, truncating or zero-padding
// to size bytes.
func PutString(tuple []byte, offset, size int, v string) {
	n := copy(tuple[offset:offset+size], v)
	for i := offset + n; i < offset+size; i++ {
		tuple[i] = 0
	}
}

// GetString reads a fixed-width string field, trimming trailing zero bytes.
func GetString(tuple []byte, offset, size int) string {
	b := tuple[offset : offset+size]
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return string(b[:end])
}

// GetDatum boxes column col of the tuple according to the schema.
func (s *Schema) GetDatum(tuple []byte, col int) Datum {
	c := s.cols[col]
	off := s.offsets[col]
	switch c.Kind {
	case Int:
		return IntDatum(GetInt(tuple, off))
	case Date:
		return DateDatum(GetInt(tuple, off))
	case Float:
		return FloatDatum(GetFloat(tuple, off))
	case String:
		return StringDatum(GetString(tuple, off, c.Size))
	default:
		panic("types: bad column kind")
	}
}

// PutDatum stores d into column col of the tuple.
func (s *Schema) PutDatum(tuple []byte, col int, d Datum) {
	c := s.cols[col]
	off := s.offsets[col]
	switch c.Kind {
	case Int, Date:
		PutInt(tuple, off, d.I)
	case Float:
		PutFloat(tuple, off, d.F)
	case String:
		PutString(tuple, off, c.Size, d.S)
	default:
		panic("types: bad column kind")
	}
}

// EncodeRow packs a row of datums into a fresh tuple buffer.
func (s *Schema) EncodeRow(row ...Datum) []byte {
	if len(row) != len(s.cols) {
		panic(fmt.Sprintf("types.EncodeRow: got %d values for %d columns", len(row), len(s.cols)))
	}
	t := make([]byte, s.width)
	for i, d := range row {
		s.PutDatum(t, i, d)
	}
	return t
}

// DecodeRow unpacks a tuple into boxed datums.
func (s *Schema) DecodeRow(tuple []byte) []Datum {
	row := make([]Datum, len(s.cols))
	for i := range s.cols {
		row[i] = s.GetDatum(tuple, i)
	}
	return row
}

// CompareTuples compares two tuples (possibly from different schemas) on the
// given column lists, which must be parallel and of matching kinds.
func CompareTuples(a []byte, sa *Schema, colsA []int, b []byte, sb *Schema, colsB []int) int {
	for i := range colsA {
		if c := Compare(sa.GetDatum(a, colsA[i]), sb.GetDatum(b, colsB[i])); c != 0 {
			return c
		}
	}
	return 0
}
