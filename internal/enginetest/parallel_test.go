// Differential tests for morsel-driven parallel fused execution: at
// every tested worker count the parallel pipelines must return results
// byte-identical to the serial engines — row order included, because
// deterministic morsel stitching is part of the contract, not a
// best-effort property.
package enginetest

import (
	"testing"

	"hique/internal/codegen"
	"hique/internal/core"
	"hique/internal/plan"
	"hique/internal/sql"
)

// parallelWorkerCounts spans the interesting shapes: forced serial, an
// even and an odd small team, and more workers than this machine (or
// the morsel count) can use.
var parallelWorkerCounts = []int{1, 2, 3, 8}

// lowThreshold forces parallel pipeline generation on the test-sized
// fixtures (the production threshold would keep them serial).
func lowThreshold(t *testing.T) {
	t.Helper()
	prev := codegen.SetParallelThreshold(1)
	t.Cleanup(func() { codegen.SetParallelThreshold(prev) })
}

// TestParallelCodegenAgreesWithAllEngines runs the full cross-engine
// corpus with parallel pipelines forced on, at every worker count: the
// parallel codegen engine must agree with every serial engine exactly
// as the serial codegen engine does.
func TestParallelCodegenAgreesWithAllEngines(t *testing.T) {
	lowThreshold(t)
	cat := fixture(13, 5000, 200, 800)
	for _, w := range parallelWorkerCounts {
		opts := plan.DefaultOptions()
		opts.Parallelism = w
		runCorpus(t, cat, opts)
	}
}

// TestParallelCodegenAgreesForcedAlgorithms pins the parallel join
// phase's two algorithm bodies (hybrid partition-merge and the
// fine-partition nested loop) plus the serial-only merge join fallback.
func TestParallelCodegenAgreesForcedAlgorithms(t *testing.T) {
	lowThreshold(t)
	for _, alg := range []plan.JoinAlgorithm{plan.MergeJoin, plan.HybridJoin, plan.FinePartitionJoin} {
		cat := fixture(17+int64(alg), 3000, 150, 500)
		for _, w := range parallelWorkerCounts {
			opts := plan.DefaultOptions()
			opts.Parallelism = w
			a := alg
			opts.ForceJoinAlg = &a
			runCorpus(t, cat, opts)
		}
	}
}

// TestParallelRowOrderMatchesSerial compares raw emission order (no
// multiset canonicalisation) between the serial fused pipeline and the
// parallel one at every worker count: deterministic morsel stitching
// means the bytes are identical even for queries without ORDER BY.
func TestParallelRowOrderMatchesSerial(t *testing.T) {
	lowThreshold(t)
	cat := fixture(14, 6000, 200, 800)
	eng := codegenEngine{level: codegen.OptO2}
	for _, q := range corpus {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		serialOpts := plan.DefaultOptions()
		serialOpts.Parallelism = 1
		sp, err := plan.BuildWithOptions(stmt, cat, serialOpts)
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		sout, err := eng.Execute(sp)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		ref := canonical(sout, true) // raw order: no sorting of rows
		for _, w := range parallelWorkerCounts[1:] {
			opts := plan.DefaultOptions()
			opts.Parallelism = w
			pp, err := plan.BuildWithOptions(stmt, cat, opts)
			if err != nil {
				t.Fatalf("plan %q workers=%d: %v", q, w, err)
			}
			out, err := eng.Execute(pp)
			if err != nil {
				t.Fatalf("parallel %q workers=%d: %v", q, w, err)
			}
			got := canonical(out, true)
			if len(got) != len(ref) {
				t.Errorf("%q workers=%d: %d rows, serial returned %d", q, w, len(got), len(ref))
				continue
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("%q workers=%d: row %d differs from serial:\n  serial:   %s\n  parallel: %s",
						q, w, i, ref[i], got[i])
					break
				}
			}
		}
	}
}

// TestCoreParallelEngineWorkerCounts cross-checks the interpreted
// parallel engine at the same worker counts against the serial core
// engine (multiset comparison — the interpreted engine's contract).
func TestCoreParallelEngineWorkerCounts(t *testing.T) {
	cat := fixture(15, 4000, 150, 500)
	serial := core.NewEngine()
	for _, q := range corpus {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		p, err := plan.BuildWithOptions(stmt, cat, plan.DefaultOptions())
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		ordered := p.Sort != nil
		sout, err := serial.Execute(p)
		if err != nil {
			t.Fatalf("core %q: %v", q, err)
		}
		ref := canonical(sout, ordered)
		for _, w := range parallelWorkerCounts {
			out, err := core.NewParallelEngine(w).Execute(p)
			if err != nil {
				t.Fatalf("core-parallel(%d) %q: %v", w, q, err)
			}
			got := canonical(out, ordered)
			if len(got) != len(ref) {
				t.Errorf("%q workers=%d: %d rows, core returned %d", q, w, len(got), len(ref))
				continue
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("%q workers=%d: row %d differs from core:\n  %s\n  %s",
						q, w, i, ref[i], got[i])
					break
				}
			}
		}
	}
}
