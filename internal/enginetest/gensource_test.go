package enginetest

import (
	"fmt"
	"go/token"
	"strings"
	"testing"

	"hique/internal/codegen"
	"hique/internal/lint/analysis"
	"hique/internal/lint/driver"
	"hique/internal/lint/genwf"
	"hique/internal/plan"
	"hique/internal/sql"
)

// planVariants is every planner configuration the differential suite
// exercises, so the emitted source is checked for each template the
// generator can instantiate (coarse/fine staging, nested/merge/hybrid
// join, sort/hybrid/map aggregation, join teams on and off).
func planVariants() []struct {
	name string
	opts plan.Options
} {
	with := func(mut func(*plan.Options)) plan.Options {
		o := plan.DefaultOptions()
		mut(&o)
		return o
	}
	merge, hybrid := plan.MergeJoin, plan.HybridJoin
	sortAgg, hybridAgg := plan.SortAggregation, plan.HybridAggregation
	return []struct {
		name string
		opts plan.Options
	}{
		{"default", plan.DefaultOptions()},
		{"merge-join", with(func(o *plan.Options) { o.ForceJoinAlg = &merge })},
		{"hybrid-join", with(func(o *plan.Options) { o.ForceJoinAlg = &hybrid })},
		{"sort-agg", with(func(o *plan.Options) { o.ForceAggAlg = &sortAgg })},
		{"hybrid-agg", with(func(o *plan.Options) { o.ForceAggAlg = &hybridAgg })},
		{"no-teams", with(func(o *plan.Options) { o.EnableJoinTeams = false })},
		{"parallel", with(func(o *plan.Options) { o.Parallelism = 3 })},
	}
}

// TestGeneratedSourcesTypeCheck runs go/types over codegen.EmitSource
// output for every corpus query under every planner variant, resolving
// the "hique/runtime" import against the real compiled ABI package, and
// then runs the genwf analyzer over each well-typed unit. Before this
// test the generated source was only ever syntax-checked; a template
// emitting ill-typed code surfaced at first execution, if at all.
func TestGeneratedSourcesTypeCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool for export data")
	}
	lookup, err := driver.ExportLookup("", "hique/runtime")
	if err != nil {
		t.Fatal(err)
	}
	cat := fixture(11, 300, 40, 60)
	checked := 0
	for _, v := range planVariants() {
		for _, q := range corpus {
			stmt, err := sql.Parse(q)
			if err != nil {
				t.Fatalf("parse %q: %v", q, err)
			}
			p, err := plan.BuildWithOptions(stmt, cat, v.opts)
			if err != nil {
				t.Fatalf("plan %q (%s): %v", q, v.name, err)
			}
			src := codegen.EmitSource(p)
			fset := token.NewFileSet()
			files, pkg, info, errs := driver.TypeCheckSource(
				fset, "hique/internal/codegen/query", "query_unit.go", src, lookup)
			if len(errs) > 0 {
				t.Errorf("%s: %q: generated source does not type-check:\n%s\n%s",
					v.name, q, formatErrs(errs), numbered(src))
				continue
			}
			diags := driver.RunAnalyzers(fset, files, pkg, info,
				[]*analysis.Analyzer{genwf.Analyzer})
			for _, d := range diags {
				t.Errorf("%s: %q: genwf: %s", v.name, q, d)
			}
			checked++
		}
	}
	t.Logf("type-checked %d generated units", checked)
}

func formatErrs(errs []error) string {
	var b strings.Builder
	for _, e := range errs {
		fmt.Fprintf(&b, "  %v\n", e)
	}
	return b.String()
}

// numbered renders the generated source with line numbers so a type
// error's position is readable in the failure output.
func numbered(src string) string {
	var b strings.Builder
	for i, line := range strings.Split(src, "\n") {
		fmt.Fprintf(&b, "%4d| %s\n", i+1, line)
	}
	return b.String()
}
