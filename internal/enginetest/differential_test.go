// Package enginetest cross-checks every query engine in the repository
// against every other on a shared query corpus: the correctness
// verification the paper calls out as a main engineering challenge of code
// generation (§V-C). All engines must return identical row multisets.
package enginetest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"hique/internal/catalog"
	"hique/internal/codegen"
	"hique/internal/core"
	"hique/internal/dsm"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
	"hique/internal/volcano"
)

// engine abstracts the executors under test.
type engine interface {
	Name() string
	Execute(p *plan.Plan) (*storage.Table, error)
}

// codegenEngine adapts a codegen optimisation level to the engine surface.
type codegenEngine struct {
	level codegen.OptLevel
}

func (c codegenEngine) Name() string { return "codegen" + c.level.String() }

func (c codegenEngine) Execute(p *plan.Plan) (*storage.Table, error) {
	q, err := codegen.Generate(p, c.level)
	if err != nil {
		return nil, err
	}
	return q.Run()
}

func engines() []engine {
	return []engine{
		core.NewEngine(),
		codegenEngine{level: codegen.OptO0},
		codegenEngine{level: codegen.OptO2},
		volcano.NewGeneric(),
		volcano.NewOptimized(),
		dsm.NewEngine(),
		core.NewParallelEngine(1),
		core.NewParallelEngine(2),
		core.NewParallelEngine(8),
	}
}

// fixture builds a three-table schema exercising every algorithm:
//
//	ev(id INT, k INT, grp INT, price FLOAT, tag CHAR(4), day DATE)
//	dm(k2 INT, bucket INT)
//	xt(k3 INT, weight FLOAT)
func fixture(seed int64, nEv, nDm, nXt int) *catalog.Catalog {
	cat := catalog.New()
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"aa", "bb", "cc", "dd"}

	ev := storage.NewTable("ev", types.NewSchema(
		types.Col("id", types.Int), types.Col("k", types.Int),
		types.Col("grp", types.Int), types.Col("price", types.Float),
		types.CharCol("tag", 4), types.Col("day", types.Date)))
	for i := 0; i < nEv; i++ {
		ev.AppendRow(
			types.IntDatum(int64(i)),
			types.IntDatum(int64(rng.Intn(nDm))),
			types.IntDatum(int64(rng.Intn(13))),
			types.FloatDatum(float64(rng.Intn(10000))/100),
			types.StringDatum(tags[rng.Intn(len(tags))]),
			types.DateDatum(int64(10000+rng.Intn(300))))
	}
	cat.Register(ev)

	dm := storage.NewTable("dm", types.NewSchema(
		types.Col("k2", types.Int), types.Col("bucket", types.Int)))
	for i := 0; i < nDm; i++ {
		dm.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i%11)))
	}
	cat.Register(dm)

	xt := storage.NewTable("xt", types.NewSchema(
		types.Col("k3", types.Int), types.Col("weight", types.Float)))
	for i := 0; i < nXt; i++ {
		xt.AppendRow(types.IntDatum(int64(rng.Intn(nDm))), types.FloatDatum(float64(i)))
	}
	cat.Register(xt)
	return cat
}

var corpus = []string{
	// Scan / select / project.
	"SELECT id, price FROM ev",
	"SELECT id FROM ev WHERE grp = 5",
	"SELECT id, price FROM ev WHERE price > 50.0 AND tag = 'aa'",
	"SELECT id, price * 2 AS p2, price * (1 + price) AS poly FROM ev WHERE day >= 10100",
	"SELECT id FROM ev WHERE tag <> 'bb' AND grp >= 4 AND grp <= 9",
	// Sorting and limits.
	"SELECT id, price FROM ev ORDER BY price DESC, id LIMIT 25",
	"SELECT id FROM ev WHERE grp = 3 ORDER BY id",
	// Aggregation on base tables.
	"SELECT grp, COUNT(*) AS n FROM ev GROUP BY grp ORDER BY grp",
	"SELECT tag, SUM(price) AS total, AVG(price) AS mean FROM ev GROUP BY tag ORDER BY tag",
	"SELECT grp, tag, COUNT(*) AS n, MIN(id), MAX(id) FROM ev GROUP BY grp, tag ORDER BY grp, tag",
	"SELECT tag, SUM(price * (1 - price)) AS adj FROM ev WHERE grp < 8 GROUP BY tag ORDER BY tag",
	// Integer SUM: map aggregation must widen int64 values before
	// accumulating into its float64 arrays.
	"SELECT grp, SUM(id) AS s FROM ev GROUP BY grp ORDER BY grp",
	// LIMIT over aggregation bounds groups emitted, not input rows.
	"SELECT grp, COUNT(*) AS n FROM ev GROUP BY grp ORDER BY grp LIMIT 4",
	"SELECT bucket, SUM(price) AS tot FROM ev, dm WHERE ev.k = dm.k2 GROUP BY bucket ORDER BY bucket LIMIT 3",
	// Joins.
	"SELECT id, bucket FROM ev, dm WHERE ev.k = dm.k2",
	"SELECT id, bucket FROM ev, dm WHERE ev.k = dm.k2 AND grp = 2 ORDER BY id",
	"SELECT bucket, COUNT(*) AS n, SUM(price) AS tot FROM ev, dm WHERE ev.k = dm.k2 GROUP BY bucket ORDER BY bucket",
	// Three-way join team on a shared key class.
	"SELECT id, bucket, weight FROM ev, dm, xt WHERE ev.k = dm.k2 AND dm.k2 = xt.k3 ORDER BY id, weight LIMIT 500",
	"SELECT bucket, SUM(weight) AS w FROM ev, dm, xt WHERE ev.k = dm.k2 AND dm.k2 = xt.k3 GROUP BY bucket ORDER BY w DESC",
	// N-way chain on distinct key classes (no join team possible): the
	// planner must order the binary joins off catalogue estimates.
	"SELECT id, weight FROM ev, dm, xt WHERE ev.k = dm.k2 AND xt.k3 = dm.bucket ORDER BY id, weight LIMIT 400",
	"SELECT bucket, COUNT(*) AS n FROM ev, dm, xt WHERE ev.k = dm.k2 AND xt.k3 = dm.bucket GROUP BY bucket ORDER BY bucket",
	// Explicit JOIN ... ON syntax desugars to the comma form.
	"SELECT id, bucket FROM ev JOIN dm ON ev.k = dm.k2 WHERE grp < 6 ORDER BY id",
	"SELECT id, bucket, weight FROM ev INNER JOIN dm ON ev.k = dm.k2 JOIN xt ON dm.k2 = xt.k3 ORDER BY id, weight LIMIT 200",
	// BETWEEN desugars into a pair of range predicates.
	"SELECT id FROM ev WHERE price BETWEEN 20.0 AND 30.0 ORDER BY id",
	"SELECT id FROM ev WHERE day BETWEEN 10050 AND 10100 AND grp BETWEEN 2 AND 5",
	// HAVING: post-aggregation filters resolved by alias or by the
	// rendered aggregate expression.
	"SELECT grp, COUNT(*) AS n FROM ev GROUP BY grp HAVING n > 300 ORDER BY grp",
	"SELECT tag, SUM(price) AS total FROM ev GROUP BY tag HAVING SUM(price) > 1000.0 ORDER BY total DESC",
	"SELECT grp, COUNT(*) AS n FROM ev GROUP BY grp HAVING n BETWEEN 100 AND 400 ORDER BY grp",
	"SELECT bucket, COUNT(*) AS n FROM ev, dm WHERE ev.k = dm.k2 GROUP BY bucket HAVING n >= 10 AND bucket < 9 ORDER BY bucket",
	// ORDER BY an aggregate expression rather than its alias.
	"SELECT tag, SUM(price) AS total FROM ev GROUP BY tag ORDER BY SUM(price) DESC",
	// Group-less aggregation behind range predicates (the Q6 shape).
	"SELECT SUM(price * price) AS s FROM ev WHERE day >= 10010 AND day < 10200 AND price BETWEEN 10.0 AND 70.0",
	// Integer arithmetic in projections.
	"SELECT id, grp + 1 AS g1, id - grp AS d FROM ev WHERE id < 500 ORDER BY id",
}

// canonical renders a result as a sorted multiset of row strings.
func canonical(t *storage.Table, ordered bool) []string {
	s := t.Schema()
	var rows []string
	t.Scan(func(tp []byte) bool {
		var parts []string
		for i := 0; i < s.NumColumns(); i++ {
			d := s.GetDatum(tp, i)
			if d.Kind == types.Float {
				parts = append(parts, fmt.Sprintf("%.6f", d.F))
			} else {
				parts = append(parts, d.String())
			}
		}
		rows = append(rows, strings.Join(parts, "|"))
		return true
	})
	if !ordered {
		sort.Strings(rows)
	}
	return rows
}

func runCorpus(t *testing.T, cat *catalog.Catalog, opts plan.Options) {
	t.Helper()
	for _, q := range corpus {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		p, err := plan.BuildWithOptions(stmt, cat, opts)
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		ordered := p.Sort != nil
		var ref []string
		var refName string
		for _, e := range engines() {
			out, err := e.Execute(p)
			if err != nil {
				t.Fatalf("%s: %q: %v", e.Name(), q, err)
			}
			got := canonical(out, ordered)
			if ref == nil {
				ref, refName = got, e.Name()
				continue
			}
			if len(got) != len(ref) {
				t.Errorf("%q: %s returned %d rows, %s returned %d",
					q, e.Name(), len(got), refName, len(ref))
				continue
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("%q: row %d differs between %s and %s:\n  %s\n  %s",
						q, i, refName, e.Name(), ref[i], got[i])
					break
				}
			}
		}
	}
}

func TestAllEnginesAgreeDefaultPlans(t *testing.T) {
	cat := fixture(7, 5000, 200, 800)
	runCorpus(t, cat, plan.DefaultOptions())
}

func TestAllEnginesAgreeForcedMerge(t *testing.T) {
	cat := fixture(8, 3000, 150, 500)
	opts := plan.DefaultOptions()
	alg := plan.MergeJoin
	opts.ForceJoinAlg = &alg
	runCorpus(t, cat, opts)
}

func TestAllEnginesAgreeForcedHybrid(t *testing.T) {
	cat := fixture(9, 3000, 150, 500)
	opts := plan.DefaultOptions()
	alg := plan.HybridJoin
	opts.ForceJoinAlg = &alg
	runCorpus(t, cat, opts)
}

func TestAllEnginesAgreeForcedAggAlgorithms(t *testing.T) {
	cat := fixture(10, 4000, 100, 200)
	for _, alg := range []plan.AggAlgorithm{plan.SortAggregation, plan.HybridAggregation} {
		opts := plan.DefaultOptions()
		opts.ForceAggAlg = &alg
		runCorpus(t, cat, opts)
	}
}

func TestAllEnginesAgreeNoTeams(t *testing.T) {
	cat := fixture(11, 3000, 120, 400)
	opts := plan.DefaultOptions()
	opts.EnableJoinTeams = false
	runCorpus(t, cat, opts)
}

func TestAllEnginesAgreeRandomisedQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised differential testing skipped in -short mode")
	}
	for seed := int64(20); seed < 26; seed++ {
		cat := fixture(seed, 1000+int(seed)*137, 50+int(seed), 100)
		runCorpus(t, cat, plan.DefaultOptions())
	}
}
