package dsm

import (
	"testing"

	"hique/internal/catalog"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

func fixture(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	f := storage.NewTable("facts", types.NewSchema(
		types.Col("fk", types.Int), types.Col("amount", types.Float), types.CharCol("cat", 4)))
	cats := []string{"x", "y", "z"}
	for i := 0; i < 1200; i++ {
		f.AppendRow(types.IntDatum(int64(i%40)), types.FloatDatum(float64(i)), types.StringDatum(cats[i%3]))
	}
	cat.Register(f)
	d := storage.NewTable("dims", types.NewSchema(
		types.Col("dk", types.Int), types.Col("w", types.Int)))
	for i := 0; i < 40; i++ {
		d.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i*2)))
	}
	cat.Register(d)
	return cat
}

func run(t *testing.T, cat *catalog.Catalog, q string) *storage.Table {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewEngine().Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDecomposeCaching(t *testing.T) {
	cat := fixture(t)
	e := NewEngine()
	entry, _ := cat.Lookup("facts")
	a := e.decompose(entry.Table)
	b := e.decompose(entry.Table)
	if a != b {
		t.Error("decompose should cache column tables")
	}
	if a.rows != 1200 || len(a.cols) != 3 {
		t.Errorf("decomposed shape: %d rows, %d cols", a.rows, len(a.cols))
	}
	if a.cols[1].kind != types.Float || len(a.cols[1].fls) != 1200 {
		t.Error("float column not vectorised")
	}
}

func TestSelectVectorIntersection(t *testing.T) {
	col := &column{kind: types.Int, ints: []int64{5, 1, 7, 3, 9, 1}}
	sel := selectVector(col, sql.CmpGt, types.IntDatum(2), nil)
	if len(sel) != 4 { // 5, 7, 3, 9
		t.Fatalf("sel = %v", sel)
	}
	sel2 := selectVector(col, sql.CmpLt, types.IntDatum(8), sel)
	if len(sel2) != 3 { // 5, 7, 3
		t.Fatalf("sel2 = %v", sel2)
	}
}

func TestSelectionAndProjection(t *testing.T) {
	cat := fixture(t)
	out := run(t, cat, "SELECT amount FROM facts WHERE cat = 'x' AND amount < 30.0")
	// cat='x' -> i%3==0; amount=i<30 -> i in {0,3,...,27} -> 10 rows.
	if out.NumRows() != 10 {
		t.Fatalf("rows = %d, want 10", out.NumRows())
	}
}

func TestHashJoinCorrectness(t *testing.T) {
	cat := fixture(t)
	out := run(t, cat, "SELECT fk, w FROM facts, dims WHERE facts.fk = dims.dk")
	if out.NumRows() != 1200 {
		t.Fatalf("rows = %d, want 1200", out.NumRows())
	}
	s := out.Schema()
	out.Scan(func(tp []byte) bool {
		fk := types.GetInt(tp, s.Offset(0))
		w := types.GetInt(tp, s.Offset(1))
		if w != fk*2 {
			t.Fatalf("fk %d paired with w %d", fk, w)
		}
		return true
	})
}

func TestAggregationArrayPasses(t *testing.T) {
	cat := fixture(t)
	out := run(t, cat, "SELECT cat, COUNT(*) AS n, SUM(amount) AS s, AVG(amount) AS m, MIN(fk), MAX(fk) FROM facts GROUP BY cat ORDER BY cat")
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	s := out.Schema()
	out.Scan(func(tp []byte) bool {
		if types.GetInt(tp, s.Offset(1)) != 400 {
			t.Errorf("group count = %d, want 400", types.GetInt(tp, s.Offset(1)))
		}
		sum := types.GetFloat(tp, s.Offset(2))
		avg := types.GetFloat(tp, s.Offset(3))
		if diff := sum/400 - avg; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("avg %g inconsistent with sum %g", avg, sum)
		}
		return true
	})
}

func TestOrderAndLimit(t *testing.T) {
	cat := fixture(t)
	out := run(t, cat, "SELECT fk, amount FROM facts ORDER BY amount DESC LIMIT 3")
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	s := out.Schema()
	if got := types.GetFloat(out.Tuple(0), s.Offset(1)); got != 1199 {
		t.Errorf("top amount = %g, want 1199", got)
	}
}

func TestComputeColumnArithmetic(t *testing.T) {
	ct := &colTable{rows: 3, cols: []*column{
		{kind: types.Int, ints: []int64{1, 2, 3}},
		{kind: types.Float, fls: []float64{0.5, 1.5, 2.5}},
	}}
	expr := &plan.ArithExpr{
		Op: sql.OpMul,
		L:  &plan.ColExpr{Col: 0, K: types.Int},
		R:  &plan.ArithExpr{Op: sql.OpAdd, L: &plan.ColExpr{Col: 1, K: types.Float}, R: &plan.ConstExpr{D: types.FloatDatum(1)}},
	}
	out := computeColumn(expr, ct)
	want := []float64{1.5, 5, 10.5}
	for i, w := range want {
		if out.fls[i] != w {
			t.Errorf("row %d = %g, want %g", i, out.fls[i], w)
		}
	}
}
