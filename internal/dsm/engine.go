package dsm

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// Execute runs a plan operator-at-a-time over column vectors, materialising
// every intermediate (the MonetDB execution discipline the paper describes
// in §III).
func (e *Engine) Execute(p *plan.Plan) (*storage.Table, error) {
	joinOut := make([]*colTable, len(p.Joins))
	resolve := func(ref plan.InputRef) (*colTable, error) {
		if ref.Base >= 0 {
			return e.decompose(p.Tables[ref.Base].Entry.Table), nil
		}
		if ref.Join < 0 || ref.Join >= len(joinOut) || joinOut[ref.Join] == nil {
			return nil, fmt.Errorf("dsm: dangling input %v", ref)
		}
		return joinOut[ref.Join], nil
	}

	tr := p.Trace
	// inRowsOf reports an operator input's cardinality for trace
	// rows-in without re-materialising the input.
	inRowsOf := func(ref plan.InputRef) int64 {
		if ref.Base >= 0 {
			return int64(p.Tables[ref.Base].Entry.Table.NumRows())
		}
		if ref.Join >= 0 && ref.Join < len(joinOut) && joinOut[ref.Join] != nil {
			return int64(joinOut[ref.Join].rows)
		}
		return 0
	}

	var t0 time.Time
	for ji, j := range p.Joins {
		out, err := e.runJoin(tr, ji, j, resolve, inRowsOf)
		if err != nil {
			return nil, err
		}
		joinOut[ji] = out
	}

	var result *colTable
	var err error
	switch {
	case p.Agg != nil:
		if tr != nil {
			t0 = time.Now()
		}
		result, err = e.runAgg(p.Agg, resolve)
		if tr != nil && err == nil {
			tr.Observe(plan.TraceStageAgg,
				inRowsOf(p.Agg.Input.Input), int64(result.rows), time.Since(t0))
		}
	case p.Final != nil:
		if tr != nil {
			t0 = time.Now()
		}
		result, err = e.runStage(p.Final, resolve)
		if tr != nil && err == nil {
			tr.Observe(plan.TraceStageProject,
				inRowsOf(p.Final.Input), int64(result.rows), time.Since(t0))
		}
	default:
		return nil, fmt.Errorf("dsm: empty plan")
	}
	if err != nil {
		return nil, err
	}

	order := identityOrder(result.rows)
	if p.Sort != nil {
		if tr != nil {
			t0 = time.Now()
		}
		order = sortOrder(result, p.Sort.Keys)
		if tr != nil {
			n := int64(len(order))
			tr.Observe(plan.TraceStageSort, n, n, time.Since(t0))
		}
	}
	// HAVING filters the order vector: sortOrder is stable, so filtering
	// after the sort keeps exactly the rows (and row order) that filtering
	// before it would have produced, and LIMIT below truncates the
	// surviving groups only.
	if len(p.Having) > 0 {
		kept := order[:0:0]
		for _, r := range order {
			ok := true
			for _, h := range p.Having {
				col := result.cols[h.Col]
				var c int
				switch col.kind {
				case types.Float:
					c = compareFloat(col.fls[r], h.Val.F)
				case types.String:
					c = compareString(col.strs[r], h.Val.S)
				default:
					c = compareInt(col.ints[r], h.Val.I)
				}
				if !h.Op.Holds(c) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, r)
			}
		}
		order = kept
	}
	if p.Limit >= 0 && len(order) > p.Limit {
		order = order[:p.Limit]
	}
	return materialise(result, order, p.ResultSchema()), nil
}

// runStage applies a stage's filters and projection column-at-a-time.
func (e *Engine) runStage(st *plan.Stage, resolve func(plan.InputRef) (*colTable, error)) (*colTable, error) {
	in, err := resolve(st.Input)
	if err != nil {
		return nil, err
	}
	// Selection: one primitive per predicate, materialising the
	// candidate vector between primitives.
	var sel []int32
	for i, f := range st.Filters {
		if slot, ok := f.Slot(); ok {
			return nil, fmt.Errorf("dsm: filter reads unbound parameter $%d (bind the plan before execution)", slot)
		}
		sel = selectVector(in.cols[f.Col], f.Op, f.Val, selOrAll(sel, i == 0))
	}
	if len(st.Filters) == 0 {
		sel = allRows(in.rows)
	}

	// Projection: gather the needed columns only (the DSM advantage the
	// paper highlights for TPC-H).
	gathered := &colTable{rows: len(sel)}
	for _, c := range st.Cols {
		if c.Source >= 0 && c.Compute == nil {
			gathered.cols = append(gathered.cols, gather(in.cols[c.Source], sel))
			gathered.names = append(gathered.names, c.Name)
		} else {
			gathered.cols = append(gathered.cols, nil) // computed below
			gathered.names = append(gathered.names, c.Name)
		}
	}
	// Computed columns operate over gathered inputs: build a temporary
	// table exposing the source columns at their original indexes.
	srcView := &colTable{rows: len(sel), cols: make([]*column, len(in.cols))}
	for i := range in.cols {
		srcView.cols[i] = gather(in.cols[i], sel)
	}
	for i, c := range st.Cols {
		if c.Compute != nil {
			gathered.cols[i] = computeColumn(c.Compute, srcView)
		}
	}
	return gathered, nil
}

func selOrAll(sel []int32, first bool) []int32 {
	if first {
		return nil
	}
	return sel
}

func allRows(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// runJoin evaluates joins as hash joins over key columns, cascading for
// multi-input descriptors. The build side is the smaller input.
func (e *Engine) runJoin(tr *plan.Trace, ji int, j *plan.Join, resolve func(plan.InputRef) (*colTable, error), inRowsOf func(plan.InputRef) int64) (*colTable, error) {
	k := len(j.Inputs)
	staged := make([]*colTable, k)
	var stagedSum int64
	var t0, tj time.Time
	for i := range j.Inputs {
		if tr != nil {
			t0 = time.Now()
		}
		ct, err := e.runStage(&j.Inputs[i], resolve)
		if err != nil {
			return nil, err
		}
		staged[i] = ct
		if tr != nil {
			tr.Observe(plan.TraceJoinStage(ji, i),
				inRowsOf(j.Inputs[i].Input), int64(ct.rows), time.Since(t0))
			stagedSum += int64(ct.rows)
		}
	}
	if tr != nil {
		tj = time.Now()
	}

	// Cascade: join input 0 with 1, then with 2, ... All keys are in one
	// equivalence class for multi-input descriptors.
	cur := staged[0]
	curKey := j.Keys[0]
	offsets := make([]int, k)
	for i := 1; i < k; i++ {
		offsets[i] = offsets[i-1] + len(staged[i-1].cols)
	}
	for i := 1; i < k; i++ {
		joined, err := hashJoin(cur, curKey, staged[i], j.Keys[i])
		if err != nil {
			return nil, err
		}
		cur = joined
	}

	// Output projection per descriptor mapping.
	out := &colTable{rows: cur.rows}
	for _, o := range j.Out {
		out.cols = append(out.cols, cur.cols[offsets[o.Input]+o.Col])
		out.names = append(out.names, j.Inputs[o.Input].Schema.Column(o.Col).Name)
	}
	if tr != nil {
		tr.Observe(plan.TraceJoin(ji), stagedSum, int64(out.rows), time.Since(tj))
	}
	return out, nil
}

// hashJoin joins two column tables on integer or string keys, returning
// the concatenated column set.
func hashJoin(left *colTable, lk int, right *colTable, rk int) (*colTable, error) {
	var li, ri []int32
	lcol, rcol := left.cols[lk], right.cols[rk]
	switch lcol.kind {
	case types.String:
		build := make(map[string][]int32, right.rows)
		for i, v := range rcol.strs {
			build[v] = append(build[v], int32(i))
		}
		for i, v := range lcol.strs {
			for _, r := range build[v] {
				li = append(li, int32(i))
				ri = append(ri, r)
			}
		}
	default:
		build := make(map[int64][]int32, right.rows)
		for i, v := range rcol.ints {
			build[v] = append(build[v], int32(i))
		}
		for i, v := range lcol.ints {
			for _, r := range build[v] {
				li = append(li, int32(i))
				ri = append(ri, r)
			}
		}
	}

	out := &colTable{rows: len(li)}
	for i, c := range left.cols {
		out.cols = append(out.cols, gather(c, li))
		out.names = append(out.names, left.names[i])
	}
	for i, c := range right.cols {
		out.cols = append(out.cols, gather(c, ri))
		out.names = append(out.names, right.names[i])
	}
	return out, nil
}

// runAgg evaluates aggregation: group ids first (one pass), then one
// array pass per aggregate — the array-computation style of §III.
func (e *Engine) runAgg(a *plan.Agg, resolve func(plan.InputRef) (*colTable, error)) (*colTable, error) {
	in, err := e.runStage(&a.Input, resolve)
	if err != nil {
		return nil, err
	}

	// Pass 1: assign group ids.
	gids := make([]int32, in.rows)
	var nGroups int
	if len(a.GroupCols) == 1 && in.cols[a.GroupCols[0]].kind != types.String {
		m := make(map[int64]int32, 1024)
		col := in.cols[a.GroupCols[0]]
		for i, v := range col.ints {
			id, ok := m[v]
			if !ok {
				id = int32(len(m))
				m[v] = id
			}
			gids[i] = id
		}
		nGroups = len(m)
	} else {
		m := make(map[string]int32, 1024)
		keyBuf := make([]byte, 0, 64)
		for i := 0; i < in.rows; i++ {
			keyBuf = keyBuf[:0]
			for _, g := range a.GroupCols {
				col := in.cols[g]
				switch col.kind {
				case types.String:
					keyBuf = append(keyBuf, col.strs[i]...)
				case types.Float:
					keyBuf = appendFloatKey(keyBuf, col.fls[i])
				default:
					keyBuf = appendIntKey(keyBuf, col.ints[i])
				}
				keyBuf = append(keyBuf, 0)
			}
			id, ok := m[string(keyBuf)]
			if !ok {
				id = int32(len(m))
				m[string(keyBuf)] = id
			}
			gids[i] = id
		}
		nGroups = len(m)
	}

	// Group representative row (first occurrence) for group columns.
	rep := make([]int32, nGroups)
	seen := make([]bool, nGroups)
	for i, g := range gids {
		if !seen[g] {
			seen[g] = true
			rep[g] = int32(i)
		}
	}

	// Pass 2..n: one array computation per aggregate.
	out := &colTable{rows: nGroups}
	for pos, ref := range a.Output {
		name := a.Schema.Column(pos).Name
		if !ref.IsAgg {
			src := in.cols[a.GroupCols[ref.Index]]
			out.cols = append(out.cols, gather(src, rep))
			out.names = append(out.names, name)
			continue
		}
		spec := &a.Aggs[ref.Index]
		out.cols = append(out.cols, aggregateColumn(spec, in, gids, nGroups))
		out.names = append(out.names, name)
	}
	return out, nil
}

func appendIntKey(b []byte, v int64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

func appendFloatKey(b []byte, v float64) []byte {
	return appendIntKey(b, int64(math.Float64bits(v)))
}

// aggregateColumn computes one aggregate as an array pass over the input
// column, scattering into per-group slots.
func aggregateColumn(spec *plan.AggSpec, in *colTable, gids []int32, nGroups int) *column {
	switch spec.Func {
	case sql.AggCount:
		out := &column{kind: types.Int, size: 8, ints: make([]int64, nGroups)}
		if spec.Star || spec.Col < 0 {
			for _, g := range gids {
				out.ints[g]++
			}
			return out
		}
		for _, g := range gids {
			out.ints[g]++
		}
		return out

	case sql.AggSum:
		col := in.cols[spec.Col]
		if col.kind == types.Float {
			out := &column{kind: types.Float, size: 8, fls: make([]float64, nGroups)}
			for i, v := range col.fls {
				out.fls[gids[i]] += v
			}
			return out
		}
		out := &column{kind: types.Int, size: 8, ints: make([]int64, nGroups)}
		for i, v := range col.ints {
			out.ints[gids[i]] += v
		}
		return out

	case sql.AggAvg:
		col := in.cols[spec.Col]
		sums := make([]float64, nGroups)
		counts := make([]int64, nGroups)
		if col.kind == types.Float {
			for i, v := range col.fls {
				sums[gids[i]] += v
				counts[gids[i]]++
			}
		} else {
			for i, v := range col.ints {
				sums[gids[i]] += float64(v)
				counts[gids[i]]++
			}
		}
		out := &column{kind: types.Float, size: 8, fls: make([]float64, nGroups)}
		for g := range sums {
			if counts[g] > 0 {
				out.fls[g] = sums[g] / float64(counts[g])
			}
		}
		return out

	case sql.AggMin, sql.AggMax:
		col := in.cols[spec.Col]
		isMin := spec.Func == sql.AggMin
		if col.kind == types.Float {
			out := &column{kind: types.Float, size: 8, fls: make([]float64, nGroups)}
			init := math.Inf(1)
			if !isMin {
				init = math.Inf(-1)
			}
			for g := range out.fls {
				out.fls[g] = init
			}
			for i, v := range col.fls {
				g := gids[i]
				if (isMin && v < out.fls[g]) || (!isMin && v > out.fls[g]) {
					out.fls[g] = v
				}
			}
			return out
		}
		out := &column{kind: types.Int, size: 8, ints: make([]int64, nGroups)}
		init := int64(math.MaxInt64)
		if !isMin {
			init = math.MinInt64
		}
		for g := range out.ints {
			out.ints[g] = init
		}
		for i, v := range col.ints {
			g := gids[i]
			if (isMin && v < out.ints[g]) || (!isMin && v > out.ints[g]) {
				out.ints[g] = v
			}
		}
		return out
	}
	panic(fmt.Sprintf("dsm: unsupported aggregate %v", spec.Func))
}

func identityOrder(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// sortOrder returns row positions ordered by the sort keys.
func sortOrder(ct *colTable, keys []plan.SortKey) []int32 {
	order := identityOrder(ct.rows)
	sort.SliceStable(order, func(x, y int) bool {
		a, b := order[x], order[y]
		for _, k := range keys {
			col := ct.cols[k.Col]
			var c int
			switch col.kind {
			case types.Float:
				c = compareFloat(col.fls[a], col.fls[b])
			case types.String:
				c = compareString(col.strs[a], col.strs[b])
			default:
				c = compareInt(col.ints[a], col.ints[b])
			}
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return order
}

// materialise converts the column table back to an NSM result table in the
// given row order.
func materialise(ct *colTable, order []int32, schema *types.Schema) *storage.Table {
	out := storage.NewTable("result", schema)
	buf := make([]byte, schema.TupleSize())
	for _, r := range order {
		for i, col := range ct.cols {
			off := schema.Offset(i)
			switch col.kind {
			case types.Float:
				types.PutFloat(buf, off, col.fls[r])
			case types.String:
				types.PutString(buf, off, schema.Column(i).Size, col.strs[r])
			default:
				types.PutInt(buf, off, col.ints[r])
			}
		}
		out.Append(buf)
	}
	return out
}
