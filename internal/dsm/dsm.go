// Package dsm implements the column-store comparator engine used as the
// MonetDB stand-in in the TPC-H comparison (paper §III, §VI-C): storage is
// vertically decomposed (Decomposed Storage Model), execution is
// operator-at-a-time over full columns, and every intermediate result is
// fully materialised — the design whose strengths (touching only needed
// fields) and weaknesses (no cross-operator cache locality) the paper
// contrasts with holistic evaluation.
package dsm

import (
	"fmt"
	"sync"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// column is a fully materialised attribute vector.
type column struct {
	kind types.Kind
	size int // CHAR width for strings
	ints []int64
	fls  []float64
	strs []string
}

func (c *column) length() int {
	switch c.kind {
	case types.Float:
		return len(c.fls)
	case types.String:
		return len(c.strs)
	default:
		return len(c.ints)
	}
}

// colTable is a set of aligned columns (a BAT group, in MonetDB terms).
type colTable struct {
	names []string
	cols  []*column
	rows  int
}

// Engine is the DSM execution engine. Vertical decomposition of base
// tables happens once per table version and is cached, mirroring a column
// store whose base data already lives in DSM; a cached decomposition
// revalidates against the heap's mutation counter, so writes (inserts,
// deletes, in-place updates) invalidate it instead of serving stale
// columns.
type Engine struct {
	mu    sync.Mutex
	cache map[*storage.Table]*decomposed
}

// decomposed is one cache entry: the column vectors plus the heap version
// they were built at.
type decomposed struct {
	ct      *colTable
	version uint64
}

// NewEngine creates a DSM engine.
func NewEngine() *Engine {
	return &Engine{cache: make(map[*storage.Table]*decomposed)}
}

// Name identifies the engine in experiment output.
func (e *Engine) Name() string { return "DSM-columnstore" }

// decompose converts an NSM heap into column vectors (cached per heap
// version; the caller holds the table lock, so the version cannot move
// underneath the conversion).
func (e *Engine) decompose(t *storage.Table) *colTable {
	version := t.Version()
	e.mu.Lock()
	if d, ok := e.cache[t]; ok && d.version == version {
		e.mu.Unlock()
		return d.ct
	}
	e.mu.Unlock()

	s := t.Schema()
	ct := &colTable{rows: t.NumRows()}
	for i := 0; i < s.NumColumns(); i++ {
		c := s.Column(i)
		col := &column{kind: c.Kind, size: c.Size}
		switch c.Kind {
		case types.Float:
			col.fls = make([]float64, 0, t.NumRows())
		case types.String:
			col.strs = make([]string, 0, t.NumRows())
		default:
			col.ints = make([]int64, 0, t.NumRows())
		}
		ct.cols = append(ct.cols, col)
		ct.names = append(ct.names, c.Name)
	}
	t.Scan(func(tuple []byte) bool {
		for i := 0; i < s.NumColumns(); i++ {
			c := s.Column(i)
			off := s.Offset(i)
			switch c.Kind {
			case types.Float:
				ct.cols[i].fls = append(ct.cols[i].fls, types.GetFloat(tuple, off))
			case types.String:
				ct.cols[i].strs = append(ct.cols[i].strs, types.GetString(tuple, off, c.Size))
			default:
				ct.cols[i].ints = append(ct.cols[i].ints, types.GetInt(tuple, off))
			}
		}
		return true
	})
	e.mu.Lock()
	e.cache[t] = &decomposed{ct: ct, version: version}
	e.mu.Unlock()
	return ct
}

// --- column primitives (operator-at-a-time, fully materialising) -----------

// selectVector evaluates one predicate over a column and intersects it with
// the incoming candidate list (nil = all rows).
func selectVector(col *column, op sql.CmpOp, val types.Datum, in []int32) []int32 {
	test := func(i int32) bool {
		switch col.kind {
		case types.Float:
			return cmpResult(compareFloat(col.fls[i], val.F), op)
		case types.String:
			return cmpResult(compareString(col.strs[i], val.S), op)
		default:
			return cmpResult(compareInt(col.ints[i], val.I), op)
		}
	}
	var out []int32
	if in == nil {
		n := col.length()
		out = make([]int32, 0, n/2)
		for i := 0; i < n; i++ {
			if test(int32(i)) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	out = make([]int32, 0, len(in)/2)
	for _, i := range in {
		if test(i) {
			out = append(out, i)
		}
	}
	return out
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpResult(c int, op sql.CmpOp) bool { return op.Holds(c) }

// gather materialises col[sel] as a new column.
func gather(col *column, sel []int32) *column {
	out := &column{kind: col.kind, size: col.size}
	switch col.kind {
	case types.Float:
		out.fls = make([]float64, len(sel))
		for i, s := range sel {
			out.fls[i] = col.fls[s]
		}
	case types.String:
		out.strs = make([]string, len(sel))
		for i, s := range sel {
			out.strs[i] = col.strs[s]
		}
	default:
		out.ints = make([]int64, len(sel))
		for i, s := range sel {
			out.ints[i] = col.ints[s]
		}
	}
	return out
}

// computeColumn evaluates a bound scalar expression column-at-a-time over
// already-gathered input columns.
func computeColumn(e plan.Expr, inputs *colTable) *column {
	switch v := e.(type) {
	case *plan.ColExpr:
		return inputs.cols[v.Col]
	case *plan.ConstExpr:
		out := &column{kind: v.D.Kind, size: 8}
		n := inputs.rows
		switch v.D.Kind {
		case types.Float:
			out.fls = make([]float64, n)
			for i := range out.fls {
				out.fls[i] = v.D.F
			}
		default:
			out.ints = make([]int64, n)
			for i := range out.ints {
				out.ints[i] = v.D.I
			}
		}
		return out
	case *plan.ArithExpr:
		l := computeColumn(v.L, inputs)
		r := computeColumn(v.R, inputs)
		if v.Kind() == types.Float {
			lf := asFloats(l)
			rf := asFloats(r)
			out := &column{kind: types.Float, size: 8, fls: make([]float64, len(lf))}
			switch v.Op {
			case sql.OpAdd:
				for i := range lf {
					out.fls[i] = lf[i] + rf[i]
				}
			case sql.OpSub:
				for i := range lf {
					out.fls[i] = lf[i] - rf[i]
				}
			case sql.OpMul:
				for i := range lf {
					out.fls[i] = lf[i] * rf[i]
				}
			case sql.OpDiv:
				for i := range lf {
					out.fls[i] = lf[i] / rf[i]
				}
			}
			return out
		}
		out := &column{kind: types.Int, size: 8, ints: make([]int64, len(l.ints))}
		switch v.Op {
		case sql.OpAdd:
			for i := range l.ints {
				out.ints[i] = l.ints[i] + r.ints[i]
			}
		case sql.OpSub:
			for i := range l.ints {
				out.ints[i] = l.ints[i] - r.ints[i]
			}
		case sql.OpMul:
			for i := range l.ints {
				out.ints[i] = l.ints[i] * r.ints[i]
			}
		case sql.OpDiv:
			for i := range l.ints {
				out.ints[i] = l.ints[i] / r.ints[i]
			}
		}
		return out
	}
	panic(fmt.Sprintf("dsm: bad expression %T", e))
}

func asFloats(c *column) []float64 {
	if c.kind == types.Float {
		return c.fls
	}
	out := make([]float64, len(c.ints))
	for i, v := range c.ints {
		out[i] = float64(v)
	}
	return out
}
