package storage

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"hique/internal/types"
)

// The page arena is a process-wide sync.Pool of page frames backing the
// transient tables of query execution: staged intermediates, index-scan
// fetches, and materialised results. The paper assumes these costs are
// amortised ("intermediate results are materialised inside the buffer
// pool", §V-C) — on a warm serving path the arena makes that true: a
// repeated query reuses the frames the previous execution returned
// instead of allocating fresh 4096-byte pages every run.
//
// Accounting is shared with internal/buffer (Pool.Usage reports the
// arena counters next to the frame-pool hit/miss counters): arenaGets -
// arenaPuts is the number of frames currently held by live pooled
// tables, so a serving path that releases everything it acquires drives
// the balance back to zero — the invariant the pool-leak test asserts.

var (
	pagePool  = sync.Pool{New: func() any { return &Page{buf: make([]byte, PageSize)} }}
	tablePool = sync.Pool{New: func() any { return new(Table) }}

	arenaGets atomic.Int64
	arenaPuts atomic.Int64
)

// ArenaStats reports the page arena balance: inUse is the number of
// frames currently held by pooled tables (gets minus puts), recycled the
// cumulative number of frames returned for reuse.
func ArenaStats() (inUse, recycled int64) {
	puts := arenaPuts.Load()
	return arenaGets.Load() - puts, puts
}

// newPooledPage draws a page frame from the arena and re-initialises its
// header for tuples of the given width. The tuple area keeps whatever
// bytes the previous user wrote; NumTuples governs validity and every
// append fully overwrites its slot.
func newPooledPage(tupleSize, id int) *Page {
	arenaGets.Add(1)
	p := pagePool.Get().(*Page)
	p.setNumTuples(0)
	binary.LittleEndian.PutUint32(p.buf[4:8], uint32(tupleSize))
	p.setID(id)
	return p
}

// NewPooledTable creates an empty heap table whose pages come from the
// page arena. The caller owns the table: when it is no longer referenced,
// Release must be called exactly once to return the frames; dropping a
// pooled table without Release is safe (the GC reclaims it) but leaks the
// frames out of the arena accounting.
func NewPooledTable(name string, schema *types.Schema) *Table {
	t := tablePool.Get().(*Table)
	t.name = name
	t.schema = schema
	t.pooled = true
	return t
}

// Release returns a pooled table's frames to the arena and the table
// struct itself to its pool. It is a no-op on tables not created by
// NewPooledTable, so callers may release unconditionally; the tuples must
// not be referenced afterwards — the frames are recycled into other
// tables. Release must not be called twice for the same acquisition.
func (t *Table) Release() {
	if t == nil || !t.pooled {
		return
	}
	t.pooled = false
	for i, p := range t.pages {
		pagePool.Put(p)
		t.pages[i] = nil
	}
	arenaPuts.Add(int64(len(t.pages)))
	t.pages = t.pages[:0]
	t.rows = 0
	t.name = ""
	t.schema = nil
	tablePool.Put(t)
}

// Pooled reports whether the table draws its pages from the arena (and
// therefore must eventually be Released by its owner).
func (t *Table) Pooled() bool { return t.pooled }
