package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hique/internal/types"
)

// Manager is the storage manager: it owns the mapping between tables and
// their backing files and (de)serialises heaps (paper §IV: "each table
// resides in its own file on disk, and the system's storage manager is
// responsible for maintaining information on table/file associations and
// schemata").
type Manager struct {
	dir string
}

// NewManager creates a storage manager rooted at dir. The directory is
// created if missing.
func NewManager(dir string) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	return &Manager{dir: dir}, nil
}

// Dir returns the root directory.
func (m *Manager) Dir() string { return m.dir }

// PathFor returns the file path backing the named table.
func (m *Manager) PathFor(table string) string {
	return filepath.Join(m.dir, table+".tbl")
}

// fileMagic identifies HIQUE table files.
const fileMagic = "HIQT0001"

// Save writes the table to its backing file.
func (m *Manager) Save(t *Table) error {
	f, err := os.Create(m.PathFor(t.Name()))
	if err != nil {
		return fmt.Errorf("storage: save %s: %w", t.Name(), err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if err := writeTable(w, t); err != nil {
		return fmt.Errorf("storage: save %s: %w", t.Name(), err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("storage: save %s: %w", t.Name(), err)
	}
	return nil
}

// Load reads the named table from its backing file.
func (m *Manager) Load(name string) (*Table, error) {
	f, err := os.Open(m.PathFor(name))
	if err != nil {
		return nil, fmt.Errorf("storage: load %s: %w", name, err)
	}
	defer f.Close()
	t, err := readTable(bufio.NewReaderSize(f, 1<<20), name)
	if err != nil {
		return nil, fmt.Errorf("storage: load %s: %w", name, err)
	}
	return t, nil
}

// List returns the names of all tables present under the root directory.
func (m *Manager) List() ([]string, error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list: %w", err)
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".tbl") {
			names = append(names, strings.TrimSuffix(n, ".tbl"))
		}
	}
	return names, nil
}

// Drop removes the file backing the named table.
func (m *Manager) Drop(name string) error {
	if err := os.Remove(m.PathFor(name)); err != nil {
		return fmt.Errorf("storage: drop %s: %w", name, err)
	}
	return nil
}

// WriteTable serialises a table — magic, schema, then raw pages — for
// durability snapshots (the same framing Manager.Save uses on disk).
func WriteTable(w io.Writer, t *Table) error { return writeTable(w, t) }

// WriteSchema serialises just a schema — the WAL's CREATE TABLE record
// payload.
func WriteSchema(w io.Writer, s *types.Schema) error { return writeSchema(w, s) }

// ReadSchema deserialises a schema written by WriteSchema.
func ReadSchema(r io.Reader) (*types.Schema, error) { return readSchema(r) }

// ReadTable deserialises a table written by WriteTable, restoring page
// IDs from the page headers and validating the row count.
func ReadTable(r io.Reader, name string) (*Table, error) { return readTable(r, name) }

func writeTable(w io.Writer, t *Table) error {
	if _, err := io.WriteString(w, fileMagic); err != nil {
		return err
	}
	if err := writeSchema(w, t.Schema()); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(t.NumPages()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(t.NumRows()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for i := 0; i < t.NumPages(); i++ {
		if _, err := w.Write(t.Page(i).Bytes()); err != nil {
			return err
		}
	}
	return nil
}

func readTable(r io.Reader, name string) (*Table, error) {
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	schema, err := readSchema(r)
	if err != nil {
		return nil, err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	numPages := int(binary.LittleEndian.Uint32(hdr[0:4]))
	numRows := int(binary.LittleEndian.Uint32(hdr[4:8]))
	t := NewTable(name, schema)
	for i := 0; i < numPages; i++ {
		buf := make([]byte, PageSize)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("page %d: %w", i, err)
		}
		p := pageFromBytes(buf)
		t.pages = append(t.pages, p)
		t.rows += p.NumTuples()
	}
	if t.rows != numRows {
		return nil, fmt.Errorf("row count mismatch: header %d, pages %d", numRows, t.rows)
	}
	return t, nil
}

func writeSchema(w io.Writer, s *types.Schema) error {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(s.NumColumns()))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	for i := 0; i < s.NumColumns(); i++ {
		c := s.Column(i)
		var meta [8]byte
		binary.LittleEndian.PutUint32(meta[0:4], uint32(c.Kind))
		binary.LittleEndian.PutUint32(meta[4:8], uint32(c.Size))
		if _, err := w.Write(meta[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(n[:], uint32(len(c.Name)))
		if _, err := w.Write(n[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, c.Name); err != nil {
			return err
		}
	}
	return nil
}

func readSchema(r io.Reader) (*types.Schema, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	numCols := int(binary.LittleEndian.Uint32(n[:]))
	cols := make([]types.Column, numCols)
	for i := 0; i < numCols; i++ {
		var meta [8]byte
		if _, err := io.ReadFull(r, meta[:]); err != nil {
			return nil, err
		}
		kind := types.Kind(binary.LittleEndian.Uint32(meta[0:4]))
		size := int(binary.LittleEndian.Uint32(meta[4:8]))
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return nil, err
		}
		nameBytes := make([]byte, binary.LittleEndian.Uint32(n[:]))
		if _, err := io.ReadFull(r, nameBytes); err != nil {
			return nil, err
		}
		cols[i] = types.Column{Name: string(nameBytes), Kind: kind, Size: size}
	}
	return types.NewSchema(cols...), nil
}
