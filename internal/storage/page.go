// Package storage implements HIQUE's N-ary Storage Model (NSM) layer:
// fixed-size slotted pages of 4096 bytes, heap tables built from pages, and
// a storage manager that maps tables to files on disk (paper §IV).
//
// Tuples within a page are stored consecutively, so the i-th tuple of a page
// lives at data[HeaderSize + i*tupleSize] — the array layout the generated
// code exploits through direct offset arithmetic (paper Listing 1).
//
// Callers: base tables are owned by the catalogue (internal/catalog) and
// mutated only under their entry's writer lock; engines read them under
// reader locks held by hique.DB for the whole plan+execute+materialise
// span. Transient tables — staged intermediates, sorted copies, partition
// sets, materialised results — draw their frames from the process-wide
// page arena (pool.go): NewPooledTable acquires, Release returns, and
// ownership is explicit — exactly one owner per acquisition, release only
// after the last read, never while the tuples might still be aliased
// (identity-elided stages alias base pages, which is why materialisation
// happens under the table locks). ArenaStats exposes the gets−puts
// balance; a quiesced serving path drives it back to zero.
package storage

import (
	"encoding/binary"
	"fmt"
)

const (
	// PageSize is the physical page size in bytes (paper §IV).
	PageSize = 4096
	// HeaderSize is the page header: numTuples (4), tupleSize (4),
	// pageID (4), reserved (4).
	HeaderSize = 16
)

// Page is a single NSM page. The zero value is not usable; create pages
// through NewPage or Table.appendPage.
type Page struct {
	buf []byte
}

// NewPage allocates an empty page for tuples of the given width. A width
// of zero is legal: group-less aggregates stage attribute-free tuples, so
// a zero-width page is pure row counting.
func NewPage(tupleSize int) *Page {
	if tupleSize < 0 || tupleSize > PageSize-HeaderSize {
		panic(fmt.Sprintf("storage.NewPage: tuple size %d out of range", tupleSize))
	}
	p := &Page{buf: make([]byte, PageSize)}
	binary.LittleEndian.PutUint32(p.buf[4:8], uint32(tupleSize))
	return p
}

// pageFromBytes wraps an existing 4096-byte buffer as a page.
func pageFromBytes(buf []byte) *Page {
	if len(buf) != PageSize {
		panic("storage: page buffer must be exactly PageSize bytes")
	}
	return &Page{buf: buf}
}

// NumTuples returns the number of tuples stored in the page.
func (p *Page) NumTuples() int {
	return int(binary.LittleEndian.Uint32(p.buf[0:4]))
}

// TupleSize returns the width of each tuple in the page.
func (p *Page) TupleSize() int {
	return int(binary.LittleEndian.Uint32(p.buf[4:8]))
}

// ID returns the page's position within its table.
func (p *Page) ID() int {
	return int(binary.LittleEndian.Uint32(p.buf[8:12]))
}

func (p *Page) setID(id int) {
	binary.LittleEndian.PutUint32(p.buf[8:12], uint32(id))
}

func (p *Page) setNumTuples(n int) {
	binary.LittleEndian.PutUint32(p.buf[0:4], uint32(n))
}

// Capacity returns how many tuples fit in the page. Zero-width tuples
// occupy no data bytes; their capacity is one count per data byte so the
// page count stays bounded.
func (p *Page) Capacity() int {
	ts := p.TupleSize()
	if ts == 0 {
		return PageSize - HeaderSize
	}
	return (PageSize - HeaderSize) / ts
}

// Full reports whether the page has no room for another tuple.
func (p *Page) Full() bool { return p.NumTuples() >= p.Capacity() }

// Tuple returns the i-th tuple as a sub-slice of the page buffer. The slice
// aliases page memory: callers must copy it if they outlive the page.
func (p *Page) Tuple(i int) []byte {
	ts := p.TupleSize()
	off := HeaderSize + i*ts
	return p.buf[off : off+ts : off+ts]
}

// Data returns the raw tuple area of the page (everything after the header).
// The generated scan code iterates this region with pointer arithmetic.
func (p *Page) Data() []byte { return p.buf[HeaderSize:] }

// Bytes returns the full page buffer, header included.
func (p *Page) Bytes() []byte { return p.buf }

// Append copies tuple into the next free slot. It reports false when the
// page is full.
func (p *Page) Append(tuple []byte) bool {
	ts := p.TupleSize()
	if len(tuple) != ts {
		panic(fmt.Sprintf("storage.Page.Append: tuple size %d, page expects %d", len(tuple), ts))
	}
	n := p.NumTuples()
	if n >= p.Capacity() {
		return false
	}
	copy(p.buf[HeaderSize+n*ts:], tuple)
	p.setNumTuples(n + 1)
	return true
}

// Reset clears the page's tuple count so the buffer can be reused.
func (p *Page) Reset() { p.setNumTuples(0) }
