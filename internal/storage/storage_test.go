package storage

import (
	"fmt"
	"testing"
	"testing/quick"

	"hique/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(types.Col("id", types.Int), types.Col("v", types.Float), types.CharCol("s", 12))
}

func TestPageAppendAndRead(t *testing.T) {
	s := testSchema()
	p := NewPage(s.TupleSize())
	if p.NumTuples() != 0 {
		t.Fatalf("fresh page has %d tuples", p.NumTuples())
	}
	wantCap := (PageSize - HeaderSize) / s.TupleSize()
	if p.Capacity() != wantCap {
		t.Fatalf("Capacity = %d, want %d", p.Capacity(), wantCap)
	}
	for i := 0; i < wantCap; i++ {
		ok := p.Append(s.EncodeRow(types.IntDatum(int64(i)), types.FloatDatum(float64(i)/2), types.StringDatum(fmt.Sprintf("s%d", i))))
		if !ok {
			t.Fatalf("Append %d failed below capacity", i)
		}
	}
	if !p.Full() {
		t.Error("page should be full")
	}
	if p.Append(make([]byte, s.TupleSize())) {
		t.Error("Append succeeded on full page")
	}
	for i := 0; i < wantCap; i++ {
		row := s.DecodeRow(p.Tuple(i))
		if row[0].I != int64(i) {
			t.Fatalf("tuple %d: id = %d", i, row[0].I)
		}
	}
}

func TestPageReset(t *testing.T) {
	p := NewPage(8)
	p.Append(make([]byte, 8))
	p.Reset()
	if p.NumTuples() != 0 {
		t.Errorf("after Reset NumTuples = %d", p.NumTuples())
	}
	if p.TupleSize() != 8 {
		t.Errorf("Reset clobbered tuple size: %d", p.TupleSize())
	}
}

func TestTableAppendSpansPages(t *testing.T) {
	s := testSchema()
	tbl := NewTable("t", s)
	const n = 1000
	for i := 0; i < n; i++ {
		tbl.AppendRow(types.IntDatum(int64(i)), types.FloatDatum(1.0), types.StringDatum("x"))
	}
	if tbl.NumRows() != n {
		t.Fatalf("NumRows = %d, want %d", tbl.NumRows(), n)
	}
	perPage := (PageSize - HeaderSize) / s.TupleSize()
	wantPages := (n + perPage - 1) / perPage
	if tbl.NumPages() != wantPages {
		t.Fatalf("NumPages = %d, want %d", tbl.NumPages(), wantPages)
	}
	// Scan order must be insertion order.
	i := 0
	tbl.Scan(func(tuple []byte) bool {
		if got := types.GetInt(tuple, 0); got != int64(i) {
			t.Fatalf("scan row %d: id = %d", i, got)
		}
		i++
		return true
	})
	if i != n {
		t.Fatalf("scan visited %d rows, want %d", i, n)
	}
	// Early-exit scan.
	count := 0
	tbl.Scan(func([]byte) bool { count++; return count < 10 })
	if count != 10 {
		t.Errorf("early-exit scan visited %d rows, want 10", count)
	}
}

func TestTableTupleByIndex(t *testing.T) {
	s := testSchema()
	tbl := NewTable("t", s)
	for i := 0; i < 500; i++ {
		tbl.AppendRow(types.IntDatum(int64(i*7)), types.FloatDatum(0), types.StringDatum(""))
	}
	for _, r := range []int{0, 1, 250, 499} {
		if got := types.GetInt(tbl.Tuple(r), 0); got != int64(r*7) {
			t.Errorf("Tuple(%d) id = %d, want %d", r, got, r*7)
		}
	}
}

func TestTruncate(t *testing.T) {
	tbl := NewTable("t", testSchema())
	tbl.AppendRow(types.IntDatum(1), types.FloatDatum(2), types.StringDatum("a"))
	tbl.Truncate()
	if tbl.NumRows() != 0 || tbl.NumPages() != 0 {
		t.Errorf("Truncate left %d rows, %d pages", tbl.NumRows(), tbl.NumPages())
	}
}

func TestManagerSaveLoadRoundTrip(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := testSchema()
	tbl := NewTable("roundtrip", s)
	for i := 0; i < 700; i++ {
		tbl.AppendRow(types.IntDatum(int64(i)), types.FloatDatum(float64(i)*1.5), types.StringDatum(fmt.Sprintf("row%d", i)))
	}
	if err := m.Save(tbl); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load("roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tbl.NumRows() {
		t.Fatalf("loaded %d rows, want %d", got.NumRows(), tbl.NumRows())
	}
	if got.Schema().String() != s.String() {
		t.Fatalf("loaded schema %s, want %s", got.Schema(), s)
	}
	want := tbl.Rows()
	rows := got.Rows()
	for i := range want {
		for j := range want[i] {
			if !types.Equal(want[i][j], rows[i][j]) {
				t.Fatalf("row %d col %d: got %v, want %v", i, j, rows[i][j], want[i][j])
			}
		}
	}
}

func TestManagerListAndDrop(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta"} {
		tbl := NewTable(name, testSchema())
		tbl.AppendRow(types.IntDatum(1), types.FloatDatum(1), types.StringDatum("a"))
		if err := m.Save(tbl); err != nil {
			t.Fatal(err)
		}
	}
	names, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("List = %v, want 2 names", names)
	}
	if err := m.Drop("alpha"); err != nil {
		t.Fatal(err)
	}
	names, _ = m.List()
	if len(names) != 1 || names[0] != "beta" {
		t.Fatalf("after Drop, List = %v", names)
	}
	if _, err := m.Load("alpha"); err == nil {
		t.Error("Load of dropped table should fail")
	}
}

func TestSaveLoadQuick(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := types.NewSchema(types.Col("k", types.Int), types.Col("v", types.Int))
	f := func(vals []int64) bool {
		tbl := NewTable("q", s)
		for i, v := range vals {
			tbl.AppendRow(types.IntDatum(int64(i)), types.IntDatum(v))
		}
		if err := m.Save(tbl); err != nil {
			return false
		}
		got, err := m.Load("q")
		if err != nil || got.NumRows() != len(vals) {
			return false
		}
		ok := true
		i := 0
		got.Scan(func(tuple []byte) bool {
			if types.GetInt(tuple, 8) != vals[i] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
