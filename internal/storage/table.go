package storage

import (
	"fmt"

	"hique/internal/types"
)

// Table is an NSM heap table: a schema plus an ordered list of pages. Tables
// are the unit both of base storage and of staged/materialised intermediate
// results (paper §V-C: "operators are connected by materializing intermediate
// results as temporary tables inside the buffer pool").
type Table struct {
	name   string
	schema *types.Schema
	pages  []*Page
	rows   int
	// version counts mutations (appends, truncations, and explicitly
	// recorded in-place updates), letting engines that cache derived
	// representations of the heap revalidate them. See Version.
	version uint64
	// pooled marks tables created by NewPooledTable: their pages come
	// from the page arena and return to it on Release.
	pooled bool
}

// NewTable creates an empty heap table.
func NewTable(name string, schema *types.Schema) *Table {
	return &Table{name: name, schema: schema}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// NumPages returns the number of pages in the heap.
func (t *Table) NumPages() int { return len(t.pages) }

// NumRows returns the total tuple count.
func (t *Table) NumRows() int { return t.rows }

// Page returns the i-th page.
func (t *Table) Page(i int) *Page { return t.pages[i] }

// lastPage returns the final page, appending a fresh one if the heap is
// empty or the final page is full.
func (t *Table) lastPage() *Page {
	if n := len(t.pages); n > 0 && !t.pages[n-1].Full() {
		return t.pages[n-1]
	}
	var p *Page
	if t.pooled {
		p = newPooledPage(t.schema.TupleSize(), len(t.pages))
	} else {
		p = NewPage(t.schema.TupleSize())
		p.setID(len(t.pages))
	}
	t.pages = append(t.pages, p)
	return p
}

// Version returns the table's mutation counter. It advances on every
// append and truncate, and on BumpVersion for in-place page mutations, so
// a cached derived form of the heap (e.g. the DSM engine's vertical
// decomposition) is valid exactly while the version it was built at still
// matches. Readers observe it under the same table lock that orders the
// mutations themselves.
func (t *Table) Version() uint64 { return t.version }

// BumpVersion records a mutation performed directly on page bytes (the
// SQL UPDATE path writes fields in place), invalidating cached derived
// forms. Call once per mutation batch under the writer lock.
func (t *Table) BumpVersion() { t.version++ }

// Append adds a tuple (raw bytes of schema width) to the table.
func (t *Table) Append(tuple []byte) {
	if !t.lastPage().Append(tuple) {
		panic("storage.Table.Append: fresh page rejected tuple")
	}
	t.rows++
	t.version++
}

// AppendRow encodes and appends a row of datums.
func (t *Table) AppendRow(row ...types.Datum) {
	t.Append(t.schema.EncodeRow(row...))
}

// AppendSlot reserves the next tuple slot and returns it for the caller
// to fill in place — the zero-copy variant of Append the generated fused
// pipelines use. The caller must overwrite every byte of the slot: on
// pooled tables the backing frame carries a previous user's bytes.
func (t *Table) AppendSlot() []byte {
	p := t.lastPage()
	ts := p.TupleSize()
	n := p.NumTuples()
	off := HeaderSize + n*ts
	p.setNumTuples(n + 1)
	t.rows++
	t.version++
	return p.buf[off : off+ts : off+ts]
}

// Tuple returns the raw bytes of global row r (scanning page by page).
// Intended for tests and small results, not inner loops.
func (t *Table) Tuple(r int) []byte {
	for _, p := range t.pages {
		if r < p.NumTuples() {
			return p.Tuple(r)
		}
		r -= p.NumTuples()
	}
	panic(fmt.Sprintf("storage.Table.Tuple: row %d out of range", r))
}

// Scan invokes fn for every tuple in heap order. The tuple slice aliases
// page memory. fn returning false stops the scan.
func (t *Table) Scan(fn func(tuple []byte) bool) {
	for _, p := range t.pages {
		n := p.NumTuples()
		ts := p.TupleSize()
		data := p.Data()
		for i := 0; i < n; i++ {
			if !fn(data[i*ts : i*ts+ts]) {
				return
			}
		}
	}
}

// Rows decodes every tuple into boxed datums; intended for tests and result
// presentation.
func (t *Table) Rows() [][]types.Datum {
	out := make([][]types.Datum, 0, t.rows)
	t.Scan(func(tuple []byte) bool {
		out = append(out, t.schema.DecodeRow(tuple))
		return true
	})
	return out
}

// Truncate removes all tuples but keeps the schema.
func (t *Table) Truncate() {
	t.pages = nil
	t.rows = 0
	t.version++
}
