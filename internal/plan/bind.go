package plan

import (
	"sync"

	"hique/internal/types"
)

// CheckArgs validates a bind vector against the plan's parameter slots:
// exact arity and, per slot, the kind the compared column expects.
// Arguments must already be coerced (Bind and BindInto perform no
// conversion).
func (p *Plan) CheckArgs(args []types.Datum) error {
	return checkParamArgs(p.Params, args)
}

// Bind resolves every parameter slot of a parameterized plan against a
// bind vector, returning an execution-ready plan in which each Filter and
// IndexScanSpec carries its concrete comparison value. The receiver is
// never modified — the plan cache shares one parameterized plan across
// concurrent executions, and each execution binds its own copy — so Bind
// copies exactly the descriptors that hold parameters and shares
// everything else (schemas, value directories, statistics).
//
// Arguments must already be coerced to the slot kinds in Params; Bind
// validates arity and kind but performs no conversion.
func (p *Plan) Bind(args []types.Datum) (*Plan, error) {
	return p.bind(nil, args)
}

// BindScratch is a reusable execution copy for Bind: all the memory a
// bound plan needs — the plan header, join and stage descriptors, and the
// filter/index-spec backing arrays — retained across executions so a
// repeated Prepared.Run or plan-cache hit binds into the same scratch
// instead of deep-copying afresh. Obtain one with GetBindScratch, hand it
// back with PutBindScratch once the execution that used the bound plan
// has completed; the bound plan aliases scratch memory and must not be
// used afterwards.
type BindScratch struct {
	plan     Plan
	joins    []Join
	joinPtrs []*Join
	stages   []Stage
	agg      Agg
	final    Stage
	filters  []Filter
	specs    []IndexScanSpec
}

var bindScratchPool = sync.Pool{New: func() any { return new(BindScratch) }}

// GetBindScratch draws a scratch from the process-wide pool.
func GetBindScratch() *BindScratch { return bindScratchPool.Get().(*BindScratch) }

// PutBindScratch returns a scratch to the pool. The caller must be done
// with every plan bound into it.
func PutBindScratch(s *BindScratch) { bindScratchPool.Put(s) }

// BindInto is Bind with the execution copy drawn from scratch instead of
// the heap: the returned plan and its descriptors alias scratch memory,
// so repeated executions of the same compiled query recycle one
// allocation-free copy per concurrent caller.
func (p *Plan) BindInto(scratch *BindScratch, args []types.Datum) (*Plan, error) {
	return p.bind(scratch, args)
}

func (p *Plan) bind(scratch *BindScratch, args []types.Datum) (*Plan, error) {
	if err := p.CheckArgs(args); err != nil {
		return nil, err
	}
	if len(p.Params) == 0 {
		return p, nil
	}

	b := binder{scratch: scratch, args: args}
	var q *Plan
	if scratch != nil {
		scratch.joins = scratch.joins[:0]
		scratch.joinPtrs = scratch.joinPtrs[:0]
		scratch.stages = scratch.stages[:0]
		scratch.filters = scratch.filters[:0]
		scratch.specs = scratch.specs[:0]
		scratch.plan = *p
		q = &scratch.plan
	} else {
		q = new(Plan)
		*q = *p
	}
	q.Params = nil // the copy is fully bound; Bind on it again is an arity error

	if len(p.Joins) > 0 {
		joins := b.joinSlice(len(p.Joins))
		ptrs := b.joinPtrSlice(len(p.Joins))
		for i, j := range p.Joins {
			joins[i] = *j
			joins[i].Inputs = b.stageSlice(len(j.Inputs))
			for k := range j.Inputs {
				joins[i].Inputs[k] = b.bindStage(&j.Inputs[k])
			}
			ptrs[i] = &joins[i]
		}
		q.Joins = ptrs
	} else {
		q.Joins = nil
	}
	if p.Agg != nil {
		var na *Agg
		if scratch != nil {
			na = &scratch.agg
		} else {
			na = new(Agg)
		}
		*na = *p.Agg
		na.Input = b.bindStage(&p.Agg.Input)
		q.Agg = na
	}
	if p.Final != nil {
		var nf *Stage
		if scratch != nil {
			nf = &scratch.final
		} else {
			nf = new(Stage)
		}
		*nf = b.bindStage(p.Final)
		q.Final = nf
	}
	return q, nil
}

// binder allocates the slices a bound plan needs, drawing from the
// scratch's retained backing arrays when one is supplied.
type binder struct {
	scratch *BindScratch
	args    []types.Datum
}

func (b *binder) joinSlice(n int) []Join {
	if b.scratch == nil {
		return make([]Join, n)
	}
	off := len(b.scratch.joins)
	b.scratch.joins = grow(b.scratch.joins, n)
	return b.scratch.joins[off : off+n]
}

func (b *binder) joinPtrSlice(n int) []*Join {
	if b.scratch == nil {
		return make([]*Join, n)
	}
	off := len(b.scratch.joinPtrs)
	b.scratch.joinPtrs = grow(b.scratch.joinPtrs, n)
	return b.scratch.joinPtrs[off : off+n]
}

func (b *binder) stageSlice(n int) []Stage {
	if b.scratch == nil {
		return make([]Stage, n)
	}
	off := len(b.scratch.stages)
	b.scratch.stages = grow(b.scratch.stages, n)
	return b.scratch.stages[off : off+n]
}

func (b *binder) filterSlice(n int) []Filter {
	if b.scratch == nil {
		return make([]Filter, n)
	}
	off := len(b.scratch.filters)
	b.scratch.filters = grow(b.scratch.filters, n)
	return b.scratch.filters[off : off+n]
}

func (b *binder) spec() *IndexScanSpec {
	if b.scratch == nil {
		return new(IndexScanSpec)
	}
	b.scratch.specs = grow(b.scratch.specs, 1)
	return &b.scratch.specs[len(b.scratch.specs)-1]
}

// grow extends s by n elements, reusing capacity when available.
func grow[T any](s []T, n int) []T {
	if len(s)+n <= cap(s) {
		return s[:len(s)+n]
	}
	out := make([]T, len(s)+n, 2*(len(s)+n))
	copy(out, s)
	return out
}

// bindStage returns a copy of the stage with parameter slots substituted.
// Stages without parameters are copied by value but share their slices.
func (b *binder) bindStage(st *Stage) Stage {
	out := *st
	hasParam := false
	for i := range st.Filters {
		if _, ok := st.Filters[i].Slot(); ok {
			hasParam = true
			break
		}
	}
	if hasParam {
		fs := b.filterSlice(len(st.Filters))
		copy(fs, st.Filters)
		for i := range fs {
			if slot, ok := fs[i].Slot(); ok {
				fs[i].Val = b.args[slot]
				fs[i].Param = 0
			}
		}
		out.Filters = fs
	}
	if st.IndexScan != nil {
		if slot, ok := st.IndexScan.Slot(); ok {
			spec := b.spec()
			*spec = *st.IndexScan
			spec.Value = b.args[slot]
			spec.Param = 0
			out.IndexScan = spec
		}
	}
	return out
}
