package plan

import (
	"fmt"

	"hique/internal/types"
)

// Bind resolves every parameter slot of a parameterized plan against a
// bind vector, returning an execution-ready plan in which each Filter and
// IndexScanSpec carries its concrete comparison value. The receiver is
// never modified — the plan cache shares one parameterized plan across
// concurrent executions, and each execution binds its own copy — so Bind
// copies exactly the descriptors that hold parameters and shares
// everything else (schemas, value directories, statistics).
//
// Arguments must already be coerced to the slot kinds in Params; Bind
// validates arity and kind but performs no conversion.
func (p *Plan) Bind(args []types.Datum) (*Plan, error) {
	if len(args) != len(p.Params) {
		return nil, fmt.Errorf("plan: statement wants %d parameters, got %d", len(p.Params), len(args))
	}
	if len(p.Params) == 0 {
		return p, nil
	}
	for i := range args {
		if args[i].Kind != p.Params[i].Kind {
			return nil, fmt.Errorf("plan: parameter %d: %v value bound to %v column %s",
				i+1, args[i].Kind, p.Params[i].Kind, p.Params[i].Column)
		}
	}

	q := *p
	q.Params = nil // the copy is fully bound; Bind on it again is an arity error
	q.Joins = make([]*Join, len(p.Joins))
	for i, j := range p.Joins {
		nj := *j
		nj.Inputs = make([]Stage, len(j.Inputs))
		for k := range j.Inputs {
			nj.Inputs[k] = bindStage(&j.Inputs[k], args)
		}
		q.Joins[i] = &nj
	}
	if p.Agg != nil {
		na := *p.Agg
		na.Input = bindStage(&p.Agg.Input, args)
		q.Agg = &na
	}
	if p.Final != nil {
		nf := bindStage(p.Final, args)
		q.Final = &nf
	}
	return &q, nil
}

// bindStage returns a copy of the stage with parameter slots substituted.
// Stages without parameters are copied by value but share their slices.
func bindStage(st *Stage, args []types.Datum) Stage {
	out := *st
	hasParam := false
	for i := range st.Filters {
		if _, ok := st.Filters[i].Slot(); ok {
			hasParam = true
			break
		}
	}
	if hasParam {
		out.Filters = make([]Filter, len(st.Filters))
		copy(out.Filters, st.Filters)
		for i := range out.Filters {
			if slot, ok := out.Filters[i].Slot(); ok {
				out.Filters[i].Val = args[slot]
				out.Filters[i].Param = 0
			}
		}
	}
	if st.IndexScan != nil {
		if slot, ok := st.IndexScan.Slot(); ok {
			spec := *st.IndexScan
			spec.Value = args[slot]
			spec.Param = 0
			out.IndexScan = &spec
		}
	}
	return out
}
