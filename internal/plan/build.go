package plan

import (
	"fmt"
	"math"
	"strings"

	"hique/internal/catalog"
	"hique/internal/sql"
	"hique/internal/types"
)

// Options tune the optimizer. The defaults implement the paper's
// heuristics; experiments override them to force specific algorithms
// (e.g. Figure 7 compares merge- against hybrid-join on the same query).
type Options struct {
	// EnableJoinTeams lets the optimizer fuse joins that share a key
	// equivalence class into one multi-way team join (§V-B).
	EnableJoinTeams bool
	// ForceJoinAlg overrides join algorithm selection when non-nil.
	ForceJoinAlg *JoinAlgorithm
	// ForceAggAlg overrides aggregation algorithm selection when non-nil.
	ForceAggAlg *AggAlgorithm
	// L2CacheBytes bounds cache-fitting decisions (partition counts,
	// map-aggregation directory budgets).
	L2CacheBytes int
	// FinePartitionMaxValues caps the key domain for fine partitioning.
	FinePartitionMaxValues int
	// Parallelism is the worker target for morsel-driven parallel
	// execution of the fused pipelines: 0 resolves to GOMAXPROCS at
	// compile time, 1 forces serial execution. Small inputs stay serial
	// regardless (the codegen layer's catalogue-estimate threshold).
	Parallelism int
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		EnableJoinTeams:        true,
		L2CacheBytes:           2 << 20,
		FinePartitionMaxValues: 1024,
	}
}

// Build optimises a parsed statement into an operator-descriptor plan using
// the default options.
func Build(stmt *sql.SelectStmt, cat *catalog.Catalog) (*Plan, error) {
	return BuildWithOptions(stmt, cat, DefaultOptions())
}

// BuildWithOptions optimises with explicit options.
func BuildWithOptions(stmt *sql.SelectStmt, cat *catalog.Catalog, opts Options) (*Plan, error) {
	b := &builder{stmt: stmt, cat: cat, opts: opts}
	if stmt.NumParams > 0 {
		b.params = make([]ParamSlot, stmt.NumParams)
		b.paramsSeen = make([]bool, stmt.NumParams)
	}
	if err := b.resolveTables(); err != nil {
		return nil, err
	}
	if err := b.expandStar(); err != nil {
		return nil, err
	}
	if err := b.classifyPredicates(); err != nil {
		return nil, err
	}
	b.collectNeededColumns()
	b.estimateBaseCardinalities()
	if err := b.planJoins(); err != nil {
		return nil, err
	}
	if err := b.planOutput(); err != nil {
		return nil, err
	}
	if err := b.planHaving(); err != nil {
		return nil, err
	}
	if err := b.planSort(); err != nil {
		return nil, err
	}
	for i, seen := range b.paramsSeen {
		if !seen {
			return nil, fmt.Errorf("plan: parameter %d is not a comparison operand (parameters are supported in WHERE predicates only)", i+1)
		}
	}
	b.plan.Stmt = stmt
	b.plan.Tables = b.tables
	b.plan.Params = b.params
	b.plan.Limit = stmt.Limit
	b.plan.Parallelism = opts.Parallelism
	return &b.plan, nil
}

type joinEdge struct {
	lt, lc, rt, rc int
}

type filterPred struct {
	col int
	op  sql.CmpOp
	val types.Datum
	// param is 1 + the bind-vector slot supplying the value at run time;
	// 0 (the zero value) means val is a baked literal — the same safe
	// encoding Filter.Param uses.
	param int
}

// filter lowers the predicate to its descriptor form.
func (f filterPred) filter() Filter {
	return Filter{Col: f.col, Op: f.op, Val: f.val, Param: f.param}
}

// relation tracks the current state of a joined input during planning:
// either a base table or the materialised output of a join.
type relation struct {
	ref    InputRef
	schema *types.Schema
	est    float64
	// loc maps (table, column) to a position in schema. For base tables
	// it is the identity over that table's columns.
	loc map[[2]int]int
	// sortedBy is the column equivalence class id the relation is
	// physically ordered on, or -1 (interesting orders, §IV).
	sortedBy int
}

type builder struct {
	stmt *sql.SelectStmt
	cat  *catalog.Catalog
	opts Options

	tables   []TableInput
	aliasIdx map[string]int

	filters     [][]filterPred // per table
	edges       []joinEdge
	needed      []map[int]bool // per table: columns required beyond filtering
	est         []float64      // per table: rows after filters
	classOf     map[[2]int]int // (table,col) -> join equivalence class
	numClasses  int
	plan        Plan
	filtersUsed []bool // per table: filters already applied in some stage

	// params collects the bind-vector slot descriptions; paramsSeen
	// tracks which placeholders landed in a supported position.
	params     []ParamSlot
	paramsSeen []bool
}

func (b *builder) resolveTables() error {
	if len(b.stmt.From) == 0 {
		return fmt.Errorf("plan: query has no FROM clause")
	}
	b.aliasIdx = make(map[string]int, len(b.stmt.From))
	for _, ref := range b.stmt.From {
		e, err := b.cat.Lookup(ref.Name)
		if err != nil {
			return err
		}
		if _, dup := b.aliasIdx[ref.Alias]; dup {
			return fmt.Errorf("plan: duplicate table alias %q", ref.Alias)
		}
		b.aliasIdx[ref.Alias] = len(b.tables)
		b.tables = append(b.tables, TableInput{Name: ref.Name, Alias: ref.Alias, Entry: e})
	}
	b.filters = make([][]filterPred, len(b.tables))
	b.needed = make([]map[int]bool, len(b.tables))
	b.filtersUsed = make([]bool, len(b.tables))
	for i := range b.needed {
		b.needed[i] = make(map[int]bool)
	}
	return nil
}

// expandStar replaces SELECT * with the full column list.
func (b *builder) expandStar() error {
	if len(b.stmt.Select) != 1 {
		return nil
	}
	col, ok := b.stmt.Select[0].Expr.(*sql.ColRef)
	if !ok || col.Column != "*" {
		return nil
	}
	var items []sql.SelectItem
	for ti := range b.tables {
		s := b.tables[ti].Entry.Table.Schema()
		for ci := 0; ci < s.NumColumns(); ci++ {
			items = append(items, sql.SelectItem{Expr: &sql.ColRef{
				Table:  b.tables[ti].Alias,
				Column: s.Column(ci).Name,
			}})
		}
	}
	b.stmt.Select = items
	return nil
}

// resolveColumn binds a column reference to (table index, column index).
func (b *builder) resolveColumn(c *sql.ColRef) (int, int, error) {
	if c.Table != "" {
		ti, ok := b.aliasIdx[c.Table]
		if !ok {
			return 0, 0, fmt.Errorf("plan: unknown table alias %q", c.Table)
		}
		ci := b.tables[ti].Entry.Table.Schema().ColumnIndex(c.Column)
		if ci < 0 {
			return 0, 0, fmt.Errorf("plan: table %q has no column %q", c.Table, c.Column)
		}
		return ti, ci, nil
	}
	ti, ci := -1, -1
	for i := range b.tables {
		if j := b.tables[i].Entry.Table.Schema().ColumnIndex(c.Column); j >= 0 {
			if ti >= 0 {
				return 0, 0, fmt.Errorf("plan: ambiguous column %q", c.Column)
			}
			ti, ci = i, j
		}
	}
	if ti < 0 {
		return 0, 0, fmt.Errorf("plan: unknown column %q", c.Column)
	}
	return ti, ci, nil
}

// LiteralDatum coerces a literal expression to a datum of the given column
// kind. It is the exact coercion the literal-specialized path applies at
// plan time, exported so auto-parameterization can bind lifted literals
// value-identically.
func LiteralDatum(e sql.Expr, kind types.Kind) (types.Datum, error) {
	return literalDatum(e, kind)
}

// literalDatum coerces a literal expression to a datum of the column kind.
func literalDatum(e sql.Expr, kind types.Kind) (types.Datum, error) {
	switch v := e.(type) {
	case *sql.IntLit:
		switch kind {
		case types.Int, types.Date:
			return types.Datum{Kind: kind, I: v.Value}, nil
		case types.Float:
			return types.FloatDatum(float64(v.Value)), nil
		}
	case *sql.FloatLit:
		if kind == types.Float {
			return types.FloatDatum(v.Value), nil
		}
	case *sql.DateLit:
		switch kind {
		case types.Date, types.Int:
			return types.Datum{Kind: kind, I: v.Days}, nil
		}
	case *sql.StringLit:
		if kind == types.String {
			return types.StringDatum(v.Value), nil
		}
	}
	return types.Datum{}, fmt.Errorf("plan: literal %s incompatible with %v column", e, kind)
}

func isLiteral(e sql.Expr) bool {
	switch e.(type) {
	case *sql.IntLit, *sql.FloatLit, *sql.StringLit, *sql.DateLit:
		return true
	}
	return false
}

// isConstOperand accepts a filter's comparison operand: a literal or a
// bind-parameter placeholder.
func isConstOperand(e sql.Expr) bool {
	if _, ok := e.(*sql.Param); ok {
		return true
	}
	return isLiteral(e)
}

// constOperand resolves a filter's comparison operand — a '?' placeholder
// passes through, and arithmetic over literals folds to a single literal,
// so predicates like l_shipdate <= DATE '1998-12-01' - 90 bake to a plain
// constant at plan time. Returns nil when the operand is not constant.
func constOperand(e sql.Expr) sql.Expr {
	if _, ok := e.(*sql.Param); ok {
		return e
	}
	return foldConst(e)
}

// foldConst evaluates an arithmetic expression over literals to a single
// literal, mirroring ArithExpr's promotion rules: the result is Float when
// either side is Float or the operator is division, integer otherwise.
// DATE literals participate as their day numbers (ColExpr of Date kind
// behaves the same way under ArithExpr), so the folded integer coerces
// against Date columns through literalDatum exactly as a DateLit would.
// Returns nil when the expression is not constant.
func foldConst(e sql.Expr) sql.Expr {
	switch v := e.(type) {
	case *sql.IntLit, *sql.FloatLit, *sql.StringLit, *sql.DateLit:
		return e
	case *sql.BinaryExpr:
		l, r := foldConst(v.Left), foldConst(v.Right)
		if l == nil || r == nil {
			return nil
		}
		li, lf, lFloat, ok := litNum(l)
		if !ok {
			return nil
		}
		ri, rf, rFloat, ok := litNum(r)
		if !ok {
			return nil
		}
		if lFloat || rFloat || v.Op == sql.OpDiv {
			var f float64
			switch v.Op {
			case sql.OpAdd:
				f = lf + rf
			case sql.OpSub:
				f = lf - rf
			case sql.OpMul:
				f = lf * rf
			case sql.OpDiv:
				if rf == 0 {
					return nil
				}
				f = lf / rf
			}
			return &sql.FloatLit{Value: f}
		}
		var n int64
		switch v.Op {
		case sql.OpAdd:
			n = li + ri
		case sql.OpSub:
			n = li - ri
		case sql.OpMul:
			n = li * ri
		}
		return &sql.IntLit{Value: n}
	}
	return nil
}

// litNum decodes a numeric literal as both integer and float views.
func litNum(e sql.Expr) (i int64, f float64, isFloat, ok bool) {
	switch v := e.(type) {
	case *sql.IntLit:
		return v.Value, float64(v.Value), false, true
	case *sql.FloatLit:
		return 0, v.Value, true, true
	case *sql.DateLit:
		return v.Days, float64(v.Days), false, true
	}
	return 0, 0, false, false
}

// classifyPredicates splits WHERE conjuncts into per-table selections and
// equi-join edges, and computes join-key equivalence classes.
func (b *builder) classifyPredicates() error {
	for i := range b.stmt.Where {
		p := &b.stmt.Where[i]
		lCol, lIsCol := p.Left.(*sql.ColRef)
		rCol, rIsCol := p.Right.(*sql.ColRef)
		switch {
		case lIsCol && rIsCol:
			lt, lc, err := b.resolveColumn(lCol)
			if err != nil {
				return err
			}
			rt, rc, err := b.resolveColumn(rCol)
			if err != nil {
				return err
			}
			if lt == rt {
				return fmt.Errorf("plan: same-table column comparison %s is not supported", p)
			}
			if p.Op != sql.CmpEq {
				return fmt.Errorf("plan: only equi-joins are supported, found %s", p)
			}
			lk := b.tables[lt].Entry.Table.Schema().Column(lc).Kind
			rk := b.tables[rt].Entry.Table.Schema().Column(rc).Kind
			if lk != rk {
				return fmt.Errorf("plan: join key kind mismatch in %s", p)
			}
			b.edges = append(b.edges, joinEdge{lt, lc, rt, rc})
		case lIsCol:
			operand := constOperand(p.Right)
			if operand == nil {
				return fmt.Errorf("plan: unsupported predicate %s", p)
			}
			if err := b.addFilter(lCol, p.Op, operand); err != nil {
				return err
			}
		case rIsCol:
			operand := constOperand(p.Left)
			if operand == nil {
				return fmt.Errorf("plan: unsupported predicate %s", p)
			}
			if err := b.addFilter(rCol, p.Op.Flip(), operand); err != nil {
				return err
			}
		default:
			return fmt.Errorf("plan: unsupported predicate %s", p)
		}
	}
	b.buildEquivalenceClasses()
	return nil
}

func (b *builder) addFilter(col *sql.ColRef, op sql.CmpOp, operand sql.Expr) error {
	ti, ci, err := b.resolveColumn(col)
	if err != nil {
		return err
	}
	c := b.tables[ti].Entry.Table.Schema().Column(ci)
	if prm, ok := operand.(*sql.Param); ok {
		if prm.Index < 0 || prm.Index >= len(b.params) {
			return fmt.Errorf("plan: placeholder index %d out of range (statement has %d)", prm.Index, len(b.params))
		}
		// No Size: comparison slots never width-check — an oversized
		// string is a legal comparand (it simply never matches equality).
		b.params[prm.Index] = ParamSlot{Kind: c.Kind, Column: b.tables[ti].Alias + "." + c.Name}
		b.paramsSeen[prm.Index] = true
		b.filters[ti] = append(b.filters[ti], filterPred{col: ci, op: op, param: prm.Index + 1})
		return nil
	}
	d, err := literalDatum(operand, c.Kind)
	if err != nil {
		return err
	}
	b.filters[ti] = append(b.filters[ti], filterPred{col: ci, op: op, val: d})
	return nil
}

// buildEquivalenceClasses runs union-find over join-key columns.
func (b *builder) buildEquivalenceClasses() {
	parent := map[[2]int][2]int{}
	var find func(x [2]int) [2]int
	find = func(x [2]int) [2]int {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, c [2]int) { parent[find(a)] = find(c) }
	for _, e := range b.edges {
		union([2]int{e.lt, e.lc}, [2]int{e.rt, e.rc})
	}
	b.classOf = map[[2]int]int{}
	classID := map[[2]int]int{}
	for x := range parent {
		root := find(x)
		id, ok := classID[root]
		if !ok {
			id = b.numClasses
			classID[root] = id
			b.numClasses++
		}
		b.classOf[x] = id
	}
}

// collectNeededColumns marks every column referenced outside filters so
// staging keeps it (projection pushdown, §IV step 1).
func (b *builder) collectNeededColumns() {
	mark := func(c *sql.ColRef) {
		if ti, ci, err := b.resolveColumn(c); err == nil {
			b.needed[ti][ci] = true
		}
	}
	for i := range b.stmt.Select {
		sql.WalkColumns(b.stmt.Select[i].Expr, mark)
	}
	for i := range b.stmt.GroupBy {
		mark(&b.stmt.GroupBy[i])
	}
	for i := range b.stmt.OrderBy {
		sql.WalkColumns(b.stmt.OrderBy[i].Expr, mark)
	}
	for _, e := range b.edges {
		b.needed[e.lt][e.lc] = true
		b.needed[e.rt][e.rc] = true
	}
}

func (b *builder) estimateBaseCardinalities() {
	b.est = make([]float64, len(b.tables))
	for i := range b.tables {
		rows := float64(b.tables[i].Entry.Stats.Rows)
		for _, f := range b.filters[i] {
			rows *= filterSelectivity(f, &b.tables[i].Entry.Stats.Columns[f.col])
		}
		if rows < 1 {
			rows = 1
		}
		b.est[i] = rows
	}
}

func filterSelectivity(f filterPred, cs *catalog.ColumnStats) float64 {
	dv := float64(cs.DistinctValues)
	if dv < 1 {
		dv = 1
	}
	switch f.op {
	case sql.CmpEq:
		return 1 / dv
	case sql.CmpNe:
		return 1 - 1/dv
	default:
		// Parameterized range predicate: the constant is unknown at plan
		// time, so estimate from the catalogue default. Equality and
		// inequality above never read the value, so they estimate
		// identically with and without parameterization; only range
		// interpolation degrades (DESIGN.md documents the literal-
		// specialized fallback for value-sensitive decisions).
		if f.param > 0 {
			return 1.0 / 3
		}
		// Range predicate: interpolate for integer domains.
		if (f.val.Kind == types.Int || f.val.Kind == types.Date) && cs.Max > cs.Min {
			frac := float64(f.val.I-cs.Min) / float64(cs.Max-cs.Min)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			if f.op == sql.CmpGt || f.op == sql.CmpGe {
				frac = 1 - frac
			}
			if frac < 0.01 {
				frac = 0.01
			}
			return frac
		}
		return 1.0 / 3
	}
}

// keyDistinct estimates the number of distinct key values of a base-table
// column, clamped by the filtered cardinality.
func (b *builder) keyDistinct(ti, ci int) float64 {
	dv := float64(b.tables[ti].Entry.Stats.Columns[ci].DistinctValues)
	if dv < 1 {
		dv = 1
	}
	if dv > b.est[ti] {
		dv = b.est[ti]
	}
	return dv
}

// --- Join planning ---------------------------------------------------------

func (b *builder) planJoins() error {
	if len(b.tables) == 1 {
		return nil
	}
	if len(b.edges) == 0 {
		return fmt.Errorf("plan: cross products are not supported (no join predicate)")
	}

	// Join-team detection: if every join key falls into one equivalence
	// class that touches every table, the whole query is one team (§V-B).
	if b.opts.EnableJoinTeams && b.numClasses == 1 {
		touched := map[int]bool{}
		for _, e := range b.edges {
			touched[e.lt] = true
			touched[e.rt] = true
		}
		if len(touched) == len(b.tables) && len(b.tables) > 2 {
			return b.planTeamJoin()
		}
	}
	return b.planBinaryJoins()
}

// planTeamJoin emits a single n-way join descriptor over all tables.
func (b *builder) planTeamJoin() error {
	// Key column per table: the column in the (single) equivalence class.
	keyCols := make([]int, len(b.tables))
	for i := range keyCols {
		keyCols[i] = -1
	}
	for xy := range b.classOf {
		keyCols[xy[0]] = xy[1]
	}
	for i, kc := range keyCols {
		if kc < 0 {
			return fmt.Errorf("plan: table %q missing from join team", b.tables[i].Alias)
		}
	}

	alg := b.chooseTeamAlgorithm(keyCols)
	j := &Join{Alg: alg}
	est := 1.0
	var maxDV float64 = 1
	for ti := range b.tables {
		st, origins := b.stageBaseTable(ti, keyCols[ti], alg)
		j.Inputs = append(j.Inputs, *st)
		j.Keys = append(j.Keys, b.stagedKeyPos(origins, ti, keyCols[ti]))
		est *= b.est[ti]
		if dv := b.keyDistinct(ti, keyCols[ti]); dv > maxDV {
			maxDV = dv
		}
	}
	for i := 0; i < len(b.tables)-1; i++ {
		est /= maxDV
	}
	j.EstRows = est
	b.finishJoinSchema(j)
	b.plan.Joins = append(b.plan.Joins, j)
	return nil
}

func (b *builder) chooseTeamAlgorithm(keyCols []int) JoinAlgorithm {
	if b.opts.ForceJoinAlg != nil {
		return *b.opts.ForceJoinAlg
	}
	// Merge team when the largest input sorts comfortably; hybrid when
	// inputs are large enough that partitioned sorting pays off.
	var maxBytes float64
	for ti := range b.tables {
		bytes := b.est[ti] * float64(b.stagedWidth(ti, keyCols[ti]))
		if bytes > maxBytes {
			maxBytes = bytes
		}
	}
	if maxBytes > 8*float64(b.opts.L2CacheBytes) {
		return HybridJoin
	}
	return MergeJoin
}

// planBinaryJoins orders binary joins greedily by estimated output size.
func (b *builder) planBinaryJoins() error {
	n := len(b.tables)
	joined := make([]bool, n)

	// adjacency: for each pair, the first connecting edge.
	adj := make(map[[2]int]joinEdge)
	for _, e := range b.edges {
		key := [2]int{e.lt, e.rt}
		if _, ok := adj[key]; !ok {
			adj[key] = e
		}
		rev := [2]int{e.rt, e.lt}
		if _, ok := adj[rev]; !ok {
			adj[rev] = joinEdge{e.rt, e.rc, e.lt, e.lc}
		}
	}

	// Pick the starting pair minimising estimated output.
	bestL, bestR := -1, -1
	bestEst := math.Inf(1)
	for key, e := range adj {
		if key[0] > key[1] {
			continue
		}
		est := b.est[e.lt] * b.est[e.rt] / math.Max(b.keyDistinct(e.lt, e.lc), b.keyDistinct(e.rt, e.rc))
		if est < bestEst {
			bestEst = est
			bestL, bestR = e.lt, e.rt
		}
	}
	if bestL < 0 {
		return fmt.Errorf("plan: join graph is disconnected")
	}

	firstEdge := adj[[2]int{bestL, bestR}]
	cur, err := b.emitBinaryJoin(nil, firstEdge, bestEst)
	if err != nil {
		return err
	}
	joined[bestL], joined[bestR] = true, true

	for count := 2; count < n; count++ {
		// Find the unjoined table connected to the current relation
		// that minimises the next intermediate.
		next := -1
		var nextEdge joinEdge
		nextEst := math.Inf(1)
		for t := 0; t < n; t++ {
			if joined[t] {
				continue
			}
			for s := 0; s < n; s++ {
				if !joined[s] {
					continue
				}
				e, ok := adj[[2]int{s, t}]
				if !ok {
					continue
				}
				est := cur.est * b.est[t] / math.Max(b.keyDistinct(t, e.rc), 1)
				if est < nextEst {
					nextEst = est
					next = t
					nextEdge = e
				}
			}
		}
		if next < 0 {
			return fmt.Errorf("plan: join graph is disconnected")
		}
		cur, err = b.emitBinaryJoin(cur, nextEdge, nextEst)
		if err != nil {
			return err
		}
		joined[next] = true
	}
	return nil
}

// stagedWidth estimates the staged tuple width of a base table.
func (b *builder) stagedWidth(ti, keyCol int) int {
	s := b.tables[ti].Entry.Table.Schema()
	w := 0
	for ci := range b.needed[ti] {
		w += s.Column(ci).Size
	}
	if !b.needed[ti][keyCol] {
		w += s.Column(keyCol).Size
	}
	if w == 0 {
		w = s.Column(keyCol).Size
	}
	return w
}

// stageBaseTable builds the staging descriptor for a base table input of a
// join: filter, project to needed columns, and pre-process per algorithm.
// It returns the stage and the origin (table, column) of each staged column.
func (b *builder) stageBaseTable(ti, keyCol int, alg JoinAlgorithm) (*Stage, [][2]int) {
	schema := b.tables[ti].Entry.Table.Schema()
	st := &Stage{Input: InputRef{Base: ti}, EstRows: b.est[ti]}
	if !b.filtersUsed[ti] {
		for _, f := range b.filters[ti] {
			st.Filters = append(st.Filters, f.filter())
		}
		b.filtersUsed[ti] = true
		b.attachIndexScan(st, ti)
	}

	cols := make([]int, 0, len(b.needed[ti])+1)
	for ci := 0; ci < schema.NumColumns(); ci++ {
		if b.needed[ti][ci] || ci == keyCol {
			cols = append(cols, ci)
		}
	}
	origins := make([][2]int, 0, len(cols))
	for _, ci := range cols {
		c := schema.Column(ci)
		st.Cols = append(st.Cols, OutputColumn{
			Name:   b.tables[ti].Alias + "." + c.Name,
			Source: ci,
			Kind:   c.Kind,
			Size:   c.Size,
		})
		origins = append(origins, [2]int{ti, ci})
	}
	st.Schema = stageSchema(st.Cols)
	keyPos := b.stagedKeyPos(origins, ti, keyCol)
	b.applyJoinStaging(st, keyPos, ti, keyCol, alg)
	return st, origins
}

func (b *builder) stagedKeyPos(origins [][2]int, ti, keyCol int) int {
	for i, o := range origins {
		if o == [2]int{ti, keyCol} {
			return i
		}
	}
	panic("plan: staged key column missing")
}

// applyJoinStaging sets the stage action for a join input per algorithm.
func (b *builder) applyJoinStaging(st *Stage, keyPos, ti, keyCol int, alg JoinAlgorithm) {
	switch alg {
	case MergeJoin:
		st.Action = StageSort
		st.SortKeys = []int{keyPos}
	case FinePartitionJoin:
		st.Action = StagePartitionFine
		st.PartitionKey = keyPos
		st.FineValues = b.fineDirectory(ti, keyCol)
	case HybridJoin:
		st.Action = StagePartitionCoarse
		st.PartitionKey = keyPos
		st.Partitions = b.coarsePartitions(st)
		st.SortKeys = []int{keyPos}
		// Partitions are sorted lazily at join time, when pairs are
		// cache-resident (§V-B); the stage records the sort keys so
		// the join knows what order to establish.
	}
}

// fineDirectory returns the sorted distinct values of a base column (the
// value-partition map of §V-B).
func (b *builder) fineDirectory(ti, ci int) []types.Datum {
	cs := &b.tables[ti].Entry.Stats.Columns[ci]
	kind := b.tables[ti].Entry.Table.Schema().Column(ci).Kind
	var out []types.Datum
	switch kind {
	case types.Int, types.Date:
		for _, v := range cs.IntValues {
			out = append(out, types.Datum{Kind: kind, I: v})
		}
	case types.String:
		for _, v := range cs.StrValues {
			out = append(out, types.StringDatum(v))
		}
	}
	return out
}

// coarsePartitions sizes M so the largest expected partition fits in half
// the L2 cache (§V-B).
func (b *builder) coarsePartitions(st *Stage) int {
	bytes := st.EstRows * float64(st.Schema.TupleSize())
	m := int(math.Ceil(bytes / (float64(b.opts.L2CacheBytes) / 2)))
	if m < 1 {
		m = 1
	}
	// Round up to a power of two for cheap modulo.
	p := 1
	for p < m {
		p <<= 1
	}
	return p
}

// emitBinaryJoin appends a join descriptor joining the current relation
// (nil for the first join) with a base table via edge e.
func (b *builder) emitBinaryJoin(cur *relation, e joinEdge, est float64) (*relation, error) {
	var leftStage *Stage
	var leftOrigins [][2]int
	var leftKeyPos int
	var leftSorted bool

	if cur == nil {
		alg := b.chooseBinaryAlgorithm(e, nil)
		lst, lo := b.stageBaseTable(e.lt, e.lc, alg)
		rst, ro := b.stageBaseTable(e.rt, e.rc, alg)
		j := &Join{
			Alg:    alg,
			Inputs: []Stage{*lst, *rst},
			Keys:   []int{b.stagedKeyPos(lo, e.lt, e.lc), b.stagedKeyPos(ro, e.rt, e.rc)},
		}
		j.EstRows = est
		origins := b.finishJoinSchemaWithOrigins(j, [][][2]int{lo, ro})
		b.plan.Joins = append(b.plan.Joins, j)
		return b.relationFromJoin(j, origins, e), nil
	}

	// Left side: previous join output.
	keyClassCol, ok := b.locateInRelation(cur, e.lt, e.lc)
	if !ok {
		// The edge may be stated with the base table on the left.
		e = joinEdge{e.rt, e.rc, e.lt, e.lc}
		keyClassCol, ok = b.locateInRelation(cur, e.lt, e.lc)
		if !ok {
			return nil, fmt.Errorf("plan: join key not present in intermediate result")
		}
	}
	alg := b.chooseBinaryAlgorithm(e, cur)
	leftStage = &Stage{Input: cur.ref, EstRows: cur.est}
	for i := 0; i < cur.schema.NumColumns(); i++ {
		c := cur.schema.Column(i)
		leftStage.Cols = append(leftStage.Cols, OutputColumn{Name: c.Name, Source: i, Kind: c.Kind, Size: c.Size})
	}
	leftStage.Schema = stageSchema(leftStage.Cols)
	leftKeyPos = keyClassCol
	leftSorted = cur.sortedBy >= 0 && cur.sortedBy == b.classOf[[2]int{e.lt, e.lc}]
	for i := range cur.loc {
		leftOrigins = append(leftOrigins, i)
	}
	// Rebuild origins in schema order.
	leftOrigins = make([][2]int, cur.schema.NumColumns())
	for tc, pos := range cur.loc {
		leftOrigins[pos] = tc
	}

	switch alg {
	case MergeJoin:
		if leftSorted {
			leftStage.Action = StageNone // interesting order: already sorted
		} else {
			leftStage.Action = StageSort
			leftStage.SortKeys = []int{leftKeyPos}
		}
	case FinePartitionJoin:
		leftStage.Action = StagePartitionFine
		leftStage.PartitionKey = leftKeyPos
		leftStage.FineValues = b.fineDirectory(e.rt, e.rc)
	case HybridJoin:
		leftStage.Action = StagePartitionCoarse
		leftStage.PartitionKey = leftKeyPos
		leftStage.Partitions = b.coarsePartitions(leftStage)
		leftStage.SortKeys = []int{leftKeyPos}
	}

	rst, ro := b.stageBaseTable(e.rt, e.rc, alg)
	j := &Join{
		Alg:    alg,
		Inputs: []Stage{*leftStage, *rst},
		Keys:   []int{leftKeyPos, b.stagedKeyPos(ro, e.rt, e.rc)},
	}
	j.EstRows = est
	origins := b.finishJoinSchemaWithOrigins(j, [][][2]int{leftOrigins, ro})
	b.plan.Joins = append(b.plan.Joins, j)
	return b.relationFromJoin(j, origins, e), nil
}

// chooseBinaryAlgorithm applies the paper's selection heuristics.
func (b *builder) chooseBinaryAlgorithm(e joinEdge, cur *relation) JoinAlgorithm {
	if b.opts.ForceJoinAlg != nil {
		return *b.opts.ForceJoinAlg
	}
	// Interesting order: if the existing intermediate is already sorted
	// on the key class, merging avoids re-staging entirely.
	if cur != nil && cur.sortedBy >= 0 && cur.sortedBy == b.classOf[[2]int{e.lt, e.lc}] {
		return MergeJoin
	}
	// Index order: when both sides are base tables carrying a fractal
	// B+-tree on a *unique* join key, both inputs stream in key order
	// without paying the sort — an interesting *physical* order (§IV), so
	// merging wins regardless of input size. Uniqueness is what makes the
	// tree order exploitable: with duplicate keys the leaf order differs
	// from the sort's tie permutation, so the executor would have to sort
	// anyway and the small-domain (fine-partition) choice below is better.
	// The fused executor exploits the traversal directly; staged engines
	// still sort, which costs them nothing they would not have paid under
	// the hybrid choice.
	if cur == nil && b.joinKeyIndexOrdered(e.lt, e.lc) && b.joinKeyIndexOrdered(e.rt, e.rc) {
		return MergeJoin
	}
	// Fine partitioning when the key domain is small enough for a
	// cache-resident value directory.
	rightDV := b.tables[e.rt].Entry.Stats.Columns[e.rc].DistinctValues
	if rightDV > 0 && rightDV <= b.opts.FinePartitionMaxValues &&
		len(b.fineDirectory(e.rt, e.rc)) == rightDV {
		return FinePartitionJoin
	}
	// Small inputs: sorting both sides is cheap and the merge's linear
	// access pattern wins.
	leftBytes := b.est[e.lt] * float64(b.stagedWidth(e.lt, e.lc))
	if cur != nil {
		leftBytes = cur.est * 64
	}
	rightBytes := b.est[e.rt] * float64(b.stagedWidth(e.rt, e.rc))
	if leftBytes <= 4*float64(b.opts.L2CacheBytes) && rightBytes <= 4*float64(b.opts.L2CacheBytes) {
		return MergeJoin
	}
	return HybridJoin
}

// joinKeyIndexOrdered reports whether a base table's join-key column is
// indexed AND unique, i.e. the B+-tree's leaf traversal is a total key
// order usable as a staging order (only Int/Date columns are indexable).
func (b *builder) joinKeyIndexOrdered(ti, ci int) bool {
	entry := b.tables[ti].Entry
	stats := &entry.Stats
	if stats.Rows == 0 || stats.Columns[ci].DistinctValues != stats.Rows {
		return false
	}
	return entry.Index(entry.Table.Schema().Column(ci).Name) != nil
}

// reconcilePartitions forces every coarse-partitioned input of a join to
// use the same partition count (corresponding partitions must align).
func reconcilePartitions(j *Join) {
	max := 0
	for i := range j.Inputs {
		if j.Inputs[i].Action == StagePartitionCoarse && j.Inputs[i].Partitions > max {
			max = j.Inputs[i].Partitions
		}
	}
	for i := range j.Inputs {
		if j.Inputs[i].Action == StagePartitionCoarse {
			j.Inputs[i].Partitions = max
		}
	}
}

// finishJoinSchema builds the join output schema keeping every staged
// column from every input.
// reconcileFineDirectories gives every fine-partitioned input the same
// value directory: the intersection of the per-input directories. Keys
// outside the intersection cannot produce join matches, so dropping them
// during staging is both correct and a free semi-join reduction.
func reconcileFineDirectories(j *Join) {
	if j.Alg != FinePartitionJoin {
		return
	}
	var common []types.Datum
	for i := range j.Inputs {
		fv := j.Inputs[i].FineValues
		if len(fv) == 0 {
			continue
		}
		if common == nil {
			common = fv
			continue
		}
		var next []types.Datum
		a, c := 0, 0
		for a < len(common) && c < len(fv) {
			switch cmp := types.Compare(common[a], fv[c]); {
			case cmp < 0:
				a++
			case cmp > 0:
				c++
			default:
				next = append(next, common[a])
				a++
				c++
			}
		}
		common = next
	}
	for i := range j.Inputs {
		if j.Inputs[i].Action == StagePartitionFine {
			j.Inputs[i].FineValues = common
		}
	}
}

func (b *builder) finishJoinSchema(j *Join) {
	reconcilePartitions(j)
	reconcileFineDirectories(j)
	var cols []types.Column
	for i := range j.Inputs {
		st := &j.Inputs[i]
		for c := 0; c < st.Schema.NumColumns(); c++ {
			col := st.Schema.Column(c)
			j.Out = append(j.Out, JoinOutput{Input: i, Col: c})
			cols = append(cols, col)
		}
	}
	j.Schema = types.NewSchema(cols...)
}

func (b *builder) finishJoinSchemaWithOrigins(j *Join, origins [][][2]int) map[[2]int]int {
	b.finishJoinSchema(j)
	loc := map[[2]int]int{}
	pos := 0
	for i := range j.Inputs {
		for c := 0; c < j.Inputs[i].Schema.NumColumns(); c++ {
			if origins != nil && origins[i][c][0] >= 0 {
				loc[origins[i][c]] = pos
			}
			pos++
		}
	}
	return loc
}

func (b *builder) relationFromJoin(j *Join, loc map[[2]int]int, e joinEdge) *relation {
	sorted := -1
	if j.Alg == MergeJoin {
		sorted = b.classOf[[2]int{e.lt, e.lc}]
	}
	return &relation{
		ref:      InputRef{Base: -1, Join: len(b.plan.Joins) - 1},
		schema:   j.Schema,
		est:      j.EstRows,
		loc:      loc,
		sortedBy: sorted,
	}
}

// locateInRelation finds the schema position of a base column inside an
// intermediate relation.
func (b *builder) locateInRelation(r *relation, ti, ci int) (int, bool) {
	pos, ok := r.loc[[2]int{ti, ci}]
	return pos, ok
}

// currentRelation returns the final joined relation, or a pseudo-relation
// over the single base table.
func (b *builder) currentRelation() *relation {
	if len(b.plan.Joins) == 0 {
		s := b.tables[0].Entry.Table.Schema()
		loc := map[[2]int]int{}
		for i := 0; i < s.NumColumns(); i++ {
			loc[[2]int{0, i}] = i
		}
		return &relation{ref: InputRef{Base: 0}, schema: s, est: b.est[0], loc: loc, sortedBy: -1}
	}
	last := b.plan.Joins[len(b.plan.Joins)-1]
	loc := map[[2]int]int{}
	pos := 0
	// Rebuild locations by matching staged column names back to tables.
	for i := range last.Inputs {
		for c := 0; c < last.Inputs[i].Schema.NumColumns(); c++ {
			name := last.Inputs[i].Schema.Column(c).Name
			if ti, ci, ok := b.parseStagedName(name); ok {
				loc[[2]int{ti, ci}] = pos
			}
			pos++
		}
	}
	sorted := -1
	if last.Alg == MergeJoin && len(last.Keys) > 0 {
		name := last.Inputs[0].Schema.Column(last.Keys[0]).Name
		if ti, ci, ok := b.parseStagedName(name); ok {
			if cl, isKey := b.classOf[[2]int{ti, ci}]; isKey {
				sorted = cl
			}
		}
	}
	return &relation{
		ref:      InputRef{Base: -1, Join: len(b.plan.Joins) - 1},
		schema:   last.Schema,
		est:      last.EstRows,
		loc:      loc,
		sortedBy: sorted,
	}
}

// parseStagedName splits "alias.column" back into catalogue coordinates.
func (b *builder) parseStagedName(name string) (int, int, bool) {
	dot := strings.IndexByte(name, '.')
	if dot < 0 {
		return 0, 0, false
	}
	ti, ok := b.aliasIdx[name[:dot]]
	if !ok {
		return 0, 0, false
	}
	ci := b.tables[ti].Entry.Table.Schema().ColumnIndex(name[dot+1:])
	if ci < 0 {
		return 0, 0, false
	}
	return ti, ci, true
}

func stageSchema(cols []OutputColumn) *types.Schema {
	out := make([]types.Column, len(cols))
	for i, c := range cols {
		out[i] = types.Column{Name: c.Name, Kind: c.Kind, Size: c.Size}
	}
	return types.NewSchema(out...)
}

// attachIndexScan marks the stage for index access when an equality filter
// targets an indexed Int/Date column and the predicate is selective enough
// that RID lookups beat a sequential scan (the break-even follows the
// paper's access-latency argument: random index probes only pay off when
// they touch a small fraction of the pages).
func (b *builder) attachIndexScan(st *Stage, ti int) {
	entry := b.tables[ti].Entry
	schema := entry.Table.Schema()
	for _, f := range st.Filters {
		if f.Op != sql.CmpEq {
			continue
		}
		col := schema.Column(f.Col)
		if col.Kind != types.Int && col.Kind != types.Date {
			continue
		}
		if entry.Index(col.Name) == nil {
			continue
		}
		dv := entry.Stats.Columns[f.Col].DistinctValues
		if dv < 20 {
			continue // touches >5% of rows: scan wins
		}
		// A parameterized filter carries its slot over: the probe key
		// resolves at bind time, so the index decision itself needs only
		// statistics, never the constant.
		st.IndexScan = &IndexScanSpec{Column: col.Name, Value: f.Val, Param: f.Param}
		return
	}
}
