package plan

import (
	"strings"
	"testing"

	"hique/internal/catalog"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

func writeCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	cat.Register(storage.NewTable("t", types.NewSchema(
		types.Col("id", types.Int),
		types.Col("price", types.Float),
		types.CharCol("label", 8),
		types.Col("day", types.Date),
	)))
	return cat
}

func mustStmt(t *testing.T, q string) sql.Stmt {
	t.Helper()
	s, err := sql.ParseStmt(q)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildInsert(t *testing.T) {
	cat := writeCat(t)
	w, err := BuildWrite(mustStmt(t, "INSERT INTO t VALUES (1, 2, 'x', DATE '2020-01-02'), (?, ?, ?, ?)"), cat)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != WriteInsert || len(w.Rows) != 2 {
		t.Fatalf("plan = %+v", w)
	}
	// Literal coercion follows the read path's rules: int 2 widens to the
	// Float column.
	if d := w.Rows[0][1].Val; d.Kind != types.Float || d.F != 2 {
		t.Errorf("price literal = %v", d)
	}
	if d := w.Rows[0][3].Val; d.Kind != types.Date {
		t.Errorf("date literal = %v", d)
	}
	// Parameter slots carry the target column's kind and width.
	if len(w.Params) != 4 {
		t.Fatalf("params = %v", w.Params)
	}
	if w.Params[2].Kind != types.String || w.Params[2].Size != 8 {
		t.Errorf("label slot = %+v", w.Params[2])
	}

	// Explicit column list permutes into schema order.
	w, err = BuildWrite(mustStmt(t, "INSERT INTO t (day, label, price, id) VALUES (3, 'y', 1.5, 9)"), cat)
	if err != nil {
		t.Fatal(err)
	}
	if d := w.Rows[0][0].Val; d.I != 9 {
		t.Errorf("id = %v", d)
	}
	if d := w.Rows[0][2].Val; d.S != "y" {
		t.Errorf("label = %v", d)
	}
}

func TestBuildInsertErrors(t *testing.T) {
	cat := writeCat(t)
	cases := []struct{ q, wantSub string }{
		{"INSERT INTO missing VALUES (1)", "unknown table"},
		{"INSERT INTO t VALUES (1, 2, 'x')", "has 3 values for 4 columns"},
		{"INSERT INTO t (id, price) VALUES (1, 2)", "must supply all 4 columns"},
		{"INSERT INTO t (id, price, label, nope) VALUES (1, 2, 'x', 3)", "no column \"nope\""},
		{"INSERT INTO t (id, id, label, day) VALUES (1, 2, 'x', 3)", "duplicate INSERT column"},
		{"INSERT INTO t VALUES ('a', 2, 'x', 3)", "incompatible"},
	}
	for _, c := range cases {
		_, err := BuildWrite(mustStmt(t, c.q), cat)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: err = %v, want mention of %q", c.q, err, c.wantSub)
		}
	}
}

func TestBuildDeleteUpdate(t *testing.T) {
	cat := writeCat(t)
	w, err := BuildWrite(mustStmt(t, "DELETE FROM t WHERE 5 < id AND price <= ?"), cat)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != WriteDelete || len(w.Filters) != 2 {
		t.Fatalf("plan = %+v", w)
	}
	// Constant-on-left flips the operator onto the column.
	if w.Filters[0].Col != 0 || w.Filters[0].Op != sql.CmpGt {
		t.Errorf("flipped filter = %+v", w.Filters[0])
	}
	if slot, ok := w.Filters[1].Slot(); !ok || slot != 0 {
		t.Errorf("param filter = %+v", w.Filters[1])
	}

	w, err = BuildWrite(mustStmt(t, "UPDATE t SET price = ?, label = 'z' WHERE t.id = 3"), cat)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != WriteUpdate || len(w.Sets) != 2 || len(w.Filters) != 1 {
		t.Fatalf("plan = %+v", w)
	}
	if w.Sets[0].Col != 1 || w.Sets[1].Col != 2 {
		t.Errorf("set targets = %+v", w.Sets)
	}

	for _, c := range []struct{ q, wantSub string }{
		{"DELETE FROM t WHERE id = price", "column against a constant"},
		{"UPDATE t SET nope = 1", "no column"},
		{"UPDATE t SET id = 1, id = 2", "duplicate UPDATE target"},
		{"DELETE FROM t WHERE u.id = 1", "unknown table alias"},
	} {
		if _, err := BuildWrite(mustStmt(t, c.q), cat); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: err = %v, want mention of %q", c.q, err, c.wantSub)
		}
	}
}

func TestWriteBind(t *testing.T) {
	cat := writeCat(t)
	w, err := BuildWrite(mustStmt(t, "UPDATE t SET price = ? WHERE id = ?"), cat)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := w.Bind([]types.Datum{types.FloatDatum(7.5), types.IntDatum(3)})
	if err != nil {
		t.Fatal(err)
	}
	if bound == w {
		t.Fatal("Bind must copy a parameterized plan")
	}
	if d := bound.Sets[0].Val.Val; d.F != 7.5 {
		t.Errorf("bound set = %v", d)
	}
	if bound.Filters[0].Val.I != 3 || bound.Filters[0].Param != 0 {
		t.Errorf("bound filter = %+v", bound.Filters[0])
	}
	// The original stays parameterized (cached plans are shared).
	if _, ok := w.Sets[0].Val.Slot(); !ok {
		t.Error("receiver was mutated by Bind")
	}
	// Arity and kind mismatches reject.
	if _, err := w.Bind([]types.Datum{types.FloatDatum(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := w.Bind([]types.Datum{types.IntDatum(1), types.IntDatum(2)}); err == nil {
		t.Error("kind mismatch accepted")
	}
}
