// Write plans: the descriptor form of DML statements. The paper's code
// generator targets query *evaluation*; writes never touch the operator
// templates, so a write plan is a flat descriptor — target table, value
// rows, filters — that the execution layer applies directly under the
// table's writer lock. Filters and bind-parameter slots reuse the read
// path's machinery (Filter, ParamSlot, the Param slot+1 encoding), so a
// parameterized DELETE binds exactly like a parameterized SELECT.
package plan

import (
	"fmt"

	"hique/internal/catalog"
	"hique/internal/sql"
	"hique/internal/types"
)

// WriteKind enumerates the DML statement forms.
type WriteKind int

const (
	// WriteInsert appends value rows.
	WriteInsert WriteKind = iota
	// WriteDelete removes rows matching the filters.
	WriteDelete
	// WriteUpdate assigns set columns on rows matching the filters.
	WriteUpdate
)

// String names the kind.
func (k WriteKind) String() string {
	return [...]string{"insert", "delete", "update"}[k]
}

// WriteValue is one value a DML statement stores: either a literal datum
// baked at plan time, or a bind-vector slot resolved at execution time
// (Param is 1 + slot, the same safe encoding Filter.Param uses).
type WriteValue struct {
	Val   types.Datum
	Param int
}

// Slot returns the bind-vector slot and true when the value is a
// parameter; (0, false) when Val carries a baked literal.
func (v WriteValue) Slot() (int, bool) { return v.Param - 1, v.Param > 0 }

// SetColumn is one UPDATE assignment target: the table-schema column
// index and the value to store.
type SetColumn struct {
	Col int
	Val WriteValue
}

// WritePlan is the planned form of a DML statement. Cached write plans
// are shared across executions; Bind produces an execution-ready copy
// with every parameter slot resolved. A write plan depends only on the
// catalogued table's identity and schema — never on statistics — so it
// stays valid across stats refreshes; the executor revalidates Entry
// against the catalogue under the writer lock before applying it.
type WritePlan struct {
	Kind   WriteKind
	Table  string
	Entry  *catalog.TableEntry
	Schema *types.Schema

	// Params describes the bind vector, indexed by placeholder position.
	Params []ParamSlot

	// Rows are the INSERT value rows in schema column order.
	Rows [][]WriteValue
	// Filters select the affected rows for DELETE and UPDATE; empty means
	// every row.
	Filters []Filter
	// Sets are the UPDATE assignments.
	Sets []SetColumn
}

// BuildWrite plans a DML statement against the catalogue.
func BuildWrite(stmt sql.Stmt, cat *catalog.Catalog) (*WritePlan, error) {
	switch s := stmt.(type) {
	case *sql.InsertStmt:
		return buildInsert(s, cat)
	case *sql.DeleteStmt:
		return buildDelete(s, cat)
	case *sql.UpdateStmt:
		return buildUpdate(s, cat)
	}
	return nil, fmt.Errorf("plan: %T is not a DML statement", stmt)
}

// writeBuilder collects bind-vector slots while lowering a DML statement.
type writeBuilder struct {
	table      string
	schema     *types.Schema
	params     []ParamSlot
	paramsSeen []bool
}

func newWriteBuilder(table string, schema *types.Schema, numParams int) *writeBuilder {
	wb := &writeBuilder{table: table, schema: schema}
	if numParams > 0 {
		wb.params = make([]ParamSlot, numParams)
		wb.paramsSeen = make([]bool, numParams)
	}
	return wb
}

// value lowers a constant expression targeting column ci: parameters
// record a slot typed by the column, literals coerce through the same
// rules the read path's literal-specialized filters use. stored marks a
// value that will be written into the column (INSERT rows, UPDATE SET):
// only those slots carry the CHAR(n) width, so bind-time coercion rejects
// oversized strings before they would truncate — comparison slots stay
// width-free (an oversized comparand is legal; it just never matches
// equality).
func (wb *writeBuilder) value(e sql.Expr, ci int, stored bool) (WriteValue, error) {
	c := wb.schema.Column(ci)
	if prm, ok := e.(*sql.Param); ok {
		if prm.Index < 0 || prm.Index >= len(wb.params) {
			return WriteValue{}, fmt.Errorf("plan: placeholder index %d out of range (statement has %d)", prm.Index, len(wb.params))
		}
		slot := ParamSlot{Kind: c.Kind, Column: wb.table + "." + c.Name}
		if stored {
			slot.Size = c.Size
		}
		wb.params[prm.Index] = slot
		wb.paramsSeen[prm.Index] = true
		return WriteValue{Param: prm.Index + 1}, nil
	}
	d, err := literalDatum(e, c.Kind)
	if err != nil {
		return WriteValue{}, err
	}
	return WriteValue{Val: d}, nil
}

// column resolves a column reference against the target table; the
// qualifier, if any, must name the table itself.
func (wb *writeBuilder) column(c *sql.ColRef) (int, error) {
	if c.Table != "" && c.Table != wb.table {
		return 0, fmt.Errorf("plan: unknown table alias %q (DML references %q only)", c.Table, wb.table)
	}
	ci := wb.schema.ColumnIndex(c.Column)
	if ci < 0 {
		return 0, fmt.Errorf("plan: table %q has no column %q", wb.table, c.Column)
	}
	return ci, nil
}

// where lowers the statement's WHERE conjunction into filters over the
// base table: each predicate compares one column against a constant or a
// placeholder (DML never joins).
func (wb *writeBuilder) where(preds []sql.Predicate) ([]Filter, error) {
	var out []Filter
	for i := range preds {
		p := &preds[i]
		col, op, operand := p.Left, p.Op, p.Right
		if _, ok := col.(*sql.ColRef); !ok {
			col, op, operand = p.Right, p.Op.Flip(), p.Left
		}
		cref, ok := col.(*sql.ColRef)
		if !ok || !isConstOperand(operand) {
			return nil, fmt.Errorf("plan: DML predicates compare a column against a constant, found %s", p)
		}
		ci, err := wb.column(cref)
		if err != nil {
			return nil, err
		}
		wv, err := wb.value(operand, ci, false)
		if err != nil {
			return nil, err
		}
		out = append(out, Filter{Col: ci, Op: op, Val: wv.Val, Param: wv.Param})
	}
	return out, nil
}

// finish validates that every placeholder landed in a supported position.
func (wb *writeBuilder) finish(w *WritePlan) (*WritePlan, error) {
	for i, seen := range wb.paramsSeen {
		if !seen {
			return nil, fmt.Errorf("plan: parameter %d is not a value or comparison operand", i+1)
		}
	}
	w.Params = wb.params
	return w, nil
}

func buildInsert(s *sql.InsertStmt, cat *catalog.Catalog) (*WritePlan, error) {
	e, err := cat.Lookup(s.Table)
	if err != nil {
		return nil, err
	}
	schema := e.Table.Schema()
	n := schema.NumColumns()

	// Resolve the target column order. The engine has no NULLs, so a row
	// must supply every column; an explicit list may only permute them.
	order := make([]int, 0, n)
	if len(s.Columns) == 0 {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
	} else {
		if len(s.Columns) != n {
			return nil, fmt.Errorf("plan: INSERT into %q must supply all %d columns, got %d (the engine has no NULLs)", s.Table, n, len(s.Columns))
		}
		seen := make([]bool, n)
		for _, name := range s.Columns {
			ci := schema.ColumnIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("plan: table %q has no column %q", s.Table, name)
			}
			if seen[ci] {
				return nil, fmt.Errorf("plan: duplicate INSERT column %q", name)
			}
			seen[ci] = true
			order = append(order, ci)
		}
	}

	wb := newWriteBuilder(s.Table, schema, s.NumParams)
	rows := make([][]WriteValue, len(s.Rows))
	for ri, row := range s.Rows {
		if len(row) != len(order) {
			return nil, fmt.Errorf("plan: INSERT row %d has %d values for %d columns", ri+1, len(row), len(order))
		}
		out := make([]WriteValue, n)
		for k, expr := range row {
			ci := order[k]
			wv, err := wb.value(expr, ci, true)
			if err != nil {
				return nil, fmt.Errorf("plan: INSERT row %d, column %q: %w", ri+1, schema.Column(ci).Name, err)
			}
			out[ci] = wv
		}
		rows[ri] = out
	}
	return wb.finish(&WritePlan{Kind: WriteInsert, Table: s.Table, Entry: e, Schema: schema, Rows: rows})
}

func buildDelete(s *sql.DeleteStmt, cat *catalog.Catalog) (*WritePlan, error) {
	e, err := cat.Lookup(s.Table)
	if err != nil {
		return nil, err
	}
	schema := e.Table.Schema()
	wb := newWriteBuilder(s.Table, schema, s.NumParams)
	filters, err := wb.where(s.Where)
	if err != nil {
		return nil, err
	}
	return wb.finish(&WritePlan{Kind: WriteDelete, Table: s.Table, Entry: e, Schema: schema, Filters: filters})
}

func buildUpdate(s *sql.UpdateStmt, cat *catalog.Catalog) (*WritePlan, error) {
	e, err := cat.Lookup(s.Table)
	if err != nil {
		return nil, err
	}
	schema := e.Table.Schema()
	wb := newWriteBuilder(s.Table, schema, s.NumParams)
	sets := make([]SetColumn, 0, len(s.Set))
	assigned := make(map[int]bool, len(s.Set))
	for i := range s.Set {
		ci := schema.ColumnIndex(s.Set[i].Column)
		if ci < 0 {
			return nil, fmt.Errorf("plan: table %q has no column %q", s.Table, s.Set[i].Column)
		}
		if assigned[ci] {
			return nil, fmt.Errorf("plan: duplicate UPDATE target %q", s.Set[i].Column)
		}
		assigned[ci] = true
		wv, err := wb.value(s.Set[i].Value, ci, true)
		if err != nil {
			return nil, fmt.Errorf("plan: UPDATE %s: %w", s.Set[i].Column, err)
		}
		sets = append(sets, SetColumn{Col: ci, Val: wv})
	}
	filters, err := wb.where(s.Where)
	if err != nil {
		return nil, err
	}
	return wb.finish(&WritePlan{Kind: WriteUpdate, Table: s.Table, Entry: e, Schema: schema, Filters: filters, Sets: sets})
}

// checkParamArgs validates a bind vector against parameter slots: exact
// arity and, per slot, the kind the target column expects. Shared by read
// plans (Plan.CheckArgs) and write plans.
func checkParamArgs(slots []ParamSlot, args []types.Datum) error {
	if len(args) != len(slots) {
		return fmt.Errorf("plan: statement wants %d parameters, got %d", len(slots), len(args))
	}
	for i := range args {
		if args[i].Kind != slots[i].Kind {
			return fmt.Errorf("plan: parameter %d: %v value bound to %v column %s",
				i+1, args[i].Kind, slots[i].Kind, slots[i].Column)
		}
	}
	return nil
}

// Bind resolves every parameter slot against an already-coerced bind
// vector, returning an execution-ready plan in which every WriteValue and
// Filter carries its concrete datum. The receiver is never modified —
// cached write plans are shared across concurrent executions — so Bind
// copies exactly the descriptors that hold parameters.
func (w *WritePlan) Bind(args []types.Datum) (*WritePlan, error) {
	if err := checkParamArgs(w.Params, args); err != nil {
		return nil, err
	}
	if len(w.Params) == 0 {
		return w, nil
	}
	q := *w
	q.Params = nil // the copy is fully bound; Bind on it again is an arity error

	if rowsHaveParams(w.Rows) {
		rows := make([][]WriteValue, len(w.Rows))
		for i, row := range w.Rows {
			out := make([]WriteValue, len(row))
			copy(out, row)
			for k := range out {
				if slot, ok := out[k].Slot(); ok {
					out[k] = WriteValue{Val: args[slot]}
				}
			}
			rows[i] = out
		}
		q.Rows = rows
	}
	if filtersHaveParams(w.Filters) {
		fs := make([]Filter, len(w.Filters))
		copy(fs, w.Filters)
		for i := range fs {
			if slot, ok := fs[i].Slot(); ok {
				fs[i].Val = args[slot]
				fs[i].Param = 0
			}
		}
		q.Filters = fs
	}
	if setsHaveParams(w.Sets) {
		sets := make([]SetColumn, len(w.Sets))
		copy(sets, w.Sets)
		for i := range sets {
			if slot, ok := sets[i].Val.Slot(); ok {
				sets[i].Val = WriteValue{Val: args[slot]}
			}
		}
		q.Sets = sets
	}
	return &q, nil
}

func rowsHaveParams(rows [][]WriteValue) bool {
	for _, row := range rows {
		for i := range row {
			if _, ok := row[i].Slot(); ok {
				return true
			}
		}
	}
	return false
}

func filtersHaveParams(fs []Filter) bool {
	for i := range fs {
		if _, ok := fs[i].Slot(); ok {
			return true
		}
	}
	return false
}

func setsHaveParams(sets []SetColumn) bool {
	for i := range sets {
		if _, ok := sets[i].Val.Slot(); ok {
			return true
		}
	}
	return false
}
