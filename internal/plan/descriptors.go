package plan

import (
	"fmt"
	"strings"

	"hique/internal/catalog"
	"hique/internal/morsel"
	"hique/internal/sql"
	"hique/internal/types"
)

// InputRef names the source of an operator input: a base table from the
// FROM clause, or the materialised output of an earlier operator in the
// descriptor list.
type InputRef struct {
	// Base is an index into Plan.Tables, or -1 when the input is the
	// output of a previous join.
	Base int
	// Join is the index into Plan.Joins producing the input (valid when
	// Base == -1).
	Join int
}

func (r InputRef) String() string {
	if r.Base >= 0 {
		return fmt.Sprintf("table[%d]", r.Base)
	}
	return fmt.Sprintf("join[%d]", r.Join)
}

// TableInput is one FROM-clause table resolved against the catalogue.
type TableInput struct {
	Name  string
	Alias string
	Entry *catalog.TableEntry
}

// Filter is a selection predicate applied during staging: input column
// compared against a constant. The constant is either baked into Val at
// plan time (literal-specialized plans) or supplied through the bind
// vector at execution time (parameterized plans).
type Filter struct {
	Col int
	Op  sql.CmpOp
	Val types.Datum
	// Param is 1 + the bind-vector slot supplying the comparison value,
	// or 0 (the zero value) when Val carries a baked literal. Plan.Bind
	// resolves parameter slots into Val; engines never see a non-zero
	// Param. Read through Slot.
	Param int
}

// Slot returns the bind-vector slot and true when the comparison value is
// a parameter; (0, false) when Val is a baked literal.
func (f Filter) Slot() (int, bool) { return f.Param - 1, f.Param > 0 }

func (f Filter) String() string {
	if slot, ok := f.Slot(); ok {
		return fmt.Sprintf("col%d %s $%d", f.Col, f.Op, slot)
	}
	return fmt.Sprintf("col%d %s %v", f.Col, f.Op, f.Val)
}

// OutputColumn defines one column of a staged schema: either a direct copy
// of an input column or a computed scalar expression.
type OutputColumn struct {
	Name string
	// Source is the input column index for direct copies; -1 for
	// computed columns.
	Source int
	// Compute is the bound expression for computed columns; nil for
	// direct copies.
	Compute Expr
	Kind    types.Kind
	Size    int
}

// StageAction says how the staging step pre-processes its materialised
// output for the operator that consumes it (paper §V-B, "Input staging").
type StageAction int

const (
	// StageNone materialises the filtered projection only.
	StageNone StageAction = iota
	// StageSort sorts the staged output on SortKeys.
	StageSort
	// StagePartitionFine partitions by exact key value through a value
	// directory.
	StagePartitionFine
	// StagePartitionCoarse partitions by hash-and-modulo.
	StagePartitionCoarse
)

func (a StageAction) String() string {
	return [...]string{"none", "sort", "partition(fine)", "partition(coarse)"}[a]
}

// IndexScanSpec asks the engine to fetch the stage's input through a
// fractal B+-tree index instead of a full scan: an equality predicate on
// an indexed column resolves to RID lookups (paper §IV: the system's
// memory-efficient indexes). Engines without index support ignore it and
// evaluate the equivalent filter, which stays in Filters.
type IndexScanSpec struct {
	// Column is the indexed column's name in the base table.
	Column string
	// Value is the equality key.
	Value types.Datum
	// Param is 1 + the bind-vector slot supplying the probe key at
	// execution time, 0 when Value is baked (same encoding as
	// Filter.Param); Plan.Bind resolves it.
	Param int
}

// Slot returns the bind-vector slot and true when the probe key is a
// parameter.
func (s IndexScanSpec) Slot() (int, bool) { return s.Param - 1, s.Param > 0 }

// Stage describes the data-staging step for one operator input: scan,
// filter, project (dropping unused fields to shrink tuples), and optionally
// sort or partition, interleaved in one pass (paper §IV step 1).
type Stage struct {
	Input   InputRef
	Filters []Filter
	Cols    []OutputColumn
	Schema  *types.Schema

	// IndexScan, when non-nil, lets index-aware engines replace the
	// table scan with index lookups. The matching filter remains in
	// Filters so index-unaware engines stay correct.
	IndexScan *IndexScanSpec

	Action StageAction
	// SortKeys are column indexes in the staged schema (ascending).
	SortKeys []int
	// PartitionKey is the staged-schema column for partitioning actions.
	PartitionKey int
	// Partitions is M, the partition count, for coarse partitioning.
	Partitions int
	// FineValues is the sorted value directory for fine partitioning.
	FineValues []types.Datum
	// SortPartitions requests sorting each partition on SortKeys after
	// partitioning (the hybrid hash-sort staging of §V-B).
	SortPartitions bool
	// EstRows is the optimizer's cardinality estimate after filtering.
	EstRows float64
}

// IsIdentity reports whether the stage is a pure pass-through over an
// input with the given schema: no filters, no index access, and a
// projection that copies every input column in order at the same width.
// Such a stage adds nothing but a tuple-by-tuple copy, so engines may
// elide the materialisation and hand the input through unchanged (the
// staged schema's column names may still differ — consumers address
// staged tuples by offset, which the identity condition preserves).
func (st *Stage) IsIdentity(in *types.Schema) bool {
	if len(st.Filters) != 0 || st.IndexScan != nil {
		return false
	}
	if len(st.Cols) != in.NumColumns() {
		return false
	}
	for i := range st.Cols {
		c := &st.Cols[i]
		if c.Source != i || c.Compute != nil {
			return false
		}
		if ic := in.Column(i); c.Kind != ic.Kind || c.Size != ic.Size {
			return false
		}
	}
	return true
}

// JoinAlgorithm enumerates the paper's join strategies (§V-B). All of them
// instantiate the same nested-loops template (Listing 2) and differ only in
// staging and in-loop extras.
type JoinAlgorithm int

const (
	// MergeJoin stages both inputs sorted and merges linearly.
	MergeJoin JoinAlgorithm = iota
	// FinePartitionJoin partitions both inputs by key value; all tuples
	// in corresponding partitions match.
	FinePartitionJoin
	// HybridJoin is hybrid hash-sort-merge: coarse partitioning, then
	// sort corresponding partitions just before merging them so both
	// stay L2-resident (the paper's preferred hash-join variant).
	HybridJoin
)

func (a JoinAlgorithm) String() string {
	return [...]string{"merge", "fine-partition", "hybrid-hash-sort-merge"}[a]
}

// JoinOutput maps one output column to (input index, staged column index).
type JoinOutput struct {
	Input int
	Col   int
}

// Join is one join operator descriptor. Binary joins have two inputs; join
// teams (sets of tables equi-joined on a common key, §V-B) have more.
type Join struct {
	Alg JoinAlgorithm
	// Inputs are the staging specs, one per joined input.
	Inputs []Stage
	// Keys gives the join-key column in each staged input's schema.
	Keys []int
	// Out maps output schema positions to staged input columns.
	Out []JoinOutput
	// Schema is the join's materialised output schema.
	Schema *types.Schema
	// EstRows is the optimizer's output-cardinality estimate.
	EstRows float64
}

// FusionEligible reports whether the join's shape allows the holistic
// fused pipeline: a binary join over two base-table inputs whose staging
// matches the algorithm (sorted inputs for merge join, coarse partitions
// for the hybrid hash-sort-merge join, a non-empty value directory for
// the fine-partition join) and whose staged columns are all direct
// copies. Filters and index specs on the inputs may carry parameter
// slots — including on the join-key columns themselves — since the fused
// executor reads the bind vector at run time. The generator applies
// further checks of its own (predicate compilability, computed output
// kinds); this method captures the structural half so the planner and
// the generator agree on what "fusible" means.
func (j *Join) FusionEligible() bool {
	if len(j.Inputs) != 2 || len(j.Keys) != 2 {
		return false
	}
	for i := range j.Inputs {
		st := &j.Inputs[i]
		if st.Input.Base < 0 {
			return false
		}
		switch j.Alg {
		case MergeJoin:
			if st.Action != StageSort {
				return false
			}
		case HybridJoin:
			if st.Action != StagePartitionCoarse || st.Partitions <= 0 {
				return false
			}
		case FinePartitionJoin:
			// An empty value directory is a plan-level error the general
			// path reports; decline so the message stays identical.
			if st.Action != StagePartitionFine || len(st.FineValues) == 0 {
				return false
			}
		default:
			return false
		}
		for k := range st.Cols {
			if st.Cols[k].Source < 0 || st.Cols[k].Compute != nil {
				return false
			}
		}
	}
	return true
}

// AggAlgorithm enumerates the aggregation strategies of §V-B.
type AggAlgorithm int

const (
	// SortAggregation scans an input staged sorted on the grouping
	// attributes, emitting each group as it closes.
	SortAggregation AggAlgorithm = iota
	// HybridAggregation hash-partitions on the first grouping attribute,
	// sorts each partition on all grouping attributes, then scans.
	HybridAggregation
	// MapAggregation uses per-attribute value directories and the offset
	// formula of Figure 4 to update aggregate arrays in one pass, with
	// no staging.
	MapAggregation
)

func (a AggAlgorithm) String() string {
	return [...]string{"sort", "hybrid-hash-sort", "map"}[a]
}

// AggSpec is one aggregate computation over the staged input schema.
type AggSpec struct {
	Func sql.AggFunc
	// Col is the staged-schema argument column; -1 for COUNT(*).
	Col  int
	Star bool
	Name string
	Kind types.Kind
}

// OutputRef maps one select item to the aggregation output: either a group
// column or an aggregate slot.
type OutputRef struct {
	// IsAgg selects between group columns and aggregate results.
	IsAgg bool
	// Index is a group-column position (into GroupCols) or an aggregate
	// position (into Aggs).
	Index int
}

// Agg is the aggregation operator descriptor.
type Agg struct {
	Alg   AggAlgorithm
	Input Stage
	// GroupCols are grouping attributes in the staged schema.
	GroupCols []int
	Aggs      []AggSpec
	// Output maps each select item to group cols / aggregates, defining
	// the result schema order.
	Output []OutputRef
	// Schema is the result schema (select-list shaped).
	Schema *types.Schema
	// Directories hold the per-attribute value directories for map
	// aggregation, parallel to GroupCols (paper Fig. 4).
	Directories [][]types.Datum
	// EstGroups is the optimizer's estimate of the group count.
	EstGroups float64
}

// FusionEligible reports whether the aggregation's algorithm and staging
// action are ones the fused pipeline can evaluate: sort aggregation over
// an input that is already ordered (StageNone, the interesting-order
// case) or explicitly sorted (StageSort), hybrid hash-sort aggregation
// over coarse partitions, and map aggregation through its value
// directories (the Figure 4 offset formula updates aggregate arrays
// inside the join loop — the fully-fused headline pipeline).
func (a *Agg) FusionEligible() bool {
	switch a.Alg {
	case SortAggregation:
		return a.Input.Action == StageNone || a.Input.Action == StageSort
	case HybridAggregation:
		return a.Input.Action == StagePartitionCoarse && a.Input.Partitions > 0
	case MapAggregation:
		return a.Input.Action == StageNone &&
			len(a.GroupCols) > 0 && len(a.Directories) == len(a.GroupCols)
	}
	return false
}

// HavingFilter is one HAVING conjunct, resolved against the aggregated
// result schema: result column Col compared against the baked constant
// Val. Engines apply the conjunction after aggregation and before the
// final sort; the comparison delegates to CmpOp.Holds over types.Compare,
// so every engine filters groups identically.
type HavingFilter struct {
	Col int
	Op  sql.CmpOp
	Val types.Datum
}

func (h HavingFilter) String() string {
	return fmt.Sprintf("col%d %s %v", h.Col, h.Op, h.Val)
}

// SortKey is one ORDER BY key over the final result schema.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort is the final ordering operator.
type Sort struct {
	Keys []SortKey
}

// ParamSlot describes one bind-vector position of a parameterized plan:
// the column kind the parameter compares against (bind-time coercion
// targets it), the column's byte width (write plans enforce CHAR(n)
// capacity on bound string values; zero means unchecked), and the
// column's name for error messages.
type ParamSlot struct {
	Kind   types.Kind
	Size   int
	Column string
}

// Plan is the optimizer output: the topologically sorted operator list
// (joins first, then at most one aggregation and one sort, as in §IV),
// plus the final projection for non-aggregate queries.
type Plan struct {
	Stmt   *sql.SelectStmt
	Tables []TableInput

	// Params describes the bind vector, indexed by placeholder position.
	// Empty for literal-specialized plans; non-empty plans must be bound
	// with Bind before execution.
	Params []ParamSlot

	// Joins in execution order. Each join's inputs reference base tables
	// or earlier joins only.
	Joins []*Join

	// Agg is the aggregation operator, if the query aggregates.
	Agg *Agg

	// Having filters aggregated groups (conjunction over the result
	// schema), applied after Agg and before Sort/Limit. Always empty when
	// Agg is nil.
	Having []HavingFilter

	// Final is the select-shaped projection stage for queries without
	// aggregation (reads the last join's output or the single base
	// table). Nil when Agg is set.
	Final *Stage

	// Sort is the final ordering, applied to the select-shaped result.
	Sort *Sort

	// Limit truncates the result; -1 means no limit.
	Limit int

	// OutputNames are the result column names, parallel to the select
	// list.
	OutputNames []string

	// Trace, when non-nil, asks the engines to record per-stage row
	// counts and timings (EXPLAIN ANALYZE). It is set only on
	// per-execution plan copies — a plan stored in the cache and shared
	// across concurrent executions must keep it nil. Bind propagates it
	// into bound copies.
	Trace *Trace

	// Parallelism is the worker target for morsel-driven parallel
	// execution (Options.Parallelism, captured at build time so the
	// compiled artefact carries it): 0 resolves to GOMAXPROCS, 1 forces
	// serial. Pool, when non-nil, bounds the helper goroutines parallel
	// phases may spawn — the owning DB attaches its pool after planning;
	// a nil pool spawns freely (plans built outside a DB). Like Trace,
	// both are execution attachments, not optimizer outputs.
	Parallelism int
	Pool        *morsel.Pool
}

// ResultSchema returns the schema of the query result.
func (p *Plan) ResultSchema() *types.Schema {
	if p.Agg != nil {
		return p.Agg.Schema
	}
	return p.Final.Schema
}

// Explain renders a human-readable plan description.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query: %s\n", p.Stmt)
	for i := range p.Params {
		fmt.Fprintf(&b, "Param[%d]: %s %v\n", i, p.Params[i].Column, p.Params[i].Kind)
	}
	for i, t := range p.Tables {
		fmt.Fprintf(&b, "Table[%d]: %s (alias %s, %d rows)\n", i, t.Name, t.Alias, t.Entry.Stats.Rows)
	}
	for i, j := range p.Joins {
		fmt.Fprintf(&b, "Join[%d]: %s over %d inputs (est %.0f rows)\n", i, j.Alg, len(j.Inputs), j.EstRows)
		for k := range j.Inputs {
			st := &j.Inputs[k]
			fmt.Fprintf(&b, "  input %d: %s stage=%s key=col%d filters=%d cols=%d (est %.0f rows)\n",
				k, st.Input, st.Action, j.Keys[k], len(st.Filters), len(st.Cols), st.EstRows)
		}
	}
	if p.Agg != nil {
		fmt.Fprintf(&b, "Aggregate: %s groups=%d aggs=%d (est %.0f groups)\n",
			p.Agg.Alg, len(p.Agg.GroupCols), len(p.Agg.Aggs), p.Agg.EstGroups)
		fmt.Fprintf(&b, "  input: %s stage=%s\n", p.Agg.Input.Input, p.Agg.Input.Action)
	}
	if len(p.Having) > 0 {
		parts := make([]string, len(p.Having))
		for i, h := range p.Having {
			parts[i] = h.String()
		}
		fmt.Fprintf(&b, "Having: %s\n", strings.Join(parts, " AND "))
	}
	if p.Final != nil {
		fmt.Fprintf(&b, "Project: %s -> %d cols\n", p.Final.Input, len(p.Final.Cols))
	}
	if p.Sort != nil {
		fmt.Fprintf(&b, "Sort: %d keys\n", len(p.Sort.Keys))
	}
	if p.Limit >= 0 {
		fmt.Fprintf(&b, "Limit: %d\n", p.Limit)
	}
	return b.String()
}
