package plan

import (
	"fmt"
	"strings"
	"testing"

	"hique/internal/catalog"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// testCatalog builds a small star schema:
//
//	fact(fk INT, dim_id INT, val FLOAT, grp INT)        100k rows, grp in [0,50)
//	dim(dim_id INT, label CHAR(8))                      100 rows
//	dim2(d2_id INT, name CHAR(8))                       20 rows
//	big(big_id INT, fk INT, x INT)                      200k rows
func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()

	fact := storage.NewTable("fact", types.NewSchema(
		types.Col("fk", types.Int), types.Col("dim_id", types.Int),
		types.Col("val", types.Float), types.Col("grp", types.Int)))
	for i := 0; i < 100000; i++ {
		fact.AppendRow(types.IntDatum(int64(i%200000)), types.IntDatum(int64(i%100)),
			types.FloatDatum(float64(i)), types.IntDatum(int64(i%50)))
	}
	cat.Register(fact)

	dim := storage.NewTable("dim", types.NewSchema(
		types.Col("dim_id", types.Int), types.CharCol("label", 8)))
	for i := 0; i < 100; i++ {
		dim.AppendRow(types.IntDatum(int64(i)), types.StringDatum(fmt.Sprintf("L%d", i)))
	}
	cat.Register(dim)

	dim2 := storage.NewTable("dim2", types.NewSchema(
		types.Col("d2_id", types.Int), types.CharCol("name", 8)))
	for i := 0; i < 20; i++ {
		dim2.AppendRow(types.IntDatum(int64(i)), types.StringDatum(fmt.Sprintf("N%d", i)))
	}
	cat.Register(dim2)

	big := storage.NewTable("big", types.NewSchema(
		types.Col("big_id", types.Int), types.Col("fk", types.Int), types.Col("x", types.Int)))
	for i := 0; i < 200000; i++ {
		big.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i)), types.IntDatum(int64(i%1000)))
	}
	cat.Register(big)

	return cat
}

func buildPlan(t *testing.T, cat *catalog.Catalog, q string) *Plan {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Build(stmt, cat)
	if err != nil {
		t.Fatalf("Build(%q): %v", q, err)
	}
	return p
}

func TestSingleTableProjection(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, "SELECT fk, val FROM fact WHERE grp = 3")
	if len(p.Joins) != 0 || p.Agg != nil {
		t.Fatal("single-table plan should have no joins or aggregation")
	}
	if p.Final == nil {
		t.Fatal("missing final projection")
	}
	if len(p.Final.Filters) != 1 {
		t.Fatalf("filters = %v", p.Final.Filters)
	}
	f := p.Final.Filters[0]
	if f.Op != sql.CmpEq || f.Val.I != 3 {
		t.Errorf("filter = %v", f)
	}
	if got := p.ResultSchema().NumColumns(); got != 2 {
		t.Errorf("result columns = %d", got)
	}
	if p.OutputNames[0] != "fk" || p.OutputNames[1] != "val" {
		t.Errorf("output names = %v", p.OutputNames)
	}
}

func TestComputedProjection(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, "SELECT val * 2 AS doubled FROM fact")
	oc := p.Final.Cols[0]
	if oc.Compute == nil {
		t.Fatal("expected computed column")
	}
	if oc.Kind != types.Float {
		t.Errorf("computed kind = %v", oc.Kind)
	}
	if p.OutputNames[0] != "doubled" {
		t.Errorf("name = %q", p.OutputNames[0])
	}
}

func TestBinaryJoinPlan(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, "SELECT label FROM fact, dim WHERE fact.dim_id = dim.dim_id")
	if len(p.Joins) != 1 {
		t.Fatalf("joins = %d", len(p.Joins))
	}
	j := p.Joins[0]
	if len(j.Inputs) != 2 {
		t.Fatalf("inputs = %d", len(j.Inputs))
	}
	// dim_id has 100 distinct values: fine partitioning applies.
	if j.Alg != FinePartitionJoin {
		t.Errorf("algorithm = %v, want fine-partition", j.Alg)
	}
	// Key columns must point at dim_id in each staged schema.
	for i := range j.Inputs {
		name := j.Inputs[i].Schema.Column(j.Keys[i]).Name
		if !strings.HasSuffix(name, ".dim_id") {
			t.Errorf("input %d key = %q", i, name)
		}
	}
}

func TestJoinTeamDetection(t *testing.T) {
	cat := testCatalog(t)
	// Three tables joined on one equivalence class -> a single team op.
	q := "SELECT big.x FROM fact, big, big b2 WHERE fact.fk = big.fk AND big.fk = b2.fk"
	p := buildPlan(t, cat, q)
	if len(p.Joins) != 1 {
		t.Fatalf("joins = %d, want 1 team join", len(p.Joins))
	}
	if got := len(p.Joins[0].Inputs); got != 3 {
		t.Fatalf("team inputs = %d, want 3", got)
	}
}

func TestJoinTeamsDisabled(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := sql.Parse("SELECT big.x FROM fact, big, big b2 WHERE fact.fk = big.fk AND big.fk = b2.fk")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.EnableJoinTeams = false
	p, err := BuildWithOptions(stmt, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Joins) != 2 {
		t.Fatalf("joins = %d, want 2 binary joins", len(p.Joins))
	}
	// Second join must consume the first's output.
	if p.Joins[1].Inputs[0].Input.Base != -1 {
		t.Errorf("second join left input = %v, want join[0]", p.Joins[1].Inputs[0].Input)
	}
}

func TestForceJoinAlgorithm(t *testing.T) {
	cat := testCatalog(t)
	stmt, _ := sql.Parse("SELECT label FROM fact, dim WHERE fact.dim_id = dim.dim_id")
	for _, alg := range []JoinAlgorithm{MergeJoin, FinePartitionJoin, HybridJoin} {
		opts := DefaultOptions()
		opts.ForceJoinAlg = &alg
		p, err := BuildWithOptions(stmt, cat, opts)
		if err != nil {
			t.Fatal(err)
		}
		if p.Joins[0].Alg != alg {
			t.Errorf("forced %v, got %v", alg, p.Joins[0].Alg)
		}
	}
}

func TestMapAggregationChosenForSmallDomain(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, "SELECT grp, SUM(val) FROM fact GROUP BY grp")
	if p.Agg == nil {
		t.Fatal("missing aggregation")
	}
	if p.Agg.Alg != MapAggregation {
		t.Errorf("algorithm = %v, want map (grp has 50 values)", p.Agg.Alg)
	}
	if len(p.Agg.Directories) != 1 || len(p.Agg.Directories[0]) != 50 {
		t.Errorf("directories = %v", p.Agg.Directories)
	}
	if p.Agg.Input.Action != StageNone {
		t.Errorf("map aggregation should not stage, got %v", p.Agg.Input.Action)
	}
}

func TestHybridAggregationForLargeDomain(t *testing.T) {
	cat := testCatalog(t)
	// big_id has 200k distinct values: no directory, so hybrid.
	p := buildPlan(t, cat, "SELECT big_id, COUNT(*) FROM big GROUP BY big_id")
	if p.Agg.Alg != HybridAggregation {
		t.Errorf("algorithm = %v, want hybrid", p.Agg.Alg)
	}
	st := &p.Agg.Input
	if st.Action != StagePartitionCoarse || !st.SortPartitions {
		t.Errorf("staging = %v sortPartitions=%v", st.Action, st.SortPartitions)
	}
	if st.Partitions < 2 {
		t.Errorf("partitions = %d, want >= 2", st.Partitions)
	}
}

func TestAggregateSpecs(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, "SELECT grp, SUM(val) AS total, COUNT(*) AS n, AVG(val) AS mean, MIN(fk), MAX(fk) FROM fact GROUP BY grp")
	a := p.Agg
	if len(a.Aggs) != 5 {
		t.Fatalf("aggs = %d", len(a.Aggs))
	}
	wantKinds := []types.Kind{types.Float, types.Int, types.Float, types.Int, types.Int}
	for i, k := range wantKinds {
		if a.Aggs[i].Kind != k {
			t.Errorf("agg %d kind = %v, want %v", i, a.Aggs[i].Kind, k)
		}
	}
	if !a.Aggs[1].Star {
		t.Error("COUNT(*) star flag missing")
	}
	// Output mapping: first item is the group column.
	if a.Output[0].IsAgg || a.Output[1].Index != 0 {
		t.Errorf("output mapping = %v", a.Output)
	}
	if p.ResultSchema().NumColumns() != 6 {
		t.Errorf("result cols = %d", p.ResultSchema().NumColumns())
	}
}

func TestComputedAggArgBecomesStagedColumn(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, "SELECT grp, SUM(val * (1 - val)) FROM fact GROUP BY grp")
	st := &p.Agg.Input
	// Staged schema: grp + computed arg.
	if len(st.Cols) != 2 {
		t.Fatalf("staged cols = %d", len(st.Cols))
	}
	if st.Cols[1].Compute == nil {
		t.Error("aggregate argument should be a computed staged column")
	}
	if p.Agg.Aggs[0].Col != 1 {
		t.Errorf("agg arg col = %d", p.Agg.Aggs[0].Col)
	}
}

func TestOrderByAliasAndLimit(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, "SELECT grp, SUM(val) AS total FROM fact GROUP BY grp ORDER BY total DESC LIMIT 5")
	if p.Sort == nil || len(p.Sort.Keys) != 1 {
		t.Fatal("missing sort")
	}
	k := p.Sort.Keys[0]
	if k.Col != 1 || !k.Desc {
		t.Errorf("sort key = %+v", k)
	}
	if p.Limit != 5 {
		t.Errorf("limit = %d", p.Limit)
	}
}

func TestSelectionPushedIntoJoinStage(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, "SELECT label FROM fact, dim WHERE fact.dim_id = dim.dim_id AND fact.grp = 7")
	var foundFilter bool
	for i := range p.Joins[0].Inputs {
		st := &p.Joins[0].Inputs[i]
		if st.Input.Base >= 0 && p.Tables[st.Input.Base].Name == "fact" && len(st.Filters) == 1 {
			foundFilter = true
		}
	}
	if !foundFilter {
		t.Error("selection on fact not pushed into its staging")
	}
}

func TestPlanErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"SELECT nope FROM fact",
		"SELECT fk FROM missing",
		"SELECT fact.fk FROM fact, big WHERE fact.val > big.x",      // non-equi join
		"SELECT fact.fk FROM fact, dim WHERE fact.fk = fact.dim_id", // same-table compare
		"SELECT fact.fk FROM fact, dim",                             // cross product
		"SELECT fk FROM fact, big",                                  // ambiguous fk + cross product
		"SELECT val FROM fact GROUP BY grp",                         // val not grouped
		"SELECT grp, SUM(val) FROM fact GROUP BY grp ORDER BY bogus",
	}
	for _, q := range bad {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse(%q): %v", q, err)
		}
		if _, err := Build(stmt, cat); err == nil {
			t.Errorf("Build(%q) should fail", q)
		}
	}
}

func TestStarExpansion(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, "SELECT * FROM dim")
	if got := p.ResultSchema().NumColumns(); got != 2 {
		t.Errorf("star over dim = %d cols, want 2", got)
	}
}

func TestExplainIsReadable(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, "SELECT grp, SUM(val) FROM fact, dim WHERE fact.dim_id = dim.dim_id GROUP BY grp")
	out := p.Explain()
	for _, want := range []string{"Join[0]", "Aggregate:", "Table[0]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

// baseInputs collects the Plan.Tables indexes a join reads directly.
func baseInputs(j *Join) map[int]bool {
	m := map[int]bool{}
	for i := range j.Inputs {
		if b := j.Inputs[i].Input.Base; b >= 0 {
			m[b] = true
		}
	}
	return m
}

// TestJoinOrderFollowsEstimates pins the greedy left-deep ordering of
// planBinaryJoins against the catalogue estimates: the starting pair is
// the one minimising estimated output, and each later join extends the
// chain with the cheapest connected table. Table indexes follow FROM
// order: big=0, fact=1, dim=2.
func TestJoinOrderFollowsEstimates(t *testing.T) {
	cat := testCatalog(t)

	// big.x = 5 cuts big to ~200 rows, making big⋈fact (~100 rows) far
	// cheaper than fact⋈dim (~100k rows): the chain must start there and
	// bring dim in last.
	p := buildPlan(t, cat,
		"SELECT label FROM big, fact, dim WHERE big.fk = fact.fk AND fact.dim_id = dim.dim_id AND big.x = 5")
	if len(p.Joins) != 2 {
		t.Fatalf("joins = %d, want 2 (fk and dim_id are distinct key classes)", len(p.Joins))
	}
	first := baseInputs(p.Joins[0])
	if !first[0] || !first[1] {
		t.Errorf("join[0] reads tables %v, want {big, fact} (filtered big starts the chain)", first)
	}
	second := baseInputs(p.Joins[1])
	if !second[2] || len(second) != 1 {
		t.Errorf("join[1] reads base tables %v, want only dim", second)
	}
	found := false
	for i := range p.Joins[1].Inputs {
		if p.Joins[1].Inputs[i].Input.Join == 0 {
			found = true
		}
	}
	if !found {
		t.Error("join[1] does not consume join[0]: plan is not a left-deep chain")
	}

	// Flip the selectivity: dim.label = 'L7' makes fact⋈dim the cheap
	// pair, so the order must reverse.
	p = buildPlan(t, cat,
		"SELECT big.x FROM big, fact, dim WHERE big.fk = fact.fk AND fact.dim_id = dim.dim_id AND dim.label = 'L7'")
	if len(p.Joins) != 2 {
		t.Fatalf("joins = %d, want 2", len(p.Joins))
	}
	first = baseInputs(p.Joins[0])
	if !first[1] || !first[2] {
		t.Errorf("join[0] reads tables %v, want {fact, dim} (filtered dim starts the chain)", first)
	}
	second = baseInputs(p.Joins[1])
	if !second[0] || len(second) != 1 {
		t.Errorf("join[1] reads base tables %v, want only big", second)
	}
}

// TestExplainShowsJoinOrderAndHaving locks the Explain rendering the
// join-order tests (and EXPLAIN users) rely on: one Join line per binary
// join in execution order, and the HAVING conjunction between the
// aggregation and the sort lines.
func TestExplainShowsJoinOrderAndHaving(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat,
		"SELECT grp, COUNT(*) AS n FROM big, fact, dim WHERE big.fk = fact.fk AND fact.dim_id = dim.dim_id AND big.x = 5 GROUP BY grp HAVING n > 3 ORDER BY grp")
	out := p.Explain()
	for _, want := range []string{"Join[0]", "Join[1]", "Having: ", "Aggregate:", "Sort:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "Join[0]") > strings.Index(out, "Join[1]") {
		t.Errorf("Explain lists joins out of execution order:\n%s", out)
	}
	if !(strings.Index(out, "Aggregate:") < strings.Index(out, "Having: ") &&
		strings.Index(out, "Having: ") < strings.Index(out, "Sort:")) {
		t.Errorf("Explain does not place Having between Aggregate and Sort:\n%s", out)
	}
}

// TestHavingPlanning pins the HAVING lowering: conjuncts resolve to
// result columns by alias or rendered aggregate text, constants fold,
// and the error cases stay typed plan errors.
func TestHavingPlanning(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, "SELECT grp, COUNT(*) AS n FROM fact GROUP BY grp HAVING n > 2 + 1")
	if len(p.Having) != 1 {
		t.Fatalf("having = %v", p.Having)
	}
	h := p.Having[0]
	if h.Col != 1 || h.Op != sql.CmpGt || h.Val.I != 3 {
		t.Errorf("having filter = %+v (folded constant expected)", h)
	}

	p = buildPlan(t, cat, "SELECT grp, SUM(val) AS s FROM fact GROUP BY grp HAVING SUM(val) > 10.5")
	if len(p.Having) != 1 || p.Having[0].Col != 1 {
		t.Fatalf("aggregate-text resolution failed: %v", p.Having)
	}

	// Flipped operand order: constant on the left.
	p = buildPlan(t, cat, "SELECT grp, COUNT(*) AS n FROM fact GROUP BY grp HAVING 5 < n")
	if len(p.Having) != 1 || p.Having[0].Op != sql.CmpGt || p.Having[0].Val.I != 5 {
		t.Fatalf("flipped having = %v", p.Having)
	}

	bad := []string{
		"SELECT grp FROM fact HAVING grp > 1",                           // no aggregation
		"SELECT grp, COUNT(*) AS n FROM fact GROUP BY grp HAVING x > 1", // not a select output
		"SELECT grp, COUNT(*) AS n FROM fact GROUP BY grp HAVING n > ?", // parameter
	}
	for _, q := range bad {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse(%q): %v", q, err)
		}
		if _, err := Build(stmt, cat); err == nil {
			t.Errorf("Build(%q) should fail", q)
		}
	}
}

func TestEvalExpr(t *testing.T) {
	s := types.NewSchema(types.Col("a", types.Int), types.Col("b", types.Float))
	tuple := s.EncodeRow(types.IntDatum(10), types.FloatDatum(2.5))
	a := &ColExpr{Col: 0, Name: "a", K: types.Int}
	bcol := &ColExpr{Col: 1, Name: "b", K: types.Float}
	sum := &ArithExpr{Op: sql.OpAdd, L: a, R: bcol}
	if got := EvalFloat(sum, s, tuple); got != 12.5 {
		t.Errorf("a+b = %g", got)
	}
	mul := &ArithExpr{Op: sql.OpMul, L: a, R: &ConstExpr{D: types.IntDatum(3)}}
	if got := EvalInt(mul, s, tuple); got != 30 {
		t.Errorf("a*3 = %d", got)
	}
	if mul.Kind() != types.Int || sum.Kind() != types.Float {
		t.Error("kind inference wrong")
	}
	cols := ExprColumns(sum)
	if len(cols) != 2 {
		t.Errorf("ExprColumns = %v", cols)
	}
}
