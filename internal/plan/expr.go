// Package plan implements HIQUE's query optimizer (paper §IV): it binds a
// parsed statement against the catalogue, classifies predicates into
// selections and equi-joins, orders joins greedily to minimise intermediate
// result size, detects join teams and interesting orders (including
// physical index order on unique join keys), selects the evaluation
// algorithm for every operator, and emits the topologically sorted list of
// operator descriptors that the code generator instantiates (the input of
// Figure 3). DML statements lower to the flat WritePlan descriptor
// (write.go) instead of the operator list.
//
// Callers: hique.DB plans under the referenced tables' reader locks (the
// statistics a plan bakes in must match the data the locks pin); every
// engine — core, volcano, dsm, and the codegen pipelines — consumes the
// same descriptors. The Fusion-eligibility methods (Join.FusionEligible,
// Agg.FusionEligible) tell the generator which shapes its fused pipelines
// may claim.
//
// Ownership and pooling: a built Plan is immutable once cached — parameter
// slots (ParamSlot, the Filter/IndexScanSpec Param encoding) are resolved
// by Bind into a copy, never in place, and the serving path recycles those
// copies through the pooled BindScratch (GetBindScratch/PutBindScratch,
// one per concurrent caller). The fused pipelines skip Bind entirely and
// read the bind vector at execution time.
package plan

import (
	"fmt"

	"hique/internal/sql"
	"hique/internal/types"
)

// Expr is a bound scalar expression over a known input schema. Engines
// lower these trees themselves: the generic iterator engine interprets them
// datum-at-a-time, the holistic code generator compiles them into fused
// closures and source text.
type Expr interface {
	// Kind returns the expression's result type.
	Kind() types.Kind
	fmt.Stringer
}

// ColExpr reads column Col of the input tuple.
type ColExpr struct {
	Col  int
	Name string
	K    types.Kind
}

// Kind implements Expr.
func (e *ColExpr) Kind() types.Kind { return e.K }
func (e *ColExpr) String() string   { return e.Name }

// ConstExpr is a literal.
type ConstExpr struct{ D types.Datum }

// Kind implements Expr.
func (e *ConstExpr) Kind() types.Kind { return e.D.Kind }
func (e *ConstExpr) String() string   { return e.D.String() }

// ArithExpr is a binary arithmetic node. Numeric promotion: the result is
// Float when either side is Float, otherwise Int.
type ArithExpr struct {
	Op   sql.BinaryOp
	L, R Expr
}

// Kind implements Expr.
func (e *ArithExpr) Kind() types.Kind {
	if e.L.Kind() == types.Float || e.R.Kind() == types.Float || e.Op == sql.OpDiv {
		return types.Float
	}
	return types.Int
}

func (e *ArithExpr) String() string {
	return fmt.Sprintf("(%s %c %s)", e.L, e.Op, e.R)
}

// EvalInt evaluates an Int-kinded expression against a tuple.
func EvalInt(e Expr, schema *types.Schema, tuple []byte) int64 {
	switch v := e.(type) {
	case *ColExpr:
		return types.GetInt(tuple, schema.Offset(v.Col))
	case *ConstExpr:
		return v.D.I
	case *ArithExpr:
		l := EvalInt(v.L, schema, tuple)
		r := EvalInt(v.R, schema, tuple)
		switch v.Op {
		case sql.OpAdd:
			return l + r
		case sql.OpSub:
			return l - r
		case sql.OpMul:
			return l * r
		case sql.OpDiv:
			return l / r
		}
	}
	panic(fmt.Sprintf("plan.EvalInt: bad node %T", e))
}

// EvalFloat evaluates a numeric expression as float64.
func EvalFloat(e Expr, schema *types.Schema, tuple []byte) float64 {
	switch v := e.(type) {
	case *ColExpr:
		if v.K == types.Float {
			return types.GetFloat(tuple, schema.Offset(v.Col))
		}
		return float64(types.GetInt(tuple, schema.Offset(v.Col)))
	case *ConstExpr:
		if v.D.Kind == types.Float {
			return v.D.F
		}
		return float64(v.D.I)
	case *ArithExpr:
		l := EvalFloat(v.L, schema, tuple)
		r := EvalFloat(v.R, schema, tuple)
		switch v.Op {
		case sql.OpAdd:
			return l + r
		case sql.OpSub:
			return l - r
		case sql.OpMul:
			return l * r
		case sql.OpDiv:
			return l / r
		}
	}
	panic(fmt.Sprintf("plan.EvalFloat: bad node %T", e))
}

// EvalDatum evaluates any expression to a boxed datum.
func EvalDatum(e Expr, schema *types.Schema, tuple []byte) types.Datum {
	switch e.Kind() {
	case types.Int:
		return types.IntDatum(EvalInt(e, schema, tuple))
	case types.Date:
		return types.DateDatum(EvalInt(e, schema, tuple))
	case types.Float:
		return types.FloatDatum(EvalFloat(e, schema, tuple))
	case types.String:
		col, ok := e.(*ColExpr)
		if !ok {
			if c, isConst := e.(*ConstExpr); isConst {
				return c.D
			}
			panic("plan.EvalDatum: string expressions must be columns or constants")
		}
		c := schema.Column(col.Col)
		return types.StringDatum(types.GetString(tuple, schema.Offset(col.Col), c.Size))
	}
	panic("plan.EvalDatum: bad kind")
}

// ExprColumns returns the distinct input columns an expression reads.
func ExprColumns(e Expr) []int {
	seen := map[int]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *ColExpr:
			seen[v.Col] = true
		case *ArithExpr:
			walk(v.L)
			walk(v.R)
		}
	}
	walk(e)
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	return out
}
