package plan

import (
	"fmt"
	"strings"

	"hique/internal/sql"
	"hique/internal/types"
)

// bindScalar lowers a parsed scalar expression (no aggregates) against the
// relation's schema.
func (b *builder) bindScalar(e sql.Expr, rel *relation) (Expr, error) {
	switch v := e.(type) {
	case *sql.ColRef:
		ti, ci, err := b.resolveColumn(v)
		if err != nil {
			return nil, err
		}
		pos, ok := b.locateInRelation(rel, ti, ci)
		if !ok {
			return nil, fmt.Errorf("plan: column %s not available in intermediate result", v)
		}
		c := rel.schema.Column(pos)
		return &ColExpr{Col: pos, Name: c.Name, K: c.Kind}, nil
	case *sql.IntLit:
		return &ConstExpr{D: types.IntDatum(v.Value)}, nil
	case *sql.FloatLit:
		return &ConstExpr{D: types.FloatDatum(v.Value)}, nil
	case *sql.StringLit:
		return &ConstExpr{D: types.StringDatum(v.Value)}, nil
	case *sql.DateLit:
		return &ConstExpr{D: types.DateDatum(v.Days)}, nil
	case *sql.BinaryExpr:
		l, err := b.bindScalar(v.Left, rel)
		if err != nil {
			return nil, err
		}
		r, err := b.bindScalar(v.Right, rel)
		if err != nil {
			return nil, err
		}
		return &ArithExpr{Op: v.Op, L: l, R: r}, nil
	case *sql.AggExpr:
		return nil, fmt.Errorf("plan: aggregate %s in scalar context", v)
	case *sql.Param:
		return nil, fmt.Errorf("plan: parameter %d is not a comparison operand (parameters are supported in WHERE predicates only)", v.Index+1)
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

// outputName derives the result column name for a select item.
func outputName(item *sql.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(*sql.ColRef); ok {
		return c.Column
	}
	return strings.ToLower(item.Expr.String())
}

// planOutput builds either the aggregation descriptor or the final
// projection stage.
func (b *builder) planOutput() error {
	rel := b.currentRelation()
	if b.stmt.HasAggregates() || len(b.stmt.GroupBy) > 0 {
		return b.planAggregation(rel)
	}
	return b.planFinalProjection(rel)
}

func (b *builder) planFinalProjection(rel *relation) error {
	st := &Stage{Input: rel.ref, EstRows: rel.est}
	if rel.ref.Base >= 0 && !b.filtersUsed[rel.ref.Base] {
		for _, f := range b.filters[rel.ref.Base] {
			st.Filters = append(st.Filters, f.filter())
		}
		b.filtersUsed[rel.ref.Base] = true
		b.attachIndexScan(st, rel.ref.Base)
	}
	names := map[string]int{}
	for i := range b.stmt.Select {
		item := &b.stmt.Select[i]
		name := uniqueName(outputName(item), names)
		b.plan.OutputNames = append(b.plan.OutputNames, name)
		e, err := b.bindScalar(item.Expr, rel)
		if err != nil {
			return err
		}
		oc := OutputColumn{Name: name, Source: -1, Compute: e, Kind: e.Kind(), Size: 8}
		if col, ok := e.(*ColExpr); ok {
			oc.Source = col.Col
			oc.Compute = nil
			oc.Size = rel.schema.Column(col.Col).Size
		}
		st.Cols = append(st.Cols, oc)
	}
	st.Schema = stageSchema(st.Cols)
	b.plan.Final = st
	return nil
}

func uniqueName(name string, seen map[string]int) string {
	if n, dup := seen[name]; dup {
		seen[name] = n + 1
		return fmt.Sprintf("%s_%d", name, n+1)
	}
	seen[name] = 0
	return name
}

func (b *builder) planAggregation(rel *relation) error {
	agg := &Agg{}

	// Stage the aggregation input: group columns first, then one column
	// per aggregate argument (computed expressions become computed
	// staged columns, so the aggregation loop reads plain fields).
	st := &Stage{Input: rel.ref, EstRows: rel.est}
	if rel.ref.Base >= 0 && !b.filtersUsed[rel.ref.Base] {
		for _, f := range b.filters[rel.ref.Base] {
			st.Filters = append(st.Filters, f.filter())
		}
		b.filtersUsed[rel.ref.Base] = true
		b.attachIndexScan(st, rel.ref.Base)
	}

	// Group columns.
	groupRelPos := make([]int, len(b.stmt.GroupBy)) // position in rel schema
	for i := range b.stmt.GroupBy {
		g := &b.stmt.GroupBy[i]
		ti, ci, err := b.resolveColumn(g)
		if err != nil {
			return err
		}
		pos, ok := b.locateInRelation(rel, ti, ci)
		if !ok {
			return fmt.Errorf("plan: grouping column %s not available", g)
		}
		groupRelPos[i] = pos
		c := rel.schema.Column(pos)
		st.Cols = append(st.Cols, OutputColumn{Name: c.Name, Source: pos, Kind: c.Kind, Size: c.Size})
		agg.GroupCols = append(agg.GroupCols, i)
	}

	// Select items: group-column refs or aggregates.
	names := map[string]int{}
	var outCols []types.Column
	for i := range b.stmt.Select {
		item := &b.stmt.Select[i]
		name := uniqueName(outputName(item), names)
		b.plan.OutputNames = append(b.plan.OutputNames, name)

		switch e := item.Expr.(type) {
		case *sql.ColRef:
			ti, ci, err := b.resolveColumn(e)
			if err != nil {
				return err
			}
			pos, ok := b.locateInRelation(rel, ti, ci)
			if !ok {
				return fmt.Errorf("plan: column %s not available", e)
			}
			gi := -1
			for g, rp := range groupRelPos {
				if rp == pos {
					gi = g
					break
				}
			}
			if gi < 0 {
				return fmt.Errorf("plan: column %s must appear in GROUP BY", e)
			}
			agg.Output = append(agg.Output, OutputRef{IsAgg: false, Index: gi})
			c := rel.schema.Column(pos)
			outCols = append(outCols, types.Column{Name: name, Kind: c.Kind, Size: c.Size})

		case *sql.AggExpr:
			spec := AggSpec{Func: e.Func, Col: -1, Star: e.Star, Name: name}
			if !e.Star {
				bound, err := b.bindScalar(e.Arg, rel)
				if err != nil {
					return err
				}
				// Reuse a staged column if the same source column
				// is already staged; otherwise add one.
				spec.Col = b.stageAggArg(st, bound)
			}
			switch e.Func {
			case sql.AggCount:
				spec.Kind = types.Int
			case sql.AggAvg:
				spec.Kind = types.Float
			default:
				if spec.Col >= 0 {
					spec.Kind = st.Cols[spec.Col].Kind
				} else {
					spec.Kind = types.Int
				}
				if spec.Kind == types.Date {
					spec.Kind = types.Int
				}
			}
			agg.Output = append(agg.Output, OutputRef{IsAgg: true, Index: len(agg.Aggs)})
			agg.Aggs = append(agg.Aggs, spec)
			outCols = append(outCols, types.Column{Name: name, Kind: spec.Kind, Size: 8})

		default:
			return fmt.Errorf("plan: select item %s must be a grouping column or an aggregate", item.Expr)
		}
	}

	st.Schema = stageSchema(st.Cols)
	agg.Schema = types.NewSchema(outCols...)

	// Estimate group count.
	agg.EstGroups = 1
	for i := range b.stmt.GroupBy {
		dv := b.groupColumnDistinct(rel, groupRelPos[i], &b.stmt.GroupBy[i])
		agg.EstGroups *= dv
	}
	if agg.EstGroups > rel.est {
		agg.EstGroups = rel.est
	}
	if agg.EstGroups < 1 {
		agg.EstGroups = 1
	}

	b.chooseAggAlgorithm(agg, st, rel, groupRelPos)
	agg.Input = *st
	b.plan.Agg = agg
	return nil
}

// stageAggArg adds (or reuses) a staged column for an aggregate argument
// and returns its staged position.
func (b *builder) stageAggArg(st *Stage, bound Expr) int {
	if col, ok := bound.(*ColExpr); ok {
		for i := range st.Cols {
			if st.Cols[i].Source == col.Col && st.Cols[i].Compute == nil {
				return i
			}
		}
		st.Cols = append(st.Cols, OutputColumn{
			Name:   fmt.Sprintf("agg_arg_%d", len(st.Cols)),
			Source: col.Col,
			Kind:   col.K,
			Size:   8,
		})
		return len(st.Cols) - 1
	}
	st.Cols = append(st.Cols, OutputColumn{
		Name:    fmt.Sprintf("agg_arg_%d", len(st.Cols)),
		Source:  -1,
		Compute: bound,
		Kind:    bound.Kind(),
		Size:    8,
	})
	return len(st.Cols) - 1
}

// groupColumnDistinct estimates the distinct count of a grouping column.
func (b *builder) groupColumnDistinct(rel *relation, pos int, g *sql.ColRef) float64 {
	if ti, ci, err := b.resolveColumn(g); err == nil {
		dv := float64(b.tables[ti].Entry.Stats.Columns[ci].DistinctValues)
		if dv >= 1 {
			return dv
		}
	}
	_ = pos
	return 100 // default guess for unknown intermediates
}

// chooseAggAlgorithm applies §V-B's selection rule: map aggregation when
// the value directories plus aggregate arrays fit comfortably in L2, sort
// aggregation when the input already carries the right order, hybrid
// hash-sort otherwise.
func (b *builder) chooseAggAlgorithm(agg *Agg, st *Stage, rel *relation, groupRelPos []int) {
	if b.opts.ForceAggAlg != nil {
		agg.Alg = *b.opts.ForceAggAlg
		if agg.Alg == MapAggregation {
			if dirs, _, ok := b.aggDirectories(rel); ok {
				agg.Directories = dirs
			}
		}
		b.configureAggStaging(agg, st)
		return
	}

	// Map aggregation requires value directories for every grouping
	// attribute; those exist for grouping columns that resolve to base
	// table columns with small domains — including through a join, since
	// a join never widens a column's value domain. The cache rule of
	// §V-B: directories plus aggregate arrays must fit in the lowest
	// cache level.
	if len(agg.GroupCols) > 0 {
		if dirs, product, ok := b.aggDirectories(rel); ok {
			dirBytes := 0
			for _, d := range dirs {
				dirBytes += len(d) * 16
			}
			arrayBytes := product * 8 * float64(len(agg.Aggs)+1)
			if float64(dirBytes)+arrayBytes <= float64(b.opts.L2CacheBytes)/2 {
				agg.Alg = MapAggregation
				agg.Directories = dirs
				b.configureAggStaging(agg, st)
				return
			}
		}
	}

	// Sort aggregation when the input is already ordered on the single
	// grouping attribute (interesting order from a merge join).
	if len(groupRelPos) == 1 && rel.sortedBy >= 0 {
		if ti, ci, err := b.resolveColumn(&b.stmt.GroupBy[0]); err == nil {
			if cl, isKey := b.classOf[[2]int{ti, ci}]; isKey && cl == rel.sortedBy {
				agg.Alg = SortAggregation
				agg.Input.Action = StageNone
				b.configureAggStaging(agg, st)
				// Already sorted: no staging action needed.
				st.Action = StageNone
				st.SortKeys = nil
				return
			}
		}
	}

	agg.Alg = HybridAggregation
	b.configureAggStaging(agg, st)
}

// aggDirectories collects the per-attribute value directories for map
// aggregation. It returns ok=false if any grouping attribute lacks a
// directory (large domain, or a column the catalogue keeps no values
// for). Grouping columns are resolved to their base-table origin — a
// join restricts but never widens a column's domain, so the base
// directory stays a valid (possibly sparse) group index.
func (b *builder) aggDirectories(rel *relation) ([][]types.Datum, float64, bool) {
	if len(b.stmt.GroupBy) == 0 {
		return nil, 0, false
	}
	dirs := make([][]types.Datum, len(b.stmt.GroupBy))
	product := 1.0
	for i := range b.stmt.GroupBy {
		ti, ci, err := b.resolveColumn(&b.stmt.GroupBy[i])
		if err != nil {
			return nil, 0, false
		}
		if rel.ref.Base >= 0 && ti != rel.ref.Base {
			return nil, 0, false
		}
		dir := b.fineDirectory(ti, ci)
		if len(dir) == 0 {
			return nil, 0, false
		}
		dirs[i] = dir
		product *= float64(len(dir))
	}
	return dirs, product, true
}

// configureAggStaging sets the stage action matching the algorithm.
func (b *builder) configureAggStaging(agg *Agg, st *Stage) {
	groupStagedCols := make([]int, len(agg.GroupCols))
	copy(groupStagedCols, agg.GroupCols)
	switch agg.Alg {
	case MapAggregation:
		st.Action = StageNone // single pass, no staging (§V-B)
	case SortAggregation:
		st.Action = StageSort
		st.SortKeys = groupStagedCols
	case HybridAggregation:
		st.Action = StagePartitionCoarse
		if len(groupStagedCols) > 0 {
			st.PartitionKey = groupStagedCols[0]
		}
		st.Partitions = b.coarsePartitions(st)
		st.SortKeys = groupStagedCols
		st.SortPartitions = true
	}
}

// planSort resolves ORDER BY items against the result schema: column
// references match output aliases and schema names; any other expression
// (an aggregate or arithmetic over the select list) matches the select
// item with identical rendered text, so ORDER BY SUM(x * y) DESC keys on
// the aggregate's result column.
func (b *builder) planSort() error {
	if len(b.stmt.OrderBy) == 0 {
		return nil
	}
	s := &Sort{}
	for i := range b.stmt.OrderBy {
		item := &b.stmt.OrderBy[i]
		idx := b.resolveResultColumn(item.Expr)
		if idx < 0 {
			return fmt.Errorf("plan: ORDER BY key %s not in result", item.Expr)
		}
		s.Keys = append(s.Keys, SortKey{Col: idx, Desc: item.Desc})
	}
	b.plan.Sort = s
	return nil
}

// resolveResultColumn maps an expression to the result column it names: a
// bare identifier matches a select alias first, then a result schema
// column name (qualified or not); any other expression matches a select
// item with identical rendered text (SUM(x) in HAVING or ORDER BY finds
// SUM(x) in the select list — result column j is select item j in both
// the aggregate and projection paths). Returns -1 when nothing matches.
func (b *builder) resolveResultColumn(e sql.Expr) int {
	if col, ok := e.(*sql.ColRef); ok {
		if col.Table == "" {
			for j, n := range b.plan.OutputNames {
				if n == col.Column {
					return j
				}
			}
		}
		schema := b.plan.ResultSchema()
		for j := 0; j < schema.NumColumns(); j++ {
			n := schema.Column(j).Name
			if n == col.Column || strings.HasSuffix(n, "."+col.Column) {
				return j
			}
		}
		return -1
	}
	want := strings.ToLower(e.String())
	for j := range b.stmt.Select {
		if strings.ToLower(b.stmt.Select[j].Expr.String()) == want {
			return j
		}
	}
	return -1
}

// planHaving resolves HAVING conjuncts against the aggregated result
// schema: one side must name a select output (by alias or by matching
// expression text), the other must fold to a constant. The planner bakes
// each conjunct as a HavingFilter the engines apply between aggregation
// and the final sort.
func (b *builder) planHaving() error {
	if len(b.stmt.Having) == 0 {
		return nil
	}
	if b.plan.Agg == nil {
		return fmt.Errorf("plan: HAVING requires an aggregated query")
	}
	schema := b.plan.ResultSchema()
	for i := range b.stmt.Having {
		pr := &b.stmt.Having[i]
		idx, op := -1, pr.Op
		var operand sql.Expr
		if j := b.resolveResultColumn(pr.Left); j >= 0 {
			idx, operand = j, foldConst(pr.Right)
		} else if j := b.resolveResultColumn(pr.Right); j >= 0 {
			idx, op, operand = j, pr.Op.Flip(), foldConst(pr.Left)
		}
		if idx < 0 {
			return fmt.Errorf("plan: HAVING condition %s does not reference a select output", pr)
		}
		if operand == nil {
			return fmt.Errorf("plan: HAVING comparison value in %s must be a constant", pr)
		}
		d, err := literalDatum(operand, schema.Column(idx).Kind)
		if err != nil {
			return err
		}
		b.plan.Having = append(b.plan.Having, HavingFilter{Col: idx, Op: op, Val: d})
	}
	return nil
}
