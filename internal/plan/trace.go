package plan

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace collects per-stage execution statistics for EXPLAIN ANALYZE. A
// trace is attached to a per-execution plan copy (never to a cached,
// shared plan) via Plan.Trace; engines record into it when — and only
// when — it is non-nil, so an untraced execution pays nothing beyond the
// nil check.
//
// Stage names are canonical, derived from the plan shape rather than the
// execution strategy, so the five engines produce comparable traces:
//
//	join[J].stage[K]  staging of input K of join J (rows out = staged
//	                  tuples after filters and partition routing)
//	join[J]           the join loop (rows out = joined tuples)
//	aggregate         the aggregation operator (rows out = groups)
//	project           the final projection (rows out = result tuples)
//	sort              the final ordering (row-count preserving)
//
// RowsOut of the join and terminal stages is engine-independent (it is
// the operator's output cardinality); RowsIn and Elapsed are advisory —
// engines decompose work differently, so inputs and timings describe
// that engine's execution, not a cross-engine invariant.
type Trace struct {
	Stages []StageTrace

	// Parallel records the morsel-driven phases of this execution, one
	// entry per parallel phase (empty for serial executions). Stage
	// names match the Stages entry the phase ran under.
	Parallel []ParallelTrace
}

// StageTrace is one recorded pipeline stage.
type StageTrace struct {
	Name    string
	RowsIn  int64
	RowsOut int64
	Elapsed time.Duration
}

// ParallelTrace describes one morsel-driven parallel phase: how many
// workers cooperated (helpers actually admitted, plus the caller) and
// the rows each processed morsel produced, in morsel order. Under LIMIT
// cancellation the unclaimed tail is absent.
type ParallelTrace struct {
	Stage      string
	Workers    int
	MorselRows []int64
}

// Observe merges one stage observation into the trace: repeated
// observations under the same name (a partition-wise join loop, say)
// accumulate. Safe to call on a nil trace.
func (t *Trace) Observe(name string, rowsIn, rowsOut int64, elapsed time.Duration) {
	if t == nil {
		return
	}
	for i := range t.Stages {
		if t.Stages[i].Name == name {
			s := &t.Stages[i]
			s.RowsIn += rowsIn
			s.RowsOut += rowsOut
			s.Elapsed += elapsed
			return
		}
	}
	t.Stages = append(t.Stages, StageTrace{Name: name, RowsIn: rowsIn, RowsOut: rowsOut, Elapsed: elapsed})
}

// ObserveParallel records one morsel-driven parallel phase. Safe to
// call on a nil trace.
func (t *Trace) ObserveParallel(stage string, workers int, morselRows []int64) {
	if t == nil {
		return
	}
	t.Parallel = append(t.Parallel, ParallelTrace{Stage: stage, Workers: workers, MorselRows: morselRows})
}

// Reset clears the trace for reuse.
func (t *Trace) Reset() {
	t.Stages = t.Stages[:0]
	t.Parallel = t.Parallel[:0]
}

// String renders the trace one stage per line, parallel phases after.
func (t *Trace) String() string {
	var b strings.Builder
	for _, s := range t.Stages {
		fmt.Fprintf(&b, "%-18s rows_in=%-8d rows_out=%-8d elapsed=%s\n",
			s.Name, s.RowsIn, s.RowsOut, s.Elapsed)
	}
	for _, p := range t.Parallel {
		fmt.Fprintf(&b, "%-18s workers=%d morsels=%d rows=%v\n",
			"parallel:"+p.Stage, p.Workers, len(p.MorselRows), p.MorselRows)
	}
	return b.String()
}

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// GetTrace draws an empty trace from the pool.
func GetTrace() *Trace {
	t := tracePool.Get().(*Trace)
	t.Reset()
	return t
}

// PutTrace returns a trace to the pool; the caller must not retain it.
func PutTrace(t *Trace) { tracePool.Put(t) }

// Canonical terminal-stage names (see Trace).
const (
	TraceStageAgg     = "aggregate"
	TraceStageProject = "project"
	TraceStageSort    = "sort"
)

// TraceJoinStage names the staging of input k of join j. Only called on
// traced executions, so the formatting allocation never touches the
// serving hot path.
func TraceJoinStage(j, k int) string { return fmt.Sprintf("join[%d].stage[%d]", j, k) }

// TraceJoin names join j's join loop.
func TraceJoin(j int) string { return fmt.Sprintf("join[%d]", j) }
