package catalog

import (
	"testing"

	"hique/internal/storage"
	"hique/internal/types"
)

func sampleTable(name string, rows int) *storage.Table {
	s := types.NewSchema(types.Col("id", types.Int), types.Col("grp", types.Int), types.CharCol("tag", 8))
	t := storage.NewTable(name, s)
	for i := 0; i < rows; i++ {
		t.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i%10)), types.StringDatum([]string{"a", "b", "c"}[i%3]))
	}
	return t
}

func TestRegisterAndLookup(t *testing.T) {
	c := New()
	tbl := sampleTable("orders", 100)
	c.Register(tbl)
	e, err := c.Lookup("orders")
	if err != nil {
		t.Fatal(err)
	}
	if e.Table != tbl {
		t.Error("Lookup returned wrong table")
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Error("Lookup of unknown table should fail")
	}
}

func TestStats(t *testing.T) {
	c := New()
	e := c.Register(sampleTable("t", 100))
	st := e.Stats
	if st.Rows != 100 {
		t.Errorf("Rows = %d", st.Rows)
	}
	if st.Columns[0].DistinctValues != 100 {
		t.Errorf("id distinct = %d, want 100", st.Columns[0].DistinctValues)
	}
	if st.Columns[1].DistinctValues != 10 {
		t.Errorf("grp distinct = %d, want 10", st.Columns[1].DistinctValues)
	}
	if st.Columns[2].DistinctValues != 3 {
		t.Errorf("tag distinct = %d, want 3", st.Columns[2].DistinctValues)
	}
	if st.Columns[0].Min != 0 || st.Columns[0].Max != 99 {
		t.Errorf("id min/max = %d/%d", st.Columns[0].Min, st.Columns[0].Max)
	}
}

func TestStatsEmptyTable(t *testing.T) {
	c := New()
	e := c.Register(sampleTable("empty", 0))
	if e.Stats.Rows != 0 {
		t.Errorf("Rows = %d", e.Stats.Rows)
	}
	if e.Stats.Columns[0].Min != 0 || e.Stats.Columns[0].Max != 0 {
		t.Error("empty table min/max should be zeroed")
	}
}

func TestBuildIndexAndProbe(t *testing.T) {
	c := New()
	c.Register(sampleTable("t", 1000))
	idx, err := c.BuildIndex("t", "grp")
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1000 {
		t.Fatalf("index Len = %d", idx.Len())
	}
	rids := idx.Search(7)
	if len(rids) != 100 {
		t.Errorf("Search(grp=7) found %d rids, want 100", len(rids))
	}
	e, _ := c.Lookup("t")
	if e.Index("grp") != idx {
		t.Error("index not registered on entry")
	}
	if e.Index("id") != nil {
		t.Error("unexpected index on id")
	}
}

func TestBuildIndexErrors(t *testing.T) {
	c := New()
	c.Register(sampleTable("t", 10))
	if _, err := c.BuildIndex("missing", "id"); err == nil {
		t.Error("index on missing table should fail")
	}
	if _, err := c.BuildIndex("t", "missing"); err == nil {
		t.Error("index on missing column should fail")
	}
	if _, err := c.BuildIndex("t", "tag"); err == nil {
		t.Error("index on CHAR column should fail")
	}
}

func TestDropAndNames(t *testing.T) {
	c := New()
	c.Register(sampleTable("b", 1))
	c.Register(sampleTable("a", 1))
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	c.Drop("a")
	if _, err := c.Lookup("a"); err == nil {
		t.Error("dropped table still resolvable")
	}
}

func TestIndexRIDsResolveToMatchingTuples(t *testing.T) {
	c := New()
	tbl := sampleTable("t", 500)
	c.Register(tbl)
	idx, err := c.BuildIndex("t", "grp")
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Schema()
	off := s.Offset(1)
	for _, rid := range idx.Search(3) {
		tuple := tbl.Page(int(rid.Page)).Tuple(int(rid.Slot))
		if got := types.GetInt(tuple, off); got != 3 {
			t.Fatalf("rid %v resolves to grp=%d, want 3", rid, got)
		}
	}
}
