// Package catalog implements the system catalogue: the registry of tables,
// their schemata, indexes, and the per-column statistics the optimizer uses
// to order joins and to pick staging/aggregation algorithms (paper §IV).
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hique/internal/btree"
	"hique/internal/storage"
	"hique/internal/types"
)

// MaxDirectoryValues bounds how many distinct values the catalogue retains
// per column. Columns at or below this cardinality can be fine-partitioned
// or map-aggregated through value directories (paper §V-B); beyond it the
// optimizer falls back to coarse (hash) algorithms.
const MaxDirectoryValues = 131072

// ColumnStats summarises one column for the optimizer.
type ColumnStats struct {
	DistinctValues int
	// Min and Max are meaningful for Int/Date columns only; for others
	// they are zero.
	Min, Max int64
	// IntValues holds the sorted distinct values of an Int/Date column
	// when there are at most MaxDirectoryValues of them; nil otherwise.
	IntValues []int64
	// StrValues is the analogous directory for String columns.
	StrValues []string
}

// TableStats summarises a table.
type TableStats struct {
	Rows    int
	Columns []ColumnStats
}

// entryIDs hands out process-unique table identifiers; see TableEntry.ID.
var entryIDs atomic.Uint64

// TableEntry is a catalogued table: heap, stats, and any indexes.
type TableEntry struct {
	Table   *storage.Table
	Stats   TableStats
	Indexes map[string]*btree.Tree // column name -> index

	// id is a process-unique identifier assigned at registration. Every
	// code path that locks more than one entry acquires the locks in
	// ascending ID order (hique.DB's lock helpers), which precludes
	// deadlock against the single-table writer locks of the DML path.
	id uint64

	// mu serialises writers (row appends, stats refresh, index builds)
	// against concurrent readers of this entry. The planner and the
	// execution engines access Table/Stats/Indexes directly, so the
	// locking discipline lives in the callers: hique.DB and the serving
	// layer take RLock for the whole plan+execute span of a query and
	// Lock around every mutation.
	mu sync.RWMutex
}

// ID returns the entry's process-unique identifier: the global lock
// acquisition order for code paths that hold more than one table lock at
// once. Re-registering a name creates a new entry with a new (larger)
// ID.
func (e *TableEntry) ID() uint64 { return e.id }

// Lock acquires the entry's writer lock (inserts, stats refresh, index
// builds).
func (e *TableEntry) Lock() { e.mu.Lock() }

// Unlock releases the writer lock.
func (e *TableEntry) Unlock() { e.mu.Unlock() }

// RLock acquires the entry's reader lock (query planning and execution).
func (e *TableEntry) RLock() { e.mu.RLock() }

// RUnlock releases the reader lock.
func (e *TableEntry) RUnlock() { e.mu.RUnlock() }

// Catalog is the system catalogue. It is safe for concurrent reads; DDL
// (Register/Drop) must not race with queries on the same table.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableEntry
	// versions counts changes per table name: index builds and
	// statistics refreshes bump only the affected name, so cached plans
	// over other tables survive a hot writer.
	versions map[string]uint64
	// epoch increases on whole-catalogue changes (table registration and
	// removal) and on explicit BumpVersion calls; it is folded into every
	// stamp, so bumping it invalidates every cached plan at once.
	epoch atomic.Uint64
}

// Version returns the catalogue-wide epoch counter.
func (c *Catalog) Version() uint64 { return c.epoch.Load() }

// BumpVersion advances the epoch, invalidating every cached plan.
func (c *Catalog) BumpVersion() uint64 { return c.epoch.Add(1) }

// BumpTableVersion records a change scoped to one table (statistics
// refresh, index build): only cached plans referencing that name
// invalidate.
func (c *Catalog) BumpTableVersion(name string) {
	c.mu.Lock()
	c.versions[name]++
	c.mu.Unlock()
}

// StampFor derives the validation stamp for a plan referencing the given
// tables: the epoch plus the referenced tables' version counters. Every
// component is monotonic, so any relevant change strictly increases the
// stamp and a cached plan compiled under an older stamp self-invalidates.
func (c *Catalog) StampFor(names []string) uint64 {
	s := c.epoch.Load()
	c.mu.RLock()
	for _, n := range names {
		s += c.versions[n]
	}
	c.mu.RUnlock()
	return s
}

// TableVersion returns one table's change counter. Together with the
// epoch it lets a caller accumulate StampFor's sum without materialising
// a name slice: stamp = Version() + Σ TableVersion(nameᵢ). Each
// component is monotonic, so the decomposed read can only ever disagree
// with a stored stamp when something actually changed.
func (c *Catalog) TableVersion(name string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.versions[name]
}

// New creates an empty catalogue.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*TableEntry), versions: make(map[string]uint64)}
}

// Register adds a table and computes its statistics.
func (c *Catalog) Register(t *storage.Table) *TableEntry {
	entry := &TableEntry{
		Table:   t,
		Stats:   ComputeStats(t),
		Indexes: make(map[string]*btree.Tree),
		id:      entryIDs.Add(1),
	}
	c.mu.Lock()
	c.tables[t.Name()] = entry
	c.versions[t.Name()]++
	c.mu.Unlock()
	c.epoch.Add(1)
	return entry
}

// RegisterWithoutStats adds a table with row count only (used for staged
// intermediates where full stats are unnecessary).
func (c *Catalog) RegisterWithoutStats(t *storage.Table) *TableEntry {
	entry := &TableEntry{
		Table:   t,
		Stats:   TableStats{Rows: t.NumRows(), Columns: make([]ColumnStats, t.Schema().NumColumns())},
		Indexes: make(map[string]*btree.Tree),
		id:      entryIDs.Add(1),
	}
	c.mu.Lock()
	c.tables[t.Name()] = entry
	c.versions[t.Name()]++
	c.mu.Unlock()
	c.epoch.Add(1)
	return entry
}

// Lookup returns the entry for a table name.
func (c *Catalog) Lookup(name string) (*TableEntry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return e, nil
}

// Drop removes a table from the catalogue.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	delete(c.tables, name)
	c.versions[name]++
	c.mu.Unlock()
	c.epoch.Add(1)
}

// Names returns all catalogued table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BuildIndex constructs a fractal B+-tree index on an Int/Date column and
// registers it under the column name.
func (c *Catalog) BuildIndex(table, column string) (*btree.Tree, error) {
	e, err := c.Lookup(table)
	if err != nil {
		return nil, err
	}
	s := e.Table.Schema()
	ci := s.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("catalog: table %q has no column %q", table, column)
	}
	if k := s.Column(ci).Kind; k != types.Int && k != types.Date {
		return nil, fmt.Errorf("catalog: cannot index %v column %q", k, column)
	}
	tree := buildTree(e.Table, ci)
	c.mu.Lock()
	e.Indexes[column] = tree
	c.versions[table]++
	c.mu.Unlock()
	return tree, nil
}

// buildTree scans the heap and constructs a fresh index tree over column
// ci.
func buildTree(t *storage.Table, ci int) *btree.Tree {
	tree := btree.New()
	off := t.Schema().Offset(ci)
	for p := 0; p < t.NumPages(); p++ {
		page := t.Page(p)
		n := page.NumTuples()
		for i := 0; i < n; i++ {
			key := types.GetInt(page.Tuple(i), off)
			tree.Insert(key, btree.RID{Page: int32(p), Slot: int32(i)})
		}
	}
	return tree
}

// RebuildIndexes reconstructs the named indexes of a table from its
// current heap (every registered index when columns is nil). The caller
// must hold the entry's writer lock: row identifiers change whenever rows
// move (DELETE compaction) and index keys change when an UPDATE assigns
// an indexed column, so the write path rebuilds affected trees before the
// lock releases. Rebuilding does not bump the table version — the write
// that made it necessary marks statistics stale, and the refresh bumps
// the version exactly once per statement.
func (e *TableEntry) RebuildIndexes(columns []string) {
	rebuild := func(column string) {
		ci := e.Table.Schema().ColumnIndex(column)
		if ci < 0 {
			return
		}
		e.Indexes[column] = buildTree(e.Table, ci)
	}
	if columns == nil {
		for column := range e.Indexes {
			rebuild(column)
		}
		return
	}
	for _, column := range columns {
		if _, ok := e.Indexes[column]; ok {
			rebuild(column)
		}
	}
}

// Index returns the index on the given column, if any.
func (e *TableEntry) Index(column string) *btree.Tree {
	return e.Indexes[column]
}

// IndexColumns returns the indexed column names in sorted order, so
// durability snapshots record index DDL deterministically. Callers hold
// the entry's lock (or have the catalogue to themselves, as recovery
// does).
func (e *TableEntry) IndexColumns() []string {
	cols := make([]string, 0, len(e.Indexes))
	for c := range e.Indexes {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// ComputeStats scans a table once and derives per-column statistics.
// Distinct-value counts are exact for small cardinalities and cap out at
// maxExactDistinct, beyond which the count is reported as the cap (the
// optimizer only needs "small enough for a value directory" vs "large").
func ComputeStats(t *storage.Table) TableStats {
	const maxExactDistinct = 1 << 20
	s := t.Schema()
	n := s.NumColumns()
	stats := TableStats{Rows: t.NumRows(), Columns: make([]ColumnStats, n)}

	intSets := make([]map[int64]struct{}, n)
	strSets := make([]map[string]struct{}, n)
	floatSets := make([]map[float64]struct{}, n)
	for i := 0; i < n; i++ {
		switch s.Column(i).Kind {
		case types.Int, types.Date:
			intSets[i] = make(map[int64]struct{})
			stats.Columns[i].Min = int64(^uint64(0) >> 1)
			stats.Columns[i].Max = -stats.Columns[i].Min - 1
		case types.Float:
			floatSets[i] = make(map[float64]struct{})
		case types.String:
			strSets[i] = make(map[string]struct{})
		}
	}

	t.Scan(func(tuple []byte) bool {
		for i := 0; i < n; i++ {
			col := s.Column(i)
			off := s.Offset(i)
			switch col.Kind {
			case types.Int, types.Date:
				v := types.GetInt(tuple, off)
				if len(intSets[i]) < maxExactDistinct {
					intSets[i][v] = struct{}{}
				}
				if v < stats.Columns[i].Min {
					stats.Columns[i].Min = v
				}
				if v > stats.Columns[i].Max {
					stats.Columns[i].Max = v
				}
			case types.Float:
				if len(floatSets[i]) < maxExactDistinct {
					floatSets[i][types.GetFloat(tuple, off)] = struct{}{}
				}
			case types.String:
				if len(strSets[i]) < maxExactDistinct {
					strSets[i][types.GetString(tuple, off, col.Size)] = struct{}{}
				}
			}
		}
		return true
	})

	for i := 0; i < n; i++ {
		switch s.Column(i).Kind {
		case types.Int, types.Date:
			stats.Columns[i].DistinctValues = len(intSets[i])
			if len(intSets[i]) > 0 && len(intSets[i]) <= MaxDirectoryValues {
				vals := make([]int64, 0, len(intSets[i]))
				for v := range intSets[i] {
					vals = append(vals, v)
				}
				sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
				stats.Columns[i].IntValues = vals
			}
		case types.Float:
			stats.Columns[i].DistinctValues = len(floatSets[i])
		case types.String:
			stats.Columns[i].DistinctValues = len(strSets[i])
			if len(strSets[i]) > 0 && len(strSets[i]) <= MaxDirectoryValues {
				vals := make([]string, 0, len(strSets[i]))
				for v := range strSets[i] {
					vals = append(vals, v)
				}
				sort.Strings(vals)
				stats.Columns[i].StrValues = vals
			}
		}
		if stats.Rows == 0 {
			stats.Columns[i].Min, stats.Columns[i].Max = 0, 0
		}
	}
	return stats
}
