package volcano

import (
	"fmt"
	"time"

	"hique/internal/plan"
	"hique/internal/storage"
	"hique/internal/types"
)

// Engine executes optimizer plans through iterator trees: the traditional
// engine design HIQUE is compared against. Intermediate join results are
// materialised between operators, as in the paper's evaluation setup.
type Engine struct {
	mode Mode
}

// NewGeneric builds the generic-iterator engine.
func NewGeneric() *Engine { return &Engine{mode: Generic} }

// NewOptimized builds the type-specialised iterator engine.
func NewOptimized() *Engine { return &Engine{mode: Optimized} }

// Name identifies the engine in experiment output.
func (e *Engine) Name() string { return e.mode.String() }

// Execute runs the plan and materialises the result.
func (e *Engine) Execute(p *plan.Plan) (*storage.Table, error) {
	joinOut := make([][]Row, len(p.Joins))

	resolveRows := func(ref plan.InputRef) ([]Row, *types.Schema, error) {
		if ref.Base >= 0 {
			t := p.Tables[ref.Base].Entry.Table
			rows, err := Drain(NewScan(t))
			return rows, t.Schema(), err
		}
		if ref.Join < 0 || ref.Join >= len(joinOut) || joinOut[ref.Join] == nil {
			return nil, nil, fmt.Errorf("volcano: dangling input %v", ref)
		}
		return joinOut[ref.Join], p.Joins[ref.Join].Schema, nil
	}

	tr := p.Trace
	for ji, j := range p.Joins {
		rows, err := e.runJoin(tr, ji, j, resolveRows)
		if err != nil {
			return nil, err
		}
		joinOut[ji] = rows
	}

	var result []Row
	var schema *types.Schema
	var t0 time.Time
	switch {
	case p.Agg != nil:
		rows, err := e.runAgg(tr, p.Agg, resolveRows)
		if err != nil {
			return nil, err
		}
		result, schema = rows, p.Agg.Schema
	case p.Final != nil:
		if tr != nil {
			t0 = time.Now()
		}
		in, _, err := resolveRows(p.Final.Input)
		if err != nil {
			return nil, err
		}
		it := e.stageIterator(p.Final, NewSlice(in))
		rows, err := Drain(it)
		if err != nil {
			return nil, err
		}
		result, schema = rows, p.Final.Schema
		if tr != nil {
			tr.Observe(plan.TraceStageProject, int64(len(in)), int64(len(rows)), time.Since(t0))
		}
	default:
		return nil, fmt.Errorf("volcano: empty plan")
	}

	if len(p.Having) > 0 {
		kept := result[:0:0]
		for _, r := range result {
			ok := true
			for _, h := range p.Having {
				if !h.Op.Holds(types.Compare(r[h.Col], h.Val)) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, r)
			}
		}
		result = kept
	}

	if p.Sort != nil {
		if tr != nil {
			t0 = time.Now()
		}
		it := NewSort(NewSlice(result), sortLess(e.mode, p.Sort.Keys))
		var err error
		result, err = Drain(it)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			n := int64(len(result))
			tr.Observe(plan.TraceStageSort, n, n, time.Since(t0))
		}
	}
	if p.Limit >= 0 && len(result) > p.Limit {
		result = result[:p.Limit]
	}

	out := storage.NewTable("result", schema)
	for _, r := range result {
		out.AppendRow(r...)
	}
	return out, nil
}

// stageIterator wraps an input with the stage's filter and projection.
func (e *Engine) stageIterator(st *plan.Stage, in Iterator) Iterator {
	it := in
	if pred := compilePredicates(e.mode, st.Filters); pred != nil {
		it = NewFilter(it, pred)
	}
	return NewProject(it, compileProjection(e.mode, st.Cols))
}

// runJoin evaluates a join descriptor with iterators. Multi-input (team)
// descriptors cascade into binary merge joins — the iterator engine has no
// team evaluation, which is exactly the gap Figure 7(b) measures.
func (e *Engine) runJoin(tr *plan.Trace, ji int, j *plan.Join, resolve func(plan.InputRef) ([]Row, *types.Schema, error)) ([]Row, error) {
	k := len(j.Inputs)
	staged := make([][]Row, k)
	var inRows, stagedOut []int64
	var stageEl []time.Duration
	var t0, tj time.Time
	if tr != nil {
		inRows = make([]int64, k)
		stagedOut = make([]int64, k)
		stageEl = make([]time.Duration, k)
	}
	for i := range j.Inputs {
		if tr != nil {
			t0 = time.Now()
		}
		in, _, err := resolve(j.Inputs[i].Input)
		if err != nil {
			return nil, err
		}
		rows, err := Drain(e.stageIterator(&j.Inputs[i], NewSlice(in)))
		if err != nil {
			return nil, err
		}
		staged[i] = rows
		if tr != nil {
			inRows[i] = int64(len(in))
			stageEl[i] = time.Since(t0)
		}
	}
	if tr != nil {
		tj = time.Now()
	}

	// Column block offset of each input in the concatenated row.
	offsets := make([]int, k)
	for i := 1; i < k; i++ {
		offsets[i] = offsets[i-1] + len(j.Inputs[i-1].Cols)
	}

	var joined []Row
	switch j.Alg {
	case plan.MergeJoin:
		if tr != nil {
			for i := range staged {
				stagedOut[i] = int64(len(staged[i]))
			}
		}
		rows, err := e.cascadeMerge(j, staged, offsets, nil)
		if err != nil {
			return nil, err
		}
		joined = rows

	case plan.FinePartitionJoin, plan.HybridJoin:
		// Partition every input identically, then join partition-wise.
		m := partitionCountOf(j)
		parts := make([][][]Row, k)
		for i := range staged {
			p, err := e.partitionRows(staged[i], &j.Inputs[i], j.Keys[i], m)
			if err != nil {
				return nil, err
			}
			parts[i] = p
			if tr != nil {
				// Staged row count is post-routing: a fine partition's value
				// directory may drop tuples, and the other engines count
				// after that drop.
				for pi := range p {
					stagedOut[i] += int64(len(p[pi]))
				}
			}
		}
		for pi := 0; pi < m; pi++ {
			slice := make([][]Row, k)
			empty := false
			for i := range parts {
				slice[i] = parts[i][pi]
				if len(slice[i]) == 0 {
					empty = true
					break
				}
			}
			if empty {
				continue
			}
			if j.Alg == plan.FinePartitionJoin {
				joined = appendCartesian(joined, slice, offsets)
				continue
			}
			rows, err := e.cascadeMerge(j, slice, offsets, nil)
			if err != nil {
				return nil, err
			}
			joined = append(joined, rows...)
		}
	}

	// Final projection onto the join's output schema.
	out := make([]Row, len(joined))
	for r, row := range joined {
		res := make(Row, len(j.Out))
		for pos, o := range j.Out {
			res[pos] = row[offsets[o.Input]+o.Col]
		}
		out[r] = res
	}
	if tr != nil {
		var sum int64
		for i := range stagedOut {
			tr.Observe(plan.TraceJoinStage(ji, i), inRows[i], stagedOut[i], stageEl[i])
			sum += stagedOut[i]
		}
		tr.Observe(plan.TraceJoin(ji), sum, int64(len(out)), time.Since(tj))
	}
	return out, nil
}

func partitionCountOf(j *plan.Join) int {
	for i := range j.Inputs {
		switch j.Inputs[i].Action {
		case plan.StagePartitionCoarse:
			return j.Inputs[i].Partitions
		case plan.StagePartitionFine:
			return len(j.Inputs[i].FineValues)
		}
	}
	return 1
}

// partitionRows splits staged rows into m buckets per the stage action.
func (e *Engine) partitionRows(rows []Row, st *plan.Stage, key, m int) ([][]Row, error) {
	out := make([][]Row, m)
	if len(rows) > 0 && key >= len(rows[0]) {
		// Group-less aggregates stage attribute-free rows: no key to
		// partition on, everything lands in bucket 0.
		out[0] = rows
		return out, nil
	}
	switch st.Action {
	case plan.StagePartitionFine:
		for _, r := range rows {
			if p := dirLookup(st.FineValues, r[key]); p >= 0 {
				out[p] = append(out[p], r)
			}
		}
	case plan.StagePartitionCoarse:
		mask := uint64(m - 1)
		for _, r := range rows {
			out[hashRowKey(r[key])&mask] = append(out[hashRowKey(r[key])&mask], r)
		}
	default:
		if m != 1 {
			return nil, fmt.Errorf("volcano: unpartitioned stage feeding %d partitions", m)
		}
		out[0] = rows
	}
	return out, nil
}

func hashRowKey(d types.Datum) uint64 {
	if d.Kind == types.String {
		h := uint64(14695981039346656037)
		for i := 0; i < len(d.S); i++ {
			h ^= uint64(d.S[i])
			h *= 1099511628211
		}
		return h
	}
	x := uint64(d.I) * 0x9E3779B97F4A7C15
	return x ^ (x >> 29)
}

// cascadeMerge runs the k-input join as a left-deep cascade of binary
// merge joins over key-sorted streams; the intermediate stays sorted on
// the shared key so later merges need no re-sort.
func (e *Engine) cascadeMerge(j *plan.Join, staged [][]Row, offsets []int, _ any) ([]Row, error) {
	// Sort each input on its key.
	sorted := make([][]Row, len(staged))
	for i := range staged {
		it := NewSort(NewSlice(staged[i]), keyLess(e.mode, []int{j.Keys[i]}))
		rows, err := Drain(it)
		if err != nil {
			return nil, err
		}
		sorted[i] = rows
	}
	cur := sorted[0]
	curKey := j.Keys[0]
	for i := 1; i < len(sorted); i++ {
		rightKey := j.Keys[i]
		cmp := keyCompare(e.mode, []int{curKey}, []int{rightKey})
		sameLeft := keyCompare(e.mode, []int{curKey}, []int{curKey})
		combine := func(l, r Row) Row {
			out := make(Row, len(l)+len(r))
			copy(out, l)
			copy(out[len(l):], r)
			return out
		}
		it := NewMergeJoin(NewSlice(cur), NewSlice(sorted[i]),
			cmp,
			func(a, b Row) bool { return sameLeft(a, b) == 0 },
			combine)
		rows, err := Drain(it)
		if err != nil {
			return nil, err
		}
		cur = rows
		// curKey position unchanged: the key column of input 0 stays at
		// its offset in the concatenated row.
	}
	return cur, nil
}

// appendCartesian emits the cross product of per-input row sets (fine
// partition join: all tuples in corresponding partitions match).
func appendCartesian(dst []Row, parts [][]Row, offsets []int) []Row {
	total := len(offsets[len(offsets)-1:])
	_ = total
	cur := make([]Row, len(parts))
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(parts) {
			width := 0
			for _, r := range cur {
				width += len(r)
			}
			row := make(Row, 0, width)
			for _, r := range cur {
				row = append(row, r...)
			}
			dst = append(dst, row)
			return
		}
		for _, r := range parts[depth] {
			cur[depth] = r
			rec(depth + 1)
		}
	}
	rec(0)
	return dst
}

// runAgg evaluates the aggregation operator.
func (e *Engine) runAgg(tr *plan.Trace, a *plan.Agg, resolve func(plan.InputRef) ([]Row, *types.Schema, error)) ([]Row, error) {
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	in, _, err := resolve(a.Input.Input)
	if err != nil {
		return nil, err
	}
	rows, err := e.aggRows(a, in)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Observe(plan.TraceStageAgg, int64(len(in)), int64(len(rows)), time.Since(t0))
	}
	return rows, nil
}

// aggRows evaluates the aggregation algorithm over the resolved input.
func (e *Engine) aggRows(a *plan.Agg, in []Row) ([]Row, error) {
	staged := e.stageIterator(&a.Input, NewSlice(in))

	switch a.Alg {
	case plan.MapAggregation:
		it, err := NewMapAgg(staged, a)
		if err != nil {
			return nil, err
		}
		return Drain(it)

	case plan.SortAggregation:
		sorted := NewSort(staged, keyLess(e.mode, a.GroupCols))
		return Drain(NewSortAgg(sorted, a, e.mode))

	case plan.HybridAggregation:
		rows, err := Drain(staged)
		if err != nil {
			return nil, err
		}
		m := a.Input.Partitions
		if m <= 0 {
			m = 1
		}
		key := a.Input.PartitionKey
		parts := make([][]Row, m)
		mask := uint64(m - 1)
		for _, r := range rows {
			p := 0
			if key < len(r) { // group-less aggregates stage empty rows
				p = int(hashRowKey(r[key]) & mask)
			}
			parts[p] = append(parts[p], r)
		}
		var out []Row
		for _, part := range parts {
			if len(part) == 0 {
				continue
			}
			sorted := NewSort(NewSlice(part), keyLess(e.mode, a.GroupCols))
			rows, err := Drain(NewSortAgg(sorted, a, e.mode))
			if err != nil {
				return nil, err
			}
			out = append(out, rows...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("volcano: unknown aggregation %v", a.Alg)
}
