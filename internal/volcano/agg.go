package volcano

import (
	"fmt"
	"math"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/types"
)

// aggState is the boxed accumulator used by the iterator engine.
type aggState struct {
	sumF   []float64
	sumI   []int64
	cnt    []int64
	minF   []float64
	maxF   []float64
	minI   []int64
	maxI   []int64
	tuples int64
}

func newAggState(n int) *aggState {
	s := &aggState{
		sumF: make([]float64, n), sumI: make([]int64, n), cnt: make([]int64, n),
		minF: make([]float64, n), maxF: make([]float64, n),
		minI: make([]int64, n), maxI: make([]int64, n),
	}
	s.reset()
	return s
}

func (s *aggState) reset() {
	for i := range s.sumF {
		s.sumF[i], s.sumI[i], s.cnt[i] = 0, 0, 0
		s.minF[i], s.maxF[i] = math.Inf(1), math.Inf(-1)
		s.minI[i], s.maxI[i] = math.MaxInt64, math.MinInt64
	}
	s.tuples = 0
}

func (s *aggState) update(a *plan.Agg, row Row) {
	s.tuples++
	for i := range a.Aggs {
		spec := &a.Aggs[i]
		if spec.Star {
			continue
		}
		d := row[spec.Col]
		switch spec.Func {
		case sql.AggSum:
			if d.Kind == types.Float {
				s.sumF[i] += d.F
			} else {
				s.sumI[i] += d.I
			}
		case sql.AggAvg:
			s.sumF[i] += asFloat(d)
			s.cnt[i]++
		case sql.AggCount:
			s.cnt[i]++
		case sql.AggMin:
			if d.Kind == types.Float {
				if d.F < s.minF[i] {
					s.minF[i] = d.F
				}
			} else if d.I < s.minI[i] {
				s.minI[i] = d.I
			}
		case sql.AggMax:
			if d.Kind == types.Float {
				if d.F > s.maxF[i] {
					s.maxF[i] = d.F
				}
			} else if d.I > s.maxI[i] {
				s.maxI[i] = d.I
			}
		}
	}
}

func (s *aggState) result(a *plan.Agg, rep Row) Row {
	out := make(Row, len(a.Output))
	for pos, ref := range a.Output {
		if !ref.IsAgg {
			out[pos] = rep[a.GroupCols[ref.Index]]
			continue
		}
		i := ref.Index
		spec := &a.Aggs[i]
		switch spec.Func {
		case sql.AggSum:
			if spec.Kind == types.Float {
				out[pos] = types.FloatDatum(s.sumF[i])
			} else {
				out[pos] = types.IntDatum(s.sumI[i])
			}
		case sql.AggAvg:
			if s.cnt[i] > 0 {
				out[pos] = types.FloatDatum(s.sumF[i] / float64(s.cnt[i]))
			} else {
				out[pos] = types.FloatDatum(0)
			}
		case sql.AggCount:
			if spec.Star {
				out[pos] = types.IntDatum(s.tuples)
			} else {
				out[pos] = types.IntDatum(s.cnt[i])
			}
		case sql.AggMin:
			if spec.Kind == types.Float {
				out[pos] = types.FloatDatum(s.minF[i])
			} else {
				out[pos] = types.IntDatum(s.minI[i])
			}
		case sql.AggMax:
			if spec.Kind == types.Float {
				out[pos] = types.FloatDatum(s.maxF[i])
			} else {
				out[pos] = types.IntDatum(s.maxI[i])
			}
		}
	}
	return out
}

// sortAggIter implements sort aggregation: the child must be ordered on
// the grouping attributes; groups close on key change.
type sortAggIter struct {
	child   Iterator
	agg     *plan.Agg
	sameKey func(a, b Row) int
	state   *aggState

	rep     Row
	pending Row
	done    bool
}

// NewSortAgg aggregates a group-sorted child.
func NewSortAgg(child Iterator, agg *plan.Agg, mode Mode) Iterator {
	return &sortAggIter{
		child:   child,
		agg:     agg,
		sameKey: keyCompare(mode, agg.GroupCols, agg.GroupCols),
		state:   newAggState(len(agg.Aggs)),
	}
}

func (s *sortAggIter) Open() error {
	s.state.reset()
	s.rep, s.pending, s.done = nil, nil, false
	return s.child.Open()
}

func (s *sortAggIter) Next() (Row, bool, error) {
	if s.done {
		return nil, false, nil
	}
	if s.pending != nil {
		s.rep = s.pending
		s.pending = nil
		s.state.update(s.agg, s.rep)
	}
	for {
		row, ok, err := s.child.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.done = true
			if s.rep == nil {
				return nil, false, nil
			}
			out := s.state.result(s.agg, s.rep)
			s.rep = nil
			return out, true, nil
		}
		if s.rep == nil {
			s.rep = row
			s.state.update(s.agg, row)
			continue
		}
		if s.sameKey(s.rep, row) != 0 {
			out := s.state.result(s.agg, s.rep)
			s.state.reset()
			s.pending = row
			return out, true, nil
		}
		s.state.update(s.agg, row)
	}
}

func (s *sortAggIter) Close() error { return s.child.Close() }

// mapAggIter implements map aggregation in iterator form: one pass over the
// child with directory lookups per tuple (§VI-A's "Map - Iterators").
type mapAggIter struct {
	child Iterator
	agg   *plan.Agg

	states  []*aggState
	strides []int
	emitPos int
	drained bool
	idxs    []int
}

// NewMapAgg aggregates through value directories.
func NewMapAgg(child Iterator, agg *plan.Agg) (Iterator, error) {
	if len(agg.Directories) != len(agg.GroupCols) {
		return nil, fmt.Errorf("volcano: map aggregation needs directories")
	}
	return &mapAggIter{child: child, agg: agg}, nil
}

func (m *mapAggIter) Open() error {
	n := 1
	m.strides = make([]int, len(m.agg.GroupCols))
	for i := len(m.agg.GroupCols) - 1; i >= 0; i-- {
		m.strides[i] = n
		n *= len(m.agg.Directories[i])
	}
	m.states = make([]*aggState, n)
	m.emitPos = 0
	m.drained = false
	m.idxs = make([]int, len(m.agg.GroupCols))
	return m.child.Open()
}

func (m *mapAggIter) Next() (Row, bool, error) {
	if !m.drained {
		for {
			row, ok, err := m.child.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			slot := 0
			miss := false
			for i, gc := range m.agg.GroupCols {
				di := dirLookup(m.agg.Directories[i], row[gc])
				if di < 0 {
					miss = true
					break
				}
				slot += di * m.strides[i]
			}
			if miss {
				continue
			}
			if m.states[slot] == nil {
				m.states[slot] = newAggState(len(m.agg.Aggs))
			}
			m.states[slot].update(m.agg, row)
		}
		m.drained = true
	}
	for m.emitPos < len(m.states) {
		slot := m.emitPos
		m.emitPos++
		if m.states[slot] == nil {
			continue
		}
		rep := make(Row, len(m.agg.Input.Cols))
		rem := slot
		for i := range m.agg.GroupCols {
			m.idxs[i] = rem / m.strides[i]
			rem %= m.strides[i]
			rep[m.agg.GroupCols[i]] = m.agg.Directories[i][m.idxs[i]]
		}
		return m.states[slot].result(m.agg, rep), true, nil
	}
	return nil, false, nil
}

func (m *mapAggIter) Close() error { return m.child.Close() }

func dirLookup(dir []types.Datum, v types.Datum) int {
	lo, hi := 0, len(dir)
	for lo < hi {
		mid := (lo + hi) / 2
		if types.Compare(dir[mid], v) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(dir) && types.Compare(dir[lo], v) == 0 {
		return lo
	}
	return -1
}
