// Package volcano implements the iterator-model query engine HIQUE is
// measured against (paper §II-B): every operator exposes open / next /
// close, tuples flow one at a time through the operator tree, and each
// in-flight tuple costs at least two function calls plus the per-call state
// manipulation the paper identifies as the model's overhead.
//
// Two evaluation modes reproduce the paper's baseline pair (§VI-A):
//
//   - Generic: predicate evaluation, field comparison, and expression
//     evaluation go through dynamically dispatched, kind-agnostic routines
//     (types.Compare and friends) — the "generic functions" configuration.
//   - Optimized: predicates and comparators are type-specialised closures
//     with inlined field access — "optimized iterators" — but tuples still
//     move through per-tuple iterator calls.
package volcano

import (
	"sort"

	"hique/internal/storage"
	"hique/internal/types"
)

// Row is a boxed tuple flowing through iterators.
type Row = []types.Datum

// Iterator is the paper's operator interface (§II-B).
type Iterator interface {
	// Open initialises operator state.
	Open() error
	// Next produces the next tuple; ok=false at end of stream.
	Next() (Row, bool, error)
	// Close releases operator resources.
	Close() error
}

// --- Scan -------------------------------------------------------------------

type scanIter struct {
	table  *storage.Table
	schema *types.Schema
	page   int
	slot   int
}

// NewScan returns a table scan iterator.
func NewScan(t *storage.Table) Iterator {
	return &scanIter{table: t, schema: t.Schema()}
}

func (s *scanIter) Open() error { s.page, s.slot = 0, 0; return nil }

func (s *scanIter) Next() (Row, bool, error) {
	for s.page < s.table.NumPages() {
		p := s.table.Page(s.page)
		if s.slot < p.NumTuples() {
			row := s.schema.DecodeRow(p.Tuple(s.slot))
			s.slot++
			return row, true, nil
		}
		s.page++
		s.slot = 0
	}
	return nil, false, nil
}

func (s *scanIter) Close() error { return nil }

// --- Filter -----------------------------------------------------------------

type filterIter struct {
	child Iterator
	pred  func(Row) bool
}

// NewFilter wraps child with a selection.
func NewFilter(child Iterator, pred func(Row) bool) Iterator {
	return &filterIter{child: child, pred: pred}
}

func (f *filterIter) Open() error { return f.child.Open() }

func (f *filterIter) Next() (Row, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		if f.pred(row) {
			return row, true, nil
		}
	}
}

func (f *filterIter) Close() error { return f.child.Close() }

// --- Project ----------------------------------------------------------------

type projectIter struct {
	child Iterator
	proj  func(Row) Row
}

// NewProject wraps child with a projection.
func NewProject(child Iterator, proj func(Row) Row) Iterator {
	return &projectIter{child: child, proj: proj}
}

func (p *projectIter) Open() error { return p.child.Open() }

func (p *projectIter) Next() (Row, bool, error) {
	row, ok, err := p.child.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	return p.proj(row), true, nil
}

func (p *projectIter) Close() error { return p.child.Close() }

// --- Sort (blocking) --------------------------------------------------------

type sortIter struct {
	child Iterator
	less  func(a, b Row) bool
	rows  []Row
	pos   int
}

// NewSort buffers the child's output and replays it ordered.
func NewSort(child Iterator, less func(a, b Row) bool) Iterator {
	return &sortIter{child: child, less: less}
}

func (s *sortIter) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	for {
		row, ok, err := s.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, row)
	}
	if err := s.child.Close(); err != nil {
		return err
	}
	sort.SliceStable(s.rows, func(i, j int) bool { return s.less(s.rows[i], s.rows[j]) })
	s.pos = 0
	return nil
}

func (s *sortIter) Next() (Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sortIter) Close() error { s.rows = nil; return nil }

// --- Slice replay -----------------------------------------------------------

type sliceIter struct {
	rows []Row
	pos  int
}

// NewSlice replays an in-memory row slice.
func NewSlice(rows []Row) Iterator { return &sliceIter{rows: rows} }

func (s *sliceIter) Open() error { s.pos = 0; return nil }

func (s *sliceIter) Next() (Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sliceIter) Close() error { return nil }

// --- Merge join -------------------------------------------------------------

// mergeJoinIter joins two key-sorted inputs, buffering the inner group so
// outer duplicates can rescan it (the backtracking of Listing 2's merge
// variant).
type mergeJoinIter struct {
	left, right Iterator
	cmp         func(l, r Row) int // key comparison across inputs
	sameLeftKey func(a, b Row) bool
	combine     func(l, r Row) Row

	leftRow  Row
	leftOK   bool
	rightRow Row
	rightOK  bool
	group    []Row // buffered inner group for the current key
	groupPos int
	groupKey Row // a left row matching the buffered group
	started  bool
}

// NewMergeJoin joins sorted inputs; cmp compares a left row with a right
// row on the join keys.
func NewMergeJoin(left, right Iterator, cmp func(l, r Row) int, sameLeftKey func(a, b Row) bool, combine func(l, r Row) Row) Iterator {
	return &mergeJoinIter{left: left, right: right, cmp: cmp, sameLeftKey: sameLeftKey, combine: combine}
}

func (m *mergeJoinIter) Open() error {
	if err := m.left.Open(); err != nil {
		return err
	}
	if err := m.right.Open(); err != nil {
		return err
	}
	var err error
	m.leftRow, m.leftOK, err = m.left.Next()
	if err != nil {
		return err
	}
	m.rightRow, m.rightOK, err = m.right.Next()
	return err
}

func (m *mergeJoinIter) Next() (Row, bool, error) {
	for {
		// Emit from the buffered group first.
		if m.group != nil {
			if m.groupPos < len(m.group) {
				out := m.combine(m.groupKey, m.group[m.groupPos])
				m.groupPos++
				return out, true, nil
			}
			// Group exhausted: advance the outer row; if its key
			// matches, backtrack to the group start.
			prev := m.groupKey
			var err error
			m.leftRow, m.leftOK, err = m.left.Next()
			if err != nil {
				return nil, false, err
			}
			if m.leftOK && m.sameLeftKey(prev, m.leftRow) {
				m.groupKey = m.leftRow
				m.groupPos = 0
				continue
			}
			m.group = nil
			m.groupPos = 0
		}

		if !m.leftOK || !m.rightOK {
			return nil, false, nil
		}
		c := m.cmp(m.leftRow, m.rightRow)
		var err error
		switch {
		case c < 0:
			m.leftRow, m.leftOK, err = m.left.Next()
			if err != nil {
				return nil, false, err
			}
		case c > 0:
			m.rightRow, m.rightOK, err = m.right.Next()
			if err != nil {
				return nil, false, err
			}
		default:
			// Buffer the full inner group for this key.
			m.group = m.group[:0]
			m.groupKey = m.leftRow
			first := m.rightRow
			m.group = append(m.group, first)
			for {
				m.rightRow, m.rightOK, err = m.right.Next()
				if err != nil {
					return nil, false, err
				}
				if !m.rightOK || m.cmp(m.leftRow, m.rightRow) != 0 {
					break
				}
				m.group = append(m.group, m.rightRow)
			}
			m.groupPos = 0
		}
	}
}

func (m *mergeJoinIter) Close() error {
	if err := m.left.Close(); err != nil {
		return err
	}
	return m.right.Close()
}

// --- Limit ------------------------------------------------------------------

type limitIter struct {
	child Iterator
	n     int
	seen  int
}

// NewLimit truncates the child's stream after n rows.
func NewLimit(child Iterator, n int) Iterator {
	return &limitIter{child: child, n: n}
}

func (l *limitIter) Open() error { l.seen = 0; return l.child.Open() }

func (l *limitIter) Next() (Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.child.Next()
	if ok {
		l.seen++
	}
	return row, ok, err
}

func (l *limitIter) Close() error { return l.child.Close() }

// Drain pulls every row from an iterator.
func Drain(it Iterator) ([]Row, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	var rows []Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	return rows, it.Close()
}
