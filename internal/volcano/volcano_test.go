package volcano

import (
	"testing"

	"hique/internal/catalog"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

func rowsOf(vals ...int64) []Row {
	out := make([]Row, len(vals))
	for i, v := range vals {
		out[i] = Row{types.IntDatum(v)}
	}
	return out
}

func TestScanIter(t *testing.T) {
	s := types.NewSchema(types.Col("a", types.Int))
	tbl := storage.NewTable("t", s)
	for i := 0; i < 700; i++ {
		tbl.AppendRow(types.IntDatum(int64(i)))
	}
	rows, err := Drain(NewScan(tbl))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 700 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestFilterAndProjectIter(t *testing.T) {
	src := NewSlice(rowsOf(1, 2, 3, 4, 5, 6))
	it := NewFilter(src, func(r Row) bool { return r[0].I%2 == 0 })
	it = NewProject(it, func(r Row) Row { return Row{types.IntDatum(r[0].I * 10)} })
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].I != 20 || rows[2][0].I != 60 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSortIter(t *testing.T) {
	it := NewSort(NewSlice(rowsOf(5, 3, 9, 1, 7)), func(a, b Row) bool { return a[0].I < b[0].I })
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 3, 5, 7, 9}
	for i, w := range want {
		if rows[i][0].I != w {
			t.Fatalf("sorted = %v", rows)
		}
	}
}

func TestMergeJoinIterDuplicates(t *testing.T) {
	// left keys: 1,2,2,3 ; right keys: 2,2,3,3,4
	left := NewSlice(rowsOf(1, 2, 2, 3))
	right := NewSlice(rowsOf(2, 2, 3, 3, 4))
	cmp := func(l, r Row) int {
		switch {
		case l[0].I < r[0].I:
			return -1
		case l[0].I > r[0].I:
			return 1
		}
		return 0
	}
	same := func(a, b Row) bool { return a[0].I == b[0].I }
	combine := func(l, r Row) Row { return Row{l[0], r[0]} }
	rows, err := Drain(NewMergeJoin(left, right, cmp, same, combine))
	if err != nil {
		t.Fatal(err)
	}
	// key 2: 2x2 = 4, key 3: 1x2 = 2 -> 6 rows.
	if len(rows) != 6 {
		t.Fatalf("join rows = %d, want 6: %v", len(rows), rows)
	}
}

func TestLimitIter(t *testing.T) {
	rows, err := Drain(NewLimit(NewSlice(rowsOf(1, 2, 3, 4)), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestGenericVsOptimizedSameResults(t *testing.T) {
	s := types.NewSchema(types.Col("k", types.Int), types.Col("v", types.Float))
	tbl := storage.NewTable("tt", s)
	for i := 0; i < 2000; i++ {
		tbl.AppendRow(types.IntDatum(int64(i%13)), types.FloatDatum(float64(i)))
	}
	cat := newTestCatalog(t, tbl)
	stmt, err := sql.Parse("SELECT k, SUM(v) AS s, COUNT(*) AS n FROM tt GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewGeneric().Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOptimized().Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 13 || b.NumRows() != 13 {
		t.Fatalf("rows = %d / %d", a.NumRows(), b.NumRows())
	}
	for i := 0; i < a.NumRows(); i++ {
		if string(a.Tuple(i)) != string(b.Tuple(i)) {
			t.Fatalf("row %d differs between modes", i)
		}
	}
}

func TestModeNames(t *testing.T) {
	if NewGeneric().Name() == NewOptimized().Name() {
		t.Error("mode names must differ")
	}
}

func newTestCatalog(t *testing.T, tables ...*storage.Table) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, tbl := range tables {
		cat.Register(tbl)
	}
	return cat
}
