package volcano

import (
	"fmt"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/types"
)

// Mode selects between the paper's two iterator baselines.
type Mode int

const (
	// Generic uses kind-agnostic, dynamically dispatched evaluation
	// functions for every predicate and comparison.
	Generic Mode = iota
	// Optimized uses type-specialised closures with inlined accesses.
	Optimized
)

func (m Mode) String() string {
	if m == Generic {
		return "generic-iterators"
	}
	return "optimized-iterators"
}

// compilePredicates builds the row filter for a stage's selections.
func compilePredicates(mode Mode, filters []plan.Filter) func(Row) bool {
	if len(filters) == 0 {
		return nil
	}
	for i := range filters {
		if slot, ok := filters[i].Slot(); ok {
			panic(fmt.Sprintf("volcano: filter reads unbound parameter $%d (bind the plan before execution)", slot))
		}
	}
	if mode == Generic {
		// Generic: every predicate evaluation routes through the
		// generic comparison routine with a runtime op switch — the
		// virtual-function chain of §II-B.
		fs := make([]plan.Filter, len(filters))
		copy(fs, filters)
		return func(r Row) bool {
			for i := range fs {
				if !genericCompareOp(types.Compare(r[fs[i].Col], fs[i].Val), fs[i].Op) {
					return false
				}
			}
			return true
		}
	}
	// Optimized: one specialised closure per predicate.
	preds := make([]func(Row) bool, len(filters))
	for i, f := range filters {
		preds[i] = specializedPredicate(f)
	}
	if len(preds) == 1 {
		return preds[0]
	}
	return func(r Row) bool {
		for _, p := range preds {
			if !p(r) {
				return false
			}
		}
		return true
	}
}

// genericCompareOp interprets a comparison result against an operator at
// run time (the generic engine cannot inline this decision).
func genericCompareOp(c int, op sql.CmpOp) bool { return op.Holds(c) }

func specializedPredicate(f plan.Filter) func(Row) bool {
	col := f.Col
	switch f.Val.Kind {
	case types.Int, types.Date:
		v := f.Val.I
		switch f.Op {
		case sql.CmpEq:
			return func(r Row) bool { return r[col].I == v }
		case sql.CmpNe:
			return func(r Row) bool { return r[col].I != v }
		case sql.CmpLt:
			return func(r Row) bool { return r[col].I < v }
		case sql.CmpLe:
			return func(r Row) bool { return r[col].I <= v }
		case sql.CmpGt:
			return func(r Row) bool { return r[col].I > v }
		case sql.CmpGe:
			return func(r Row) bool { return r[col].I >= v }
		}
	case types.Float:
		v := f.Val.F
		switch f.Op {
		case sql.CmpEq:
			return func(r Row) bool { return r[col].F == v }
		case sql.CmpNe:
			return func(r Row) bool { return r[col].F != v }
		case sql.CmpLt:
			return func(r Row) bool { return r[col].F < v }
		case sql.CmpLe:
			return func(r Row) bool { return r[col].F <= v }
		case sql.CmpGt:
			return func(r Row) bool { return r[col].F > v }
		case sql.CmpGe:
			return func(r Row) bool { return r[col].F >= v }
		}
	case types.String:
		v := f.Val.S
		switch f.Op {
		case sql.CmpEq:
			return func(r Row) bool { return r[col].S == v }
		case sql.CmpNe:
			return func(r Row) bool { return r[col].S != v }
		case sql.CmpLt:
			return func(r Row) bool { return r[col].S < v }
		case sql.CmpLe:
			return func(r Row) bool { return r[col].S <= v }
		case sql.CmpGt:
			return func(r Row) bool { return r[col].S > v }
		case sql.CmpGe:
			return func(r Row) bool { return r[col].S >= v }
		}
	}
	panic(fmt.Sprintf("volcano: unsupported predicate %v %v", f.Val.Kind, f.Op))
}

// compileProjection builds the stage's projection.
func compileProjection(mode Mode, cols []plan.OutputColumn) func(Row) Row {
	if mode == Generic {
		cs := make([]plan.OutputColumn, len(cols))
		copy(cs, cols)
		return func(r Row) Row {
			out := make(Row, len(cs))
			for i := range cs {
				if cs[i].Compute != nil {
					out[i] = evalBoxed(cs[i].Compute, r)
				} else {
					out[i] = r[cs[i].Source]
				}
			}
			return out
		}
	}
	type step struct {
		src     int
		compute func(Row) types.Datum
	}
	steps := make([]step, len(cols))
	for i, c := range cols {
		if c.Compute != nil {
			e := c.Compute
			steps[i] = step{src: -1, compute: compileExpr(e)}
		} else {
			steps[i] = step{src: c.Source}
		}
	}
	return func(r Row) Row {
		out := make(Row, len(steps))
		for i := range steps {
			if steps[i].src >= 0 {
				out[i] = r[steps[i].src]
			} else {
				out[i] = steps[i].compute(r)
			}
		}
		return out
	}
}

// evalBoxed interprets an expression generically (runtime kind switches on
// every node — the generic iterator configuration).
func evalBoxed(e plan.Expr, r Row) types.Datum {
	switch v := e.(type) {
	case *plan.ColExpr:
		return r[v.Col]
	case *plan.ConstExpr:
		return v.D
	case *plan.ArithExpr:
		l, rr := evalBoxed(v.L, r), evalBoxed(v.R, r)
		if v.Kind() == types.Float {
			lf, rf := asFloat(l), asFloat(rr)
			switch v.Op {
			case sql.OpAdd:
				return types.FloatDatum(lf + rf)
			case sql.OpSub:
				return types.FloatDatum(lf - rf)
			case sql.OpMul:
				return types.FloatDatum(lf * rf)
			case sql.OpDiv:
				return types.FloatDatum(lf / rf)
			}
		}
		switch v.Op {
		case sql.OpAdd:
			return types.IntDatum(l.I + rr.I)
		case sql.OpSub:
			return types.IntDatum(l.I - rr.I)
		case sql.OpMul:
			return types.IntDatum(l.I * rr.I)
		case sql.OpDiv:
			return types.IntDatum(l.I / rr.I)
		}
	}
	panic("volcano: bad expression")
}

func asFloat(d types.Datum) float64 {
	if d.Kind == types.Float {
		return d.F
	}
	return float64(d.I)
}

// compileExpr builds a specialised evaluator (optimized mode).
func compileExpr(e plan.Expr) func(Row) types.Datum {
	switch v := e.(type) {
	case *plan.ColExpr:
		col := v.Col
		return func(r Row) types.Datum { return r[col] }
	case *plan.ConstExpr:
		d := v.D
		return func(Row) types.Datum { return d }
	case *plan.ArithExpr:
		l, rr := compileExpr(v.L), compileExpr(v.R)
		if v.Kind() == types.Float {
			switch v.Op {
			case sql.OpAdd:
				return func(r Row) types.Datum { return types.FloatDatum(asFloat(l(r)) + asFloat(rr(r))) }
			case sql.OpSub:
				return func(r Row) types.Datum { return types.FloatDatum(asFloat(l(r)) - asFloat(rr(r))) }
			case sql.OpMul:
				return func(r Row) types.Datum { return types.FloatDatum(asFloat(l(r)) * asFloat(rr(r))) }
			case sql.OpDiv:
				return func(r Row) types.Datum { return types.FloatDatum(asFloat(l(r)) / asFloat(rr(r))) }
			}
		}
		switch v.Op {
		case sql.OpAdd:
			return func(r Row) types.Datum { return types.IntDatum(l(r).I + rr(r).I) }
		case sql.OpSub:
			return func(r Row) types.Datum { return types.IntDatum(l(r).I - rr(r).I) }
		case sql.OpMul:
			return func(r Row) types.Datum { return types.IntDatum(l(r).I * rr(r).I) }
		case sql.OpDiv:
			return func(r Row) types.Datum { return types.IntDatum(l(r).I / rr(r).I) }
		}
	}
	panic("volcano: bad expression")
}

// keyLess builds an ordering predicate over key columns.
func keyLess(mode Mode, keys []int) func(a, b Row) bool {
	if mode == Generic {
		ks := append([]int(nil), keys...)
		return func(a, b Row) bool {
			for _, k := range ks {
				if c := types.Compare(a[k], b[k]); c != 0 {
					return c < 0
				}
			}
			return false
		}
	}
	cmp := keyCompare(mode, keys, keys)
	return func(a, b Row) bool { return cmp(a, b) < 0 }
}

// keyCompare compares row a's keysA against row b's keysB.
func keyCompare(mode Mode, keysA, keysB []int) func(a, b Row) int {
	if mode == Generic {
		ka := append([]int(nil), keysA...)
		kb := append([]int(nil), keysB...)
		return func(a, b Row) int {
			for i := range ka {
				if c := types.Compare(a[ka[i]], b[kb[i]]); c != 0 {
					return c
				}
			}
			return 0
		}
	}
	// Optimized: specialise per key kind at compile time. Kinds are not
	// known here without a schema, so specialise on the datum kind of
	// the first row seen; the common single-int case gets a fast path.
	if len(keysA) == 1 {
		ka, kb := keysA[0], keysB[0]
		return func(a, b Row) int {
			da, db := a[ka], b[kb]
			switch da.Kind {
			case types.Int, types.Date:
				switch {
				case da.I < db.I:
					return -1
				case da.I > db.I:
					return 1
				}
				return 0
			case types.Float:
				switch {
				case da.F < db.F:
					return -1
				case da.F > db.F:
					return 1
				}
				return 0
			default:
				switch {
				case da.S < db.S:
					return -1
				case da.S > db.S:
					return 1
				}
				return 0
			}
		}
	}
	ka := append([]int(nil), keysA...)
	kb := append([]int(nil), keysB...)
	return func(a, b Row) int {
		for i := range ka {
			if c := types.Compare(a[ka[i]], b[kb[i]]); c != 0 {
				return c
			}
		}
		return 0
	}
}

// sortLess builds the ORDER BY predicate with descending support.
func sortLess(mode Mode, keys []plan.SortKey) func(a, b Row) bool {
	ks := append([]plan.SortKey(nil), keys...)
	return func(a, b Row) bool {
		for _, k := range ks {
			c := types.Compare(a[k.Col], b[k.Col])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	}
}
