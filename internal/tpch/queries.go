package tpch

import (
	"errors"
	"fmt"
)

// Q1 is TPC-H Query 1 (pricing summary report): an aggregation over almost
// the whole lineitem table producing four groups. The paper's headline
// result (167× over PostgreSQL, 4× over MonetDB) comes from this query,
// evaluated with map aggregation (§VI-C).
const Q1 = `SELECT l_returnflag, l_linestatus,
  SUM(l_quantity) AS sum_qty,
  SUM(l_extendedprice) AS sum_base_price,
  SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
  SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
  AVG(l_quantity) AS avg_qty,
  AVG(l_extendedprice) AS avg_price,
  AVG(l_discount) AS avg_disc,
  COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - 90
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

// Q3 is TPC-H Query 3 (shipping priority): a three-way join with selective
// predicates, aggregation, and a top-10 sort.
const Q3 = `SELECT l_orderkey,
  SUM(l_extendedprice * (1 - l_discount)) AS revenue,
  o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10`

// Q10 is TPC-H Query 10 (returned item reporting): a four-way join with
// date-range and flag predicates, wide grouping, and a top-20 sort.
const Q10 = `SELECT c_custkey, c_name,
  SUM(l_extendedprice * (1 - l_discount)) AS revenue,
  c_acctbal, n_name, c_address, c_phone
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1994-01-01'
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, n_name, c_address, c_phone
ORDER BY revenue DESC
LIMIT 20`

// Q6 is TPC-H Query 6 (forecasting revenue change): a group-less
// aggregation over lineitem behind a date range, a BETWEEN on the
// discount, and a quantity cutoff — the canonical scan-dominated query.
const Q6 = `SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24`

// ErrUnsupported marks a TPC-H query number outside the supported set;
// test with errors.Is.
var ErrUnsupported = errors.New("tpch: unsupported query")

// Query returns the SQL text of a benchmark query by number. Numbers
// outside the supported set return an error wrapping ErrUnsupported.
func Query(n int) (string, error) {
	switch n {
	case 1:
		return Q1, nil
	case 3:
		return Q3, nil
	case 6:
		return Q6, nil
	case 10:
		return Q10, nil
	default:
		return "", fmt.Errorf("%w: query %d is outside the evaluated set (1, 3, 6, 10)", ErrUnsupported, n)
	}
}

// QueryNumbers lists the evaluated TPC-H queries.
func QueryNumbers() []int { return []int{1, 3, 6, 10} }
