package tpch

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"hique/internal/codegen"
	"hique/internal/core"
	"hique/internal/dsm"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
	"hique/internal/volcano"
)

func TestGenerationDeterminism(t *testing.T) {
	a := Generate(Config{ScaleFactor: 0.005, Seed: 1})
	b := Generate(Config{ScaleFactor: 0.005, Seed: 1})
	for _, name := range []string{"lineitem", "orders", "customer"} {
		ea, _ := a.Lookup(name)
		eb, _ := b.Lookup(name)
		if ea.Table.NumRows() != eb.Table.NumRows() {
			t.Fatalf("%s: %d vs %d rows", name, ea.Table.NumRows(), eb.Table.NumRows())
		}
		for i := 0; i < ea.Table.NumRows(); i += 97 {
			ta := ea.Table.Tuple(i)
			tb := eb.Table.Tuple(i)
			if string(ta) != string(tb) {
				t.Fatalf("%s row %d differs between runs", name, i)
			}
		}
	}
}

func TestCardinalitiesScale(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.01, Seed: 2})
	expect := map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": 100,
		"customer": 1500,
		"part":     2000,
		"partsupp": 8000,
		"orders":   15000,
	}
	for name, want := range expect {
		e, err := cat.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.Table.NumRows() != want {
			t.Errorf("%s rows = %d, want %d", name, e.Table.NumRows(), want)
		}
	}
	// Lineitem averages ~4 lines per order.
	li, _ := cat.Lookup("lineitem")
	if n := li.Table.NumRows(); n < 15000 || n > 15000*7 {
		t.Errorf("lineitem rows = %d, outside [1,7] lines/order", n)
	}
}

func TestDistributions(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.01, Seed: 3})
	li, _ := cat.Lookup("lineitem")
	s := li.Table.Schema()
	flags := map[string]int{}
	fOff, fSize := s.Offset(s.ColumnIndex("l_returnflag")), 1
	stOff := s.Offset(s.ColumnIndex("l_linestatus"))
	discOff := s.Offset(s.ColumnIndex("l_discount"))
	li.Table.Scan(func(tp []byte) bool {
		flags[types.GetString(tp, fOff, fSize)+types.GetString(tp, stOff, 1)]++
		if d := types.GetFloat(tp, discOff); d < 0 || d > 0.1 {
			t.Fatalf("discount %g out of range", d)
		}
		return true
	})
	// Q1 has at most 4 populated (flag,status) groups: RF, AF, NF, NO.
	for k := range flags {
		switch k {
		case "RF", "AF", "NF", "NO":
		default:
			t.Errorf("unexpected (returnflag,linestatus) combination %q", k)
		}
	}
	if len(flags) != 4 {
		t.Errorf("groups = %v, want the canonical four", flags)
	}
	// Segments roughly uniform.
	cust, _ := cat.Lookup("customer")
	cs := cust.Table.Schema()
	segOff := cs.Offset(cs.ColumnIndex("c_mktsegment"))
	segs := map[string]int{}
	cust.Table.Scan(func(tp []byte) bool {
		segs[types.GetString(tp, segOff, 10)]++
		return true
	})
	if len(segs) != 5 {
		t.Errorf("segments = %v", segs)
	}
	for seg, n := range segs {
		if n < 150 || n > 450 {
			t.Errorf("segment %s count %d far from uniform (expected ~300)", seg, n)
		}
	}
}

func TestQueriesParseAndPlan(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.005, Seed: 4})
	for _, n := range QueryNumbers() {
		q, err := Query(n)
		if err != nil {
			t.Fatal(err)
		}
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("Q%d parse: %v", n, err)
		}
		p, err := plan.Build(stmt, cat)
		if err != nil {
			t.Fatalf("Q%d plan: %v", n, err)
		}
		if p.Agg == nil {
			t.Errorf("Q%d should aggregate", n)
		}
	}
	if _, err := Query(5); err == nil {
		t.Error("Query(5) should be rejected")
	}
}

func TestQ1PlanUsesMapAggregation(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.01, Seed: 5})
	stmt, _ := sql.Parse(Q1)
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Agg.Alg != plan.MapAggregation {
		t.Errorf("Q1 aggregation = %v, want map (2x3 directories)", p.Agg.Alg)
	}
}

func canonical(t *storage.Table) []string {
	s := t.Schema()
	var rows []string
	t.Scan(func(tp []byte) bool {
		var parts []string
		for i := 0; i < s.NumColumns(); i++ {
			d := s.GetDatum(tp, i)
			if d.Kind == types.Float {
				parts = append(parts, fmt.Sprintf("%.4f", d.F))
			} else {
				parts = append(parts, d.String())
			}
		}
		rows = append(rows, strings.Join(parts, "|"))
		return true
	})
	return rows
}

func TestQueriesAgreeAcrossEngines(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.02, Seed: 6})
	type engine interface {
		Name() string
		Execute(p *plan.Plan) (*storage.Table, error)
	}
	engines := []engine{core.NewEngine(), volcano.NewGeneric(), volcano.NewOptimized(), dsm.NewEngine()}
	for _, n := range QueryNumbers() {
		q, _ := Query(n)
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		p, err := plan.Build(stmt, cat)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		var ref []string
		var refName string
		for _, e := range engines {
			out, err := e.Execute(p)
			if err != nil {
				t.Fatalf("Q%d on %s: %v", n, e.Name(), err)
			}
			rows := canonical(out)
			// Q3/Q10 are top-k on revenue: ties at the cut make strict
			// row-for-row comparison flaky, so compare the revenue
			// multiset plus full rows for the untied prefix.
			if ref == nil {
				ref, refName = rows, e.Name()
				continue
			}
			if len(rows) != len(ref) {
				t.Errorf("Q%d: %s rows %d vs %s rows %d", n, e.Name(), len(rows), refName, len(ref))
				continue
			}
			a := append([]string(nil), ref...)
			b := append([]string(nil), rows...)
			sort.Strings(a)
			sort.Strings(b)
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("Q%d: multiset differs between %s and %s at %d:\n  %s\n  %s",
						n, refName, e.Name(), i, a[i], b[i])
					break
				}
			}
		}
	}
}

func TestQueryUnsupportedNumbersReturnTypedError(t *testing.T) {
	for _, n := range []int{0, 2, 5, 22, -1} {
		_, err := Query(n)
		if err == nil {
			t.Fatalf("Query(%d) should fail", n)
		}
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("Query(%d) error %v does not wrap ErrUnsupported", n, err)
		}
	}
	for _, n := range QueryNumbers() {
		if _, err := Query(n); err != nil {
			t.Errorf("Query(%d): %v", n, err)
		}
	}
}

// codegenEngine adapts a codegen optimisation level to the engine surface.
type codegenEngine struct{ level codegen.OptLevel }

func (c codegenEngine) Name() string { return "codegen" + c.level.String() }

func (c codegenEngine) Execute(p *plan.Plan) (*storage.Table, error) {
	q, err := codegen.Generate(p, c.level)
	if err != nil {
		return nil, err
	}
	return q.Run()
}

func datumRows(t *storage.Table) [][]types.Datum {
	s := t.Schema()
	var rows [][]types.Datum
	t.Scan(func(tp []byte) bool {
		row := make([]types.Datum, s.NumColumns())
		for i := range row {
			row[i] = s.GetDatum(tp, i)
		}
		rows = append(rows, row)
		return true
	})
	return rows
}

func rowsApproxEqual(a, b []types.Datum) bool {
	for i := range a {
		if a[i].Kind == types.Float && b[i].Kind == types.Float {
			diff := a[i].F - b[i].F
			if diff < 0 {
				diff = -diff
			}
			scale := a[i].F
			if scale < 0 {
				scale = -scale
			}
			if diff > 1e-9*scale+1e-9 {
				return false
			}
			continue
		}
		if types.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// TestTPCHGoldenResultsAcrossEngines pins Q1/Q3/Q6/Q10 at SF 0.01 with
// Seed 42 — the exact catalogue hique-server's -tpch flag loads, so the
// conformance suite's goldens and these agree — and asserts byte-identical
// results across every engine, including the parallel engine at 1, 2, and
// 8 workers.
func TestTPCHGoldenResultsAcrossEngines(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.01, Seed: 42})
	type engine interface {
		Name() string
		Execute(p *plan.Plan) (*storage.Table, error)
	}
	type variant struct {
		e engine
		// Parallel partial aggregation accumulates floats in worker order,
		// so sums can differ from the serial engines in the last ulp; those
		// variants compare with a tight relative tolerance instead of
		// byte-for-byte.
		approx bool
	}
	variants := []variant{
		{core.NewEngine(), false},
		{codegenEngine{level: codegen.OptO0}, false},
		{codegenEngine{level: codegen.OptO2}, false},
		{volcano.NewGeneric(), false},
		{volcano.NewOptimized(), false},
		{dsm.NewEngine(), false},
		{core.NewParallelEngine(1), false},
		{core.NewParallelEngine(2), true},
		{core.NewParallelEngine(8), true},
	}
	golden := map[int]struct {
		rows  int
		first string
	}{
		1:  {4, "A|F|405755.0000|385365653.0000|366301290.5700|380955699.6240|25.4344|24156.3125|0.0495|15953"},
		3:  {10, "1921|192593.9220|date(9196)|0"},
		6:  {1, "826509.6720"},
		10: {20, "1257|Customer#000001257|319568.6150|7193.1596|IRAN|addr-1257-95407|20-812-717-8599"},
	}
	for _, n := range QueryNumbers() {
		q, _ := Query(n)
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("Q%d parse: %v", n, err)
		}
		p, err := plan.Build(stmt, cat)
		if err != nil {
			t.Fatalf("Q%d plan: %v", n, err)
		}
		var ref []string
		var refDatums [][]types.Datum
		var refName string
		for _, v := range variants {
			out, err := v.e.Execute(p)
			if err != nil {
				t.Fatalf("Q%d on %s: %v", n, v.e.Name(), err)
			}
			rows := canonical(out)
			if ref == nil {
				ref, refName = rows, v.e.Name()
				refDatums = datumRows(out)
				g := golden[n]
				if len(rows) != g.rows {
					t.Errorf("Q%d: %d rows, golden %d", n, len(rows), g.rows)
				}
				if len(rows) > 0 && rows[0] != g.first {
					t.Errorf("Q%d first row drifted from golden:\n  got  %s\n  want %s", n, rows[0], g.first)
				}
				continue
			}
			if len(rows) != len(ref) {
				t.Errorf("Q%d: %s returned %d rows, %s returned %d", n, v.e.Name(), len(rows), refName, len(ref))
				continue
			}
			if v.approx {
				got := datumRows(out)
				for i := range refDatums {
					if !rowsApproxEqual(refDatums[i], got[i]) {
						t.Errorf("Q%d: row %d differs (beyond float tolerance) between %s and %s:\n  %s\n  %s",
							n, i, refName, v.e.Name(), ref[i], rows[i])
						break
					}
				}
				continue
			}
			for i := range ref {
				if rows[i] != ref[i] {
					t.Errorf("Q%d: row %d differs between %s and %s:\n  %s\n  %s",
						n, i, refName, v.e.Name(), ref[i], rows[i])
					break
				}
			}
		}
	}
}

func TestQ1GroupCountMatchesReference(t *testing.T) {
	cat := Generate(Config{ScaleFactor: 0.01, Seed: 7})
	stmt, _ := sql.Parse(Q1)
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.NewEngine().Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 4 {
		t.Errorf("Q1 groups = %d, want 4", out.NumRows())
	}
	// COUNT column must sum to the number of qualifying lineitems.
	li, _ := cat.Lookup("lineitem")
	s := li.Table.Schema()
	shipOff := s.Offset(s.ColumnIndex("l_shipdate"))
	cutoff := days(1998, 9, 2)
	want := int64(0)
	li.Table.Scan(func(tp []byte) bool {
		if types.GetInt(tp, shipOff) <= cutoff {
			want++
		}
		return true
	})
	os := out.Schema()
	cntIdx := os.ColumnIndex("count_order")
	var got int64
	out.Scan(func(tp []byte) bool {
		got += types.GetInt(tp, os.Offset(cntIdx))
		return true
	})
	if got != want {
		t.Errorf("sum of count_order = %d, want %d", got, want)
	}
}
