// Package tpch is a from-scratch, deterministic TPC-H data generator and
// the benchmark queries the paper evaluates (§VI-C). It reproduces the
// schema, table cardinalities, and the value distributions that matter for
// the evaluated queries (dates, return flags, segments, discounts); text
// columns are synthetic. The scale factor is a parameter, so the paper's
// SF-1 setup is one flag away from the CI-sized defaults.
package tpch

import (
	"fmt"
	"time"

	"hique/internal/catalog"
	"hique/internal/storage"
	"hique/internal/types"
)

// Config parameterises generation.
type Config struct {
	// ScaleFactor follows TPC-H: SF 1 is ~6M lineitem rows.
	ScaleFactor float64
	// Seed makes generation deterministic per table.
	Seed uint64
}

// rng is xorshift64*: fast, deterministic, and dependency-free.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func days(y, m, d int) int64 {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC).Unix() / 86400
}

var (
	dateLo = days(1992, 1, 1)
	dateHi = days(1998, 8, 2)
	// The receipt-date threshold that splits return flags (dbgen uses
	// 1995-06-17 as the "current date" boundary).
	currentDate = days(1995, 6, 17)
)

var (
	regions  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations  = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	prios    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"}
)

// Cardinality returns the base row count of a table at the given scale.
func Cardinality(table string, sf float64) int {
	switch table {
	case "region":
		return len(regions)
	case "nation":
		return len(nations)
	case "supplier":
		return int(10000 * sf)
	case "customer":
		return int(150000 * sf)
	case "part":
		return int(200000 * sf)
	case "partsupp":
		return int(800000 * sf)
	case "orders":
		return int(1500000 * sf)
	default:
		panic("tpch: unknown table " + table)
	}
}

// Generate builds all eight TPC-H tables and registers them (with
// statistics) in a fresh catalogue.
func Generate(cfg Config) *catalog.Catalog {
	cat := catalog.New()
	for _, t := range GenerateTables(cfg) {
		cat.Register(t)
	}
	return cat
}

// GenerateTables builds the eight tables without cataloguing them.
func GenerateTables(cfg Config) []*storage.Table {
	sf := cfg.ScaleFactor
	if sf <= 0 {
		sf = 0.01
	}
	ol := genOrdersAndLineitem(cfg, sf)
	return []*storage.Table{
		genRegion(),
		genNation(),
		genSupplier(cfg, sf),
		genPart(cfg, sf),
		genPartsupp(cfg, sf),
		genCustomer(cfg, sf),
		ol[0],
		ol[1],
	}
}

func genRegion() *storage.Table {
	t := storage.NewTable("region", types.NewSchema(
		types.Col("r_regionkey", types.Int),
		types.CharCol("r_name", 12)))
	for i, name := range regions {
		t.AppendRow(types.IntDatum(int64(i)), types.StringDatum(name))
	}
	return t
}

func genNation() *storage.Table {
	t := storage.NewTable("nation", types.NewSchema(
		types.Col("n_nationkey", types.Int),
		types.CharCol("n_name", 16),
		types.Col("n_regionkey", types.Int)))
	for i, name := range nations {
		t.AppendRow(types.IntDatum(int64(i)), types.StringDatum(name), types.IntDatum(int64(i%len(regions))))
	}
	return t
}

func genSupplier(cfg Config, sf float64) *storage.Table {
	r := newRng(cfg.Seed ^ 0x5e1)
	n := Cardinality("supplier", sf)
	t := storage.NewTable("supplier", types.NewSchema(
		types.Col("s_suppkey", types.Int),
		types.CharCol("s_name", 18),
		types.Col("s_nationkey", types.Int),
		types.Col("s_acctbal", types.Float)))
	for i := 0; i < n; i++ {
		t.AppendRow(
			types.IntDatum(int64(i+1)),
			types.StringDatum(fmt.Sprintf("Supplier#%09d", i+1)),
			types.IntDatum(int64(r.intn(len(nations)))),
			types.FloatDatum(-999.99+r.float()*(9999.99+999.99)))
	}
	return t
}

func genPart(cfg Config, sf float64) *storage.Table {
	r := newRng(cfg.Seed ^ 0x9a7)
	n := Cardinality("part", sf)
	t := storage.NewTable("part", types.NewSchema(
		types.Col("p_partkey", types.Int),
		types.CharCol("p_name", 32),
		types.CharCol("p_brand", 10),
		types.Col("p_size", types.Int),
		types.Col("p_retailprice", types.Float)))
	for i := 0; i < n; i++ {
		t.AppendRow(
			types.IntDatum(int64(i+1)),
			types.StringDatum(fmt.Sprintf("part %d colour %d", i+1, r.intn(92))),
			types.StringDatum(fmt.Sprintf("Brand#%d%d", 1+r.intn(5), 1+r.intn(5))),
			types.IntDatum(int64(1+r.intn(50))),
			types.FloatDatum(900+float64((i+1)%1000)/10))
	}
	return t
}

func genPartsupp(cfg Config, sf float64) *storage.Table {
	r := newRng(cfg.Seed ^ 0x9a55)
	nPart := Cardinality("part", sf)
	t := storage.NewTable("partsupp", types.NewSchema(
		types.Col("ps_partkey", types.Int),
		types.Col("ps_suppkey", types.Int),
		types.Col("ps_availqty", types.Int),
		types.Col("ps_supplycost", types.Float)))
	nSupp := Cardinality("supplier", sf)
	if nSupp == 0 {
		nSupp = 1
	}
	for p := 1; p <= nPart; p++ {
		for s := 0; s < 4; s++ {
			t.AppendRow(
				types.IntDatum(int64(p)),
				types.IntDatum(int64((p+s*(nSupp/4+1))%nSupp+1)),
				types.IntDatum(int64(1+r.intn(9999))),
				types.FloatDatum(1+r.float()*999))
		}
	}
	return t
}

func genCustomer(cfg Config, sf float64) *storage.Table {
	r := newRng(cfg.Seed ^ 0xc057)
	n := Cardinality("customer", sf)
	t := storage.NewTable("customer", types.NewSchema(
		types.Col("c_custkey", types.Int),
		types.CharCol("c_name", 18),
		types.CharCol("c_address", 24),
		types.Col("c_nationkey", types.Int),
		types.CharCol("c_phone", 15),
		types.Col("c_acctbal", types.Float),
		types.CharCol("c_mktsegment", 10)))
	for i := 0; i < n; i++ {
		nation := r.intn(len(nations))
		t.AppendRow(
			types.IntDatum(int64(i+1)),
			types.StringDatum(fmt.Sprintf("Customer#%09d", i+1)),
			types.StringDatum(fmt.Sprintf("addr-%d-%d", i+1, r.intn(100000))),
			types.IntDatum(int64(nation)),
			types.StringDatum(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nation, r.intn(1000), r.intn(1000), r.intn(10000))),
			types.FloatDatum(-999.99+r.float()*(9999.99+999.99)),
			types.StringDatum(segments[r.intn(len(segments))]))
	}
	return t
}

// genOrdersAndLineitem builds orders and lineitem together so line dates
// stay consistent with their order date (dbgen's approach).
func genOrdersAndLineitem(cfg Config, sf float64) [2]*storage.Table {
	r := newRng(cfg.Seed ^ 0x0bde5)
	nOrders := Cardinality("orders", sf)
	nCust := Cardinality("customer", sf)
	if nCust == 0 {
		nCust = 1
	}

	orders := storage.NewTable("orders", types.NewSchema(
		types.Col("o_orderkey", types.Int),
		types.Col("o_custkey", types.Int),
		types.CharCol("o_orderstatus", 1),
		types.Col("o_totalprice", types.Float),
		types.Col("o_orderdate", types.Date),
		types.CharCol("o_orderpriority", 15),
		types.Col("o_shippriority", types.Int)))

	lineitem := storage.NewTable("lineitem", types.NewSchema(
		types.Col("l_orderkey", types.Int),
		types.Col("l_partkey", types.Int),
		types.Col("l_suppkey", types.Int),
		types.Col("l_linenumber", types.Int),
		types.Col("l_quantity", types.Float),
		types.Col("l_extendedprice", types.Float),
		types.Col("l_discount", types.Float),
		types.Col("l_tax", types.Float),
		types.CharCol("l_returnflag", 1),
		types.CharCol("l_linestatus", 1),
		types.Col("l_shipdate", types.Date),
		types.Col("l_commitdate", types.Date),
		types.Col("l_receiptdate", types.Date)))

	nPart := Cardinality("part", sf)
	if nPart == 0 {
		nPart = 1
	}
	nSupp := Cardinality("supplier", sf)
	if nSupp == 0 {
		nSupp = 1
	}
	dateRange := int(dateHi - dateLo - 151)

	for o := 1; o <= nOrders; o++ {
		orderDate := dateLo + int64(r.intn(dateRange))
		nLines := 1 + r.intn(7)
		var total float64
		allF, allO := true, true

		for ln := 1; ln <= nLines; ln++ {
			qty := float64(1 + r.intn(50))
			price := 900 + float64((1+r.intn(nPart))%1000)/10
			extended := qty * price
			discount := float64(r.intn(11)) / 100
			tax := float64(r.intn(9)) / 100
			shipDate := orderDate + int64(1+r.intn(121))
			commitDate := orderDate + int64(30+r.intn(61))
			receiptDate := shipDate + int64(1+r.intn(30))

			var flag string
			if receiptDate <= currentDate {
				if r.intn(2) == 0 {
					flag = "R"
				} else {
					flag = "A"
				}
			} else {
				flag = "N"
			}
			var status string
			if shipDate > currentDate {
				status = "O"
				allF = false
			} else {
				status = "F"
				allO = false
			}
			total += extended * (1 + tax) * (1 - discount)

			lineitem.AppendRow(
				types.IntDatum(int64(o)),
				types.IntDatum(int64(1+r.intn(nPart))),
				types.IntDatum(int64(1+r.intn(nSupp))),
				types.IntDatum(int64(ln)),
				types.FloatDatum(qty),
				types.FloatDatum(extended),
				types.FloatDatum(discount),
				types.FloatDatum(tax),
				types.StringDatum(flag),
				types.StringDatum(status),
				types.DateDatum(shipDate),
				types.DateDatum(commitDate),
				types.DateDatum(receiptDate))
			_ = status
		}

		var orderStatus string
		switch {
		case allF:
			orderStatus = "F"
		case allO:
			orderStatus = "O"
		default:
			orderStatus = "P"
		}
		orders.AppendRow(
			types.IntDatum(int64(o)),
			types.IntDatum(int64(1+r.intn(nCust))),
			types.StringDatum(orderStatus),
			types.FloatDatum(total),
			types.DateDatum(orderDate),
			types.StringDatum(prios[r.intn(len(prios))]),
			types.IntDatum(0))
	}
	return [2]*storage.Table{orders, lineitem}
}
