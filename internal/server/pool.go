package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrSaturated is returned by Pool.Do when every worker slot is busy and
// the admission wait expires before one frees up.
var ErrSaturated = errors.New("server: worker pool saturated")

// ErrShuttingDown is returned by Pool.Do after Close: the server is
// draining and no longer admits statements.
var ErrShuttingDown = errors.New("server: shutting down")

// Pool is a bounded worker pool used for admission control: at most
// `workers` queries execute at once, and a caller that cannot acquire a
// slot within `wait` is rejected instead of queueing unboundedly. This
// keeps latency bounded under overload — the HTTP layer converts
// ErrSaturated into 503 so clients can back off.
type Pool struct {
	slots    chan struct{}
	wait     time.Duration
	rejected atomic.Uint64
	admitted atomic.Uint64
	// waiting counts callers currently blocked in the admission wait —
	// the queue-depth gauge: in-flight shows saturation, waiting shows
	// how far past it the offered load is.
	waiting atomic.Int64
	// closed flips on Close: admission stops (ErrShuttingDown) while
	// statements already holding a slot run to completion.
	closed atomic.Bool
}

// NewPool creates a pool of the given width; wait bounds how long an
// arriving query may wait for a slot (0 means reject immediately when
// full).
func NewPool(workers int, wait time.Duration) *Pool {
	if workers <= 0 {
		workers = 1
	}
	return &Pool{slots: make(chan struct{}, workers), wait: wait}
}

// Do runs fn on an admitted slot, or returns ErrSaturated (pool full)
// or ErrShuttingDown (pool closed) without running it.
func (p *Pool) Do(fn func()) error {
	if p.closed.Load() {
		p.rejected.Add(1)
		return ErrShuttingDown
	}
	select {
	case p.slots <- struct{}{}:
	default:
		if p.wait <= 0 {
			p.rejected.Add(1)
			return ErrSaturated
		}
		p.waiting.Add(1)
		t := time.NewTimer(p.wait)
		select {
		case p.slots <- struct{}{}:
			t.Stop()
			p.waiting.Add(-1)
		case <-t.C:
			p.waiting.Add(-1)
			p.rejected.Add(1)
			return ErrSaturated
		}
	}
	p.admitted.Add(1)
	defer func() { <-p.slots }()
	fn()
	return nil
}

// Close stops admission: every later Do returns ErrShuttingDown.
// Statements already holding a slot are unaffected — Drain waits for
// them.
func (p *Pool) Close() { p.closed.Store(true) }

// Drain blocks until every in-flight statement has released its slot,
// or ctx expires. It acquires (and keeps) every slot, so the pool must
// be Closed first and cannot be reused afterwards.
func (p *Pool) Drain(ctx context.Context) error {
	for i := 0; i < cap(p.slots); i++ {
		select {
		case p.slots <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return cap(p.slots) }

// InFlight reports how many slots are currently held.
func (p *Pool) InFlight() int { return len(p.slots) }

// Admitted reports how many calls acquired a slot.
func (p *Pool) Admitted() uint64 { return p.admitted.Load() }

// Rejected reports how many calls were turned away saturated.
func (p *Pool) Rejected() uint64 { return p.rejected.Load() }

// Waiting reports how many callers are currently blocked in the
// admission wait.
func (p *Pool) Waiting() int64 { return p.waiting.Load() }
