package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestGracefulShutdownDrainsInFlight is the shutdown regression test: a
// statement blocked in flight (on the table writer lock) must survive
// BeginShutdown and complete with 200, while statements arriving after
// it get 503 and /healthz flips to draining. Drain must return only
// after the in-flight statement finishes.
//lint:allow containment test fixture holds the lock across HTTP round-trips without mutating table state
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	db := testDB(t)
	s := New(db, Config{Workers: 1, QueueWait: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Hold the items writer lock so the INSERT below blocks mid-flight
	// inside its pool slot.
	entry, err := db.Catalog().Lookup("items")
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow lockorder test fixture deliberately wedges the items writer lock to block a statement in flight
	entry.Lock()
	unlocked := false
	defer func() {
		if !unlocked {
			entry.Unlock()
		}
	}()

	inFlight := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(queryRequest{SQL: "INSERT INTO items VALUES (9001, 1, 2.5)"})
		resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			inFlight <- -1
			return
		}
		resp.Body.Close()
		inFlight <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.pool.InFlight() == 1 })

	s.BeginShutdown()

	// New statements are refused without queueing.
	resp, _, bad := postQuery(t, ts, "SELECT id FROM items WHERE id = 1", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown statement: status %d, want 503", resp.StatusCode)
	}
	if bad.Error != ErrShuttingDown.Error() {
		t.Fatalf("post-shutdown error = %q, want %q", bad.Error, ErrShuttingDown)
	}
	// Health flips so the load balancer pulls the instance.
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz: status %d, want 503", hr.StatusCode)
	}

	// Drain must wait for the blocked statement...
	shortCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(shortCtx); err == nil {
		t.Fatal("Drain returned before the in-flight statement finished")
	}

	// ...and the blocked statement must complete successfully once the
	// lock frees, even though shutdown began while it was in flight.
	entry.Unlock()
	unlocked = true
	select {
	case code := <-inFlight:
		if code != http.StatusOK {
			t.Fatalf("in-flight statement finished with status %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight statement never completed")
	}
	drainCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain after completion: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
