package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Session tracks one client's query stream: how many statements it ran,
// how many failed, and the cumulative execution time. Sessions are
// identified by an opaque ID the client echoes back in the
// X-Hique-Session header; a request without one is assigned a fresh
// session whose ID is returned in the response.
type Session struct {
	ID      string
	Started time.Time

	mu       sync.Mutex
	lastUsed time.Time
	queries  uint64
	errors   uint64
	execTime time.Duration
}

// note records one query outcome.
func (s *Session) note(d time.Duration, failed bool, now time.Time) {
	s.mu.Lock()
	s.lastUsed = now
	s.queries++
	if failed {
		s.errors++
	}
	s.execTime += d
	s.mu.Unlock()
}

// SessionInfo is an exportable snapshot of a session.
type SessionInfo struct {
	ID         string  `json:"id"`
	Queries    uint64  `json:"queries"`
	Errors     uint64  `json:"errors"`
	ExecTimeUs int64   `json:"exec_time_us"`
	IdleSec    float64 `json:"idle_sec"`
}

// MaxSessions bounds the registry: beyond it, new clients get working
// but untracked (ephemeral) sessions instead of growing the map, so a
// flood of header-less requests cannot exhaust memory.
const MaxSessions = 8192

// Sessions is the concurrent session registry. Idle sessions are
// dropped by amortised sweeps: a full scan runs at most once per
// expiry/8 (not on every request), keeping Acquire O(1) in the steady
// state.
type Sessions struct {
	mu        sync.Mutex
	m         map[string]*Session
	seq       atomic.Uint64
	expiry    time.Duration
	lastSweep time.Time
}

// NewSessions creates a registry; expiry <= 0 disables idle expiry.
func NewSessions(expiry time.Duration) *Sessions {
	return &Sessions{m: make(map[string]*Session), expiry: expiry}
}

// Acquire returns the session with the given ID if it exists, else a
// brand-new session with a server-minted ID. Unknown client-supplied
// IDs are never adopted: clients cannot fix session identifiers. At
// MaxSessions the new session is returned untracked.
func (s *Sessions) Acquire(id string) *Session {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeSweepLocked(now)
	if id != "" {
		if sess, ok := s.m[id]; ok {
			return sess
		}
	}
	id = fmt.Sprintf("s%08x-%d", now.UnixNano()&0xffffffff, s.seq.Add(1))
	sess := &Session{ID: id, Started: now, lastUsed: now}
	// At capacity the session stays untracked until the next scheduled
	// sweep frees space — forcing a scan here would let a header-less
	// flood serialise every request behind an O(MaxSessions) walk.
	if len(s.m) < MaxSessions {
		s.m[id] = sess
	}
	return sess
}

// maybeSweepLocked drops idle sessions; at most one full scan runs per
// expiry/8, keeping Acquire O(1) in the steady state.
func (s *Sessions) maybeSweepLocked(now time.Time) {
	if s.expiry <= 0 {
		return
	}
	if now.Sub(s.lastSweep) < s.expiry/8 {
		return
	}
	s.lastSweep = now
	for id, sess := range s.m {
		sess.mu.Lock()
		idle := now.Sub(sess.lastUsed)
		sess.mu.Unlock()
		if idle > s.expiry {
			delete(s.m, id)
		}
	}
}

// Len reports the number of live sessions.
func (s *Sessions) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// List snapshots every live session, sorted by ID.
func (s *Sessions) List() []SessionInfo {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.m))
	for _, sess := range s.m {
		sess.mu.Lock()
		out = append(out, SessionInfo{
			ID:         sess.ID,
			Queries:    sess.queries,
			Errors:     sess.errors,
			ExecTimeUs: sess.execTime.Microseconds(),
			IdleSec:    now.Sub(sess.lastUsed).Seconds(),
		})
		sess.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
