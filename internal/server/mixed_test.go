package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hique"
)

// TestMixedReadWriteWorkload drives concurrent parameterized INSERTs,
// DELETEs, and point SELECTs through the HTTP server on every engine,
// then checks the deterministic final row count and — on the holistic
// engines — that the plan cache served the repeated shapes. Run with
// -race (CI does), this is the write path's concurrency proof: writers
// serialise on the table writer lock while point reads overlap.
func TestMixedReadWriteWorkload(t *testing.T) {
	const (
		workers  = 4
		perW     = 60 // rows inserted per worker
		delEvery = 3  // every 3rd id deleted by its worker
	)
	engines := []hique.Engine{
		hique.Holistic, hique.GenericIterators, hique.OptimizedIterators,
		hique.ColumnStore, hique.HolisticUnoptimized,
	}
	for _, eng := range engines {
		t.Run(eng.String(), func(t *testing.T) {
			db := hique.Open(hique.WithPlanCache(128), hique.WithEngine(eng))
			if err := db.CreateTable("events", hique.Int("id"), hique.Int("grp"), hique.Float("v")); err != nil {
				t.Fatal(err)
			}
			s := New(db, Config{Workers: 8, QueueWait: -1})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			post := func(sql string, params ...any) (int, map[string]any) {
				body, _ := json.Marshal(queryRequest{SQL: sql, Params: params})
				resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return 0, nil
				}
				defer resp.Body.Close()
				var out map[string]any
				_ = json.NewDecoder(resp.Body).Decode(&out)
				return resp.StatusCode, out
			}

			var wg sync.WaitGroup
			errs := make(chan string, workers*2)
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := g * perW
					for i := 0; i < perW; i++ {
						id := base + i
						if code, out := post("INSERT INTO events VALUES (?, ?, ?)", id, g, float64(id)*0.5); code != http.StatusOK {
							errs <- fmt.Sprintf("insert %d: status %d body %v", id, code, out)
							return
						}
						// Interleave point reads with the writes; under
						// admission pressure a 503 is a legal answer.
						if code, _ := post("SELECT v FROM events WHERE id = ?", id); code != http.StatusOK && code != http.StatusServiceUnavailable {
							errs <- fmt.Sprintf("select %d: status %d", id, code)
							return
						}
						if id%delEvery == 0 {
							if code, out := post("DELETE FROM events WHERE id = ?", id); code != http.StatusOK {
								errs <- fmt.Sprintf("delete %d: status %d body %v", id, code, out)
								return
							}
							// Deleting again affects zero rows: each id is
							// owned by one worker, so this is deterministic.
							if _, out := post("DELETE FROM events WHERE id = ?", id); out["rows_affected"] != float64(0) {
								errs <- fmt.Sprintf("re-delete %d affected %v rows, want 0", id, out["rows_affected"])
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}

			// Deterministic final count: each worker deleted ceil(perW/3)
			// of its own rows.
			deleted := 0
			for i := 0; i < workers*perW; i++ {
				if i%delEvery == 0 {
					deleted++
				}
			}
			want := workers*perW - deleted
			code, out := post("SELECT COUNT(*) AS n FROM events")
			if code != http.StatusOK {
				t.Fatalf("final count: status %d body %v", code, out)
			}
			rows := out["rows"].([]any)
			if got := rows[0].([]any)[0]; got != float64(want) {
				t.Fatalf("final count = %v, want %d", got, want)
			}

			// The repeated INSERT/DELETE shapes must have hit the write-
			// plan cache; on the holistic engines the repeated SELECT
			// shape hits the compiled-query cache too.
			st := db.Stats()
			minHits := uint64(workers*perW) / 2
			if st.WriteCache.Hits < minHits {
				t.Fatalf("write-plan cache hits = %d, want >= %d (repeated DML shapes must be served from cache): %+v",
					st.WriteCache.Hits, minHits, st.WriteCache)
			}
			// Read plans are invalidated by every write's stats refresh,
			// so their hit count depends on interleaving — assert only
			// that the repeated SELECT shape hit at all on the compiled
			// engine. (Write plans are immune to stats refreshes; the
			// strict bound above is theirs.)
			if eng == hique.Holistic && st.Cache.Hits == 0 {
				t.Fatalf("compiled-query cache never hit: %+v", st.Cache)
			}
		})
	}
}
