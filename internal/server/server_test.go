package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hique"
)

func testDB(t *testing.T) *hique.DB {
	t.Helper()
	db := hique.Open(hique.WithPlanCache(32))
	if err := db.CreateTable("items", hique.Int("id"), hique.Int("grp"), hique.Float("price")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Insert("items", int64(i), int64(i%5), float64(i)*1.5); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func postQuery(t *testing.T, ts *httptest.Server, sql, session string) (*http.Response, queryResponse, errorResponse) {
	t.Helper()
	body, _ := json.Marshal(queryRequest{SQL: sql})
	req, err := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if session != "" {
		req.Header.Set(SessionHeader, session)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok queryResponse
	var bad errorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
			t.Fatal(err)
		}
	}
	return resp, ok, bad
}

func TestQueryEndpoint(t *testing.T) {
	s := New(testDB(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, ok, _ := postQuery(t, ts, "SELECT grp, COUNT(*) AS n FROM items GROUP BY grp ORDER BY grp", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(ok.Columns) != 2 || ok.Columns[0] != "grp" {
		t.Fatalf("columns = %v", ok.Columns)
	}
	if ok.RowCount != 5 {
		t.Fatalf("rows = %d, want 5", ok.RowCount)
	}
	// Each of the 5 groups holds 40 of the 200 rows.
	if n, okCast := ok.Rows[0][1].(float64); !okCast || n != 40 {
		t.Fatalf("group count = %v, want 40", ok.Rows[0][1])
	}
	if ok.Session == "" {
		t.Fatal("no session assigned")
	}

	// Same session re-presented: the registry should not grow.
	postQuery(t, ts, "SELECT id FROM items WHERE id < 3", ok.Session)
	if got := s.sessions.Len(); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}

	// Unknown client-supplied IDs are never adopted: the server mints
	// its own (no fixation, no unbounded client-controlled growth).
	_, ok2, _ := postQuery(t, ts, "SELECT id FROM items WHERE id < 3", "attacker-chosen-id")
	if ok2.Session == "attacker-chosen-id" || ok2.Session == "" {
		t.Fatalf("session = %q, want a fresh server-minted ID", ok2.Session)
	}
}

func TestQueryErrors(t *testing.T) {
	s := New(testDB(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _, bad := postQuery(t, ts, "SELECT id FROM nope", "")
	if resp.StatusCode != http.StatusUnprocessableEntity || bad.Error == "" {
		t.Fatalf("status = %d, err = %q", resp.StatusCode, bad.Error)
	}
	resp, _, _ = postQuery(t, ts, "   ", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sql status = %d", resp.StatusCode)
	}
	r2, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status = %d", r2.StatusCode)
	}
}

func TestConcurrentQueries(t *testing.T) {
	s := New(testDB(t), Config{Workers: 8, QueueWait: 5 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const goroutines = 8
	const perG = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := fmt.Sprintf("SELECT id, price FROM items WHERE grp = %d", (g+i)%5)
				body, _ := json.Marshal(queryRequest{SQL: q})
				resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var qr queryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if qr.RowCount != 40 {
					errs <- fmt.Errorf("rows = %d, want 40", qr.RowCount)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.queries.Load(); got != goroutines*perG {
		t.Fatalf("queries = %d, want %d", got, goroutines*perG)
	}
}

func TestPoolSaturation(t *testing.T) {
	p := NewPool(2, 0)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Do(func() { started <- struct{}{}; <-block })
		}()
	}
	<-started
	<-started
	if err := p.Do(func() {}); err != ErrSaturated {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if p.InFlight() != 2 {
		t.Fatalf("in-flight = %d", p.InFlight())
	}
	close(block)
	wg.Wait()
	if err := p.Do(func() {}); err != nil {
		t.Fatalf("post-drain Do: %v", err)
	}
	if p.Rejected() != 1 || p.Admitted() != 3 {
		t.Fatalf("admitted/rejected = %d/%d, want 3/1", p.Admitted(), p.Rejected())
	}
}

func TestSaturationHTTP(t *testing.T) {
	db := testDB(t)
	s := New(db, Config{Workers: 1, QueueWait: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only worker slot out-of-band, then watch a request bounce.
	block := make(chan struct{})
	held := make(chan struct{})
	go s.pool.Do(func() { close(held); <-block })
	<-held
	resp, _, _ := postQuery(t, ts, "SELECT id FROM items", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
	// Rejected requests must not mint sessions (overload would inflate
	// the registry).
	if got := s.sessions.Len(); got != 0 {
		t.Fatalf("sessions after rejection = %d, want 0", got)
	}
	close(block)
}

func TestOversizedBodyRejected(t *testing.T) {
	s := New(testDB(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := fmt.Sprintf(`{"sql":"SELECT id FROM items -- %s"}`, strings.Repeat("x", maxQueryBody))
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestStatsAndTables(t *testing.T) {
	db := testDB(t)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postQuery(t, ts, "SELECT id FROM items", "")
	postQuery(t, ts, "SELECT id FROM items", "") // warm hit

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Queries != 2 || !st.DB.CacheEnabled {
		t.Fatalf("stats = %+v", st)
	}
	if st.DB.Cache.Hits < 1 {
		t.Fatalf("cache hits = %d, want >= 1", st.DB.Cache.Hits)
	}

	resp, err = ts.Client().Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	var tables []tableInfo
	if err := json.NewDecoder(resp.Body).Decode(&tables); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tables) != 1 || tables[0].Name != "items" || tables[0].Rows != 200 {
		t.Fatalf("tables = %+v", tables)
	}
	if len(tables[0].Columns) != 3 {
		t.Fatalf("columns = %v", tables[0].Columns)
	}
}
