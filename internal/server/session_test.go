package server

import (
	"testing"
	"time"
)

func TestSessionRegistryCap(t *testing.T) {
	s := NewSessions(time.Hour)
	for i := 0; i < MaxSessions; i++ {
		s.Acquire("")
	}
	if got := s.Len(); got != MaxSessions {
		t.Fatalf("len = %d, want %d", got, MaxSessions)
	}
	over := s.Acquire("")
	if over == nil || over.ID == "" {
		t.Fatal("over-cap client should still get a working session")
	}
	if got := s.Len(); got != MaxSessions {
		t.Fatalf("registry grew past cap: %d", got)
	}
	// The untracked session is not resumable.
	again := s.Acquire(over.ID)
	if again.ID == over.ID {
		t.Fatal("untracked session should not be resumable")
	}
}

func TestSessionSweepAmortised(t *testing.T) {
	s := NewSessions(80 * time.Millisecond)
	a := s.Acquire("")
	time.Sleep(100 * time.Millisecond)
	// First Acquire after the idle window sweeps a out (interval 10ms
	// elapsed too).
	s.Acquire("")
	if sess := s.Acquire(a.ID); sess.ID == a.ID {
		t.Fatal("expired session should have been swept")
	}
}
