package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hique"
)

// postStmt posts a parameterized statement and decodes whichever body
// came back.
func postStmt(t *testing.T, ts *httptest.Server, sql string, params []any) (*http.Response, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(queryRequest{SQL: sql, Params: params})
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestDMLEndpoint(t *testing.T) {
	db := hique.Open(hique.WithPlanCache(32))
	if err := db.CreateTable("kv", hique.Int("id"), hique.Float("v"), hique.Char("tag", 4)); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Batched insert answers with the rows-affected shape (no rows key).
	resp, out := postStmt(t, ts, "INSERT INTO kv VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, 3.5, 'c')", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status = %d: %v", resp.StatusCode, out)
	}
	if out["rows_affected"] != float64(3) {
		t.Fatalf("rows_affected = %v", out["rows_affected"])
	}
	if _, hasRows := out["rows"]; hasRows {
		t.Fatalf("DML response carries a rows key: %v", out)
	}
	if out["session"] == "" {
		t.Fatal("no session assigned")
	}

	// Parameterized forms.
	if resp, out = postStmt(t, ts, "UPDATE kv SET v = ? WHERE id = ?", []any{9.5, 2}); resp.StatusCode != http.StatusOK || out["rows_affected"] != float64(1) {
		t.Fatalf("update: %d %v", resp.StatusCode, out)
	}
	if resp, out = postStmt(t, ts, "DELETE FROM kv WHERE id = ?", []any{1}); resp.StatusCode != http.StatusOK || out["rows_affected"] != float64(1) {
		t.Fatalf("delete: %d %v", resp.StatusCode, out)
	}

	// The same endpoint still serves reads, observing the writes.
	resp, out = postStmt(t, ts, "SELECT id, v FROM kv WHERE id = ?", []any{2})
	if resp.StatusCode != http.StatusOK || out["row_count"] != float64(1) {
		t.Fatalf("select: %d %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if row := rows[0].([]any); row[1] != 9.5 {
		t.Fatalf("updated value = %v", row)
	}

	// Error classes: bad parameter value = 400, statement errors = 422.
	if resp, _ = postStmt(t, ts, "DELETE FROM kv WHERE id = ?", []any{"nope"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("uncoercible param status = %d, want 400", resp.StatusCode)
	}
	if resp, _ = postStmt(t, ts, "INSERT INTO kv VALUES (?, ?, ?)", []any{1, 1.0, "toolong"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized param status = %d, want 400", resp.StatusCode)
	}
	resp, out = postStmt(t, ts, "INSERT INTO kv VALUES (9, 9.0, 'toolong')", nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("oversized literal status = %d, want 422", resp.StatusCode)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "CHAR(4)") {
		t.Fatalf("width error body = %v", out)
	}
	if resp, _ = postStmt(t, ts, "INSERT INTO missing VALUES (1)", nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown table status = %d, want 422", resp.StatusCode)
	}
}

// TestPanicStatementReturns422AndServerSurvives is the crash-proofing
// regression test: a statement that drives the engine into a panic
// answers 422 and the same server then answers a normal query — the
// process does not exit, the worker pool does not leak a slot, and the
// table locks release.
func TestPanicStatementReturns422AndServerSurvives(t *testing.T) {
	// The column-store engine's aggregation path panics on Float grouping
	// columns (no value directory, index out of range in the comparator).
	db := hique.Open(hique.WithEngine(hique.ColumnStore))
	if err := db.CreateTable("items", hique.Int("id"), hique.Float("price")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.Insert("items", int64(i), float64(i)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	s := New(db, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := postStmt(t, ts, "SELECT price, COUNT(*) FROM items GROUP BY price", nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("panic statement status = %d, want 422 (body %v)", resp.StatusCode, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "panic") {
		t.Fatalf("error body %q does not mention the contained panic", out["error"])
	}

	// The very same server keeps serving reads and writes.
	for i := 0; i < 3; i++ {
		resp, out = postStmt(t, ts, "SELECT id FROM items WHERE id = 3", nil)
		if resp.StatusCode != http.StatusOK || out["row_count"] != float64(1) {
			t.Fatalf("follow-up query %d: status %d body %v", i, resp.StatusCode, out)
		}
	}
	if resp, out = postStmt(t, ts, "INSERT INTO items VALUES (100, 1.0)", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up insert: status %d body %v (a leaked reader lock would hang or fail here)", resp.StatusCode, out)
	}
	if s.pool.InFlight() != 0 {
		t.Fatalf("pool slots leaked: %d in flight", s.pool.InFlight())
	}
}
