package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hique"
)

// scrapeMetrics fetches GET /metrics and returns the raw exposition text.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// sampleLine matches one exposition sample: name, optional label block,
// and a value. The same validation the CI workflow applies.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.e+\-Inf]+|NaN)$`)

// parseExposition validates the text format line by line and returns
// every sample as fullname{labels} -> value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		n++
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", n)
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form %q", n, line)
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("line %d: malformed sample %q", n, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		key, vs := line[:sp], line[sp+1:]
		var v float64
		if vs == "+Inf" {
			v = 1e308
		} else {
			f, err := strconv.ParseFloat(vs, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q", n, vs)
			}
			v = f
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %q", n, key)
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// sumSamples adds every sample whose series name (and labels) match the
// given prefix.
func sumSamples(samples map[string]float64, prefix string) float64 {
	total := 0.0
	for k, v := range samples {
		if strings.HasPrefix(k, prefix) {
			total += v
		}
	}
	return total
}

// TestMetricsReconcile drives a concurrent mixed read/DML workload over
// HTTP and asserts the /metrics totals agree with the per-response counts
// the clients observed.
func TestMetricsReconcile(t *testing.T) {
	db := testDB(t)
	if err := db.BuildIndex("items", "id"); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{Workers: 8, QueueWait: 5 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type stmt struct {
		sql    string
		params []any
		dml    bool
		bad    bool // expects a 400 bind error
	}
	stmts := []stmt{
		{sql: "SELECT id, price FROM items WHERE id = ?", params: []any{7}},
		{sql: "SELECT id FROM items WHERE price > 100.0"},
		{sql: "SELECT grp, COUNT(*), SUM(price) FROM items GROUP BY grp"},
		{sql: "INSERT INTO items VALUES (?, ?, ?)", params: []any{10_000, 1, 2.5}, dml: true},
		{sql: "SELECT id FROM items WHERE id = ?", params: []any{"not-an-int"}, bad: true},
	}

	const workers = 8
	const perWorker = 25
	var ok2xx, errResp atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				st := stmts[(w+i)%len(stmts)]
				body, _ := json.Marshal(queryRequest{SQL: st.sql, Params: st.params})
				resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ok2xx.Add(1)
				case st.bad && resp.StatusCode == http.StatusBadRequest:
					errResp.Add(1)
				default:
					t.Errorf("stmt %q: status %d", st.sql, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	total := ok2xx.Load() + errResp.Load()
	if total != workers*perWorker {
		t.Fatalf("client accounting broken: %d responses, want %d", total, workers*perWorker)
	}

	samples := parseExposition(t, scrapeMetrics(t, ts))

	if got := samples["hique_server_queries_total"]; got != float64(total) {
		t.Errorf("hique_server_queries_total = %v, want %d", got, total)
	}
	if got := samples["hique_server_errors_total"]; got != float64(errResp.Load()) {
		t.Errorf("hique_server_errors_total = %v, want %d", got, errResp.Load())
	}
	if got := samples["hique_pool_admitted_total"]; got != float64(total) {
		t.Errorf("hique_pool_admitted_total = %v, want %d", got, total)
	}
	// Every admitted statement reaches the DB layer exactly once.
	if got := samples["hique_queries_total"]; got != float64(total) {
		t.Errorf("hique_queries_total = %v, want %d", got, total)
	}
	if got := samples["hique_bind_errors_total"]; got != float64(errResp.Load()) {
		t.Errorf("hique_bind_errors_total = %v, want %d", got, errResp.Load())
	}
	// Latency histograms observe exactly the successful statements: the
	// sum of _count across every class/path/temp series must equal the
	// client-observed 2xx count.
	if got := sumSamples(samples, "hique_query_duration_seconds_count"); got != float64(ok2xx.Load()) {
		t.Errorf("sum hique_query_duration_seconds_count = %v, want %d", got, ok2xx.Load())
	}
	// The workload repeats five shapes: the warm point selects must have
	// landed in the fused/warm series.
	warmFused := sumSamples(samples, `hique_query_duration_seconds_count{class="point",path="fused",temp="warm"}`)
	if warmFused == 0 {
		t.Error("no warm fused point-query observations recorded")
	}
	// The durability families must be present even on an in-memory DB
	// (they read zeros) so dashboards never lose the series.
	for _, name := range []string{
		"hique_plan_cache_hits_total", "hique_plan_cache_misses_total",
		"hique_arena_pages_recycled_total", "hique_lock_wait_seconds_count",
		"hique_pool_workers", "hique_sessions",
		"hique_wal_appended_total", "hique_wal_fsync_seconds_count",
		"hique_checkpoints_total", "hique_recovery_replayed_records",
	} {
		if _, ok := findSample(samples, name); !ok {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
}

func findSample(samples map[string]float64, name string) (float64, bool) {
	for k, v := range samples {
		if k == name || strings.HasPrefix(k, name+"{") {
			return v, true
		}
	}
	return 0, false
}

// TestMetricsHistogramMonotone asserts, for every histogram series in the
// exposition, strictly increasing le bounds, non-decreasing cumulative
// bucket counts, and a +Inf bucket equal to _count.
func TestMetricsHistogramMonotone(t *testing.T) {
	db := testDB(t)
	s := New(db, Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 50; i++ {
		body, _ := json.Marshal(queryRequest{SQL: "SELECT id FROM items WHERE id = ?", Params: []any{i}})
		resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	text := scrapeMetrics(t, ts)
	type bucket struct {
		le  float64
		cum float64
	}
	series := map[string][]bucket{}
	counts := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		key, vs := line[:sp], line[sp+1:]
		v, _ := strconv.ParseFloat(vs, 64)
		switch {
		case strings.Contains(key, "_bucket"):
			leStart := strings.LastIndex(key, `le="`)
			if leStart < 0 {
				t.Fatalf("bucket sample without le: %q", line)
			}
			leStr := key[leStart+4 : strings.LastIndexByte(key, '"')]
			le := 1e308
			if leStr != "+Inf" {
				le, _ = strconv.ParseFloat(leStr, 64)
			}
			base := strings.Replace(key[:strings.LastIndexByte(key, '}')+1], "_bucket", "", 1)
			base = strings.Replace(base, `le="`+leStr+`"`, "", 1)
			base = strings.NewReplacer(",,", ",", "{,", "{", ",}", "}", "{}", "").Replace(base)
			series[base] = append(series[base], bucket{le: le, cum: v})
		case strings.Contains(key, "_count"):
			counts[strings.Replace(key, "_count", "", 1)] = v
		}
	}
	if len(series) == 0 {
		t.Fatal("no histogram series found")
	}
	for name, bs := range series {
		for i := 1; i < len(bs); i++ {
			if bs[i].le <= bs[i-1].le {
				t.Errorf("%s: le not strictly increasing at %d (%v <= %v)", name, i, bs[i].le, bs[i-1].le)
			}
			if bs[i].cum < bs[i-1].cum {
				t.Errorf("%s: cumulative count decreases at %d (%v < %v)", name, i, bs[i].cum, bs[i-1].cum)
			}
		}
		last := bs[len(bs)-1]
		if last.le != 1e308 {
			t.Errorf("%s: last bucket is not +Inf", name)
		}
		if want, ok := counts[name]; !ok || last.cum != want {
			t.Errorf("%s: +Inf bucket %v != _count %v", name, last.cum, want)
		}
	}
}

// TestSlowQueryLogRedacts asserts the slow-query log fires on a
// threshold-exceeding statement and never carries raw literal or
// parameter values.
func TestSlowQueryLogRedacts(t *testing.T) {
	db := testDB(t)
	var buf syncBuffer
	s := New(db, Config{Workers: 2, SlowQueryThreshold: 1, SlowQueryLog: &buf})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, q := range []queryRequest{
		{SQL: "SELECT id FROM items WHERE id = 424242"},
		{SQL: "SELECT id FROM items WHERE id = ?", Params: []any{171717}},
		{SQL: "INSERT INTO items VALUES (31337, 1, 99.25)"},
	} {
		body, _ := json.Marshal(q)
		resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status %d", q.SQL, resp.StatusCode)
		}
	}

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("slow log has %d lines, want 3:\n%s", len(lines), out)
	}
	for _, leak := range []string{"424242", "171717", "31337", "99.25"} {
		if strings.Contains(out, leak) {
			t.Errorf("slow log leaks literal %q:\n%s", leak, out)
		}
	}
	var entry slowEntry
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("slow log line is not JSON: %v", err)
	}
	if entry.Shape != "select id from items where id = ?" {
		t.Errorf("shape = %q", entry.Shape)
	}
	if entry.Kind != "select" || entry.ElapsedUs < 0 {
		t.Errorf("bad entry: %+v", entry)
	}
	var ins slowEntry
	if err := json.Unmarshal([]byte(lines[2]), &ins); err != nil {
		t.Fatal(err)
	}
	if ins.Kind != "dml" || strings.Contains(ins.Shape, "31337") {
		t.Errorf("bad dml entry: %+v", ins)
	}
}

// TestAnalyzeEndpoint exercises EXPLAIN ANALYZE through POST /query.
func TestAnalyzeEndpoint(t *testing.T) {
	db := testDB(t)
	s := New(db, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{
		SQL:    "EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM items WHERE id < ? GROUP BY grp",
		Params: []any{100},
	})
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var ar analyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if ar.Rows != 5 {
		t.Errorf("rows = %d, want 5 groups", ar.Rows)
	}
	if ar.Plan == "" || len(ar.Stages) == 0 {
		t.Fatalf("missing plan or stages: %+v", ar)
	}
	var agg *hique.StageStats
	for i := range ar.Stages {
		if ar.Stages[i].Name == "aggregate" {
			agg = &ar.Stages[i]
		}
	}
	if agg == nil {
		t.Fatalf("no aggregate stage in %+v", ar.Stages)
	}
	// RowsOut is the cross-engine invariant; RowsIn is advisory (the fused
	// engine applies the filter inside the stage, so it sees all 200 rows).
	if agg.RowsOut != 5 {
		t.Errorf("aggregate stage = %+v, want RowsOut 5", *agg)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the slow log writer is
// called from worker goroutines).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
