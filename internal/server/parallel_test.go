package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hique"
	"hique/internal/codegen"
	"hique/internal/morsel"
)

// TestParallelQueryMixedWorkload drives concurrent batched DML against
// one table while other sessions run a parallel fused join+aggregation
// over it, through the HTTP server. Run with -race (CI does), this is
// the parallel execution path's concurrency proof: morsel workers read
// table pages under the same table read lock discipline as the serial
// path, so they interleave with the writer lock and the table-ID-
// ordered two-table locking without deadlock, and the final counts are
// deterministic.
func TestParallelQueryMixedWorkload(t *testing.T) {
	prev := codegen.SetParallelThreshold(1)
	defer codegen.SetParallelThreshold(prev)

	const (
		writers   = 3
		perW      = 40 // batched INSERT statements per writer (2 rows each)
		readers   = 3
		reads     = 25
		preloaded = 2000
	)
	db := hique.Open(hique.WithPlanCache(128), hique.WithParallelism(4))
	if err := db.CreateTable("fact", hique.Int("id"), hique.Int("k"), hique.Float("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("dim", hique.Int("k2"), hique.Int("bucket")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Exec("INSERT INTO dim VALUES (?, ?)", i, i%7); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < preloaded; i += 4 {
		if _, err := db.Exec("INSERT INTO fact VALUES (?, ?, ?), (?, ?, ?), (?, ?, ?), (?, ?, ?)",
			i, i%50, float64(i)*0.25,
			i+1, (i+1)%50, float64(i+1)*0.25,
			i+2, (i+2)%50, float64(i+2)*0.25,
			i+3, (i+3)%50, float64(i+3)*0.25); err != nil {
			t.Fatal(err)
		}
	}

	s := New(db, Config{Workers: 8, QueueWait: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(sql string, params ...any) (int, map[string]any) {
		body, _ := json.Marshal(queryRequest{SQL: sql, Params: params})
		resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0, nil
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	q0, _ := morsel.Stats()
	var wg sync.WaitGroup
	errs := make(chan string, writers+readers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := 1_000_000 + g*10_000 // id range owned by this writer
			for i := 0; i < perW; i++ {
				a, b := base+2*i, base+2*i+1
				code, out := post("INSERT INTO fact VALUES (?, ?, ?), (?, ?, ?)",
					a, a%50, float64(a)*0.25, b, b%50, float64(b)*0.25)
				if code != http.StatusOK {
					errs <- fmt.Sprintf("insert %d: status %d body %v", a, code, out)
					return
				}
				if i%4 == 0 {
					// Delete the first row of the batch just written: owned
					// ids make the final count deterministic.
					if code, out := post("DELETE FROM fact WHERE id = ?", a); code != http.StatusOK {
						errs <- fmt.Sprintf("delete %d: status %d body %v", a, code, out)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				// The headline pipeline: fused join + grouped aggregation,
				// running its staging scans in parallel morsels. Under
				// admission pressure a 503 is a legal answer.
				code, out := post("SELECT bucket, COUNT(*) AS n, SUM(v) AS s FROM fact, dim WHERE fact.k = dim.k2 GROUP BY bucket ORDER BY bucket")
				if code != http.StatusOK && code != http.StatusServiceUnavailable {
					errs <- fmt.Sprintf("join+agg read %d: status %d body %v", i, code, out)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Deterministic final count: preloaded + writers' inserts - deletes.
	deletes := writers * ((perW + 3) / 4)
	want := preloaded + writers*perW*2 - deletes
	code, out := post("SELECT COUNT(*) AS n FROM fact")
	if code != http.StatusOK {
		t.Fatalf("final count: status %d body %v", code, out)
	}
	rows := out["rows"].([]any)
	if got := rows[0].([]any)[0]; got != float64(want) {
		t.Fatalf("final count = %v, want %d", got, want)
	}

	// The readers' join+agg must actually have taken the parallel path.
	q1, _ := morsel.Stats()
	if q1 <= q0 {
		t.Fatalf("no parallel query executions recorded (%d -> %d)", q0, q1)
	}

	// And the counters surface on /metrics.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, metric := range []string{"hique_parallel_queries_total", "hique_morsels_total"} {
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, metric+" ") {
				found = true
				if strings.TrimPrefix(line, metric+" ") == "0" {
					t.Errorf("%s is 0 after parallel executions", metric)
				}
			}
		}
		if !found {
			t.Errorf("metric %s not exposed", metric)
		}
	}
}

// TestParallelExplainAnalyzeOverHTTP pins the EXPLAIN ANALYZE JSON
// surface: a traced parallel execution reports its phases with worker
// counts and per-morsel row counts.
func TestParallelExplainAnalyzeOverHTTP(t *testing.T) {
	prev := codegen.SetParallelThreshold(1)
	defer codegen.SetParallelThreshold(prev)

	db := hique.Open(hique.WithParallelism(4))
	if err := db.CreateTable("pt", hique.Int("id"), hique.Float("v")); err != nil {
		t.Fatal(err)
	}
	// Enough rows that the scan splits into several page-range morsels
	// (a morsel targets morsel.Rows = 8192 tuples).
	for i := 0; i < 20000; i += 8 {
		args := make([]any, 0, 16)
		for k := i; k < i+8; k++ {
			args = append(args, k, float64(k))
		}
		if _, err := db.Exec("INSERT INTO pt VALUES (?, ?), (?, ?), (?, ?), (?, ?), (?, ?), (?, ?), (?, ?), (?, ?)", args...); err != nil {
			t.Fatal(err)
		}
	}
	s := New(db, Config{Workers: 4, QueueWait: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{SQL: "EXPLAIN ANALYZE SELECT id, v FROM pt WHERE id >= 10"})
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar analyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(ar.Parallel) == 0 {
		t.Fatalf("no parallel phases in analyze response: %+v", ar)
	}
	ph := ar.Parallel[0]
	if ph.Stage == "" || ph.Workers < 1 || len(ph.MorselRows) == 0 {
		t.Fatalf("malformed parallel phase %+v", ph)
	}
}
