package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postParamQuery(t *testing.T, ts *httptest.Server, sql string, params []any) (*http.Response, queryResponse, errorResponse) {
	t.Helper()
	body, _ := json.Marshal(queryRequest{SQL: sql, Params: params})
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok queryResponse
	var bad errorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
			t.Fatal(err)
		}
	}
	return resp, ok, bad
}

func TestQueryParams(t *testing.T) {
	s := New(testDB(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// JSON numbers arrive as float64; an integral one coerces to the Int
	// column the placeholder compares against.
	resp, ok, _ := postParamQuery(t, ts, "SELECT id, price FROM items WHERE id = ?", []any{float64(7)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ok.RowCount != 1 || ok.Rows[0][0].(float64) != 7 {
		t.Fatalf("rows = %v", ok.Rows)
	}

	// Same shape, different constant: must be served (from the same
	// cached plan) with the new binding, not the old result.
	resp, ok, _ = postParamQuery(t, ts, "SELECT id, price FROM items WHERE id = ?", []any{float64(11)})
	if resp.StatusCode != http.StatusOK || ok.Rows[0][0].(float64) != 11 {
		t.Fatalf("status = %d rows = %v", resp.StatusCode, ok.Rows)
	}
}

func TestQueryParamCoercionErrors(t *testing.T) {
	s := New(testDB(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		sql    string
		params []any
	}{
		{"fractional-for-int", "SELECT id FROM items WHERE id = ?", []any{7.5}},
		{"string-for-int", "SELECT id FROM items WHERE id = ?", []any{"seven"}},
		{"missing-param", "SELECT id FROM items WHERE id = ?", nil},
		{"extra-param", "SELECT id FROM items WHERE id = ?", []any{float64(1), float64(2)}},
	}
	for _, c := range cases {
		resp, _, bad := postParamQuery(t, ts, c.sql, c.params)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", c.name, resp.StatusCode, bad.Error)
		}
		if bad.Error == "" {
			t.Errorf("%s: empty error body", c.name)
		}
	}

	// A broken statement (not broken values) stays a 422.
	resp, _, _ := postParamQuery(t, ts, "SELECT nothing FROM nowhere", nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("statement error: status = %d, want 422", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	// Workers: 1 with a held slot proves /healthz never waits on the
	// admission pool: liveness must not flap under the load the 503 path
	// is shedding.
	s := New(testDB(t), Config{Workers: 1, QueueWait: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		_ = s.pool.Do(func() {
			close(acquired)
			<-release
		})
	}()
	<-acquired
	defer close(release)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 while the pool is saturated", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("body = %v", body)
	}

	// Sanity: with the pool saturated, /query is shed with 503 while
	// /healthz above stayed green.
	reqBody := strings.NewReader(`{"sql": "SELECT id FROM items WHERE id = 1"}`)
	qresp, err := ts.Client().Post(ts.URL+"/query", "application/json", reqBody)
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated /query status = %d, want 503", qresp.StatusCode)
	}
}
