// Package server is HIQUE's query-serving layer: it turns the embedded
// engine into a network service. Three pieces compose it:
//
//   - a bounded worker Pool for admission control (overload returns 503
//     instead of queueing unboundedly),
//   - a Sessions registry tracking per-client query streams, and
//   - an HTTP/JSON front end (POST /query, GET /healthz, GET /stats,
//     GET /metrics, GET /tables, GET /sessions) over a shared *hique.DB.
//
// GET /metrics serves the DB's and the serving layer's telemetry in the
// Prometheus text exposition format; a threshold-gated slow-query log
// emits JSON lines carrying redacted statement shapes (never literals).
// "EXPLAIN ANALYZE <stmt>" through POST /query runs the statement with
// per-stage tracing and answers with the stage table.
//
// POST /query accepts parameterized statements: {"sql": "SELECT ... WHERE
// id = ?", "params": [42]} binds one value per '?' placeholder, so one
// compiled plan in the cache serves the whole query shape. A value that
// cannot be coerced to the compared column's type (or a wrong parameter
// count) is the client's fault and returns 400; statement errors keep
// returning 422. DML statements (INSERT INTO ... VALUES, DELETE FROM,
// UPDATE ... SET, all parameterizable) go through the same endpoint and
// answer with a rows-affected body instead of a row set.
//
// A statement that trips an engine panic (a malformed descriptor
// combination deep in specialised code) is contained: the worker recovers,
// the statement reports 422, and the server keeps serving.
//
// Concurrency safety of the read path comes from hique.DB itself: query
// execution holds per-table reader locks while writers (Insert,
// CreateTable, BuildIndex, statistics refresh) take the corresponding
// writer lock, so any number of in-flight queries may share a table
// while mutations serialise. The serving layer adds the plan cache on
// top (enable with hique.WithPlanCache), which is what amortises the
// paper's preparation cost (Table III) across a repeated workload.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hique"
	"hique/internal/obs"
	"hique/internal/sql"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrently executing queries (default 8).
	Workers int
	// QueueWait bounds how long an arriving query waits for a worker
	// slot before a 503 (default 100ms; negative rejects immediately).
	QueueWait time.Duration
	// SessionExpiry drops sessions idle longer than this (default 10m).
	SessionExpiry time.Duration
	// SlowQueryThreshold, when positive, logs statements whose execution
	// exceeds it to SlowQueryLog as JSON lines. Logged statements carry
	// the redacted shape (every literal replaced by '?') and bind arity —
	// never raw literal or parameter values.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives the slow-query lines (default os.Stderr).
	SlowQueryLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueWait == 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.SessionExpiry == 0 {
		c.SessionExpiry = 10 * time.Minute
	}
	if c.SlowQueryLog == nil {
		c.SlowQueryLog = os.Stderr
	}
	return c
}

// Server serves a hique.DB over HTTP/JSON.
type Server struct {
	db       *hique.DB
	pool     *Pool
	sessions *Sessions
	started  time.Time

	queries atomic.Uint64
	errors  atomic.Uint64

	// draining flips on BeginShutdown: /healthz answers 503 so load
	// balancers pull the instance while in-flight statements finish.
	draining atomic.Bool

	// reg holds the serving-layer metrics (pool, sessions, request
	// counters); GET /metrics renders it after the DB's own registry.
	reg  *obs.Registry
	slow *obs.Counter

	// slowThreshold gates the slow-query log; slowMu serialises writers
	// to slowLog (one JSON line per slow statement).
	slowThreshold time.Duration
	slowMu        sync.Mutex
	slowLog       io.Writer
}

// New creates a server over db.
func New(db *hique.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:            db,
		pool:          NewPool(cfg.Workers, cfg.QueueWait),
		sessions:      NewSessions(cfg.SessionExpiry),
		started:       time.Now(),
		reg:           obs.NewRegistry(),
		slowThreshold: cfg.SlowQueryThreshold,
		slowLog:       cfg.SlowQueryLog,
	}
	s.reg.CounterFunc("hique_server_queries_total", "Statements received on POST /query.", "",
		func() int64 { return int64(s.queries.Load()) })
	s.reg.CounterFunc("hique_server_errors_total", "Statements that answered with an error status.", "",
		func() int64 { return int64(s.errors.Load()) })
	s.slow = s.reg.Counter("hique_server_slow_queries_total",
		"Statements logged as slow (elapsed over the configured threshold).", "")
	s.reg.GaugeFunc("hique_pool_workers", "Worker-pool width (admission bound).", "",
		func() float64 { return float64(s.pool.Workers()) })
	s.reg.GaugeFunc("hique_pool_in_flight", "Pool slots currently executing statements.", "",
		func() float64 { return float64(s.pool.InFlight()) })
	s.reg.GaugeFunc("hique_pool_waiting", "Callers blocked in the admission wait (queue depth).", "",
		func() float64 { return float64(s.pool.Waiting()) })
	s.reg.CounterFunc("hique_pool_admitted_total", "Statements that acquired a pool slot.", "",
		func() int64 { return int64(s.pool.Admitted()) })
	s.reg.CounterFunc("hique_pool_rejected_total", "Statements rejected saturated (503).", "",
		func() int64 { return int64(s.pool.Rejected()) })
	s.reg.GaugeFunc("hique_sessions", "Live client sessions.", "",
		func() float64 { return float64(s.sessions.Len()) })
	return s
}

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /tables", s.handleTables)
	mux.HandleFunc("GET /sessions", s.handleSessions)
	return mux
}

// ListenAndServe serves on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return srv.ListenAndServe()
}

// BeginShutdown starts a graceful drain: new statements are rejected
// with 503 and /healthz reports draining. In-flight statements keep
// their pool slots until they finish — wait for them with Drain.
func (s *Server) BeginShutdown() {
	s.draining.Store(true)
	s.pool.Close()
}

// Drain blocks until every in-flight statement completes, or ctx
// expires. Call BeginShutdown first.
func (s *Server) Drain(ctx context.Context) error { return s.pool.Drain(ctx) }

// queryRequest is the POST /query body. Params supplies one value per
// '?' placeholder in SQL, in order; JSON numbers arrive as float64 and
// are coerced to the compared column's type (integral floats to Int/Date,
// YYYY-MM-DD strings to Date).
type queryRequest struct {
	SQL    string `json:"sql"`
	Params []any  `json:"params"`
}

// queryResponse is the POST /query success body for SELECT statements.
type queryResponse struct {
	Columns   []string `json:"columns"`
	Rows      [][]any  `json:"rows"`
	RowCount  int      `json:"row_count"`
	ElapsedUs int64    `json:"elapsed_us"`
	Session   string   `json:"session"`
}

// execResponse is the POST /query success body for DML statements.
type execResponse struct {
	RowsAffected int    `json:"rows_affected"`
	ElapsedUs    int64  `json:"elapsed_us"`
	Session      string `json:"session"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// SessionHeader carries the client's session ID; the server mints one
// for requests without it and returns it in both the response body and
// this response header.
const SessionHeader = "X-Hique-Session"

// maxQueryBody bounds the POST /query request body; a statement the
// engine would accept is far below this, and unbounded bodies would
// bypass the admission control the pool provides.
const maxQueryBody = 1 << 20

// resultPool recycles materialised results across requests: QueryInto
// reuses the columns, rows, and flat cell arena of a Reset result, so
// the HTTP path stops boxing every row into a fresh []any. A result
// returns to the pool only after its response has been encoded.
var resultPool = sync.Pool{New: func() any { return new(hique.Result) }}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty sql"})
		return
	}

	if rest, ok := hique.StripExplainAnalyze(req.SQL); ok {
		s.handleAnalyze(w, r, rest, req.Params)
		return
	}
	if sql.IsDML(req.SQL) {
		s.handleExec(w, r, &req)
		return
	}

	res := resultPool.Get().(*hique.Result)
	defer resultPool.Put(res)
	var qerr error
	err := s.pool.Do(func() {
		// The DB layer already converts engine panics into statement
		// errors; this recover is the worker's own containment so no
		// future panic class can take the process down.
		defer recoverToErr(&qerr)
		qerr = s.db.QueryInto(res, req.SQL, req.Params...)
	})
	if err != nil {
		// Rejected before admission: no session is minted, so overload
		// cannot inflate the registry.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	sess, ok := s.noteOutcome(w, r, qerr)
	if !ok {
		return
	}
	sess.note(res.Elapsed, false, time.Now())
	s.noteSlow("select", req.SQL, len(req.Params), res.Elapsed, len(res.Rows), sess.ID)
	writeJSON(w, http.StatusOK, queryResponse{
		Columns:   res.Columns,
		Rows:      res.Rows,
		RowCount:  len(res.Rows),
		ElapsedUs: res.Elapsed.Microseconds(),
		Session:   sess.ID,
	})
}

// analyzeResponse is the POST /query success body for EXPLAIN ANALYZE.
type analyzeResponse struct {
	Engine    string                `json:"engine"`
	Plan      string                `json:"plan"`
	Stages    []hique.StageStats    `json:"stages"`
	Parallel  []hique.ParallelStats `json:"parallel,omitempty"`
	Rows      int                   `json:"rows"`
	ElapsedUs int64                 `json:"elapsed_us"`
	Session   string                `json:"session"`
}

// handleAnalyze serves EXPLAIN ANALYZE <stmt>: the statement runs (under
// the same admission pool) with per-stage tracing enabled and answers
// with the stage table instead of the row set.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request, stmt string, params []any) {
	var a *hique.AnalyzeResult
	var qerr error
	err := s.pool.Do(func() {
		defer recoverToErr(&qerr)
		a, qerr = s.db.ExplainAnalyze(stmt, params...)
	})
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	sess, ok := s.noteOutcome(w, r, qerr)
	if !ok {
		return
	}
	sess.note(a.Elapsed, false, time.Now())
	writeJSON(w, http.StatusOK, analyzeResponse{
		Engine:    a.Engine,
		Plan:      a.Plan,
		Stages:    a.Stages,
		Parallel:  a.Parallel,
		Rows:      a.Rows,
		ElapsedUs: a.Elapsed.Microseconds(),
		Session:   sess.ID,
	})
}

// handleExec runs a DML statement through the same admission pool and
// session accounting as queries, answering with the rows-affected shape.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request, req *queryRequest) {
	var er hique.ExecResult
	var qerr error
	err := s.pool.Do(func() {
		defer recoverToErr(&qerr)
		er, qerr = s.db.Exec(req.SQL, req.Params...)
	})
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	sess, ok := s.noteOutcome(w, r, qerr)
	if !ok {
		return
	}
	sess.note(er.Elapsed, false, time.Now())
	s.noteSlow("dml", req.SQL, len(req.Params), er.Elapsed, er.RowsAffected, sess.ID)
	writeJSON(w, http.StatusOK, execResponse{
		RowsAffected: er.RowsAffected,
		ElapsedUs:    er.Elapsed.Microseconds(),
		Session:      sess.ID,
	})
}

// slowEntry is one slow-query log line. Shape carries the redacted
// statement — every literal replaced by '?' (sql.RedactShape), so no data
// value reaches the log — and Arity the count of '?' placeholders the
// client's statement itself carried; Params is how many bind values
// accompanied the request.
type slowEntry struct {
	TS        string `json:"ts"`
	Kind      string `json:"kind"`
	Shape     string `json:"shape"`
	Arity     int    `json:"arity"`
	Params    int    `json:"params"`
	ElapsedUs int64  `json:"elapsed_us"`
	Rows      int    `json:"rows"`
	Session   string `json:"session"`
}

// noteSlow logs a statement that exceeded the slow-query threshold as one
// JSON line. The redaction and encoding run only for slow statements, so
// the fast path pays a single comparison.
func (s *Server) noteSlow(kind, stmt string, params int, elapsed time.Duration, rows int, session string) {
	if s.slowThreshold <= 0 || elapsed < s.slowThreshold {
		return
	}
	s.slow.Inc()
	shape, arity, err := sql.RedactShape(stmt)
	if err != nil {
		// A statement that executed but no longer lexes cannot happen;
		// redact fully rather than risk a literal.
		shape = "(unlexable)"
	}
	line, err := json.Marshal(slowEntry{
		TS:        time.Now().UTC().Format(time.RFC3339Nano),
		Kind:      kind,
		Shape:     shape,
		Arity:     arity,
		Params:    params,
		ElapsedUs: elapsed.Microseconds(),
		Rows:      rows,
		Session:   session,
	})
	if err != nil {
		return
	}
	s.slowMu.Lock()
	_, _ = s.slowLog.Write(append(line, '\n'))
	s.slowMu.Unlock()
}

// handleMetrics renders the DB and serving-layer registries in the
// Prometheus text exposition format. Like /healthz it takes no pool slot:
// scrapes must keep working while admission is shedding load.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.db.Metrics().WritePrometheus(w)
	_ = s.reg.WritePrometheus(w)
}

// recoverToErr converts a panic escaping a statement into its error
// result, keeping the worker (and the process) alive.
func recoverToErr(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("statement aborted by internal panic: %v", r)
	}
}

// noteOutcome mints the session, counts the statement, and writes the
// error response when qerr is set: BindError means the supplied parameter
// values are at fault (400), anything else — including a contained engine
// panic — is a statement error (422). It returns the session and true
// when the caller should write its success body.
func (s *Server) noteOutcome(w http.ResponseWriter, r *http.Request, qerr error) (*Session, bool) {
	sess := s.sessions.Acquire(r.Header.Get(SessionHeader))
	s.queries.Add(1)
	w.Header().Set(SessionHeader, sess.ID)
	if qerr == nil {
		return sess, true
	}
	s.errors.Add(1)
	sess.note(0, true, time.Now())
	status := http.StatusUnprocessableEntity
	var bindErr *hique.BindError
	if errors.As(qerr, &bindErr) {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorResponse{Error: qerr.Error()})
	return sess, false
}

// handleHealthz is the load-balancer liveness probe: it answers without
// taking a pool slot (an overloaded server is still alive — health must
// not flap under the very load the 503 admission path is shedding) and
// without touching the catalogue. A draining server reports 503 so
// balancers stop routing to it while in-flight statements finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsResponse is the GET /stats body.
type statsResponse struct {
	UptimeSec float64       `json:"uptime_sec"`
	Queries   uint64        `json:"queries"`
	Errors    uint64        `json:"errors"`
	Workers   int           `json:"workers"`
	InFlight  int           `json:"in_flight"`
	Waiting   int64         `json:"waiting"`
	Admitted  uint64        `json:"admitted"`
	Rejected  uint64        `json:"rejected"`
	Sessions  int           `json:"sessions"`
	DB        hique.DBStats `json:"db"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSec: time.Since(s.started).Seconds(),
		Queries:   s.queries.Load(),
		Errors:    s.errors.Load(),
		Workers:   s.pool.Workers(),
		InFlight:  s.pool.InFlight(),
		Waiting:   s.pool.Waiting(),
		Admitted:  s.pool.Admitted(),
		Rejected:  s.pool.Rejected(),
		Sessions:  s.sessions.Len(),
		DB:        s.db.Stats(),
	})
}

// tableInfo is one GET /tables element.
type tableInfo struct {
	Name    string   `json:"name"`
	Rows    int      `json:"rows"`
	Columns []string `json:"columns"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	names := s.db.Tables()
	out := make([]tableInfo, 0, len(names))
	for _, n := range names {
		// TableInfo reads under the DB's own ordered reader lock — entry
		// locks belong to the serving layer (hique-vet: lockorder).
		rows, cols, err := s.db.TableInfo(n)
		if err != nil {
			continue
		}
		out = append(out, tableInfo{Name: n, Rows: rows, Columns: cols})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sessions.List())
}
