package morsel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Every index in [0, n) must be claimed exactly once, no matter how many
// goroutines race on the queue.
func TestQueueClaimsEachIndexOnce(t *testing.T) {
	const n = 1000
	var q Queue
	q.Reset(n)
	seen := make([]atomic.Int32, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := q.Next()
				if !ok {
					return
				}
				seen[i].Add(1)
			}
		}()
	}
	wg.Wait()
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d claimed %d times", i, got)
		}
	}
}

func TestQueueCancelStopsClaims(t *testing.T) {
	var q Queue
	q.Reset(100)
	if _, ok := q.Next(); !ok {
		t.Fatal("first claim failed")
	}
	q.Cancel()
	if _, ok := q.Next(); ok {
		t.Fatal("claim succeeded after Cancel")
	}
	if !q.Cancelled() {
		t.Fatal("Cancelled reports false after Cancel")
	}
}

func TestQueueEmpty(t *testing.T) {
	var q Queue
	q.Reset(0)
	if _, ok := q.Next(); ok {
		t.Fatal("claim succeeded on empty queue")
	}
}

// A pool sized for w workers grants at most w-1 concurrent helpers; a
// slot frees when its function returns.
func TestPoolBoundsHelpers(t *testing.T) {
	p := NewPool(3) // 2 helper slots
	block := make(chan struct{})
	var running sync.WaitGroup
	running.Add(2)
	for i := 0; i < 2; i++ {
		if !p.TryGo(func() { running.Done(); <-block }) {
			t.Fatalf("helper %d rejected with free slots", i)
		}
	}
	running.Wait()
	if p.TryGo(func() {}) {
		t.Fatal("third helper admitted past the bound")
	}
	close(block)
	// Slots free asynchronously; poll until one is reusable.
	done := make(chan struct{})
	for i := 0; i < 1e6; i++ {
		if p.TryGo(func() { close(done) }) {
			<-done
			return
		}
	}
	t.Fatal("slot never freed after helper returned")
}

func TestPoolSizeOneNeverGrantsHelpers(t *testing.T) {
	p := NewPool(1)
	if p.TryGo(func() {}) {
		t.Fatal("pool sized for one worker granted a helper")
	}
}

func TestNilPoolIsUnbounded(t *testing.T) {
	var p *Pool
	done := make(chan struct{})
	if !p.TryGo(func() { close(done) }) {
		t.Fatal("nil pool rejected a helper")
	}
	<-done
}
