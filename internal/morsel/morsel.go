// Package morsel provides the shared infrastructure for morsel-driven
// parallel query execution (the §VII direction of the paper): fixed-size
// work-unit claiming, a bounded helper-goroutine pool, and the process-
// wide counters the metrics layer re-exports.
//
// A parallel phase splits its input into morsels — fixed-size ranges of
// a scan or a contiguous chunk of join partitions — and every worker
// claims the next unprocessed morsel through one atomic counter, so a
// slow worker never stalls the others and the split adapts to skew
// without a scheduler. Determinism is the caller's contract: a worker
// records where its morsel's output landed, and the caller stitches the
// per-morsel outputs back together in morsel-index order, so the result
// bytes are independent of which worker ran which morsel and of how many
// workers actually ran.
package morsel

import (
	"sync/atomic"
)

// Rows is the target tuple count of one morsel. Small enough that a
// morsel's staged output stays cache-resident (the paper's §V-B budget)
// and that a scan splits into enough morsels to balance load, large
// enough that the per-morsel claim and bookkeeping cost vanishes.
const Rows = 8192

// Queue hands out morsel indexes [0, n) to concurrent workers: one
// atomic increment per claim, no locks, no channels. Cancel makes every
// subsequent claim fail, which is how a LIMIT that is already satisfied
// by completed morsels stops workers from touching unclaimed ones.
type Queue struct {
	next atomic.Int64
	n    int64
}

// Reset prepares the queue to hand out indexes [0, n).
func (q *Queue) Reset(n int) {
	q.n = int64(n)
	q.next.Store(0)
}

// Next claims the next morsel, reporting false when the queue is
// exhausted or cancelled. The i < 0 guard catches counter overflow from
// claims long after exhaustion (2^63 increments away in normal use, but
// Cancel used to park the counter near the limit).
func (q *Queue) Next() (int, bool) {
	i := q.next.Add(1) - 1
	if i < 0 || i >= q.n {
		return 0, false
	}
	return int(i), true
}

// Cancel drops every unclaimed morsel: subsequent Next calls fail.
// Workers that already hold a morsel finish it — cancellation bounds
// future work, it does not interrupt running work. The counter parks at
// n rather than at the int64 limit so racing Next increments cannot
// overflow it into valid-looking negative indexes.
func (q *Queue) Cancel() {
	q.next.Store(q.n)
}

// Cancelled reports whether Cancel has been called (or the queue
// drained).
func (q *Queue) Cancelled() bool { return q.next.Load() >= q.n }

// Pool bounds how many helper goroutines parallel phases may run at
// once. It is a slot semaphore, not a set of persistent workers: a
// phase's caller always executes worker 0 itself and tries to add
// helpers through TryGo, so a pool that is saturated (or sized for one
// worker) degrades the phase to serial execution with no waiting and no
// goroutine leaks — a DB handle needs no Close for its pool.
//
// A nil *Pool is valid and unbounded: every TryGo spawns. Plans built
// outside a DB (tests, benchmarks) run that way.
type Pool struct {
	slots chan struct{}
}

// NewPool sizes a pool for the given total worker count per phase: the
// phase's caller is one worker, so the pool holds workers-1 helper
// slots. workers <= 1 yields a pool that never grants a helper.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{slots: make(chan struct{}, workers-1)}
}

// TryGo runs fn on a new goroutine if a helper slot is free, returning
// whether it did. The slot is held until fn returns.
func (p *Pool) TryGo(fn func()) bool {
	if p == nil {
		go fn()
		return true
	}
	select {
	case p.slots <- struct{}{}:
	default:
		return false
	}
	go func() {
		defer func() { <-p.slots }()
		fn()
	}()
	return true
}

// Process-wide execution counters, re-exported as hique_morsels_total
// and hique_parallel_queries_total. Like the storage arena's statistics
// they are global — parallel phases run inside compiled artefacts that
// may outlive any one DB handle.
var (
	morselsTotal    atomic.Int64
	parallelQueries atomic.Int64
)

// CountMorsels records n processed morsels.
func CountMorsels(n int) { morselsTotal.Add(int64(n)) }

// CountQuery records one query execution that ran at least one parallel
// phase.
func CountQuery() { parallelQueries.Add(1) }

// Stats returns the process-wide totals: parallel query executions and
// processed morsels.
func Stats() (queries, morsels int64) {
	return parallelQueries.Load(), morselsTotal.Load()
}
