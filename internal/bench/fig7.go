package bench

import (
	"fmt"

	"hique/internal/catalog"
	"hique/internal/core"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
	"hique/internal/volcano"
)

// planEngine abstracts the engines the Figure 7 comparisons run on.
type planEngine interface {
	Name() string
	Execute(p *plan.Plan) (*storage.Table, error)
}

// tupleTable builds a 72-byte-tuple table: one key column plus eight
// payload ints, with keys cycling over `distinct` values. Column names are
// prefixed so multi-table catalogues resolve unambiguously.
func tupleTable(name, prefix string, n, distinct int) *storage.Table {
	cols := make([]types.Column, 9)
	cols[0] = types.Col(prefix+"key", types.Int)
	for i := 1; i < 9; i++ {
		cols[i] = types.Col(fmt.Sprintf("%sf%d", prefix, i), types.Int)
	}
	t := storage.NewTable(name, types.NewSchema(cols...))
	buf := make([]byte, t.Schema().TupleSize())
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		types.PutInt(buf, 0, int64(i%distinct))
		for f := 1; f < 9; f++ {
			types.PutInt(buf, f*8, int64(x>>uint(f)))
		}
		t.Append(buf)
	}
	return t
}

func mustPlan(cat *catalog.Catalog, query string, opts plan.Options) *plan.Plan {
	stmt, err := sql.Parse(query)
	if err != nil {
		panic(fmt.Sprintf("bench: parse %q: %v", query, err))
	}
	p, err := plan.BuildWithOptions(stmt, cat, opts)
	if err != nil {
		panic(fmt.Sprintf("bench: plan %q: %v", query, err))
	}
	return p
}

func runTimed(e planEngine, p *plan.Plan, reps int) float64 {
	return timeIt(reps, func() {
		if _, err := e.Execute(p); err != nil {
			panic(fmt.Sprintf("bench: %s: %v", e.Name(), err))
		}
	}).Seconds()
}

// Fig7a reproduces the join scalability experiment: outer 1M tuples, inner
// cardinality swept 1M..10M, ten matches per outer tuple, merge vs hybrid
// join on optimized iterators vs HIQUE.
func Fig7a(scale float64) Result {
	outerN := max(int(1000000*scale), 2000)
	multipliers := []int{1, 2, 4, 6, 8, 10}

	res := Result{
		ID:     "Fig7a",
		Title:  fmt.Sprintf("Join scalability: outer %d tuples, inner swept, 10 matches/outer (seconds)", outerN),
		Header: []string{"Series"},
	}
	for _, m := range multipliers {
		res.Header = append(res.Header, fmt.Sprintf("inner=%dx", m))
	}

	type series struct {
		name string
		alg  plan.JoinAlgorithm
		eng  planEngine
	}
	all := []series{
		{"Merge - Iterators", plan.MergeJoin, volcano.NewOptimized()},
		{"Hybrid - Iterators", plan.HybridJoin, volcano.NewOptimized()},
		{"Merge - HIQUE", plan.MergeJoin, core.NewEngine()},
		{"Hybrid - HIQUE", plan.HybridJoin, core.NewEngine()},
	}
	rows := make([][]string, len(all))
	for i, s := range all {
		rows[i] = []string{s.name}
	}

	for _, m := range multipliers {
		innerN := outerN * m
		distinct := max(innerN/10, 1)
		cat := catalog.New()
		cat.Register(tupleTable("jouter", "o", outerN, distinct))
		cat.Register(tupleTable("jinner", "i", innerN, distinct))
		q := "SELECT of1, if1 FROM jouter, jinner WHERE jouter.okey = jinner.ikey"
		for i, s := range all {
			opts := plan.DefaultOptions()
			alg := s.alg
			opts.ForceJoinAlg = &alg
			p := mustPlan(cat, q, opts)
			rows[i] = append(rows[i], fmt.Sprintf("%.3f", runTimed(s.eng, p, 2)))
		}
	}
	res.Rows = rows
	res.Notes = []string{"All series evaluate the same plans; algorithms forced per series (paper Fig. 7a)."}
	return res
}

// Fig7b reproduces the multi-way join experiment: one large table joined
// with a growing number of 100k-tuple tables on a single shared key,
// comparing binary merge cascades against HIQUE's join teams.
func Fig7b(scale float64) Result {
	bigN := max(int(1000000*scale), 2000)
	smallN := max(int(100000*scale), 1000)
	distinct := smallN // each small table holds each key exactly once
	tableCounts := []int{2, 3, 4, 5, 6, 7, 8}

	res := Result{
		ID:     "Fig7b",
		Title:  fmt.Sprintf("Multi-way joins: %d-tuple table joined with k-1 tables of %d tuples (seconds)", bigN, smallN),
		Header: []string{"Series"},
	}
	for _, k := range tableCounts {
		res.Header = append(res.Header, fmt.Sprintf("k=%d", k))
	}

	type series struct {
		name  string
		alg   plan.JoinAlgorithm
		eng   planEngine
		teams bool
	}
	all := []series{
		{"Merge - Iterators", plan.MergeJoin, volcano.NewOptimized(), false},
		{"Merge - HIQUE (binary)", plan.MergeJoin, core.NewEngine(), false},
		{"Merge - HIQUE (team)", plan.MergeJoin, core.NewEngine(), true},
		{"Hybrid - HIQUE (team)", plan.HybridJoin, core.NewEngine(), true},
	}
	rows := make([][]string, len(all))
	for i, s := range all {
		rows[i] = []string{s.name}
	}

	for _, k := range tableCounts {
		cat := catalog.New()
		cat.Register(tupleTable("big", "b", bigN, distinct))
		query := "SELECT bf1 FROM big"
		where := ""
		for j := 1; j < k; j++ {
			prefix := fmt.Sprintf("s%d", j)
			cat.Register(tupleTable(fmt.Sprintf("small%d", j), prefix, smallN, distinct))
			query += fmt.Sprintf(", small%d", j)
			if j == 1 {
				where = " WHERE big.bkey = small1.s1key"
			} else {
				where += fmt.Sprintf(" AND small%d.s%dkey = small%d.s%dkey", j-1, j-1, j, j)
			}
		}
		query += where
		for i, s := range all {
			opts := plan.DefaultOptions()
			alg := s.alg
			opts.ForceJoinAlg = &alg
			opts.EnableJoinTeams = s.teams
			p := mustPlan(cat, query, opts)
			rows[i] = append(rows[i], fmt.Sprintf("%.3f", runTimed(s.eng, p, 2)))
		}
	}
	res.Rows = rows
	res.Notes = []string{"Join teams fuse all inputs into one deeply nested loop; binary plans materialise each intermediate (paper Fig. 7b)."}
	return res
}

// Fig7c reproduces the join-selectivity experiment: two equal tables with
// the matches-per-outer-tuple swept 1..1000.
func Fig7c(scale float64) Result {
	n := max(int(1000000*scale), 2000)
	matches := []int{1, 10, 100, 1000}

	res := Result{
		ID:     "Fig7c",
		Title:  fmt.Sprintf("Join predicate selectivity: two %d-tuple tables, matches/outer swept (seconds)", n),
		Header: []string{"Series"},
	}
	for _, m := range matches {
		res.Header = append(res.Header, fmt.Sprintf("matches=%d", m))
	}

	type series struct {
		name string
		alg  plan.JoinAlgorithm
		eng  planEngine
	}
	all := []series{
		{"Merge - Iterators", plan.MergeJoin, volcano.NewOptimized()},
		{"Hybrid - Iterators", plan.HybridJoin, volcano.NewOptimized()},
		{"Merge - HIQUE", plan.MergeJoin, core.NewEngine()},
		{"Hybrid - HIQUE", plan.HybridJoin, core.NewEngine()},
	}
	rows := make([][]string, len(all))
	for i, s := range all {
		rows[i] = []string{s.name}
	}

	for _, m := range matches {
		distinct := max(n/m, 1)
		cat := catalog.New()
		cat.Register(tupleTable("jouter", "o", n, distinct))
		cat.Register(tupleTable("jinner", "i", n, distinct))
		q := "SELECT of1, if1 FROM jouter, jinner WHERE jouter.okey = jinner.ikey"
		for i, s := range all {
			opts := plan.DefaultOptions()
			alg := s.alg
			opts.ForceJoinAlg = &alg
			p := mustPlan(cat, q, opts)
			rows[i] = append(rows[i], fmt.Sprintf("%.3f", runTimed(s.eng, p, 1)))
		}
	}
	res.Rows = rows
	res.Notes = []string{"Output cardinality is n x matches: the gap between iterators and HIQUE widens with selectivity (paper Fig. 7c)."}
	return res
}

// Fig7d reproduces the grouping-cardinality experiment: 1M tuples, two
// SUMs, group count swept 10..100k, sort/hybrid/map aggregation on
// iterators vs HIQUE.
func Fig7d(scale float64) Result {
	n := max(int(1000000*scale), 2000)
	groupCounts := []int{10, 100, 1000, 10000, 100000}

	res := Result{
		ID:     "Fig7d",
		Title:  fmt.Sprintf("Grouping-attribute cardinality: %d tuples, 2 SUMs (seconds)", n),
		Header: []string{"Series"},
	}
	for _, g := range groupCounts {
		res.Header = append(res.Header, fmt.Sprintf("groups=%d", g))
	}

	type series struct {
		name string
		alg  plan.AggAlgorithm
		eng  planEngine
	}
	all := []series{
		{"Sort - Iterators", plan.SortAggregation, volcano.NewOptimized()},
		{"Hybrid - Iterators", plan.HybridAggregation, volcano.NewOptimized()},
		{"Map - Iterators", plan.MapAggregation, volcano.NewOptimized()},
		{"Sort - HIQUE", plan.SortAggregation, core.NewEngine()},
		{"Hybrid - HIQUE", plan.HybridAggregation, core.NewEngine()},
		{"Map - HIQUE", plan.MapAggregation, core.NewEngine()},
	}
	rows := make([][]string, len(all))
	for i, s := range all {
		rows[i] = []string{s.name}
	}

	for _, g := range groupCounts {
		groups := g
		if groups > n {
			groups = n
		}
		cat := catalog.New()
		cat.Register(tupleTable("aggt", "a", n, groups))
		q := "SELECT akey, SUM(af1) AS s1, SUM(af2) AS s2 FROM aggt GROUP BY akey"
		for i, s := range all {
			opts := plan.DefaultOptions()
			alg := s.alg
			opts.ForceAggAlg = &alg
			p := mustPlan(cat, q, opts)
			rows[i] = append(rows[i], fmt.Sprintf("%.3f", runTimed(s.eng, p, 2)))
		}
	}
	res.Rows = rows
	res.Notes = []string{
		"Map aggregation uses per-attribute value directories (Fig. 4); sort/hybrid stage the input first.",
		"The paper's crossover: map wins while directories + arrays fit in L2, loses at high group counts (Fig. 7d).",
	}
	return res
}
