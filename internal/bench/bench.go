// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§VI), each producing the same rows/series the
// paper reports. Workload sizes are scaled by a factor so the full
// paper-sized runs (scale 1.0) and CI-sized smoke runs (scale 0.01) share
// one code path.
//
// Response times are wall-clock measurements of the real implementations;
// hardware-event tables (Figures 5 and 6) come from the trace-driven cache
// and prefetcher simulator in internal/hwsim, parameterised with the
// paper's own latency table (see DESIGN.md's substitution notes).
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Result is one rendered table or figure data series.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// timeIt measures the best of reps wall-clock runs of fn.
func timeIt(reps int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

func pct(x, base float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", 100*x/base)
}
