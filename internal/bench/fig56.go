package bench

import (
	"fmt"

	"hique/internal/hardcoded"
	"hique/internal/hwsim"
)

// Fig5 reproduces the join profiling study (Figures 5a–5d): the two §VI-A
// join queries across the five code shapes, reporting both the simulated
// execution-time breakdown and the hardware-event table.
//
// At scale 1 the workloads match the paper: Join Query #1 joins two 10k ×
// 72 B tables with 1 000 matches per outer tuple (inflationary); Join
// Query #2 joins two 1M × 72 B tables with 10 matches per outer tuple
// using the hybrid hash-sort-merge join.
func Fig5(scale float64) []Result {
	var out []Result

	// Join Query #1: merge join, 10k x 10k, 1000 matches/outer.
	n1 := max(int(10000*scale), 100)
	d1 := max(n1/1000, 2)
	outer1 := hardcoded.BuildJoinInput("outer", n1, d1)
	inner1 := hardcoded.BuildJoinInput("inner", n1, d1)
	bd, hw := profileShapes("fig5-join1",
		func(s hardcoded.Shape, p *hwsim.Probe) { hardcoded.RunMergeJoin(s, outer1, inner1, p) })
	bd.ID, bd.Title = "Fig5a", fmt.Sprintf("Execution time breakdown, Join Query #1 (merge join, %d x %d tuples, %d matches/outer)", n1, n1, n1/d1)
	hw.ID, hw.Title = "Fig5c", "Hardware performance metrics, Join Query #1"
	out = append(out, bd, hw)

	// Join Query #2: hybrid join, 1M x 1M, 10 matches/outer.
	n2 := max(int(1000000*scale), 1000)
	d2 := max(n2/10, 2)
	outer2 := hardcoded.BuildJoinInput("outer", n2, d2)
	inner2 := hardcoded.BuildJoinInput("inner", n2, d2)
	parts := partitionsFor(n2)
	bd2, hw2 := profileShapes("fig5-join2",
		func(s hardcoded.Shape, p *hwsim.Probe) { hardcoded.RunHybridJoin(s, outer2, inner2, parts, p) })
	bd2.ID, bd2.Title = "Fig5b", fmt.Sprintf("Execution time breakdown, Join Query #2 (hybrid join, %d x %d tuples, 10 matches/outer)", n2, n2)
	hw2.ID, hw2.Title = "Fig5d", "Hardware performance metrics, Join Query #2"
	out = append(out, bd2, hw2)
	return out
}

// Fig6 reproduces the aggregation profiling study (Figures 6a–6d): hybrid
// hash-sort aggregation with 100k groups and map aggregation with 10
// groups, over 1M × 72 B tuples, two SUMs each.
func Fig6(scale float64) []Result {
	var out []Result

	n := max(int(1000000*scale), 1000)
	g1 := max(int(100000*scale), 100)
	input1 := hardcoded.BuildAggInput(n, g1)
	parts := partitionsFor(n)
	bd, hw := profileShapes("fig6-agg1",
		func(s hardcoded.Shape, p *hwsim.Probe) { hardcoded.RunHybridAgg(s, input1, parts, p) })
	bd.ID, bd.Title = "Fig6a", fmt.Sprintf("Execution time breakdown, Aggregation Query #1 (hybrid hash-sort, %d tuples, %d groups, 2 SUMs)", n, g1)
	hw.ID, hw.Title = "Fig6c", "Hardware performance metrics, Aggregation Query #1"
	out = append(out, bd, hw)

	input2 := hardcoded.BuildAggInput(n, 10)
	bd2, hw2 := profileShapes("fig6-agg2",
		func(s hardcoded.Shape, p *hwsim.Probe) { hardcoded.RunMapAgg(s, input2, 10, p) })
	bd2.ID, bd2.Title = "Fig6b", fmt.Sprintf("Execution time breakdown, Aggregation Query #2 (map aggregation, %d tuples, 10 groups, 2 SUMs)", n)
	hw2.ID, hw2.Title = "Fig6d", "Hardware performance metrics, Aggregation Query #2"
	out = append(out, bd2, hw2)
	return out
}

// profileShapes runs a workload under every code shape, once instrumented
// (for simulated counters) and several times raw (for wall-clock time).
func profileShapes(name string, run func(hardcoded.Shape, *hwsim.Probe)) (breakdown, metrics Result) {
	machine := hwsim.Core2Duo6300()

	breakdown.Header = []string{"Implementation", "Measured (s)", "Sim total (s)", "Instr exec (s)", "Resource stalls (s)", "L2 miss (s)", "D1 miss (s)"}
	metrics.Header = []string{"Implementation", "CPI", "Retired instr (%)", "Function calls (%)", "D1 accesses (%)", "D1 prefetch eff (%)", "L2 prefetch eff (%)"}

	var baseInstr, baseCalls, baseAccesses float64
	for _, shape := range hardcoded.Shapes() {
		probe := hwsim.NewProbe(machine)
		run(shape, probe)
		c := &probe.C

		measured := timeIt(3, func() { run(shape, nil) })

		if shape == hardcoded.GenericIterators {
			baseInstr = float64(c.Instructions)
			baseCalls = float64(c.FunctionCalls)
			baseAccesses = float64(c.DataAccesses)
		}
		breakdown.Rows = append(breakdown.Rows, []string{
			shape.String(),
			secs(measured),
			fmt.Sprintf("%.4f", machine.CyclesToSeconds(c.TotalCycles())),
			fmt.Sprintf("%.4f", machine.CyclesToSeconds(c.InstrCycles)),
			fmt.Sprintf("%.4f", machine.CyclesToSeconds(c.ResourceCycles)),
			fmt.Sprintf("%.4f", machine.CyclesToSeconds(c.L2StallCycles)),
			fmt.Sprintf("%.4f", machine.CyclesToSeconds(c.D1StallCycles)),
		})
		metrics.Rows = append(metrics.Rows, []string{
			shape.String(),
			fmt.Sprintf("%.3f", c.CPI()),
			pct(float64(c.Instructions), baseInstr),
			pct(float64(c.FunctionCalls), baseCalls),
			pct(float64(c.DataAccesses), baseAccesses),
			fmt.Sprintf("%.2f", 100*c.D1PrefetchEfficiency()),
			fmt.Sprintf("%.2f", 100*c.L2PrefetchEfficiency()),
		})
	}
	breakdown.Notes = []string{
		"Sim columns: trace-driven cache model with Core 2 Duo 6300 latencies (Table I).",
		"Measured column: wall-clock Go execution of each code shape (best of 3).",
	}
	metrics.Notes = []string{"Percentages normalised to the generic-iterator configuration, as in the paper."}
	return breakdown, metrics
}

// partitionsFor sizes the coarse partition count so the largest partition
// fits in half the L2 cache (§V-B).
func partitionsFor(rows int) int {
	bytes := rows * hardcoded.TupleWidth
	m := 1
	for m*(1<<20) < bytes {
		m <<= 1
	}
	if m < 2 {
		m = 2
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
