package bench

import (
	"strconv"
	"strings"
	"testing"
)

// smoke scale: tiny workloads, every experiment code path.
const testScale = 0.004
const testSF = 0.002

func TestResultFormat(t *testing.T) {
	r := Result{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	out := r.Format()
	for _, want := range []string{"=== X: demo ===", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentsAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs skipped in -short mode")
	}
	for _, id := range Experiments() {
		results := Run(id, testScale, testSF)
		if len(results) == 0 {
			t.Fatalf("experiment %s produced no results", id)
		}
		for _, r := range results {
			if len(r.Rows) == 0 {
				t.Errorf("%s/%s has no rows", id, r.ID)
			}
			for _, row := range r.Rows {
				if len(row) != len(r.Header) {
					t.Errorf("%s/%s row width %d != header %d", id, r.ID, len(row), len(r.Header))
				}
			}
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if Run("nope", 1, 1) != nil {
		t.Error("unknown experiment should return nil")
	}
}

// TestFig5ShapeOrdering asserts the paper's §VI-A headline: the HIQUE
// shape's simulated cycle total is below the generic iterator shape's.
func TestFig5ShapeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	results := Fig5(0.02)
	breakdown := results[0] // Fig5a
	first := parseCell(t, breakdown.Rows[0][2])
	last := parseCell(t, breakdown.Rows[len(breakdown.Rows)-1][2])
	if last >= first {
		t.Errorf("HIQUE simulated time %.4f not below generic iterators %.4f", last, first)
	}
}

// TestFig8HiqueWinsQ1 asserts the paper's headline TPC-H result: HIQUE
// beats the iterator engines on Query 1 by a large factor.
func TestFig8HiqueWinsQ1(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	r := Fig8(0.01)
	generic := parseCell(t, r.Rows[0][1])
	hique := parseCell(t, r.Rows[3][1])
	if hique >= generic {
		t.Errorf("HIQUE Q1 (%.3fs) not faster than generic iterators (%.3fs)", hique, generic)
	}
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number", s)
	}
	return v
}
