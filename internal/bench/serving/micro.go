// Package serving holds the machine-readable serving micro-benchmarks
// behind cmd/hique-bench -json. It lives apart from internal/bench
// because it drives the public hique API (which internal/bench must not
// import: the root package's benchmark file imports internal/bench).
// The one internal import, codegen.SetFusion, pins the fused-vs-general
// comparison to the exact same cached plan.
package serving

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"hique"
	"hique/internal/codegen"
)

// MicroResult is one machine-readable serving micro-benchmark row: the
// schema of the BENCH_*.json files cmd/hique-bench -json writes so the
// serving-path perf trajectory (latency and allocation behaviour) can be
// compared across revisions.
type MicroResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func microResult(name string, r testing.BenchmarkResult) MicroResult {
	return MicroResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// Micro runs the serving micro-benchmarks — the workloads of
// BenchmarkPointQueryShapeCache and BenchmarkServingColdVsWarm, driven
// through testing.Benchmark so they run outside `go test` — and returns
// their measurements.
func Micro() []MicroResult {
	const pointRows = 4096

	pointDB := func(options ...hique.Option) *hique.DB {
		db := hique.Open(options...)
		must(db.CreateTable("bench_points", hique.Int("id"), hique.Float("v")))
		for i := 0; i < pointRows; i++ {
			must(db.Insert("bench_points", int64(i), float64(i)*0.5))
		}
		return db
	}
	servingDB := func(options ...hique.Option) *hique.DB {
		db := hique.Open(options...)
		must(db.CreateTable("bench_items", hique.Int("id"), hique.Int("grp"), hique.Float("price")))
		must(db.CreateTable("bench_dims", hique.Int("id"), hique.Char("label", 16)))
		for i := 0; i < 200; i++ {
			must(db.Insert("bench_items", int64(i), int64(i%16), float64(i%1000)))
		}
		for i := 0; i < 16; i++ {
			must(db.Insert("bench_dims", int64(i), fmt.Sprintf("dim-%02d", i)))
		}
		return db
	}
	const servingQuery = "SELECT d.label, COUNT(*) AS n, SUM(f.price) AS total " +
		"FROM bench_items f, bench_dims d WHERE f.grp = d.id AND f.price > 10.0 " +
		"GROUP BY d.label ORDER BY d.label"

	var out []MicroResult
	run := func(name string, fn func(b *testing.B)) {
		out = append(out, microResult(name, testing.Benchmark(fn)))
	}

	run("PointQueryShapeCache/auto-param", func(b *testing.B) {
		db := pointDB(hique.WithPlanCache(256))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(fmt.Sprintf("SELECT v FROM bench_points WHERE id = %d", i%pointRows)); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("PointQueryShapeCache/explicit-params", func(b *testing.B) {
		db := pointDB(hique.WithPlanCache(256))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("SELECT v FROM bench_points WHERE id = ?", i%pointRows); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("PointQueryShapeCache/literal-keyed", func(b *testing.B) {
		db := pointDB(hique.WithPlanCache(256), hique.WithAutoParam(false))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(fmt.Sprintf("SELECT v FROM bench_points WHERE id = %d", i%pointRows)); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("ServingColdVsWarm/cold", func(b *testing.B) {
		db := servingDB(hique.WithPlanCache(64))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.Catalog().BumpVersion()
			if _, err := db.Query(servingQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("ServingColdVsWarm/warm", func(b *testing.B) {
		db := servingDB(hique.WithPlanCache(64))
		if _, err := db.Query(servingQuery); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(servingQuery); err != nil {
				b.Fatal(err)
			}
		}
	})

	// JoinAgg: the fused join+aggregation pipeline against the general
	// operator walk on the same plan (codegen.SetFusion toggles it), the
	// analytics serving shape of DESIGN.md §4.5. warm-fused-indexed adds
	// B+-trees on both join keys, which flips the planner to the merge
	// join with the dimension side streamed off the index in key order.
	const joinRows = 4096
	joinDB := func(options ...hique.Option) *hique.DB {
		db := hique.Open(options...)
		must(db.CreateTable("bench_items", hique.Int("id"), hique.Int("grp"), hique.Float("price")))
		must(db.CreateTable("bench_dims", hique.Int("id"), hique.Char("label", 16)))
		for i := 0; i < joinRows; i++ {
			must(db.Insert("bench_items", int64(i), int64(i%16), float64(i%1000)))
		}
		for i := 0; i < 16; i++ {
			must(db.Insert("bench_dims", int64(i), fmt.Sprintf("dim-%02d", i)))
		}
		return db
	}
	const joinAggQuery = "SELECT d.label, COUNT(*) AS n, SUM(f.price) AS total " +
		"FROM bench_items f, bench_dims d WHERE f.grp = d.id AND f.price > 10.0 GROUP BY d.label"
	const joinLimitQuery = "SELECT f.id, d.label FROM bench_items f, bench_dims d " +
		"WHERE f.grp = d.id AND f.price > 900.0 LIMIT 32"
	warmJoin := func(b *testing.B, db *hique.DB, query string) {
		if _, err := db.Query(query); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(query); err != nil {
				b.Fatal(err)
			}
		}
	}
	run("JoinAgg/warm-fused", func(b *testing.B) {
		warmJoin(b, joinDB(hique.WithPlanCache(64)), joinAggQuery)
	})
	run("JoinAgg/warm-general", func(b *testing.B) {
		codegen.SetFusion(false)
		defer codegen.SetFusion(true)
		warmJoin(b, joinDB(hique.WithPlanCache(64)), joinAggQuery)
	})
	run("JoinAgg/warm-merge-indexed", func(b *testing.B) {
		// Both join keys unique and indexed: the planner selects the
		// merge join and the fused pipeline streams both sides off the
		// B+-trees in key order, with no sort at all.
		db := joinDB(hique.WithPlanCache(64))
		must(db.BuildIndex("bench_items", "id"))
		must(db.BuildIndex("bench_dims", "id"))
		warmJoin(b, db, "SELECT f.id, d.label FROM bench_items f, bench_dims d WHERE f.id = d.id AND f.price > 10.0")
	})
	run("JoinAgg/warm-join-limit", func(b *testing.B) {
		warmJoin(b, joinDB(hique.WithPlanCache(64)), joinLimitQuery)
	})
	// The serving-loop spelling: a pooled Result recycled across calls
	// (QueryInto, the HTTP handler's pattern), measuring the warm-hit
	// allocation floor of a fused join + GROUP BY aggregate.
	run("JoinAgg/warm-hit-into", func(b *testing.B) {
		const q = "SELECT d.id, COUNT(*) AS n, SUM(f.price) AS total " +
			"FROM bench_items f, bench_dims d WHERE f.grp = d.id AND f.price > 10.0 GROUP BY d.id LIMIT 4"
		db := joinDB(hique.WithPlanCache(64))
		var res hique.Result
		if err := db.QueryInto(&res, q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.QueryInto(&res, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("JoinAgg/cold", func(b *testing.B) {
		db := joinDB(hique.WithPlanCache(64))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.Catalog().BumpVersion()
			if _, err := db.Query(joinAggQuery); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Ingest: the write path's batching economics. One op = ingestRows
	// rows, either as ingestRows single-row INSERT statements (each pays
	// lock + cache lookup + stats invalidation) or as one multi-VALUES
	// statement (per-statement costs paid once). The batched shape must
	// stay >= 5x faster per row.
	const ingestRows = 1000
	ingestDB := func() *hique.DB {
		db := hique.Open(hique.WithPlanCache(64))
		must(db.CreateTable("bench_ingest", hique.Int("id"), hique.Float("v")))
		return db
	}
	run("Ingest/single-row-statements", func(b *testing.B) {
		db := ingestDB()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < ingestRows; j++ {
				if _, err := db.Exec("INSERT INTO bench_ingest VALUES (?, ?)", j, float64(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	run("Ingest/multi-values-batch", func(b *testing.B) {
		db := ingestDB()
		var sb strings.Builder
		sb.WriteString("INSERT INTO bench_ingest VALUES ")
		for j := 0; j < ingestRows; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %g)", j, float64(j))
		}
		stmt := sb.String()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err := db.Exec(stmt); err != nil || res.RowsAffected != ingestRows {
				b.Fatalf("batch insert: %v / %+v", err, res)
			}
		}
	})
	run("Ingest/prepared-single-row", func(b *testing.B) {
		db := ingestDB()
		ins, err := db.PrepareExec("INSERT INTO bench_ingest VALUES (?, ?)")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < ingestRows; j++ {
				if _, err := ins.Run(j, float64(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	// IngestDurable: the same batched shape with the WAL on, one row per
	// fsync policy — the price of the durability guarantee per 1000
	// acknowledged rows. single-row-fsync-always is the worst case: a
	// serial client pays one physical fsync per statement (group commit
	// only batches concurrent writers).
	durableDB := func(b *testing.B, mode hique.FsyncMode) (*hique.DB, func()) {
		dir, err := os.MkdirTemp("", "hique-bench-wal-")
		if err != nil {
			b.Fatal(err)
		}
		db, err := hique.OpenDurable(dir, hique.WithPlanCache(64), hique.WithFsync(mode),
			hique.WithFsyncInterval(10*time.Millisecond))
		if err != nil {
			os.RemoveAll(dir)
			b.Fatal(err)
		}
		must(db.CreateTable("bench_ingest", hique.Int("id"), hique.Float("v")))
		return db, func() {
			db.Close()
			os.RemoveAll(dir)
		}
	}
	batchStmt := func() string {
		var sb strings.Builder
		sb.WriteString("INSERT INTO bench_ingest VALUES ")
		for j := 0; j < ingestRows; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %g)", j, float64(j))
		}
		return sb.String()
	}
	for _, mode := range []hique.FsyncMode{hique.FsyncAlways, hique.FsyncInterval, hique.FsyncOff} {
		mode := mode
		run("IngestDurable/batch-fsync-"+mode.String(), func(b *testing.B) {
			db, cleanup := durableDB(b, mode)
			defer cleanup()
			stmt := batchStmt()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res, err := db.Exec(stmt); err != nil || res.RowsAffected != ingestRows {
					b.Fatalf("durable batch insert: %v / %+v", err, res)
				}
			}
		})
	}
	run("IngestDurable/single-row-fsync-always", func(b *testing.B) {
		db, cleanup := durableDB(b, hique.FsyncAlways)
		defer cleanup()
		ins, err := db.PrepareExec("INSERT INTO bench_ingest VALUES (?, ?)")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < ingestRows; j++ {
				if _, err := ins.Run(j, float64(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	return out
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
