// The parallel micro-suite behind cmd/hique-bench -json -suite parallel
// (BENCH_parallel.json): the fused join+aggregation and range-scan
// workloads at 1/2/4/8 morsel workers. The fixture is large enough
// (parallelRows well above codegen's serial threshold) that the
// pipelines compile parallel naturally, with no test hooks; the
// workers=1 rows double as the serial baseline the scaling numbers in
// EXPERIMENTS.md are quoted against.
package serving

import (
	"fmt"
	"testing"

	"hique"
	"hique/internal/catalog"
	"hique/internal/storage"
	"hique/internal/types"
)

// parallelRows sizes the fact side: 32 morsels of scan work, so even 8
// workers have claims to balance.
const parallelRows = 262144

// parallelWorkerCounts are the suite's worker targets. On a single-core
// runner every count degrades to ~serial (the pool admits no helpers
// the scheduler could run in parallel); the recorded numbers then show
// the scheduling overhead rather than speedup — see EXPERIMENTS.md.
var parallelWorkerCounts = []int{1, 2, 4, 8}

// parallelCatalog builds the shared fact ⨝ dim fixture once; the DBs at
// each worker count share it (read-only workloads).
func parallelCatalog() *catalog.Catalog {
	cat := catalog.New()
	fact := storage.NewTable("par_fact", types.NewSchema(
		types.Col("id", types.Int), types.Col("grp", types.Int),
		types.Col("price", types.Float)))
	for i := 0; i < parallelRows; i++ {
		fact.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i%16)),
			types.FloatDatum(float64(i%1000)))
	}
	cat.Register(fact)
	dims := storage.NewTable("par_dims", types.NewSchema(
		types.Col("id", types.Int), types.CharCol("label", 16)))
	for i := 0; i < 16; i++ {
		dims.AppendRow(types.IntDatum(int64(i)), types.StringDatum(fmt.Sprintf("dim-%02d", i)))
	}
	cat.Register(dims)
	return cat
}

// Parallel runs the parallel serving micro-benchmarks and returns their
// measurements (same row schema as Micro).
func Parallel() []MicroResult {
	cat := parallelCatalog()
	const joinAggQuery = "SELECT d.label, COUNT(*) AS n, SUM(f.price) AS total " +
		"FROM par_fact f, par_dims d WHERE f.grp = d.id AND f.price > 10.0 GROUP BY d.label"
	const scanQuery = "SELECT id, price FROM par_fact WHERE price > 990.0"

	var out []MicroResult
	run := func(name string, fn func(b *testing.B)) {
		out = append(out, microResult(name, testing.Benchmark(fn)))
	}
	warm := func(b *testing.B, db *hique.DB, query string) {
		var res hique.Result
		if err := db.QueryInto(&res, query); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.QueryInto(&res, query); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, w := range parallelWorkerCounts {
		w := w
		run(fmt.Sprintf("ParallelJoinAgg/workers-%d", w), func(b *testing.B) {
			db := hique.Open(hique.WithCatalog(cat), hique.WithPlanCache(64),
				hique.WithParallelism(w))
			warm(b, db, joinAggQuery)
		})
	}
	for _, w := range parallelWorkerCounts {
		w := w
		run(fmt.Sprintf("ParallelScan/workers-%d", w), func(b *testing.B) {
			db := hique.Open(hique.WithCatalog(cat), hique.WithPlanCache(64),
				hique.WithParallelism(w))
			warm(b, db, scanQuery)
		})
	}
	return out
}
