package bench

// Experiments lists the available experiment IDs in paper order.
func Experiments() []string {
	return []string{"tab1", "fig5", "fig6", "tab2", "fig7a", "fig7b", "fig7c", "fig7d", "fig8", "tab3"}
}

// Run executes one experiment by ID. scale sizes the §VI-A/Fig-7
// microbenchmarks relative to the paper's workloads; sf is the TPC-H scale
// factor.
func Run(id string, scale, sf float64) []Result {
	switch id {
	case "tab1":
		return []Result{Tab1()}
	case "fig5":
		return Fig5(scale)
	case "fig6":
		return Fig6(scale)
	case "tab2":
		return []Result{Tab2(scale)}
	case "fig7a":
		return []Result{Fig7a(scale)}
	case "fig7b":
		return []Result{Fig7b(scale)}
	case "fig7c":
		return []Result{Fig7c(scale / 10)} // output is n x matches: cap size
	case "fig7d":
		return []Result{Fig7d(scale)}
	case "fig8":
		return []Result{Fig8(sf)}
	case "tab3":
		return []Result{Tab3(sf)}
	default:
		return nil
	}
}

// All runs every experiment.
func All(scale, sf float64) []Result {
	var out []Result
	for _, id := range Experiments() {
		out = append(out, Run(id, scale, sf)...)
	}
	return out
}
