package bench

import (
	"fmt"

	"hique/internal/core"
	"hique/internal/dsm"
	"hique/internal/plan"
	"hique/internal/tpch"
	"hique/internal/volcano"
)

// Fig8 reproduces the TPC-H comparison (Figures 8a–8c): every supported
// TPC-H query (tpch.QueryNumbers) across the four engine design points.
// The stand-ins (DESIGN.md):
//
//	PostgreSQL -> generic iterator engine (NSM + interpreted Volcano)
//	System X   -> optimized iterator engine (NSM + specialised iterators)
//	MonetDB    -> DSM column store with operator-at-a-time execution
//	HIQUE      -> the holistic engine
func Fig8(sf float64) Result {
	cat := tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: 42})

	engines := []planEngine{
		volcano.NewGeneric(),
		volcano.NewOptimized(),
		dsm.NewEngine(),
		core.NewEngine(),
	}
	labels := []string{
		"PostgreSQL-class (generic iterators)",
		"System X-class (optimized iterators)",
		"MonetDB-class (DSM column store)",
		"HIQUE (holistic)",
	}

	header := []string{"System"}
	for _, n := range tpch.QueryNumbers() {
		header = append(header, fmt.Sprintf("Q%d", n))
	}
	res := Result{
		ID:     "Fig8",
		Title:  fmt.Sprintf("TPC-H queries at SF %.2f (seconds)", sf),
		Header: header,
	}

	// Warm the DSM engine's vertical decomposition outside timing: a
	// column store keeps base data in DSM natively.
	for _, n := range tpch.QueryNumbers() {
		q, _ := tpch.Query(n)
		p := mustPlan(cat, q, plan.DefaultOptions())
		if _, err := engines[2].Execute(p); err != nil {
			panic(fmt.Sprintf("bench: warmup Q%d: %v", n, err))
		}
	}

	for i, e := range engines {
		row := []string{labels[i]}
		for _, n := range tpch.QueryNumbers() {
			q, _ := tpch.Query(n)
			p := mustPlan(cat, q, plan.DefaultOptions())
			row = append(row, fmt.Sprintf("%.3f", runTimed(e, p, 2)))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = []string{
		"Engine stand-ins per DESIGN.md; absolute times differ from the paper's hardware, shape comparisons hold.",
		"DSM decomposition of base tables is excluded from timing (column stores store DSM natively).",
	}
	return res
}
