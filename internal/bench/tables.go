package bench

import (
	"fmt"
	"time"

	"hique/internal/catalog"
	"hique/internal/codegen"
	"hique/internal/hardcoded"
	"hique/internal/hwsim"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/tpch"
	"hique/internal/volcano"
)

// Tab1 prints the simulated machine's specification (paper Table I).
func Tab1() Result {
	m := hwsim.Core2Duo6300()
	return Result{
		ID:     "TabI",
		Title:  "Simulated platform specification (Intel Core 2 Duo 6300, paper Table I)",
		Header: []string{"Parameter", "Value"},
		Rows: [][]string{
			{"Number of cores", fmt.Sprintf("%d", m.Cores)},
			{"Frequency", fmt.Sprintf("%.2fGHz", float64(m.FrequencyMHz)/1000)},
			{"Cache line size", fmt.Sprintf("%dB", m.CacheLineSize)},
			{"I1-cache", fmt.Sprintf("%dKB (per core)", m.I1Size>>10)},
			{"D1-cache", fmt.Sprintf("%dKB (per core)", m.D1Size>>10)},
			{"L2-cache", fmt.Sprintf("%dMB (shared)", m.L2Size>>20)},
			{"L1-cache miss latency (sequential)", fmt.Sprintf("%d cycles", m.L1MissSeqCycles)},
			{"L1-cache miss latency (random)", fmt.Sprintf("%d cycles", m.L1MissRandCycles)},
			{"L2-cache miss latency (sequential)", fmt.Sprintf("%d cycles", m.L2MissSeqCycles)},
			{"L2-cache miss latency (random)", fmt.Sprintf("%d cycles", m.L2MissRandCycles)},
		},
		Notes: []string{"These constants parameterise the hwsim cache model used by Figures 5 and 6."},
	}
}

// Tab2 reproduces the compiler-optimisation study (paper Table II): the
// four §VI-A queries under unoptimized and optimized code for each code
// class. Go has no post-hoc -O0/-O2 switch, so the axis is reproduced at
// the level the substitution table in DESIGN.md describes: "-O0" runs the
// boxed, per-step-indirection variant of each class, "-O2" the fused
// type-specialised variant. For the holistic row these are exactly the
// codegen OptO0/OptO2 executables of the same generated plan.
func Tab2(scale float64) Result {
	res := Result{
		ID:    "TabII",
		Title: "Effect of code optimisation level (response times in seconds)",
		Header: []string{"Implementation",
			"Join1 -O0", "Join1 -O2",
			"Join2 -O0", "Join2 -O2",
			"Agg1 -O0", "Agg1 -O2",
			"Agg2 -O0", "Agg2 -O2"},
	}

	// The four workloads as SQL over catalogued tables.
	j1n := max(int(10000*scale), 200)
	j2n := max(int(1000000*scale), 2000)
	an := max(int(1000000*scale), 2000)

	type workload struct {
		cat   *catalog.Catalog
		query string
		opts  plan.Options
	}
	mkJoin := func(n, distinct int, alg plan.JoinAlgorithm) workload {
		cat := catalog.New()
		cat.Register(tupleTable("jouter", "o", n, distinct))
		cat.Register(tupleTable("jinner", "i", n, distinct))
		opts := plan.DefaultOptions()
		opts.ForceJoinAlg = &alg
		return workload{cat, "SELECT of1, if1 FROM jouter, jinner WHERE jouter.okey = jinner.ikey", opts}
	}
	mkAgg := func(n, groups int, alg plan.AggAlgorithm) workload {
		cat := catalog.New()
		cat.Register(tupleTable("aggt", "a", n, groups))
		opts := plan.DefaultOptions()
		opts.ForceAggAlg = &alg
		return workload{cat, "SELECT akey, SUM(af1) AS s1, SUM(af2) AS s2 FROM aggt GROUP BY akey", opts}
	}
	workloads := []workload{
		mkJoin(j1n, max(j1n/1000, 2), plan.MergeJoin),
		mkJoin(j2n, max(j2n/10, 2), plan.HybridJoin),
		mkAgg(an, max(int(100000*scale), 100), plan.HybridAggregation),
		mkAgg(an, 10, plan.MapAggregation),
	}

	type rowSpec struct {
		name     string
		o0Engine planEngine
		o2Engine planEngine
	}
	rows := []rowSpec{
		{"Iterators", volcano.NewGeneric(), volcano.NewOptimized()},
		{"Holistic (generated)", codegenRunner{codegen.OptO0}, codegenRunner{codegen.OptO2}},
	}
	for _, r := range rows {
		cells := []string{r.name}
		for _, w := range workloads {
			p := mustPlan(w.cat, w.query, w.opts)
			cells = append(cells, fmt.Sprintf("%.3f", runTimed(r.o0Engine, p, 1)))
			cells = append(cells, fmt.Sprintf("%.3f", runTimed(r.o2Engine, p, 1)))
		}
		res.Rows = append(res.Rows, cells)
	}

	// Hard-coded shapes: generic vs optimized plays the same role.
	outer1 := hardcoded.BuildJoinInput("o", j1n, max(j1n/1000, 2))
	inner1 := hardcoded.BuildJoinInput("i", j1n, max(j1n/1000, 2))
	outer2 := hardcoded.BuildJoinInput("o", j2n, max(j2n/10, 2))
	inner2 := hardcoded.BuildJoinInput("i", j2n, max(j2n/10, 2))
	agg1 := hardcoded.BuildAggInput(an, max(int(100000*scale), 100))
	agg2 := hardcoded.BuildAggInput(an, 10)
	parts := partitionsFor(j2n)
	hcRow := []string{"Hard-coded"}
	for _, pair := range [][2]hardcoded.Shape{
		{hardcoded.GenericHardcoded, hardcoded.OptimizedHardcoded},
	} {
		g, o := pair[0], pair[1]
		hcRow = append(hcRow,
			secs(timeIt(1, func() { hardcoded.RunMergeJoin(g, outer1, inner1, nil) })),
			secs(timeIt(1, func() { hardcoded.RunMergeJoin(o, outer1, inner1, nil) })),
			secs(timeIt(1, func() { hardcoded.RunHybridJoin(g, outer2, inner2, parts, nil) })),
			secs(timeIt(1, func() { hardcoded.RunHybridJoin(o, outer2, inner2, parts, nil) })),
			secs(timeIt(1, func() { hardcoded.RunHybridAgg(g, agg1, parts, nil) })),
			secs(timeIt(1, func() { hardcoded.RunHybridAgg(o, agg1, parts, nil) })),
			secs(timeIt(1, func() { hardcoded.RunMapAgg(g, agg2, 10, nil) })),
			secs(timeIt(1, func() { hardcoded.RunMapAgg(o, agg2, 10, nil) })),
		)
	}
	res.Rows = append(res.Rows, hcRow)
	res.Notes = []string{
		"-O0 = boxed values + per-step indirection; -O2 = fused type-specialised code (DESIGN.md substitution).",
		"Paper shape to verify: optimisation helps most on the inflationary join; least where staging dominates.",
	}
	return res
}

// codegenRunner adapts a codegen optimisation level to the engine surface.
type codegenRunner struct {
	level codegen.OptLevel
}

func (c codegenRunner) Name() string { return "codegen" + c.level.String() }

func (c codegenRunner) Execute(p *plan.Plan) (*storage.Table, error) {
	q, err := codegen.Generate(p, c.level)
	if err != nil {
		return nil, err
	}
	return q.Run()
}

// Tab3 reproduces the query-preparation cost table (paper Table III):
// parse, optimize, generate, and compile times plus generated source sizes
// for the three TPC-H queries.
func Tab3(sf float64) Result {
	cat := tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: 42})
	res := Result{
		ID:    "TabIII",
		Title: "Query preparation cost (TPC-H)",
		Header: []string{"Query", "Parse (ms)", "Optimize (ms)", "Generate (ms)",
			"Compile -O0 (ms)", "Compile -O2 (ms)", "Source (bytes)"},
	}
	for _, n := range tpch.QueryNumbers() {
		q, _ := tpch.Query(n)

		parseT := timeIt(5, func() {
			if _, err := sql.Parse(q); err != nil {
				panic(err)
			}
		})
		stmt, _ := sql.Parse(q)

		var p *plan.Plan
		optT := timeIt(5, func() {
			var err error
			// Re-parse per run: Build mutates nothing, but use a fresh
			// statement to keep runs independent.
			s2, _ := sql.Parse(q)
			p, err = plan.Build(s2, cat)
			if err != nil {
				panic(err)
			}
		})
		_ = stmt

		var srcBytes int
		genT := timeIt(5, func() {
			srcBytes = len(codegen.EmitSource(p))
		})
		c0 := timeIt(5, func() {
			if _, err := codegen.Generate(p, codegen.OptO0); err != nil {
				panic(err)
			}
		})
		c2 := timeIt(5, func() {
			if _, err := codegen.Generate(p, codegen.OptO2); err != nil {
				panic(err)
			}
		})

		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("#%d", n),
			ms(parseT), ms(optT), ms(genT), ms(c0), ms(c2),
			fmt.Sprintf("%d", srcBytes),
		})
	}
	res.Notes = []string{
		"Compile = source syntax check (go/parser) + executable closure construction (DESIGN.md substitution for gcc + dlopen).",
		"Paper shape: parse/optimize/generate are trivial (<25ms); compilation dominates preparation.",
	}
	return res
}

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()*1000) }
