// Package core implements the paper's primary contribution: the holistic
// query-evaluation algorithms of §V-B. Every algorithm here is the runtime
// body of a code-generation template — data staging (filter + project +
// sort/partition in one interleaved pass), the common nested-loops join
// template specialised into merge, fine-partition, and hybrid hash-sort-
// merge joins (including multi-way join teams), and the three aggregation
// strategies (sort, hybrid hash-sort, and map aggregation over value
// directories).
//
// The functions in this package are "instantiated templates": they are
// built by composing type- and offset-specialised closures at plan time, so
// the per-tuple inner loops contain no interface dispatch, no boxing, and
// no function calls other than the fused closures themselves. This is the
// closure-compilation substitution for the paper's C source generation
// documented in DESIGN.md.
package core

import (
	"bytes"
	"fmt"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/types"
)

// Compare is a specialised tuple comparator over raw tuple bytes.
type Compare func(a, b []byte) int

// MakeKeyCompare builds a comparator over the given columns of a schema.
// Single-column integer keys — the common join case — get a dedicated fast
// path with the offset baked in.
func MakeKeyCompare(schema *types.Schema, keys []int) Compare {
	if len(keys) == 1 {
		c := schema.Column(keys[0])
		off := schema.Offset(keys[0])
		switch c.Kind {
		case types.Int, types.Date:
			return func(a, b []byte) int {
				x, y := types.GetInt(a, off), types.GetInt(b, off)
				switch {
				case x < y:
					return -1
				case x > y:
					return 1
				}
				return 0
			}
		case types.Float:
			return func(a, b []byte) int {
				x, y := types.GetFloat(a, off), types.GetFloat(b, off)
				switch {
				case x < y:
					return -1
				case x > y:
					return 1
				}
				return 0
			}
		case types.String:
			end := off + c.Size
			return func(a, b []byte) int {
				return bytes.Compare(a[off:end], b[off:end])
			}
		}
	}
	cmps := make([]Compare, len(keys))
	for i, k := range keys {
		cmps[i] = MakeKeyCompare(schema, []int{k})
	}
	return func(a, b []byte) int {
		for _, c := range cmps {
			if r := c(a, b); r != 0 {
				return r
			}
		}
		return 0
	}
}

// MakeSortCompare builds a comparator honouring per-key descending flags
// (used by the final ORDER BY operator).
func MakeSortCompare(schema *types.Schema, keys []plan.SortKey) Compare {
	cmps := make([]Compare, len(keys))
	for i, k := range keys {
		base := MakeKeyCompare(schema, []int{k.Col})
		if k.Desc {
			inner := base
			cmps[i] = func(a, b []byte) int { return -inner(a, b) }
		} else {
			cmps[i] = base
		}
	}
	if len(cmps) == 1 {
		return cmps[0]
	}
	return func(a, b []byte) int {
		for _, c := range cmps {
			if r := c(a, b); r != 0 {
				return r
			}
		}
		return 0
	}
}

// CrossCompare compares tuples from two different schemas on their key
// columns (merge-join needs this: the two staged inputs have distinct
// layouts).
func CrossCompare(sa *types.Schema, ka int, sb *types.Schema, kb int) func(a, b []byte) int {
	ca, cb := sa.Column(ka), sb.Column(kb)
	offA, offB := sa.Offset(ka), sb.Offset(kb)
	if ca.Kind != cb.Kind {
		panic(fmt.Sprintf("core.CrossCompare: kind mismatch %v vs %v", ca.Kind, cb.Kind))
	}
	switch ca.Kind {
	case types.Int, types.Date:
		return func(a, b []byte) int {
			x, y := types.GetInt(a, offA), types.GetInt(b, offB)
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
	case types.Float:
		return func(a, b []byte) int {
			x, y := types.GetFloat(a, offA), types.GetFloat(b, offB)
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
	case types.String:
		size := ca.Size
		if cb.Size < size {
			size = cb.Size
		}
		endA, endB := offA+size, offB+size
		return func(a, b []byte) int {
			return bytes.Compare(a[offA:endA], b[offB:endB])
		}
	}
	panic("core.CrossCompare: bad kind")
}

// MakeFilter compiles a conjunction of constant predicates into a single
// specialised closure. The generated code evaluates primitive comparisons
// with the offsets and constants baked in — the Listing 1 pattern.
func MakeFilter(schema *types.Schema, filters []plan.Filter) func(tuple []byte) bool {
	if len(filters) == 0 {
		return nil
	}
	preds := make([]func([]byte) bool, len(filters))
	for i, f := range filters {
		preds[i] = makePredicate(schema, f)
	}
	if len(preds) == 1 {
		return preds[0]
	}
	return func(t []byte) bool {
		for _, p := range preds {
			if !p(t) {
				return false
			}
		}
		return true
	}
}

func makePredicate(schema *types.Schema, f plan.Filter) func(tuple []byte) bool {
	if slot, ok := f.Slot(); ok {
		panic(fmt.Sprintf("core: filter reads unbound parameter $%d (bind the plan before execution)", slot))
	}
	c := schema.Column(f.Col)
	off := schema.Offset(f.Col)
	switch c.Kind {
	case types.Int, types.Date:
		v := f.Val.I
		switch f.Op {
		case sql.CmpEq:
			return func(t []byte) bool { return types.GetInt(t, off) == v }
		case sql.CmpNe:
			return func(t []byte) bool { return types.GetInt(t, off) != v }
		case sql.CmpLt:
			return func(t []byte) bool { return types.GetInt(t, off) < v }
		case sql.CmpLe:
			return func(t []byte) bool { return types.GetInt(t, off) <= v }
		case sql.CmpGt:
			return func(t []byte) bool { return types.GetInt(t, off) > v }
		case sql.CmpGe:
			return func(t []byte) bool { return types.GetInt(t, off) >= v }
		}
	case types.Float:
		v := f.Val.F
		switch f.Op {
		case sql.CmpEq:
			return func(t []byte) bool { return types.GetFloat(t, off) == v }
		case sql.CmpNe:
			return func(t []byte) bool { return types.GetFloat(t, off) != v }
		case sql.CmpLt:
			return func(t []byte) bool { return types.GetFloat(t, off) < v }
		case sql.CmpLe:
			return func(t []byte) bool { return types.GetFloat(t, off) <= v }
		case sql.CmpGt:
			return func(t []byte) bool { return types.GetFloat(t, off) > v }
		case sql.CmpGe:
			return func(t []byte) bool { return types.GetFloat(t, off) >= v }
		}
	case types.String:
		end := off + c.Size
		if len(f.Val.S) > c.Size {
			// A stored field can never equal a value wider than the
			// column, and for ordering the field sorts strictly below any
			// oversized value sharing its prefix (the field is a proper
			// prefix). Fold that into the three-way result instead of
			// truncating the comparand — truncation made 'zzzzz' equal a
			// stored 'zzzz'.
			v := []byte(f.Val.S[:c.Size])
			cmp := func(t []byte) int {
				if c := bytes.Compare(t[off:end], v); c != 0 {
					return c
				}
				return -1
			}
			op := f.Op
			return func(t []byte) bool { return op.Holds(cmp(t)) }
		}
		v := make([]byte, c.Size)
		copy(v, f.Val.S)
		switch f.Op {
		case sql.CmpEq:
			return func(t []byte) bool { return bytes.Equal(t[off:end], v) }
		case sql.CmpNe:
			return func(t []byte) bool { return !bytes.Equal(t[off:end], v) }
		case sql.CmpLt:
			return func(t []byte) bool { return bytes.Compare(t[off:end], v) < 0 }
		case sql.CmpLe:
			return func(t []byte) bool { return bytes.Compare(t[off:end], v) <= 0 }
		case sql.CmpGt:
			return func(t []byte) bool { return bytes.Compare(t[off:end], v) > 0 }
		case sql.CmpGe:
			return func(t []byte) bool { return bytes.Compare(t[off:end], v) >= 0 }
		}
	}
	panic(fmt.Sprintf("core.makePredicate: unsupported %v %v", c.Kind, f.Op))
}

// MakeProjector compiles a staged-column list into a closure that fills an
// output tuple from an input tuple: direct copies become offset-to-offset
// copies, computed columns become fused arithmetic.
func MakeProjector(in *types.Schema, cols []plan.OutputColumn, out *types.Schema) func(src, dst []byte) {
	type copySpec struct{ srcOff, dstOff, size int }
	var copies []copySpec
	type computeSpec struct {
		eval   func(src []byte) // writes into dst via captured closure
		dstOff int
	}
	steps := make([]func(src, dst []byte), 0, len(cols))

	for i, c := range cols {
		dstOff := out.Offset(i)
		if c.Source >= 0 && c.Compute == nil {
			copies = append(copies, copySpec{in.Offset(c.Source), dstOff, c.Size})
			continue
		}
		expr := c.Compute
		switch expr.Kind() {
		case types.Int, types.Date:
			eval := CompileIntExpr(expr, in)
			off := dstOff
			steps = append(steps, func(src, dst []byte) {
				types.PutInt(dst, off, eval(src))
			})
		case types.Float:
			eval := CompileFloatExpr(expr, in)
			off := dstOff
			steps = append(steps, func(src, dst []byte) {
				types.PutFloat(dst, off, eval(src))
			})
		default:
			panic(fmt.Sprintf("core.MakeProjector: unsupported computed kind %v", expr.Kind()))
		}
	}

	// Coalesce adjacent copies into single memmoves (the generated code
	// copies whole field runs where offsets line up).
	merged := make([]copySpec, 0, len(copies))
	for _, c := range copies {
		if n := len(merged); n > 0 {
			last := &merged[n-1]
			if last.srcOff+last.size == c.srcOff && last.dstOff+last.size == c.dstOff {
				last.size += c.size
				continue
			}
		}
		merged = append(merged, c)
	}

	return func(src, dst []byte) {
		for _, c := range merged {
			copy(dst[c.dstOff:c.dstOff+c.size], src[c.srcOff:c.srcOff+c.size])
		}
		for _, s := range steps {
			s(src, dst)
		}
	}
}

// CompileFloatExpr fuses a float-valued expression tree into a single
// closure over raw tuple bytes with offsets and constants baked in — the
// closure-compilation analogue of the arithmetic the generated C inlines.
func CompileFloatExpr(e plan.Expr, schema *types.Schema) func(t []byte) float64 {
	switch v := e.(type) {
	case *plan.ColExpr:
		off := schema.Offset(v.Col)
		if v.K == types.Float {
			return func(t []byte) float64 { return types.GetFloat(t, off) }
		}
		return func(t []byte) float64 { return float64(types.GetInt(t, off)) }
	case *plan.ConstExpr:
		c := v.D.F
		if v.D.Kind != types.Float {
			c = float64(v.D.I)
		}
		return func([]byte) float64 { return c }
	case *plan.ArithExpr:
		l := CompileFloatExpr(v.L, schema)
		r := CompileFloatExpr(v.R, schema)
		switch v.Op {
		case sql.OpAdd:
			return func(t []byte) float64 { return l(t) + r(t) }
		case sql.OpSub:
			return func(t []byte) float64 { return l(t) - r(t) }
		case sql.OpMul:
			return func(t []byte) float64 { return l(t) * r(t) }
		case sql.OpDiv:
			return func(t []byte) float64 { return l(t) / r(t) }
		}
	}
	panic(fmt.Sprintf("core.CompileFloatExpr: bad node %T", e))
}

// CompileIntExpr is the integer analogue of CompileFloatExpr.
func CompileIntExpr(e plan.Expr, schema *types.Schema) func(t []byte) int64 {
	switch v := e.(type) {
	case *plan.ColExpr:
		off := schema.Offset(v.Col)
		return func(t []byte) int64 { return types.GetInt(t, off) }
	case *plan.ConstExpr:
		c := v.D.I
		return func([]byte) int64 { return c }
	case *plan.ArithExpr:
		l := CompileIntExpr(v.L, schema)
		r := CompileIntExpr(v.R, schema)
		switch v.Op {
		case sql.OpAdd:
			return func(t []byte) int64 { return l(t) + r(t) }
		case sql.OpSub:
			return func(t []byte) int64 { return l(t) - r(t) }
		case sql.OpMul:
			return func(t []byte) int64 { return l(t) * r(t) }
		case sql.OpDiv:
			return func(t []byte) int64 { return l(t) / r(t) }
		}
	}
	panic(fmt.Sprintf("core.CompileIntExpr: bad node %T", e))
}
