package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hique/internal/catalog"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// buildCatalog creates deterministic test tables:
//
//	orders(o_id INT, cust INT, total FLOAT, flag CHAR(2))   n rows
//	cust(c_id INT, region INT)                              m rows
func buildCatalog(nOrders, nCust int) *catalog.Catalog {
	cat := catalog.New()
	rng := rand.New(rand.NewSource(42))

	orders := storage.NewTable("orders", types.NewSchema(
		types.Col("o_id", types.Int), types.Col("cust", types.Int),
		types.Col("total", types.Float), types.CharCol("flag", 2)))
	flags := []string{"A", "B", "C"}
	for i := 0; i < nOrders; i++ {
		orders.AppendRow(
			types.IntDatum(int64(i)),
			types.IntDatum(int64(rng.Intn(nCust))),
			types.FloatDatum(float64(rng.Intn(1000))/10),
			types.StringDatum(flags[rng.Intn(len(flags))]))
	}
	cat.Register(orders)

	cust := storage.NewTable("cust", types.NewSchema(
		types.Col("c_id", types.Int), types.Col("region", types.Int)))
	for i := 0; i < nCust; i++ {
		cust.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i%7)))
	}
	cat.Register(cust)
	return cat
}

func exec(t *testing.T, cat *catalog.Catalog, q string, opts *plan.Options) *storage.Table {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	o := plan.DefaultOptions()
	if opts != nil {
		o = *opts
	}
	p, err := plan.BuildWithOptions(stmt, cat, o)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	out, err := NewEngine().Execute(p)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return out
}

// refJoinCount computes the expected join cardinality by brute force.
func refJoinCount(cat *catalog.Catalog, leftKeyCol, rightKeyCol int) int {
	ordersE, _ := cat.Lookup("orders")
	custE, _ := cat.Lookup("cust")
	counts := map[int64]int{}
	s := custE.Table.Schema()
	custE.Table.Scan(func(tp []byte) bool {
		counts[types.GetInt(tp, s.Offset(rightKeyCol))]++
		return true
	})
	so := ordersE.Table.Schema()
	total := 0
	ordersE.Table.Scan(func(tp []byte) bool {
		total += counts[types.GetInt(tp, so.Offset(leftKeyCol))]
		return true
	})
	return total
}

func TestSimpleFilterProjection(t *testing.T) {
	cat := buildCatalog(1000, 50)
	out := exec(t, cat, "SELECT o_id, total FROM orders WHERE flag = 'A'", nil)
	// Verify against a direct scan.
	e, _ := cat.Lookup("orders")
	s := e.Table.Schema()
	want := 0
	e.Table.Scan(func(tp []byte) bool {
		if types.GetString(tp, s.Offset(3), 2) == "A" {
			want++
		}
		return true
	})
	if out.NumRows() != want {
		t.Fatalf("rows = %d, want %d", out.NumRows(), want)
	}
	if out.Schema().NumColumns() != 2 {
		t.Errorf("columns = %d", out.Schema().NumColumns())
	}
}

func TestComputedColumn(t *testing.T) {
	cat := buildCatalog(100, 10)
	out := exec(t, cat, "SELECT o_id, total * 2 AS dbl FROM orders", nil)
	e, _ := cat.Lookup("orders")
	s := e.Table.Schema()
	i := 0
	var fail bool
	e.Table.Scan(func(tp []byte) bool {
		want := types.GetFloat(tp, s.Offset(2)) * 2
		got := types.GetFloat(out.Tuple(i), out.Schema().Offset(1))
		if got != want {
			fail = true
			return false
		}
		i++
		return true
	})
	if fail {
		t.Fatalf("computed column mismatch at row %d", i)
	}
}

func TestJoinAlgorithmsAgree(t *testing.T) {
	cat := buildCatalog(2000, 100)
	want := refJoinCount(cat, 1, 0)
	for _, alg := range []plan.JoinAlgorithm{plan.MergeJoin, plan.FinePartitionJoin, plan.HybridJoin} {
		opts := plan.DefaultOptions()
		opts.ForceJoinAlg = &alg
		out := exec(t, cat, "SELECT o_id, region FROM orders, cust WHERE orders.cust = cust.c_id", &opts)
		if out.NumRows() != want {
			t.Errorf("%v join: rows = %d, want %d", alg, out.NumRows(), want)
		}
	}
}

func TestJoinProducesCorrectPairs(t *testing.T) {
	cat := buildCatalog(500, 20)
	out := exec(t, cat, "SELECT cust, region FROM orders, cust WHERE orders.cust = cust.c_id", nil)
	s := out.Schema()
	out.Scan(func(tp []byte) bool {
		custID := types.GetInt(tp, s.Offset(0))
		region := types.GetInt(tp, s.Offset(1))
		if region != custID%7 {
			t.Fatalf("bad pair: cust %d with region %d", custID, region)
		}
		return true
	})
}

func TestJoinTeamThreeWay(t *testing.T) {
	cat := catalog.New()
	mk := func(name string, rows int, dup int) {
		tbl := storage.NewTable(name, types.NewSchema(
			types.Col(name+"_k", types.Int), types.Col(name+"_v", types.Int)))
		for i := 0; i < rows; i++ {
			tbl.AppendRow(types.IntDatum(int64(i/dup)), types.IntDatum(int64(i)))
		}
		cat.Register(tbl)
	}
	mk("ta", 300, 3) // keys 0..99, 3 dups each
	mk("tb", 200, 2) // keys 0..99, 2 dups each
	mk("tc", 100, 1) // keys 0..99, 1 each
	q := "SELECT ta_v, tb_v, tc_v FROM ta, tb, tc WHERE ta_k = tb_k AND tb_k = tc_k"
	for _, alg := range []plan.JoinAlgorithm{plan.MergeJoin, plan.HybridJoin} {
		opts := plan.DefaultOptions()
		opts.ForceJoinAlg = &alg
		out := exec(t, cat, q, &opts)
		// Each key: 3*2*1 = 6 combinations, 100 keys -> 600 rows.
		if out.NumRows() != 600 {
			t.Errorf("team %v: rows = %d, want 600", alg, out.NumRows())
		}
	}
	// Binary path must agree.
	opts := plan.DefaultOptions()
	opts.EnableJoinTeams = false
	out := exec(t, cat, q, &opts)
	if out.NumRows() != 600 {
		t.Errorf("binary joins: rows = %d, want 600", out.NumRows())
	}
}

func TestAggregationAlgorithmsAgree(t *testing.T) {
	cat := buildCatalog(5000, 100)
	q := "SELECT flag, SUM(total) AS s, COUNT(*) AS n, AVG(total) AS a, MIN(o_id), MAX(o_id) FROM orders GROUP BY flag ORDER BY flag"

	type row struct {
		flag            string
		sum, avg        float64
		n, minID, maxID int64
	}
	var results [][]row
	for _, alg := range []plan.AggAlgorithm{plan.SortAggregation, plan.HybridAggregation, plan.MapAggregation} {
		opts := plan.DefaultOptions()
		opts.ForceAggAlg = &alg
		out := exec(t, cat, q, &opts)
		s := out.Schema()
		var rows []row
		out.Scan(func(tp []byte) bool {
			rows = append(rows, row{
				flag:  types.GetString(tp, s.Offset(0), 2),
				sum:   types.GetFloat(tp, s.Offset(1)),
				n:     types.GetInt(tp, s.Offset(2)),
				avg:   types.GetFloat(tp, s.Offset(3)),
				minID: types.GetInt(tp, s.Offset(4)),
				maxID: types.GetInt(tp, s.Offset(5)),
			})
			return true
		})
		results = append(results, rows)
	}
	if len(results[0]) != 3 {
		t.Fatalf("groups = %d, want 3", len(results[0]))
	}
	for i := 1; i < len(results); i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("algorithm %d: %d groups vs %d", i, len(results[i]), len(results[0]))
		}
		for g := range results[0] {
			a, b := results[0][g], results[i][g]
			if a.flag != b.flag || a.n != b.n || a.minID != b.minID || a.maxID != b.maxID {
				t.Errorf("group %d mismatch: %+v vs %+v", g, a, b)
			}
			if diff := a.sum - b.sum; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("group %d sum: %g vs %g", g, a.sum, b.sum)
			}
			if diff := a.avg - b.avg; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("group %d avg: %g vs %g", g, a.avg, b.avg)
			}
		}
	}
	// Cross-check group counts against a reference map.
	e, _ := cat.Lookup("orders")
	s := e.Table.Schema()
	ref := map[string]int64{}
	e.Table.Scan(func(tp []byte) bool {
		ref[types.GetString(tp, s.Offset(3), 2)]++
		return true
	})
	for _, r := range results[0] {
		if ref[r.flag] != r.n {
			t.Errorf("flag %q: count %d, want %d", r.flag, r.n, ref[r.flag])
		}
	}
}

func TestGroupByTwoColumns(t *testing.T) {
	cat := buildCatalog(3000, 10)
	out := exec(t, cat, "SELECT flag, cust, COUNT(*) AS n FROM orders GROUP BY flag, cust ORDER BY flag, cust", nil)
	// Reference.
	e, _ := cat.Lookup("orders")
	s := e.Table.Schema()
	ref := map[string]int64{}
	e.Table.Scan(func(tp []byte) bool {
		k := fmt.Sprintf("%s|%d", types.GetString(tp, s.Offset(3), 2), types.GetInt(tp, s.Offset(1)))
		ref[k]++
		return true
	})
	if out.NumRows() != len(ref) {
		t.Fatalf("groups = %d, want %d", out.NumRows(), len(ref))
	}
	os := out.Schema()
	prev := ""
	out.Scan(func(tp []byte) bool {
		k := fmt.Sprintf("%s|%d", types.GetString(tp, os.Offset(0), 2), types.GetInt(tp, os.Offset(1)))
		if ref[k] != types.GetInt(tp, os.Offset(2)) {
			t.Fatalf("group %s: count %d, want %d", k, types.GetInt(tp, os.Offset(2)), ref[k])
		}
		if k <= prev {
			t.Fatalf("output not ordered: %q after %q", k, prev)
		}
		prev = k
		return true
	})
}

func TestOrderByDescWithLimit(t *testing.T) {
	cat := buildCatalog(1000, 50)
	out := exec(t, cat, "SELECT o_id, total FROM orders ORDER BY total DESC, o_id LIMIT 10", nil)
	if out.NumRows() != 10 {
		t.Fatalf("rows = %d, want 10", out.NumRows())
	}
	s := out.Schema()
	prevTotal := 1e18
	var prevID int64 = -1
	out.Scan(func(tp []byte) bool {
		total := types.GetFloat(tp, s.Offset(1))
		id := types.GetInt(tp, s.Offset(0))
		if total > prevTotal {
			t.Fatalf("not descending: %g after %g", total, prevTotal)
		}
		if total == prevTotal && id < prevID {
			t.Fatalf("tie not broken by o_id asc")
		}
		prevTotal, prevID = total, id
		return true
	})
}

func TestJoinThenAggregate(t *testing.T) {
	cat := buildCatalog(2000, 50)
	out := exec(t, cat, "SELECT region, COUNT(*) AS n, SUM(total) AS s FROM orders, cust WHERE orders.cust = cust.c_id GROUP BY region ORDER BY region", nil)
	if out.NumRows() != 7 {
		t.Fatalf("groups = %d, want 7", out.NumRows())
	}
	// Totals must sum to overall join size.
	s := out.Schema()
	var total int64
	out.Scan(func(tp []byte) bool {
		total += types.GetInt(tp, s.Offset(1))
		return true
	})
	if want := int64(refJoinCount(cat, 1, 0)); total != want {
		t.Fatalf("sum of group counts = %d, want %d", total, want)
	}
}

func TestSortTuplesMatchesStdSort(t *testing.T) {
	schema := types.NewSchema(types.Col("k", types.Int))
	f := func(keys []int64) bool {
		tbl := storage.NewTable("t", schema)
		for _, k := range keys {
			tbl.AppendRow(types.IntDatum(k))
		}
		tuples := Flatten(tbl)
		SortTuples(tuples, MakeKeyCompare(schema, []int{0}))
		got := make([]int64, len(tuples))
		for i, tp := range tuples {
			got[i] = types.GetInt(tp, 0)
		}
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortTuplesLargeInput(t *testing.T) {
	// Force the run-merge path: > L2/2 bytes of tuples.
	schema := types.NewSchema(types.Col("k", types.Int), types.CharCol("pad", 56))
	tbl := storage.NewTable("t", schema)
	rng := rand.New(rand.NewSource(1))
	const n = 50000 // 64B * 50k = 3.2MB > 1MB run size
	for i := 0; i < n; i++ {
		tbl.AppendRow(types.IntDatum(rng.Int63n(1e9)), types.StringDatum("x"))
	}
	tuples := Flatten(tbl)
	SortTuples(tuples, MakeKeyCompare(schema, []int{0}))
	prev := int64(-1)
	for _, tp := range tuples {
		k := types.GetInt(tp, 0)
		if k < prev {
			t.Fatal("large sort produced unordered output")
		}
		prev = k
	}
}

func TestMergeJoinEqualsNestedLoopsQuick(t *testing.T) {
	schema := types.NewSchema(types.Col("k", types.Int), types.Col("v", types.Int))
	f := func(aKeys, bKeys []uint8) bool {
		if len(aKeys) == 0 || len(bKeys) == 0 {
			return true
		}
		cat := catalog.New()
		ta := storage.NewTable("qa", schema)
		for i, k := range aKeys {
			ta.AppendRow(types.IntDatum(int64(k%16)), types.IntDatum(int64(i)))
		}
		cat.Register(ta)
		tb := storage.NewTable("qb", types.NewSchema(types.Col("k2", types.Int), types.Col("w", types.Int)))
		for i, k := range bKeys {
			tb.AppendRow(types.IntDatum(int64(k%16)), types.IntDatum(int64(i)))
		}
		cat.Register(tb)

		// Reference count by brute force.
		want := 0
		for _, ka := range aKeys {
			for _, kb := range bKeys {
				if ka%16 == kb%16 {
					want++
				}
			}
		}
		stmt, err := sql.Parse("SELECT v, w FROM qa, qb WHERE qa.k = qb.k2")
		if err != nil {
			return false
		}
		for _, alg := range []plan.JoinAlgorithm{plan.MergeJoin, plan.HybridJoin} {
			opts := plan.DefaultOptions()
			opts.ForceJoinAlg = &alg
			p, err := plan.BuildWithOptions(stmt, cat, opts)
			if err != nil {
				return false
			}
			out, err := NewEngine().Execute(p)
			if err != nil || out.NumRows() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMapAggMatchesReferenceQuick(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		cat := catalog.New()
		tbl := storage.NewTable("qt", types.NewSchema(types.Col("g", types.Int), types.Col("x", types.Int)))
		ref := map[int64]int64{}
		for i, v := range vals {
			g := int64(v % 8)
			tbl.AppendRow(types.IntDatum(g), types.IntDatum(int64(i)))
			ref[g] += int64(i)
		}
		cat.Register(tbl)
		stmt, _ := sql.Parse("SELECT g, SUM(x) AS s FROM qt GROUP BY g ORDER BY g")
		alg := plan.MapAggregation
		opts := plan.DefaultOptions()
		opts.ForceAggAlg = &alg
		p, err := plan.BuildWithOptions(stmt, cat, opts)
		if err != nil {
			return false
		}
		out, err := NewEngine().Execute(p)
		if err != nil || out.NumRows() != len(ref) {
			return false
		}
		ok := true
		s := out.Schema()
		out.Scan(func(tp []byte) bool {
			g := types.GetInt(tp, s.Offset(0))
			if ref[g] != types.GetInt(tp, s.Offset(1)) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFilterCompilation(t *testing.T) {
	schema := types.NewSchema(types.Col("i", types.Int), types.Col("f", types.Float), types.CharCol("s", 4))
	mk := func(i int64, fv float64, sv string) []byte {
		return schema.EncodeRow(types.IntDatum(i), types.FloatDatum(fv), types.StringDatum(sv))
	}
	cases := []struct {
		f    plan.Filter
		hit  []byte
		miss []byte
	}{
		{plan.Filter{Col: 0, Op: sql.CmpEq, Val: types.IntDatum(5)}, mk(5, 0, ""), mk(6, 0, "")},
		{plan.Filter{Col: 0, Op: sql.CmpNe, Val: types.IntDatum(5)}, mk(4, 0, ""), mk(5, 0, "")},
		{plan.Filter{Col: 0, Op: sql.CmpLt, Val: types.IntDatum(5)}, mk(4, 0, ""), mk(5, 0, "")},
		{plan.Filter{Col: 0, Op: sql.CmpLe, Val: types.IntDatum(5)}, mk(5, 0, ""), mk(6, 0, "")},
		{plan.Filter{Col: 0, Op: sql.CmpGt, Val: types.IntDatum(5)}, mk(6, 0, ""), mk(5, 0, "")},
		{plan.Filter{Col: 0, Op: sql.CmpGe, Val: types.IntDatum(5)}, mk(5, 0, ""), mk(4, 0, "")},
		{plan.Filter{Col: 1, Op: sql.CmpGt, Val: types.FloatDatum(1.5)}, mk(0, 2.0, ""), mk(0, 1.0, "")},
		{plan.Filter{Col: 2, Op: sql.CmpEq, Val: types.StringDatum("ab")}, mk(0, 0, "ab"), mk(0, 0, "ac")},
		{plan.Filter{Col: 2, Op: sql.CmpLt, Val: types.StringDatum("m")}, mk(0, 0, "a"), mk(0, 0, "z")},
	}
	for i, c := range cases {
		pred := MakeFilter(schema, []plan.Filter{c.f})
		if !pred(c.hit) {
			t.Errorf("case %d: filter rejected matching tuple", i)
		}
		if pred(c.miss) {
			t.Errorf("case %d: filter accepted non-matching tuple", i)
		}
	}
	// Conjunction.
	both := MakeFilter(schema, []plan.Filter{
		{Col: 0, Op: sql.CmpGe, Val: types.IntDatum(3)},
		{Col: 0, Op: sql.CmpLe, Val: types.IntDatum(7)},
	})
	if !both(mk(5, 0, "")) || both(mk(8, 0, "")) || both(mk(2, 0, "")) {
		t.Error("conjunction filter wrong")
	}
}

func TestHashDistribution(t *testing.T) {
	const m = 64
	counts := make([]int, m)
	for i := int64(0); i < 100000; i++ {
		counts[HashInt(i)&(m-1)]++
	}
	for p, c := range counts {
		if c < 800 || c > 2400 {
			t.Errorf("partition %d has %d of 100000 (expected ~1562)", p, c)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	cat := buildCatalog(0, 0)
	out := exec(t, cat, "SELECT o_id FROM orders", nil)
	if out.NumRows() != 0 {
		t.Errorf("empty scan rows = %d", out.NumRows())
	}
	out = exec(t, cat, "SELECT flag, COUNT(*) FROM orders GROUP BY flag", nil)
	if out.NumRows() != 0 {
		t.Errorf("empty aggregation rows = %d", out.NumRows())
	}
}
