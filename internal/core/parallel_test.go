package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"hique/internal/catalog"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

func parallelFixture(n int) *catalog.Catalog {
	cat := catalog.New()
	rng := rand.New(rand.NewSource(3))
	t := storage.NewTable("pt", types.NewSchema(
		types.Col("k", types.Int), types.Col("g", types.Int),
		types.Col("x", types.Float), types.CharCol("s", 4)))
	tags := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		t.AppendRow(types.IntDatum(int64(rng.Intn(n/4+1))), types.IntDatum(int64(i%9)),
			types.FloatDatum(float64(rng.Intn(1000))), types.StringDatum(tags[i%3]))
	}
	cat.Register(t)

	d := storage.NewTable("pd", types.NewSchema(
		types.Col("dk", types.Int), types.Col("dv", types.Int)))
	for i := 0; i < n/4+1; i++ {
		d.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i*3)))
	}
	cat.Register(d)
	return cat
}

func canonicalRows(t *storage.Table, ordered bool) []string {
	s := t.Schema()
	var rows []string
	t.Scan(func(tp []byte) bool {
		var parts []string
		for i := 0; i < s.NumColumns(); i++ {
			d := s.GetDatum(tp, i)
			if d.Kind == types.Float {
				parts = append(parts, fmt.Sprintf("%.5f", d.F))
			} else {
				parts = append(parts, d.String())
			}
		}
		rows = append(rows, strings.Join(parts, "|"))
		return true
	})
	if !ordered {
		sort.Strings(rows)
	}
	return rows
}

// TestParallelMatchesSequential is the correctness contract: the parallel
// engine must return exactly what the sequential holistic engine returns.
func TestParallelMatchesSequential(t *testing.T) {
	cat := parallelFixture(8000)
	queries := []string{
		"SELECT k, dv FROM pt, pd WHERE pt.k = pd.dk",
		"SELECT g, COUNT(*) AS n, SUM(x) AS sx FROM pt GROUP BY g ORDER BY g",
		"SELECT s, COUNT(*) AS n, SUM(x) AS sx, MIN(k), MAX(k) FROM pt GROUP BY s ORDER BY s",
		"SELECT g, AVG(x) AS m, COUNT(*) AS n FROM pt GROUP BY g ORDER BY g",
		"SELECT g, AVG(x) AS m FROM pt GROUP BY g ORDER BY g", // AVG w/o COUNT(*): sequential fallback
		"SELECT dv, SUM(x) AS sx FROM pt, pd WHERE pt.k = pd.dk GROUP BY dv ORDER BY sx DESC LIMIT 7",
	}
	for _, workers := range []int{2, 4, 7} {
		par := NewParallelEngine(workers)
		seq := NewEngine()
		for _, q := range queries {
			for _, force := range []*plan.JoinAlgorithm{nil, algPtr(plan.HybridJoin), algPtr(plan.FinePartitionJoin)} {
				opts := plan.DefaultOptions()
				opts.ForceJoinAlg = force
				stmt, err := sql.Parse(q)
				if err != nil {
					t.Fatal(err)
				}
				p, err := plan.BuildWithOptions(stmt, cat, opts)
				if err != nil {
					t.Fatal(err)
				}
				want, err := seq.Execute(p)
				if err != nil {
					t.Fatalf("sequential %q: %v", q, err)
				}
				got, err := par.Execute(p)
				if err != nil {
					t.Fatalf("parallel(%d) %q: %v", workers, q, err)
				}
				ordered := p.Sort != nil
				a := canonicalRows(want, ordered)
				b := canonicalRows(got, ordered)
				if len(a) != len(b) {
					t.Fatalf("parallel(%d) %q: %d rows vs %d", workers, q, len(b), len(a))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("parallel(%d) %q row %d:\n  seq: %s\n  par: %s", workers, q, i, a[i], b[i])
					}
				}
			}
		}
	}
}

func algPtr(a plan.JoinAlgorithm) *plan.JoinAlgorithm { return &a }

func TestParallelEngineName(t *testing.T) {
	if NewParallelEngine(3).Name() != "HIQUE-parallel(3)" {
		t.Error("name format changed")
	}
	if NewParallelEngine(0).workers <= 0 {
		t.Error("default workers not set")
	}
}

func TestParallelMapAggMergesWeightedAvg(t *testing.T) {
	// Construct skew so per-shard averages differ: correctness requires
	// weighted merging.
	cat := catalog.New()
	tbl := storage.NewTable("sk", types.NewSchema(types.Col("g", types.Int), types.Col("v", types.Float)))
	for i := 0; i < 20000; i++ {
		// First half: group 0 has value 10; second half: value 20.
		v := 10.0
		if i >= 10000 {
			v = 20.0
		}
		tbl.AppendRow(types.IntDatum(int64(i%2)), types.FloatDatum(v))
	}
	cat.Register(tbl)
	stmt, _ := sql.Parse("SELECT g, AVG(v) AS m, COUNT(*) AS n FROM sk GROUP BY g ORDER BY g")
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewParallelEngine(4).Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	s := out.Schema()
	out.Scan(func(tp []byte) bool {
		if got := types.GetFloat(tp, s.Offset(1)); got != 15.0 {
			t.Errorf("avg = %g, want 15", got)
		}
		if got := types.GetInt(tp, s.Offset(2)); got != 10000 {
			t.Errorf("count = %d, want 10000", got)
		}
		return true
	})
}
