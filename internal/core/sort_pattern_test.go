package core

// Regression tests for the introsort: cyclically ascending keys (what
// staged runs of a sequential table look like) used to drive the
// median-of-three quicksort quadratic through rotated runs.

import (
	"testing"
	"time"

	"hique/internal/types"
)

func buildPatternTuples(n, distinct, width int, pattern string) [][]byte {
	arena := make([]byte, n*width)
	out := make([][]byte, n)
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		t := arena[i*width : (i+1)*width]
		var k int64
		switch pattern {
		case "asc":
			k = int64(i % distinct)
		case "desc":
			k = int64(distinct - i%distinct)
		case "const":
			k = 7
		default:
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			k = int64(x % uint64(distinct))
		}
		types.PutInt(t, 0, k)
		out[i] = t
	}
	return out
}

func TestQuicksortCompareCountBounded(t *testing.T) {
	s := types.NewSchema(types.Col("k", types.Int), types.Col("v", types.Int))
	base := MakeKeyCompare(s, []int{0})
	for _, pattern := range []string{"asc", "desc", "const", "rand"} {
		for _, n := range []int{65536, 131072} {
			count := 0
			cmp := func(a, b []byte) int { count++; return base(a, b) }
			tuples := buildPatternTuples(n, 100000, 16, pattern)
			quicksort(tuples, cmp)
			// Sanity: output ordered.
			for i := 1; i < len(tuples); i++ {
				if base(tuples[i-1], tuples[i]) > 0 {
					t.Fatalf("%s n=%d: output unsorted at %d", pattern, n, i)
				}
			}
			// Compare count must stay within a small multiple of
			// n log2 n (17 for these sizes).
			limit := 6 * n * 17
			if count > limit {
				t.Errorf("%s n=%d: %d compares exceeds bound %d (quadratic regression)", pattern, n, count, limit)
			}
		}
	}
}

func TestSortTuplesCyclicPatternFast(t *testing.T) {
	s := types.NewSchema(types.Col("k", types.Int), types.Col("v", types.Int))
	cmp := MakeKeyCompare(s, []int{0})
	tuples := buildPatternTuples(500000, 100000, 16, "asc")
	start := time.Now()
	SortTuples(tuples, cmp)
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cyclic-pattern sort took %v (quadratic regression)", d)
	}
	for i := 1; i < len(tuples); i++ {
		if cmp(tuples[i-1], tuples[i]) > 0 {
			t.Fatal("output unsorted")
		}
	}
}
