package core

import (
	"fmt"
	"math"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// aggAccum holds one group's accumulator state; slices are indexed by
// aggregate position.
type aggAccum struct {
	sumI   []int64
	sumF   []float64
	cnt    []int64
	minI   []int64
	maxI   []int64
	minF   []float64
	maxF   []float64
	tuples int64
}

func newAggAccum(n int) *aggAccum {
	a := &aggAccum{
		sumI: make([]int64, n), sumF: make([]float64, n), cnt: make([]int64, n),
		minI: make([]int64, n), maxI: make([]int64, n),
		minF: make([]float64, n), maxF: make([]float64, n),
	}
	a.reset()
	return a
}

func (a *aggAccum) reset() {
	for i := range a.sumI {
		a.sumI[i], a.sumF[i], a.cnt[i] = 0, 0, 0
		a.minI[i], a.maxI[i] = math.MaxInt64, math.MinInt64
		a.minF[i], a.maxF[i] = math.Inf(1), math.Inf(-1)
	}
	a.tuples = 0
}

// compileUpdates builds the per-tuple accumulator update for each aggregate
// over the staged schema: inlined, type-specialised, no dispatch (the
// paper stresses the importance of call-free aggregation inner loops).
func compileUpdates(a *plan.Agg, schema *types.Schema, acc *aggAccum) func(t []byte) {
	type update func(t []byte)
	var ups []update
	for i := range a.Aggs {
		spec := &a.Aggs[i]
		idx := i
		if spec.Star {
			continue // covered by acc.tuples
		}
		off := schema.Offset(spec.Col)
		isFloat := schema.Column(spec.Col).Kind == types.Float
		switch spec.Func {
		case sql.AggSum:
			if isFloat {
				ups = append(ups, func(t []byte) { acc.sumF[idx] += types.GetFloat(t, off) })
			} else {
				ups = append(ups, func(t []byte) { acc.sumI[idx] += types.GetInt(t, off) })
			}
		case sql.AggAvg:
			if isFloat {
				ups = append(ups, func(t []byte) { acc.sumF[idx] += types.GetFloat(t, off); acc.cnt[idx]++ })
			} else {
				ups = append(ups, func(t []byte) { acc.sumF[idx] += float64(types.GetInt(t, off)); acc.cnt[idx]++ })
			}
		case sql.AggCount:
			ups = append(ups, func(t []byte) { acc.cnt[idx]++ })
		case sql.AggMin:
			if isFloat {
				ups = append(ups, func(t []byte) {
					if v := types.GetFloat(t, off); v < acc.minF[idx] {
						acc.minF[idx] = v
					}
				})
			} else {
				ups = append(ups, func(t []byte) {
					if v := types.GetInt(t, off); v < acc.minI[idx] {
						acc.minI[idx] = v
					}
				})
			}
		case sql.AggMax:
			if isFloat {
				ups = append(ups, func(t []byte) {
					if v := types.GetFloat(t, off); v > acc.maxF[idx] {
						acc.maxF[idx] = v
					}
				})
			} else {
				ups = append(ups, func(t []byte) {
					if v := types.GetInt(t, off); v > acc.maxI[idx] {
						acc.maxI[idx] = v
					}
				})
			}
		}
	}
	switch len(ups) {
	case 0:
		return func(t []byte) { acc.tuples++ }
	case 1:
		u := ups[0]
		return func(t []byte) { acc.tuples++; u(t) }
	case 2:
		u0, u1 := ups[0], ups[1]
		return func(t []byte) { acc.tuples++; u0(t); u1(t) }
	default:
		return func(t []byte) {
			acc.tuples++
			for _, u := range ups {
				u(t)
			}
		}
	}
}

// aggResult writes one aggregate's final value into the output tuple.
func aggResult(spec *plan.AggSpec, idx int, acc *aggAccum, dst []byte, off int, argIsFloat bool) {
	switch spec.Func {
	case sql.AggSum:
		if argIsFloat {
			types.PutFloat(dst, off, acc.sumF[idx])
		} else {
			types.PutInt(dst, off, acc.sumI[idx])
		}
	case sql.AggAvg:
		if acc.cnt[idx] > 0 {
			types.PutFloat(dst, off, acc.sumF[idx]/float64(acc.cnt[idx]))
		} else {
			types.PutFloat(dst, off, 0)
		}
	case sql.AggCount:
		if spec.Star {
			types.PutInt(dst, off, acc.tuples)
		} else {
			types.PutInt(dst, off, acc.cnt[idx])
		}
	case sql.AggMin:
		if argIsFloat {
			types.PutFloat(dst, off, acc.minF[idx])
		} else {
			types.PutInt(dst, off, acc.minI[idx])
		}
	case sql.AggMax:
		if argIsFloat {
			types.PutFloat(dst, off, acc.maxF[idx])
		} else {
			types.PutInt(dst, off, acc.maxI[idx])
		}
	}
}

// groupWriter emits a finished group: group-column values come from a
// representative staged tuple, aggregates from the accumulator.
func makeGroupWriter(a *plan.Agg, staged *types.Schema, out *storage.Table) func(rep []byte, acc *aggAccum) {
	outSchema := a.Schema
	buf := make([]byte, outSchema.TupleSize())
	type groupCopy struct{ srcOff, dstOff, size int }
	var copies []groupCopy
	type aggWrite struct {
		spec    *plan.AggSpec
		idx     int
		dstOff  int
		isFloat bool
	}
	var writes []aggWrite
	for pos, ref := range a.Output {
		dstOff := outSchema.Offset(pos)
		if ref.IsAgg {
			spec := &a.Aggs[ref.Index]
			isFloat := false
			if spec.Col >= 0 {
				isFloat = staged.Column(spec.Col).Kind == types.Float
			}
			writes = append(writes, aggWrite{spec: spec, idx: ref.Index, dstOff: dstOff, isFloat: isFloat})
		} else {
			src := a.GroupCols[ref.Index]
			copies = append(copies, groupCopy{staged.Offset(src), dstOff, staged.Column(src).Size})
		}
	}
	return func(rep []byte, acc *aggAccum) {
		for _, c := range copies {
			copy(buf[c.dstOff:c.dstOff+c.size], rep[c.srcOff:c.srcOff+c.size])
		}
		for _, w := range writes {
			aggResult(w.spec, w.idx, acc, buf, w.dstOff, w.isFloat)
		}
		out.Append(buf)
	}
}

// RunSortedAgg evaluates sort or hybrid aggregation over a staged input
// whose parts are sorted on the grouping attributes: one linear scan per
// part, emitting each group as it closes (§V-B).
func RunSortedAgg(a *plan.Agg, staged *Staged) (*storage.Table, error) {
	out := storage.NewTable("agg", a.Schema)
	acc := newAggAccum(len(a.Aggs))
	update := compileUpdates(a, staged.Schema, acc)
	write := makeGroupWriter(a, staged.Schema, out)
	sameGroup := MakeKeyCompare(staged.Schema, a.GroupCols)

	// open tracks whether a group is in progress; a nil-rep sentinel
	// would misread zero-width tuples (group-less aggregates), whose
	// representative is legitimately empty.
	var rep []byte
	open := false
	for _, part := range staged.Parts {
		part.Scan(func(t []byte) bool {
			if !open {
				rep = append(rep[:0], t...)
				open = true
			} else if sameGroup(rep, t) != 0 {
				write(rep, acc)
				acc.reset()
				rep = append(rep[:0], t...)
			}
			update(t)
			return true
		})
		// Hash partitioning routes whole groups to one partition, so a
		// group never spans parts: close the open group at part end.
		if open {
			write(rep, acc)
			acc.reset()
			open = false
		}
	}
	return out, nil
}

// RunMapAgg evaluates map aggregation: a single pass over the raw input,
// no staging, per-attribute value directories, and the offset formula of
// Figure 4 mapping each grouping-value combination to a slot in flat
// aggregate arrays.
func RunMapAgg(a *plan.Agg, input *storage.Table) (*storage.Table, error) {
	if len(a.Directories) != len(a.GroupCols) {
		return nil, fmt.Errorf("core: map aggregation needs one directory per grouping attribute")
	}
	st := &a.Input
	inSchema := input.Schema()
	filter := MakeFilter(inSchema, st.Filters)
	project := MakeProjector(inSchema, st.Cols, st.Schema)
	staged := st.Schema
	buf := make([]byte, staged.TupleSize())

	// Build typed directories and strides: offset(v1..vn) = sum of
	// directory indexes times the product of later directory sizes.
	nGroups := 1
	lookups := make([]func(t []byte) int, len(a.GroupCols))
	for i, gc := range a.GroupCols {
		dir := a.Directories[i]
		nGroups *= len(dir)
		lookups[i] = makeDirectoryLookup(staged, gc, dir)
	}
	strides := make([]int, len(a.GroupCols))
	s := 1
	for i := len(a.GroupCols) - 1; i >= 0; i-- {
		strides[i] = s
		s *= len(a.Directories[i])
	}

	// One flat array per aggregate function (paper Fig. 4), plus a tuple
	// counter per group that doubles as the presence marker.
	nAggs := len(a.Aggs)
	sumI := make([]int64, nGroups*nAggs)
	sumF := make([]float64, nGroups*nAggs)
	cnt := make([]int64, nGroups*nAggs)
	minI := make([]int64, nGroups*nAggs)
	maxI := make([]int64, nGroups*nAggs)
	minF := make([]float64, nGroups*nAggs)
	maxF := make([]float64, nGroups*nAggs)
	for i := range minI {
		minI[i], maxI[i] = math.MaxInt64, math.MinInt64
		minF[i], maxF[i] = math.Inf(1), math.Inf(-1)
	}
	tuples := make([]int64, nGroups)

	// Compile the per-tuple update over the flat arrays.
	type update func(t []byte, base int)
	var ups []update
	for i := range a.Aggs {
		spec := &a.Aggs[i]
		idx := i
		if spec.Star {
			continue
		}
		off := staged.Offset(spec.Col)
		isFloat := staged.Column(spec.Col).Kind == types.Float
		switch spec.Func {
		case sql.AggSum:
			if isFloat {
				ups = append(ups, func(t []byte, base int) { sumF[base+idx] += types.GetFloat(t, off) })
			} else {
				ups = append(ups, func(t []byte, base int) { sumI[base+idx] += types.GetInt(t, off) })
			}
		case sql.AggAvg:
			if isFloat {
				ups = append(ups, func(t []byte, base int) { sumF[base+idx] += types.GetFloat(t, off); cnt[base+idx]++ })
			} else {
				ups = append(ups, func(t []byte, base int) { sumF[base+idx] += float64(types.GetInt(t, off)); cnt[base+idx]++ })
			}
		case sql.AggCount:
			ups = append(ups, func(t []byte, base int) { cnt[base+idx]++ })
		case sql.AggMin:
			if isFloat {
				ups = append(ups, func(t []byte, base int) {
					if v := types.GetFloat(t, off); v < minF[base+idx] {
						minF[base+idx] = v
					}
				})
			} else {
				ups = append(ups, func(t []byte, base int) {
					if v := types.GetInt(t, off); v < minI[base+idx] {
						minI[base+idx] = v
					}
				})
			}
		case sql.AggMax:
			if isFloat {
				ups = append(ups, func(t []byte, base int) {
					if v := types.GetFloat(t, off); v > maxF[base+idx] {
						maxF[base+idx] = v
					}
				})
			} else {
				ups = append(ups, func(t []byte, base int) {
					if v := types.GetInt(t, off); v > maxI[base+idx] {
						maxI[base+idx] = v
					}
				})
			}
		}
	}

	// The single scan: filter, project (computing aggregate arguments),
	// locate the group slot, update the arrays.
	input.Scan(func(raw []byte) bool {
		if filter != nil && !filter(raw) {
			return true
		}
		project(raw, buf)
		g := 0
		for i, lk := range lookups {
			di := lk(buf)
			if di < 0 {
				return true // value outside directory: stale stats; skip
			}
			g += di * strides[i]
		}
		tuples[g]++
		base := g * nAggs
		for _, u := range ups {
			u(buf, base)
		}
		return true
	})

	// Emit groups in directory order (which is sorted order, a useful
	// interesting order for downstream ORDER BY).
	out := storage.NewTable("agg", a.Schema)
	outBuf := make([]byte, a.Schema.TupleSize())
	idxs := make([]int, len(a.GroupCols))
	for g := 0; g < nGroups; g++ {
		if tuples[g] == 0 {
			continue
		}
		rem := g
		for i := range idxs {
			idxs[i] = rem / strides[i]
			rem %= strides[i]
		}
		base := g * nAggs
		for pos, ref := range a.Output {
			dstOff := a.Schema.Offset(pos)
			if !ref.IsAgg {
				d := a.Directories[ref.Index][idxs[ref.Index]]
				col := a.Schema.Column(pos)
				switch col.Kind {
				case types.Int, types.Date:
					types.PutInt(outBuf, dstOff, d.I)
				case types.Float:
					types.PutFloat(outBuf, dstOff, d.F)
				case types.String:
					types.PutString(outBuf, dstOff, col.Size, d.S)
				}
				continue
			}
			spec := &a.Aggs[ref.Index]
			i := base + ref.Index
			switch spec.Func {
			case sql.AggSum:
				if spec.Col >= 0 && staged.Column(spec.Col).Kind == types.Float {
					types.PutFloat(outBuf, dstOff, sumF[i])
				} else {
					types.PutInt(outBuf, dstOff, sumI[i])
				}
			case sql.AggAvg:
				if cnt[i] > 0 {
					types.PutFloat(outBuf, dstOff, sumF[i]/float64(cnt[i]))
				} else {
					types.PutFloat(outBuf, dstOff, 0)
				}
			case sql.AggCount:
				if spec.Star {
					types.PutInt(outBuf, dstOff, tuples[g])
				} else {
					types.PutInt(outBuf, dstOff, cnt[i])
				}
			case sql.AggMin:
				if spec.Col >= 0 && staged.Column(spec.Col).Kind == types.Float {
					types.PutFloat(outBuf, dstOff, minF[i])
				} else {
					types.PutInt(outBuf, dstOff, minI[i])
				}
			case sql.AggMax:
				if spec.Col >= 0 && staged.Column(spec.Col).Kind == types.Float {
					types.PutFloat(outBuf, dstOff, maxF[i])
				} else {
					types.PutInt(outBuf, dstOff, maxI[i])
				}
			}
		}
		out.Append(outBuf)
	}
	return out, nil
}

// makeDirectoryLookup compiles a binary-search lookup into a sorted value
// directory (the paper's value-partition map, §V-B).
func makeDirectoryLookup(schema *types.Schema, col int, dir []types.Datum) func(t []byte) int {
	c := schema.Column(col)
	off := schema.Offset(col)
	switch c.Kind {
	case types.Int, types.Date:
		vals := make([]int64, len(dir))
		for i, d := range dir {
			vals[i] = d.I
		}
		return func(t []byte) int {
			v := types.GetInt(t, off)
			lo, hi := 0, len(vals)
			for lo < hi {
				mid := (lo + hi) / 2
				if vals[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(vals) && vals[lo] == v {
				return lo
			}
			return -1
		}
	case types.String:
		vals := make([]string, len(dir))
		for i, d := range dir {
			vals[i] = d.S
		}
		size := c.Size
		return func(t []byte) int {
			v := types.GetString(t, off, size)
			lo, hi := 0, len(vals)
			for lo < hi {
				mid := (lo + hi) / 2
				if vals[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(vals) && vals[lo] == v {
				return lo
			}
			return -1
		}
	}
	panic(fmt.Sprintf("core.makeDirectoryLookup: unsupported kind %v", c.Kind))
}
