package core

import (
	"fmt"

	"hique/internal/plan"
	"hique/internal/storage"
	"hique/internal/types"
)

// Staged is the materialised output of a data-staging step: one part for
// unpartitioned stages, M parts for partitioned ones (paper §IV step 1).
type Staged struct {
	Parts  []*storage.Table
	Schema *types.Schema
	// Sorted reports whether every part is ordered on the stage's sort
	// keys.
	Sorted bool
	// Owned reports whether the parts were materialised by this stage
	// (from the page arena) and may be released once the consuming
	// operator has drained them. Identity stages pass their input
	// through instead of copying; those parts belong to someone else.
	Owned bool
}

// Release returns owned parts to the page arena. The consuming operator
// calls it after materialising its own output; pass-through (elided)
// stages and already-released stages are no-ops.
func (s *Staged) Release() {
	if s == nil || !s.Owned {
		return
	}
	s.Owned = false
	for _, p := range s.Parts {
		p.Release()
	}
}

// Rows returns the total staged row count.
func (s *Staged) Rows() int {
	n := 0
	for _, p := range s.Parts {
		n += p.NumRows()
	}
	return n
}

// RunStage executes a staging descriptor: scan the input, apply selections,
// project away unused fields, and interleave the sort or partition
// pre-processing required by the consuming operator — all in one pass over
// the input, exactly as the generated staging function does (Listing 1
// extended with sort/partition steps).
func RunStage(st *plan.Stage, input *storage.Table) (*Staged, error) {
	inSchema := input.Schema()
	filter := MakeFilter(inSchema, st.Filters)
	project := MakeProjector(inSchema, st.Cols, st.Schema)
	width := st.Schema.TupleSize()

	switch st.Action {
	case plan.StageNone, plan.StageSort:
		// Identity elision: a stage that neither filters, partitions,
		// nor re-projects adds only a tuple-by-tuple copy — pass the
		// input through (StageNone) or sort straight off the input's
		// pages (StageSort) instead of materialising it first.
		if st.IsIdentity(inSchema) {
			if st.Action == plan.StageNone {
				return &Staged{Parts: []*storage.Table{input}, Schema: st.Schema}, nil
			}
			cmp := MakeKeyCompare(st.Schema, st.SortKeys)
			tuples := Flatten(input)
			SortTuples(tuples, cmp)
			sorted := storage.NewPooledTable("staged", st.Schema)
			for _, t := range tuples {
				sorted.Append(t)
			}
			return &Staged{Parts: []*storage.Table{sorted}, Schema: st.Schema, Sorted: true, Owned: true}, nil
		}
		out := storage.NewPooledTable("staged", st.Schema)
		input.Scan(func(tuple []byte) bool {
			if filter != nil && !filter(tuple) {
				return true
			}
			project(tuple, out.AppendSlot())
			return true
		})
		staged := &Staged{Parts: []*storage.Table{out}, Schema: st.Schema, Owned: true}
		if st.Action == plan.StageSort {
			cmp := MakeKeyCompare(st.Schema, st.SortKeys)
			staged.Parts[0] = SortTablePooled("staged", out, cmp)
			out.Release()
			staged.Sorted = true
		}
		return staged, nil

	case plan.StagePartitionFine:
		router, parts, err := fineRouter(st)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, width)
		input.Scan(func(tuple []byte) bool {
			if filter != nil && !filter(tuple) {
				return true
			}
			project(tuple, buf)
			if p := router(buf); p >= 0 {
				parts[p].Append(buf)
			}
			return true
		})
		staged := &Staged{Parts: parts, Schema: st.Schema, Owned: true}
		if st.SortPartitions {
			sortParts(staged, st.SortKeys)
		}
		return staged, nil

	case plan.StagePartitionCoarse:
		m := st.Partitions
		if m <= 0 {
			return nil, fmt.Errorf("core: coarse partitioning with %d partitions", m)
		}
		router := coarseRouter(st.Schema, st.PartitionKey, m)
		parts := make([]*storage.Table, m)
		for i := range parts {
			parts[i] = storage.NewPooledTable(fmt.Sprintf("part%d", i), st.Schema)
		}
		buf := make([]byte, width)
		input.Scan(func(tuple []byte) bool {
			if filter != nil && !filter(tuple) {
				return true
			}
			project(tuple, buf)
			parts[router(buf)].Append(buf)
			return true
		})
		staged := &Staged{Parts: parts, Schema: st.Schema, Owned: true}
		if st.SortPartitions {
			sortParts(staged, st.SortKeys)
		}
		return staged, nil
	}
	return nil, fmt.Errorf("core: unknown stage action %v", st.Action)
}

// sortParts replaces each partition with a sorted copy, returning the
// unsorted originals to the page arena.
func sortParts(s *Staged, keys []int) {
	cmp := MakeKeyCompare(s.Schema, keys)
	for i, p := range s.Parts {
		s.Parts[i] = SortTablePooled(p.Name(), p, cmp)
		p.Release()
	}
	s.Sorted = true
}

// fineRouter maps a staged tuple to its value partition through a sorted
// value directory with binary search (§V-B, fine-grained partitioning).
// Tuples whose key is absent from the directory route to -1 and are
// dropped: they cannot join with anything on the other side.
func fineRouter(st *plan.Stage) (func(tuple []byte) int, []*storage.Table, error) {
	if len(st.FineValues) == 0 {
		return nil, nil, fmt.Errorf("core: fine partitioning without a value directory")
	}
	parts := make([]*storage.Table, len(st.FineValues))
	for i := range parts {
		parts[i] = storage.NewPooledTable(fmt.Sprintf("part%d", i), st.Schema)
	}
	col := st.Schema.Column(st.PartitionKey)
	off := st.Schema.Offset(st.PartitionKey)
	switch col.Kind {
	case types.Int, types.Date:
		dir := make([]int64, len(st.FineValues))
		for i, d := range st.FineValues {
			dir[i] = d.I
		}
		return func(t []byte) int {
			v := types.GetInt(t, off)
			lo, hi := 0, len(dir)
			for lo < hi {
				mid := (lo + hi) / 2
				if dir[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(dir) && dir[lo] == v {
				return lo
			}
			return -1
		}, parts, nil
	case types.String:
		dir := make([]string, len(st.FineValues))
		for i, d := range st.FineValues {
			dir[i] = d.S
		}
		size := col.Size
		return func(t []byte) int {
			v := types.GetString(t, off, size)
			lo, hi := 0, len(dir)
			for lo < hi {
				mid := (lo + hi) / 2
				if dir[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(dir) && dir[lo] == v {
				return lo
			}
			return -1
		}, parts, nil
	}
	return nil, nil, fmt.Errorf("core: fine partitioning on %v column", col.Kind)
}

// coarseRouter maps a tuple to one of m partitions by hash-and-modulo
// (§V-B, coarse-grained partitioning). m must be a power of two. A
// group-less aggregate stages an empty tuple with no partitioning key;
// everything routes to partition 0.
func coarseRouter(schema *types.Schema, key, m int) func(tuple []byte) int {
	if key >= schema.NumColumns() {
		return func([]byte) int { return 0 }
	}
	col := schema.Column(key)
	off := schema.Offset(key)
	mask := uint64(m - 1)
	switch col.Kind {
	case types.Int, types.Date:
		return func(t []byte) int {
			return int(HashInt(types.GetInt(t, off)) & mask)
		}
	case types.Float:
		return func(t []byte) int {
			// Hash the raw bits; equal floats have equal bits.
			return int(HashInt(types.GetInt(t, off)) & mask)
		}
	case types.String:
		end := off + col.Size
		return func(t []byte) int {
			return int(HashBytes(t[off:end]) & mask)
		}
	}
	panic("core.coarseRouter: bad kind")
}

// HashInt is a Fibonacci multiplicative hash over a 64-bit key.
func HashInt(v int64) uint64 {
	x := uint64(v) * 0x9E3779B97F4A7C15
	return x ^ (x >> 29)
}

// HashBytes is FNV-1a over the key bytes.
func HashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
