package core

import (
	"fmt"
	"time"

	"hique/internal/plan"
	"hique/internal/storage"
	"hique/internal/types"
)

// Engine is the holistic query engine: it walks the optimizer's operator
// descriptor list in order — joins first, then aggregation, then sorting
// (§IV) — instantiating and running the specialised template for each
// operator, and materialising intermediate results as temporary tables
// between operators (§V-C).
type Engine struct{}

// NewEngine creates a holistic engine.
func NewEngine() *Engine { return &Engine{} }

// Name identifies the engine in experiment output.
func (e *Engine) Name() string { return "HIQUE" }

// Execute runs the plan to completion and returns the result table.
func (e *Engine) Execute(p *plan.Plan) (*storage.Table, error) {
	joinOut := make([]*storage.Table, len(p.Joins))
	resolve := func(ref plan.InputRef) (*storage.Table, error) {
		if ref.Base >= 0 {
			return p.Tables[ref.Base].Entry.Table, nil
		}
		if ref.Join < 0 || ref.Join >= len(joinOut) || joinOut[ref.Join] == nil {
			return nil, fmt.Errorf("core: dangling input reference %v", ref)
		}
		return joinOut[ref.Join], nil
	}
	// stageInput resolves a stage's input, fetching through the fractal
	// B+-tree when the planner marked the stage for index access.
	stageInput := func(st *plan.Stage) (*storage.Table, error) {
		in, err := resolve(st.Input)
		if err != nil {
			return nil, err
		}
		return ApplyIndexScan(p, st, in)
	}

	tr := p.Trace
	var t0 time.Time
	for ji, j := range p.Joins {
		staged := make([]*Staged, len(j.Inputs))
		stagedRows := int64(0)
		for i := range j.Inputs {
			if tr != nil {
				t0 = time.Now()
			}
			in, err := stageInput(&j.Inputs[i])
			if err != nil {
				releaseAll(staged)
				return nil, err
			}
			s, err := RunStage(&j.Inputs[i], in)
			if err != nil {
				releaseAll(staged)
				return nil, err
			}
			staged[i] = s
			if tr != nil {
				tr.Observe(plan.TraceJoinStage(ji, i),
					int64(in.NumRows()), int64(s.Rows()), time.Since(t0))
				stagedRows += int64(s.Rows())
			}
		}
		if tr != nil {
			t0 = time.Now()
		}
		out, err := RunJoin(j, staged)
		// Join outputs copy every emitted tuple, so the staged inputs
		// return to the page arena as soon as the join has drained them.
		releaseAll(staged)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Observe(plan.TraceJoin(ji), stagedRows, int64(out.NumRows()), time.Since(t0))
		}
		joinOut[ji] = out
	}

	var result *storage.Table
	// resultOwned marks a result the caller may Release: it was
	// materialised from the arena by this execution and aliases no base
	// table or join output.
	resultOwned := false
	switch {
	case p.Agg != nil:
		if tr != nil {
			t0 = time.Now()
		}
		in, err := stageInput(&p.Agg.Input)
		if err != nil {
			return nil, err
		}
		aggIn := int64(in.NumRows())
		if p.Agg.Alg == plan.MapAggregation {
			result, err = RunMapAgg(p.Agg, in)
		} else {
			var staged *Staged
			staged, err = RunStage(&p.Agg.Input, in)
			if err != nil {
				return nil, err
			}
			aggIn = int64(staged.Rows())
			result, err = RunSortedAgg(p.Agg, staged)
			staged.Release()
		}
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Observe(plan.TraceStageAgg, aggIn, int64(result.NumRows()), time.Since(t0))
		}
	case p.Final != nil:
		if tr != nil {
			t0 = time.Now()
		}
		in, err := stageInput(p.Final)
		if err != nil {
			return nil, err
		}
		staged, err := RunStage(p.Final, in)
		if err != nil {
			return nil, err
		}
		result = staged.Parts[0]
		resultOwned = staged.Owned
		if tr != nil {
			tr.Observe(plan.TraceStageProject,
				int64(in.NumRows()), int64(result.NumRows()), time.Since(t0))
		}
	default:
		return nil, fmt.Errorf("core: plan has neither aggregation nor final projection")
	}

	result, resultOwned = applyHaving(p, result, resultOwned)
	return finishResult(p, result, resultOwned), nil
}

// applyHaving filters aggregated groups against the plan's HAVING
// conjunction, between aggregation and the final sort, exactly where the
// other engines apply it. The filtered copy draws from the arena; the
// replaced result is released when this execution owned it.
func applyHaving(p *plan.Plan, result *storage.Table, owned bool) (*storage.Table, bool) {
	if len(p.Having) == 0 {
		return result, owned
	}
	s := result.Schema()
	out := storage.NewPooledTable("result", s)
	result.Scan(func(t []byte) bool {
		for _, h := range p.Having {
			if !h.Op.Holds(types.Compare(s.GetDatum(t, h.Col), h.Val)) {
				return true
			}
		}
		out.Append(t)
		return true
	})
	if owned {
		result.Release()
	}
	return out, true
}

// finishResult applies the shared final-ordering and LIMIT tail: sort
// into a pooled copy, truncate to the limit, and release each replaced
// result the execution owned. Both the sequential and the parallel
// engine end with exactly this sequence.
func finishResult(p *plan.Plan, result *storage.Table, owned bool) *storage.Table {
	if p.Sort != nil {
		var t0 time.Time
		if p.Trace != nil {
			t0 = time.Now()
		}
		cmp := MakeSortCompare(result.Schema(), p.Sort.Keys)
		sorted := SortTablePooled("result", result, cmp)
		if owned {
			result.Release()
		}
		result, owned = sorted, true
		if p.Trace != nil {
			n := int64(result.NumRows())
			p.Trace.Observe(plan.TraceStageSort, n, n, time.Since(t0))
		}
	}
	if p.Limit >= 0 && result.NumRows() > p.Limit {
		truncated := storage.NewPooledTable("result", result.Schema())
		n := 0
		result.Scan(func(t []byte) bool {
			if n >= p.Limit {
				return false
			}
			truncated.Append(t)
			n++
			return true
		})
		if owned {
			result.Release()
		}
		result = truncated
	}
	return result
}

// releaseAll returns every owned staged input to the page arena.
func releaseAll(staged []*Staged) {
	for _, s := range staged {
		s.Release()
	}
}

// ApplyIndexScan reduces a stage's input to the tuples matching its index
// predicate, fetched through the fractal B+-tree (paper §IV). The matching
// filter stays in the stage, so re-evaluation keeps the path safe even if
// the index is stale; non-index engines simply scan.
func ApplyIndexScan(p *plan.Plan, st *plan.Stage, in *storage.Table) (*storage.Table, error) {
	if st.IndexScan == nil || st.Input.Base < 0 {
		return in, nil
	}
	if slot, ok := st.IndexScan.Slot(); ok {
		return nil, fmt.Errorf("core: index scan reads unbound parameter $%d (bind the plan before execution)", slot)
	}
	entry := p.Tables[st.Input.Base].Entry
	idx := entry.Index(st.IndexScan.Column)
	if idx == nil {
		return in, nil // index dropped since planning: fall back to scan
	}
	out := storage.NewTable(in.Name()+"_idx", in.Schema())
	for _, rid := range idx.Search(st.IndexScan.Value.I) {
		if int(rid.Page) >= in.NumPages() {
			continue
		}
		page := in.Page(int(rid.Page))
		if int(rid.Slot) >= page.NumTuples() {
			continue
		}
		out.Append(page.Tuple(int(rid.Slot)))
	}
	return out, nil
}
