package core

import (
	"fmt"
	"runtime"
	"sync"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// ParallelEngine is the paper's stated next step (§VII): "one can
// accurately specify the code segments that can be executed in parallel,
// thus reducing synchronization overhead". Code generation makes the
// parallel decomposition explicit:
//
//   - Partitioned joins assign whole partition sets to workers — the
//     partitions are disjoint by construction, so workers share nothing
//     but the input.
//   - Map aggregation gives each worker a private copy of the (small,
//     cache-resident) aggregate arrays over a slice of input pages and
//     merges the arrays at the end.
//   - Sorting sorts runs in parallel before the single-threaded merge.
//
// Operators without a safe decomposition fall back to the sequential
// templates, keeping results identical to Engine.
type ParallelEngine struct {
	workers int
}

// NewParallelEngine creates a holistic engine that evaluates partitioned
// operators with up to workers goroutines (default: GOMAXPROCS).
func NewParallelEngine(workers int) *ParallelEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelEngine{workers: workers}
}

// Name identifies the engine in experiment output.
func (e *ParallelEngine) Name() string { return fmt.Sprintf("HIQUE-parallel(%d)", e.workers) }

// Execute runs the plan, parallelising partitioned joins and map
// aggregation.
func (e *ParallelEngine) Execute(p *plan.Plan) (*storage.Table, error) {
	joinOut := make([]*storage.Table, len(p.Joins))
	resolve := func(ref plan.InputRef) (*storage.Table, error) {
		if ref.Base >= 0 {
			return p.Tables[ref.Base].Entry.Table, nil
		}
		if ref.Join < 0 || ref.Join >= len(joinOut) || joinOut[ref.Join] == nil {
			return nil, fmt.Errorf("core: dangling input reference %v", ref)
		}
		return joinOut[ref.Join], nil
	}

	for ji, j := range p.Joins {
		staged := make([]*Staged, len(j.Inputs))
		for i := range j.Inputs {
			in, err := resolve(j.Inputs[i].Input)
			if err != nil {
				return nil, err
			}
			s, err := RunStage(&j.Inputs[i], in)
			if err != nil {
				return nil, err
			}
			staged[i] = s
		}
		var out *storage.Table
		var err error
		if j.Alg == plan.HybridJoin || j.Alg == plan.FinePartitionJoin {
			out, err = e.runJoinParallel(j, staged)
		} else {
			out, err = RunJoin(j, staged)
		}
		releaseAll(staged)
		if err != nil {
			return nil, err
		}
		joinOut[ji] = out
	}

	var result *storage.Table
	resultOwned := false
	switch {
	case p.Agg != nil:
		in, err := resolve(p.Agg.Input.Input)
		if err != nil {
			return nil, err
		}
		switch p.Agg.Alg {
		case plan.MapAggregation:
			result, err = e.runMapAggParallel(p.Agg, in)
		case plan.HybridAggregation:
			result, err = e.runHybridAggParallel(p.Agg, in)
		default:
			var staged *Staged
			staged, err = RunStage(&p.Agg.Input, in)
			if err != nil {
				return nil, err
			}
			result, err = RunSortedAgg(p.Agg, staged)
			staged.Release()
		}
		if err != nil {
			return nil, err
		}
	case p.Final != nil:
		in, err := resolve(p.Final.Input)
		if err != nil {
			return nil, err
		}
		staged, err := RunStage(p.Final, in)
		if err != nil {
			return nil, err
		}
		result = staged.Parts[0]
		resultOwned = staged.Owned
	default:
		return nil, fmt.Errorf("core: plan has neither aggregation nor final projection")
	}

	result, resultOwned = applyHaving(p, result, resultOwned)
	return finishResult(p, result, resultOwned), nil
}

// runJoinParallel evaluates a partitioned join with partition sets spread
// over workers; per-worker outputs are concatenated afterwards.
func (e *ParallelEngine) runJoinParallel(j *plan.Join, staged []*Staged) (*storage.Table, error) {
	m := len(staged[0].Parts)
	for i, s := range staged {
		if len(s.Parts) != m {
			return nil, fmt.Errorf("core: parallel join input %d has %d partitions, want %d", i, len(s.Parts), m)
		}
	}
	workers := e.workers
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		return RunJoin(j, staged)
	}

	outputs := make([]*storage.Table, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Build a sub-join over this worker's partition slice.
			sub := make([]*Staged, len(staged))
			for i, s := range staged {
				parts := make([]*storage.Table, 0, m/workers+1)
				for p := w; p < m; p += workers {
					parts = append(parts, s.Parts[p])
				}
				sub[i] = &Staged{Parts: parts, Schema: s.Schema, Sorted: s.Sorted}
			}
			outputs[w], errs[w] = RunJoin(j, sub)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := storage.NewTable("joined", j.Schema)
	for _, part := range outputs {
		part.Scan(func(t []byte) bool {
			out.Append(t)
			return true
		})
	}
	return out, nil
}

// runHybridAggParallel stages sequentially (partitioning is a single
// pass), then aggregates disjoint partitions on separate workers.
func (e *ParallelEngine) runHybridAggParallel(a *plan.Agg, input *storage.Table) (*storage.Table, error) {
	staged, err := RunStage(&a.Input, input)
	if err != nil {
		return nil, err
	}
	m := len(staged.Parts)
	workers := e.workers
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		out, err := RunSortedAgg(a, staged)
		staged.Release()
		return out, err
	}
	outputs := make([]*storage.Table, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parts := make([]*storage.Table, 0, m/workers+1)
			for p := w; p < m; p += workers {
				parts = append(parts, staged.Parts[p])
			}
			sub := &Staged{Parts: parts, Schema: staged.Schema, Sorted: staged.Sorted}
			outputs[w], errs[w] = RunSortedAgg(a, sub)
		}(w)
	}
	wg.Wait()
	staged.Release()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := storage.NewTable("agg", a.Schema)
	for _, part := range outputs {
		part.Scan(func(t []byte) bool {
			out.Append(t)
			return true
		})
	}
	return out, nil
}

// runMapAggParallel shards the input pages across workers, each with a
// private aggregate-array copy, and merges the per-worker group tables at
// the end (group columns are equal keys, so merging re-aggregates).
func (e *ParallelEngine) runMapAggParallel(a *plan.Agg, input *storage.Table) (*storage.Table, error) {
	workers := e.workers
	if workers <= 1 || input.NumPages() < workers*4 {
		return RunMapAgg(a, input)
	}
	// AVG merges exactly only when COUNT(*) provides group weights; fall
	// back to the sequential template otherwise.
	hasStar := false
	hasAvg := false
	for _, spec := range a.Aggs {
		if spec.Func == sql.AggCount && spec.Star {
			hasStar = true
		}
		if spec.Func == sql.AggAvg {
			hasAvg = true
		}
	}
	if hasAvg && !hasStar {
		return RunMapAgg(a, input)
	}

	// Each worker sees a page-range view of the input.
	outputs := make([]*storage.Table, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	pagesPerWorker := (input.NumPages() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * pagesPerWorker
			hi := lo + pagesPerWorker
			if hi > input.NumPages() {
				hi = input.NumPages()
			}
			if lo >= hi {
				outputs[w] = storage.NewTable("empty", a.Schema)
				return
			}
			view := storage.NewTable("view", input.Schema())
			for p := lo; p < hi; p++ {
				pg := input.Page(p)
				n := pg.NumTuples()
				for i := 0; i < n; i++ {
					view.Append(pg.Tuple(i))
				}
			}
			outputs[w], errs[w] = RunMapAgg(a, view)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeGroupTables(a, outputs)
}

// mergeGroupTables re-aggregates per-worker group tables: group rows with
// equal keys combine slot-wise (SUM/COUNT add, MIN/MAX fold, AVG is
// recomputed from merged SUM and COUNT — which map aggregation tracks
// internally, so here AVG merges by weighted mean using the COUNT(*)
// column when present, otherwise it falls back to sequential execution).
func mergeGroupTables(a *plan.Agg, parts []*storage.Table) (*storage.Table, error) {
	// AVG without an accompanying COUNT(*) cannot be merged exactly from
	// finished averages; map aggregation outputs averages already
	// divided. Detect and decline (callers fall back).
	starIdx := -1
	for pos, ref := range a.Output {
		if ref.IsAgg && a.Aggs[ref.Index].Func == sql.AggCount && a.Aggs[ref.Index].Star {
			starIdx = pos
		}
	}
	for _, ref := range a.Output {
		if ref.IsAgg && a.Aggs[ref.Index].Func == sql.AggAvg && starIdx < 0 {
			return nil, fmt.Errorf("core: parallel map aggregation of AVG requires COUNT(*) in the select list")
		}
	}

	type groupState struct {
		row    []types.Datum
		weight float64
	}
	schema := a.Schema
	groups := map[string]*groupState{}
	var order []string

	keyOf := func(row []types.Datum) string {
		k := ""
		for pos, ref := range a.Output {
			if !ref.IsAgg {
				k += row[pos].String() + "\x00"
			}
		}
		return k
	}

	for _, part := range parts {
		rows := part.Rows()
		for _, row := range rows {
			k := keyOf(row)
			w := 1.0
			if starIdx >= 0 {
				w = float64(row[starIdx].I)
			}
			g, ok := groups[k]
			if !ok {
				cp := append([]types.Datum(nil), row...)
				groups[k] = &groupState{row: cp, weight: w}
				order = append(order, k)
				continue
			}
			for pos, ref := range a.Output {
				if !ref.IsAgg {
					continue
				}
				spec := &a.Aggs[ref.Index]
				switch spec.Func {
				case sql.AggSum, sql.AggCount:
					if g.row[pos].Kind == types.Float {
						g.row[pos].F += row[pos].F
					} else {
						g.row[pos].I += row[pos].I
					}
				case sql.AggMin:
					if types.Compare(row[pos], g.row[pos]) < 0 {
						g.row[pos] = row[pos]
					}
				case sql.AggMax:
					if types.Compare(row[pos], g.row[pos]) > 0 {
						g.row[pos] = row[pos]
					}
				case sql.AggAvg:
					total := g.weight + w
					if total > 0 {
						g.row[pos].F = (g.row[pos].F*g.weight + row[pos].F*w) / total
					}
				}
			}
			g.weight += w
		}
	}

	// Emit in sorted group order to match the sequential engine's
	// directory-ordered output.
	sortKeys := make([]plan.SortKey, 0, len(a.Output))
	for pos, ref := range a.Output {
		if !ref.IsAgg {
			sortKeys = append(sortKeys, plan.SortKey{Col: pos})
		}
	}
	out := storage.NewTable("agg", schema)
	for _, k := range order {
		out.AppendRow(groups[k].row...)
	}
	if len(sortKeys) > 0 {
		out = SortTable("agg", out, MakeSortCompare(schema, sortKeys))
	}
	return out, nil
}
