package core

import (
	"container/heap"

	"hique/internal/storage"
)

// sortRunTuples is the run size used by the cache-conscious sort: quicksort
// runs that fit in the L2 cache, then a k-way merge (paper §V-B: "Sorting
// is performed by using an optimized version of quicksort over
// L2-cache-fitting input partitions and then merging them").
const l2CacheBytes = 2 << 20

// Flatten gathers tuple references from a table into a slice; the slices
// alias page memory.
func Flatten(t *storage.Table) [][]byte {
	out := make([][]byte, 0, t.NumRows())
	for p := 0; p < t.NumPages(); p++ {
		page := t.Page(p)
		n := page.NumTuples()
		ts := page.TupleSize()
		data := page.Data()
		for i := 0; i < n; i++ {
			out = append(out, data[i*ts:i*ts+ts:i*ts+ts])
		}
	}
	return out
}

// SortTuples sorts tuple references in place using quicksort over
// cache-sized runs followed by a k-way merge.
func SortTuples(tuples [][]byte, cmp Compare) {
	n := len(tuples)
	if n < 2 {
		return
	}
	tupleSize := len(tuples[0])
	if tupleSize == 0 {
		// Zero-width tuples (group-less aggregate staging) are all
		// equal; there is nothing to order.
		return
	}
	runLen := l2CacheBytes / 2 / tupleSize
	if runLen < 1024 {
		runLen = 1024
	}
	if n <= runLen {
		quicksort(tuples, cmp)
		return
	}

	// Sort runs.
	var runs [][2]int
	for start := 0; start < n; start += runLen {
		end := start + runLen
		if end > n {
			end = n
		}
		quicksort(tuples[start:end], cmp)
		runs = append(runs, [2]int{start, end})
	}

	// K-way merge into a scratch slice.
	out := make([][]byte, 0, n)
	h := &mergeHeap{cmp: cmp, tuples: tuples}
	for _, r := range runs {
		h.items = append(h.items, mergeItem{pos: r[0], end: r[1]})
	}
	heap.Init(h)
	for h.Len() > 0 {
		it := &h.items[0]
		out = append(out, tuples[it.pos])
		it.pos++
		if it.pos >= it.end {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	copy(tuples, out)
}

type mergeItem struct{ pos, end int }

type mergeHeap struct {
	items  []mergeItem
	tuples [][]byte
	cmp    Compare
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	return h.cmp(h.tuples[h.items[i].pos], h.tuples[h.items[j].pos]) < 0
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}

// quicksort is an introsort: median-of-three (ninther for large slices)
// quicksort with insertion sort below a small threshold and a heapsort
// fallback when recursion degenerates (rotated or adversarial inputs would
// otherwise go quadratic). It operates directly on tuple references with
// no interface dispatch in the hot loop, unlike sort.Slice.
func quicksort(a [][]byte, cmp Compare) {
	depth := 0
	for n := len(a); n > 1; n >>= 1 {
		depth += 2
	}
	quicksortDepth(a, cmp, depth)
}

func quicksortDepth(a [][]byte, cmp Compare, depth int) {
	for len(a) > 12 {
		if depth == 0 {
			heapsortTuples(a, cmp)
			return
		}
		depth--
		m := choosePivot(a, cmp)
		a[0], a[m] = a[m], a[0]
		pivot := a[0]
		i, j := 1, len(a)-1
		for {
			for i <= j && cmp(a[i], pivot) < 0 {
				i++
			}
			for i <= j && cmp(a[j], pivot) > 0 {
				j--
			}
			if i > j {
				break
			}
			a[i], a[j] = a[j], a[i]
			i++
			j--
		}
		a[0], a[j] = a[j], a[0]
		// Recurse into the smaller side, loop on the larger.
		if j < len(a)-j {
			quicksortDepth(a[:j], cmp, depth)
			a = a[j+1:]
		} else {
			quicksortDepth(a[j+1:], cmp, depth)
			a = a[:j]
		}
	}
	// Insertion sort for small slices.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && cmp(a[j], a[j-1]) < 0; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// choosePivot picks a pivot index: median of three for moderate sizes, the
// ninther (median of three medians) for large slices, which defeats the
// rotated/organ-pipe patterns cyclic keys produce in staged runs.
func choosePivot(a [][]byte, cmp Compare) int {
	n := len(a)
	if n > 256 {
		s := n / 8
		m1 := medianOfThreeIdx(a, cmp, 0, s, 2*s)
		m2 := medianOfThreeIdx(a, cmp, n/2-s, n/2, n/2+s)
		m3 := medianOfThreeIdx(a, cmp, n-1-2*s, n-1-s, n-1)
		return medianOfThreeIdx(a, cmp, m1, m2, m3)
	}
	return medianOfThreeIdx(a, cmp, 0, n/2, n-1)
}

func medianOfThreeIdx(a [][]byte, cmp Compare, i, j, k int) int {
	if cmp(a[j], a[i]) < 0 {
		i, j = j, i
	}
	if cmp(a[k], a[j]) < 0 {
		j = k
		if cmp(a[j], a[i]) < 0 {
			j = i
		}
	}
	return j
}

// heapsortTuples is the introsort fallback: guaranteed O(n log n).
func heapsortTuples(a [][]byte, cmp Compare) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, cmp, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, cmp, 0, end)
	}
}

func siftDown(a [][]byte, cmp Compare, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && cmp(a[child+1], a[child]) > 0 {
			child++
		}
		if cmp(a[child], a[root]) <= 0 {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// MaterializeSorted writes sorted tuple references into a fresh table.
func MaterializeSorted(name string, tuples [][]byte, like *storage.Table) *storage.Table {
	out := storage.NewTable(name, like.Schema())
	for _, t := range tuples {
		out.Append(t)
	}
	return out
}

// SortTable returns a new table with the rows of t ordered by cmp.
func SortTable(name string, t *storage.Table, cmp Compare) *storage.Table {
	tuples := Flatten(t)
	SortTuples(tuples, cmp)
	return MaterializeSorted(name, tuples, t)
}

// SortTablePooled is SortTable with the output drawn from the page arena:
// the sorted copy of a staged intermediate is itself an intermediate, so
// its frames return to the arena when the consuming operator releases it.
func SortTablePooled(name string, t *storage.Table, cmp Compare) *storage.Table {
	tuples := Flatten(t)
	SortTuples(tuples, cmp)
	out := storage.NewPooledTable(name, t.Schema())
	for _, tup := range tuples {
		out.Append(tup)
	}
	return out
}
