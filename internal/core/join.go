package core

import (
	"fmt"

	"hique/internal/plan"
	"hique/internal/storage"
)

// rowBuilder assembles join output tuples from the current tuple of each
// input, with all offsets pre-resolved (the inlined add_to_result of
// Listing 2).
type rowBuilder struct {
	out   *storage.Table
	buf   []byte
	specs [][]copyRange // per input: coalesced copy ranges
}

type copyRange struct{ srcOff, dstOff, size int }

func newRowBuilder(j *plan.Join) *rowBuilder {
	rb := &rowBuilder{
		out:   storage.NewTable("joined", j.Schema),
		buf:   make([]byte, j.Schema.TupleSize()),
		specs: make([][]copyRange, len(j.Inputs)),
	}
	for pos, o := range j.Out {
		src := j.Inputs[o.Input].Schema
		r := copyRange{
			srcOff: src.Offset(o.Col),
			dstOff: j.Schema.Offset(pos),
			size:   src.Column(o.Col).Size,
		}
		specs := rb.specs[o.Input]
		if n := len(specs); n > 0 {
			last := &specs[n-1]
			if last.srcOff+last.size == r.srcOff && last.dstOff+last.size == r.dstOff {
				last.size += r.size
				continue
			}
		}
		rb.specs[o.Input] = append(specs, r)
	}
	return rb
}

// emit writes one output tuple built from the given per-input tuples.
func (rb *rowBuilder) emit(tuples [][]byte) {
	for i, specs := range rb.specs {
		t := tuples[i]
		for _, c := range specs {
			copy(rb.buf[c.dstOff:c.dstOff+c.size], t[c.srcOff:c.srcOff+c.size])
		}
	}
	rb.out.Append(rb.buf)
}

// RunJoin evaluates a join descriptor over its staged inputs and returns
// the materialised result. All variants share the nested-loops structure
// of Listing 2; they differ in how the inputs were staged and in the
// in-loop bound updates (§V-B).
func RunJoin(j *plan.Join, staged []*Staged) (*storage.Table, error) {
	if len(staged) != len(j.Inputs) {
		return nil, fmt.Errorf("core: join expects %d staged inputs, got %d", len(j.Inputs), len(staged))
	}
	rb := newRowBuilder(j)

	switch j.Alg {
	case plan.MergeJoin:
		inputs := make([][][]byte, len(staged))
		for i, s := range staged {
			if len(s.Parts) != 1 {
				return nil, fmt.Errorf("core: merge join input %d is partitioned", i)
			}
			inputs[i] = Flatten(s.Parts[0])
		}
		mergeJoinK(j, inputs, rb)
		return rb.out, nil

	case plan.FinePartitionJoin:
		m := len(staged[0].Parts)
		for i, s := range staged {
			if len(s.Parts) != m {
				return nil, fmt.Errorf("core: fine join input %d has %d partitions, want %d", i, len(s.Parts), m)
			}
		}
		// Corresponding partitions hold exactly one key value, so all
		// tuples match: a pure nested loop per partition set.
		current := make([][]byte, len(staged))
		for p := 0; p < m; p++ {
			parts := make([][][]byte, len(staged))
			empty := false
			for i, s := range staged {
				parts[i] = Flatten(s.Parts[p])
				if len(parts[i]) == 0 {
					empty = true
					break
				}
			}
			if empty {
				continue
			}
			cartesian(parts, current, 0, rb)
		}
		return rb.out, nil

	case plan.HybridJoin:
		m := len(staged[0].Parts)
		for i, s := range staged {
			if len(s.Parts) != m {
				return nil, fmt.Errorf("core: hybrid join input %d has %d partitions, want %d", i, len(s.Parts), m)
			}
		}
		// Sort corresponding partitions just before joining them so the
		// pair is L2-resident during the merge (§V-B).
		cmps := make([]Compare, len(staged))
		for i := range staged {
			cmps[i] = MakeKeyCompare(j.Inputs[i].Schema, []int{j.Keys[i]})
		}
		inputs := make([][][]byte, len(staged))
		for p := 0; p < m; p++ {
			empty := false
			for i, s := range staged {
				inputs[i] = Flatten(s.Parts[p])
				if len(inputs[i]) == 0 {
					empty = true
					break
				}
			}
			if empty {
				continue
			}
			if !staged[0].Sorted {
				for i := range inputs {
					SortTuples(inputs[i], cmps[i])
				}
			}
			mergeJoinK(j, inputs, rb)
		}
		return rb.out, nil
	}
	return nil, fmt.Errorf("core: unknown join algorithm %v", j.Alg)
}

// cartesian emits the cross product of the partition tuple sets (the fine
// partition join inner loops).
func cartesian(parts [][][]byte, current [][]byte, depth int, rb *rowBuilder) {
	if depth == len(parts) {
		rb.emit(current)
		return
	}
	for _, t := range parts[depth] {
		current[depth] = t
		cartesian(parts, current, depth+1, rb)
	}
}

// mergeJoinK is the k-way sorted merge join: all inputs are ordered on
// their key columns; the loop advances every input to the next common key,
// delimits the matching group in each input, and emits the product of the
// groups. For k == 2 this is exactly the paper's merge join with
// backtracking over inner groups; join teams use k > 2 with one loop per
// input, page loops before tuple loops (§V-B).
func mergeJoinK(j *plan.Join, inputs [][][]byte, rb *rowBuilder) {
	k := len(inputs)
	pos := make([]int, k)
	for i := 0; i < k; i++ {
		if len(inputs[i]) == 0 {
			return
		}
	}

	// crossCmp[i] compares a tuple of input i with a tuple of input 0.
	crossCmp := make([]func(a, b []byte) int, k)
	sameCmp := make([]Compare, k)
	for i := 0; i < k; i++ {
		crossCmp[i] = CrossCompare(j.Inputs[i].Schema, j.Keys[i], j.Inputs[0].Schema, j.Keys[0])
		sameCmp[i] = MakeKeyCompare(j.Inputs[i].Schema, []int{j.Keys[i]})
	}

	ends := make([]int, k)
	groups := make([][][]byte, k)
	current := make([][]byte, k)
	for {
		// Align all inputs on a common key.
		aligned := false
		for !aligned {
			aligned = true
			for i := 1; i < k; i++ {
				c := crossCmp[i](inputs[i][pos[i]], inputs[0][pos[0]])
				for c < 0 {
					pos[i]++
					if pos[i] >= len(inputs[i]) {
						return
					}
					c = crossCmp[i](inputs[i][pos[i]], inputs[0][pos[0]])
				}
				if c > 0 {
					pos[0]++
					if pos[0] >= len(inputs[0]) {
						return
					}
					aligned = false
					break
				}
			}
		}
		// Delimit the matching group in every input.
		singletons := true
		for i := 0; i < k; i++ {
			e := pos[i] + 1
			head := inputs[i][pos[i]]
			for e < len(inputs[i]) && sameCmp[i](inputs[i][e], head) == 0 {
				e++
			}
			ends[i] = e
			groups[i] = inputs[i][pos[i]:e]
			if e-pos[i] != 1 {
				singletons = false
			}
		}
		// Emit the product of the groups. Key/foreign-key teams have
		// singleton groups everywhere but the fact input: keep those
		// paths free of the recursive product.
		switch {
		case singletons:
			for i := 0; i < k; i++ {
				current[i] = inputs[i][pos[i]]
			}
			rb.emit(current)
		case k == 2:
			for _, ta := range groups[0] {
				current[0] = ta
				for _, tb := range groups[1] {
					current[1] = tb
					rb.emit(current)
				}
			}
		default:
			cartesian(groups, current, 0, rb)
		}
		for i := 0; i < k; i++ {
			pos[i] = ends[i]
			if pos[i] >= len(inputs[i]) {
				return
			}
		}
	}
}
