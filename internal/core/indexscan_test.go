package core

import (
	"testing"

	"hique/internal/catalog"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
	"hique/internal/volcano"
)

func indexedCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tbl := storage.NewTable("events", types.NewSchema(
		types.Col("ev_id", types.Int), types.Col("user_id", types.Int), types.Col("amount", types.Float)))
	for i := 0; i < 10000; i++ {
		tbl.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i%500)), types.FloatDatum(float64(i)))
	}
	cat.Register(tbl)
	if _, err := cat.BuildIndex("events", "user_id"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPlannerAttachesIndexScan(t *testing.T) {
	cat := indexedCatalog(t)
	stmt, _ := sql.Parse("SELECT ev_id, amount FROM events WHERE user_id = 42")
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Final.IndexScan == nil {
		t.Fatal("planner did not attach index scan for indexed equality predicate")
	}
	if p.Final.IndexScan.Column != "user_id" || p.Final.IndexScan.Value.I != 42 {
		t.Errorf("index spec = %+v", p.Final.IndexScan)
	}
	// The equivalent filter must remain for index-unaware engines.
	if len(p.Final.Filters) != 1 {
		t.Errorf("filters = %v (must be retained)", p.Final.Filters)
	}
}

func TestIndexScanMatchesFullScan(t *testing.T) {
	cat := indexedCatalog(t)
	stmt, _ := sql.Parse("SELECT ev_id, amount FROM events WHERE user_id = 42 ORDER BY ev_id")
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Final.IndexScan == nil {
		t.Fatal("expected index scan")
	}
	indexed, err := NewEngine().Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := volcano.NewOptimized().Execute(p) // ignores IndexScan
	if err != nil {
		t.Fatal(err)
	}
	if indexed.NumRows() != 20 || scanned.NumRows() != 20 {
		t.Fatalf("rows = %d / %d, want 20", indexed.NumRows(), scanned.NumRows())
	}
	for i := 0; i < 20; i++ {
		if string(indexed.Tuple(i)) != string(scanned.Tuple(i)) {
			t.Fatalf("row %d differs between index and scan paths", i)
		}
	}
}

func TestNoIndexScanForRangePredicate(t *testing.T) {
	cat := indexedCatalog(t)
	stmt, _ := sql.Parse("SELECT ev_id FROM events WHERE user_id > 400")
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Final.IndexScan != nil {
		t.Error("range predicates must not use the equality index path")
	}
}

func TestNoIndexScanForLowCardinality(t *testing.T) {
	cat := catalog.New()
	tbl := storage.NewTable("lowc", types.NewSchema(
		types.Col("id", types.Int), types.Col("flag", types.Int)))
	for i := 0; i < 1000; i++ {
		tbl.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i%2)))
	}
	cat.Register(tbl)
	if _, err := cat.BuildIndex("lowc", "flag"); err != nil {
		t.Fatal(err)
	}
	stmt, _ := sql.Parse("SELECT id FROM lowc WHERE flag = 1")
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Final.IndexScan != nil {
		t.Error("unselective predicate (2 distinct values) should scan, not probe")
	}
}

func TestIndexScanFeedsJoin(t *testing.T) {
	cat := indexedCatalog(t)
	users := storage.NewTable("users", types.NewSchema(
		types.Col("u_id", types.Int), types.CharCol("name", 8)))
	for i := 0; i < 500; i++ {
		users.AppendRow(types.IntDatum(int64(i)), types.StringDatum("u"))
	}
	cat.Register(users)
	stmt, _ := sql.Parse("SELECT ev_id, name FROM events, users WHERE events.user_id = users.u_id AND user_id = 7")
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewEngine().Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 20 {
		t.Fatalf("rows = %d, want 20", out.NumRows())
	}
}
