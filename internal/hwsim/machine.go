// Package hwsim models the memory hierarchy of the paper's evaluation
// machine (an Intel Core 2 Duo 6300, Table I) and provides the event
// counters the paper obtains from OProfile: retired instructions, function
// calls, data-cache accesses, cache misses split by level and by whether the
// hardware prefetcher covered them, and an execution-time breakdown.
//
// The paper's figures compare *relative* counter values across five code
// shapes running identical workloads. A trace-driven cache and prefetcher
// simulator parameterised with the paper's own latency measurements
// reproduces those relative shapes without access to the original hardware
// (see DESIGN.md, substitution table).
package hwsim

// Machine captures the hardware constants of the simulated platform.
// Values come straight from Table I of the paper.
type Machine struct {
	Cores         int
	FrequencyMHz  int
	CacheLineSize int

	I1Size int // per-core instruction cache
	D1Size int // per-core data cache
	L2Size int // shared second-level cache

	// Latencies in CPU cycles (RightMark measurements reported in §II-A
	// and Table I).
	D1HitCycles        int // any D1 access
	L1MissSeqCycles    int // D1 miss served by L2, sequential pattern
	L1MissRandCycles   int // D1 miss served by L2, random pattern
	L2MissSeqCycles    int // L2 miss served by memory, sequential
	L2MissRandCycles   int // L2 miss served by memory, random
	AssociativityD1    int
	AssociativityL2    int
	MinCPI             float64 // 4-wide issue => 0.25 cycles/instruction
	CallOverheadCycles int     // stack save/restore cost per function call
}

// Core2Duo6300 is the paper's evaluation machine (Table I).
func Core2Duo6300() Machine {
	return Machine{
		Cores:              2,
		FrequencyMHz:       1860,
		CacheLineSize:      64,
		I1Size:             32 << 10,
		D1Size:             32 << 10,
		L2Size:             2 << 20,
		D1HitCycles:        3,
		L1MissSeqCycles:    9,
		L1MissRandCycles:   14,
		L2MissSeqCycles:    28,
		L2MissRandCycles:   77,
		AssociativityD1:    8,
		AssociativityL2:    16,
		MinCPI:             0.25,
		CallOverheadCycles: 20,
	}
}

// D1Lines returns the number of cache lines in the D1 cache.
func (m Machine) D1Lines() int { return m.D1Size / m.CacheLineSize }

// L2Lines returns the number of cache lines in the L2 cache.
func (m Machine) L2Lines() int { return m.L2Size / m.CacheLineSize }

// CyclesToSeconds converts simulated cycles to seconds at the machine's
// clock frequency.
func (m Machine) CyclesToSeconds(cycles float64) float64 {
	return cycles / (float64(m.FrequencyMHz) * 1e6)
}
