package hwsim

// Counters aggregates the simulated hardware events the paper reports in
// Figures 5(c), 5(d), 6(c), 6(d) and the time breakdowns of 5(a)–6(b).
type Counters struct {
	Instructions  uint64 // retired instructions (engine-estimated ops)
	FunctionCalls uint64
	DataAccesses  uint64 // D1 references

	D1Hits       uint64
	D1Prefetched uint64 // D1 misses covered by the D1 prefetcher
	D1Demand     uint64 // D1 misses the prefetcher did not cover
	L2Hits       uint64
	L2Prefetched uint64 // L2 misses covered by the L2 prefetcher
	L2Demand     uint64 // L2 misses that went to memory uncovered

	// Cycle breakdown (simulated).
	InstrCycles    float64
	ResourceCycles float64
	D1StallCycles  float64
	L2StallCycles  float64
}

// D1Misses returns all first-level misses (prefetched or not).
func (c *Counters) D1Misses() uint64 { return c.D1Prefetched + c.D1Demand }

// L2Misses returns all second-level misses.
func (c *Counters) L2Misses() uint64 { return c.L2Prefetched + c.L2Demand }

// D1PrefetchEfficiency is the paper's metric: prefetched lines over total
// missed lines, at the first level.
func (c *Counters) D1PrefetchEfficiency() float64 {
	if m := c.D1Misses(); m > 0 {
		return float64(c.D1Prefetched) / float64(m)
	}
	return 0
}

// L2PrefetchEfficiency is the same metric at the second level.
func (c *Counters) L2PrefetchEfficiency() float64 {
	if m := c.L2Misses(); m > 0 {
		return float64(c.L2Prefetched) / float64(m)
	}
	return 0
}

// TotalCycles sums the breakdown.
func (c *Counters) TotalCycles() float64 {
	return c.InstrCycles + c.ResourceCycles + c.D1StallCycles + c.L2StallCycles
}

// CPI is cycles per retired instruction.
func (c *Counters) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return c.TotalCycles() / float64(c.Instructions)
}

// Probe instruments an engine run: it owns the simulated cache hierarchy
// and the event counters. A nil *Probe disables instrumentation; all
// methods are nil-safe so engines can call them unconditionally.
type Probe struct {
	M  Machine
	C  Counters
	d1 *cache
	l2 *cache
	// Separate stream tables per level, mirroring Figure 1's per-level
	// prefetch units.
	d1pf  prefetcher
	l2pf  prefetcher
	clock uint64

	lineShift uint
	nextBase  int64
}

// NewProbe creates a probe simulating the given machine.
func NewProbe(m Machine) *Probe {
	shift := uint(0)
	for 1<<shift < m.CacheLineSize {
		shift++
	}
	p := &Probe{
		M:         m,
		d1:        newCache(m.D1Size, m.CacheLineSize, m.AssociativityD1),
		l2:        newCache(m.L2Size, m.CacheLineSize, m.AssociativityL2),
		lineShift: shift,
		nextBase:  1 << 30, // leave low addresses unused
	}
	p.d1pf.degree = 2
	p.l2pf.degree = 4
	return p
}

// AllocBase reserves a synthetic address range of the given size and
// returns its base. Engines assign one range per table / staging area so
// the simulated access trace mirrors real memory layout.
func (p *Probe) AllocBase(size int64) int64 {
	if p == nil {
		return 0
	}
	base := p.nextBase
	// Round up to a 4 KiB boundary and add a guard page so separate
	// allocations never share a cache line.
	p.nextBase += (size + 8191) &^ 4095
	return base
}

// Op records n retired instructions.
func (p *Probe) Op(n int) {
	if p == nil {
		return
	}
	p.C.Instructions += uint64(n)
	p.C.InstrCycles += float64(n) * p.M.MinCPI
}

// Call records a function call: the call itself retires instructions for
// the stack save/restore and pays a pipeline penalty (§II-B).
func (p *Probe) Call() {
	if p == nil {
		return
	}
	p.C.FunctionCalls++
	p.C.Instructions += uint64(p.M.CallOverheadCycles)
	p.C.InstrCycles += float64(p.M.CallOverheadCycles) * p.M.MinCPI
	p.C.ResourceCycles += float64(p.M.CallOverheadCycles) / 2
}

// Stall records generic pipeline resource-stall cycles (dependency chains,
// branch mispredictions), used by engines at points where interpreted code
// serialises execution.
func (p *Probe) Stall(cycles int) {
	if p == nil {
		return
	}
	p.C.ResourceCycles += float64(cycles)
}

// Read records a data access of size bytes at the synthetic address addr,
// walking every cache line the access touches.
func (p *Probe) Read(addr int64, size int) {
	if p == nil {
		return
	}
	first := addr >> p.lineShift
	last := (addr + int64(size) - 1) >> p.lineShift
	for line := first; line <= last; line++ {
		p.access(line)
	}
}

// Write records a data store; the simulated hierarchy is write-allocate,
// so stores behave like reads for miss accounting.
func (p *Probe) Write(addr int64, size int) { p.Read(addr, size) }

func (p *Probe) access(line int64) {
	p.C.DataAccesses++
	p.clock++

	// The D1 prefetcher watches the demand stream; its fills are fetched
	// through L2 like any other D1 fill, which is what lets the L2
	// prefetcher learn the stream in turn.
	for _, pf := range p.d1pf.observe(line, p.clock) {
		if !p.d1.contains(pf) {
			p.fetchThroughL2(pf)
			p.d1.insert(pf, true)
		}
	}

	if hit, wasPF := p.d1.lookup(line); hit {
		if wasPF {
			// First demand touch of a D1-prefetched line: the
			// paper's methodology charges the sequential latency.
			p.C.D1Prefetched++
			p.C.D1StallCycles += float64(p.M.L1MissSeqCycles - p.M.D1HitCycles)
		} else {
			p.C.D1Hits++
		}
		return
	}

	// D1 demand miss: charge the random-access L1-miss latency and fetch
	// the line through the L2.
	p.C.D1Demand++
	p.C.D1StallCycles += float64(p.M.L1MissRandCycles - p.M.D1HitCycles)
	p.fetchThroughL2(line)
	p.d1.insert(line, false)
}

// fetchThroughL2 models an L1 fill request arriving at the L2 cache. The L2
// prefetcher observes this request stream (not the raw demand stream), so
// sequential scans train it even when the D1 prefetcher is covering the
// per-access traffic.
func (p *Probe) fetchThroughL2(line int64) {
	for _, pf := range p.l2pf.observe(line, p.clock) {
		if !p.l2.contains(pf) {
			p.l2.insert(pf, true)
		}
	}
	if hit, wasPF := p.l2.lookup(line); hit {
		if wasPF {
			p.C.L2Prefetched++
			p.C.L2StallCycles += float64(p.M.L2MissSeqCycles - p.M.L1MissRandCycles)
		} else {
			p.C.L2Hits++
		}
		return
	}
	p.C.L2Demand++
	p.C.L2StallCycles += float64(p.M.L2MissRandCycles - p.M.L1MissRandCycles)
	p.l2.insert(line, false)
}
