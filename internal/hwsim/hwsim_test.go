package hwsim

import (
	"testing"
	"testing/quick"
)

func TestMachineConstants(t *testing.T) {
	m := Core2Duo6300()
	if m.D1Lines() != 512 {
		t.Errorf("D1Lines = %d, want 512", m.D1Lines())
	}
	if m.L2Lines() != 32768 {
		t.Errorf("L2Lines = %d, want 32768", m.L2Lines())
	}
	sec := m.CyclesToSeconds(1.86e9)
	if sec < 0.99 || sec > 1.01 {
		t.Errorf("1.86G cycles = %gs, want ~1s", sec)
	}
}

func TestCacheHitAfterInsert(t *testing.T) {
	c := newCache(1<<10, 64, 4)
	if hit, _ := c.lookup(42); hit {
		t.Fatal("empty cache reported hit")
	}
	c.insert(42, false)
	if hit, _ := c.lookup(42); !hit {
		t.Fatal("inserted line missed")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 4 lines total, 2 ways, 2 sets: lines with the same parity share a set.
	c := newCache(4*64, 64, 2)
	c.insert(0, false)
	c.insert(2, false)
	c.lookup(0)        // line 0 is now MRU in set 0
	c.insert(4, false) // evicts line 2
	if hit, _ := c.lookup(2); hit {
		t.Error("LRU victim (line 2) still resident")
	}
	if hit, _ := c.lookup(0); !hit {
		t.Error("MRU line 0 was evicted")
	}
	if hit, _ := c.lookup(4); !hit {
		t.Error("inserted line 4 missing")
	}
}

func TestPrefetchedFlagClearsOnFirstTouch(t *testing.T) {
	c := newCache(1<<10, 64, 4)
	c.insert(7, true)
	hit, pf := c.lookup(7)
	if !hit || !pf {
		t.Fatalf("first touch: hit=%v pf=%v, want true,true", hit, pf)
	}
	hit, pf = c.lookup(7)
	if !hit || pf {
		t.Fatalf("second touch: hit=%v pf=%v, want true,false", hit, pf)
	}
}

func TestSequentialScanHasHighPrefetchEfficiency(t *testing.T) {
	p := NewProbe(Core2Duo6300())
	base := p.AllocBase(1 << 22) // 4 MiB: exceeds L2, so misses must occur
	for off := int64(0); off < 1<<22; off += 8 {
		p.Read(base+off, 8)
	}
	eff := p.C.L2PrefetchEfficiency()
	if eff < 0.5 {
		t.Errorf("sequential scan L2 prefetch efficiency = %.2f, want >= 0.5", eff)
	}
	if p.C.D1Misses() == 0 {
		t.Error("4 MiB scan produced no D1 misses")
	}
}

func TestRandomAccessHasLowPrefetchEfficiency(t *testing.T) {
	p := NewProbe(Core2Duo6300())
	base := p.AllocBase(1 << 24)
	// Deterministic pseudo-random walk over 16 MiB.
	x := uint64(88172645463325252)
	for i := 0; i < 1<<16; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		off := int64(x % (1 << 24))
		p.Read(base+off, 8)
	}
	seqEff := func() float64 {
		q := NewProbe(Core2Duo6300())
		b := q.AllocBase(1 << 24)
		for off := int64(0); off < 1<<22; off += 8 {
			q.Read(b+off, 8)
		}
		return q.C.L2PrefetchEfficiency()
	}()
	if got := p.C.L2PrefetchEfficiency(); got >= seqEff {
		t.Errorf("random-walk efficiency %.2f should be below sequential %.2f", got, seqEff)
	}
}

func TestSmallWorkingSetStaysInD1(t *testing.T) {
	p := NewProbe(Core2Duo6300())
	base := p.AllocBase(16 << 10) // 16 KiB < 32 KiB D1
	// Two passes: second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for off := int64(0); off < 16<<10; off += 8 {
			p.Read(base+off, 8)
		}
	}
	// First pass: at most one miss per line (256 lines). Second: none.
	if p.C.D1Misses() > 300 {
		t.Errorf("D1 misses = %d for cache-resident working set", p.C.D1Misses())
	}
}

func TestCountersArithmetic(t *testing.T) {
	var c Counters
	c.D1Prefetched, c.D1Demand = 30, 70
	if got := c.D1PrefetchEfficiency(); got != 0.3 {
		t.Errorf("D1 efficiency = %g, want 0.3", got)
	}
	c.Instructions = 100
	c.InstrCycles, c.ResourceCycles, c.D1StallCycles, c.L2StallCycles = 25, 5, 10, 10
	if got := c.CPI(); got != 0.5 {
		t.Errorf("CPI = %g, want 0.5", got)
	}
}

func TestProbeNilSafety(t *testing.T) {
	var p *Probe
	p.Op(5)
	p.Call()
	p.Stall(3)
	p.Read(0, 8)
	p.Write(0, 8)
	if p.AllocBase(100) != 0 {
		t.Error("nil probe AllocBase should return 0")
	}
}

func TestOpAndCallCounting(t *testing.T) {
	p := NewProbe(Core2Duo6300())
	p.Op(10)
	p.Call()
	if p.C.FunctionCalls != 1 {
		t.Errorf("FunctionCalls = %d", p.C.FunctionCalls)
	}
	if p.C.Instructions != 10+uint64(p.M.CallOverheadCycles) {
		t.Errorf("Instructions = %d", p.C.Instructions)
	}
	if p.C.TotalCycles() <= 0 {
		t.Error("no cycles recorded")
	}
}

func TestAllocBaseDistinct(t *testing.T) {
	p := NewProbe(Core2Duo6300())
	f := func(a, b uint16) bool {
		x := p.AllocBase(int64(a) + 1)
		y := p.AllocBase(int64(b) + 1)
		return x != y && y > x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRepeatedAccessIsCached(t *testing.T) {
	p := NewProbe(Core2Duo6300())
	base := p.AllocBase(4096)
	p.Read(base, 8)
	missesAfterFirst := p.C.D1Misses()
	for i := 0; i < 100; i++ {
		p.Read(base, 8)
	}
	if p.C.D1Misses() != missesAfterFirst {
		t.Errorf("repeated access to one line missed: %d -> %d", missesAfterFirst, p.C.D1Misses())
	}
	if p.C.D1Hits < 100 {
		t.Errorf("D1Hits = %d, want >= 100", p.C.D1Hits)
	}
}
