package hwsim

// cache is a set-associative cache with per-set LRU replacement. Lines are
// identified by line number (address / line size); tags therefore carry the
// full line number.
type cache struct {
	sets       int
	ways       int
	tags       []int64 // sets*ways entries; -1 = invalid
	prefetched []bool  // parallel to tags: line was filled by the prefetcher
	// lru holds per-set recency counters; higher = more recent.
	lru   []uint64
	clock uint64
}

func newCache(sizeBytes, lineSize, ways int) *cache {
	lines := sizeBytes / lineSize
	sets := lines / ways
	if sets == 0 {
		sets = 1
		ways = lines
	}
	c := &cache{
		sets:       sets,
		ways:       ways,
		tags:       make([]int64, sets*ways),
		prefetched: make([]bool, sets*ways),
		lru:        make([]uint64, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// lookup probes for the line. On a hit it refreshes recency and returns
// whether this is the first demand touch of a prefetched line (the flag is
// cleared so later touches count as plain hits).
func (c *cache) lookup(line int64) (hit, firstTouchOfPrefetch bool) {
	set := int(uint64(line) % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.clock++
			c.lru[base+w] = c.clock
			pf := c.prefetched[base+w]
			c.prefetched[base+w] = false
			return true, pf
		}
	}
	return false, false
}

// insert places the line, evicting the per-set LRU victim if needed.
func (c *cache) insert(line int64, prefetched bool) {
	set := int(uint64(line) % uint64(c.sets))
	base := set * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == line {
			// Already present (e.g. prefetch raced a demand fill).
			if !prefetched {
				c.prefetched[i] = false
			}
			return
		}
		if c.tags[i] == -1 {
			victim = i
			break
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.clock++
	c.tags[victim] = line
	c.prefetched[victim] = prefetched
	c.lru[victim] = c.clock
}

// contains probes without touching recency (used by prefetch issue).
func (c *cache) contains(line int64) bool {
	set := int(uint64(line) % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// prefetcher is a stride-stream prefetcher of the kind described in §II-A:
// it tracks a small table of recent access streams, detects constant
// strides, and once confident prefetches ahead of the stream.
type prefetcher struct {
	streams [16]stream
	// degree is how many lines ahead the unit prefetches once a stream
	// is established.
	degree int
}

type stream struct {
	valid      bool
	lastLine   int64
	stride     int64
	confidence int
	lastUsed   uint64
}

// observe feeds an access into the stream table and returns the lines the
// unit decides to prefetch (possibly none).
func (p *prefetcher) observe(line int64, clock uint64) []int64 {
	// Find the stream this access extends: nearest lastLine within a
	// 16-line window.
	best := -1
	var bestDist int64 = 1 << 62
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		d := line - s.lastLine
		if d < 0 {
			d = -d
		}
		if d <= 16 && d < bestDist {
			best = i
			bestDist = d
		}
	}
	if best == -1 {
		// Allocate the least recently used slot.
		victim := 0
		for i := range p.streams {
			if !p.streams[i].valid {
				victim = i
				break
			}
			if p.streams[i].lastUsed < p.streams[victim].lastUsed {
				victim = i
			}
		}
		p.streams[victim] = stream{valid: true, lastLine: line, lastUsed: clock}
		return nil
	}

	s := &p.streams[best]
	s.lastUsed = clock
	d := line - s.lastLine
	if d == 0 {
		return nil
	}
	if d == s.stride {
		if s.confidence < 4 {
			s.confidence++
		}
	} else {
		s.stride = d
		s.confidence = 1
	}
	s.lastLine = line
	if s.confidence < 2 {
		return nil
	}
	out := make([]int64, 0, p.degree)
	next := line
	for i := 0; i < p.degree; i++ {
		next += s.stride
		out = append(out, next)
	}
	return out
}
