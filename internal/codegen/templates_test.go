package codegen

import (
	"strings"
	"testing"

	"hique/internal/plan"
	"hique/internal/sql"
)

// Template-variant tests: the generated source must reflect the algorithm
// the optimizer chose — the paper's point that one nested-loops template
// specialises into every join variant through included/excluded segments
// (§V-B, "for hash join, the segments corresponding to Lines 3 to 5 are
// included and the ones for Lines 6 and 21 are excluded").

func sourceFor(t *testing.T, q string, opts plan.Options) string {
	t.Helper()
	cat := testCatalog()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.BuildWithOptions(stmt, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	return EmitSource(p)
}

const joinQ = "SELECT sale_id, cat FROM sales, prods WHERE sales.prod = prods.prod_id"

func TestMergeJoinTemplateVariant(t *testing.T) {
	opts := plan.DefaultOptions()
	alg := plan.MergeJoin
	opts.ForceJoinAlg = &alg
	src := sourceFor(t, joinQ, opts)
	if !strings.Contains(src, "merge join: single logical partition, M = 1") {
		t.Error("merge variant missing M=1 comment")
	}
	if !strings.Contains(src, "UpdateMergeBounds") {
		t.Error("merge variant missing bound updates (Listing 2 line 21)")
	}
	if strings.Contains(src, "SortPartition(") {
		t.Error("merge variant must not sort partitions at join time")
	}
	if !strings.Contains(src, "sort on columns") {
		t.Error("merge staging must sort inputs")
	}
}

func TestHybridJoinTemplateVariant(t *testing.T) {
	opts := plan.DefaultOptions()
	alg := plan.HybridJoin
	opts.ForceJoinAlg = &alg
	src := sourceFor(t, joinQ, opts)
	if !strings.Contains(src, "examine corresponding partitions together") {
		t.Error("hybrid variant missing partition loop (Listing 2 lines 3-5)")
	}
	if !strings.Contains(src, "hybrid hash-sort-merge: sort just before joining") {
		t.Error("hybrid variant missing at-join-time partition sort (Listing 2 line 6)")
	}
	if !strings.Contains(src, "hash-partition into") {
		t.Error("hybrid staging must coarse-partition")
	}
}

func TestFinePartitionTemplateVariant(t *testing.T) {
	opts := plan.DefaultOptions()
	alg := plan.FinePartitionJoin
	opts.ForceJoinAlg = &alg
	src := sourceFor(t, joinQ, opts)
	if !strings.Contains(src, "fine-partition through a") {
		t.Error("fine variant missing value-directory staging")
	}
	if strings.Contains(src, "SortPartition(") {
		t.Error("fine variant must not sort partitions")
	}
}

func TestSortedAggTemplateVariant(t *testing.T) {
	opts := plan.DefaultOptions()
	alg := plan.HybridAggregation
	opts.ForceAggAlg = &alg
	src := sourceFor(t, "SELECT prod, SUM(amount) AS s FROM sales GROUP BY prod", opts)
	if !strings.Contains(src, "groups close on key change") {
		t.Error("hybrid aggregation missing group-change scan")
	}
	if !strings.Contains(src, "groups never span hash partitions") {
		t.Error("hybrid aggregation missing per-partition group close")
	}
}

func TestStagingFilterInlined(t *testing.T) {
	src := sourceFor(t, "SELECT sale_id FROM sales WHERE qty > 5 AND prod = 3", plan.DefaultOptions())
	// Constants must be baked into the emitted predicates (Listing 1).
	if !strings.Contains(src, "> 5") || !strings.Contains(src, "== 3") {
		t.Errorf("filter constants not inlined:\n%.400s", src)
	}
	if !strings.Contains(src, "continue") {
		t.Error("scan-select template missing continue on predicate failure")
	}
}

func TestComposerCallsInDescriptorOrder(t *testing.T) {
	opts := plan.DefaultOptions()
	src := sourceFor(t, "SELECT cat, SUM(amount) AS s FROM sales, prods WHERE sales.prod = prods.prod_id GROUP BY cat ORDER BY s DESC LIMIT 3", opts)
	// Fig. 3 order: stage inputs, join, stage agg input (or fused),
	// aggregate, sort, limit.
	landmarks := []string{"stageJoin0Input0(", "stageJoin0Input1(", "evalJoin0(", "evalAggregate(", "evalOrderBy(", "Truncate(3)"}
	idx := strings.Index(src, "func EvaluateQuery")
	if idx < 0 {
		t.Fatal("missing composer")
	}
	body := src[idx:]
	pos := -1
	for _, lm := range landmarks {
		next := strings.Index(body, lm)
		if next < 0 {
			t.Fatalf("composer missing %q", lm)
		}
		if next < pos {
			t.Fatalf("composer calls %q out of descriptor order", lm)
		}
		pos = next
	}
}
