package codegen

import (
	"testing"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
)

// Regression tests for the contained-panic arena leak (hique-vet:
// arenaowner): a panic inside the fused pipeline unwinds to the serving
// layer's containPanic, which never receives the result table — run
// itself must release the pages it acquired, or the arena balance drifts
// by one result set per contained panic.

func planWith(t *testing.T, q string, opts plan.Options) *plan.Plan {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.BuildWithOptions(stmt, testCatalog(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mustPanic runs fn expecting a panic, returning normally either way.
func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected the sabotaged pipeline to panic")
		}
	}()
	fn()
}

func TestFusedRunReleasesArenaOnPanic(t *testing.T) {
	p := planWith(t, "SELECT sale_id, qty FROM sales", plan.DefaultOptions())
	f := newFused(p)
	if f == nil {
		t.Fatal("plan did not compile to a fused scan")
	}
	// Let the scan append enough rows to draw real pages from the arena,
	// then blow up mid-stream: the pages already inside `out` are exactly
	// what leaked before run released on the unwind path.
	orig := f.project
	rows := 0
	f.project = func(src, dst []byte) {
		if rows++; rows > 600 {
			panic("sabotaged projector")
		}
		orig(src, dst)
	}
	before, _ := storage.ArenaStats()
	mustPanic(t, func() { f.run(nil) })
	if after, _ := storage.ArenaStats(); after != before {
		t.Errorf("arena pages leaked across contained panic: inUse %d -> %d", before, after)
	}
}

func TestFusedJoinRunReleasesArenaOnPanic(t *testing.T) {
	p := planWith(t, "SELECT sale_id, cat FROM sales, prods WHERE sales.prod = prods.prod_id ORDER BY sale_id", plan.DefaultOptions())
	f := newFusedJoin(p)
	if f == nil {
		t.Fatal("plan did not compile to a fused join")
	}
	if f.sortCmp == nil {
		t.Fatal("ORDER BY plan has no sort comparator")
	}
	// The join itself completes (its result holds arena pages); the sort
	// comparator then panics before SortTablePooled appends anything, so
	// any post-test imbalance is the join result failing to release.
	f.sortCmp = func(a, b []byte) int { panic("sabotaged comparator") }
	before, _ := storage.ArenaStats()
	mustPanic(t, func() { f.run(nil) })
	if after, _ := storage.ArenaStats(); after != before {
		t.Errorf("arena pages leaked across contained panic: inUse %d -> %d", before, after)
	}
}
