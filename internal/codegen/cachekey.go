package codegen

import (
	"strconv"

	"hique/internal/plan"
	"hique/internal/sql"
)

// CacheKey derives the plan-cache key for a query: the normalised SQL
// token stream (the parameterized *shape* when the caller auto-
// parameterized the statement first), its bind arity, and every other
// input that shapes the compiled artefact — the optimisation level and
// the optimizer options. Catalog state (schemata, statistics, indexes) is
// deliberately NOT part of the key; the cache validates entries against
// the catalogue's version counter instead, so a schema or statistics
// change invalidates every affected plan at once.
//
// The normalised segment is length-prefixed, which makes the key
// injective: without the prefix, a string literal containing "\x00level="
// could forge the key of a different query + options combination.
//
// Computing the key costs one pass of the lexer — no parsing, planning,
// generation, or compilation — which is exactly what a cache hit is
// allowed to spend.
func CacheKey(query string, opts plan.Options, level OptLevel) (string, error) {
	norm, arity, err := sql.NormalizeArity(query)
	if err != nil {
		return "", err
	}
	return CacheKeyNormalized(norm, arity, opts, level), nil
}

// CacheKeyNormalized builds the key from an already-normalized token
// stream and its placeholder arity. The auto-parameterization path holds
// both (sql.NormalizeShape's output is a normalization fixed point), so
// using this variant keeps the cache hit at exactly one lexer pass
// instead of re-lexing the shape.
func CacheKeyNormalized(norm string, arity int, opts plan.Options, level OptLevel) string {
	return string(AppendCacheKey(nil, []byte(norm), arity, opts, level))
}

// AppendCacheKey renders the cache key into dst and returns the extended
// slice: the byte-buffer variant the warm serving path uses with a pooled
// scratch, so a hit computes its key without allocating. The rendering is
// identical to CacheKeyNormalized's.
func AppendCacheKey(dst []byte, norm []byte, arity int, opts plan.Options, level OptLevel) []byte {
	dst = strconv.AppendInt(dst, int64(len(norm)), 10)
	dst = append(dst, ':')
	dst = append(dst, norm...)
	dst = append(dst, "\x00argc="...)
	dst = strconv.AppendInt(dst, int64(arity), 10)
	dst = append(dst, "\x00level="...)
	dst = append(dst, level.String()...)
	dst = append(dst, "\x00teams="...)
	dst = strconv.AppendBool(dst, opts.EnableJoinTeams)
	dst = append(dst, "\x00l2="...)
	dst = strconv.AppendInt(dst, int64(opts.L2CacheBytes), 10)
	dst = append(dst, "\x00finepart="...)
	dst = strconv.AppendInt(dst, int64(opts.FinePartitionMaxValues), 10)
	dst = append(dst, "\x00par="...)
	dst = strconv.AppendInt(dst, int64(opts.Parallelism), 10)
	if opts.ForceJoinAlg != nil {
		dst = append(dst, "\x00joinalg="...)
		dst = strconv.AppendInt(dst, int64(*opts.ForceJoinAlg), 10)
	}
	if opts.ForceAggAlg != nil {
		dst = append(dst, "\x00aggalg="...)
		dst = strconv.AppendInt(dst, int64(*opts.ForceAggAlg), 10)
	}
	return dst
}
