package codegen

import (
	"fmt"
	"strings"

	"hique/internal/plan"
	"hique/internal/sql"
)

// CacheKey derives the plan-cache key for a query: the normalised SQL
// token stream joined with every other input that shapes the compiled
// artefact — the optimisation level and the optimizer options. Catalog
// state (schemata, statistics, indexes) is deliberately NOT part of the
// key; the cache validates entries against the catalogue's version
// counter instead, so a schema or statistics change invalidates every
// affected plan at once.
//
// Computing the key costs one pass of the lexer — no parsing, planning,
// generation, or compilation — which is exactly what a cache hit is
// allowed to spend.
func CacheKey(query string, opts plan.Options, level OptLevel) (string, error) {
	norm, err := sql.Normalize(query)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(len(norm) + 64)
	b.WriteString(norm)
	b.WriteString("\x00level=")
	b.WriteString(level.String())
	fmt.Fprintf(&b, "\x00teams=%t\x00l2=%d\x00finepart=%d",
		opts.EnableJoinTeams, opts.L2CacheBytes, opts.FinePartitionMaxValues)
	if opts.ForceJoinAlg != nil {
		fmt.Fprintf(&b, "\x00joinalg=%d", *opts.ForceJoinAlg)
	}
	if opts.ForceAggAlg != nil {
		fmt.Fprintf(&b, "\x00aggalg=%d", *opts.ForceAggAlg)
	}
	return b.String(), nil
}
