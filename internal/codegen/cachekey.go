package codegen

import (
	"fmt"
	"strings"

	"hique/internal/plan"
	"hique/internal/sql"
)

// CacheKey derives the plan-cache key for a query: the normalised SQL
// token stream (the parameterized *shape* when the caller auto-
// parameterized the statement first), its bind arity, and every other
// input that shapes the compiled artefact — the optimisation level and
// the optimizer options. Catalog state (schemata, statistics, indexes) is
// deliberately NOT part of the key; the cache validates entries against
// the catalogue's version counter instead, so a schema or statistics
// change invalidates every affected plan at once.
//
// The normalised segment is length-prefixed, which makes the key
// injective: without the prefix, a string literal containing "\x00level="
// could forge the key of a different query + options combination.
//
// Computing the key costs one pass of the lexer — no parsing, planning,
// generation, or compilation — which is exactly what a cache hit is
// allowed to spend.
func CacheKey(query string, opts plan.Options, level OptLevel) (string, error) {
	norm, arity, err := sql.NormalizeArity(query)
	if err != nil {
		return "", err
	}
	return CacheKeyNormalized(norm, arity, opts, level), nil
}

// CacheKeyNormalized builds the key from an already-normalized token
// stream and its placeholder arity. The auto-parameterization path holds
// both (sql.NormalizeShape's output is a normalization fixed point), so
// using this variant keeps the cache hit at exactly one lexer pass
// instead of re-lexing the shape.
func CacheKeyNormalized(norm string, arity int, opts plan.Options, level OptLevel) string {
	var b strings.Builder
	b.Grow(len(norm) + 80)
	fmt.Fprintf(&b, "%d:", len(norm))
	b.WriteString(norm)
	fmt.Fprintf(&b, "\x00argc=%d", arity)
	b.WriteString("\x00level=")
	b.WriteString(level.String())
	fmt.Fprintf(&b, "\x00teams=%t\x00l2=%d\x00finepart=%d",
		opts.EnableJoinTeams, opts.L2CacheBytes, opts.FinePartitionMaxValues)
	if opts.ForceJoinAlg != nil {
		fmt.Fprintf(&b, "\x00joinalg=%d", *opts.ForceJoinAlg)
	}
	if opts.ForceAggAlg != nil {
		fmt.Fprintf(&b, "\x00aggalg=%d", *opts.ForceAggAlg)
	}
	return b.String()
}
