package codegen

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hique/internal/catalog"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	rng := rand.New(rand.NewSource(11))

	sales := storage.NewTable("sales", types.NewSchema(
		types.Col("sale_id", types.Int), types.Col("prod", types.Int),
		types.Col("amount", types.Float), types.Col("qty", types.Int)))
	for i := 0; i < 4000; i++ {
		sales.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(rng.Intn(40))),
			types.FloatDatum(float64(rng.Intn(500))/4), types.IntDatum(int64(1+rng.Intn(9))))
	}
	cat.Register(sales)

	prods := storage.NewTable("prods", types.NewSchema(
		types.Col("prod_id", types.Int), types.Col("cat", types.Int)))
	for i := 0; i < 40; i++ {
		prods.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i%5)))
	}
	cat.Register(prods)
	return cat
}

func mustPlan(t *testing.T, cat *catalog.Catalog, q string) *plan.Plan {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// rowsAsStrings canonicalises a result for comparison across executors.
func rowsAsStrings(t *storage.Table) []string {
	var out []string
	s := t.Schema()
	t.Scan(func(tp []byte) bool {
		var parts []string
		for i := 0; i < s.NumColumns(); i++ {
			d := s.GetDatum(tp, i)
			if d.Kind == types.Float {
				parts = append(parts, fmt.Sprintf("%.6f", d.F))
			} else {
				parts = append(parts, d.String())
			}
		}
		out = append(out, strings.Join(parts, "|"))
		return true
	})
	return out
}

var testQueries = []string{
	"SELECT sale_id, amount FROM sales WHERE qty > 5",
	"SELECT sale_id, amount * 2 AS dbl FROM sales WHERE prod = 3",
	"SELECT prod, SUM(amount) AS total, COUNT(*) AS n FROM sales GROUP BY prod ORDER BY prod",
	"SELECT prod, SUM(amount * (1 + amount)) AS weird FROM sales GROUP BY prod ORDER BY weird DESC LIMIT 5",
	"SELECT cat, SUM(amount) AS total FROM sales, prods WHERE sales.prod = prods.prod_id GROUP BY cat ORDER BY cat",
	"SELECT sale_id, cat FROM sales, prods WHERE sales.prod = prods.prod_id AND qty = 9 ORDER BY sale_id LIMIT 20",
	"SELECT qty, AVG(amount) AS mean, MIN(sale_id), MAX(sale_id) FROM sales GROUP BY qty ORDER BY qty",
}

func TestO0AndO2Agree(t *testing.T) {
	cat := testCatalog()
	for _, q := range testQueries {
		p := mustPlan(t, cat, q)
		var results [][]string
		for _, level := range []OptLevel{OptO0, OptO2} {
			cq, err := Generate(p, level)
			if err != nil {
				t.Fatalf("%s: Generate(%v): %v", q, level, err)
			}
			out, err := cq.Run()
			if err != nil {
				t.Fatalf("%s: Run(%v): %v", q, level, err)
			}
			rows := rowsAsStrings(out)
			// Normalise order for queries without ORDER BY.
			if p.Sort == nil {
				sortStrings(rows)
			}
			results = append(results, rows)
		}
		if len(results[0]) != len(results[1]) {
			t.Fatalf("%s: O0 rows %d != O2 rows %d", q, len(results[0]), len(results[1]))
		}
		for i := range results[0] {
			if results[0][i] != results[1][i] {
				t.Fatalf("%s: row %d differs:\n  O0: %s\n  O2: %s", q, i, results[0][i], results[1][i])
			}
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestGeneratedSourceParses(t *testing.T) {
	cat := testCatalog()
	for _, q := range testQueries {
		p := mustPlan(t, cat, q)
		if _, err := Generate(p, OptO2); err != nil {
			t.Errorf("%s: %v", q, err)
		}
	}
}

func TestGeneratedSourceStructure(t *testing.T) {
	cat := testCatalog()
	p := mustPlan(t, cat, "SELECT cat, SUM(amount) AS total FROM sales, prods WHERE sales.prod = prods.prod_id GROUP BY cat ORDER BY cat")
	src := EmitSource(p)
	for _, want := range []string{
		"package query",
		"stageJoin0Input0",
		"stageJoin0Input1",
		"evalJoin0",
		"evalAggregate",
		"evalOrderBy",
		"EvaluateQuery",
		"DO NOT EDIT",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	// Offsets must be baked in as literals: no schema lookups at run time.
	if strings.Contains(src, "Schema()") {
		t.Error("generated source contains runtime schema lookups")
	}
}

func TestSourceDeterminism(t *testing.T) {
	cat := testCatalog()
	p := mustPlan(t, cat, testQueries[2])
	a := EmitSource(p)
	b := EmitSource(p)
	if a != b {
		t.Error("EmitSource is not deterministic")
	}
}

func TestTimingsPopulated(t *testing.T) {
	cat := testCatalog()
	p := mustPlan(t, cat, testQueries[4])
	cq, err := Generate(p, OptO2)
	if err != nil {
		t.Fatal(err)
	}
	if cq.Prep.SourceBytes <= 0 {
		t.Error("SourceBytes not recorded")
	}
	if cq.Prep.Generate <= 0 || cq.Prep.Compile <= 0 {
		t.Errorf("timings not recorded: %+v", cq.Prep)
	}
	if cq.Prep.SourceBytes != len(cq.Source) {
		t.Error("SourceBytes mismatch")
	}
}

func TestOptLevelString(t *testing.T) {
	if OptO0.String() != "-O0" || OptO2.String() != "-O2" {
		t.Error("OptLevel strings wrong")
	}
}

func TestMapAggregationSourceHasOffsetFormula(t *testing.T) {
	cat := testCatalog()
	// prod has 40 distinct values and qty 9: map aggregation on both.
	p := mustPlan(t, cat, "SELECT prod, qty, COUNT(*) FROM sales GROUP BY prod, qty")
	if p.Agg == nil || p.Agg.Alg != plan.MapAggregation {
		t.Skipf("planner chose %v; map expected", p.Agg.Alg)
	}
	src := EmitSource(p)
	if !strings.Contains(src, "offset formula") {
		t.Error("map aggregation source missing offset formula comment")
	}
	if !strings.Contains(src, "DirLookup") {
		t.Error("map aggregation source missing directory lookups")
	}
}
