package codegen

import (
	"testing"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/tpch"
)

// chainQuery joins fact→dim and fact→ext on distinct key classes, so the
// planner emits two binary joins instead of one join team.
const chainQuery = "SELECT f.id, x.w FROM fact f, dim d, ext x WHERE f.grp = d.id AND x.id = f.id ORDER BY f.id"

// TestFusedChainSelection pins which N-way shapes the chained pipeline
// claims and which it declines to the general walk.
func TestFusedChainSelection(t *testing.T) {
	cat := fusedJoinCatalog(t)
	fused := []string{
		chainQuery,
		"SELECT d.label, SUM(x.w) AS s FROM fact f, dim d, ext x WHERE f.grp = d.id AND x.id = f.id GROUP BY d.label ORDER BY d.label",
		"SELECT COUNT(*) AS n FROM fact f, dim d, ext x WHERE f.grp = d.id AND x.id = f.id",
	}
	for _, q := range fused {
		p := buildPlan(t, cat, q)
		if len(p.Joins) < 2 {
			t.Fatalf("%q planned %d join(s); the chain test needs at least 2", q, len(p.Joins))
		}
		if newFusedChain(p) == nil {
			t.Errorf("fused chain declined %q", q)
		}
	}
	declined := []string{
		// A join team: one descriptor with three inputs, not a chain.
		"SELECT f.id FROM fact f, dim d, ext x WHERE f.grp = d.id AND d.id = x.id",
		// HAVING filters between aggregation and sort; no fused slot.
		"SELECT d.label, COUNT(*) AS n FROM fact f, dim d, ext x WHERE f.grp = d.id AND x.id = f.id GROUP BY d.label HAVING n > 1",
		// Parameterized: the prefix runs core's descriptors unbound.
		"SELECT f.id, x.w FROM fact f, dim d, ext x WHERE f.grp = d.id AND x.id = f.id AND f.price > ?",
	}
	for _, q := range declined {
		p := buildPlan(t, cat, q)
		if newFusedChain(p) != nil {
			t.Errorf("fused chain accepted %q", q)
		}
	}
}

// TestFusedChainMatchesGeneralWalk runs the chain pipeline against the
// general walk (SetFusion(false)) and requires byte-identical rows.
func TestFusedChainMatchesGeneralWalk(t *testing.T) {
	cat := fusedJoinCatalog(t)
	p := buildPlan(t, cat, chainQuery)
	if newFusedChain(p) == nil {
		t.Fatal("plan unexpectedly ineligible for the chain pipeline")
	}
	q, err := Generate(p, OptO2)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Fused {
		t.Fatal("Generate did not select the chain pipeline")
	}
	want, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer want.Release()

	SetFusion(false)
	defer SetFusion(true)
	gq, err := Generate(p, OptO2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := gq.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer got.Release()

	if want.NumRows() != got.NumRows() {
		t.Fatalf("chain %d rows, general %d", want.NumRows(), got.NumRows())
	}
	for r := 0; r < want.NumRows(); r++ {
		if string(want.Tuple(r)) != string(got.Tuple(r)) {
			t.Fatalf("row %d: chain %x, general %x", r, want.Tuple(r), got.Tuple(r))
		}
	}
}

// TestFusedChainClaimsTPCHJoins proves the chained pipeline actually
// serves Q3's three-way and Q10's four-way join at -O2 — without this
// the golden differential test could pass vacuously through the general
// fallback.
func TestFusedChainClaimsTPCHJoins(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.005, Seed: 42})
	for _, n := range []int{3, 10} {
		text, err := tpch.Query(n)
		if err != nil {
			t.Fatal(err)
		}
		stmt, err := sql.Parse(text)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		p, err := plan.Build(stmt, cat)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		if len(p.Joins) < 2 {
			t.Fatalf("Q%d planned %d join(s)", n, len(p.Joins))
		}
		q, err := Generate(p, OptO2)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		if !q.Fused {
			t.Errorf("Q%d did not compile to the chained fused pipeline", n)
		}
	}
}
