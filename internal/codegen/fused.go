// The fused fast path: for a single-table SELECT — point or range
// lookup, residual filters, projection, optional LIMIT — the generator
// emits one pipeline that goes index-probe → filter → project directly
// into the result table. This is the holistic fusion of the paper's
// Listing 1 extended across the whole plan: no staged intermediate, no
// per-execution closure compilation, no separate materialisation pass.
// The planner's descriptors are unchanged — the fast path is an
// execution strategy the generator selects when the plan's shape allows
// it, never a semantic fork, so every engine keeps byte-identical
// results.

package codegen

import (
	"bytes"
	"time"

	"hique/internal/btree"
	"hique/internal/core"
	"hique/internal/morsel"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// fusedPred is one compiled filter: offsets and operator baked at
// generation time, the comparison value either baked (slot < 0) or read
// from the bind vector at execution time.
type fusedPred struct {
	off  int
	op   sql.CmpOp
	kind types.Kind
	slot int
	i    int64
	f    float64
	s    []byte // baked string value, zero-padded to the column width
	// sOver marks a baked value wider than the column: s then holds the
	// width-length prefix and an equal prefix compares as field < value.
	sOver bool
}

// fusedQuery is the compiled single-table pipeline.
type fusedQuery struct {
	p     *plan.Plan
	base  int
	out   *types.Schema
	width int // input tuple width
	preds []fusedPred
	// project writes one output tuple from an input tuple; compiled once
	// at generation time (it does not depend on the bind vector).
	project func(src, dst []byte)
	// idx, when non-nil, replaces the scan with fractal B+-tree lookups;
	// the matching filter stays in preds, so a dropped index degrades to
	// the scan without changing results.
	idx     *plan.IndexScanSpec
	idxSlot int // bind slot of the probe key, -1 when baked
	limit   int
	// traced is baked at generation time: EXPLAIN ANALYZE compiles its
	// own pipeline against a plan carrying a Trace, so the serving path's
	// cached pipelines pay nothing — not even a pointer load — per run.
	traced bool
	// par is the worker target for the scan loop, resolved at generation
	// time from the plan's Parallelism and the catalogued table size
	// (parallelWorkers); 1 compiles the serial loop. Index probes stay
	// serial — par applies to the scan, including the dropped-index
	// fallback.
	par int
}

// newFused compiles the fused pipeline for a plan, or returns nil when
// the plan's shape needs the general operator walk: joins, aggregation,
// ordering, staging actions, or a filter the pipeline cannot evaluate
// allocation-free (a parameterized string comparison needs per-execution
// padding, so it falls back).
func newFused(p *plan.Plan) *fusedQuery {
	if len(p.Joins) != 0 || p.Agg != nil || p.Sort != nil || p.Final == nil {
		return nil
	}
	st := p.Final
	if st.Action != plan.StageNone || st.Input.Base < 0 || st.Input.Base >= len(p.Tables) {
		return nil
	}
	in := p.Tables[st.Input.Base].Entry.Table.Schema()
	for i := range st.Cols {
		c := &st.Cols[i]
		if c.Source >= 0 && c.Compute == nil {
			continue
		}
		switch c.Compute.Kind() {
		case types.Int, types.Float, types.Date:
		default:
			return nil
		}
	}

	f := &fusedQuery{
		p:       p,
		base:    st.Input.Base,
		out:     st.Schema,
		width:   in.TupleSize(),
		idxSlot: -1,
		limit:   p.Limit,
		traced:  p.Trace != nil,
		par:     parallelWorkers(p, p.Tables[st.Input.Base].Entry.Stats.Rows),
	}
	preds, ok := compileFusedPreds(in, st.Filters)
	if !ok {
		return nil
	}
	f.preds = preds
	if st.IndexScan != nil {
		f.idx = st.IndexScan
		if slot, ok := st.IndexScan.Slot(); ok {
			f.idxSlot = slot
		}
	}
	f.project = core.MakeProjector(in, st.Cols, st.Schema)
	return f
}

// run executes the pipeline against a bind vector. The result table
// draws its pages from the storage arena; the caller owns it and
// releases it after draining (hique's materialisation path does).
func (f *fusedQuery) run(params []types.Datum) (*storage.Table, error) {
	if err := f.p.CheckArgs(params); err != nil {
		return nil, err
	}
	out := storage.NewPooledTable("result", f.out)
	if f.limit == 0 {
		return out, nil
	}
	// Contained panics in the scan/probe below unwind past the caller's
	// Release (it never receives out); release here so the arena balance
	// survives the error path.
	done := false
	defer func() {
		if !done {
			out.Release()
		}
	}()
	var t0 time.Time
	if f.traced {
		t0 = time.Now()
	}
	t := f.p.Tables[f.base].Entry.Table
	probed := false
	if f.idx != nil {
		entry := f.p.Tables[f.base].Entry
		if tree := entry.Index(f.idx.Column); tree != nil {
			f.probe(tree, t, params, out)
			probed = true
		}
		// Index dropped since planning: the equality filter is still in
		// preds, so the scan below stays correct.
	}
	if !probed {
		if f.par > 1 {
			f.scanPar(t, params, out)
		} else {
			f.scan(t, params, out)
		}
	}
	if f.traced {
		f.p.Trace.Observe(plan.TraceStageProject,
			int64(t.NumRows()), int64(out.NumRows()), time.Since(t0))
	}
	done = true
	return out, nil
}

// probe fetches the matching tuples through the index, re-applies the
// residual predicates, and projects straight into the result.
func (f *fusedQuery) probe(tree *btree.Tree, t *storage.Table, params []types.Datum, out *storage.Table) {
	key := f.idx.Value.I
	if f.idxSlot >= 0 {
		key = params[f.idxSlot].I
	}
	tree.Range(key, key, func(_ int64, rid btree.RID) bool {
		if int(rid.Page) >= t.NumPages() {
			return true
		}
		page := t.Page(int(rid.Page))
		if int(rid.Slot) >= page.NumTuples() {
			return true
		}
		tup := page.Tuple(int(rid.Slot))
		if !f.match(tup, params) {
			return true
		}
		f.project(tup, out.AppendSlot())
		return f.limit < 0 || out.NumRows() < f.limit
	})
}

// scan is the fused full-scan loop: direct page iteration with offset
// arithmetic, the Listing 1 pattern, specialised further for the
// dominant serving shape (a single integer predicate).
func (f *fusedQuery) scan(t *storage.Table, params []types.Datum, out *storage.Table) {
	w := f.width
	if len(f.preds) == 1 && (f.preds[0].kind == types.Int || f.preds[0].kind == types.Date) {
		pr := &f.preds[0]
		v := pr.i
		if pr.slot >= 0 {
			v = params[pr.slot].I
		}
		off := pr.off
		for pi := 0; pi < t.NumPages(); pi++ {
			pg := t.Page(pi)
			n := pg.NumTuples()
			data := pg.Data()
			for i, base := 0, 0; i < n; i, base = i+1, base+w {
				if !cmpOrdered(types.GetInt(data, base+off), v, pr.op) {
					continue
				}
				f.project(data[base:base+w:base+w], out.AppendSlot())
				if f.limit >= 0 && out.NumRows() >= f.limit {
					return
				}
			}
		}
		return
	}
	for pi := 0; pi < t.NumPages(); pi++ {
		pg := t.Page(pi)
		n := pg.NumTuples()
		data := pg.Data()
		for i, base := 0, 0; i < n; i, base = i+1, base+w {
			tup := data[base : base+w : base+w]
			if !f.match(tup, params) {
				continue
			}
			f.project(tup, out.AppendSlot())
			if f.limit >= 0 && out.NumRows() >= f.limit {
				return
			}
		}
	}
}

// scanPar is scan split into page-range morsels executed by up to f.par
// workers: every worker projects its matches into a private arena,
// records each morsel's byte range, and the caller stitches the ranges
// back in morsel order — byte-identical to the serial scan, LIMIT
// included (a morsel emits at most limit rows, and once the completed
// morsel prefix covers the limit the unclaimed tail is cancelled).
func (f *fusedQuery) scanPar(t *storage.Table, params []types.Datum, out *storage.Table) {
	per, n := pageMorsels(t)
	if n < 2 {
		// Table shrank below one morsel since planning: the serial loop
		// is strictly cheaper.
		f.scan(t, params, out)
		return
	}
	ph := parPhasePool.Get().(*parPhase)
	ph.reset(n, f.par, f.limit)
	w, outW := f.width, f.out.TupleSize()
	pages := t.NumPages()
	// The dominant serving shape gets the same specialisation as the
	// serial loop: a single integer predicate resolved once, not per
	// tuple.
	var fast *fusedPred
	var fastV int64
	if len(f.preds) == 1 && (f.preds[0].kind == types.Int || f.preds[0].kind == types.Date) {
		fast = &f.preds[0]
		fastV = fast.i
		if fast.slot >= 0 {
			fastV = params[fast.slot].I
		}
	}
	body := func(wi int) {
		wk := &ph.workers[wi]
		for {
			m, ok := ph.queue.Next()
			if !ok {
				return
			}
			mo := parMorsel{worker: int32(wi), start: len(wk.arena)}
			hi := (m + 1) * per
			if hi > pages {
				hi = pages
			}
		morselPages:
			for pi := m * per; pi < hi; pi++ {
				pg := t.Page(pi)
				nT := pg.NumTuples()
				data := pg.Data()
				for i, base := 0, 0; i < nT; i, base = i+1, base+w {
					tup := data[base : base+w : base+w]
					if fast != nil {
						if !cmpOrdered(types.GetInt(tup, fast.off), fastV, fast.op) {
							continue
						}
					} else if !f.match(tup, params) {
						continue
					}
					off := len(wk.arena)
					wk.arena = extendArena(wk.arena, outW)
					f.project(tup, wk.arena[off:off+outW])
					mo.rows++
					if f.limit >= 0 && mo.rows >= f.limit {
						break morselPages
					}
				}
			}
			mo.end = len(wk.arena)
			ph.complete(m, mo)
		}
	}
	ph.run(f.p.Pool, f.par, body)
	ph.stitchRows(out, outW, f.limit)
	ph.finish(f.p.Trace, "scan")
	morsel.CountQuery()
	parPhasePool.Put(ph)
}

// compileFusedPreds lowers a stage's filters to the baked-offset form the
// fused pipelines evaluate. ok is false when a filter needs per-execution
// allocation — a parameterized string comparison requires padding the
// bound value to the column width — in which case the caller declines
// fusion and the general path handles the plan.
func compileFusedPreds(in *types.Schema, filters []plan.Filter) ([]fusedPred, bool) {
	var preds []fusedPred
	for _, flt := range filters {
		c := in.Column(flt.Col)
		pr := fusedPred{off: in.Offset(flt.Col), op: flt.Op, kind: c.Kind, slot: -1}
		if slot, ok := flt.Slot(); ok {
			if c.Kind == types.String {
				return nil, false
			}
			pr.slot = slot
		} else {
			switch c.Kind {
			case types.Int, types.Date:
				pr.i = flt.Val.I
			case types.Float:
				pr.f = flt.Val.F
			case types.String:
				if len(flt.Val.S) > c.Size {
					// Wider than the column: never equal, and the stored
					// field (a proper prefix at best) sorts strictly below
					// the value. sOver folds that into the comparison.
					pr.s = []byte(flt.Val.S[:c.Size])
					pr.sOver = true
				} else {
					pr.s = make([]byte, c.Size)
					copy(pr.s, flt.Val.S)
				}
			default:
				return nil, false
			}
		}
		preds = append(preds, pr)
	}
	return preds, true
}

// matchPreds evaluates a compiled predicate conjunction against one
// tuple, reading parameterized comparison values from the bind vector.
func matchPreds(preds []fusedPred, tup []byte, params []types.Datum) bool {
	for i := range preds {
		pr := &preds[i]
		switch pr.kind {
		case types.Int, types.Date:
			v := pr.i
			if pr.slot >= 0 {
				v = params[pr.slot].I
			}
			if !cmpOrdered(types.GetInt(tup, pr.off), v, pr.op) {
				return false
			}
		case types.Float:
			v := pr.f
			if pr.slot >= 0 {
				v = params[pr.slot].F
			}
			if !cmpOrdered(types.GetFloat(tup, pr.off), v, pr.op) {
				return false
			}
		case types.String:
			c := bytes.Compare(tup[pr.off:pr.off+len(pr.s)], pr.s)
			if c == 0 && pr.sOver {
				c = -1
			}
			if !pr.op.Holds(c) {
				return false
			}
		}
	}
	return true
}

// match evaluates the predicate conjunction against one tuple.
func (f *fusedQuery) match(tup []byte, params []types.Datum) bool {
	return matchPreds(f.preds, tup, params)
}

func cmpOrdered[T int64 | float64](x, v T, op sql.CmpOp) bool {
	switch op {
	case sql.CmpEq:
		return x == v
	case sql.CmpNe:
		return x != v
	case sql.CmpLt:
		return x < v
	case sql.CmpLe:
		return x <= v
	case sql.CmpGt:
		return x > v
	default:
		return x >= v
	}
}
