// The fused join+aggregation pipeline: the paper's headline claim is
// that holistically generated code for *whole* plans — joins and grouped
// aggregation fused into tight loops, not just single-table scans —
// beats iterator and vectorised engines. This file extends the PR 3 fast
// path past single tables: a two-table equi-join plan (merge join for
// index-ordered inputs, hybrid hash-sort-merge for unsorted ones, per
// the planner's staged-algorithm selection) with optional GROUP BY
// aggregation, ORDER BY, and LIMIT compiles into one
// probe→join→filter→aggregate→emit pipeline.
//
// Like the single-table pipeline, this is an execution strategy, never a
// semantic fork: every loop replicates the operator algorithms of
// internal/core exactly — same staging scan order, same sort, same
// partition hash and count, same merge traversal, same accumulator
// arithmetic — so fused results are byte-identical to the general
// engines, row order included. What the fusion removes is materialised
// state and per-execution setup: no Plan.Bind copy (parameters are read
// from the bind vector), no staged intermediate tables (tuples stage
// into a pooled flat arena), no join-output table (joined tuples feed
// the aggregation or the final projection directly), and a pooled
// hash/partition scratch sized from the catalogue's cardinality
// estimates.

package codegen

import (
	"math"
	"sync"
	"time"

	"hique/internal/btree"
	"hique/internal/core"
	"hique/internal/morsel"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// copyRange is one coalesced byte-range copy from a staged input tuple
// into the assembled join tuple (the inlined add_to_result of the
// paper's Listing 2).
type copyRange struct{ srcOff, dstOff, size int }

// fusedSide is one compiled join input: how to fetch base tuples (scan,
// index probe, or ordered index traversal), the residual predicates, the
// staging projection, and the key/partition geometry.
type fusedSide struct {
	base int // index into Plan.Tables; -1 for a chain-fed side
	// chain marks a side staged from the previous join's materialised
	// output (fusedChain's final pipeline) instead of a base table; the
	// table arrives through the execution scratch.
	chain   bool
	preds   []fusedPred
	project func(src, dst []byte)
	schema  *types.Schema
	width   int // staged tuple width
	inWidth int // base tuple width

	key    int // join-key column in the staged schema
	keyCmp core.Compare

	// idx, when non-nil, replaces the scan with equality probes through
	// the fractal B+-tree (the stage's IndexScan spec); idxSlot is the
	// bind slot of the probe key, -1 when baked.
	idx     *plan.IndexScanSpec
	idxSlot int

	// orderedCol, when non-empty, names a base column whose B+-tree
	// yields the staged tuples already in join-key order (merge join, no
	// filters, unique key — ties would otherwise need the sort's
	// permutation), eliding the sort entirely.
	orderedCol string

	// Partitioning (hybrid and fine joins): route maps a staged tuple to
	// its partition — hash-and-modulo for coarse, value-directory binary
	// search for fine (-1 drops the tuple: a key outside the directory
	// cannot join). nil for merge join.
	partitions int
	route      func(t []byte) int32

	// estRows is the optimizer's post-filter cardinality estimate; the
	// staging arena pre-sizes from it.
	estRows int

	// par is the staging scan's worker target, resolved at generation
	// time from the plan's Parallelism and the catalogued table size
	// (parallelWorkers); 1 compiles the serial loop. Index probes and
	// ordered traversals stay serial.
	par int
}

// aggWrite emits one aggregate's final value into an output tuple slot
// (the compiled form of core's aggResult).
type aggWrite struct {
	fn      sql.AggFunc
	star    bool
	idx     int // aggregate position (accumulator index)
	dstOff  int
	isFloat bool // the staged argument column is Float
}

// fusedAgg is the compiled aggregation tail of a fused join: the staging
// projection from the join tuple, the grouping comparator, the staging
// action geometry, and the accumulator update/emit programs.
type fusedAgg struct {
	project  func(src, dst []byte) // join tuple -> staged agg tuple
	schema   *types.Schema
	width    int
	nAggs    int
	groupCmp core.Compare

	// Exactly one of the four modes applies, mirroring the algorithm and
	// the agg input stage's action: stream (StageNone sort aggregation —
	// the interesting-order case: groups close in join emit order),
	// sorted (StageSort), partitioned (StagePartitionCoarse, the hybrid
	// hash-sort strategy), or mapped (map aggregation: the Figure 4
	// offset formula updates flat aggregate arrays inside the join loop,
	// no staging at all).
	stream    bool
	sorted    bool
	sortCmp   core.Compare
	parts     int
	route     func(t []byte) int32
	sortParts bool
	mapped    bool

	// Map-aggregation geometry: one value-directory lookup per grouping
	// attribute, the Figure 4 strides, and the directory datums for group
	// column emission. With a direct tail (every staged aggregation
	// column a plain copy of a join input column), lookups and updates
	// are compiled against the staged *side* tuples instead of a
	// composed aggregation tuple: the group contribution of a side is
	// loop-invariant while that side's tuple is fixed, so the join loop
	// memoises it per side and the inner loop touches only the
	// aggregate-argument bytes.
	direct  bool
	sideLk  [2][]sideLookup
	lookups []func(t []byte) int32 // composed-tuple fallback
	strides []int
	nGroups int
	dirCols []mapGroupCol

	updates    []func(st *aggState, t []byte)
	mapUpdates []sideUpdate
	copies     []copyRange // rep tuple -> output tuple (group columns)
	writes     []aggWrite

	estRows int
}

// sideLookup is one group-directory probe bound to a staged side tuple,
// pre-multiplied by its Figure 4 stride.
type sideLookup struct {
	fn     func(t []byte) int32
	stride int32
}

// sideUpdate is one aggregate update bound to its source tuple: a staged
// side (0/1) under a direct tail, or the composed aggregation tuple (-1).
type sideUpdate struct {
	side int8
	fn   func(m *mapState, base int, t []byte)
}

// mapGroupCol emits one group column of a map aggregation from the
// decoded directory indexes.
type mapGroupCol struct {
	dir    []types.Datum
	refIdx int // index into the decoded idxs (GroupCols position)
	dstOff int
	kind   types.Kind
	size   int
}

// mapState is the pooled flat-array state of a fused map aggregation
// (core's RunMapAgg arrays, recycled across executions).
type mapState struct {
	sumI, cnt, minI, maxI []int64
	sumF, minF, maxF      []float64
	tuples                []int64
	idxs                  []int
}

func (m *mapState) init(groups, aggs, groupCols int) {
	n := groups * aggs
	m.sumI = growZeroI(m.sumI, n, 0)
	m.cnt = growZeroI(m.cnt, n, 0)
	m.minI = growZeroI(m.minI, n, math.MaxInt64)
	m.maxI = growZeroI(m.maxI, n, math.MinInt64)
	m.sumF = growZeroF(m.sumF, n, 0)
	m.minF = growZeroF(m.minF, n, math.Inf(1))
	m.maxF = growZeroF(m.maxF, n, math.Inf(-1))
	m.tuples = growZeroI(m.tuples, groups, 0)
	if cap(m.idxs) < groupCols {
		m.idxs = make([]int, groupCols)
	}
	m.idxs = m.idxs[:groupCols]
}

func growZeroI(s []int64, n int, v int64) []int64 {
	if cap(s) < n {
		s = make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

func growZeroF(s []float64, n int, v float64) []float64 {
	if cap(s) < n {
		s = make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

// aggState is the per-execution accumulator state for one open group,
// drawn from the pooled join scratch. Slices are indexed by aggregate
// position; reset values mirror core's aggAccum exactly so MIN/MAX of
// any non-empty group agree bit-for-bit.
type aggState struct {
	sumI, cnt, minI, maxI []int64
	sumF, minF, maxF      []float64
	tuples                int64
	rep                   []byte
	open                  bool
	groups                int
}

func (st *aggState) init(n int) {
	if cap(st.sumI) < n {
		st.sumI = make([]int64, n)
		st.cnt = make([]int64, n)
		st.minI = make([]int64, n)
		st.maxI = make([]int64, n)
		st.sumF = make([]float64, n)
		st.minF = make([]float64, n)
		st.maxF = make([]float64, n)
	}
	st.sumI, st.cnt = st.sumI[:n], st.cnt[:n]
	st.minI, st.maxI = st.minI[:n], st.maxI[:n]
	st.sumF, st.minF, st.maxF = st.sumF[:n], st.minF[:n], st.maxF[:n]
	st.groups = 0
	st.open = false
	st.reset()
}

func (st *aggState) reset() {
	for i := range st.sumI {
		st.sumI[i], st.sumF[i], st.cnt[i] = 0, 0, 0
		st.minI[i], st.maxI[i] = math.MaxInt64, math.MinInt64
		st.minF[i], st.maxF[i] = math.Inf(1), math.Inf(-1)
	}
	st.tuples = 0
}

// fusedJoin is the compiled two-table pipeline.
type fusedJoin struct {
	p     *plan.Plan
	alg   plan.JoinAlgorithm
	sides [2]fusedSide

	copySpec  [2][]copyRange // staged tuple -> join tuple
	joinWidth int
	crossCmp  func(b, a []byte) int // side-1 tuple vs side-0 tuple

	// tailCopy, when non-nil, is the fully-fused emit: the tail's output
	// columns are all direct copies, so the pipeline composes the join's
	// column mapping with the tail's projection at generation time and
	// copies staged bytes straight into the output (or aggregation
	// staging) slot — the assembled join tuple never materialises, not
	// even in a buffer. Computed output columns fall back to the
	// joinBuf + projector path.
	tailCopy   [2][]copyRange
	tailDirect bool

	// Non-aggregate tail: the final projection from the join tuple.
	project func(src, dst []byte)
	// Aggregate tail.
	agg *fusedAgg

	outSchema *types.Schema
	sortCmp   core.Compare // final ORDER BY, nil when absent
	limit     int
	// traced is baked at generation time (see fusedQuery.traced): the
	// serving path's cached pipelines never carry a trace, so every
	// trace branch below is statically false for them.
	traced bool
	// parJoin is the partition-wise join loop's worker target (1 =
	// serial). Only partitioned algorithms with a deterministically
	// mergeable tail — map aggregation's flat arrays, or a plain
	// projection stitched in partition order — compile a parallel join
	// phase; merge join and the collect aggregation modes keep their
	// serial loops (see DESIGN.md §8).
	parJoin int
}

// joinScratch holds every transient a fused join execution needs: the
// per-side staging arenas and tuple references, the partition scratch
// (the pooled analogue of a hash table, pre-sized from catalogue
// estimates), the assembled join tuple, the aggregation staging arena,
// and the accumulator state. One scratch serves one execution, drawn
// from a process-wide pool, so a warm analytics query allocates
// (amortised) nothing.
type joinScratch struct {
	arena   [2][]byte
	partIdx [2][]int32
	refs    [2][][]byte
	parts   [2][][][]byte
	counts  [2][]int
	rows    [2]int

	joinBuf []byte
	// pairs counts joined tuples handed to the tail, maintained only on
	// traced executions (join rows-out for EXPLAIN ANALYZE).
	pairs int64

	aggBuf     []byte
	aggArena   []byte
	aggPartIdx []int32
	aggRefs    [][]byte
	aggParts   [][][]byte
	aggCounts  []int
	aggRows    int
	agg        aggState
	mapAgg     mapState

	// Per-side memo of the map aggregation's partial group index: valid
	// while the side's staged tuple (identified by its first byte's
	// address, stable for the whole execution) is unchanged.
	lastPtr [2]*byte
	lastG   [2]int32

	// chainIn feeds a chain-fed side (fusedSide.chain): the previous
	// join's materialised output, set per execution by fusedChain.run.
	chainIn *storage.Table

	// par is the morsel-phase state for parallel executions (staging
	// scans and the partition-wise join loop reuse it sequentially);
	// chunkMaps holds each partition chunk's map-aggregation accumulator
	// until the in-order merge. Both are retained by the pool like every
	// other scratch field.
	par       parPhase
	chunkMaps []*mapState
}

var joinScratchPool = sync.Pool{New: func() any { return new(joinScratch) }}

// newFusedJoin compiles the fused pipeline for a two-table equi-join
// plan, or returns nil when the plan's shape needs the general operator
// walk: more tables, a string computed output, a parameterized string
// filter, or an empty fine-partition value directory (a plan-level
// error the general path reports).
func newFusedJoin(p *plan.Plan) *fusedJoin {
	if len(p.Tables) != 2 || len(p.Joins) != 1 {
		return nil
	}
	// HAVING filters between aggregation and the sort; the fused pipeline
	// has no slot for it, so the general walk (which applies it) executes.
	if len(p.Having) > 0 {
		return nil
	}
	if !p.Joins[0].FusionEligible() {
		return nil
	}
	return compileFusedJoin(p, 0, false)
}

// compileFusedJoin compiles join ji and the plan tail into the fused
// two-input pipeline. The caller has already vetted the structural shape:
// newFusedJoin via Join.FusionEligible for the base-table case, and
// newFusedChain via chainJoinEligible when chained is set — there the
// side reading the previous join's output stages from a materialised
// intermediate supplied at run time, and the whole pipeline stays serial.
func compileFusedJoin(p *plan.Plan, ji int, chained bool) *fusedJoin {
	j := p.Joins[ji]
	f := &fusedJoin{p: p, alg: j.Alg, limit: p.Limit, traced: p.Trace != nil}
	for i := 0; i < 2; i++ {
		st := &j.Inputs[i]
		s := &f.sides[i]
		s.base = st.Input.Base
		var in *types.Schema
		if s.base >= 0 {
			in = p.Tables[s.base].Entry.Table.Schema()
		} else {
			s.chain = true
			in = p.Joins[st.Input.Join].Schema
			if st.IndexScan != nil {
				return nil // index probes only reach base tables
			}
		}
		preds, ok := compileFusedPreds(in, st.Filters)
		if !ok {
			return nil
		}
		s.preds = preds
		s.project = core.MakeProjector(in, st.Cols, st.Schema)
		s.schema = st.Schema
		s.width = st.Schema.TupleSize()
		s.inWidth = in.TupleSize()
		s.key = j.Keys[i]
		s.keyCmp = core.MakeKeyCompare(st.Schema, []int{s.key})
		s.idxSlot = -1
		if st.IndexScan != nil {
			s.idx = st.IndexScan
			if slot, ok := st.IndexScan.Slot(); ok {
				s.idxSlot = slot
			}
		}
		switch st.Action {
		case plan.StageSort:
			// Merge join. If the base table carries a B+-tree on the
			// join-key column, the key is unique, and nothing filters the
			// side, the ordered leaf traversal replaces the sort: tuples
			// arrive in exactly the order the sort would establish
			// (uniqueness means no ties, so no permutation ambiguity).
			if !s.chain && len(st.Filters) == 0 && st.IndexScan == nil {
				entry := p.Tables[s.base].Entry
				kc := st.Cols[s.key].Source
				name := in.Column(kc).Name
				stats := &entry.Stats
				if entry.Index(name) != nil && stats.Rows > 0 &&
					stats.Columns[kc].DistinctValues == stats.Rows {
					s.orderedCol = name
				}
			}
		case plan.StagePartitionCoarse:
			s.partitions = st.Partitions
			s.route = makeCoarseRoute(st.Schema, st.PartitionKey, st.Partitions)
		case plan.StagePartitionFine:
			s.partitions = len(st.FineValues)
			s.route = makeFineRoute(st.Schema, st.PartitionKey, st.FineValues)
			if s.route == nil {
				return nil
			}
		}
		if s.estRows = int(st.EstRows); s.estRows < 0 {
			s.estRows = 0
		}
	}
	f.crossCmp = core.CrossCompare(j.Inputs[1].Schema, j.Keys[1], j.Inputs[0].Schema, j.Keys[0])

	f.joinWidth = j.Schema.TupleSize()
	for pos, o := range j.Out {
		src := j.Inputs[o.Input].Schema
		r := copyRange{src.Offset(o.Col), j.Schema.Offset(pos), src.Column(o.Col).Size}
		specs := f.copySpec[o.Input]
		if n := len(specs); n > 0 {
			last := &specs[n-1]
			if last.srcOff+last.size == r.srcOff && last.dstOff+last.size == r.dstOff {
				last.size += r.size
				continue
			}
		}
		f.copySpec[o.Input] = append(specs, r)
	}

	switch {
	case p.Agg != nil:
		f.tailCopy, f.tailDirect = makeTailCopy(j, p.Agg.Input.Cols, p.Agg.Input.Schema)
		fa := newFusedAgg(p.Agg, j, ji, f.tailDirect)
		if fa == nil {
			return nil
		}
		f.agg = fa
		f.outSchema = p.Agg.Schema
	case p.Final != nil:
		st := p.Final
		if st.Input.Base >= 0 || st.Input.Join != ji ||
			st.Action != plan.StageNone || len(st.Filters) != 0 || st.IndexScan != nil {
			return nil
		}
		if !projectableCols(st.Cols) {
			return nil
		}
		f.project = core.MakeProjector(j.Schema, st.Cols, st.Schema)
		f.outSchema = st.Schema
		f.tailCopy, f.tailDirect = makeTailCopy(j, st.Cols, st.Schema)
	default:
		return nil
	}
	if p.Sort != nil {
		f.sortCmp = core.MakeSortCompare(f.outSchema, p.Sort.Keys)
	}
	// Morsel-driven parallelism, resolved at generation time like every
	// other specialisation here (see fused_join_par.go): staging
	// parallelises per side from the catalogued table size; the
	// partition-wise join loop parallelises when the tail merges
	// deterministically — map aggregation's flat accumulator arrays, or
	// a plain projection stitched in partition order. Merge join and the
	// collect aggregation modes keep their serial loops.
	for i := 0; i < 2; i++ {
		s := &f.sides[i]
		s.par = 1
		if !chained && s.idx == nil && s.orderedCol == "" {
			s.par = parallelWorkers(p, p.Tables[s.base].Entry.Stats.Rows)
		}
	}
	f.parJoin = 1
	if !chained && (f.alg == plan.HybridJoin || f.alg == plan.FinePartitionJoin) &&
		(f.agg == nil || f.agg.mapped) {
		est := f.sides[0].estRows
		if f.sides[1].estRows > est {
			est = f.sides[1].estRows
		}
		f.parJoin = parallelWorkers(p, est)
	}
	return f
}

// projectableCols reports whether every computed output column has a
// kind the compiled projector supports (String computes would need
// per-tuple allocation).
func projectableCols(cols []plan.OutputColumn) bool {
	for i := range cols {
		c := &cols[i]
		if c.Source >= 0 && c.Compute == nil {
			continue
		}
		switch c.Compute.Kind() {
		case types.Int, types.Float, types.Date:
		default:
			return false
		}
	}
	return true
}

// newFusedAgg compiles the aggregation tail over the join's output
// schema, or returns nil when the algorithm or staging shape is outside
// the fused pipeline. tailDirect reports that every staged aggregation
// column is a plain copy of a join input column, which lets map
// aggregation bind its directory lookups and updates to the staged side
// tuples directly.
func newFusedAgg(a *plan.Agg, j *plan.Join, ji int, tailDirect bool) *fusedAgg {
	if !a.FusionEligible() {
		return nil
	}
	st := &a.Input
	if st.Input.Base >= 0 || st.Input.Join != ji || len(st.Filters) != 0 || st.IndexScan != nil {
		return nil
	}
	if !projectableCols(st.Cols) {
		return nil
	}
	fa := &fusedAgg{
		project:  core.MakeProjector(j.Schema, st.Cols, st.Schema),
		schema:   st.Schema,
		width:    st.Schema.TupleSize(),
		nAggs:    len(a.Aggs),
		groupCmp: core.MakeKeyCompare(st.Schema, a.GroupCols),
	}
	switch {
	case a.Alg == plan.MapAggregation:
		fa.mapped = true
		fa.direct = tailDirect
		fa.strides = make([]int, len(a.GroupCols))
		s := 1
		for i := len(a.GroupCols) - 1; i >= 0; i-- {
			fa.strides[i] = s
			s *= len(a.Directories[i])
		}
		fa.nGroups = s
		// sideAt maps a staged column to its (join input, source offset);
		// valid whenever the tail is direct (makeTailCopy proved every
		// column a width-matched copy).
		sideAt := func(col int) (int8, int) {
			o := j.Out[st.Cols[col].Source]
			return int8(o.Input), j.Inputs[o.Input].Schema.Offset(o.Col)
		}
		if fa.direct {
			for i, gc := range a.GroupCols {
				side, off := sideAt(gc)
				c := st.Schema.Column(gc)
				lk := makeDirLookupAt(c.Kind, off, c.Size, a.Directories[i])
				if lk == nil {
					return nil
				}
				fa.sideLk[side] = append(fa.sideLk[side], sideLookup{fn: lk, stride: int32(fa.strides[i])})
			}
		} else {
			fa.lookups = make([]func(t []byte) int32, len(a.GroupCols))
			for i, gc := range a.GroupCols {
				fa.lookups[i] = makeFineRoute(st.Schema, gc, a.Directories[i])
				if fa.lookups[i] == nil {
					return nil
				}
			}
		}
	case st.Action == plan.StageNone:
		fa.stream = true
	case st.Action == plan.StageSort:
		fa.sorted = true
		fa.sortCmp = core.MakeKeyCompare(st.Schema, st.SortKeys)
	case st.Action == plan.StagePartitionCoarse:
		fa.parts = st.Partitions
		fa.sortParts = st.SortPartitions
		fa.sortCmp = core.MakeKeyCompare(st.Schema, st.SortKeys)
		fa.route = makeCoarseRoute(st.Schema, st.PartitionKey, st.Partitions)
	}
	if fa.estRows = int(st.EstRows); fa.estRows < 0 {
		fa.estRows = 0
	}

	// Per-tuple accumulator updates (core.compileUpdates, with the state
	// passed in instead of captured, so one compiled program serves
	// concurrent executions through pooled scratches). Map aggregation
	// gets the flat-array flavour (indexed by group slot, Figure 4),
	// bound to side tuples when the tail is direct.
	if fa.mapped {
		at := func(col int) (int8, int) { return -1, st.Schema.Offset(col) }
		if fa.direct {
			at = func(col int) (int8, int) {
				o := j.Out[st.Cols[col].Source]
				return int8(o.Input), j.Inputs[o.Input].Schema.Offset(o.Col)
			}
		}
		fa.compileMapUpdates(a, st.Schema, at)
	}
	for i := range a.Aggs {
		spec := &a.Aggs[i]
		idx := i
		if spec.Star {
			continue // covered by aggState.tuples
		}
		off := st.Schema.Offset(spec.Col)
		isFloat := st.Schema.Column(spec.Col).Kind == types.Float
		switch spec.Func {
		case sql.AggSum:
			if isFloat {
				fa.updates = append(fa.updates, func(st *aggState, t []byte) { st.sumF[idx] += types.GetFloat(t, off) })
			} else {
				fa.updates = append(fa.updates, func(st *aggState, t []byte) { st.sumI[idx] += types.GetInt(t, off) })
			}
		case sql.AggAvg:
			if isFloat {
				fa.updates = append(fa.updates, func(st *aggState, t []byte) { st.sumF[idx] += types.GetFloat(t, off); st.cnt[idx]++ })
			} else {
				fa.updates = append(fa.updates, func(st *aggState, t []byte) { st.sumF[idx] += float64(types.GetInt(t, off)); st.cnt[idx]++ })
			}
		case sql.AggCount:
			fa.updates = append(fa.updates, func(st *aggState, t []byte) { st.cnt[idx]++ })
		case sql.AggMin:
			if isFloat {
				fa.updates = append(fa.updates, func(st *aggState, t []byte) {
					if v := types.GetFloat(t, off); v < st.minF[idx] {
						st.minF[idx] = v
					}
				})
			} else {
				fa.updates = append(fa.updates, func(st *aggState, t []byte) {
					if v := types.GetInt(t, off); v < st.minI[idx] {
						st.minI[idx] = v
					}
				})
			}
		case sql.AggMax:
			if isFloat {
				fa.updates = append(fa.updates, func(st *aggState, t []byte) {
					if v := types.GetFloat(t, off); v > st.maxF[idx] {
						st.maxF[idx] = v
					}
				})
			} else {
				fa.updates = append(fa.updates, func(st *aggState, t []byte) {
					if v := types.GetInt(t, off); v > st.maxI[idx] {
						st.maxI[idx] = v
					}
				})
			}
		}
	}

	// Group emission program (core.makeGroupWriter / RunMapAgg's output
	// loop): group columns copy from the representative tuple (or decode
	// from the value directories under map aggregation), aggregates
	// finalise from the state.
	for pos, ref := range a.Output {
		dstOff := a.Schema.Offset(pos)
		if ref.IsAgg {
			spec := &a.Aggs[ref.Index]
			isFloat := false
			if spec.Col >= 0 {
				isFloat = st.Schema.Column(spec.Col).Kind == types.Float
			}
			fa.writes = append(fa.writes, aggWrite{fn: spec.Func, star: spec.Star, idx: ref.Index, dstOff: dstOff, isFloat: isFloat})
			continue
		}
		if fa.mapped {
			c := a.Schema.Column(pos)
			fa.dirCols = append(fa.dirCols, mapGroupCol{
				dir: a.Directories[ref.Index], refIdx: ref.Index,
				dstOff: dstOff, kind: c.Kind, size: c.Size,
			})
		} else {
			src := a.GroupCols[ref.Index]
			fa.copies = append(fa.copies, copyRange{st.Schema.Offset(src), dstOff, st.Schema.Column(src).Size})
		}
	}
	return fa
}

// compileMapUpdates builds the flat-array per-tuple updates of map
// aggregation, replicating core.RunMapAgg's accumulation exactly. at
// resolves an aggregate argument's staged column to the tuple the
// update reads: a join side (direct tails) or the composed aggregation
// tuple (side -1).
func (fa *fusedAgg) compileMapUpdates(a *plan.Agg, schema *types.Schema, at func(col int) (int8, int)) {
	for i := range a.Aggs {
		spec := &a.Aggs[i]
		idx := i
		if spec.Star {
			continue // covered by mapState.tuples
		}
		side, off := at(spec.Col)
		isFloat := schema.Column(spec.Col).Kind == types.Float
		var fn func(m *mapState, base int, t []byte)
		switch spec.Func {
		case sql.AggSum:
			if isFloat {
				fn = func(m *mapState, base int, t []byte) { m.sumF[base+idx] += types.GetFloat(t, off) }
			} else {
				fn = func(m *mapState, base int, t []byte) { m.sumI[base+idx] += types.GetInt(t, off) }
			}
		case sql.AggAvg:
			if isFloat {
				fn = func(m *mapState, base int, t []byte) { m.sumF[base+idx] += types.GetFloat(t, off); m.cnt[base+idx]++ }
			} else {
				fn = func(m *mapState, base int, t []byte) {
					m.sumF[base+idx] += float64(types.GetInt(t, off))
					m.cnt[base+idx]++
				}
			}
		case sql.AggCount:
			fn = func(m *mapState, base int, t []byte) { m.cnt[base+idx]++ }
		case sql.AggMin:
			if isFloat {
				fn = func(m *mapState, base int, t []byte) {
					if v := types.GetFloat(t, off); v < m.minF[base+idx] {
						m.minF[base+idx] = v
					}
				}
			} else {
				fn = func(m *mapState, base int, t []byte) {
					if v := types.GetInt(t, off); v < m.minI[base+idx] {
						m.minI[base+idx] = v
					}
				}
			}
		case sql.AggMax:
			if isFloat {
				fn = func(m *mapState, base int, t []byte) {
					if v := types.GetFloat(t, off); v > m.maxF[base+idx] {
						m.maxF[base+idx] = v
					}
				}
			} else {
				fn = func(m *mapState, base int, t []byte) {
					if v := types.GetInt(t, off); v > m.maxI[base+idx] {
						m.maxI[base+idx] = v
					}
				}
			}
		}
		fa.mapUpdates = append(fa.mapUpdates, sideUpdate{side: side, fn: fn})
	}
}

// push feeds one staged tuple, ordered by group, into the accumulator,
// emitting the previous group when it closes. It returns false once the
// group limit is reached (the caller aborts the pipeline).
func (fa *fusedAgg) push(st *aggState, t []byte, out *storage.Table, limit int) bool {
	if !st.open {
		st.rep = append(st.rep[:0], t...)
		st.open = true
	} else if fa.groupCmp(st.rep, t) != 0 {
		fa.emitGroup(st, out)
		if limit >= 0 && st.groups >= limit {
			st.open = false
			return false
		}
		st.reset()
		st.rep = append(st.rep[:0], t...)
	}
	st.tuples++
	for _, u := range fa.updates {
		u(st, t)
	}
	return true
}

// flush closes the open group at a partition boundary (hash partitioning
// routes whole groups to one partition, so a group never spans parts).
// It returns false once the group limit is reached.
func (fa *fusedAgg) flush(st *aggState, out *storage.Table, limit int) bool {
	if !st.open {
		return true
	}
	fa.emitGroup(st, out)
	st.reset()
	st.open = false
	return limit < 0 || st.groups < limit
}

// emitGroup writes one finished group straight into the result table.
func (fa *fusedAgg) emitGroup(st *aggState, out *storage.Table) {
	dst := out.AppendSlot()
	for _, c := range fa.copies {
		copy(dst[c.dstOff:c.dstOff+c.size], st.rep[c.srcOff:c.srcOff+c.size])
	}
	for _, w := range fa.writes {
		switch w.fn {
		case sql.AggSum:
			if w.isFloat {
				types.PutFloat(dst, w.dstOff, st.sumF[w.idx])
			} else {
				types.PutInt(dst, w.dstOff, st.sumI[w.idx])
			}
		case sql.AggAvg:
			if st.cnt[w.idx] > 0 {
				types.PutFloat(dst, w.dstOff, st.sumF[w.idx]/float64(st.cnt[w.idx]))
			} else {
				types.PutFloat(dst, w.dstOff, 0)
			}
		case sql.AggCount:
			if w.star {
				types.PutInt(dst, w.dstOff, st.tuples)
			} else {
				types.PutInt(dst, w.dstOff, st.cnt[w.idx])
			}
		case sql.AggMin:
			if w.isFloat {
				types.PutFloat(dst, w.dstOff, st.minF[w.idx])
			} else {
				types.PutInt(dst, w.dstOff, st.minI[w.idx])
			}
		case sql.AggMax:
			if w.isFloat {
				types.PutFloat(dst, w.dstOff, st.maxF[w.idx])
			} else {
				types.PutInt(dst, w.dstOff, st.maxI[w.idx])
			}
		}
	}
	st.groups++
}

// run executes the fused pipeline against a bind vector. The result
// table draws its pages from the storage arena; the caller owns it and
// releases it after draining.
func (f *fusedJoin) run(params []types.Datum) (*storage.Table, error) {
	return f.runWith(params, nil)
}

// runWith is run with an optional chain input: the previous join's
// materialised output feeding the pipeline's chain-fed side (nil for the
// plain two-table pipeline).
func (f *fusedJoin) runWith(params []types.Datum, chainIn *storage.Table) (*storage.Table, error) {
	if err := f.p.CheckArgs(params); err != nil {
		return nil, err
	}
	out := storage.NewPooledTable("result", f.outSchema)
	if f.limit == 0 {
		return out, nil
	}
	// A panic inside the pipeline is contained by the serving layer
	// (runCompiled's containPanic), which never sees this table; without
	// the conditional release the contained error path would strand the
	// result's arena pages forever. The scratch is deliberately NOT
	// returned to its pool on that path — a half-mutated scratch must not
	// be recycled.
	done := false
	defer func() {
		if !done {
			out.Release()
		}
	}()
	sc := joinScratchPool.Get().(*joinScratch)
	sc.chainIn = chainIn
	f.exec(sc, params, out)
	sc.chainIn = nil
	joinScratchPool.Put(sc)

	if f.sortCmp != nil {
		var t0 time.Time
		if f.traced {
			t0 = time.Now()
		}
		sorted := core.SortTablePooled("result", out, f.sortCmp)
		out.Release()
		out = sorted
		if f.traced {
			n := int64(out.NumRows())
			f.p.Trace.Observe(plan.TraceStageSort, n, n, time.Since(t0))
		}
		if f.limit >= 0 && out.NumRows() > f.limit {
			truncated := storage.NewPooledTable("result", out.Schema())
			n := 0
			out.Scan(func(t []byte) bool {
				if n >= f.limit {
					return false
				}
				truncated.Append(t)
				n++
				return true
			})
			out.Release()
			out = truncated
		}
	}
	done = true
	return out, nil
}

// exec stages both sides and drives the join loop into the output (or
// the aggregation tail).
func (f *fusedJoin) exec(sc *joinScratch, params []types.Datum, out *storage.Table) {
	limit := f.limit
	if f.sortCmp != nil {
		limit = -1 // ORDER BY needs every row; LIMIT truncates after the sort
	}
	var t0 time.Time
	parQ := false // did any phase of this execution run parallel?
	sorted := [2]bool{}
	for i := 0; i < 2; i++ {
		if f.traced {
			t0 = time.Now()
		}
		sorted[i] = f.stageSide(sc, i, params, &parQ)
		if f.traced {
			f.p.Trace.Observe(plan.TraceJoinStage(0, i),
				int64(f.p.Tables[f.sides[i].base].Entry.Table.NumRows()),
				int64(sc.rows[i]), time.Since(t0))
		}
	}
	if cap(sc.joinBuf) < f.joinWidth {
		sc.joinBuf = make([]byte, f.joinWidth)
	}
	sc.joinBuf = sc.joinBuf[:f.joinWidth]

	if f.agg != nil {
		if cap(sc.aggBuf) < f.agg.width {
			sc.aggBuf = make([]byte, f.agg.width)
		}
		sc.aggBuf = sc.aggBuf[:f.agg.width]
		if f.agg.mapped {
			sc.mapAgg.init(f.agg.nGroups, f.agg.nAggs, len(f.agg.strides))
			sc.lastPtr[0], sc.lastPtr[1] = nil, nil
		} else {
			sc.agg.init(f.agg.nAggs)
			sc.aggArena = sc.aggArena[:0]
			sc.aggPartIdx = sc.aggPartIdx[:0]
			sc.aggRows = 0
			if want := preSize(f.agg.estRows, f.agg.width); want > 0 && cap(sc.aggArena) < want {
				sc.aggArena = make([]byte, 0, want)
			}
		}
	}

	sc.pairs = 0
	if f.traced {
		t0 = time.Now()
	}
	switch f.alg {
	case plan.MergeJoin:
		in0 := f.buildRefs(sc, 0)
		in1 := f.buildRefs(sc, 1)
		if !sorted[0] {
			core.SortTuples(in0, f.sides[0].keyCmp)
		}
		if !sorted[1] {
			core.SortTuples(in1, f.sides[1].keyCmp)
		}
		f.mergeJoin(sc, in0, in1, out, limit)
	case plan.HybridJoin:
		p0 := f.partitionSide(sc, 0)
		p1 := f.partitionSide(sc, 1)
		if f.parJoin > 1 && len(p0) > 1 {
			f.joinPar(sc, p0, p1, out, limit)
			parQ = true
			break
		}
		for p := range p0 {
			left, right := p0[p], p1[p]
			if len(left) == 0 || len(right) == 0 {
				continue
			}
			// Sort corresponding partitions just before merging them so
			// the pair is L2-resident (§V-B).
			core.SortTuples(left, f.sides[0].keyCmp)
			core.SortTuples(right, f.sides[1].keyCmp)
			if !f.mergeJoin(sc, left, right, out, limit) {
				break
			}
		}
	case plan.FinePartitionJoin:
		// Corresponding partitions hold exactly one key value, so all
		// tuples match: a pure nested loop per partition pair.
		p0 := f.partitionSide(sc, 0)
		p1 := f.partitionSide(sc, 1)
		if f.parJoin > 1 && len(p0) > 1 {
			f.joinPar(sc, p0, p1, out, limit)
			parQ = true
			break
		}
	fine:
		for p := range p0 {
			left, right := p0[p], p1[p]
			if len(left) == 0 || len(right) == 0 {
				continue
			}
			for _, a := range left {
				for _, b := range right {
					if !f.emit(sc, a, b, out, limit) {
						break fine
					}
				}
			}
		}
	}
	if parQ {
		morsel.CountQuery()
	}

	if f.traced {
		// The join loop's rows-out is the joined-pair count; the tail
		// (projection or aggregation updates) runs fused inside the loop,
		// so its per-stage elapsed time folds into the loop's.
		f.p.Trace.Observe(plan.TraceJoin(0),
			int64(sc.rows[0]+sc.rows[1]), sc.pairs, time.Since(t0))
		if f.agg == nil {
			f.p.Trace.Observe(plan.TraceStageProject, sc.pairs, int64(out.NumRows()), 0)
		}
	}

	if f.agg != nil {
		if f.traced {
			t0 = time.Now()
		}
		f.finishAgg(sc, out, limit)
		if f.traced {
			f.p.Trace.Observe(plan.TraceStageAgg, sc.pairs, int64(out.NumRows()), time.Since(t0))
		}
	}
}

// finishAgg completes the aggregation tail: a streaming aggregation just
// flushes its last group; collect modes sort (or partition-sort) the
// staged aggregation input and stream the groups out.
func (f *fusedJoin) finishAgg(sc *joinScratch, out *storage.Table, limit int) {
	fa := f.agg
	st := &sc.agg
	switch {
	case fa.mapped:
		f.emitMapGroups(sc, out, limit)
	case fa.stream:
		fa.flush(st, out, limit)
	case fa.sorted:
		refs := f.buildAggRefs(sc)
		core.SortTuples(refs, fa.sortCmp)
		for _, t := range refs {
			if !fa.push(st, t, out, limit) {
				return
			}
		}
		fa.flush(st, out, limit)
	default: // coarse partitions (hybrid hash-sort aggregation)
		parts := f.partitionAgg(sc)
		for _, part := range parts {
			if len(part) == 0 {
				continue
			}
			if fa.sortParts {
				core.SortTuples(part, fa.sortCmp)
			}
			for _, t := range part {
				if !fa.push(st, t, out, limit) {
					return
				}
			}
			if !fa.flush(st, out, limit) {
				return
			}
		}
	}
}

// emitMapGroups writes the map aggregation's groups in directory order
// (which is sorted order — an interesting order for a downstream ORDER
// BY), skipping empty slots, exactly as core.RunMapAgg emits them.
func (f *fusedJoin) emitMapGroups(sc *joinScratch, out *storage.Table, limit int) {
	fa := f.agg
	m := &sc.mapAgg
	emitted := 0
	for g := 0; g < fa.nGroups; g++ {
		if m.tuples[g] == 0 {
			continue
		}
		if limit >= 0 && emitted >= limit {
			return
		}
		rem := g
		for i := range m.idxs {
			m.idxs[i] = rem / fa.strides[i]
			rem %= fa.strides[i]
		}
		dst := out.AppendSlot()
		for _, gc := range fa.dirCols {
			d := gc.dir[m.idxs[gc.refIdx]]
			switch gc.kind {
			case types.Float:
				types.PutFloat(dst, gc.dstOff, d.F)
			case types.String:
				types.PutString(dst, gc.dstOff, gc.size, d.S)
			default:
				types.PutInt(dst, gc.dstOff, d.I)
			}
		}
		base := g * fa.nAggs
		for _, w := range fa.writes {
			i := base + w.idx
			switch w.fn {
			case sql.AggSum:
				if w.isFloat {
					types.PutFloat(dst, w.dstOff, m.sumF[i])
				} else {
					types.PutInt(dst, w.dstOff, m.sumI[i])
				}
			case sql.AggAvg:
				if m.cnt[i] > 0 {
					types.PutFloat(dst, w.dstOff, m.sumF[i]/float64(m.cnt[i]))
				} else {
					types.PutFloat(dst, w.dstOff, 0)
				}
			case sql.AggCount:
				if w.star {
					types.PutInt(dst, w.dstOff, m.tuples[g])
				} else {
					types.PutInt(dst, w.dstOff, m.cnt[i])
				}
			case sql.AggMin:
				if w.isFloat {
					types.PutFloat(dst, w.dstOff, m.minF[i])
				} else {
					types.PutInt(dst, w.dstOff, m.minI[i])
				}
			case sql.AggMax:
				if w.isFloat {
					types.PutFloat(dst, w.dstOff, m.maxF[i])
				} else {
					types.PutInt(dst, w.dstOff, m.maxI[i])
				}
			}
		}
		emitted++
	}
}

// emit hands one joined pair to the pipeline tail: the final projection
// for plain joins, the aggregation staging for GROUP BY. When the tail
// is all direct copies (tailDirect), staged bytes copy straight into the
// destination slot and the join tuple never materialises; otherwise the
// pair is assembled into joinBuf and run through the compiled projector.
// It returns false when the pipeline is complete (row limit hit, or the
// streaming aggregation reached its group limit).
func (f *fusedJoin) emit(sc *joinScratch, t0, t1 []byte, out *storage.Table, limit int) bool {
	if f.traced {
		sc.pairs++
	}
	fa := f.agg
	if fa == nil {
		f.fillTail(sc, t0, t1, out.AppendSlot())
		return limit < 0 || out.NumRows() < limit
	}
	if fa.mapped {
		// The fully-fused pipeline: locate the group slot via the value
		// directories and update the flat aggregate arrays right here in
		// the join loop (paper Fig. 4) — no staging, no sort, no state
		// but the arrays.
		m := &sc.mapAgg
		g := 0
		if fa.direct {
			// Side-bound lookups with a per-side memo: a side's group
			// contribution is invariant while its tuple is fixed, which
			// hoists the directory probe out of the join's inner loop.
			for s := 0; s < 2; s++ {
				lks := fa.sideLk[s]
				if len(lks) == 0 {
					continue
				}
				t := t0
				if s == 1 {
					t = t1
				}
				var pg int32
				if sc.lastPtr[s] == &t[0] {
					pg = sc.lastG[s]
				} else {
					for _, l := range lks {
						di := l.fn(t)
						if di < 0 {
							pg = -1
							break
						}
						pg += di * l.stride
					}
					sc.lastPtr[s], sc.lastG[s] = &t[0], pg
				}
				if pg < 0 {
					return true // value outside directory: stale stats; skip
				}
				g += int(pg)
			}
			m.tuples[g]++
			base := g * fa.nAggs
			for _, u := range fa.mapUpdates {
				if u.side == 1 {
					u.fn(m, base, t1)
				} else {
					u.fn(m, base, t0)
				}
			}
			return true
		}
		f.fillTail(sc, t0, t1, sc.aggBuf)
		for i, lk := range fa.lookups {
			di := lk(sc.aggBuf)
			if di < 0 {
				return true // value outside directory: stale stats; skip
			}
			g += int(di) * fa.strides[i]
		}
		m.tuples[g]++
		base := g * fa.nAggs
		for _, u := range fa.mapUpdates {
			u.fn(m, base, sc.aggBuf)
		}
		return true
	}
	if fa.stream {
		f.fillTail(sc, t0, t1, sc.aggBuf)
		return fa.push(&sc.agg, sc.aggBuf, out, limit)
	}
	// Collect mode: stage the aggregation input tuple into the arena
	// (and its partition route), deferring group evaluation to finishAgg.
	w := fa.width
	if w > 0 {
		off := len(sc.aggArena)
		sc.aggArena = extendArena(sc.aggArena, w)
		slot := sc.aggArena[off : off+w]
		f.fillTail(sc, t0, t1, slot)
		if fa.parts > 0 {
			sc.aggPartIdx = append(sc.aggPartIdx, fa.route(slot))
		}
	} else if fa.parts > 0 {
		sc.aggPartIdx = append(sc.aggPartIdx, 0)
	}
	sc.aggRows++
	return true
}

// fillTail writes the tail's output tuple for one joined pair.
func (f *fusedJoin) fillTail(sc *joinScratch, t0, t1, dst []byte) {
	if f.tailDirect {
		for _, c := range f.tailCopy[0] {
			copy(dst[c.dstOff:c.dstOff+c.size], t0[c.srcOff:c.srcOff+c.size])
		}
		for _, c := range f.tailCopy[1] {
			copy(dst[c.dstOff:c.dstOff+c.size], t1[c.srcOff:c.srcOff+c.size])
		}
		return
	}
	buf := sc.joinBuf
	for _, c := range f.copySpec[0] {
		copy(buf[c.dstOff:c.dstOff+c.size], t0[c.srcOff:c.srcOff+c.size])
	}
	for _, c := range f.copySpec[1] {
		copy(buf[c.dstOff:c.dstOff+c.size], t1[c.srcOff:c.srcOff+c.size])
	}
	if f.agg != nil {
		f.agg.project(buf, dst)
	} else {
		f.project(buf, dst)
	}
}

// makeTailCopy composes the join's column mapping with a tail stage's
// projection: when every tail output column is a direct copy of a join
// column (itself a direct copy of a staged column), the result is a pair
// of coalesced staged→output byte-range lists and the join tuple needs
// no buffer at all. ok is false when any column is computed or widths
// disagree.
func makeTailCopy(j *plan.Join, cols []plan.OutputColumn, out *types.Schema) ([2][]copyRange, bool) {
	var spec [2][]copyRange
	for i := range cols {
		c := &cols[i]
		if c.Source < 0 || c.Compute != nil {
			return spec, false
		}
		o := j.Out[c.Source]
		src := j.Inputs[o.Input].Schema
		size := out.Column(i).Size
		if src.Column(o.Col).Size != size {
			return spec, false
		}
		r := copyRange{src.Offset(o.Col), out.Offset(i), size}
		s := spec[o.Input]
		if n := len(s); n > 0 {
			last := &s[n-1]
			if last.srcOff+last.size == r.srcOff && last.dstOff+last.size == r.dstOff {
				last.size += r.size
				continue
			}
		}
		spec[o.Input] = append(s, r)
	}
	return spec, true
}

// mergeJoin is the two-way sorted merge: advance both inputs to the next
// common key, delimit the matching group in each, and emit the product —
// exactly core's mergeJoinK specialised to k = 2, so emit order matches
// the general engine byte-for-byte.
func (f *fusedJoin) mergeJoin(sc *joinScratch, in0, in1 [][]byte, out *storage.Table, limit int) bool {
	if len(in0) == 0 || len(in1) == 0 {
		return true
	}
	cross := f.crossCmp
	same0, same1 := f.sides[0].keyCmp, f.sides[1].keyCmp
	pos0, pos1 := 0, 0
	for {
		// Align both inputs on a common key.
		for {
			c := cross(in1[pos1], in0[pos0])
			for c < 0 {
				pos1++
				if pos1 >= len(in1) {
					return true
				}
				c = cross(in1[pos1], in0[pos0])
			}
			if c > 0 {
				pos0++
				if pos0 >= len(in0) {
					return true
				}
				continue
			}
			break
		}
		// Delimit the matching group in each input.
		e0 := pos0 + 1
		head0 := in0[pos0]
		for e0 < len(in0) && same0(in0[e0], head0) == 0 {
			e0++
		}
		e1 := pos1 + 1
		head1 := in1[pos1]
		for e1 < len(in1) && same1(in1[e1], head1) == 0 {
			e1++
		}
		// Emit the product of the groups; singleton groups (the
		// key/foreign-key case) skip the inner loops.
		if e0-pos0 == 1 && e1-pos1 == 1 {
			if !f.emit(sc, head0, head1, out, limit) {
				return false
			}
		} else {
			for a := pos0; a < e0; a++ {
				for b := pos1; b < e1; b++ {
					if !f.emit(sc, in0[a], in1[b], out, limit) {
						return false
					}
				}
			}
		}
		pos0, pos1 = e0, e1
		if pos0 >= len(in0) || pos1 >= len(in1) {
			return true
		}
	}
}

// stageSide fetches, filters, and projects one join input into the
// scratch arena — the staging pass of the generated code (Listing 1
// extended with the join pre-processing). It reports whether the staged
// tuples are already in key order (the ordered index traversal).
func (f *fusedJoin) stageSide(sc *joinScratch, i int, params []types.Datum, par *bool) bool {
	s := &f.sides[i]
	sc.arena[i] = sc.arena[i][:0]
	sc.partIdx[i] = sc.partIdx[i][:0]
	sc.rows[i] = 0
	if want := preSize(s.estRows, s.width); want > 0 && cap(sc.arena[i]) < want {
		sc.arena[i] = make([]byte, 0, want)
	}

	if s.chain {
		// Chain-fed side: the previous join's materialised output; no
		// indexes exist over it, so it always stages by serial scan.
		f.scanSide(sc, i, sc.chainIn, params)
		return false
	}
	entry := f.p.Tables[s.base].Entry
	t := entry.Table
	if s.idx != nil {
		if tree := entry.Index(s.idx.Column); tree != nil {
			f.probeSide(sc, i, tree, t, params)
			return false
		}
		// Index dropped since planning: the equality filter is still in
		// preds, so the scan below stays correct.
	} else if s.orderedCol != "" {
		if tree := entry.Index(s.orderedCol); tree != nil {
			f.orderedSide(sc, i, tree, t)
			return true
		}
	}
	if s.par > 1 && f.scanSidePar(sc, i, t, params) {
		*par = true
		return false
	}
	f.scanSide(sc, i, t, params)
	return false
}

// scanSide is the full-scan staging loop: direct page iteration with
// offset arithmetic, predicates evaluated against the bind vector.
func (f *fusedJoin) scanSide(sc *joinScratch, i int, t *storage.Table, params []types.Datum) {
	s := &f.sides[i]
	w, inW := s.width, s.inWidth
	for pi := 0; pi < t.NumPages(); pi++ {
		pg := t.Page(pi)
		n := pg.NumTuples()
		data := pg.Data()
		for k, base := 0, 0; k < n; k, base = k+1, base+inW {
			tup := data[base : base+inW : base+inW]
			if len(s.preds) > 0 && !matchPreds(s.preds, tup, params) {
				continue
			}
			off := len(sc.arena[i])
			sc.arena[i] = extendArena(sc.arena[i], w)
			slot := sc.arena[i][off : off+w]
			s.project(tup, slot)
			if s.route != nil {
				p := s.route(slot)
				if p < 0 {
					sc.arena[i] = sc.arena[i][:off]
					continue
				}
				sc.partIdx[i] = append(sc.partIdx[i], p)
			}
			sc.rows[i]++
		}
	}
}

// probeSide stages through the fractal B+-tree: equality lookups in RID
// order, residual predicates re-applied, projection into the arena — the
// same tuple order core's ApplyIndexScan materialises, so the subsequent
// sort permutes identically.
func (f *fusedJoin) probeSide(sc *joinScratch, i int, tree *btree.Tree, t *storage.Table, params []types.Datum) {
	s := &f.sides[i]
	key := s.idx.Value.I
	if s.idxSlot >= 0 {
		key = params[s.idxSlot].I
	}
	w := s.width
	tree.Range(key, key, func(_ int64, rid btree.RID) bool {
		if int(rid.Page) >= t.NumPages() {
			return true
		}
		page := t.Page(int(rid.Page))
		if int(rid.Slot) >= page.NumTuples() {
			return true
		}
		tup := page.Tuple(int(rid.Slot))
		if len(s.preds) > 0 && !matchPreds(s.preds, tup, params) {
			return true
		}
		off := len(sc.arena[i])
		sc.arena[i] = extendArena(sc.arena[i], w)
		slot := sc.arena[i][off : off+w]
		s.project(tup, slot)
		if s.route != nil {
			p := s.route(slot)
			if p < 0 {
				sc.arena[i] = sc.arena[i][:off]
				return true
			}
			sc.partIdx[i] = append(sc.partIdx[i], p)
		}
		sc.rows[i]++
		return true
	})
}

// orderedSide stages through the B+-tree's ordered leaf traversal: the
// staged tuples arrive already sorted on the join key, so the merge join
// starts without a sort — the paper's case for index-ordered inputs.
func (f *fusedJoin) orderedSide(sc *joinScratch, i int, tree *btree.Tree, t *storage.Table) {
	s := &f.sides[i]
	w := s.width
	tree.Ascend(func(_ int64, rid btree.RID) bool {
		if int(rid.Page) >= t.NumPages() {
			return true
		}
		page := t.Page(int(rid.Page))
		if int(rid.Slot) >= page.NumTuples() {
			return true
		}
		off := len(sc.arena[i])
		sc.arena[i] = extendArena(sc.arena[i], w)
		s.project(page.Tuple(int(rid.Slot)), sc.arena[i][off:off+w])
		sc.rows[i]++
		return true
	})
}

// buildRefs slices the staged arena into per-tuple references.
func (f *fusedJoin) buildRefs(sc *joinScratch, i int) [][]byte {
	return sliceRefs(&sc.refs[i], sc.arena[i], f.sides[i].width, sc.rows[i])
}

// buildAggRefs slices the aggregation staging arena into references.
func (f *fusedJoin) buildAggRefs(sc *joinScratch) [][]byte {
	return sliceRefs(&sc.aggRefs, sc.aggArena, f.agg.width, sc.aggRows)
}

func sliceRefs(dst *[][]byte, arena []byte, w, n int) [][]byte {
	refs := (*dst)[:0]
	if cap(refs) < n {
		refs = make([][]byte, 0, n)
	}
	if w == 0 {
		// Zero-width tuples (group-less aggregation): n empty references.
		for k := 0; k < n; k++ {
			refs = append(refs, nil)
		}
	} else {
		for k, off := 0, 0; k < n; k, off = k+1, off+w {
			refs = append(refs, arena[off:off+w:off+w])
		}
	}
	*dst = refs
	return refs
}

// partitionSide groups a staged side's tuples by their recorded
// partition route (a counting sort over the flat arena, preserving scan
// order within each partition exactly as core's per-partition appends
// do). The reference and count arrays live in the pooled scratch.
func (f *fusedJoin) partitionSide(sc *joinScratch, i int) [][][]byte {
	return bucketArena(&sc.parts[i], &sc.counts[i], &sc.refs[i],
		sc.arena[i], f.sides[i].width, sc.rows[i], sc.partIdx[i], f.sides[i].partitions)
}

// partitionAgg is partitionSide for the aggregation staging arena.
func (f *fusedJoin) partitionAgg(sc *joinScratch) [][][]byte {
	return bucketArena(&sc.aggParts, &sc.aggCounts, &sc.aggRefs,
		sc.aggArena, f.agg.width, sc.aggRows, sc.aggPartIdx, f.agg.parts)
}

func bucketArena(partsDst *[][][]byte, countsDst *[]int, refsDst *[][]byte, arena []byte, w, n int, idx []int32, m int) [][][]byte {
	if m <= 1 {
		// One partition: the bucket is the staging order itself.
		refs := sliceRefs(refsDst, arena, w, n)
		parts := (*partsDst)[:0]
		parts = append(parts, refs)
		*partsDst = parts
		return parts
	}
	counts := *countsDst
	if cap(counts) < m {
		counts = make([]int, m)
	} else {
		counts = counts[:m]
		for p := range counts {
			counts[p] = 0
		}
	}
	for _, p := range idx {
		counts[p]++
	}
	// Prefix sums -> per-partition start offsets.
	start := 0
	for p := range counts {
		c := counts[p]
		counts[p] = start
		start += c
	}
	// Stable scatter into the pooled reference array, laid out partition
	// by partition.
	ordered := *refsDst
	if cap(ordered) < n {
		ordered = make([][]byte, n)
	} else {
		ordered = ordered[:n]
	}
	for k := 0; k < n; k++ {
		var t []byte
		if w > 0 {
			off := k * w
			t = arena[off : off+w : off+w]
		}
		p := idx[k]
		ordered[counts[p]] = t
		counts[p]++
	}
	parts := (*partsDst)[:0]
	if cap(parts) < m {
		parts = make([][][]byte, 0, m)
	}
	prev := 0
	for p := 0; p < m; p++ {
		end := counts[p]
		parts = append(parts, ordered[prev:end])
		prev = end
	}
	*partsDst = parts
	*countsDst = counts
	*refsDst = ordered
	return parts
}

// makeCoarseRoute compiles the hash-and-modulo partition route,
// bit-identically to core's coarseRouter (§V-B). A partition key outside
// the schema (group-less aggregation staging) routes everything to 0,
// and a single partition skips the hash entirely — the route is total
// either way, so the shortcut cannot change which bucket a tuple lands
// in.
func makeCoarseRoute(schema *types.Schema, key, m int) func(t []byte) int32 {
	if key >= schema.NumColumns() || m <= 1 {
		return func([]byte) int32 { return 0 }
	}
	c := schema.Column(key)
	off := schema.Offset(key)
	mask := uint64(m - 1)
	if c.Kind == types.String {
		end := off + c.Size
		return func(t []byte) int32 { return int32(core.HashBytes(t[off:end]) & mask) }
	}
	// Int, Date, and Float (raw bits; equal floats have equal bits).
	return func(t []byte) int32 { return int32(core.HashInt(types.GetInt(t, off)) & mask) }
}

// makeFineRoute compiles the value-directory route of the fine-partition
// join: binary search over the sorted directory, -1 for keys outside it
// (they cannot produce a match; core's fineRouter drops them the same
// way). nil when the key kind has no directory form.
func makeFineRoute(schema *types.Schema, key int, dir []types.Datum) func(t []byte) int32 {
	c := schema.Column(key)
	return makeDirLookupAt(c.Kind, schema.Offset(key), c.Size, dir)
}

// makeDirLookupAt is makeFineRoute with the column geometry explicit, so
// the same directory probe compiles against either a staged schema or a
// join input's tuple layout (the direct map-aggregation path).
func makeDirLookupAt(kind types.Kind, off, size int, dir []types.Datum) func(t []byte) int32 {
	switch kind {
	case types.Int, types.Date:
		vals := make([]int64, len(dir))
		for i, d := range dir {
			vals[i] = d.I
		}
		// Dense contiguous domains (surrogate keys) route by offset; the
		// directory is sorted and distinct, so span == n-1 proves it.
		if n := len(vals); vals[n-1]-vals[0] == int64(n-1) {
			lo := vals[0]
			hi := int64(n)
			return func(t []byte) int32 {
				v := types.GetInt(t, off) - lo
				if v < 0 || v >= hi {
					return -1
				}
				return int32(v)
			}
		}
		return func(t []byte) int32 {
			v := types.GetInt(t, off)
			lo, hi := 0, len(vals)
			for lo < hi {
				mid := (lo + hi) / 2
				if vals[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(vals) && vals[lo] == v {
				return int32(lo)
			}
			return -1
		}
	case types.String:
		vals := make([]string, len(dir))
		for i, d := range dir {
			vals[i] = d.S
		}
		return func(t []byte) int32 {
			v := types.GetString(t, off, size)
			lo, hi := 0, len(vals)
			for lo < hi {
				mid := (lo + hi) / 2
				if vals[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(vals) && vals[lo] == v {
				return int32(lo)
			}
			return -1
		}
	}
	return nil
}

// preSize converts the optimizer's cardinality estimate into an initial
// arena capacity, capped so a wild estimate cannot front-load a huge
// allocation (past the cap the arena grows geometrically as staged
// tuples actually arrive).
func preSize(estRows, width int) int {
	const maxPreSize = 1 << 20
	want := estRows * width
	if want > maxPreSize {
		return maxPreSize
	}
	return want
}

// extendArena grows a flat staging arena by w bytes, reusing capacity.
func extendArena(b []byte, w int) []byte {
	if len(b)+w <= cap(b) {
		return b[:len(b)+w]
	}
	nb := make([]byte, len(b)+w, 2*(len(b)+w)+256)
	copy(nb, b)
	return nb
}
