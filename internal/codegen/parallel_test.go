// Edge-case tests for the morsel-driven parallel pipelines: shapes
// where the morsel split degenerates (empty tables, sub-morsel row
// counts, counts that do not divide evenly), LIMIT cancellation of
// unclaimed morsels, and parameterized predicates evaluated inside
// workers. The differential corpus (internal/enginetest) covers the
// broad byte-identity contract; these pin the machinery's corners.
package codegen

import (
	"fmt"
	"testing"

	"hique/internal/catalog"
	"hique/internal/morsel"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// forceParallel drops the serial threshold so test-sized tables compile
// parallel pipelines, restoring it afterwards.
func forceParallel(t *testing.T) {
	t.Helper()
	prev := SetParallelThreshold(1)
	t.Cleanup(func() { SetParallelThreshold(prev) })
}

// parCatalog builds a catalogue with an n-row single table
// pt(id INT, grp INT, val FLOAT).
func parCatalog(n int) *catalog.Catalog {
	cat := catalog.New()
	pt := storage.NewTable("pt", types.NewSchema(
		types.Col("id", types.Int), types.Col("grp", types.Int),
		types.Col("val", types.Float)))
	for i := 0; i < n; i++ {
		pt.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i%7)),
			types.FloatDatum(float64(i)/8))
	}
	cat.Register(pt)
	return cat
}

// runParallelVsSerial compiles q at OptO2 both serial and parallel
// (workers=4) and requires byte-identical raw-order results.
func runParallelVsSerial(t *testing.T, cat *catalog.Catalog, q string, params ...types.Datum) {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	serial, parallel := plan.DefaultOptions(), plan.DefaultOptions()
	serial.Parallelism = 1
	parallel.Parallelism = 4
	var ref []string
	for _, opts := range []plan.Options{serial, parallel} {
		p, err := plan.BuildWithOptions(stmt, cat, opts)
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		cq, err := Generate(p, OptO2)
		if err != nil {
			t.Fatalf("generate %q: %v", q, err)
		}
		out, err := cq.Run(params...)
		if err != nil {
			t.Fatalf("run %q: %v", q, err)
		}
		got := rowsAsStrings(out)
		if ref == nil {
			ref = got
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Errorf("%q: parallel result differs from serial\nserial:   %v\nparallel: %v", q, ref, got)
		}
	}
}

func TestParallelScanEmptyTable(t *testing.T) {
	forceParallel(t)
	runParallelVsSerial(t, parCatalog(0), "SELECT id, val FROM pt WHERE grp = 3")
}

func TestParallelScanFewerRowsThanOneMorsel(t *testing.T) {
	forceParallel(t)
	// Well under morsel.Rows: pageMorsels yields a single morsel and the
	// pipeline must fall back to the serial loop mid-run.
	runParallelVsSerial(t, parCatalog(100), "SELECT id, val FROM pt WHERE grp <> 2")
}

func TestParallelScanRowCountNotMultipleOfMorsel(t *testing.T) {
	forceParallel(t)
	// Several morsels plus a ragged tail morsel.
	cat := parCatalog(3*morsel.Rows + 137)
	runParallelVsSerial(t, cat, "SELECT id FROM pt WHERE grp >= 3")
	runParallelVsSerial(t, cat,
		"SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM pt GROUP BY grp ORDER BY grp")
}

func TestParallelScanParamPredicateInWorkers(t *testing.T) {
	forceParallel(t)
	cat := parCatalog(2*morsel.Rows + 55)
	// The predicate value arrives through the bind vector; every worker
	// must read the same slot.
	runParallelVsSerial(t, cat, "SELECT id, val FROM pt WHERE grp = ?",
		types.IntDatum(4))
	runParallelVsSerial(t, cat, "SELECT id FROM pt WHERE id >= ? AND grp <> ?",
		types.IntDatum(777), types.IntDatum(1))
}

func TestParallelScanLimitCancelsUnclaimedMorsels(t *testing.T) {
	forceParallel(t)
	// 32 morsels of matching rows; LIMIT 5 is satisfied by the first.
	cat := parCatalog(32 * morsel.Rows)
	q := "SELECT id FROM pt WHERE id >= 0 LIMIT 5"
	_, m0 := morsel.Stats()
	runParallelVsSerial(t, cat, q)
	_, m1 := morsel.Stats()
	// The parallel run of runParallelVsSerial processes some morsels;
	// cancellation must keep that well under the full split. A few
	// morsels may race past the cancel, but not most of them.
	if d := m1 - m0; d <= 0 || d >= 32 {
		t.Errorf("limit cancellation processed %d morsels, want 0 < n < 32", d)
	}
}

func TestParallelJoinAggCountsQueriesAndMorsels(t *testing.T) {
	forceParallel(t)
	cat := testCatalog() // sales (4000 rows) ⨝ prods with GROUP BY
	q := "SELECT cat, SUM(amount) AS total FROM sales, prods WHERE sales.prod = prods.prod_id GROUP BY cat ORDER BY cat"
	q0, _ := morsel.Stats()
	runParallelVsSerial(t, cat, q)
	q1, _ := morsel.Stats()
	if q1 <= q0 {
		t.Errorf("parallel join+agg did not count a parallel query (%d -> %d)", q0, q1)
	}
}

// TestParallelTraceRecordsPhases pins the EXPLAIN ANALYZE surface: a
// traced parallel execution records per-phase worker counts and
// per-morsel row counts that sum to the stage's output.
func TestParallelTraceRecordsPhases(t *testing.T) {
	forceParallel(t)
	cat := parCatalog(2*morsel.Rows + 100)
	stmt, err := sql.Parse("SELECT id FROM pt WHERE grp <> 5")
	if err != nil {
		t.Fatal(err)
	}
	opts := plan.DefaultOptions()
	opts.Parallelism = 4
	p, err := plan.BuildWithOptions(stmt, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := plan.GetTrace()
	defer plan.PutTrace(tr)
	p.Trace = tr
	cq, err := Generate(p, OptO2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cq.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Parallel) == 0 {
		t.Fatal("traced parallel execution recorded no parallel phases")
	}
	ph := tr.Parallel[0]
	if ph.Stage != "scan" || ph.Workers < 1 {
		t.Errorf("unexpected parallel phase %+v", ph)
	}
	var rows int64
	for _, r := range ph.MorselRows {
		rows += r
	}
	if rows != int64(out.NumRows()) {
		t.Errorf("morsel rows sum to %d, result has %d", rows, out.NumRows())
	}
}
