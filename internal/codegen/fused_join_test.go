package codegen

import (
	"testing"

	"hique/internal/catalog"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// fusedJoinCatalog builds a two-table star pair big enough for real
// staging decisions plus a third table to prove the multi-join decline.
func fusedJoinCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	fact := storage.NewTable("fact", types.NewSchema(
		types.Col("id", types.Int), types.Col("grp", types.Int),
		types.Col("price", types.Float)))
	for i := 0; i < 800; i++ {
		fact.AppendRow(types.IntDatum(int64(i)), types.IntDatum(int64(i%16)), types.FloatDatum(float64(i)))
	}
	cat.Register(fact)
	dim := storage.NewTable("dim", types.NewSchema(
		types.Col("id", types.Int), types.CharCol("label", 8)))
	for i := 0; i < 16; i++ {
		dim.AppendRow(types.IntDatum(int64(i)), types.StringDatum("d"))
	}
	cat.Register(dim)
	ext := storage.NewTable("ext", types.NewSchema(
		types.Col("id", types.Int), types.Col("w", types.Float)))
	for i := 0; i < 32; i++ {
		ext.AppendRow(types.IntDatum(int64(i)), types.FloatDatum(1))
	}
	cat.Register(ext)
	return cat
}

func buildPlan(t *testing.T, cat *catalog.Catalog, query string) *plan.Plan {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	return p
}

// TestFusedJoinSelection pins which plan shapes the fused join pipeline
// claims: without this, a silent decline would route everything through
// the general walk and the differential tests would pass vacuously.
func TestFusedJoinSelection(t *testing.T) {
	cat := fusedJoinCatalog(t)
	fused := []string{
		"SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id",
		"SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id AND f.price > 10.0",
		"SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id AND f.price > ?",
		"SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id LIMIT 5",
		"SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id ORDER BY f.id",
		"SELECT d.label, COUNT(*) AS n, SUM(f.price) AS s FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label",
		"SELECT d.label, COUNT(*) AS n FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label ORDER BY d.label LIMIT 3",
		"SELECT COUNT(*) AS n FROM fact f, dim d WHERE f.grp = d.id",
		"SELECT d.label, MIN(f.id) AS lo, MAX(f.price) AS hi, AVG(f.price) AS m FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label",
	}
	for _, q := range fused {
		p := buildPlan(t, cat, q)
		if newFusedJoin(p) == nil {
			t.Errorf("fused join declined %q (alg %v)", q, p.Joins[0].Alg)
		}
	}
	declined := []string{
		// Three tables: the fused pipeline is binary.
		"SELECT f.id FROM fact f, dim d, ext x WHERE f.grp = d.id AND d.id = x.id",
		// Single table: the single-table pipeline's territory.
		"SELECT id FROM fact WHERE grp = 3",
	}
	for _, q := range declined {
		p := buildPlan(t, cat, q)
		if len(p.Joins) == 1 && newFusedJoin(p) != nil && len(p.Tables) != 2 {
			t.Errorf("fused join accepted %q", q)
		}
		if len(p.Tables) != 2 && newFusedJoin(p) != nil {
			t.Errorf("fused join accepted %q", q)
		}
	}
	// A parameterized string filter needs per-execution padding: decline.
	p := buildPlan(t, cat, "SELECT f.id FROM fact f, dim d WHERE f.grp = d.id AND d.label = ?")
	if newFusedJoin(p) != nil {
		t.Error("fused join accepted a parameterized string filter")
	}
}

// TestFusedJoinGenerateUsesPipeline proves Generate at -O2 wires the
// fused runner (and that SetFusion(false) restores the general walk).
func TestFusedJoinGenerateUsesPipeline(t *testing.T) {
	cat := fusedJoinCatalog(t)
	p := buildPlan(t, cat, "SELECT d.label, COUNT(*) AS n FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label ORDER BY d.label")
	if newFusedJoin(p) == nil {
		t.Fatal("plan unexpectedly ineligible")
	}
	q, err := Generate(p, OptO2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer want.Release()

	SetFusion(false)
	defer SetFusion(true)
	gq, err := Generate(p, OptO2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := gq.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer got.Release()

	if want.NumRows() != got.NumRows() {
		t.Fatalf("fused %d rows, general %d", want.NumRows(), got.NumRows())
	}
	for r := 0; r < want.NumRows(); r++ {
		wt, gt := want.Tuple(r), got.Tuple(r)
		if string(wt) != string(gt) {
			t.Fatalf("row %d: fused %x, general %x", r, wt, gt)
		}
	}
}
