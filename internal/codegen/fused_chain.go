// Chained-join fused pipelines: N-way left-deep plans (TPC-H Q3's
// customer⋈orders⋈lineitem, Q10's four-way chain) extend the two-table
// fused pipeline of fused_join.go. The prefix joins run through core's
// staged operators — the exact stage/join algorithms the general walk
// uses, so every intermediate is byte-identical to what that walk would
// materialise — and the *final* join plus the whole aggregation, ORDER
// BY, and LIMIT tail compiles into the single fused
// probe→join→aggregate→emit loop, with the pipeline's left side staged
// from the last intermediate instead of a base table. The expensive end
// of an analytical chain (the final join usually sees the largest
// inputs, and the tail folds the aggregation into its loop) is where
// fusion pays; the prefix keeps the general algorithms and their
// operator-at-a-time materialisation.
//
// Like every fused path this is an execution strategy, never a semantic
// fork: results stay byte-identical to the general engines, row order
// included. Shapes outside the chain decline gracefully (return nil)
// and take the general walk: join teams (one join descriptor with more
// than two inputs), bushy trees, parameterized plans (the prefix runs
// through core's descriptors, which would need a bound copy), traced
// executions (EXPLAIN ANALYZE observes per-operator stages), and any
// final join or tail the two-table pipeline itself cannot claim.

package codegen

import (
	"hique/internal/core"
	"hique/internal/plan"
	"hique/internal/storage"
	"hique/internal/types"
)

// fusedChain is the compiled N-way pipeline: core-run prefix joins
// feeding one fused final join + tail.
type fusedChain struct {
	p     *plan.Plan
	final *fusedJoin
}

// newFusedChain compiles the chained pipeline, or returns nil when the
// plan's shape needs the general operator walk.
func newFusedChain(p *plan.Plan) *fusedChain {
	k := len(p.Joins)
	if k < 2 || len(p.Having) > 0 || p.Trace != nil || len(p.Params) > 0 {
		return nil
	}
	// Left-deep chain: join 0 reads two base tables; join i>0 reads join
	// i-1 on exactly one side and a base table on the other.
	for i := range p.Joins {
		j := p.Joins[i]
		if len(j.Inputs) != 2 || len(j.Keys) != 2 {
			return nil
		}
		chainFed := 0
		for s := range j.Inputs {
			in := j.Inputs[s].Input
			if in.Base >= 0 {
				continue
			}
			if in.Join != i-1 {
				return nil
			}
			chainFed++
		}
		if (i == 0 && chainFed != 0) || (i > 0 && chainFed != 1) {
			return nil
		}
	}
	// The tail must consume the last join.
	switch {
	case p.Agg != nil:
		if p.Agg.Input.Input.Join != k-1 {
			return nil
		}
	case p.Final != nil:
		if p.Final.Input.Join != k-1 {
			return nil
		}
	default:
		return nil
	}
	if !chainJoinEligible(p.Joins[k-1], k-1) {
		return nil
	}
	f := compileFusedJoin(p, k-1, true)
	if f == nil {
		return nil
	}
	return &fusedChain{p: p, final: f}
}

// chainJoinEligible mirrors plan.Join.FusionEligible for the chain's
// final join, where one input reads the previous join's output instead
// of a base table: staging must match the algorithm and every staged
// column must be a direct copy.
func chainJoinEligible(j *plan.Join, ji int) bool {
	if len(j.Inputs) != 2 || len(j.Keys) != 2 {
		return false
	}
	for i := range j.Inputs {
		st := &j.Inputs[i]
		if st.Input.Base < 0 && st.Input.Join != ji-1 {
			return false
		}
		switch j.Alg {
		case plan.MergeJoin:
			if st.Action != plan.StageSort {
				return false
			}
		case plan.HybridJoin:
			if st.Action != plan.StagePartitionCoarse || st.Partitions <= 0 {
				return false
			}
		case plan.FinePartitionJoin:
			if st.Action != plan.StagePartitionFine || len(st.FineValues) == 0 {
				return false
			}
		default:
			return false
		}
		for k := range st.Cols {
			if st.Cols[k].Source < 0 || st.Cols[k].Compute != nil {
				return false
			}
		}
	}
	return true
}

// run executes the chain: prefix joins through core's staged operators,
// then the fused final pipeline over the last intermediate. The caller
// owns the returned table and releases it after draining; the prefix
// intermediates are plain (GC-managed) tables, exactly as core's walk
// materialises them.
func (c *fusedChain) run(params []types.Datum) (*storage.Table, error) {
	p := c.p
	if err := p.CheckArgs(params); err != nil {
		return nil, err
	}
	if p.Limit == 0 {
		return storage.NewPooledTable("result", c.final.outSchema), nil
	}
	last := len(p.Joins) - 1
	joinOut := make([]*storage.Table, last)
	resolve := func(ref plan.InputRef) *storage.Table {
		if ref.Base >= 0 {
			return p.Tables[ref.Base].Entry.Table
		}
		return joinOut[ref.Join]
	}
	for ji := 0; ji < last; ji++ {
		j := p.Joins[ji]
		staged := make([]*core.Staged, len(j.Inputs))
		fail := func(err error) (*storage.Table, error) {
			for _, s := range staged {
				if s != nil {
					s.Release()
				}
			}
			return nil, err
		}
		for i := range j.Inputs {
			st := &j.Inputs[i]
			in, err := core.ApplyIndexScan(p, st, resolve(st.Input))
			if err != nil {
				return fail(err)
			}
			if staged[i], err = core.RunStage(st, in); err != nil {
				return fail(err)
			}
		}
		out, err := core.RunJoin(j, staged)
		for _, s := range staged {
			s.Release()
		}
		if err != nil {
			return nil, err
		}
		joinOut[ji] = out
	}
	return c.final.runWith(params, joinOut[last-1])
}
