package codegen

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/types"
)

// The O0 executor runs the same holistic algorithms as internal/core but
// the way unoptimized object code would: every field access boxes its value
// into a Datum, every predicate and comparison goes through a generic
// comparison routine, every projection column is materialised by a separate
// call, and rows travel as heap-allocated datum slices. This reproduces the
// paper's -O0 compilation axis (Table II): same algorithm, indirection not
// eliminated.

type boxedStaged struct {
	schema *types.Schema
	parts  [][][]types.Datum
	sorted bool
}

// rows counts the staged tuples across partitions (post-routing).
func (s *boxedStaged) rows() int64 {
	var n int64
	for _, p := range s.parts {
		n += int64(len(p))
	}
	return n
}

func runO0(p *plan.Plan) (*storage.Table, error) {
	joinOut := make([]*boxedRows, len(p.Joins))
	resolve := func(ref plan.InputRef) (*boxedRows, error) {
		if ref.Base >= 0 {
			return boxTable(p.Tables[ref.Base].Entry.Table), nil
		}
		if ref.Join < 0 || ref.Join >= len(joinOut) || joinOut[ref.Join] == nil {
			return nil, fmt.Errorf("codegen: dangling input %v", ref)
		}
		return joinOut[ref.Join], nil
	}

	tr := p.Trace
	var t0, tj time.Time
	for ji, j := range p.Joins {
		staged := make([]*boxedStaged, len(j.Inputs))
		var stagedSum int64
		for i := range j.Inputs {
			if tr != nil {
				t0 = time.Now()
			}
			in, err := resolve(j.Inputs[i].Input)
			if err != nil {
				return nil, err
			}
			staged[i] = stageO0(&j.Inputs[i], in)
			if tr != nil {
				n := staged[i].rows()
				tr.Observe(plan.TraceJoinStage(ji, i), int64(len(in.rows)), n, time.Since(t0))
				stagedSum += n
			}
		}
		if tr != nil {
			tj = time.Now()
		}
		out, err := joinO0(j, staged)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Observe(plan.TraceJoin(ji), stagedSum, int64(len(out.rows)), time.Since(tj))
		}
		joinOut[ji] = out
	}

	var rows *boxedRows
	switch {
	case p.Agg != nil:
		if tr != nil {
			t0 = time.Now()
		}
		in, err := resolve(p.Agg.Input.Input)
		if err != nil {
			return nil, err
		}
		aggIn := int64(len(in.rows))
		if p.Agg.Alg == plan.MapAggregation {
			rows, err = mapAggO0(p.Agg, in)
		} else {
			staged := stageO0(&p.Agg.Input, in)
			aggIn = staged.rows()
			rows, err = sortedAggO0(p.Agg, staged)
		}
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Observe(plan.TraceStageAgg, aggIn, int64(len(rows.rows)), time.Since(t0))
		}
	case p.Final != nil:
		if tr != nil {
			t0 = time.Now()
		}
		in := mustResolve(resolve, p.Final.Input)
		staged := stageO0(p.Final, in)
		rows = &boxedRows{schema: staged.schema, rows: staged.parts[0]}
		if tr != nil {
			tr.Observe(plan.TraceStageProject,
				int64(len(in.rows)), int64(len(rows.rows)), time.Since(t0))
		}
	default:
		return nil, fmt.Errorf("codegen: empty plan")
	}

	if len(p.Having) > 0 {
		kept := rows.rows[:0:0]
		for _, r := range rows.rows {
			ok := true
			for _, h := range p.Having {
				if !h.Op.Holds(types.Compare(r[h.Col], h.Val)) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows.rows = kept
	}

	if p.Sort != nil {
		if tr != nil {
			t0 = time.Now()
		}
		sortO0(rows, p.Sort.Keys)
		if tr != nil {
			n := int64(len(rows.rows))
			tr.Observe(plan.TraceStageSort, n, n, time.Since(t0))
		}
	}
	if p.Limit >= 0 && len(rows.rows) > p.Limit {
		rows.rows = rows.rows[:p.Limit]
	}

	// Encode the boxed result into a table.
	out := storage.NewTable("result", rows.schema)
	for _, r := range rows.rows {
		out.AppendRow(r...)
	}
	return out, nil
}

type boxedRows struct {
	schema *types.Schema
	rows   [][]types.Datum
}

func mustResolve(resolve func(plan.InputRef) (*boxedRows, error), ref plan.InputRef) *boxedRows {
	r, err := resolve(ref)
	if err != nil {
		panic(err)
	}
	return r
}

func boxTable(t *storage.Table) *boxedRows {
	s := t.Schema()
	rows := make([][]types.Datum, 0, t.NumRows())
	t.Scan(func(tuple []byte) bool {
		rows = append(rows, s.DecodeRow(tuple))
		return true
	})
	return &boxedRows{schema: s, rows: rows}
}

// evalPredicateO0 is the generic, boxed predicate evaluation the iterator
// model uses: a comparison function selected at run time.
func evalPredicateO0(row []types.Datum, f *plan.Filter) bool {
	if slot, ok := f.Slot(); ok {
		panic(fmt.Sprintf("codegen: O0 filter reads unbound parameter $%d (bind the plan before execution)", slot))
	}
	return f.Op.Holds(types.Compare(row[f.Col], f.Val))
}

// evalExprO0 interprets a bound expression over a boxed row.
func evalExprO0(e plan.Expr, row []types.Datum) types.Datum {
	switch v := e.(type) {
	case *plan.ColExpr:
		return row[v.Col]
	case *plan.ConstExpr:
		return v.D
	case *plan.ArithExpr:
		l := evalExprO0(v.L, row)
		r := evalExprO0(v.R, row)
		if v.Kind() == types.Float {
			lf, rf := datumFloat(l), datumFloat(r)
			switch v.Op {
			case sql.OpAdd:
				return types.FloatDatum(lf + rf)
			case sql.OpSub:
				return types.FloatDatum(lf - rf)
			case sql.OpMul:
				return types.FloatDatum(lf * rf)
			case sql.OpDiv:
				return types.FloatDatum(lf / rf)
			}
		}
		switch v.Op {
		case sql.OpAdd:
			return types.IntDatum(l.I + r.I)
		case sql.OpSub:
			return types.IntDatum(l.I - r.I)
		case sql.OpMul:
			return types.IntDatum(l.I * r.I)
		case sql.OpDiv:
			return types.IntDatum(l.I / r.I)
		}
	}
	panic("codegen: bad expression")
}

func datumFloat(d types.Datum) float64 {
	if d.Kind == types.Float {
		return d.F
	}
	return float64(d.I)
}

func stageO0(st *plan.Stage, in *boxedRows) *boxedStaged {
	nParts := 1
	switch st.Action {
	case plan.StagePartitionFine:
		nParts = len(st.FineValues)
	case plan.StagePartitionCoarse:
		nParts = st.Partitions
	}
	out := &boxedStaged{schema: st.Schema, parts: make([][][]types.Datum, nParts)}

	for _, row := range in.rows {
		keep := true
		for i := range st.Filters {
			if !evalPredicateO0(row, &st.Filters[i]) {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		projected := make([]types.Datum, len(st.Cols))
		for i, c := range st.Cols {
			if c.Compute != nil {
				projected[i] = evalExprO0(c.Compute, row)
			} else {
				projected[i] = row[c.Source]
			}
		}
		p := 0
		// Group-less aggregates stage attribute-free rows; with no
		// partitioning key everything routes to partition 0.
		if st.PartitionKey < len(projected) {
			switch st.Action {
			case plan.StagePartitionFine:
				p = fineLookupO0(st.FineValues, projected[st.PartitionKey])
				if p < 0 {
					continue
				}
			case plan.StagePartitionCoarse:
				p = int(hashDatum(projected[st.PartitionKey]) & uint64(st.Partitions-1))
			}
		}
		out.parts[p] = append(out.parts[p], projected)
	}

	if st.Action == plan.StageSort || (st.Action == plan.StagePartitionCoarse && st.SortPartitions) {
		for _, part := range out.parts {
			sortBoxed(part, st.SortKeys)
		}
		out.sorted = true
	}
	return out
}

func fineLookupO0(dir []types.Datum, v types.Datum) int {
	lo, hi := 0, len(dir)
	for lo < hi {
		mid := (lo + hi) / 2
		if types.Compare(dir[mid], v) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(dir) && types.Compare(dir[lo], v) == 0 {
		return lo
	}
	return -1
}

func hashDatum(d types.Datum) uint64 {
	switch d.Kind {
	case types.String:
		h := uint64(14695981039346656037)
		for i := 0; i < len(d.S); i++ {
			h ^= uint64(d.S[i])
			h *= 1099511628211
		}
		return h
	default:
		x := uint64(d.I) * 0x9E3779B97F4A7C15
		return x ^ (x >> 29)
	}
}

func sortBoxed(rows [][]types.Datum, keys []int) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			if c := types.Compare(rows[i][k], rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func joinO0(j *plan.Join, staged []*boxedStaged) (*boxedRows, error) {
	out := &boxedRows{schema: j.Schema}
	emit := func(tuples [][]types.Datum) {
		row := make([]types.Datum, len(j.Out))
		for pos, o := range j.Out {
			row[pos] = tuples[o.Input][o.Col]
		}
		out.rows = append(out.rows, row)
	}

	switch j.Alg {
	case plan.MergeJoin:
		inputs := make([][][]types.Datum, len(staged))
		for i, s := range staged {
			if len(s.parts) != 1 {
				return nil, fmt.Errorf("codegen: merge join over partitioned input")
			}
			inputs[i] = s.parts[0]
			if !s.sorted {
				sortBoxed(inputs[i], []int{j.Keys[i]})
			}
		}
		mergeJoinO0(j, inputs, emit)
	case plan.FinePartitionJoin:
		m := len(staged[0].parts)
		for p := 0; p < m; p++ {
			parts := make([][][]types.Datum, len(staged))
			empty := false
			for i, s := range staged {
				parts[i] = s.parts[p]
				if len(parts[i]) == 0 {
					empty = true
					break
				}
			}
			if !empty {
				cartesianO0(parts, make([][]types.Datum, len(parts)), 0, emit)
			}
		}
	case plan.HybridJoin:
		m := len(staged[0].parts)
		for p := 0; p < m; p++ {
			inputs := make([][][]types.Datum, len(staged))
			empty := false
			for i, s := range staged {
				inputs[i] = s.parts[p]
				if len(inputs[i]) == 0 {
					empty = true
					break
				}
				if !s.sorted {
					sortBoxed(inputs[i], []int{j.Keys[i]})
				}
			}
			if !empty {
				mergeJoinO0(j, inputs, emit)
			}
		}
	}
	return out, nil
}

func cartesianO0(parts [][][]types.Datum, cur [][]types.Datum, depth int, emit func([][]types.Datum)) {
	if depth == len(parts) {
		emit(cur)
		return
	}
	for _, r := range parts[depth] {
		cur[depth] = r
		cartesianO0(parts, cur, depth+1, emit)
	}
}

func mergeJoinO0(j *plan.Join, inputs [][][]types.Datum, emit func([][]types.Datum)) {
	k := len(inputs)
	pos := make([]int, k)
	for i := 0; i < k; i++ {
		if len(inputs[i]) == 0 {
			return
		}
	}
	key := func(i int) types.Datum { return inputs[i][pos[i]][j.Keys[i]] }
	ends := make([]int, k)
	groups := make([][][]types.Datum, k)
	for {
		aligned := false
		for !aligned {
			aligned = true
			for i := 1; i < k; i++ {
				c := types.Compare(key(i), key(0))
				for c < 0 {
					pos[i]++
					if pos[i] >= len(inputs[i]) {
						return
					}
					c = types.Compare(key(i), key(0))
				}
				if c > 0 {
					pos[0]++
					if pos[0] >= len(inputs[0]) {
						return
					}
					aligned = false
					break
				}
			}
		}
		for i := 0; i < k; i++ {
			e := pos[i] + 1
			head := inputs[i][pos[i]][j.Keys[i]]
			for e < len(inputs[i]) && types.Compare(inputs[i][e][j.Keys[i]], head) == 0 {
				e++
			}
			ends[i] = e
			groups[i] = inputs[i][pos[i]:e]
		}
		cartesianO0(groups, make([][]types.Datum, k), 0, emit)
		for i := 0; i < k; i++ {
			pos[i] = ends[i]
			if pos[i] >= len(inputs[i]) {
				return
			}
		}
	}
}

// boxedAccum is the O0 accumulator: datum arithmetic per update.
type boxedAccum struct {
	sum    []types.Datum
	cnt    []int64
	min    []types.Datum
	max    []types.Datum
	tuples int64
}

func newBoxedAccum(n int) *boxedAccum {
	a := &boxedAccum{sum: make([]types.Datum, n), cnt: make([]int64, n),
		min: make([]types.Datum, n), max: make([]types.Datum, n)}
	a.reset()
	return a
}

func (a *boxedAccum) reset() {
	for i := range a.sum {
		a.sum[i] = types.FloatDatum(0)
		a.cnt[i] = 0
		a.min[i] = types.Datum{Kind: types.Float, F: math.Inf(1)}
		a.max[i] = types.Datum{Kind: types.Float, F: math.Inf(-1)}
	}
	a.tuples = 0
}

func (a *boxedAccum) update(agg *plan.Agg, row []types.Datum) {
	a.tuples++
	for i := range agg.Aggs {
		spec := &agg.Aggs[i]
		if spec.Star {
			a.cnt[i]++
			continue
		}
		v := datumFloat(row[spec.Col])
		switch spec.Func {
		case sql.AggSum, sql.AggAvg:
			a.sum[i] = types.FloatDatum(a.sum[i].F + v)
			a.cnt[i]++
		case sql.AggCount:
			a.cnt[i]++
		case sql.AggMin:
			if v < a.min[i].F {
				a.min[i] = types.FloatDatum(v)
			}
		case sql.AggMax:
			if v > a.max[i].F {
				a.max[i] = types.FloatDatum(v)
			}
		}
	}
}

func (a *boxedAccum) result(agg *plan.Agg, rep []types.Datum) []types.Datum {
	out := make([]types.Datum, len(agg.Output))
	for pos, ref := range agg.Output {
		if !ref.IsAgg {
			out[pos] = rep[agg.GroupCols[ref.Index]]
			continue
		}
		spec := &agg.Aggs[ref.Index]
		i := ref.Index
		switch spec.Func {
		case sql.AggSum:
			if spec.Kind == types.Int {
				out[pos] = types.IntDatum(int64(a.sum[i].F))
			} else {
				out[pos] = a.sum[i]
			}
		case sql.AggAvg:
			if a.cnt[i] > 0 {
				out[pos] = types.FloatDatum(a.sum[i].F / float64(a.cnt[i]))
			} else {
				out[pos] = types.FloatDatum(0)
			}
		case sql.AggCount:
			if spec.Star {
				out[pos] = types.IntDatum(a.tuples)
			} else {
				out[pos] = types.IntDatum(a.cnt[i])
			}
		case sql.AggMin:
			if spec.Kind == types.Int {
				out[pos] = types.IntDatum(int64(a.min[i].F))
			} else {
				out[pos] = a.min[i]
			}
		case sql.AggMax:
			if spec.Kind == types.Int {
				out[pos] = types.IntDatum(int64(a.max[i].F))
			} else {
				out[pos] = a.max[i]
			}
		}
	}
	return out
}

func sortedAggO0(a *plan.Agg, staged *boxedStaged) (*boxedRows, error) {
	out := &boxedRows{schema: a.Schema}
	acc := newBoxedAccum(len(a.Aggs))
	sameGroup := func(x, y []types.Datum) bool {
		for _, g := range a.GroupCols {
			if types.Compare(x[g], y[g]) != 0 {
				return false
			}
		}
		return true
	}
	for _, part := range staged.parts {
		var rep []types.Datum
		for _, row := range part {
			if rep == nil {
				rep = row
			} else if !sameGroup(rep, row) {
				out.rows = append(out.rows, acc.result(a, rep))
				acc.reset()
				rep = row
			}
			acc.update(a, row)
		}
		if rep != nil {
			out.rows = append(out.rows, acc.result(a, rep))
			acc.reset()
		}
	}
	return out, nil
}

func mapAggO0(a *plan.Agg, in *boxedRows) (*boxedRows, error) {
	if len(a.Directories) != len(a.GroupCols) {
		return nil, fmt.Errorf("codegen: map aggregation without directories")
	}
	st := &a.Input
	nGroups := 1
	strides := make([]int, len(a.GroupCols))
	for i := len(a.GroupCols) - 1; i >= 0; i-- {
		strides[i] = nGroups
		nGroups *= len(a.Directories[i])
	}
	accs := make([]*boxedAccum, nGroups)

	for _, row := range in.rows {
		keep := true
		for i := range st.Filters {
			if !evalPredicateO0(row, &st.Filters[i]) {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		projected := make([]types.Datum, len(st.Cols))
		for i, c := range st.Cols {
			if c.Compute != nil {
				projected[i] = evalExprO0(c.Compute, row)
			} else {
				projected[i] = row[c.Source]
			}
		}
		slot := 0
		miss := false
		for i := range a.GroupCols {
			di := fineLookupO0(a.Directories[i], projected[a.GroupCols[i]])
			if di < 0 {
				miss = true
				break
			}
			slot += di * strides[i]
		}
		if miss {
			continue
		}
		if accs[slot] == nil {
			accs[slot] = newBoxedAccum(len(a.Aggs))
		}
		accs[slot].update(a, projected)
	}

	out := &boxedRows{schema: a.Schema}
	idxs := make([]int, len(a.GroupCols))
	for g := 0; g < nGroups; g++ {
		if accs[g] == nil {
			continue
		}
		rem := g
		rep := make([]types.Datum, len(a.Input.Cols))
		for i := range idxs {
			idxs[i] = rem / strides[i]
			rem %= strides[i]
			rep[a.GroupCols[i]] = a.Directories[i][idxs[i]]
		}
		out.rows = append(out.rows, accs[g].result(a, rep))
	}
	return out, nil
}

func sortO0(rows *boxedRows, keys []plan.SortKey) {
	sort.SliceStable(rows.rows, func(i, j int) bool {
		for _, k := range keys {
			c := types.Compare(rows.rows[i][k.Col], rows.rows[j][k.Col])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}
