package codegen

import (
	"fmt"
	"go/parser"
	"go/token"
	"sync/atomic"
	"time"

	"hique/internal/core"
	"hique/internal/plan"
	"hique/internal/storage"
	"hique/internal/types"
)

// fusionDisabled gates the -O2 fused pipelines (single-table and join).
// It exists for benchmarks and differential tests that need the general
// operator walk for the exact plan a fused pipeline would claim; serving
// code never touches it.
var fusionDisabled atomic.Bool

// SetFusion enables or disables the fused -O2 pipelines process-wide.
// Fusion is on by default; disabling it forces every plan through the
// general engine walk. Only already-compiled queries keep their original
// strategy — the toggle affects subsequent Generate calls.
func SetFusion(enabled bool) { fusionDisabled.Store(!enabled) }

// OptLevel is the post-generation optimisation level, the analogue of the
// paper's gcc -O0 / -O2 axis (Table II).
type OptLevel int

const (
	// OptO0 runs the generated algorithms with boxed values and
	// per-step indirection (unoptimized object code).
	OptO0 OptLevel = iota
	// OptO2 runs the fused, type-specialised closures (optimized code).
	OptO2
)

// String renders the flag spelling used in the paper.
func (l OptLevel) String() string {
	if l == OptO0 {
		return "-O0"
	}
	return "-O2"
}

// Timings records the query-preparation cost breakdown reported in
// Table III.
type Timings struct {
	Generate time.Duration // emitting the source file
	Compile  time.Duration // syntax-checking + building the executable plan
	// SourceBytes is the size of the generated source file.
	SourceBytes int
}

// CompiledQuery is a generated, compiled, and linked query: the output of
// the Figure 3 pipeline, ready for the executor to call. A query compiled
// from a parameterized plan is one artefact serving the whole query
// shape: Run binds a fresh parameter vector on every execution, so the
// preparation cost is paid once per shape, not once per constant.
type CompiledQuery struct {
	Plan   *plan.Plan
	Source string
	Level  OptLevel
	Prep   Timings
	// Fused reports whether Generate selected a fused pipeline (single
	// pipeline, no staged intermediates) rather than the general operator
	// walk — the execution-path axis of the serving metrics.
	Fused bool

	run func(params []types.Datum) (*storage.Table, error)
}

// Generate instantiates the code templates for the plan (Figure 3), emits
// the query-specific source file, "compiles" it (syntax check via
// go/parser — the stand-in for the external compiler; see DESIGN.md), and
// returns the executable query.
func Generate(p *plan.Plan, level OptLevel) (*CompiledQuery, error) {
	q := &CompiledQuery{Plan: p, Level: level}

	start := time.Now()
	q.Source = EmitSource(p)
	q.Prep.Generate = time.Since(start)
	q.Prep.SourceBytes = len(q.Source)

	start = time.Now()
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "query.go", q.Source, parser.SkipObjectResolution); err != nil {
		return nil, fmt.Errorf("codegen: generated source does not parse: %w", err)
	}
	switch level {
	case OptO2:
		// Fused fast paths: single-table plans compile to one pipeline
		// that probes/scans, filters, and projects straight into the
		// result table; two-table equi-join plans (with optional GROUP BY
		// aggregation, ORDER BY, and LIMIT) compile to one fused
		// probe→join→filter→aggregate→emit loop. Both read parameters
		// from the bind vector without an execution copy of the plan.
		if !fusionDisabled.Load() {
			if f := newFused(p); f != nil {
				q.run = f.run
				q.Fused = true
				break
			}
			if fj := newFusedJoin(p); fj != nil {
				q.run = fj.run
				q.Fused = true
				break
			}
			// N-way left-deep chains: prefix joins through core's staged
			// operators, the final join + tail in one fused loop.
			if fc := newFusedChain(p); fc != nil {
				q.run = fc.run
				q.Fused = true
				break
			}
		}
		eng := core.NewEngine()
		q.run = func(params []types.Datum) (*storage.Table, error) {
			return runBound(p, params, eng.Execute)
		}
	case OptO0:
		q.run = func(params []types.Datum) (*storage.Table, error) {
			return runBound(p, params, runO0)
		}
	default:
		return nil, fmt.Errorf("codegen: unknown optimisation level %d", level)
	}
	q.Prep.Compile = time.Since(start)
	return q, nil
}

// runBound binds the parameter vector into a pooled execution copy of
// the plan — one scratch per concurrent caller, reused across executions
// instead of deep-copying the descriptors every run — and executes it.
func runBound(p *plan.Plan, params []types.Datum, exec func(*plan.Plan) (*storage.Table, error)) (*storage.Table, error) {
	if len(p.Params) == 0 {
		if err := p.CheckArgs(params); err != nil {
			return nil, err
		}
		return exec(p)
	}
	sc := plan.GetBindScratch()
	bp, err := p.BindInto(sc, params)
	if err != nil {
		plan.PutBindScratch(sc)
		return nil, err
	}
	out, err := exec(bp)
	plan.PutBindScratch(sc)
	return out, err
}

// Run executes the compiled query against a bind vector and returns its
// result table. Literal-specialized queries take no parameters;
// parameterized queries require exactly one datum per slot, already
// coerced to the slot kinds (plan.Plan.Params).
func (q *CompiledQuery) Run(params ...types.Datum) (*storage.Table, error) {
	return q.run(params)
}

// RunParams is Run with the bind vector passed as a slice — the
// serving path's spelling, which lets a pooled parameter scratch flow
// through without the variadic copy.
func (q *CompiledQuery) RunParams(params []types.Datum) (*storage.Table, error) {
	return q.run(params)
}
