// Morsel-driven parallel execution of the fused pipelines (the paper's
// §VII partitioned-evaluation direction): large scans and join probe
// phases split into fixed-size morsels claimed dynamically by a small
// team of workers, with every worker writing into private state and the
// caller stitching the per-morsel outputs back together in morsel-index
// order. The stitching is what preserves the byte-identical-ordering
// contract: result bytes depend only on the morsel split — a pure
// function of the input size — never on claim timing or on how many
// workers actually ran.
//
// Parallelism is decided at generation time, like every other
// specialisation here: a pipeline compiles its worker target from the
// plan's Parallelism and the catalogue's cardinality estimates, so small
// inputs compile exactly the serial loops they always had (the warm
// point query keeps its allocation envelope), and a parallel pipeline
// carries no branches the serial one pays for.

package codegen

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hique/internal/morsel"
	"hique/internal/plan"
	"hique/internal/storage"
)

// DefaultParallelThreshold is the catalogue-estimate row count below
// which a pipeline compiles serial: scheduling a handful of morsels
// costs more than it saves, and the serving-gate workloads (point
// queries, 4k-row join+agg) must stay on the untouched serial path.
const DefaultParallelThreshold = 32768

var parallelThreshold atomic.Int64

func init() { parallelThreshold.Store(DefaultParallelThreshold) }

// SetParallelThreshold overrides the serial/parallel estimate threshold
// process-wide and returns the previous value. Like SetFusion it exists
// for tests and benchmarks that need parallel pipelines on small
// fixtures (or serial ones on large); serving code never touches it.
// Only subsequent Generate calls observe the change.
func SetParallelThreshold(rows int) int {
	return int(parallelThreshold.Swap(int64(rows)))
}

// parallelWorkers resolves a pipeline phase's worker target at
// generation time: the plan's Parallelism (0 = GOMAXPROCS), or 1 when
// the catalogue estimates the phase's input below the threshold.
func parallelWorkers(p *plan.Plan, estRows int) int {
	if int64(estRows) < parallelThreshold.Load() {
		return 1
	}
	w := p.Parallelism
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parMorsel records one morsel's output geometry: which worker ran it,
// the byte range its rows occupy in that worker's arena, the range of
// partition routes staged alongside (join staging only), and the row
// count. done flips under the phase mutex when the morsel completes.
type parMorsel struct {
	worker       int32
	done         bool
	rows         int
	start, end   int
	pstart, pend int
}

// parWorker is one worker's private output state, retained across
// phases and executions through the owning scratch so a warm parallel
// query allocates (amortised) nothing. Only the owning worker touches
// it while a phase runs; the caller reads it after the phase barrier.
type parWorker struct {
	arena   []byte
	partIdx []int32

	// Parallel join-phase state: the assembled-join-tuple buffer and
	// aggregation-tuple buffer (per-worker copies of joinScratch's), the
	// map-aggregation accumulator freelist, and the per-side group memo.
	joinBuf []byte
	aggBuf  []byte
	maps    []*mapState
	lastPtr [2]*byte
	lastG   [2]int32

	// Pad so adjacent workers' hot arena headers do not share a cache
	// line while both append.
	_ [64]byte
}

// popMap draws a pooled map-aggregation state from the worker's private
// freelist. The caller returns states through the phase's morsel records
// after the barrier.
func (wk *parWorker) popMap() *mapState {
	if n := len(wk.maps); n > 0 {
		m := wk.maps[n-1]
		wk.maps = wk.maps[:n-1]
		return m
	}
	return new(mapState)
}

// parPhase coordinates one parallel phase: the morsel claim queue, the
// per-morsel output records, the per-worker private state, and the
// completed-prefix watermark that turns a satisfied LIMIT into
// cancellation of unclaimed morsels.
type parPhase struct {
	queue   morsel.Queue
	morsels []parMorsel
	workers []parWorker

	// mu guards the watermark advance. watermark is the first morsel
	// index not yet completed; prefixRows counts the rows of the
	// completed contiguous prefix — once that alone satisfies limit,
	// every unclaimed morsel is cancelled (the stitched result cannot
	// need them). limit < 0 disables cancellation.
	mu         sync.Mutex
	watermark  int
	prefixRows int
	limit      int

	// started is the worker count that actually ran (helpers admitted by
	// the pool, plus the caller).
	started int
}

// reset prepares the phase for nMorsels morsels and a target worker
// count, retaining worker arenas across phases and executions.
func (ph *parPhase) reset(nMorsels, workers, limit int) {
	ph.queue.Reset(nMorsels)
	ph.watermark, ph.prefixRows, ph.limit = 0, 0, limit
	if cap(ph.morsels) < nMorsels {
		ph.morsels = make([]parMorsel, nMorsels)
	}
	ph.morsels = ph.morsels[:nMorsels]
	for i := range ph.morsels {
		ph.morsels[i] = parMorsel{}
	}
	if cap(ph.workers) < workers {
		grown := make([]parWorker, workers)
		copy(grown, ph.workers)
		ph.workers = grown
	}
	ph.workers = ph.workers[:workers]
	for i := range ph.workers {
		wk := &ph.workers[i]
		wk.arena = wk.arena[:0]
		wk.partIdx = wk.partIdx[:0]
	}
	ph.started = 0
}

// run executes body as worker 0 on the calling goroutine and up to
// target-1 helpers admitted through the pool (nil = unbounded), then
// waits for all of them. Correctness never depends on how many helpers
// were admitted: the claim queue lets any subset of workers drain every
// morsel, and stitching is by morsel index, not worker.
func (ph *parPhase) run(pool *morsel.Pool, target int, body func(w int)) {
	var wg sync.WaitGroup
	started := 1
	for w := 1; w < target; w++ {
		w := w
		wg.Add(1)
		if !pool.TryGo(func() { defer wg.Done(); body(w) }) {
			wg.Done()
			break
		}
		started++
	}
	body(0)
	wg.Wait()
	ph.started = started
}

// complete publishes morsel m's output record and advances the
// completed-prefix watermark, cancelling unclaimed morsels once the
// prefix alone satisfies the limit.
func (ph *parPhase) complete(m int, mo parMorsel) {
	mo.done = true
	ph.mu.Lock()
	ph.morsels[m] = mo
	for ph.watermark < len(ph.morsels) && ph.morsels[ph.watermark].done {
		ph.prefixRows += ph.morsels[ph.watermark].rows
		ph.watermark++
	}
	if ph.limit >= 0 && ph.prefixRows >= ph.limit {
		ph.queue.Cancel()
	}
	ph.mu.Unlock()
}

// finish records the phase into the process-wide morsel counters and,
// when traced, into the plan trace (worker count + per-morsel rows). It
// returns the number of morsels actually processed — under LIMIT
// cancellation the unclaimed tail is skipped, which is the point.
func (ph *parPhase) finish(tr *plan.Trace, stage string) int {
	done := 0
	for i := range ph.morsels {
		if ph.morsels[i].done {
			done++
		}
	}
	morsel.CountMorsels(done)
	if tr != nil {
		rows := make([]int64, 0, done)
		for i := range ph.morsels {
			if ph.morsels[i].done {
				rows = append(rows, int64(ph.morsels[i].rows))
			}
		}
		tr.ObserveParallel(stage, ph.started, rows)
	}
	return done
}

// stitchRows appends the per-morsel output ranges to out in morsel
// order, honouring the row limit: the deterministic reassembly that
// makes parallel output byte-identical to the serial loop's. Morsels
// cancelled by the limit watermark are beyond the completed prefix that
// satisfied the limit, so skipping them cannot change the emitted
// prefix.
func (ph *parPhase) stitchRows(out *storage.Table, w, limit int) {
	emitted := 0
	for i := range ph.morsels {
		mo := &ph.morsels[i]
		if !mo.done || mo.rows == 0 {
			continue
		}
		src := ph.workers[mo.worker].arena[mo.start:mo.end]
		for off := 0; off < len(src); off += w {
			if limit >= 0 && emitted >= limit {
				return
			}
			copy(out.AppendSlot(), src[off:off+w])
			emitted++
		}
	}
}

// parPhasePool recycles phases for pipelines without a scratch of their
// own (the single-table scan); the fused join embeds a phase in its
// pooled joinScratch instead.
var parPhasePool = sync.Pool{New: func() any { return new(parPhase) }}

// pageMorsels computes the page-range split of a table scan: each morsel
// covers enough whole pages to hold about morsel.Rows tuples. n is the
// morsel count; a caller seeing n < 2 runs its serial loop.
func pageMorsels(t *storage.Table) (perMorsel, n int) {
	pages := t.NumPages()
	if pages == 0 {
		return 1, 0
	}
	cap := t.Page(0).Capacity()
	if cap < 1 {
		cap = 1
	}
	perMorsel = (morsel.Rows + cap - 1) / cap
	if perMorsel < 1 {
		perMorsel = 1
	}
	return perMorsel, (pages + perMorsel - 1) / perMorsel
}
