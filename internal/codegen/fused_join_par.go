// Parallel phases of the fused join pipeline (see parallel.go for the
// morsel machinery). Two phases parallelise independently, each decided
// at generation time:
//
//   - Staging: a side whose input is a full scan splits into page-range
//     morsels; workers filter/project/route into private arenas and the
//     caller concatenates the per-morsel ranges in morsel order, so the
//     staged arena, partition routes, and row count are byte-identical
//     to the serial scanSide's. Everything downstream (sorts,
//     partitioning, merge order) is untouched. Index probes and ordered
//     traversals stay serial — they are already sub-linear.
//
//   - The partition-wise join loop: a morsel is a contiguous chunk of
//     partitions. Only tails that merge deterministically compile a
//     parallel loop: map aggregation (per-chunk flat accumulator arrays,
//     merged in ascending chunk order — a per-slot array add, the payoff
//     of the PR 5 value-directory layout) and plain projection (chunk
//     outputs stitched in chunk order, reproducing the serial partition
//     order exactly). Chunk boundaries depend only on the partition
//     count and the generation-time worker target, never on claim
//     timing or the admitted worker count, so integer aggregates are
//     exactly the serial values and float sums fold in one fixed order
//     run to run.
package codegen

import (
	"hique/internal/core"
	"hique/internal/plan"
	"hique/internal/storage"
	"hique/internal/types"
)

// scanSidePar is scanSide split into page-range morsels. It returns
// false (having staged nothing) when the table is too small to split,
// in which case the caller runs the serial loop.
func (f *fusedJoin) scanSidePar(sc *joinScratch, i int, t *storage.Table, params []types.Datum) bool {
	per, n := pageMorsels(t)
	if n < 2 {
		return false
	}
	s := &f.sides[i]
	w, inW := s.width, s.inWidth
	pages := t.NumPages()
	ph := &sc.par
	ph.reset(n, s.par, -1)
	body := func(wi int) {
		wk := &ph.workers[wi]
		for {
			m, ok := ph.queue.Next()
			if !ok {
				return
			}
			mo := parMorsel{worker: int32(wi), start: len(wk.arena), pstart: len(wk.partIdx)}
			hi := (m + 1) * per
			if hi > pages {
				hi = pages
			}
			for pi := m * per; pi < hi; pi++ {
				pg := t.Page(pi)
				nt := pg.NumTuples()
				data := pg.Data()
				for k, base := 0, 0; k < nt; k, base = k+1, base+inW {
					tup := data[base : base+inW : base+inW]
					if len(s.preds) > 0 && !matchPreds(s.preds, tup, params) {
						continue
					}
					off := len(wk.arena)
					wk.arena = extendArena(wk.arena, w)
					slot := wk.arena[off : off+w]
					s.project(tup, slot)
					if s.route != nil {
						p := s.route(slot)
						if p < 0 {
							wk.arena = wk.arena[:off]
							continue
						}
						wk.partIdx = append(wk.partIdx, p)
					}
					mo.rows++
				}
			}
			mo.end, mo.pend = len(wk.arena), len(wk.partIdx)
			ph.complete(m, mo)
		}
	}
	ph.run(f.p.Pool, s.par, body)
	// Concatenate in morsel order: page ranges are claimed out of order
	// but reassemble into exactly the serial scan order.
	for k := range ph.morsels {
		mo := &ph.morsels[k]
		wk := &ph.workers[mo.worker]
		sc.arena[i] = append(sc.arena[i], wk.arena[mo.start:mo.end]...)
		sc.partIdx[i] = append(sc.partIdx[i], wk.partIdx[mo.pstart:mo.pend]...)
		sc.rows[i] += mo.rows
	}
	if f.traced {
		ph.finish(f.p.Trace, plan.TraceJoinStage(0, i))
	} else {
		ph.finish(nil, "")
	}
	return true
}

// joinPar runs the per-partition join loop across workers. A morsel is
// a contiguous chunk of partitions; corresponding partitions on both
// sides hold disjoint key ranges (coarse) or single keys (fine), so
// chunks join independently — sorting a partition pair in place touches
// disjoint subslices of the shared reference arrays. Chunks are sized
// to ~4 per worker for claim-level load balancing.
func (f *fusedJoin) joinPar(sc *joinScratch, p0, p1 [][][]byte, out *storage.Table, limit int) {
	m := len(p0)
	target := f.parJoin
	chunks := 4 * target
	if chunks > m {
		chunks = m
	}
	per := (m + chunks - 1) / chunks
	chunks = (m + per - 1) / per
	fa := f.agg // non-nil implies mapped (generation-time eligibility)
	outW := 0
	phLimit := -1
	if fa == nil {
		outW = f.outSchema.TupleSize()
		phLimit = limit
	}
	ph := &sc.par
	ph.reset(chunks, target, phLimit)
	if fa != nil {
		if cap(sc.chunkMaps) < chunks {
			sc.chunkMaps = make([]*mapState, chunks)
		}
		sc.chunkMaps = sc.chunkMaps[:chunks]
		for i := range sc.chunkMaps {
			sc.chunkMaps[i] = nil
		}
	}
	hybrid := f.alg == plan.HybridJoin
	body := func(wi int) {
		wk := &ph.workers[wi]
		wk.lastPtr[0], wk.lastPtr[1] = nil, nil // pooled memo from a prior execution
		if !f.tailDirect {
			if cap(wk.joinBuf) < f.joinWidth {
				wk.joinBuf = make([]byte, f.joinWidth)
			}
			wk.joinBuf = wk.joinBuf[:f.joinWidth]
		}
		if fa != nil && !fa.direct {
			if cap(wk.aggBuf) < fa.width {
				wk.aggBuf = make([]byte, fa.width)
			}
			wk.aggBuf = wk.aggBuf[:fa.width]
		}
		for {
			c, ok := ph.queue.Next()
			if !ok {
				return
			}
			var ms *mapState
			if fa != nil {
				ms = wk.popMap()
				ms.init(fa.nGroups, fa.nAggs, len(fa.strides))
				sc.chunkMaps[c] = ms
			}
			mo := parMorsel{worker: int32(wi), start: len(wk.arena)}
			hi := (c + 1) * per
			if hi > m {
				hi = m
			}
			for p := c * per; p < hi; p++ {
				left, right := p0[p], p1[p]
				if len(left) == 0 || len(right) == 0 {
					continue
				}
				if hybrid {
					core.SortTuples(left, f.sides[0].keyCmp)
					core.SortTuples(right, f.sides[1].keyCmp)
					if !f.mergeJoinPar(wk, ms, left, right, outW, phLimit, &mo.rows) {
						break
					}
				} else if !f.nestedJoinPar(wk, ms, left, right, outW, phLimit, &mo.rows) {
					break
				}
			}
			mo.end = len(wk.arena)
			ph.complete(c, mo)
		}
	}
	ph.run(f.p.Pool, target, body)
	if f.traced {
		for i := range ph.morsels {
			sc.pairs += int64(ph.morsels[i].rows)
		}
	}
	if fa != nil {
		// Merge the chunk accumulators into the execution's map state in
		// ascending chunk order — a fixed fold order, whatever the claim
		// timing — then return them to their workers' freelists.
		for c := range sc.chunkMaps {
			ms := sc.chunkMaps[c]
			if ms == nil {
				continue
			}
			mergeMapState(&sc.mapAgg, ms)
			wk := &ph.workers[ph.morsels[c].worker]
			wk.maps = append(wk.maps, ms)
			sc.chunkMaps[c] = nil
		}
	} else {
		ph.stitchRows(out, outW, limit)
	}
	if f.traced {
		ph.finish(f.p.Trace, plan.TraceJoin(0))
	} else {
		ph.finish(nil, "")
	}
}

// mergeJoinPar is mergeJoin inside a parallel join phase: the identical
// two-way sorted merge (kept in lockstep with mergeJoin so emit order
// matches byte-for-byte), but pairs emit into the worker's private
// state via emitPar. rows counts pairs handed to the tail; the result
// is false when a non-aggregate row limit is reached.
func (f *fusedJoin) mergeJoinPar(wk *parWorker, ms *mapState, in0, in1 [][]byte, outW, limit int, rows *int) bool {
	if len(in0) == 0 || len(in1) == 0 {
		return true
	}
	cross := f.crossCmp
	same0, same1 := f.sides[0].keyCmp, f.sides[1].keyCmp
	pos0, pos1 := 0, 0
	for {
		for {
			c := cross(in1[pos1], in0[pos0])
			for c < 0 {
				pos1++
				if pos1 >= len(in1) {
					return true
				}
				c = cross(in1[pos1], in0[pos0])
			}
			if c > 0 {
				pos0++
				if pos0 >= len(in0) {
					return true
				}
				continue
			}
			break
		}
		e0 := pos0 + 1
		head0 := in0[pos0]
		for e0 < len(in0) && same0(in0[e0], head0) == 0 {
			e0++
		}
		e1 := pos1 + 1
		head1 := in1[pos1]
		for e1 < len(in1) && same1(in1[e1], head1) == 0 {
			e1++
		}
		if e0-pos0 == 1 && e1-pos1 == 1 {
			if !f.emitPar(wk, ms, outW, head0, head1, limit, rows) {
				return false
			}
		} else {
			for a := pos0; a < e0; a++ {
				for b := pos1; b < e1; b++ {
					if !f.emitPar(wk, ms, outW, in0[a], in1[b], limit, rows) {
						return false
					}
				}
			}
		}
		pos0, pos1 = e0, e1
		if pos0 >= len(in0) || pos1 >= len(in1) {
			return true
		}
	}
}

// nestedJoinPar is the fine-partition nested loop inside a parallel
// join phase (corresponding partitions hold one key value, so every
// pair matches).
func (f *fusedJoin) nestedJoinPar(wk *parWorker, ms *mapState, left, right [][]byte, outW, limit int, rows *int) bool {
	for _, a := range left {
		for _, b := range right {
			if !f.emitPar(wk, ms, outW, a, b, limit, rows) {
				return false
			}
		}
	}
	return true
}

// emitPar hands one joined pair to the pipeline tail inside a parallel
// join phase: the worker-private counterpart of emit. ms is non-nil
// exactly when the tail is a map aggregation (the only aggregation mode
// a parallel phase compiles); otherwise the pair projects into the
// worker's arena. Returns false when the chunk's row cap (the query
// limit) is reached.
func (f *fusedJoin) emitPar(wk *parWorker, ms *mapState, outW int, t0, t1 []byte, limit int, rows *int) bool {
	*rows++
	if ms != nil {
		f.emitMapPar(wk, ms, t0, t1)
		return true
	}
	off := len(wk.arena)
	wk.arena = extendArena(wk.arena, outW)
	f.fillTailPar(wk, t0, t1, wk.arena[off:off+outW], f.project)
	return limit < 0 || *rows < limit
}

// emitMapPar is emit's map-aggregation branch against worker-private
// state: the same directory probes, per-side memo, and flat-array
// updates, accumulating into the chunk's mapState.
func (f *fusedJoin) emitMapPar(wk *parWorker, m *mapState, t0, t1 []byte) {
	fa := f.agg
	g := 0
	if fa.direct {
		for s := 0; s < 2; s++ {
			lks := fa.sideLk[s]
			if len(lks) == 0 {
				continue
			}
			t := t0
			if s == 1 {
				t = t1
			}
			var pg int32
			if wk.lastPtr[s] == &t[0] {
				pg = wk.lastG[s]
			} else {
				for _, l := range lks {
					di := l.fn(t)
					if di < 0 {
						pg = -1
						break
					}
					pg += di * l.stride
				}
				wk.lastPtr[s], wk.lastG[s] = &t[0], pg
			}
			if pg < 0 {
				return // value outside directory: stale stats; skip
			}
			g += int(pg)
		}
		m.tuples[g]++
		base := g * fa.nAggs
		for _, u := range fa.mapUpdates {
			if u.side == 1 {
				u.fn(m, base, t1)
			} else {
				u.fn(m, base, t0)
			}
		}
		return
	}
	f.fillTailPar(wk, t0, t1, wk.aggBuf, fa.project)
	for i, lk := range fa.lookups {
		di := lk(wk.aggBuf)
		if di < 0 {
			return // value outside directory: stale stats; skip
		}
		g += int(di) * fa.strides[i]
	}
	m.tuples[g]++
	base := g * fa.nAggs
	for _, u := range fa.mapUpdates {
		u.fn(m, base, wk.aggBuf)
	}
}

// fillTailPar is fillTail against the worker's private join buffer; prj
// is the tail projector for the non-direct path.
func (f *fusedJoin) fillTailPar(wk *parWorker, t0, t1, dst []byte, prj func(src, dst []byte)) {
	if f.tailDirect {
		for _, c := range f.tailCopy[0] {
			copy(dst[c.dstOff:c.dstOff+c.size], t0[c.srcOff:c.srcOff+c.size])
		}
		for _, c := range f.tailCopy[1] {
			copy(dst[c.dstOff:c.dstOff+c.size], t1[c.srcOff:c.srcOff+c.size])
		}
		return
	}
	buf := wk.joinBuf
	for _, c := range f.copySpec[0] {
		copy(buf[c.dstOff:c.dstOff+c.size], t0[c.srcOff:c.srcOff+c.size])
	}
	for _, c := range f.copySpec[1] {
		copy(buf[c.dstOff:c.dstOff+c.size], t1[c.srcOff:c.srcOff+c.size])
	}
	prj(buf, dst)
}

// mergeMapState folds src's accumulators into dst: per-slot array adds
// for SUM/COUNT and min/max folds — O(groups × aggs) whatever the row
// count, the payoff of the flat value-directory layout. Empty slots
// hold the accumulators' identity values, so a blanket merge is exact.
func mergeMapState(dst, src *mapState) {
	for g, n := range src.tuples {
		dst.tuples[g] += n
	}
	for i := range src.sumI {
		dst.sumI[i] += src.sumI[i]
		dst.cnt[i] += src.cnt[i]
		dst.sumF[i] += src.sumF[i]
		if src.minI[i] < dst.minI[i] {
			dst.minI[i] = src.minI[i]
		}
		if src.maxI[i] > dst.maxI[i] {
			dst.maxI[i] = src.maxI[i]
		}
		if src.minF[i] < dst.minF[i] {
			dst.minF[i] = src.minF[i]
		}
		if src.maxF[i] > dst.maxF[i] {
			dst.maxF[i] = src.maxF[i]
		}
	}
}
