package codegen

import (
	"regexp"
	"strings"
	"testing"

	"hique/internal/catalog"
	"hique/internal/plan"
	"hique/internal/storage"
	"hique/internal/types"
)

// Regression tests for emitter bugs surfaced by type-checking the
// generated sources against the real hique/runtime ABI
// (enginetest.TestGeneratedSourcesTypeCheck). Before the fixes the
// emitted units did not compile:
//
//   - a filter on a column the projection drops positioned the read with
//     a guessed packed-view offset and a guessed Int kind, turning a
//     CHAR comparison into `runtime.Int64At(tuple, N) == "aa"`;
//   - COUNT(*)-only map aggregation declared the per-aggregate arrays
//     and never touched them (declared and not used);
//   - map-aggregation SUM/AVG over an integer column accumulated an
//     int64 into a float64 array without conversion.

func charCatalog() *catalog.Catalog {
	cat := catalog.New()
	ev := storage.NewTable("ev", types.NewSchema(
		types.Col("id", types.Int), types.CharCol("tag", 4),
		types.Col("price", types.Float)))
	for i := 0; i < 64; i++ {
		tag := "aa"
		if i%2 == 0 {
			tag = "bb"
		}
		ev.AppendRow(types.IntDatum(int64(i)), types.StringDatum(tag),
			types.FloatDatum(float64(i)))
	}
	cat.Register(ev)
	return cat
}

func TestStageFilterOnDroppedCharColumn(t *testing.T) {
	cat := charCatalog()
	p := mustPlan(t, cat, "SELECT id FROM ev WHERE tag = 'aa'")
	src := EmitSource(p)

	entry, err := cat.Lookup("ev")
	if err != nil {
		t.Fatal(err)
	}
	sch := entry.Table.Schema()
	tagOff := sch.Offset(1)
	tagEnd := tagOff + sch.Column(1).Size
	wantCmp := "runtime.CmpBytes(tuple[" +
		itoa(tagOff) + ":" + itoa(tagEnd) + "], \"aa\")"
	if !strings.Contains(src, wantCmp) {
		t.Errorf("string filter must compare the real input field %s:\n%s", wantCmp, src)
	}
	// The scan must slice input-width tuples, not staged-width ones: the
	// filter column lives past the 8-byte staged projection.
	wantSlice := "tuple := page.Data[t*" + itoa(sch.TupleSize())
	if !strings.Contains(src, wantSlice) {
		t.Errorf("scan must use the input tuple width %d:\n%s", sch.TupleSize(), src)
	}
	if bad := regexp.MustCompile(`Int64At\(tuple, \d+\) [!=]= "`); bad.MatchString(src) {
		t.Errorf("string filter rendered as an integer comparison:\n%s", src)
	}
}

func TestCountOnlyMapAggregationOmitsAggArrays(t *testing.T) {
	cat := testCatalog()
	p := mustPlan(t, cat, "SELECT qty, COUNT(*) AS n FROM sales GROUP BY qty")
	if p.Agg == nil || p.Agg.Alg != plan.MapAggregation {
		t.Skipf("planner chose %v; map expected", p.Agg)
	}
	src := EmitSource(p)
	if strings.Contains(src, "var aggs") {
		t.Errorf("COUNT(*)-only map aggregation must not declare unused agg arrays:\n%s", src)
	}
	if !strings.Contains(src, "var counts") {
		t.Errorf("map aggregation lost its counts array:\n%s", src)
	}
}

func TestMapAggregationIntSumConverts(t *testing.T) {
	cat := testCatalog()
	p := mustPlan(t, cat, "SELECT qty, SUM(sale_id) AS s FROM sales GROUP BY qty")
	if p.Agg == nil || p.Agg.Alg != plan.MapAggregation {
		t.Skipf("planner chose %v; map expected", p.Agg)
	}
	src := EmitSource(p)
	if !regexp.MustCompile(`aggs\[0\]\[slot\] \+= float64\(runtime\.Int64At`).MatchString(src) {
		t.Errorf("integer SUM must convert before accumulating into float64 arrays:\n%s", src)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
