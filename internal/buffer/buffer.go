// Package buffer implements HIQUE's buffer manager: a fixed pool of page
// frames with LRU replacement and pin/unpin accounting (paper §IV: "A buffer
// manager is responsible for buffering disk pages and providing concurrency
// control; it uses the LRU replacement policy").
//
// In-memory tables bypass the pool (their pages are already resident);
// file-backed tables are faulted in page by page through Pool.Pin. The pool
// is also where staged intermediate results live (paper §V-C).
package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"hique/internal/storage"
)

// PageKey identifies a page within the pool.
type PageKey struct {
	Table string
	Page  int
}

// Fetcher loads a page of a table from its backing store on a pool miss.
type Fetcher func(table string, page int) (*storage.Page, error)

// frame is one pool slot.
type frame struct {
	key  PageKey
	page *storage.Page
	pins int
	elem *list.Element // position in the LRU list; nil while pinned
}

// Pool is a buffer pool of page frames with LRU replacement.
// It is safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	capacity int
	fetch    Fetcher
	frames   map[PageKey]*frame
	lru      *list.List // unpinned frames, front = most recently used

	hits   int
	misses int
}

// NewPool creates a pool holding up to capacity pages.
func NewPool(capacity int, fetch Fetcher) *Pool {
	if capacity <= 0 {
		panic("buffer.NewPool: capacity must be positive")
	}
	return &Pool{
		capacity: capacity,
		fetch:    fetch,
		frames:   make(map[PageKey]*frame, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the pool size in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Stats returns cumulative pool hits and misses.
func (p *Pool) Stats() (hits, misses int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// Usage is a combined view of the two layers that hold transient pages:
// the buffer pool's frames (base-table pages faulted from disk) and the
// storage page arena (staged intermediates and pooled results). Staged
// intermediates live "inside the buffer pool" in the paper's model
// (§V-C); here they draw from the arena, so one snapshot reports both
// accountings side by side.
type Usage struct {
	// Hits and Misses are the pool's cumulative frame counters.
	Hits, Misses int
	// Resident is the number of occupied pool frames.
	Resident int
	// ArenaInUse is the number of arena frames currently held by live
	// pooled tables; a quiesced serving path returns it to zero.
	ArenaInUse int64
	// ArenaRecycled is the cumulative number of arena frames returned
	// for reuse.
	ArenaRecycled int64
}

// Usage snapshots the pool counters together with the storage page-arena
// balance.
func (p *Pool) Usage() Usage {
	inUse, recycled := storage.ArenaStats()
	p.mu.Lock()
	defer p.mu.Unlock()
	return Usage{
		Hits:          p.hits,
		Misses:        p.misses,
		Resident:      len(p.frames),
		ArenaInUse:    inUse,
		ArenaRecycled: recycled,
	}
}

// Pin returns the requested page, faulting it in if necessary, and pins it
// in the pool. Every Pin must be paired with an Unpin.
func (p *Pool) Pin(table string, page int) (*storage.Page, error) {
	key := PageKey{Table: table, Page: page}
	p.mu.Lock()
	defer p.mu.Unlock()

	if f, ok := p.frames[key]; ok {
		p.hits++
		if f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		return f.page, nil
	}

	p.misses++
	if len(p.frames) >= p.capacity {
		if err := p.evictLocked(); err != nil {
			return nil, err
		}
	}
	pg, err := p.fetch(table, page)
	if err != nil {
		return nil, fmt.Errorf("buffer: fetch %s/%d: %w", table, page, err)
	}
	f := &frame{key: key, page: pg, pins: 1}
	p.frames[key] = f
	return pg, nil
}

// Unpin releases one pin on the page. Fully-unpinned pages become eligible
// for LRU eviction.
func (p *Pool) Unpin(table string, page int) {
	key := PageKey{Table: table, Page: page}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[key]
	if !ok {
		panic(fmt.Sprintf("buffer.Unpin: page %s/%d not resident", table, page))
	}
	if f.pins == 0 {
		panic(fmt.Sprintf("buffer.Unpin: page %s/%d not pinned", table, page))
	}
	f.pins--
	if f.pins == 0 {
		f.elem = p.lru.PushFront(f)
	}
}

// evictLocked removes the least recently used unpinned frame.
func (p *Pool) evictLocked() error {
	back := p.lru.Back()
	if back == nil {
		return fmt.Errorf("buffer: pool full and all %d pages pinned", p.capacity)
	}
	f := back.Value.(*frame)
	p.lru.Remove(back)
	delete(p.frames, f.key)
	return nil
}

// Resident reports whether the page currently occupies a frame.
func (p *Pool) Resident(table string, page int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[PageKey{Table: table, Page: page}]
	return ok
}

// Len returns the number of occupied frames.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Flush drops all unpinned frames. It returns an error if any page remains
// pinned, since that indicates a pin leak.
func (p *Pool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for e := p.lru.Front(); e != nil; e = e.Next() {
		delete(p.frames, e.Value.(*frame).key)
	}
	p.lru.Init()
	if len(p.frames) > 0 {
		return fmt.Errorf("buffer: %d pages still pinned at Flush", len(p.frames))
	}
	return nil
}

// ManagerFetcher adapts a storage manager into a page Fetcher: pool misses
// read the page from the table's backing file. Tables are cached after the
// first load; the pool still bounds how many of their pages are resident.
func ManagerFetcher(m *storage.Manager) Fetcher {
	var mu sync.Mutex
	cache := map[string]*storage.Table{}
	return func(table string, page int) (*storage.Page, error) {
		mu.Lock()
		t, ok := cache[table]
		mu.Unlock()
		if !ok {
			var err error
			t, err = m.Load(table)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			cache[table] = t
			mu.Unlock()
		}
		if page < 0 || page >= t.NumPages() {
			return nil, fmt.Errorf("buffer: table %q has no page %d", table, page)
		}
		return t.Page(page), nil
	}
}
