package buffer

import (
	"fmt"
	"sync"
	"testing"

	"hique/internal/storage"
	"hique/internal/types"
)

// fakeFetcher synthesises pages on demand and counts fetches.
func fakeFetcher(t *testing.T) (Fetcher, *int) {
	t.Helper()
	count := 0
	schema := types.NewSchema(types.Col("id", types.Int))
	return func(table string, page int) (*storage.Page, error) {
		count++
		p := storage.NewPage(schema.TupleSize())
		p.Append(schema.EncodeRow(types.IntDatum(int64(page))))
		return p, nil
	}, &count
}

func TestPinMissThenHit(t *testing.T) {
	fetch, fetches := fakeFetcher(t)
	pool := NewPool(4, fetch)
	pg, err := pool.Pin("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := types.GetInt(pg.Tuple(0), 0); got != 0 {
		t.Errorf("page content = %d, want 0", got)
	}
	pool.Unpin("t", 0)
	if _, err := pool.Pin("t", 0); err != nil {
		t.Fatal(err)
	}
	pool.Unpin("t", 0)
	if *fetches != 1 {
		t.Errorf("fetches = %d, want 1 (second pin should hit)", *fetches)
	}
	hits, misses := pool.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("Stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	fetch, _ := fakeFetcher(t)
	pool := NewPool(2, fetch)
	for i := 0; i < 2; i++ {
		if _, err := pool.Pin("t", i); err != nil {
			t.Fatal(err)
		}
		pool.Unpin("t", i)
	}
	// Touch page 0 so page 1 becomes LRU.
	if _, err := pool.Pin("t", 0); err != nil {
		t.Fatal(err)
	}
	pool.Unpin("t", 0)
	// Faulting page 2 must evict page 1, not page 0.
	if _, err := pool.Pin("t", 2); err != nil {
		t.Fatal(err)
	}
	pool.Unpin("t", 2)
	if !pool.Resident("t", 0) {
		t.Error("recently-used page 0 was evicted")
	}
	if pool.Resident("t", 1) {
		t.Error("LRU page 1 was not evicted")
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	fetch, _ := fakeFetcher(t)
	pool := NewPool(2, fetch)
	if _, err := pool.Pin("t", 0); err != nil { // stays pinned
		t.Fatal(err)
	}
	if _, err := pool.Pin("t", 1); err != nil {
		t.Fatal(err)
	}
	pool.Unpin("t", 1)
	if _, err := pool.Pin("t", 2); err != nil { // must evict page 1
		t.Fatal(err)
	}
	if !pool.Resident("t", 0) {
		t.Error("pinned page was evicted")
	}
	// Pool now full with two pinned pages: next fault must fail.
	if _, err := pool.Pin("t", 3); err == nil {
		t.Error("Pin succeeded with all frames pinned")
	}
	pool.Unpin("t", 0)
	pool.Unpin("t", 2)
}

func TestUnpinErrors(t *testing.T) {
	fetch, _ := fakeFetcher(t)
	pool := NewPool(2, fetch)
	mustPanic(t, func() { pool.Unpin("t", 9) })
	if _, err := pool.Pin("t", 0); err != nil {
		t.Fatal(err)
	}
	pool.Unpin("t", 0)
	mustPanic(t, func() { pool.Unpin("t", 0) })
}

func TestFlush(t *testing.T) {
	fetch, _ := fakeFetcher(t)
	pool := NewPool(4, fetch)
	for i := 0; i < 3; i++ {
		if _, err := pool.Pin("t", i); err != nil {
			t.Fatal(err)
		}
		pool.Unpin("t", i)
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 0 {
		t.Errorf("after Flush, Len = %d", pool.Len())
	}
	// A leaked pin must surface as an error.
	if _, err := pool.Pin("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := pool.Flush(); err == nil {
		t.Error("Flush with pinned page should error")
	}
	pool.Unpin("t", 0)
}

func TestConcurrentPins(t *testing.T) {
	fetch, _ := fakeFetcher(t)
	pool := NewPool(8, fetch)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				page := i % 4
				if _, err := pool.Pin(fmt.Sprintf("t%d", g%2), page); err != nil {
					errs <- err
					return
				}
				pool.Unpin(fmt.Sprintf("t%d", g%2), page)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestManagerFetcher(t *testing.T) {
	m, err := storage.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	schema := types.NewSchema(types.Col("v", types.Int))
	tbl := storage.NewTable("diskt", schema)
	for i := 0; i < 2000; i++ {
		tbl.AppendRow(types.IntDatum(int64(i)))
	}
	if err := m.Save(tbl); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4, ManagerFetcher(m))
	pg, err := pool.Pin("diskt", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumTuples() == 0 {
		t.Error("fetched page empty")
	}
	pool.Unpin("diskt", 1)
	if _, err := pool.Pin("diskt", 9999); err == nil {
		t.Error("out-of-range page should fail")
	}
	if _, err := pool.Pin("missing", 0); err == nil {
		t.Error("missing table should fail")
	}
}
