package hardcoded

import (
	"hique/internal/core"
	"hique/internal/hwsim"
	"hique/internal/storage"
	"hique/internal/types"
)

// staged is a sorted (or partitioned) tuple array plus its synthetic base
// address for the cache simulator.
type staged struct {
	tuples [][]byte
	base   int64
}

func (s *staged) addr(i int) int64 { return s.base + int64(i)*TupleWidth }

// keyCmp is the shared type-specific comparator (field 0, int64).
func keyCmp(a, b []byte) int {
	x, y := types.GetInt(a, 0), types.GetInt(b, 0)
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

// stageSorted materialises and sorts a table on its key. The code (and
// therefore the simulated access pattern) is identical for all five
// shapes, per §VI-A: staging differences are not what the experiment
// measures.
func stageSorted(t *storage.Table, probe *hwsim.Probe) staged {
	tuples := core.Flatten(t)
	core.SortTuples(tuples, keyCmp)
	out := staged{tuples: tuples}
	if probe != nil {
		out.base = probe.AllocBase(int64(len(tuples)) * TupleWidth)
		chargeScan(probe, t, len(tuples))
		chargeSort(probe, out.base, len(tuples))
	}
	return out
}

// stagePartitioned hash-partitions a table into m buckets and sorts each
// bucket (the hybrid hash-sort staging). Shared across shapes.
func stagePartitioned(t *storage.Table, m int, probe *hwsim.Probe) []staged {
	parts := make([][][]byte, m)
	mask := uint64(m - 1)
	t.Scan(func(tuple []byte) bool {
		p := core.HashInt(types.GetInt(tuple, 0)) & mask
		parts[p] = append(parts[p], tuple)
		return true
	})
	out := make([]staged, m)
	for i := range parts {
		core.SortTuples(parts[i], keyCmp)
		out[i] = staged{tuples: parts[i]}
		if probe != nil {
			out[i].base = probe.AllocBase(int64(len(parts[i])) * TupleWidth)
		}
	}
	if probe != nil {
		chargeScan(probe, t, t.NumRows())
		// Partition writes: one tuple write per input tuple, spread
		// over m open partition buffers.
		for i := range out {
			chargeSort(probe, out[i].base, len(out[i].tuples))
		}
	}
	return out
}

// chargeScan models one sequential pass over the input heap.
func chargeScan(probe *hwsim.Probe, t *storage.Table, rows int) {
	base := probe.AllocBase(int64(t.NumPages()) * storage.PageSize)
	for p := 0; p < t.NumPages(); p++ {
		pageBase := base + int64(p)*storage.PageSize
		n := t.Page(p).NumTuples()
		for i := 0; i < n; i++ {
			probe.Read(pageBase+storage.HeaderSize+int64(i)*TupleWidth, TupleWidth)
		}
		probe.Call() // read_page
		probe.Op(8)
	}
	probe.Op(rows * 2)
}

// chargeSort models the shared quicksort-and-merge over a staged area:
// n·log2(runLen) comparisons within L2-resident runs (two key reads each),
// then one sequential merge pass.
func chargeSort(probe *hwsim.Probe, base int64, n int) {
	if n < 2 {
		return
	}
	runLen := (2 << 20) / 2 / TupleWidth
	x := uint64(base) | 1
	log2 := 0
	for 1<<log2 < min(runLen, n) {
		log2++
	}
	compares := n * log2
	for c := 0; c < compares; c++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		runStart := (int(x>>33) % max(n/max(runLen, 1), 1)) * runLen
		i := runStart + int(x%uint64(min(runLen, n)))
		j := runStart + int((x>>17)%uint64(min(runLen, n)))
		if i >= n {
			i = n - 1
		}
		if j >= n {
			j = n - 1
		}
		probe.Read(base+int64(i)*TupleWidth, 8)
		probe.Read(base+int64(j)*TupleWidth, 8)
		probe.Op(4)
	}
	if n > runLen {
		// Merge pass: sequential read of the whole area.
		for i := 0; i < n; i++ {
			probe.Read(base+int64(i)*TupleWidth, TupleWidth)
		}
		probe.Op(n * 3)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// emitBuffer simulates result propagation without materialising output
// (the paper does not materialise results either): tuples are copied into
// a reusable, cache-hot buffer.
type emitBuffer struct {
	buf  []byte
	base int64
	rows int
}

func newEmitBuffer(probe *hwsim.Probe, width int) *emitBuffer {
	e := &emitBuffer{buf: make([]byte, width)}
	if probe != nil {
		e.base = probe.AllocBase(int64(width))
	}
	return e
}
