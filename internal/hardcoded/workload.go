// Package hardcoded implements the five code shapes of the paper's
// microbenchmark study (§VI-A) over the four benchmark queries (two joins,
// two aggregations), with optional hardware-simulation probes:
//
//	Generic iterators    — boxed rows, open/next/close per tuple, generic
//	                       comparison functions (dynamic dispatch).
//	Optimized iterators  — iterator calls per tuple, but type-specialised
//	                       predicates and raw-byte rows.
//	Generic hard-coded   — plain loops, but every field access and
//	                       predicate goes through a function variable.
//	Optimized hard-coded — plain loops with pointer-arithmetic access;
//	                       result emission still a function call.
//	HIQUE                — the fully generated shape: fused loops, inlined
//	                       predicates and emission (Listings 1 and 2).
//
// All shapes share the same staging implementation (partitioning and the
// type-specific quicksort), exactly as in the paper: "Since all versions
// implement the same algorithm [and] use the same type-specific
// implementation of quicksort ... the differences in execution times are
// narrowed" (§VI-A). Differences show in the evaluation loops.
package hardcoded

import (
	"hique/internal/storage"
	"hique/internal/types"
)

// TupleWidth is the microbenchmark tuple size: 72 bytes = 9 int64 fields
// (key + 8 payload), matching the paper's 72-byte tuples.
const TupleWidth = 72

// joinSchema is key + 8 payload ints.
func joinSchema() *types.Schema {
	cols := make([]types.Column, 9)
	cols[0] = types.Col("key", types.Int)
	names := []string{"f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8"}
	for i, n := range names {
		cols[i+1] = types.Col(n, types.Int)
	}
	return types.NewSchema(cols...)
}

// BuildJoinInput builds a table of n 72-byte tuples whose key column has
// n/matches distinct values, each appearing `matches` times, scattered so
// the input is not pre-sorted.
func BuildJoinInput(name string, n, distinct int) *storage.Table {
	t := storage.NewTable(name, joinSchema())
	s := t.Schema()
	buf := make([]byte, s.TupleSize())
	x := uint64(0x853c49e6748fea9b)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		key := int64(i % distinct)
		types.PutInt(buf, 0, key)
		for f := 1; f < 9; f++ {
			types.PutInt(buf, f*8, int64(x)+int64(f))
		}
		t.Append(buf)
	}
	return t
}

// BuildAggInput builds the aggregation input: n 72-byte tuples with the
// grouping attribute in field 0 taking `distinct` values and two summable
// payload fields.
func BuildAggInput(n, distinct int) *storage.Table {
	t := storage.NewTable("agginput", joinSchema())
	s := t.Schema()
	buf := make([]byte, s.TupleSize())
	x := uint64(0x2545F4914F6CDD1D)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		types.PutInt(buf, 0, int64(x%uint64(distinct)))
		types.PutInt(buf, 8, int64(i))
		types.PutInt(buf, 16, int64(i%1000))
		for f := 3; f < 9; f++ {
			types.PutInt(buf, f*8, int64(f))
		}
		t.Append(buf)
	}
	return t
}

// Shape enumerates the five §VI-A code shapes.
type Shape int

const (
	// GenericIterators is the fully generic Volcano configuration.
	GenericIterators Shape = iota
	// OptimizedIterators specialises predicates but keeps iterator calls.
	OptimizedIterators
	// GenericHardcoded is a hand-written plan with generic access functions.
	GenericHardcoded
	// OptimizedHardcoded adds pointer-arithmetic field access.
	OptimizedHardcoded
	// Hique is the generated-code shape.
	Hique
)

// String names the shape as in the paper's figures.
func (s Shape) String() string {
	return [...]string{
		"Generic iterators",
		"Optimized iterators",
		"Generic hard-coded",
		"Optimized hard-coded",
		"HIQUE",
	}[s]
}

// Shapes lists all five shapes in figure order.
func Shapes() []Shape {
	return []Shape{GenericIterators, OptimizedIterators, GenericHardcoded, OptimizedHardcoded, Hique}
}
