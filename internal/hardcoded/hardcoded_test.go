package hardcoded

import (
	"testing"

	"hique/internal/hwsim"
)

func TestMergeJoinAllShapesAgree(t *testing.T) {
	// 1000 outer tuples with 10 distinct keys; 1000 inner with the same
	// 10 keys: each outer matches 100 inner -> 100,000 results.
	outer := BuildJoinInput("outer", 1000, 10)
	inner := BuildJoinInput("inner", 1000, 10)
	want := 100000
	for _, shape := range Shapes() {
		got := RunMergeJoin(shape, outer, inner, nil)
		if got != want {
			t.Errorf("%v: merge join count = %d, want %d", shape, got, want)
		}
	}
}

func TestHybridJoinAllShapesAgree(t *testing.T) {
	// 10k outer with 1000 distinct keys; 10k inner with 1000 keys: each
	// key pairs 10x10 -> 100 results per key -> 100,000 total.
	outer := BuildJoinInput("outer", 10000, 1000)
	inner := BuildJoinInput("inner", 10000, 1000)
	want := 100000
	for _, shape := range Shapes() {
		got := RunHybridJoin(shape, outer, inner, 16, nil)
		if got != want {
			t.Errorf("%v: hybrid join count = %d, want %d", shape, got, want)
		}
	}
}

func TestHybridAggAllShapesAgree(t *testing.T) {
	input := BuildAggInput(20000, 500)
	for _, shape := range Shapes() {
		got := RunHybridAgg(shape, input, 8, nil)
		if got != 500 {
			t.Errorf("%v: hybrid agg groups = %d, want 500", shape, got)
		}
	}
}

func TestMapAggAllShapesAgree(t *testing.T) {
	input := BuildAggInput(20000, 10)
	for _, shape := range Shapes() {
		got := RunMapAgg(shape, input, 10, nil)
		if got != 10 {
			t.Errorf("%v: map agg groups = %d, want 10", shape, got)
		}
	}
}

func TestProbeCountersOrdering(t *testing.T) {
	// The paper's central §VI-A observation: function calls and retired
	// instructions decrease monotonically from generic iterators to the
	// HIQUE shape.
	outer := BuildJoinInput("outer", 2000, 20)
	inner := BuildJoinInput("inner", 2000, 20)
	var calls, instr []uint64
	for _, shape := range Shapes() {
		probe := hwsim.NewProbe(hwsim.Core2Duo6300())
		RunMergeJoin(shape, outer, inner, probe)
		calls = append(calls, probe.C.FunctionCalls)
		instr = append(instr, probe.C.Instructions)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] > calls[i-1] {
			t.Errorf("function calls increased from %v (%d) to %v (%d)",
				Shapes()[i-1], calls[i-1], Shapes()[i], calls[i])
		}
	}
	if instr[len(instr)-1] >= instr[0] {
		t.Errorf("HIQUE retired instructions (%d) not below generic iterators (%d)",
			instr[len(instr)-1], instr[0])
	}
}

func TestProbeAggCountersOrdering(t *testing.T) {
	input := BuildAggInput(20000, 10)
	var calls []uint64
	for _, shape := range Shapes() {
		probe := hwsim.NewProbe(hwsim.Core2Duo6300())
		RunMapAgg(shape, input, 10, probe)
		calls = append(calls, probe.C.FunctionCalls)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] > calls[i-1] {
			t.Errorf("map agg function calls increased from %v (%d) to %v (%d)",
				Shapes()[i-1], calls[i-1], Shapes()[i], calls[i])
		}
	}
}

func TestBuildInputsShape(t *testing.T) {
	tbl := BuildJoinInput("t", 500, 50)
	if tbl.NumRows() != 500 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Schema().TupleSize() != TupleWidth {
		t.Fatalf("tuple size = %d, want %d", tbl.Schema().TupleSize(), TupleWidth)
	}
	agg := BuildAggInput(100, 7)
	if agg.NumRows() != 100 || agg.Schema().TupleSize() != TupleWidth {
		t.Fatal("agg input malformed")
	}
}
