package hardcoded

import (
	"hique/internal/hwsim"
	"hique/internal/storage"
	"hique/internal/types"
)

// RunMergeJoin stages both inputs sorted and evaluates the merge join in
// the given code shape, returning the output cardinality (Join Query #1 of
// §VI-A). Output tuples are propagated, not materialised.
func RunMergeJoin(shape Shape, outer, inner *storage.Table, probe *hwsim.Probe) int {
	a := stageSorted(outer, probe)
	b := stageSorted(inner, probe)
	out := newEmitBuffer(probe, 2*TupleWidth)
	return evalMerge(shape, a, b, out, probe)
}

// RunHybridJoin stages both inputs hash-partitioned and sorted, then
// merge-joins corresponding partitions (Join Query #2: hybrid
// hash-sort-merge join).
func RunHybridJoin(shape Shape, outer, inner *storage.Table, partitions int, probe *hwsim.Probe) int {
	pa := stagePartitioned(outer, partitions, probe)
	pb := stagePartitioned(inner, partitions, probe)
	out := newEmitBuffer(probe, 2*TupleWidth)
	total := 0
	for p := range pa {
		if len(pa[p].tuples) == 0 || len(pb[p].tuples) == 0 {
			continue
		}
		total += evalMerge(shape, pa[p], pb[p], out, probe)
	}
	return total
}

func evalMerge(shape Shape, a, b staged, out *emitBuffer, probe *hwsim.Probe) int {
	switch shape {
	case GenericIterators:
		return mergeGenericIterators(a, b, out, probe)
	case OptimizedIterators:
		return mergeOptimizedIterators(a, b, out, probe)
	case GenericHardcoded:
		return mergeGenericHardcoded(a, b, out, probe)
	case OptimizedHardcoded:
		return mergeOptimizedHardcoded(a, b, out, probe)
	default:
		return mergeHique(a, b, out, probe)
	}
}

// --- HIQUE shape: the generated code — fused loops, everything inlined. ----

func mergeHique(a, b staged, out *emitBuffer, probe *hwsim.Probe) int {
	count := 0
	i, j := 0, 0
	na, nb := len(a.tuples), len(b.tuples)
	for i < na && j < nb {
		ka := types.GetInt(a.tuples[i], 0)
		kb := types.GetInt(b.tuples[j], 0)
		probe.Read(a.addr(i), 8)
		probe.Read(b.addr(j), 8)
		probe.Op(3)
		if ka < kb {
			i++
			continue
		}
		if ka > kb {
			j++
			continue
		}
		ea := i + 1
		for ea < na && types.GetInt(a.tuples[ea], 0) == ka {
			probe.Read(a.addr(ea), 8)
			probe.Op(2)
			ea++
		}
		eb := j + 1
		for eb < nb && types.GetInt(b.tuples[eb], 0) == kb {
			probe.Read(b.addr(eb), 8)
			probe.Op(2)
			eb++
		}
		for x := i; x < ea; x++ {
			ta := a.tuples[x]
			for y := j; y < eb; y++ {
				copy(out.buf, ta)
				copy(out.buf[TupleWidth:], b.tuples[y])
				probe.Read(a.addr(x), TupleWidth)
				probe.Read(b.addr(y), TupleWidth)
				probe.Write(out.base, 2*TupleWidth)
				probe.Op(4)
				count++
			}
		}
		i, j = ea, eb
	}
	out.rows = count
	return count
}

// --- Optimized hard-coded: pointer arithmetic, but result emission is a
// separate (non-inlined) function call. -------------------------------------

type hcEmitter struct {
	out   *emitBuffer
	probe *hwsim.Probe
	count int
}

//go:noinline
func (e *hcEmitter) emit(ta, tb []byte, addrA, addrB int64) {
	copy(e.out.buf, ta)
	copy(e.out.buf[TupleWidth:], tb)
	e.probe.Call()
	e.probe.Read(addrA, TupleWidth)
	e.probe.Read(addrB, TupleWidth)
	e.probe.Write(e.out.base, 2*TupleWidth)
	e.probe.Op(4)
	e.count++
}

func mergeOptimizedHardcoded(a, b staged, out *emitBuffer, probe *hwsim.Probe) int {
	em := &hcEmitter{out: out, probe: probe}
	i, j := 0, 0
	na, nb := len(a.tuples), len(b.tuples)
	for i < na && j < nb {
		ka := types.GetInt(a.tuples[i], 0)
		kb := types.GetInt(b.tuples[j], 0)
		probe.Read(a.addr(i), 8)
		probe.Read(b.addr(j), 8)
		probe.Op(3)
		if ka < kb {
			i++
			continue
		}
		if ka > kb {
			j++
			continue
		}
		ea := i + 1
		for ea < na && types.GetInt(a.tuples[ea], 0) == ka {
			probe.Read(a.addr(ea), 8)
			probe.Op(2)
			ea++
		}
		eb := j + 1
		for eb < nb && types.GetInt(b.tuples[eb], 0) == kb {
			probe.Read(b.addr(eb), 8)
			probe.Op(2)
			eb++
		}
		probe.Call() // update_bounds: one helper call per matching group
		for x := i; x < ea; x++ {
			ta := a.tuples[x]
			for y := j; y < eb; y++ {
				copy(out.buf, ta)
				copy(out.buf[TupleWidth:], b.tuples[y])
				probe.Read(a.addr(x), TupleWidth)
				probe.Read(b.addr(y), TupleWidth)
				probe.Write(out.base, 2*TupleWidth)
				probe.Op(4)
				em.count++
			}
		}
		i, j = ea, eb
	}
	out.rows = em.count
	return em.count
}

// --- Generic hard-coded: plain loops, but field access and comparison go
// through function variables (generic access routines). ----------------------

func mergeGenericHardcoded(a, b staged, out *emitBuffer, probe *hwsim.Probe) int {
	getField := func(t []byte, off int, addr int64) int64 {
		probe.Call()
		probe.Read(addr+int64(off), 8)
		probe.Op(2)
		return types.GetInt(t, off)
	}
	compare := func(x, y int64) int {
		probe.Call()
		probe.Op(2)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
	em := &hcEmitter{out: out, probe: probe}

	count := 0
	i, j := 0, 0
	na, nb := len(a.tuples), len(b.tuples)
	for i < na && j < nb {
		c := compare(getField(a.tuples[i], 0, a.addr(i)), getField(b.tuples[j], 0, b.addr(j)))
		if c < 0 {
			i++
			continue
		}
		if c > 0 {
			j++
			continue
		}
		ka := getField(a.tuples[i], 0, a.addr(i))
		ea := i + 1
		for ea < na && compare(getField(a.tuples[ea], 0, a.addr(ea)), ka) == 0 {
			ea++
		}
		kb := getField(b.tuples[j], 0, b.addr(j))
		eb := j + 1
		for eb < nb && compare(getField(b.tuples[eb], 0, b.addr(eb)), kb) == 0 {
			eb++
		}
		for x := i; x < ea; x++ {
			for y := j; y < eb; y++ {
				em.emit(a.tuples[x], b.tuples[y], a.addr(x), b.addr(y))
				count++
			}
		}
		i, j = ea, eb
	}
	out.rows = count
	return count
}

// --- Iterator shapes ---------------------------------------------------------

// byteIter streams staged tuples through per-tuple next() calls (the
// optimized-iterator configuration: raw bytes, specialised comparisons,
// but the call-per-tuple discipline of the iterator model).
type byteIter struct {
	s         staged
	pos       int
	probe     *hwsim.Probe
	stateAddr int64
}

func newByteIter(s staged, probe *hwsim.Probe) *byteIter {
	it := &byteIter{s: s, probe: probe}
	if probe != nil {
		it.stateAddr = probe.AllocBase(64)
	}
	return it
}

//go:noinline
func (it *byteIter) next() ([]byte, int64, bool) {
	// Caller request + callee propagation through the operator chain
	// (scan -> staged replay -> consumer): at least two calls per edge
	// per in-flight tuple (§II-B), plus iterator-state manipulation.
	it.probe.Call()
	it.probe.Call()
	it.probe.Call()
	it.probe.Call()
	it.probe.Read(it.stateAddr, 16)
	it.probe.Op(4)
	if it.pos >= len(it.s.tuples) {
		return nil, 0, false
	}
	t := it.s.tuples[it.pos]
	addr := it.s.addr(it.pos)
	it.probe.Read(addr, TupleWidth)
	it.pos++
	return t, addr, true
}

func mergeOptimizedIterators(a, b staged, out *emitBuffer, probe *hwsim.Probe) int {
	ia, ib := newByteIter(a, probe), newByteIter(b, probe)
	em := &hcEmitter{out: out, probe: probe}
	count := 0

	ta, aAddr, okA := ia.next()
	tb, bAddr, okB := ib.next()
	type buffered struct {
		t    []byte
		addr int64
	}
	var group []buffered
	for okA && okB {
		ka := types.GetInt(ta, 0)
		kb := types.GetInt(tb, 0)
		probe.Op(3)
		switch {
		case ka < kb:
			ta, aAddr, okA = ia.next()
		case ka > kb:
			tb, bAddr, okB = ib.next()
		default:
			group = group[:0]
			for okB && types.GetInt(tb, 0) == ka {
				group = append(group, buffered{tb, bAddr})
				tb, bAddr, okB = ib.next()
			}
			for okA && types.GetInt(ta, 0) == ka {
				for _, g := range group {
					em.emit(ta, g.t, aAddr, g.addr)
					count++
				}
				ta, aAddr, okA = ia.next()
			}
		}
	}
	out.rows = count
	return count
}

// boxedIter decodes every tuple into datums through generic per-field
// accessors: the fully generic iterator configuration.
type boxedIter struct {
	s         staged
	schema    *types.Schema
	pos       int
	probe     *hwsim.Probe
	stateAddr int64
}

func newBoxedIter(s staged, probe *hwsim.Probe) *boxedIter {
	it := &boxedIter{s: s, schema: joinSchema(), probe: probe}
	if probe != nil {
		it.stateAddr = probe.AllocBase(64)
	}
	return it
}

//go:noinline
func (it *boxedIter) next() ([]types.Datum, int64, bool) {
	it.probe.Call()
	it.probe.Call()
	it.probe.Call()
	it.probe.Call()
	it.probe.Read(it.stateAddr, 16)
	it.probe.Op(4)
	if it.pos >= len(it.s.tuples) {
		return nil, 0, false
	}
	t := it.s.tuples[it.pos]
	addr := it.s.addr(it.pos)
	row := make([]types.Datum, it.schema.NumColumns())
	for i := 0; i < it.schema.NumColumns(); i++ {
		// Each field access is a virtual accessor call in the generic
		// configuration.
		it.probe.Call()
		it.probe.Read(addr+int64(it.schema.Offset(i)), 8)
		it.probe.Op(2)
		row[i] = it.schema.GetDatum(t, i)
	}
	it.pos++
	return row, addr, true
}

func mergeGenericIterators(a, b staged, out *emitBuffer, probe *hwsim.Probe) int {
	ia, ib := newBoxedIter(a, probe), newBoxedIter(b, probe)
	schema := joinSchema()
	count := 0

	cmp := func(x, y types.Datum) int {
		probe.Call()
		probe.Op(3)
		return types.Compare(x, y)
	}
	emit := func(l, r []types.Datum, lAddr, rAddr int64) {
		probe.Call()
		probe.Call()
		for i := range l {
			schema.PutDatum(out.buf[:TupleWidth], i, l[i])
		}
		for i := range r {
			schema.PutDatum(out.buf[TupleWidth:], i, r[i])
		}
		// The boxed copies are re-read field by field while building
		// the result, on top of the output write.
		probe.Read(lAddr, TupleWidth)
		probe.Read(rAddr, TupleWidth)
		probe.Write(out.base, 2*TupleWidth)
		probe.Op(20)
		count++
	}

	type boxed struct {
		row  []types.Datum
		addr int64
	}
	ra, aAddr, okA := ia.next()
	rb, bAddr, okB := ib.next()
	var group []boxed
	for okA && okB {
		c := cmp(ra[0], rb[0])
		switch {
		case c < 0:
			ra, aAddr, okA = ia.next()
		case c > 0:
			rb, bAddr, okB = ib.next()
		default:
			key := ra[0]
			group = group[:0]
			for okB && cmp(rb[0], key) == 0 {
				group = append(group, boxed{rb, bAddr})
				rb, bAddr, okB = ib.next()
			}
			for okA && cmp(ra[0], key) == 0 {
				for _, g := range group {
					emit(ra, g.row, aAddr, g.addr)
				}
				ra, aAddr, okA = ia.next()
			}
		}
	}
	out.rows = count
	return count
}
