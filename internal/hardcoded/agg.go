package hardcoded

import (
	"hique/internal/hwsim"
	"hique/internal/storage"
	"hique/internal/types"
)

// RunHybridAgg evaluates Aggregation Query #1 of §VI-A: hybrid hash-sort
// aggregation of two SUMs grouped by field 0, in the given code shape.
// Returns the number of groups.
func RunHybridAgg(shape Shape, input *storage.Table, partitions int, probe *hwsim.Probe) int {
	parts := stagePartitioned(input, partitions, probe)
	out := newEmitBuffer(probe, 24) // group key + two sums
	groups := 0
	for p := range parts {
		if len(parts[p].tuples) == 0 {
			continue
		}
		groups += evalSortedAgg(shape, parts[p], out, probe)
	}
	return groups
}

// RunMapAgg evaluates Aggregation Query #2: map aggregation through a value
// directory, single pass, no staging.
func RunMapAgg(shape Shape, input *storage.Table, distinct int, probe *hwsim.Probe) int {
	// The value directory: sorted keys 0..distinct-1 (built from
	// catalogue statistics in the full engine).
	dir := make([]int64, distinct)
	for i := range dir {
		dir[i] = int64(i)
	}
	sums1 := make([]int64, distinct)
	sums2 := make([]int64, distinct)
	seen := make([]int64, distinct)
	var dirBase, arrBase int64
	if probe != nil {
		dirBase = probe.AllocBase(int64(distinct) * 8)
		arrBase = probe.AllocBase(int64(distinct) * 24)
	}

	in := staged{tuples: nil}
	if probe != nil {
		in.base = probe.AllocBase(int64(input.NumRows()) * TupleWidth)
	}
	tuples := flattenWithProbe(input, &in)

	switch shape {
	case GenericIterators:
		it := newBoxedIter(staged{tuples: tuples, base: in.base}, probe)
		lookup := func(v types.Datum) int {
			probe.Call()
			return dirSearch(dir, v.I, probe, dirBase)
		}
		for {
			row, _, ok := it.next()
			if !ok {
				break
			}
			g := lookup(row[0])
			probe.Call() // boxed accumulate
			probe.Write(arrBase+int64(g)*24, 24)
			probe.Op(8)
			sums1[g] += row[1].I
			sums2[g] += row[2].I
			seen[g]++
		}
	case OptimizedIterators:
		it := newByteIter(staged{tuples: tuples, base: in.base}, probe)
		for {
			t, _, ok := it.next()
			if !ok {
				break
			}
			g := dirSearch(dir, types.GetInt(t, 0), probe, dirBase)
			probe.Write(arrBase+int64(g)*24, 24)
			probe.Op(6)
			sums1[g] += types.GetInt(t, 8)
			sums2[g] += types.GetInt(t, 16)
			seen[g]++
		}
	case GenericHardcoded:
		getField := func(t []byte, off int, addr int64) int64 {
			probe.Call()
			probe.Read(addr+int64(off), 8)
			probe.Op(2)
			return types.GetInt(t, off)
		}
		for i, t := range tuples {
			addr := in.base + int64(i)*TupleWidth
			g := dirSearch(dir, getField(t, 0, addr), probe, dirBase)
			probe.Write(arrBase+int64(g)*24, 24)
			probe.Op(6)
			sums1[g] += getField(t, 8, addr)
			sums2[g] += getField(t, 16, addr)
			seen[g]++
		}
	case OptimizedHardcoded:
		for i, t := range tuples {
			addr := in.base + int64(i)*TupleWidth
			probe.Read(addr, 24)
			g := dirSearch(dir, types.GetInt(t, 0), probe, dirBase)
			probe.Write(arrBase+int64(g)*24, 24)
			probe.Op(6)
			sums1[g] += types.GetInt(t, 8)
			sums2[g] += types.GetInt(t, 16)
			seen[g]++
		}
		probe.Call() // emit-groups helper, once per pass
	default: // Hique: everything inlined in one succinct block (§VI-C).
		for i, t := range tuples {
			probe.Read(in.base+int64(i)*TupleWidth, 24)
			g := dirSearch(dir, types.GetInt(t, 0), probe, dirBase)
			probe.Write(arrBase+int64(g)*24, 24)
			probe.Op(5)
			sums1[g] += types.GetInt(t, 8)
			sums2[g] += types.GetInt(t, 16)
			seen[g]++
		}
	}

	groups := 0
	for _, n := range seen {
		if n > 0 {
			groups++
		}
	}
	return groups
}

func flattenWithProbe(t *storage.Table, s *staged) [][]byte {
	out := make([][]byte, 0, t.NumRows())
	t.Scan(func(tuple []byte) bool {
		out = append(out, tuple)
		return true
	})
	return out
}

// dirSearch is the binary search in a sorted value directory (§V-B).
func dirSearch(dir []int64, v int64, probe *hwsim.Probe, base int64) int {
	lo, hi := 0, len(dir)
	for lo < hi {
		mid := (lo + hi) / 2
		probe.Read(base+int64(mid)*8, 8)
		probe.Op(2)
		if dir[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(dir) && dir[lo] == v {
		return lo
	}
	return -1
}

// evalSortedAgg scans one sorted partition, closing groups on key change
// and summing fields 1 and 2 (Aggregation Query #1's two SUMs).
func evalSortedAgg(shape Shape, part staged, out *emitBuffer, probe *hwsim.Probe) int {
	switch shape {
	case GenericIterators:
		return sortedAggGenericIterators(part, out, probe)
	case OptimizedIterators:
		return sortedAggOptimizedIterators(part, out, probe)
	case GenericHardcoded:
		return sortedAggGenericHardcoded(part, out, probe)
	case OptimizedHardcoded:
		return sortedAggOptimizedHardcoded(part, out, probe)
	default:
		return sortedAggHique(part, out, probe)
	}
}

func sortedAggHique(part staged, out *emitBuffer, probe *hwsim.Probe) int {
	groups := 0
	var cur int64
	var s1, s2 int64
	first := true
	for i, t := range part.tuples {
		k := types.GetInt(t, 0)
		probe.Read(part.addr(i), 24)
		probe.Op(5)
		if first || k != cur {
			if !first {
				probe.Write(out.base, 24)
				probe.Op(3)
				groups++
			}
			cur, s1, s2 = k, 0, 0
			first = false
		}
		s1 += types.GetInt(t, 8)
		s2 += types.GetInt(t, 16)
	}
	if !first {
		groups++
	}
	_ = s1
	_ = s2
	return groups
}

//go:noinline
func hcCloseGroup(out *emitBuffer, probe *hwsim.Probe, k, s1, s2 int64) {
	probe.Call()
	probe.Write(out.base, 24)
	probe.Op(3)
	types.PutInt(out.buf, 0, k)
	types.PutInt(out.buf, 8, s1)
	types.PutInt(out.buf, 16, s2)
}

func sortedAggOptimizedHardcoded(part staged, out *emitBuffer, probe *hwsim.Probe) int {
	groups := 0
	var cur, s1, s2 int64
	first := true
	for i, t := range part.tuples {
		k := types.GetInt(t, 0)
		probe.Read(part.addr(i), 24)
		probe.Op(5)
		if first || k != cur {
			if !first {
				hcCloseGroup(out, probe, cur, s1, s2)
				groups++
			}
			cur, s1, s2 = k, 0, 0
			first = false
		}
		s1 += types.GetInt(t, 8)
		s2 += types.GetInt(t, 16)
	}
	if !first {
		hcCloseGroup(out, probe, cur, s1, s2)
		groups++
	}
	return groups
}

func sortedAggGenericHardcoded(part staged, out *emitBuffer, probe *hwsim.Probe) int {
	getField := func(t []byte, off int, addr int64) int64 {
		probe.Call()
		probe.Read(addr+int64(off), 8)
		probe.Op(2)
		return types.GetInt(t, off)
	}
	groups := 0
	var cur, s1, s2 int64
	first := true
	for i, t := range part.tuples {
		addr := part.addr(i)
		k := getField(t, 0, addr)
		probe.Op(3)
		if first || k != cur {
			if !first {
				hcCloseGroup(out, probe, cur, s1, s2)
				groups++
			}
			cur, s1, s2 = k, 0, 0
			first = false
		}
		s1 += getField(t, 8, addr)
		s2 += getField(t, 16, addr)
	}
	if !first {
		hcCloseGroup(out, probe, cur, s1, s2)
		groups++
	}
	return groups
}

func sortedAggOptimizedIterators(part staged, out *emitBuffer, probe *hwsim.Probe) int {
	it := newByteIter(part, probe)
	groups := 0
	var cur, s1, s2 int64
	first := true
	for {
		t, _, ok := it.next()
		if !ok {
			break
		}
		k := types.GetInt(t, 0)
		probe.Op(5)
		if first || k != cur {
			if !first {
				hcCloseGroup(out, probe, cur, s1, s2)
				groups++
			}
			cur, s1, s2 = k, 0, 0
			first = false
		}
		s1 += types.GetInt(t, 8)
		s2 += types.GetInt(t, 16)
	}
	if !first {
		hcCloseGroup(out, probe, cur, s1, s2)
		groups++
	}
	return groups
}

func sortedAggGenericIterators(part staged, out *emitBuffer, probe *hwsim.Probe) int {
	it := newBoxedIter(part, probe)
	groups := 0
	var cur types.Datum
	var s1, s2 int64
	first := true
	cmp := func(a, b types.Datum) int {
		probe.Call()
		probe.Op(3)
		return types.Compare(a, b)
	}
	for {
		row, _, ok := it.next()
		if !ok {
			break
		}
		if first || cmp(row[0], cur) != 0 {
			if !first {
				hcCloseGroup(out, probe, cur.I, s1, s2)
				groups++
			}
			cur, s1, s2 = row[0], 0, 0
			first = false
		}
		probe.Call() // boxed accumulate
		probe.Op(4)
		s1 += row[1].I
		s2 += row[2].I
	}
	if !first {
		hcCloseGroup(out, probe, cur.I, s1, s2)
		groups++
	}
	return groups
}
