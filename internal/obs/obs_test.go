package obs

import (
	"math/bits"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketPlacement(t *testing.T) {
	var h Histogram
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{time.Microsecond, 10},
		{time.Millisecond, 20},
		{time.Second, 30},
		{10 * time.Minute, NumBuckets - 1}, // clamped overflow
	}
	for _, c := range cases {
		h = Histogram{}
		h.Observe(c.d)
		counts, _ := h.Snapshot()
		got := -1
		for i, n := range counts {
			if n > 0 {
				got = i
			}
		}
		if got != c.want {
			t.Errorf("Observe(%v): bucket %d, want %d (bits.Len64=%d)",
				c.d, got, c.want, bits.Len64(uint64(c.d)))
		}
	}
}

func TestHistogramSumAndCount(t *testing.T) {
	var h Histogram
	var wantSum uint64
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i))
		wantSum += uint64(i)
	}
	counts, sum := h.Snapshot()
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total != 1000 {
		t.Fatalf("count = %d, want 1000", total)
	}
	if sum != wantSum {
		t.Fatalf("sum = %d, want %d", sum, wantSum)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count() = %d, want 1000", h.Count())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const G, N = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				h.Observe(time.Duration(g*N + i))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != G*N {
		t.Fatalf("Count() = %d, want %d", got, G*N)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hique_test_total", "A test counter.", Labels("class", "point"))
	c.Add(7)
	r.GaugeFunc("hique_test_gauge", "A test gauge.", "", func() float64 { return 2.5 })
	h := r.Histogram("hique_test_seconds", "A test histogram.", Labels("path", "fused"))
	h.Observe(time.Microsecond)
	h.Observe(time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP hique_test_total A test counter.\n",
		"# TYPE hique_test_total counter\n",
		`hique_test_total{class="point"} 7` + "\n",
		"# TYPE hique_test_gauge gauge\n",
		"hique_test_gauge 2.5\n",
		"# TYPE hique_test_seconds histogram\n",
		`hique_test_seconds_count{path="fused"} 2` + "\n",
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("exposition must end with a newline")
	}
}

// TestExpositionBucketsMonotone checks cumulative bucket counts never
// decrease and le bounds strictly increase within a series.
func TestExpositionBucketsMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("m_seconds", "h.", "")
	for i := 0; i < 500; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lastCum := -1.0
	lastLe := -1.0
	nb := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "m_seconds_bucket{") {
			continue
		}
		nb++
		leStart := strings.Index(line, `le="`) + 4
		leEnd := strings.Index(line[leStart:], `"`) + leStart
		leStr := line[leStart:leEnd]
		le := 1e308
		if leStr != "+Inf" {
			var err error
			le, err = strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", leStr, err)
			}
		}
		val, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if le <= lastLe {
			t.Errorf("le %g not increasing after %g", le, lastLe)
		}
		if val < lastCum {
			t.Errorf("cumulative count %g decreased from %g", val, lastCum)
		}
		lastLe, lastCum = le, val
	}
	if nb < 3 {
		t.Fatalf("expected several bucket lines, got %d", nb)
	}
	if lastCum != 500 {
		t.Fatalf("+Inf bucket = %g, want 500", lastCum)
	}
}

func TestLabelsEscaping(t *testing.T) {
	got := Labels("k", `a"b\c`+"\n")
	want := `k="a\"b\\c\n"`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}
}

func TestRegistryFamilyGrouping(t *testing.T) {
	r := NewRegistry()
	r.Counter("fam_total", "f.", Labels("x", "a"))
	r.Counter("other_total", "o.", "")
	r.Counter("fam_total", "f.", Labels("x", "b"))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE fam_total counter") != 1 {
		t.Errorf("family header must appear exactly once:\n%s", out)
	}
	// Both fam series must precede the other family (contiguous family).
	if strings.Index(out, `fam_total{x="b"}`) > strings.Index(out, "other_total") {
		t.Errorf("family series not contiguous:\n%s", out)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := time.Microsecond
		for pb.Next() {
			h.Observe(d)
			d += 7
		}
	})
}
