// Package obs is the serving path's metrics core: atomic counters,
// callback gauges, and sharded power-of-two-bucket latency histograms,
// rendered in the Prometheus text exposition format.
//
// The design constraint comes from the paper's own methodology — HIQUE's
// argument is measured per-query cost, so the instrumentation must not
// perturb what it measures. Every hot-path operation (Counter.Inc,
// Histogram.Observe) is a handful of atomic adds with no locks and no
// allocations; all naming, labelling, and formatting work happens once at
// registration or at scrape time. Callers resolve metric handles when a
// plan is compiled, never per query.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; registration only attaches a name for exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// metric is one registered time series: a family name, a pre-rendered
// label block, and the value source.
type metric struct {
	name   string
	help   string
	labels string // pre-rendered `key="value",...` (no braces), may be ""
	kind   metricKind

	counter *Counter
	intFn   func() int64
	floatFn func() float64
	hist    *Histogram
}

// Registry holds registered metrics and renders them. Registration takes
// a lock and allocates; reads on the hot path touch only the returned
// handles. Families (metrics sharing a name) render contiguously with a
// single HELP/TYPE header, in first-registration order.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Labels builds a label block from alternating key, value strings. The
// rendering (escaping, ordering) happens here, once, at registration.
func Labels(pairs ...string) string {
	if len(pairs)%2 != 0 {
		panic("obs: Labels requires alternating key, value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter series. labels is a block built
// with Labels (or "" for none).
func (r *Registry) Counter(name, help, labels string) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, labels: labels, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — for re-exporting counters owned by another subsystem.
func (r *Registry) CounterFunc(name, help, labels string, fn func() int64) {
	r.add(&metric{name: name, help: help, labels: labels, kind: kindCounterFunc, intFn: fn})
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.add(&metric{name: name, help: help, labels: labels, kind: kindGaugeFunc, floatFn: fn})
}

// Histogram registers and returns a latency histogram series.
func (r *Registry) Histogram(name, help, labels string) *Histogram {
	h := &Histogram{}
	r.add(&metric{name: name, help: help, labels: labels, kind: kindHistogram, hist: h})
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Families render contiguously with
// one HELP/TYPE header each, in first-registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	// Group into families preserving first-seen order.
	order := make([]string, 0, len(metrics))
	families := make(map[string][]*metric, len(metrics))
	for _, m := range metrics {
		if _, ok := families[m.name]; !ok {
			order = append(order, m.name)
		}
		families[m.name] = append(families[m.name], m)
	}

	var b strings.Builder
	for _, name := range order {
		fam := families[name]
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", name, fam[0].help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, famType(fam[0].kind))
		for _, m := range fam {
			renderMetric(&b, m)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func famType(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	}
	return "gauge"
}

func renderMetric(b *strings.Builder, m *metric) {
	switch m.kind {
	case kindCounter:
		writeSample(b, m.name, "", m.labels, float64(m.counter.Load()), true)
	case kindCounterFunc:
		writeSample(b, m.name, "", m.labels, float64(m.intFn()), true)
	case kindGaugeFunc:
		writeSample(b, m.name, "", m.labels, m.floatFn(), false)
	case kindHistogram:
		renderHistogram(b, m)
	}
}

func renderHistogram(b *strings.Builder, m *metric) {
	counts, sumNs := m.hist.Snapshot()
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		if c == 0 && i != len(counts)-1 {
			// Elide interior empty buckets: cumulative counts make them
			// redundant, and 40 buckets × dozens of series would dominate
			// the payload. The first and +Inf buckets always render.
			if i != 0 {
				continue
			}
		}
		le := bucketUpperBound(i)
		writeSample(b, m.name+"_bucket", le, m.labels, float64(cum), true)
	}
	writeSample(b, m.name+"_bucket", "+Inf", m.labels, float64(cum), true)
	fmt.Fprintf(b, "%s_sum%s %g\n", m.name, braced(m.labels), float64(sumNs)/1e9)
	writeSample(b, m.name+"_count", "", m.labels, float64(cum), true)
}

// writeSample renders one sample line. le, when non-empty, is appended as
// the trailing label of a histogram bucket. Counter-like values render as
// integers to keep the exposition exact.
func writeSample(b *strings.Builder, name, le, labels string, v float64, integral bool) {
	b.WriteString(name)
	if labels != "" || le != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if le != "" {
			if labels != "" {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	if integral && v == float64(uint64(v)) {
		fmt.Fprintf(b, "%d", uint64(v))
	} else {
		fmt.Fprintf(b, "%g", v)
	}
	b.WriteByte('\n')
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// SortedNames reports the distinct family names, sorted — a test helper
// for asserting coverage.
func (r *Registry) SortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, m := range r.metrics {
		if !seen[m.name] {
			seen[m.name] = true
			out = append(out, m.name)
		}
	}
	sort.Strings(out)
	return out
}
