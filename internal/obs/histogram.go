package obs

import (
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// The latency histogram uses power-of-two buckets over nanoseconds:
// bucket i holds durations d with bits.Len64(d) == i, i.e. d in
// [2^(i-1), 2^i). Forty buckets cover 1ns through ~9.2 minutes — wider
// than any plausible query latency — and the bucket index is a single
// LZCNT instruction, so Observe costs two atomic adds and no branches
// beyond the clamp.
//
// Shards spread concurrent observers across cache lines. The shard is
// picked from the low bits of the duration itself: nanosecond jitter
// makes those bits effectively random, so contending goroutines scatter
// without any per-goroutine state or unsafe TLS tricks. Snapshot merges
// the shards; the merge is racy against in-flight observers only in the
// benign sense that a concurrent Observe may or may not be included.

const (
	// NumBuckets is the bucket count: indexes 0..39, with the last bucket
	// absorbing everything >= 2^38 ns (~4.6 min).
	NumBuckets = 40
	nShards    = 8
)

type histShard struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	_      [56]byte      // keep neighbouring shards off this cache line
}

// Histogram is a sharded fixed-bucket latency histogram. The zero value
// is ready to use.
type Histogram struct {
	shards [nShards]histShard
}

// Observe records one duration. Lock-free, allocation-free.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	i := bits.Len64(ns)
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	sh := &h.shards[ns&(nShards-1)]
	sh.counts[i].Add(1)
	sh.sum.Add(ns)
}

// Snapshot merges the shards into per-bucket counts and the total
// nanosecond sum.
func (h *Histogram) Snapshot() (counts [NumBuckets]uint64, sumNs uint64) {
	for s := range h.shards {
		sh := &h.shards[s]
		for i := range sh.counts {
			counts[i] += sh.counts[i].Load()
		}
		sumNs += sh.sum.Load()
	}
	return counts, sumNs
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for s := range h.shards {
		sh := &h.shards[s]
		for i := range sh.counts {
			n += sh.counts[i].Load()
		}
	}
	return n
}

// bucketUpperBound renders bucket i's upper bound in seconds: bucket i
// holds durations strictly below 2^i nanoseconds, so le = 2^i / 1e9 is a
// valid inclusive Prometheus bound.
func bucketUpperBound(i int) string {
	ns := uint64(1) << uint(i)
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// BucketUpperBoundNs reports bucket i's exclusive upper bound in
// nanoseconds — exported for tests that verify bucket placement.
func BucketUpperBoundNs(i int) uint64 { return uint64(1) << uint(i) }
