// Package wal implements HIQUE's write-ahead log: an append-only,
// CRC32C-framed record log with monotone log sequence numbers (LSNs),
// group-commit fsync batching, segment rotation, and torn-tail repair.
//
// The log is the durability substrate under hique.DB (DESIGN.md §9):
// every mutating statement appends exactly one record under the table's
// writer lock, waits for Commit (whose cost depends on the sync policy),
// and is acknowledged only once its record is durable under
// SyncAlways. Recovery replays records in LSN order on top of the most
// recent checkpoint snapshot.
//
// On-disk layout: a directory of segment files named wal-%016x.log by
// the first LSN they hold. Each segment starts with a 16-byte header
// (magic "HIQW0001" + first LSN) followed by frames:
//
//	crc32c(u32 LE) | payloadLen(u32 LE) | lsn(u64 LE) | type(u8) | payload
//
// The checksum covers lsn, type, and payload. A frame is valid only if
// it is complete, its checksum matches, and its LSN is exactly the
// successor of the previous frame's — which rejects torn tails,
// bit flips, and duplicated tails alike. Open scans the segment chain,
// truncates the log at the first invalid frame (warning, never
// refusing to start), and discards anything after it: the log's
// contract is a consistent prefix, not best-effort salvage.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	segMagic      = "HIQW0001"
	segHeaderSize = 16
	// frameHeaderSize is crc(4) + payloadLen(4) + lsn(8) + type(1).
	frameHeaderSize = 17
	// MaxPayload bounds a single record; a length field beyond it marks
	// the frame invalid without attempting a giant allocation.
	MaxPayload = 64 << 20
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append and Commit after Close.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Commit returns: an acknowledged statement
	// survives power loss. Concurrent committers share fsyncs through
	// group commit.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background cadence: Commit returns
	// immediately and a crash loses at most one interval of
	// acknowledged statements.
	SyncInterval
	// SyncOff never fsyncs explicitly (the OS writes back whenever it
	// likes); only a clean Close flushes and syncs. Maximum ingest
	// speed, no crash guarantee beyond the last checkpoint.
	SyncOff
)

// String names the policy using the -fsync flag vocabulary.
func (p SyncPolicy) String() string {
	return [...]string{"always", "interval", "off"}[p]
}

// ParsePolicy resolves a -fsync flag value; ok is false for unknown
// names.
func ParsePolicy(s string) (SyncPolicy, bool) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		if p.String() == s {
			return p, true
		}
	}
	return SyncAlways, false
}

// Options configures a Log.
type Options struct {
	// Policy selects the fsync discipline (default SyncAlways).
	Policy SyncPolicy
	// Interval is the SyncInterval cadence (default 50ms).
	Interval time.Duration
	// SegmentSize rotates segments once they exceed this many bytes
	// (default 16 MiB).
	SegmentSize int64
	// StartLSN seeds the LSN counter when the directory holds no
	// segments: recovery passes checkpointLSN+1 so the chain stays
	// monotone across truncations (default 1).
	StartLSN uint64
	// FS supplies the append files; nil selects the OS filesystem. The
	// crash harness injects a FaultFS here to tear or drop writes.
	FS FS
	// FsyncObserve, when set, receives the latency of every physical
	// fsync (the hique_wal_fsync_seconds histogram).
	FsyncObserve func(time.Duration)
	// Logf receives torn-tail and corruption warnings (default drops
	// them).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = 16 << 20
	}
	if o.StartLSN == 0 {
		o.StartLSN = 1
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// Appended counts records appended this process lifetime.
	Appended int64
	// Fsyncs counts physical fsync calls (group commit batches many
	// Commits into one).
	Fsyncs int64
	// Bytes counts frame bytes appended this process lifetime.
	Bytes int64
	// LastLSN is the highest LSN assigned (0 before the first append).
	LastLSN uint64
	// DurableLSN is the highest LSN known fsynced.
	DurableLSN uint64
}

// Log is an open write-ahead log. Append/Commit/Sync/Rotate are safe
// for concurrent use.
type Log struct {
	dir string
	opt Options

	// mu guards the append state: the current segment file, its
	// buffered writer, and segment bookkeeping.
	mu       sync.Mutex
	f        File
	buf      []byte // frame staging buffer, reused across appends
	segPath  string
	segStart uint64
	segBytes int64
	closed   bool
	fail     error // sticky: a failed file write poisons the log

	// nextLSN is the LSN the next append receives; written under mu,
	// read atomically by Stats/LastLSN.
	nextLSN atomic.Uint64

	// syncMu is the group-commit leader lock: the first Commit waiter
	// becomes the leader and fsyncs once for everyone queued behind it.
	syncMu  sync.Mutex
	durable atomic.Uint64 // highest LSN known fsynced

	appended atomic.Int64
	fsyncs   atomic.Int64
	bytes    atomic.Int64

	stop     chan struct{}
	loopDone sync.WaitGroup
}

// segmentName renders the file name for a segment starting at lsn.
func segmentName(lsn uint64) string {
	return fmt.Sprintf("wal-%016x.log", lsn)
}

// segmentRef is one discovered segment file.
type segmentRef struct {
	path     string
	firstLSN uint64
}

// listSegments returns the directory's segment files sorted by first
// LSN. Files whose name does not parse are ignored.
func listSegments(dir string) ([]segmentRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentRef
	for _, e := range entries {
		n := e.Name()
		if !strings.HasPrefix(n, "wal-") || !strings.HasSuffix(n, ".log") {
			continue
		}
		lsn, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, "wal-"), ".log"), 16, 64)
		if perr != nil {
			continue
		}
		segs = append(segs, segmentRef{path: filepath.Join(dir, n), firstLSN: lsn})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// scanRecords walks the frames of a segment image, calling fn (when
// non-nil) for each valid record. It returns the byte offset of the
// first invalid frame (== len(data) when the whole segment is valid)
// and the LSN the next record would carry. Scanning stops silently at
// the first invalid frame — short, oversized, checksum-failing, or
// LSN-discontinuous — which is the torn-tail policy: everything before
// it is a consistent prefix, everything after is untrusted.
func scanRecords(data []byte, firstLSN uint64, fn func(lsn uint64, typ byte, payload []byte) error) (validEnd int, next uint64, err error) {
	off := segHeaderSize
	next = firstLSN
	if len(data) < segHeaderSize {
		return 0, next, nil
	}
	for {
		if off+frameHeaderSize > len(data) {
			return off, next, nil
		}
		crc := binary.LittleEndian.Uint32(data[off:])
		plen := binary.LittleEndian.Uint32(data[off+4:])
		if uint64(plen) > MaxPayload || off+frameHeaderSize+int(plen) > len(data) {
			return off, next, nil
		}
		end := off + frameHeaderSize + int(plen)
		if crc32.Checksum(data[off+8:end], castagnoli) != crc {
			return off, next, nil
		}
		lsn := binary.LittleEndian.Uint64(data[off+8:])
		if lsn != next {
			// A replayed (duplicated) or reordered frame: its checksum
			// is fine but its LSN is not the successor — stop here.
			return off, next, nil
		}
		if fn != nil {
			if ferr := fn(lsn, data[off+16], data[off+frameHeaderSize:end]); ferr != nil {
				return off, next, ferr
			}
		}
		next = lsn + 1
		off = end
	}
}

// segHeaderOK validates a segment image's header against its file name.
func segHeaderOK(data []byte, firstLSN uint64) bool {
	return len(data) >= segHeaderSize &&
		string(data[:8]) == segMagic &&
		binary.LittleEndian.Uint64(data[8:16]) == firstLSN
}

// Open opens (creating if necessary) the log in dir. It scans the
// segment chain, repairs a torn or corrupt tail by truncating at the
// last valid frame boundary (and discarding any later segments), and
// positions the LSN counter after the last valid record. Open never
// refuses to start over a damaged tail — it warns through Options.Logf
// and recovers the consistent prefix.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}

	next := opt.StartLSN
	kept := 0
	for i, sg := range segs {
		data, rerr := os.ReadFile(sg.path)
		ok := rerr == nil && segHeaderOK(data, sg.firstLSN)
		if ok && i > 0 && sg.firstLSN != next {
			// Chain gap or overlap: nothing at or after this segment
			// extends the prefix.
			ok = false
		}
		if !ok {
			opt.Logf("wal: discarding segment %s and %d later segment(s): unreadable, corrupt header, or chain break (err=%v)",
				filepath.Base(sg.path), len(segs)-i-1, rerr)
			for _, drop := range segs[i:] {
				_ = os.Remove(drop.path)
			}
			break
		}
		validEnd, segNext, _ := scanRecords(data, sg.firstLSN, nil)
		next = segNext
		kept = i + 1
		if validEnd < len(data) {
			opt.Logf("wal: segment %s has a torn or corrupt tail at byte %d of %d; truncating at the last valid record (next LSN %d)",
				filepath.Base(sg.path), validEnd, len(data), next)
			if terr := os.Truncate(sg.path, int64(validEnd)); terr != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", terr)
			}
			if i+1 < len(segs) {
				opt.Logf("wal: discarding %d segment(s) after the torn tail", len(segs)-i-1)
				for _, drop := range segs[i+1:] {
					_ = os.Remove(drop.path)
				}
			}
			break
		}
	}

	l := &Log{dir: dir, opt: opt, stop: make(chan struct{})}
	l.nextLSN.Store(next)
	// Everything surviving the scan is on disk; whether the kernel has
	// it on stable media is unknowable here, so treat it as durable the
	// way recovery must: it is the prefix we recovered.
	l.durable.Store(next - 1)

	if kept > 0 {
		last := segs[kept-1]
		st, serr := os.Stat(last.path)
		if serr == nil && st.Size() < opt.SegmentSize {
			f, oerr := opt.FS.OpenAppend(last.path)
			if oerr != nil {
				return nil, fmt.Errorf("wal: reopen segment: %w", oerr)
			}
			l.f, l.segPath, l.segStart, l.segBytes = f, last.path, last.firstLSN, st.Size()
		}
	}
	if l.f == nil {
		if err := l.createSegmentLocked(); err != nil {
			return nil, err
		}
	}
	if opt.Policy == SyncInterval {
		l.loopDone.Add(1)
		go l.intervalLoop()
	}
	return l, nil
}

// createSegmentLocked opens a fresh segment starting at the current
// nextLSN and writes its header. Caller holds mu (or is Open, before
// the log is shared).
func (l *Log) createSegmentLocked() error {
	lsn := l.nextLSN.Load()
	path := filepath.Join(l.dir, segmentName(lsn))
	f, err := l.opt.FS.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.f, l.segPath, l.segStart, l.segBytes = f, path, lsn, segHeaderSize
	return nil
}

// Append frames one record, assigns it the next LSN, and writes it to
// the current segment. The record is buffered in the OS page cache (or
// the process, until the next flush); durability is Commit's job.
// Callers append under the owning table's writer lock, so LSN order
// equals apply order per table.
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds MaxPayload", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.fail != nil {
		return 0, l.fail
	}
	if l.segBytes >= l.opt.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN.Load()
	frame := l.buf[:0]
	if cap(frame) < frameHeaderSize+len(payload) {
		frame = make([]byte, 0, frameHeaderSize+len(payload))
	}
	frame = frame[:frameHeaderSize]
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[8:16], lsn)
	frame[16] = typ
	frame = append(frame, payload...)
	binary.LittleEndian.PutUint32(frame[0:4], crc32.Checksum(frame[8:], castagnoli))
	l.buf = frame
	// One Write call per frame: a torn frame is then a kernel/media
	// artifact, never an interleaving of two writers.
	if _, err := l.f.Write(frame); err != nil {
		l.fail = fmt.Errorf("wal: append: %w", err)
		return 0, l.fail
	}
	l.nextLSN.Store(lsn + 1)
	l.segBytes += int64(len(frame))
	l.appended.Add(1)
	l.bytes.Add(int64(len(frame)))
	return lsn, nil
}

// Commit makes the record at lsn durable according to the sync policy:
// SyncAlways waits for an fsync covering lsn (sharing it with every
// concurrent committer — group commit), SyncInterval and SyncOff
// return immediately.
func (l *Log) Commit(lsn uint64) error {
	if l.opt.Policy != SyncAlways {
		l.mu.Lock()
		err := l.fail
		if l.closed && err == nil {
			err = ErrClosed
		}
		l.mu.Unlock()
		if err != nil && l.durable.Load() < lsn {
			return err
		}
		return nil
	}
	if l.durable.Load() >= lsn {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.durable.Load() >= lsn {
		// A group-commit leader fsynced past us while we queued.
		return nil
	}
	return l.syncLeader()
}

// Sync forces a flush + fsync of everything appended so far (the
// SyncInterval cadence and Close both come through here).
func (l *Log) Sync() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.syncLeader()
}

// syncLeader performs one physical fsync covering every record appended
// before it starts. Caller holds syncMu. The file sync itself runs
// outside mu so appenders keep appending while the disk works.
func (l *Log) syncLeader() error {
	l.mu.Lock()
	if l.fail != nil {
		err := l.fail
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	f := l.f
	target := l.nextLSN.Load() - 1
	l.mu.Unlock()
	if l.durable.Load() >= target {
		return nil
	}
	start := time.Now()
	err := f.Sync()
	if l.opt.FsyncObserve != nil {
		l.opt.FsyncObserve(time.Since(start))
	}
	if err != nil {
		l.mu.Lock()
		l.fail = fmt.Errorf("wal: fsync: %w", err)
		err = l.fail
		l.mu.Unlock()
		return err
	}
	l.fsyncs.Add(1)
	l.advanceDurable(target)
	return nil
}

// advanceDurable raises durable to target monotonically.
func (l *Log) advanceDurable(target uint64) {
	for {
		cur := l.durable.Load()
		if cur >= target || l.durable.CompareAndSwap(cur, target) {
			return
		}
	}
}

// Rotate closes the current segment (fsyncing it) and starts a new one
// at the next LSN. Checkpointing rotates at the checkpoint LSN so
// every earlier segment becomes wholly obsolete and removable. A
// segment with no records yet is reused as-is.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.fail != nil {
		return l.fail
	}
	if l.segBytes == segHeaderSize && l.segStart == l.nextLSN.Load() {
		return nil
	}
	return l.rotateLocked()
}

// rotateLocked seals the current segment and opens the next. Caller
// holds mu.
func (l *Log) rotateLocked() error {
	target := l.nextLSN.Load() - 1
	if err := l.f.Sync(); err != nil {
		l.fail = fmt.Errorf("wal: rotate fsync: %w", err)
		return l.fail
	}
	if err := l.f.Close(); err != nil {
		l.fail = fmt.Errorf("wal: rotate close: %w", err)
		return l.fail
	}
	l.fsyncs.Add(1)
	l.advanceDurable(target)
	return l.createSegmentLocked()
}

// RemoveSegmentsBefore deletes segments every record of which has
// LSN <= lsn — the log-truncation half of a checkpoint. A segment is
// removable only when the next segment's first LSN proves it holds
// nothing newer; the active segment is never removed.
func (l *Log) RemoveSegmentsBefore(lsn uint64) error {
	l.mu.Lock()
	active := l.segPath
	l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i].path == active || segs[i+1].firstLSN > lsn+1 {
			continue
		}
		if err := os.Remove(segs[i].path); err != nil {
			return fmt.Errorf("wal: remove segment: %w", err)
		}
	}
	return nil
}

// Replay reads the segment chain from disk and calls fn for every
// valid record with LSN > from, in LSN order. It shares scanRecords'
// torn-tail policy: scanning stops silently at the first invalid
// frame. The returned count is how many records fn received.
func (l *Log) Replay(from uint64, fn func(lsn uint64, typ byte, payload []byte) error) (int64, error) {
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	var n int64
	next := uint64(0)
	for i, sg := range segs {
		data, rerr := os.ReadFile(sg.path)
		if rerr != nil {
			return n, fmt.Errorf("wal: replay: %w", rerr)
		}
		if !segHeaderOK(data, sg.firstLSN) || (i > 0 && sg.firstLSN != next) {
			return n, nil
		}
		validEnd, segNext, ferr := scanRecords(data, sg.firstLSN, func(lsn uint64, typ byte, payload []byte) error {
			if lsn <= from {
				return nil
			}
			n++
			return fn(lsn, typ, payload)
		})
		if ferr != nil {
			return n, ferr
		}
		next = segNext
		if validEnd < len(data) {
			return n, nil
		}
	}
	return n, nil
}

// intervalLoop is the SyncInterval background fsync cadence.
func (l *Log) intervalLoop() {
	defer l.loopDone.Done()
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			_ = l.Sync()
		}
	}
}

// Close stops the background syncer, flushes, fsyncs, and closes the
// active segment. Appends and commits after Close return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	close(l.stop)
	l.loopDone.Wait()

	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.fail != nil {
		_ = l.f.Close()
		return l.fail
	}
	target := l.nextLSN.Load() - 1
	if err := l.f.Sync(); err != nil {
		_ = l.f.Close()
		return fmt.Errorf("wal: close fsync: %w", err)
	}
	l.fsyncs.Add(1)
	l.advanceDurable(target)
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// LastLSN reports the highest LSN assigned so far (0 before the first
// append of a fresh log).
func (l *Log) LastLSN() uint64 { return l.nextLSN.Load() - 1 }

// DurableLSN reports the highest LSN known fsynced.
func (l *Log) DurableLSN() uint64 { return l.durable.Load() }

// StatsSnapshot returns the log's counters.
func (l *Log) StatsSnapshot() Stats {
	return Stats{
		Appended:   l.appended.Load(),
		Fsyncs:     l.fsyncs.Load(),
		Bytes:      l.bytes.Load(),
		LastLSN:    l.LastLSN(),
		DurableLSN: l.DurableLSN(),
	}
}
